(* The single source of truth for cgcsim process exit codes.

   Every numeric exit in bin/cgcsim.ml comes from here, the README
   table between the exit-codes markers is generated from
   [markdown_table] (kept in sync by a test), and `cgcsim exit-codes`
   prints the same rows — one definition, three consumers. *)

type code = { value : int; name : string; meaning : string }

let ok = 0
let usage = 1
let oom = 2
let invariant = 3
let schema = 4
let drops = 5
let slo = 6
let fleet = 7

let all =
  [
    { value = ok; name = "ok"; meaning = "success" };
    {
      value = usage;
      name = "usage";
      meaning =
        "usage or configuration error (bad flags, unwritable output, bench \
         drop gate)";
    };
    {
      value = oom;
      name = "oom";
      meaning =
        "heap exhausted after the full degradation ladder (diagnosed OOM)";
    };
    {
      value = invariant;
      name = "invariant";
      meaning = "heap invariant violation under `--verify`";
    };
    {
      value = schema;
      name = "schema";
      meaning =
        "trace/report rejected by the analyzer: schema tag, malformed field, \
         or a broken blame-conservation identity";
    };
    {
      value = drops;
      name = "drops";
      meaning = "event-ring overflow with `--fail-on-drops`";
    };
    {
      value = slo;
      name = "slo";
      meaning =
        "SLO attainment below `--slo-target` (`serve`/`cluster` with \
         `--slo-ms`)";
    };
    {
      value = fleet;
      name = "fleet-unavailable";
      meaning =
        "the cluster degradation ladder bottomed out under `--chaos` \
         (`--give-up`, typed `Fleet_unavailable`)";
    };
  ]

let markdown_table () =
  let b = Buffer.create 512 in
  Buffer.add_string b "| code | name | meaning |\n";
  Buffer.add_string b "| ---- | ---- | ------- |\n";
  List.iter
    (fun c ->
      Buffer.add_string b
        (Printf.sprintf "| %d | `%s` | %s |\n" c.value c.name c.meaning))
    all;
  Buffer.contents b

let text () =
  let b = Buffer.create 512 in
  List.iter
    (fun c ->
      Buffer.add_string b (Printf.sprintf "%d  %-17s %s\n" c.value c.name c.meaning))
    all;
  Buffer.contents b
