(** The single source of truth for cgcsim process exit codes.

    [bin/cgcsim.ml] exits with these constants, `cgcsim exit-codes`
    prints {!text} (or {!markdown_table} under [--markdown]), and the
    README's exit-code table is the literal output of
    {!markdown_table} — a test asserts the README copy matches, so the
    three can never drift. *)

type code = { value : int; name : string; meaning : string }

val ok : int  (** 0 — success *)

val usage : int
(** 1 — bad command line, or a bench determinism failure *)

val oom : int  (** 2 — simulated heap exhausted *)

val invariant : int  (** 3 — collector invariant tripped *)

val schema : int
(** 4 — artefact failed validation (schema tag / conservation) *)

val drops : int  (** 5 — ring drops under [--fail-on-drops] *)

val slo : int  (** 6 — SLO attainment below target *)

val fleet : int  (** 7 — fleet availability below target *)

val all : code list
(** Ascending by {!field-value}; exactly the codes 0–7. *)

val markdown_table : unit -> string
(** GitHub-flavoured table, byte-identical to the README block between
    [<!-- exit-codes:begin -->] and [<!-- exit-codes:end -->]. *)

val text : unit -> string
(** Plain aligned rows for `cgcsim exit-codes`. *)
