module Machine = Cgc_smp.Machine
module Fence = Cgc_smp.Fence
module Cost = Cgc_smp.Cost
module Bitvec = Cgc_util.Bitvec

type fence_policy = Batched | Naive

type cache = {
  mutable base : int;
  mutable cur : int;
  mutable limit : int;
  mutable objs : int list; (* pending allocation-bit publication *)
}

type t = {
  mach : Machine.t;
  arena : Arena.t;
  free : Freelist.t;
  mark : Bitvec.t;
  abits : Alloc_bits.t;
  card_table : Card_table.t;
  n : int;
  policy : fence_policy;
  mutable cum_alloc : int;
}

let create ?(fence_policy = Batched) mach ~nslots =
  let arena = Arena.create mach ~nslots in
  let free = Freelist.create () in
  (* Slot 0 is reserved (null); the rest starts free. *)
  Freelist.add free ~addr:1 ~size:(nslots - 1);
  {
    mach;
    arena;
    free;
    mark = Bitvec.create nslots;
    abits = Alloc_bits.create mach ~nslots;
    card_table = Card_table.create mach ~ncards:((nslots + Arena.slots_per_card - 1) / Arena.slots_per_card);
    n = nslots;
    policy = fence_policy;
    cum_alloc = 0;
  }

let machine t = t.mach
let fence_policy_of t = t.policy
let arena t = t.arena
let cards t = t.card_table
let alloc_bits t = t.abits
let mark_bits t = t.mark
let freelist t = t.free
let nslots t = t.n

let mark_test_and_set t addr = Bitvec.test_and_set t.mark addr
let is_marked t addr = Bitvec.get t.mark addr
let clear_marks t = Bitvec.clear_all t.mark

let new_cache () = { base = 0; cur = 0; limit = 0; objs = [] }

let publish t cache =
  (match cache.objs with
  | [] -> ()
  | objs ->
      (match t.policy with
      | Batched -> Machine.fence t.mach Fence.Alloc_batch
      | Naive -> () (* already fenced per object *));
      List.iter (fun addr -> Alloc_bits.set t.abits addr) objs;
      cache.objs <- [])

let no_addr = -1

let cache_alloc_addr t cache ~size ~nrefs ~mark_new =
  if cache.cur + size > cache.limit then no_addr
  else begin
    let addr = cache.cur in
    cache.cur <- addr + size;
    let c = t.mach.Machine.cost in
    Machine.charge t.mach (c.Cost.alloc_obj + (size * c.Cost.alloc_slot));
    Arena.write_header t.arena addr ~size ~nrefs;
    Arena.clear_fields t.arena addr ~size ~nrefs;
    if mark_new then Bitvec.set t.mark addr;
    (match t.policy with
    | Batched -> cache.objs <- addr :: cache.objs
    | Naive ->
        Machine.fence t.mach Fence.Naive_alloc;
        Alloc_bits.set t.abits addr);
    addr
  end

let cache_alloc t cache ~size ~nrefs ~mark_new =
  let a = cache_alloc_addr t cache ~size ~nrefs ~mark_new in
  if a = no_addr then None else Some a

let retire_cache t cache =
  publish t cache;
  (* The unused tail of the cache is abandoned: it carries no allocation
     or mark bits, so the next sweep folds it back into the free list. *)
  cache.base <- 0;
  cache.cur <- 0;
  cache.limit <- 0

let refill_cache t cache ~min ~pref =
  publish t cache;
  Machine.charge t.mach t.mach.Machine.cost.Cost.cache_refill;
  match Freelist.alloc_range t.free ~min ~pref with
  | None ->
      cache.base <- 0;
      cache.cur <- 0;
      cache.limit <- 0;
      false
  | Some (addr, size) ->
      cache.base <- addr;
      cache.cur <- addr;
      cache.limit <- addr + size;
      t.cum_alloc <- t.cum_alloc + size;
      true

let cache_slack cache = cache.limit - cache.cur

let alloc_large t ~size ~nrefs ~mark_new =
  Machine.charge t.mach t.mach.Machine.cost.Cost.cache_refill;
  match Freelist.alloc t.free size with
  | None -> None
  | Some addr ->
      let c = t.mach.Machine.cost in
      Machine.charge t.mach (c.Cost.alloc_obj + (size * c.Cost.alloc_slot));
      t.cum_alloc <- t.cum_alloc + size;
      Arena.write_header t.arena addr ~size ~nrefs;
      Arena.clear_fields t.arena addr ~size ~nrefs;
      if mark_new then Bitvec.set t.mark addr;
      (match t.policy with
      | Batched -> Machine.fence t.mach Fence.Alloc_batch
      | Naive -> Machine.fence t.mach Fence.Naive_alloc);
      Alloc_bits.set t.abits addr;
      Some addr

let free_slots t = Freelist.free_slots t.free
let cumulative_alloc_slots t = t.cum_alloc

(* ------------------------------------------------------------------ *)
(* Nursery support (Gen mode)                                          *)

let reserve_top t ~slots =
  if slots < Arena.slots_per_card || slots >= t.n - Arena.slots_per_card then
    invalid_arg "Heap.reserve_top: nursery size";
  (* Card-align the boundary so a card is never split between the two
     spaces (the old->young remembered set is card-granular). *)
  let n_lo = (t.n - slots) / Arena.slots_per_card * Arena.slots_per_card in
  if t.cum_alloc > 0 then invalid_arg "Heap.reserve_top: heap already in use";
  (* The freelist still holds the pristine [1, n) run; re-carve it so the
     old space owns exactly [1, n_lo) and the nursery is never handed out
     by the free-list allocator. *)
  Freelist.clear t.free;
  Freelist.add t.free ~addr:1 ~size:(n_lo - 1);
  n_lo

let install_cache t cache ~base ~limit =
  publish t cache;
  Machine.charge t.mach t.mach.Machine.cost.Cost.cache_refill;
  cache.base <- base;
  cache.cur <- base;
  cache.limit <- limit;
  t.cum_alloc <- t.cum_alloc + (limit - base)

let cache_extent cache = (cache.base, cache.cur, cache.limit)

let alloc_raw t ~size =
  Machine.charge t.mach t.mach.Machine.cost.Cost.cache_refill;
  match Freelist.alloc t.free size with
  | None -> None
  | Some addr ->
      let c = t.mach.Machine.cost in
      Machine.charge t.mach (c.Cost.alloc_obj + (size * c.Cost.alloc_slot));
      t.cum_alloc <- t.cum_alloc + size;
      Some addr

let object_overlapping t slot =
  match Alloc_bits.prev_set t.abits slot with
  | -1 -> None
  | a ->
      let size = Arena.size_of t.arena a in
      if size >= 1 && a + size > slot then Some a else None

let iter_marked_on_card t card f =
  let lo = card * Arena.slots_per_card in
  let hi = min t.n (lo + Arena.slots_per_card) in
  (* A marked object starting before the card may span into it. *)
  (match Bitvec.prev_set t.mark (lo - 1) with
  | -1 -> ()
  | a ->
      let size = Arena.size_of t.arena a in
      if size >= 1 && a + size > lo then f a);
  let i = ref (Bitvec.next_set t.mark lo) in
  while !i < hi do
    f !i;
    i := Bitvec.next_set t.mark (!i + 1)
  done

let iter_objects_on_card t card f =
  let lo = card * Arena.slots_per_card in
  let hi = min t.n (lo + Arena.slots_per_card) in
  (* Object spanning the card start. *)
  let first_inside = Alloc_bits.next_set t.abits lo in
  (match object_overlapping t lo with
  | Some a when a < lo -> f a
  | _ -> ());
  let i = ref first_inside in
  while !i < hi do
    f !i;
    i := Alloc_bits.next_set t.abits (!i + 1)
  done
