(** The complete heap substrate: arena + free list + mark bits +
    allocation bits + card table + per-thread allocation caches.

    This mirrors the IBM JVM heap organisation the paper builds on:
    {ul
    {- a mark bit vector, one bit per 8-byte slot;}
    {- an allocation bit vector at the same granularity, used both for
       conservative stack scanning and for the batched object-publication
       fence protocol (section 5.2);}
    {- a card table with 512-byte cards for the write barrier;}
    {- cache allocation: each thread carves small objects out of a private
       allocation cache and takes the slow path — where all incremental GC
       work happens — only when the cache is exhausted.}}

    The heap does not know about the collector; the collector drives it
    through this interface. *)

type t

type fence_policy = Batched | Naive

type cache
(** A per-thread allocation cache (thread-local heap). *)

val create :
  ?fence_policy:fence_policy -> Cgc_smp.Machine.t -> nslots:int -> t
(** [fence_policy] defaults to [Batched] (the paper's protocol); [Naive]
    fences once per object for the ablation study. *)

val machine : t -> Cgc_smp.Machine.t
val fence_policy_of : t -> fence_policy
val arena : t -> Arena.t
val cards : t -> Card_table.t
val alloc_bits : t -> Alloc_bits.t
val mark_bits : t -> Cgc_util.Bitvec.t
val freelist : t -> Freelist.t
val nslots : t -> int

(** {2 Marking} *)

val mark_test_and_set : t -> int -> bool
(** Set the mark bit for the object at the address; true iff this call
    marked it (the caller "won" and must trace it). *)

val is_marked : t -> int -> bool
val clear_marks : t -> unit

(** {2 Allocation} *)

val new_cache : unit -> cache
(** An empty cache; the first allocation through it takes the slow path. *)

val cache_alloc :
  t -> cache -> size:int -> nrefs:int -> mark_new:bool -> int option
(** Bump-allocate from the cache.  [None] means the cache is exhausted and
    the caller must {!refill_cache} (after doing its incremental GC work).
    Writes the header, nulls the reference slots, and if [mark_new]
    (allocate-black during an active collection cycle) sets the mark bit.
    The allocation bit is {e not} set yet — it is published in a batch
    when the cache is retired. *)

val no_addr : int
(** Sentinel returned by {!cache_alloc_addr} on cache exhaustion ([-1],
    never a valid slot address). *)

val cache_alloc_addr :
  t -> cache -> size:int -> nrefs:int -> mark_new:bool -> int
(** Allocation-free {!cache_alloc}: the address, or {!no_addr} when the
    cache is exhausted.  The mutator allocation fast path runs millions
    of times per cell, so the [Some] box per object was measurable. *)

val refill_cache : t -> cache -> min:int -> pref:int -> bool
(** Retire the current cache (publish allocation bits behind one fence)
    and install a fresh extent of at least [min] and preferably [pref]
    slots.  False when the free list cannot satisfy [min]: time to
    collect. *)

val retire_cache : t -> cache -> unit
(** Publish and drop the cache without refilling (done to every mutator
    when the world stops, so all objects become "safe" for tracing). *)

val cache_slack : cache -> int
(** Unused slots remaining in the cache (diagnostics). *)

val alloc_large : t -> size:int -> nrefs:int -> mark_new:bool -> int option
(** Allocate a large object straight from the free list; publishes its
    allocation bit immediately behind its own fence. *)

(** {2 Nursery support (Gen mode)} *)

val reserve_top : t -> slots:int -> int
(** Carve [slots] (card-aligned, rounded down) off the top of the arena
    and withdraw them from the free list, returning the first nursery
    slot.  Must be called on a pristine heap (before any allocation);
    afterwards the free-list allocator only ever hands out old-space
    extents below the returned boundary. *)

val install_cache : t -> cache -> base:int -> limit:int -> unit
(** Point a cache at an externally-carved extent [[base, limit)] (a
    nursery chunk).  Publishes any pending allocation bits first and
    counts the extent into {!cumulative_alloc_slots}, exactly like
    {!refill_cache} does for free-list extents. *)

val cache_extent : cache -> int * int * int
(** [(base, cur, limit)] of the cache — lets the nursery verifier check
    the bump pointer stays inside the nursery bounds. *)

val alloc_raw : t -> size:int -> int option
(** Carve [size] slots straight off the free list without writing a
    header or touching any bit vector — the promotion path copies a
    fully-formed object (header included) over the extent and publishes
    its allocation bit itself.  Charges allocation cost and counts into
    {!cumulative_alloc_slots}. *)

(** {2 Occupancy} *)

val free_slots : t -> int
(** Slots available on the free list right now. *)

val cumulative_alloc_slots : t -> int
(** Total slots ever handed to caches or large objects (monotonic). *)

val object_overlapping : t -> int -> int option
(** [object_overlapping t slot] finds the address of the allocated object
    whose extent covers [slot], if any — used by card cleaning for objects
    spanning a card boundary.  Uses committed allocation-bit state. *)

val iter_objects_on_card : t -> int -> (int -> unit) -> unit
(** [iter_objects_on_card t card f] applies [f] to the address of every
    allocated object overlapping the card (including one that starts
    before it). *)

val iter_marked_on_card : t -> int -> (int -> unit) -> unit
(** Same, but iterating the {e marked} objects via the mark bit vector —
    card cleaning retraces exactly "the marked objects on the cards
    marked dirty" (section 2.1). *)
