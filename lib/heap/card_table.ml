module Machine = Cgc_smp.Machine
module Weakmem = Cgc_smp.Weakmem
module Cost = Cgc_smp.Cost
module Bitvec = Cgc_util.Bitvec

type t = {
  mach : Machine.t;
  bytes : Bytes.t;
  n : int;
  wm_base : int;
  (* Word-level mirror of the committed dirty bytes, plus its population
     count, both maintained incrementally on every committed transition.
     [dirty_count] is O(1) and [snapshot] scans words instead of bytes;
     the byte array stays authoritative for the weak-memory protocol. *)
  dirty_bits : Bitvec.t;
  mutable ndirty : int;
}

let create mach ~ncards =
  let wm_base = Weakmem.register mach.Machine.wm ncards in
  {
    mach;
    bytes = Bytes.make ncards '\000';
    n = ncards;
    wm_base;
    dirty_bits = Bitvec.create ncards;
    ndirty = 0;
  }

let ncards t = t.n

let get_committed t i = Char.code (Bytes.get t.bytes i)

let read t i =
  let wm = t.mach.Machine.wm in
  match Weakmem.mode wm with
  | Sc -> get_committed t i
  | Relaxed ->
      Weakmem.read wm ~cpu:(Machine.cpu t.mach) ~now:(Machine.now t.mach)
        ~key:(t.wm_base + i) ~current:(get_committed t i)

let write t i v =
  let wm = t.mach.Machine.wm in
  (match Weakmem.mode wm with
  | Sc -> ()
  | Relaxed ->
      Weakmem.store wm ~cpu:(Machine.cpu t.mach) ~now:(Machine.now t.mach)
        ~key:(t.wm_base + i) ~prev:(get_committed t i));
  let was_dirty = Bytes.get t.bytes i <> '\000' in
  Bytes.set t.bytes i (Char.chr v);
  let now_dirty = v <> 0 in
  if was_dirty <> now_dirty then
    if now_dirty then begin
      Bitvec.set t.dirty_bits i;
      t.ndirty <- t.ndirty + 1
    end
    else begin
      Bitvec.clear t.dirty_bits i;
      t.ndirty <- t.ndirty - 1
    end

let dirty t i = write t i 1
let is_dirty t i = read t i <> 0
let clear t i = write t i 0

let clear_all t =
  Bytes.fill t.bytes 0 t.n '\000';
  Bitvec.clear_all t.dirty_bits;
  t.ndirty <- 0

let dirty_count t = t.ndirty

let recount t =
  let c = ref 0 in
  for i = 0 to t.n - 1 do
    if get_committed t i <> 0 then incr c
  done;
  !c

(* The word-scan fast path is valid exactly when every per-card [read]
   the byte loop would have issued is guaranteed to return the committed
   value: always under Sc, and under Relaxed once the due stores are
   drained and no store remains masked.  Cards must still be cleared in
   descending index order — each Relaxed-mode clear draws from the
   machine's weak-memory PRNG, so the clear order is part of the
   deterministic trace contract. *)
let snapshot t =
  Machine.charge t.mach (t.n * t.mach.Machine.cost.Cost.card_probe);
  let wm = t.mach.Machine.wm in
  let exact =
    match Weakmem.mode wm with
    | Sc -> true
    | Relaxed ->
        Weakmem.commit_due wm ~now:(Machine.now t.mach);
        Weakmem.pending_count wm = 0
  in
  if exact then begin
    let ranges_desc =
      Bitvec.fold_set_ranges t.dirty_bits ~lo:0 ~hi:t.n ~init:[]
        ~f:(fun acc pos len -> (pos, len) :: acc)
    in
    let acc = ref [] in
    List.iter
      (fun (pos, len) ->
        for i = pos + len - 1 downto pos do
          clear t i;
          acc := i :: !acc
        done)
      ranges_desc;
    !acc
  end
  else begin
    (* Masked stores may hide a committed-dirty card (the section 5.3
       race) or expose a stale dirty value, so replay the exact byte
       loop. *)
    let acc = ref [] in
    for i = t.n - 1 downto 0 do
      if read t i <> 0 then begin
        clear t i;
        acc := i :: !acc
      end
    done;
    !acc
  end
