(** The card table.

    One dirty byte per 512-byte card, set by the write barrier without any
    fence (section 5.3).  Cleaning uses the paper's snapshot protocol:
    {!snapshot} scans the table, registers the dirty cards elsewhere and
    clears their indicators (step 1); the collector then forces every
    mutator to fence (step 2, the caller's job); the registered cards are
    then scanned (step 3).  Dirty-byte stores and reads go through the
    weak-memory system so the section 5.3 race is demonstrable. *)

type t

val create : Cgc_smp.Machine.t -> ncards:int -> t

val ncards : t -> int

val dirty : t -> int -> unit
(** Mark card dirty (the write-barrier store; no fence). *)

val is_dirty : t -> int -> bool

val clear : t -> int -> unit

val clear_all : t -> unit
(** Direct reset at collection-cycle initialisation. *)

val dirty_count : t -> int
(** Number of dirty cards, as committed memory.  O(1): the table keeps
    an incremental counter (and a word-level bit mirror) updated on
    every committed dirty/clean transition, so the profiler can sample
    this every tick without rescanning the table. *)

val recount : t -> int
(** O(ncards) committed-byte rescan — the reference the incremental
    {!dirty_count} is checked against by [Cgc_core.Verify]. *)

val snapshot : t -> int list
(** Step 1 of the cleaning protocol: atomically-per-card register and
    clear each dirty card, returning the registered card indices in
    ascending order.  Charges the per-card probe cost for the full table
    scan (the simulated cost is unchanged by the host-side word-scan
    fast path).  Cards dirtied by stores that are still sitting unfenced
    in a mutator's store buffer are {e not} seen — exactly the race the
    protocol's step 2 exists to close. *)
