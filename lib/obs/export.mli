(** Trace and metrics serialisation.

    Two formats, both deterministic (stable event order from
    {!Obs.events}, fixed-precision number formatting, no host clock):

    {ul
    {- {b Chrome [trace_event] JSON} — load the file in
       [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.  Spans
       become complete (["ph":"X"]) events, instants thread-scoped
       instant (["ph":"i"]) events; the simulated thread id becomes the
       viewer row, and the integer payload is exposed as [args.v].}
    {- {b CSV} — one row per GC cycle, produced by {!Cgc_core.Gstats};
       this module only provides the generic writer.}} *)

val chrome_json : cycles_per_us:float -> Event.t list -> string
(** Serialise (already-ordered) events, converting cycle timestamps to
    microseconds — the unit the trace-event spec mandates — at
    [cycles_per_us] simulated cycles per microsecond. *)

val csv : header:string list -> rows:string list list -> string
(** RFC-4180-enough CSV: comma-separated, ["\n"] line ends, fields
    containing commas or quotes are double-quoted. *)

val write_file : string -> string -> unit
(** [write_file path contents] — plain [open_out]/[output_string], binary
    mode so the bytes written are exactly the bytes compared by the
    determinism tests. *)
