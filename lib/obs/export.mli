(** Trace and metrics serialisation — and the matching re-parsers.

    Two formats, both deterministic (stable event order from
    {!Obs.events}, fixed-precision number formatting, no host clock):

    {ul
    {- {b Chrome [trace_event] JSON} — load the file in
       [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.  Spans
       become complete (["ph":"X"]) events, instants thread-scoped
       instant (["ph":"i"]) events; the simulated thread id becomes the
       viewer row, and the integer payload is exposed as [args.v].  The
       top-level object carries a [cgcSchema] version tag plus the
       clock rate and ring-drop counters, so [cgcsim analyze] can reject
       incompatible files and warn about truncated history.}
    {- {b CSV} — one row per GC cycle, produced by {!Cgc_core.Gstats};
       this module only provides the generic writer, with an optional
       [#schema=...] first line for the same version-rejection.}}

    {!parse_chrome_json} and {!parse_csv} invert the two writers exactly:
    re-exporting a parsed file reproduces it byte for byte (tested), which
    is what lets the profiler analyse previously written traces instead of
    only live runs. *)

val trace_schema : string
(** The schema tag written into (and required from) trace JSON files. *)

type trace_meta = {
  cycles_per_us : float;  (** simulated cycles per exported microsecond *)
  emitted : int;  (** total events emitted by the recording run *)
  dropped : int;  (** events lost to ring overflow before export *)
}

val chrome_json :
  ?emitted:int -> ?dropped:int -> cycles_per_us:float -> Event.t list -> string
(** Serialise (already-ordered) events, converting cycle timestamps to
    microseconds — the unit the trace-event spec mandates — at
    [cycles_per_us] simulated cycles per microsecond.  [emitted] and
    [dropped] (default 0) are recorded in the header so analysis of the
    file can report how much history the rings lost. *)

val chrome_json_events :
  ?emitted:int -> ?dropped:int -> cycles_per_us:float -> Event.t array -> string
(** {!chrome_json} over the flat array {!Cgc_obs.Obs.events_array}
    produces — identical output bytes, without building a list of the
    whole trace first. *)

val parse_chrome_json : string -> (trace_meta * Event.t list, string) result
(** Strict inverse of {!chrome_json}: recovers the integer cycle
    timestamps (exact for [cycles_per_us < 2000]) and typed codes.
    [Error] carries a human-readable reason — unsupported schema,
    unknown event name, or malformed structure. *)

val csv : ?schema:string -> header:string list -> string list list -> string
(** RFC-4180-enough CSV: comma-separated, ["\n"] line ends, fields
    containing commas or quotes are double-quoted.  [schema] (off by
    default) prepends a [#schema=NAME] line identifying the column
    contract to {!parse_csv}. *)

val parse_csv :
  string -> (string option * string list * string list list, string) result
(** [Ok (schema, header, rows)] — inverse of {!csv}, including quoted
    fields.  [schema] is [None] when the file has no [#schema=] line. *)

val write_file : string -> string -> unit
(** [write_file path contents] — plain [open_out]/[output_string], binary
    mode so the bytes written are exactly the bytes compared by the
    determinism tests. *)
