type armed = {
  cap : int;
  now : unit -> int;
  tid : unit -> int;
  rings : (int, Ring.t) Hashtbl.t;
  mutable count : int;
  mutable last : (int * Ring.t) option;
      (* cache of the last (tid, ring) pair: consecutive events
         overwhelmingly come from the same thread, so the hot path skips
         the per-event Hashtbl lookup *)
}

type t = Null | On of armed

let null = Null

let create ?(ring_capacity = 65536) ~now ~tid () =
  On
    {
      cap = ring_capacity;
      now;
      tid;
      rings = Hashtbl.create 16;
      count = 0;
      last = None;
    }

let enabled = function Null -> false | On _ -> true

let ring_of a tid =
  match a.last with
  | Some (t0, r) when t0 = tid -> r
  | _ ->
      let r =
        match Hashtbl.find_opt a.rings tid with
        | Some r -> r
        | None ->
            let r = Ring.create ~capacity:a.cap in
            Hashtbl.add a.rings tid r;
            r
      in
      a.last <- Some (tid, r);
      r

(* All emission funnels through here: one ring-cache probe plus an
   allocation-free field append. *)
let emit a ~ts ~dur ~tid ~code ~arg =
  a.count <- a.count + 1;
  Ring.add_fields (ring_of a tid) ~ts ~dur ~tid ~code ~arg

let instant t ?(arg = 0) code =
  match t with
  | Null -> ()
  | On a -> emit a ~ts:(a.now ()) ~dur:(-1) ~tid:(a.tid ()) ~code ~arg

let span t ?(arg = 0) ~start code =
  match t with
  | Null -> ()
  | On a ->
      let now = a.now () in
      emit a ~ts:start ~dur:(max 0 (now - start)) ~tid:(a.tid ()) ~code ~arg

let span_at t ?(arg = 0) ~ts ~dur code =
  match t with
  | Null -> ()
  | On a -> emit a ~ts ~dur:(max 0 dur) ~tid:(a.tid ()) ~code ~arg

let instant_host t ?(arg = 0) ~tid ~ts code =
  match t with
  | Null -> ()
  | On a -> emit a ~ts ~dur:(-1) ~tid ~code ~arg

let span_host t ?(arg = 0) ~tid ~ts ~dur code =
  match t with
  | Null -> ()
  | On a -> emit a ~ts ~dur:(max 0 dur) ~tid ~code ~arg

let emitted = function Null -> 0 | On a -> a.count

let dropped = function
  | Null -> 0
  | On a -> Hashtbl.fold (fun _ r acc -> acc + Ring.dropped r) a.rings 0

let dropped_by_thread = function
  | Null -> []
  | On a ->
      Hashtbl.fold
        (fun tid r acc ->
          if Ring.dropped r > 0 then (tid, Ring.dropped r) :: acc else acc)
        a.rings []
      |> List.sort compare

(* The surviving events of every ring, merged and sorted by timestamp.
   Stable: equal timestamps keep the (tid, emission order) order the
   concatenation establishes, so the listing is reproducible — and
   byte-for-byte the order the previous list implementation produced.
   Built as an array because the analysis and export passes are
   length-heavy: one flat array of a few hundred thousand records sorts
   and scans several times faster than the cons-cell chain
   [List.stable_sort] used to walk. *)
let events_array t =
  match t with
  | Null -> [||]
  | On a ->
      let tids =
        List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) a.rings [])
      in
      let n =
        List.fold_left
          (fun acc tid -> acc + Ring.length (Hashtbl.find a.rings tid))
          0 tids
      in
      if n = 0 then [||]
      else begin
        (* Gather every ring's scalars with segment blits — no per-event
           boxing — then sort [ts * 2^b + index] keys: the index makes
           every key unique, so an (unstable) int sort reproduces the
           stable-by-timestamp order exactly, and records are
           materialised once, already in final order. *)
        let ts = Array.make n 0
        and dur = Array.make n 0
        and tid = Array.make n 0
        and arg = Array.make n 0
        and code = Array.make n Event.Cycle_start in
        let pos = ref 0 in
        List.iter
          (fun t0 ->
            pos :=
              Ring.blit_fields (Hashtbl.find a.rings t0) ~ts ~dur ~tid ~arg
                ~code ~pos:!pos)
          tids;
        let bits =
          let b = ref 1 in
          while 1 lsl !b < n do incr b done;
          !b
        in
        let max_ts = Array.fold_left max 0 ts in
        if max_ts < 1 lsl (61 - bits) && Array.fold_left min 0 ts >= 0 then begin
          let mask = (1 lsl bits) - 1 in
          let key = Array.init n (fun i -> (ts.(i) lsl bits) lor i) in
          (* stable_sort is merge sort: measurably faster than [sort]'s
             heapsort on these mostly-ascending keys (stability itself is
             irrelevant — keys are unique). *)
          Array.stable_sort (fun (a : int) (b : int) -> compare a b) key;
          Array.init n (fun j ->
              let i = key.(j) land mask in
              {
                Event.ts = ts.(i);
                dur = dur.(i);
                tid = tid.(i);
                code = code.(i);
                arg = arg.(i);
              })
        end
        else begin
          (* Timestamps too large to pack (cannot happen for simulated
             clocks, which start at zero): sort the records directly. *)
          let arr =
            Array.init n (fun i ->
                {
                  Event.ts = ts.(i);
                  dur = dur.(i);
                  tid = tid.(i);
                  code = code.(i);
                  arg = arg.(i);
                })
          in
          Array.stable_sort
            (fun (x : Event.t) (y : Event.t) -> compare x.ts y.ts)
            arr;
          arr
        end
      end

let events t = Array.to_list (events_array t)

let clear = function
  | Null -> ()
  | On a ->
      Hashtbl.iter (fun _ r -> Ring.clear r) a.rings;
      a.count <- 0
