type armed = {
  cap : int;
  now : unit -> int;
  tid : unit -> int;
  rings : (int, Ring.t) Hashtbl.t;
  mutable count : int;
}

type t = Null | On of armed

let null = Null

let create ?(ring_capacity = 65536) ~now ~tid () =
  On { cap = ring_capacity; now; tid; rings = Hashtbl.create 16; count = 0 }

let enabled = function Null -> false | On _ -> true

let ring_of a tid =
  match Hashtbl.find_opt a.rings tid with
  | Some r -> r
  | None ->
      let r = Ring.create ~capacity:a.cap in
      Hashtbl.add a.rings tid r;
      r

let push a (e : Event.t) =
  a.count <- a.count + 1;
  Ring.add (ring_of a e.tid) e

let instant t ?(arg = 0) code =
  match t with
  | Null -> ()
  | On a -> push a { Event.ts = a.now (); dur = -1; tid = a.tid (); code; arg }

let span t ?(arg = 0) ~start code =
  match t with
  | Null -> ()
  | On a ->
      let now = a.now () in
      push a
        { Event.ts = start; dur = max 0 (now - start); tid = a.tid (); code; arg }

let span_at t ?(arg = 0) ~ts ~dur code =
  match t with
  | Null -> ()
  | On a -> push a { Event.ts; dur = max 0 dur; tid = a.tid (); code; arg }

let instant_host t ?(arg = 0) ~tid ~ts code =
  match t with
  | Null -> ()
  | On a -> push a { Event.ts = ts; dur = -1; tid; code; arg }

let span_host t ?(arg = 0) ~tid ~ts ~dur code =
  match t with
  | Null -> ()
  | On a -> push a { Event.ts = ts; dur = max 0 dur; tid; code; arg }

let emitted = function Null -> 0 | On a -> a.count

let dropped = function
  | Null -> 0
  | On a -> Hashtbl.fold (fun _ r acc -> acc + Ring.dropped r) a.rings 0

let dropped_by_thread = function
  | Null -> []
  | On a ->
      Hashtbl.fold
        (fun tid r acc ->
          if Ring.dropped r > 0 then (tid, Ring.dropped r) :: acc else acc)
        a.rings []
      |> List.sort compare

let events t =
  match t with
  | Null -> []
  | On a ->
      let tids =
        List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) a.rings [])
      in
      let per_thread =
        List.concat_map (fun tid -> Ring.to_list (Hashtbl.find a.rings tid)) tids
      in
      (* Stable: equal timestamps keep the (tid, emission order) order the
         concatenation established, so the listing is reproducible. *)
      List.stable_sort
        (fun (x : Event.t) (y : Event.t) -> compare x.ts y.ts)
        per_thread

let clear = function
  | Null -> ()
  | On a ->
      Hashtbl.iter (fun _ r -> Ring.clear r) a.rings;
      a.count <- 0
