type code =
  | Cycle_start
  | Cycle_end
  | Conc_mark
  | Stw_pause
  | Stw_mark
  | Stw_sweep
  | Stw_compact
  | Mut_increment
  | Bg_chunk
  | Root_scan
  | Card_pass
  | Card_clean_conc
  | Card_clean_stw
  | Packet_get
  | Packet_put
  | Packet_defer
  | Packet_recycle
  | Packet_steal
  | Sweep_chunk
  | Fence_flush
  | Alloc_failure
  | Fault_inject
  | Degrade_force_finish
  | Degrade_full_stw
  | Degrade_compact
  | Oom
  | Verify_pass
  | Incr_factor
  | Req_arrive
  | Req_start
  | Req_done
  | Req_shed
  | Req_timeout
  | Req_retry
  | Req_redirect
  | Req_hedge
  | Cluster_fault
  | Minor_start
  | Minor_done
  | Promote
  | Nursery_fill

type t = { ts : int; dur : int; tid : int; code : code; arg : int }

let instant e = e.dur < 0

let name = function
  | Cycle_start -> "cycle-start"
  | Cycle_end -> "cycle-end"
  | Conc_mark -> "concurrent-mark"
  | Stw_pause -> "stw-pause"
  | Stw_mark -> "stw-mark"
  | Stw_sweep -> "stw-sweep"
  | Stw_compact -> "stw-compact"
  | Mut_increment -> "mutator-increment"
  | Bg_chunk -> "background-chunk"
  | Root_scan -> "root-scan"
  | Card_pass -> "card-pass"
  | Card_clean_conc -> "card-clean-concurrent"
  | Card_clean_stw -> "card-clean-stw"
  | Packet_get -> "packet-get"
  | Packet_put -> "packet-put"
  | Packet_defer -> "packet-defer"
  | Packet_recycle -> "packet-recycle"
  | Packet_steal -> "packet-steal"
  | Sweep_chunk -> "sweep-chunk"
  | Fence_flush -> "fence-flush"
  | Alloc_failure -> "alloc-failure"
  | Fault_inject -> "fault-inject"
  | Degrade_force_finish -> "degrade-force-finish"
  | Degrade_full_stw -> "degrade-full-stw"
  | Degrade_compact -> "degrade-compact"
  | Oom -> "out-of-memory"
  | Verify_pass -> "verify-pass"
  | Incr_factor -> "increment-factor"
  | Req_arrive -> "req-arrive"
  | Req_start -> "req-start"
  | Req_done -> "req-done"
  | Req_shed -> "req-shed"
  | Req_timeout -> "req-timeout"
  | Req_retry -> "req-retry"
  | Req_redirect -> "req-redirect"
  | Req_hedge -> "req-hedge"
  | Cluster_fault -> "cluster-fault"
  | Minor_start -> "minor-start"
  | Minor_done -> "minor-done"
  | Promote -> "promote"
  | Nursery_fill -> "nursery-fill"

let cat = function
  | Cycle_start | Cycle_end -> "cycle"
  | Conc_mark | Mut_increment | Bg_chunk -> "phase"
  | Stw_pause | Stw_mark | Stw_sweep | Stw_compact -> "pause"
  | Root_scan -> "root"
  | Card_pass | Card_clean_conc | Card_clean_stw -> "card"
  | Packet_get | Packet_put | Packet_defer | Packet_recycle | Packet_steal ->
      "packet"
  | Sweep_chunk -> "sweep"
  | Fence_flush -> "fence"
  | Alloc_failure -> "cycle"
  | Fault_inject -> "fault"
  | Degrade_force_finish | Degrade_full_stw | Degrade_compact | Oom ->
      "degrade"
  | Verify_pass -> "verify"
  | Incr_factor -> "phase"
  | Req_arrive | Req_start | Req_done | Req_shed | Req_timeout | Req_retry
  | Req_redirect | Req_hedge ->
      "server"
  | Cluster_fault -> "fault"
  | Minor_start | Minor_done | Promote | Nursery_fill -> "gen"

let all_codes =
  [
    Cycle_start;
    Cycle_end;
    Conc_mark;
    Stw_pause;
    Stw_mark;
    Stw_sweep;
    Stw_compact;
    Mut_increment;
    Bg_chunk;
    Root_scan;
    Card_pass;
    Card_clean_conc;
    Card_clean_stw;
    Packet_get;
    Packet_put;
    Packet_defer;
    Packet_recycle;
    Packet_steal;
    Sweep_chunk;
    Fence_flush;
    Alloc_failure;
    Fault_inject;
    Degrade_force_finish;
    Degrade_full_stw;
    Degrade_compact;
    Oom;
    Verify_pass;
    Incr_factor;
    Req_arrive;
    Req_start;
    Req_done;
    Req_shed;
    Req_timeout;
    Req_retry;
    Req_redirect;
    Req_hedge;
    Cluster_fault;
    Minor_start;
    Minor_done;
    Promote;
    Nursery_fill;
  ]

let of_name =
  let tbl = Hashtbl.create 32 in
  List.iter (fun c -> Hashtbl.replace tbl (name c) c) all_codes;
  fun n -> Hashtbl.find_opt tbl n
