type code =
  | Cycle_start
  | Cycle_end
  | Conc_mark
  | Stw_pause
  | Stw_mark
  | Stw_sweep
  | Stw_compact
  | Mut_increment
  | Bg_chunk
  | Root_scan
  | Card_pass
  | Card_clean_conc
  | Card_clean_stw
  | Packet_get
  | Packet_put
  | Packet_defer
  | Packet_recycle
  | Packet_steal
  | Sweep_chunk
  | Fence_flush
  | Alloc_failure

type t = { ts : int; dur : int; tid : int; code : code; arg : int }

let instant e = e.dur < 0

let name = function
  | Cycle_start -> "cycle-start"
  | Cycle_end -> "cycle-end"
  | Conc_mark -> "concurrent-mark"
  | Stw_pause -> "stw-pause"
  | Stw_mark -> "stw-mark"
  | Stw_sweep -> "stw-sweep"
  | Stw_compact -> "stw-compact"
  | Mut_increment -> "mutator-increment"
  | Bg_chunk -> "background-chunk"
  | Root_scan -> "root-scan"
  | Card_pass -> "card-pass"
  | Card_clean_conc -> "card-clean-concurrent"
  | Card_clean_stw -> "card-clean-stw"
  | Packet_get -> "packet-get"
  | Packet_put -> "packet-put"
  | Packet_defer -> "packet-defer"
  | Packet_recycle -> "packet-recycle"
  | Packet_steal -> "packet-steal"
  | Sweep_chunk -> "sweep-chunk"
  | Fence_flush -> "fence-flush"
  | Alloc_failure -> "alloc-failure"

let cat = function
  | Cycle_start | Cycle_end -> "cycle"
  | Conc_mark | Mut_increment | Bg_chunk -> "phase"
  | Stw_pause | Stw_mark | Stw_sweep | Stw_compact -> "pause"
  | Root_scan -> "root"
  | Card_pass | Card_clean_conc | Card_clean_stw -> "card"
  | Packet_get | Packet_put | Packet_defer | Packet_recycle | Packet_steal ->
      "packet"
  | Sweep_chunk -> "sweep"
  | Fence_flush -> "fence"
  | Alloc_failure -> "cycle"

let all_codes =
  [
    Cycle_start;
    Cycle_end;
    Conc_mark;
    Stw_pause;
    Stw_mark;
    Stw_sweep;
    Stw_compact;
    Mut_increment;
    Bg_chunk;
    Root_scan;
    Card_pass;
    Card_clean_conc;
    Card_clean_stw;
    Packet_get;
    Packet_put;
    Packet_defer;
    Packet_recycle;
    Packet_steal;
    Sweep_chunk;
    Fence_flush;
    Alloc_failure;
  ]
