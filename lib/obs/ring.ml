(* Events are stored as parallel scalar arrays rather than an array of
   Event.t records: [add_fields] is then five unboxed stores (code is a
   constant-constructor variant, i.e. an immediate), so an armed sink
   allocates nothing per event.  The write cursor wraps by compare
   instead of [mod], which costs a hardware division per event and is
   why the previous implementation wanted power-of-two capacities;
   compare-wrap is division-free at every capacity.

   Storage is grown geometrically up to [cap] as events actually arrive:
   rings are preallocated per simulated thread and most threads emit far
   fewer events than the configured capacity (a pBOB cell spreads a few
   hundred thousand events over hundreds of terminal threads), so
   eagerly sizing every ring to capacity would cost hundreds of
   megabytes of zeroed arrays per cell.  The cursor only wraps once
   [total] reaches [cap], by which point the arrays are at full size, so
   growth never moves a wrapped ring.  Records are only materialised by
   the cold read-side ([iter]/[to_list]). *)

type t = {
  cap : int;
  mutable size : int; (* current physical array size, <= cap *)
  mutable ts : int array;
  mutable dur : int array;
  mutable tid : int array;
  mutable arg : int array;
  mutable code : Event.code array;
  mutable pos : int; (* next write slot *)
  mutable total : int; (* events ever added since the last clear *)
}

let initial_size cap = min cap 256

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  let size = initial_size capacity in
  {
    cap = capacity;
    size;
    ts = Array.make size 0;
    dur = Array.make size 0;
    tid = Array.make size 0;
    arg = Array.make size 0;
    code = Array.make size Event.Cycle_start;
    pos = 0;
    total = 0;
  }

let capacity t = t.cap

let grow t =
  (* Event volume per ring is heavy-tailed: most threads never outgrow
     the initial arrays, and a thread that does usually goes on to fill
     the ring.  Jump 16x on the first growth and straight to [cap] on the
     second, so a busy ring recopies its five arrays at most twice. *)
  let size = if t.size = initial_size t.cap then min t.cap (16 * t.size) else t.cap in
  let g (a : int array) =
    let b = Array.make size 0 in
    Array.blit a 0 b 0 t.size;
    b
  in
  t.ts <- g t.ts;
  t.dur <- g t.dur;
  t.tid <- g t.tid;
  t.arg <- g t.arg;
  let c = Array.make size Event.Cycle_start in
  Array.blit t.code 0 c 0 t.size;
  t.code <- c;
  t.size <- size

let add_fields t ~ts ~dur ~tid ~code ~arg =
  let p = t.pos in
  if p >= t.size then grow t;
  t.ts.(p) <- ts;
  t.dur.(p) <- dur;
  t.tid.(p) <- tid;
  t.arg.(p) <- arg;
  t.code.(p) <- code;
  let p1 = p + 1 in
  t.pos <- (if p1 = t.cap then 0 else p1);
  t.total <- t.total + 1

let add t (e : Event.t) =
  add_fields t ~ts:e.Event.ts ~dur:e.Event.dur ~tid:e.Event.tid
    ~code:e.Event.code ~arg:e.Event.arg

let length t = if t.total < t.cap then t.total else t.cap
let dropped t = if t.total > t.cap then t.total - t.cap else 0

let iter t f =
  let len = length t in
  (* oldest surviving event: slot 0 until the ring wraps, then the next
     slot to be overwritten *)
  let start = if t.total <= t.cap then 0 else t.pos in
  for i = 0 to len - 1 do
    let j = start + i in
    let j = if j >= t.cap then j - t.cap else j in
    f
      {
        Event.ts = t.ts.(j);
        dur = t.dur.(j);
        tid = t.tid.(j);
        code = t.code.(j);
        arg = t.arg.(j);
      }
  done

let to_list t =
  let out = ref [] in
  iter t (fun e -> out := e :: !out);
  List.rev !out

(* Copy the surviving events, oldest first, into parallel destination
   arrays starting at [pos]; returns the next free index.  Two segment
   blits instead of a per-event record materialisation — this is how the
   merged trace view assembles a few hundred thousand events without
   boxing any of them. *)
let blit_fields t ~ts ~dur ~tid ~arg ~code ~pos =
  let len = length t in
  let start = if t.total <= t.cap then 0 else t.pos in
  let seg1 = min len (t.cap - start) in
  let copy (src : int array) (dst : int array) =
    Array.blit src start dst pos seg1;
    if len > seg1 then Array.blit src 0 dst (pos + seg1) (len - seg1)
  in
  copy t.ts ts;
  copy t.dur dur;
  copy t.tid tid;
  copy t.arg arg;
  Array.blit t.code start code pos seg1;
  if len > seg1 then Array.blit t.code 0 code (pos + seg1) (len - seg1);
  pos + len

let clear t =
  t.pos <- 0;
  t.total <- 0
