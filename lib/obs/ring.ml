type t = {
  buf : Event.t array;
  mutable start : int; (* index of the oldest event *)
  mutable len : int;
  mutable lost : int;
}

let dummy =
  { Event.ts = 0; dur = -1; tid = 0; code = Event.Cycle_start; arg = 0 }

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { buf = Array.make capacity dummy; start = 0; len = 0; lost = 0 }

let capacity t = Array.length t.buf

let add t e =
  let cap = capacity t in
  if t.len < cap then begin
    t.buf.((t.start + t.len) mod cap) <- e;
    t.len <- t.len + 1
  end
  else begin
    t.buf.(t.start) <- e;
    t.start <- (t.start + 1) mod cap;
    t.lost <- t.lost + 1
  end

let length t = t.len
let dropped t = t.lost

let iter t f =
  let cap = capacity t in
  for i = 0 to t.len - 1 do
    f t.buf.((t.start + i) mod cap)
  done

let to_list t =
  let out = ref [] in
  iter t (fun e -> out := e :: !out);
  List.rev !out

let clear t =
  t.start <- 0;
  t.len <- 0;
  t.lost <- 0
