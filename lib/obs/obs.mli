(** The event sink threaded through the simulator.

    A sink is either {!null} — every emit is a single pattern match and a
    return, so tracing is zero-cost when off — or armed, in which case
    events are appended to a bounded {!Ring} per emitting simulated
    thread.  Timestamps come from the [now] closure (the simulated
    per-CPU clock, never the host clock) and thread ids from the [tid]
    closure, so an armed sink is fully deterministic: two runs with the
    same seed produce identical event sequences, and {!events} orders
    them by simulated time with a stable (thread id, emission order)
    tie-break. *)

type t

val null : t
(** The no-op sink: {!enabled} is [false], emits do nothing, {!events}
    is empty. *)

val create : ?ring_capacity:int -> now:(unit -> int) -> tid:(unit -> int) -> unit -> t
(** An armed sink.  [ring_capacity] (default [65536]) bounds each
    per-thread ring; overflow drops the oldest events and is reported by
    {!dropped}.  [now] and [tid] must only be called from contexts where
    they are valid — in practice, from inside simulated threads. *)

val enabled : t -> bool

val instant : t -> ?arg:int -> Event.code -> unit
(** Record a point event at the current simulated time. *)

val span : t -> ?arg:int -> start:int -> Event.code -> unit
(** Record a span from simulated time [start] to now. *)

val span_at : t -> ?arg:int -> ts:int -> dur:int -> Event.code -> unit
(** Record a span with an explicit extent — for callers that learn the
    bounds after the fact (e.g. the pause length returned by
    [Sched.restart_world]). *)

val instant_host : t -> ?arg:int -> tid:int -> ts:int -> Event.code -> unit
(** Record a point event from host-side code (e.g. an [on_advance]
    hook), where the sink's [now]/[tid] closures are not valid: both the
    timestamp and the emitting thread id are supplied explicitly.  A
    synthetic [tid] (such as [-1] for the server's arrival process) gets
    its own ring, keeping per-thread ordering guarantees intact. *)

val span_host : t -> ?arg:int -> tid:int -> ts:int -> dur:int -> Event.code -> unit
(** {!span_at} with an explicit thread id, for host-side callers. *)

val emitted : t -> int
(** Total events emitted (including any later overwritten). *)

val dropped : t -> int
(** Events lost to ring overflow, across all threads. *)

val dropped_by_thread : t -> (int * int) list
(** [(tid, dropped)] for every thread whose ring overflowed, sorted by
    thread id — lets reports name the lossy rings instead of only the
    total. *)

val events : t -> Event.t list
(** Every surviving event, sorted by timestamp; ties broken by thread id
    then emission order, so the result is deterministic. *)

val events_array : t -> Event.t array
(** {!events} as a flat array (same contents, same order).  The analysis
    and export passes prefer this form: one contiguous array of records
    sorts and scans several times faster than a list of the same
    length. *)

val clear : t -> unit
(** Drop all recorded events (e.g. after a warm-up window). *)
