(** Bounded per-worker event ring.

    Each simulated thread that emits trace events gets one of these.  The
    capacity is fixed at creation; once full, the {e oldest} event is
    overwritten so that the tail of a run — where the interesting
    behaviour usually is — survives, and a drop counter records how much
    history was lost.  Appends are O(1) and allocation-free, so an armed
    sink stays cheap on the collector's hot paths; {!iter} yields the
    surviving events oldest-first. *)

type t

val create : capacity:int -> t
(** [Invalid_argument] unless [capacity > 0]. *)

val capacity : t -> int

val add : t -> Event.t -> unit

val length : t -> int
(** Events currently held (at most [capacity]). *)

val dropped : t -> int
(** Events overwritten since creation (or the last {!clear}). *)

val iter : t -> (Event.t -> unit) -> unit
(** Oldest surviving event first. *)

val to_list : t -> Event.t list

val clear : t -> unit
