(** Bounded per-worker event ring.

    Each simulated thread that emits trace events gets one of these.  The
    capacity is fixed at creation; once full, the {e oldest} event is
    overwritten so that the tail of a run — where the interesting
    behaviour usually is — survives, and a drop counter records how much
    history was lost.  Appends are O(1) and allocation-free, so an armed
    sink stays cheap on the collector's hot paths; {!iter} yields the
    surviving events oldest-first. *)

type t

val create : capacity:int -> t
(** [Invalid_argument] unless [capacity > 0]. *)

val capacity : t -> int

val add : t -> Event.t -> unit

val add_fields :
  t -> ts:int -> dur:int -> tid:int -> code:Event.code -> arg:int -> unit
(** Like {!add} but takes the event's fields directly, so the armed hot
    path never materialises an [Event.t] record: events live in the
    ring as parallel scalar arrays and appends allocate nothing. *)

val length : t -> int
(** Events currently held (at most [capacity]). *)

val dropped : t -> int
(** Events overwritten since creation (or the last {!clear}). *)

val iter : t -> (Event.t -> unit) -> unit
(** Oldest surviving event first. *)

val to_list : t -> Event.t list

val blit_fields :
  t ->
  ts:int array ->
  dur:int array ->
  tid:int array ->
  arg:int array ->
  code:Event.code array ->
  pos:int ->
  int
(** Copy the surviving events (oldest first, same order as {!iter}) into
    parallel destination arrays starting at index [pos]; returns the
    index one past the last event written.  The destinations must have
    room for {!length} more entries.  Used by the merged trace view to
    assemble large traces without materialising per-event records. *)

val clear : t -> unit
