(** Typed trace events.

    Every paper-relevant action of the collector emits one of these codes
    (see [docs/OBSERVABILITY.md] for the full catalogue and the mapping
    to the paper's figures and tables).  An event is either a {e span}
    ([dur >= 0], a phase with extent in simulated time) or an {e instant}
    ([dur < 0], a point occurrence); both carry the emitting simulated
    thread id and one integer payload whose meaning depends on the
    code. *)

type code =
  | Cycle_start  (** instant; arg = cycle number *)
  | Cycle_end  (** instant; arg = cycle number *)
  | Conc_mark
      (** span: the whole concurrent marking phase, kickoff to world-stop;
          arg = slots marked concurrently *)
  | Stw_pause  (** span: the full stop-the-world pause *)
  | Stw_mark  (** span: mark completion inside the pause *)
  | Stw_sweep  (** span: parallel bitwise sweep inside the pause *)
  | Stw_compact  (** span: evacuation + fix-up inside the pause *)
  | Mut_increment
      (** span: one mutator tracing increment (section 3);
          arg = slots traced *)
  | Bg_chunk  (** instant: a background-thread tracing chunk; arg = slots *)
  | Root_scan  (** instant: a stack or global-area scan; arg = roots pushed *)
  | Card_pass
      (** instant: a card-cleaning pass snapshot was taken;
          arg = cards captured *)
  | Card_clean_conc  (** instant: one card cleaned concurrently; arg = slots *)
  | Card_clean_stw  (** instant: one card cleaned inside the pause *)
  | Packet_get  (** instant: input work packet acquired; arg = entries *)
  | Packet_put  (** instant: packet returned to the pool; arg = entries *)
  | Packet_defer
      (** instant: packet parked in the Deferred sub-pool (section 5.2);
          arg = entries *)
  | Packet_recycle  (** instant: deferred packets recycled; arg = packets *)
  | Packet_steal
      (** instant: a work-stealing transfer (section 4.4 ablation);
          arg = entries stolen *)
  | Sweep_chunk
      (** span (eager region) or instant (lazy-sweep step);
          arg = live slots found *)
  | Fence_flush  (** instant: a memory fence executed; arg = fence-site id *)
  | Alloc_failure  (** instant: allocation failed, forcing a collection *)
  | Fault_inject
      (** instant: the fault injector fired; arg = the scenario's
          [Cgc_fault.Fault.index] *)
  | Degrade_force_finish
      (** instant: ladder rung 1 — allocation failure force-finished the
          in-flight concurrent cycle; arg = cycle number *)
  | Degrade_full_stw
      (** instant: ladder rung 2 — a full stop-the-world collection was
          forced; arg = cycle number *)
  | Degrade_compact
      (** instant: ladder rung 3 — an emergency compacting collection was
          forced; arg = cycle number *)
  | Oom
      (** instant: the degradation ladder was exhausted and a typed
          [Out_of_memory] is about to be raised; arg = request size *)
  | Verify_pass
      (** instant: a heap invariant verification pass completed cleanly;
          arg = objects walked *)
  | Incr_factor
      (** instant: one mutator tracing increment's tracing factor
          (actual/assigned, the Table 4 quantity), fixed-point scaled by
          1e6 in [arg].  Emitted exactly when the factor is sampled into
          [Gstats.tracing_factor], so trace analysis can reproduce the
          load-balance statistics. *)
  | Req_arrive
      (** instant: a request was admitted to the server queue
          ([cgc_server]); arg = queue depth after enqueue.  Emitted
          host-side with the synthetic server tid. *)
  | Req_start
      (** span: a request's queueing delay — [ts] is the arrival cycle,
          [dur] the wait until a worker picked it up; arg = request id. *)
  | Req_done
      (** span: a request's service time — [ts] is the dispatch cycle,
          [dur] the service duration; arg = end-to-end latency in µs. *)
  | Req_shed
      (** instant: an arrival was dropped by overload control;
          arg = 0 for queue-full drop-newest, 1 for admission throttle. *)
  | Req_timeout
      (** instant: a queued request exceeded its deadline and was
          abandoned at dispatch; arg = request id. *)
  | Req_retry
      (** instant: an admitted request had retried at the fleet front end
          before landing on this shard; arg = the number of retries (its
          backoff is charged to the request's span).  Emitted host-side at
          admission with the synthetic server tid. *)
  | Req_redirect
      (** instant: an admitted request was rerouted away from its
          first-choice shard (dark arc, crashed or flapping shard);
          arg = the first-choice shard id it was diverted from. *)
  | Req_hedge
      (** instant: an admitted request was hedged at the front end;
          arg = 1 when the hedge won (the request landed on the hedge
          target), 0 when the original choice was kept. *)
  | Cluster_fault
      (** instant: a cluster chaos scenario touched this shard — a crash,
          a cold restart, a brownout window opening, or a ring-flap
          leave/join; arg = the scenario's [Cgc_fault.Cluster_fault.index].
          Emitted host-side with the synthetic server tid into the
          affected shard incarnation's trace. *)
  | Minor_start
      (** instant: a minor (nursery) collection began ([Gen] mode);
          arg = nursery slots in use at the trigger. *)
  | Minor_done
      (** span: one whole minor collection — [ts] at the trigger, [dur]
          the time billed to the allocating mutator; arg = slots
          promoted to the old space. *)
  | Promote
      (** instant: one minor collection's survivor volume left the
          nursery; arg = slots copied into the old space (0 when
          everything died young). *)
  | Nursery_fill
      (** instant: a mutator carved a fresh allocation chunk out of the
          nursery; arg = nursery slots still unclaimed after the
          carve. *)

type t = {
  ts : int;  (** simulated cycles at the event (span: at its start) *)
  dur : int;  (** span length in cycles; negative for instants *)
  tid : int;  (** simulated thread id of the emitter *)
  code : code;
  arg : int;
}

val instant : t -> bool

val name : code -> string
(** Stable lowercase-dashed name, e.g. ["stw-pause"] — the [name] field
    of the Chrome trace event. *)

val cat : code -> string
(** Coarse grouping (["phase"], ["pause"], ["packet"], ["card"],
    ["sweep"], ["root"], ["fence"], ["cycle"], ["server"], ["gen"]) —
    the [cat] field used by trace-viewer filtering. *)

val all_codes : code list
(** Every code, in declaration order — lets docs and tests enumerate the
    catalogue without chasing the variant. *)

val of_name : string -> code option
(** Inverse of {!name} — used by the trace re-parser. *)
