let trace_schema = "cgcsim-trace-v1"

let us ~cycles_per_us cycles = float_of_int cycles /. cycles_per_us

type trace_meta = {
  cycles_per_us : float;
  emitted : int;
  dropped : int;
}

let add_event b ~cycles_per_us i (e : Event.t) =
  if i > 0 then Buffer.add_char b ',';
  Buffer.add_string b "\n{\"name\":\"";
  Buffer.add_string b (Event.name e.code);
  Buffer.add_string b "\",\"cat\":\"";
  Buffer.add_string b (Event.cat e.code);
  if Event.instant e then
    (* Thread-scoped instant event. *)
    Buffer.add_string b "\",\"ph\":\"i\",\"s\":\"t\""
  else begin
    Buffer.add_string b "\",\"ph\":\"X\",\"dur\":";
    Buffer.add_string b (Printf.sprintf "%.3f" (us ~cycles_per_us e.dur))
  end;
  Buffer.add_string b
    (Printf.sprintf ",\"ts\":%.3f,\"pid\":0,\"tid\":%d,\"args\":{\"v\":%d}}"
       (us ~cycles_per_us e.ts) e.tid e.arg)

let chrome_header ~cycles_per_us ~emitted ~dropped =
  Printf.sprintf
    "{\"displayTimeUnit\":\"ms\",\"cgcSchema\":\"%s\",\"cyclesPerUs\":%.3f,\"emitted\":%d,\"dropped\":%d,\"traceEvents\":["
    trace_schema cycles_per_us emitted dropped

let chrome_json ?(emitted = 0) ?(dropped = 0) ~cycles_per_us events =
  let b = Buffer.create 65536 in
  Buffer.add_string b (chrome_header ~cycles_per_us ~emitted ~dropped);
  List.iteri (add_event b ~cycles_per_us) events;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let chrome_json_events ?(emitted = 0) ?(dropped = 0) ~cycles_per_us
    (events : Event.t array) =
  let b = Buffer.create (65536 + (96 * Array.length events)) in
  Buffer.add_string b (chrome_header ~cycles_per_us ~emitted ~dropped);
  Array.iteri (add_event b ~cycles_per_us) events;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Chrome-trace re-parser.

   Strict by design: it accepts exactly the shape [chrome_json] writes
   (schema tag included), recovering the integer cycle timestamps from
   the fixed-precision microsecond fields.  Rounding is exact as long as
   [cycles_per_us < 2000]: the %.3f formatting error is at most
   0.0005 us, i.e. under half a cycle.  Anything else is rejected with a
   message rather than mis-parsed. *)

exception Bad of string

let parse_chrome_json s =
  let pos = ref 0 in
  let len = String.length s in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let literal l =
    let n = String.length l in
    if !pos + n <= len && String.sub s !pos n = l then pos := !pos + n
    else fail (Printf.sprintf "expected %S" l)
  in
  let peek l =
    let n = String.length l in
    !pos + n <= len && String.sub s !pos n = l
  in
  let until_quote () =
    let start = !pos in
    while !pos < len && s.[!pos] <> '"' do incr pos done;
    if !pos >= len then fail "unterminated string";
    let r = String.sub s start (!pos - start) in
    incr pos;
    r
  in
  let number () =
    let start = !pos in
    while
      !pos < len
      && (match s.[!pos] with '0' .. '9' | '-' | '.' -> true | _ -> false)
    do incr pos done;
    if !pos = start then fail "expected a number";
    String.sub s start (!pos - start)
  in
  let int_field () = int_of_string (number ()) in
  let float_field () = float_of_string (number ()) in
  try
    literal "{\"displayTimeUnit\":\"ms\",\"cgcSchema\":\"";
    let schema = until_quote () in
    if schema <> trace_schema then
      raise
        (Bad
           (Printf.sprintf "unsupported trace schema %S (want %S)" schema
              trace_schema));
    literal ",\"cyclesPerUs\":";
    let cycles_per_us = float_field () in
    if cycles_per_us <= 0.0 || cycles_per_us >= 2000.0 then
      raise (Bad "cyclesPerUs out of the exactly-invertible range");
    literal ",\"emitted\":";
    let emitted = int_field () in
    literal ",\"dropped\":";
    let dropped = int_field () in
    literal ",\"traceEvents\":[";
    let cycles f = int_of_float (Float.round (f *. cycles_per_us)) in
    let events = ref [] in
    let first = ref true in
    while not (peek "\n]}\n") do
      if !first then first := false else literal ",";
      literal "\n{\"name\":\"";
      let name = until_quote () in
      let code =
        match Event.of_name name with
        | Some c -> c
        | None -> raise (Bad (Printf.sprintf "unknown event name %S" name))
      in
      (* [until_quote] consumed the string's closing quote, so the next
         literal starts at the comma. *)
      literal ",\"cat\":\"";
      let _cat = until_quote () in
      let dur =
        if peek ",\"ph\":\"i\",\"s\":\"t\"" then begin
          literal ",\"ph\":\"i\",\"s\":\"t\"";
          -1
        end
        else begin
          literal ",\"ph\":\"X\",\"dur\":";
          cycles (float_field ())
        end
      in
      literal ",\"ts\":";
      let ts = cycles (float_field ()) in
      literal ",\"pid\":0,\"tid\":";
      let tid = int_field () in
      literal ",\"args\":{\"v\":";
      let arg = int_field () in
      literal "}}";
      events := { Event.ts; dur; tid; code; arg } :: !events
    done;
    literal "\n]}\n";
    if !pos <> len then fail "trailing bytes after the trace";
    Ok ({ cycles_per_us; emitted; dropped }, List.rev !events)
  with
  | Bad msg -> Error msg
  | Failure _ -> Error (Printf.sprintf "malformed number at byte %d" !pos)

(* ------------------------------------------------------------------ *)
(* CSV                                                                 *)

let csv_field f =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') f then begin
    let b = Buffer.create (String.length f + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      f;
    Buffer.add_char b '"';
    Buffer.contents b
  end
  else f

let csv ?schema ~header rows =
  let b = Buffer.create 4096 in
  (match schema with
  | Some s -> Buffer.add_string b (Printf.sprintf "#schema=%s\n" s)
  | None -> ());
  let row r = Buffer.add_string b (String.concat "," (List.map csv_field r)) in
  row header;
  Buffer.add_char b '\n';
  List.iter
    (fun r ->
      row r;
      Buffer.add_char b '\n')
    rows;
  Buffer.contents b

let parse_csv s =
  let len = String.length s in
  let pos = ref 0 in
  let schema =
    if len > 8 && String.sub s 0 8 = "#schema=" then begin
      let eol = try String.index s '\n' with Not_found -> len in
      pos := min len (eol + 1);
      Some (String.sub s 8 (eol - 8))
    end
    else None
  in
  (* RFC-4180-enough: fields separated by commas, rows by '\n', quoted
     fields may contain commas, quotes ("" escapes) and newlines. *)
  let rows = ref [] and row = ref [] and field = Buffer.create 64 in
  let flush_field () =
    row := Buffer.contents field :: !row;
    Buffer.clear field
  in
  let flush_row () =
    flush_field ();
    rows := List.rev !row :: !rows;
    row := []
  in
  let error = ref None in
  (try
     while !pos < len do
       match s.[!pos] with
       | '"' ->
           if Buffer.length field > 0 then failwith "quote inside bare field";
           incr pos;
           let closed = ref false in
           while not !closed do
             if !pos >= len then failwith "unterminated quoted field";
             (match s.[!pos] with
             | '"' ->
                 if !pos + 1 < len && s.[!pos + 1] = '"' then begin
                   Buffer.add_char field '"';
                   incr pos
                 end
                 else closed := true
             | c -> Buffer.add_char field c);
             incr pos
           done
       | ',' ->
           flush_field ();
           incr pos
       | '\n' ->
           flush_row ();
           incr pos
       | c ->
           Buffer.add_char field c;
           incr pos
     done;
     if Buffer.length field > 0 || !row <> [] then failwith "missing final newline"
   with Failure msg -> error := Some msg);
  match !error with
  | Some msg -> Error msg
  | None -> (
      match List.rev !rows with
      | [] -> Error "empty file"
      | header :: rows -> Ok (schema, header, rows))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
