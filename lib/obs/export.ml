let us ~cycles_per_us cycles = float_of_int cycles /. cycles_per_us

let chrome_json ~cycles_per_us events =
  let b = Buffer.create 65536 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  List.iteri
    (fun i (e : Event.t) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n{\"name\":\"";
      Buffer.add_string b (Event.name e.code);
      Buffer.add_string b "\",\"cat\":\"";
      Buffer.add_string b (Event.cat e.code);
      if Event.instant e then
        (* Thread-scoped instant event. *)
        Buffer.add_string b "\",\"ph\":\"i\",\"s\":\"t\""
      else begin
        Buffer.add_string b "\",\"ph\":\"X\",\"dur\":";
        Buffer.add_string b (Printf.sprintf "%.3f" (us ~cycles_per_us e.dur))
      end;
      Buffer.add_string b
        (Printf.sprintf ",\"ts\":%.3f,\"pid\":0,\"tid\":%d,\"args\":{\"v\":%d}}"
           (us ~cycles_per_us e.ts) e.tid e.arg))
    events;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let csv_field f =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') f then begin
    let b = Buffer.create (String.length f + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      f;
    Buffer.add_char b '"';
    Buffer.contents b
  end
  else f

let csv ~header ~rows =
  let b = Buffer.create 4096 in
  let row r = Buffer.add_string b (String.concat "," (List.map csv_field r)) in
  row header;
  Buffer.add_char b '\n';
  List.iter
    (fun r ->
      row r;
      Buffer.add_char b '\n')
    rows;
  Buffer.contents b

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
