(** Streaming descriptive statistics over an exact sample vector.

    Used throughout the experiment harness for tracing factors,
    allocation rates, occupancy, etc.  Keeps {e all} samples, so maxima
    and percentiles are exact but memory grows with the run; for
    long-lived aggregates where bounded memory matters (the collector's
    own pause/mark/sweep times in [Cgc_core.Gstats]) use the
    fixed-bucket {!Histogram} instead. *)

type t

val create : unit -> t
(** An empty accumulator. *)

val add : t -> float -> unit
(** Record one sample. *)

val count : t -> int
(** Samples recorded so far. *)

val sum : t -> float

val mean : t -> float
(** 0 when empty. *)

val stddev : t -> float
(** Population standard deviation; 0 when fewer than two samples. *)

val min : t -> float
(** +inf when empty. *)

val max : t -> float
(** -inf when empty. *)

val nearest_rank : n:int -> float -> int
(** The single percentile rank rule shared by the whole tree (both this
    module and {!Histogram} use it): [nearest_rank ~n p] is
    [ceil (p /. 100. *. n)] clamped to [\[1, n\]], a 1-based rank into
    the sorted sample vector.  [p <= 0.] selects the minimum, [p >= 100.]
    the maximum, and every query lands on an actual sample — no
    interpolation.  Raises [Invalid_argument] when [n <= 0]. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [0,100]: the sample at {!nearest_rank}
    in the sorted sample vector (NaN samples sort first, via
    [Float.compare]).  0 when empty. *)

val samples : t -> float array
(** A copy of the samples in insertion order. *)

val merge : t -> t -> t
(** Combined statistics over both sample sets. *)

val clear : t -> unit
