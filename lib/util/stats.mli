(** Streaming descriptive statistics over an exact sample vector.

    Used throughout the experiment harness for tracing factors,
    allocation rates, occupancy, etc.  Keeps {e all} samples, so maxima
    and percentiles are exact but memory grows with the run; for
    long-lived aggregates where bounded memory matters (the collector's
    own pause/mark/sweep times in [Cgc_core.Gstats]) use the
    fixed-bucket {!Histogram} instead. *)

type t

val create : unit -> t
(** An empty accumulator. *)

val add : t -> float -> unit
(** Record one sample. *)

val count : t -> int
(** Samples recorded so far. *)

val sum : t -> float

val mean : t -> float
(** 0 when empty. *)

val stddev : t -> float
(** Population standard deviation; 0 when fewer than two samples. *)

val min : t -> float
(** +inf when empty. *)

val max : t -> float
(** -inf when empty. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [0,100]; nearest-rank. 0 when empty. *)

val samples : t -> float array
(** A copy of the samples in insertion order. *)

val merge : t -> t -> t
(** Combined statistics over both sample sets. *)

val clear : t -> unit
