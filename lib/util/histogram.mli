(** Fixed-bucket logarithmic histogram.

    The observability layer records every pause and phase latency; keeping
    raw samples (as {!Stats} does) is exact but unbounded, which is wrong
    for a ring-buffer-backed tracing subsystem that must run for millions
    of simulated transactions.  This histogram is the bounded alternative:
    a fixed array of buckets whose bounds grow geometrically, giving a
    constant relative error on percentile queries (HdrHistogram-style).

    Properties:
    {ul
    {- {b bounded}: memory is fixed at creation ([decades * per_decade]
       buckets plus an underflow and an overflow bucket), independent of
       the number of samples;}
    {- {b exact moments}: [count], [sum], [mean], [min] and [max] are
       exact — only interior percentiles are approximate;}
    {- {b bounded relative error}: a percentile query returns a value
       within one bucket width (a factor of [10^(1/per_decade)], about
       15.5% at the default 16 buckets per decade) of the true
       nearest-rank percentile;}
    {- {b deterministic}: no allocation after creation, no dependence on
       sample arrival order for any query.}} *)

type t

val create : ?lo:float -> ?decades:int -> ?per_decade:int -> unit -> t
(** [create ?lo ?decades ?per_decade ()] covers the value range
    [\[lo, lo * 10^decades)] with [decades * per_decade] geometric
    buckets.  Defaults: [lo = 1e-3], [decades = 7], [per_decade = 16] —
    1 µs to 10 s when samples are milliseconds, 112 buckets.  Samples
    below [lo] (including zero and negatives) land in an underflow
    bucket represented by the exact minimum; samples at or above the top
    in an overflow bucket represented by the exact maximum. *)

val add : t -> float -> unit

val count : t -> int
val sum : t -> float

val mean : t -> float
(** 0 when empty (matches {!Stats.mean}). *)

val min : t -> float
(** Exact; [+inf] when empty (matches {!Stats.min}). *)

val max : t -> float
(** Exact; [-inf] when empty (matches {!Stats.max}). *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0, 100\]]: ranks with the same
    {!Stats.nearest_rank} rule as {!Stats.percentile} and answers with
    the representative value (geometric mean of the bucket bounds,
    clamped to the observed [\[min, max\]]) of the bucket holding that
    rank.  Edge ranks delegate to the exact extremes: rank 1 returns the
    exact minimum, rank [n] (so any [p >= 100.]) the exact maximum, and
    ranks inside the underflow bucket the exact minimum.  Interior
    queries therefore agree with {!Stats.percentile} over the same
    samples to within one bucket width; the extremes agree exactly.
    0 when empty. *)

val merge : t -> t -> t
(** Combined histogram; both inputs must share the same geometry
    ([Invalid_argument] otherwise). *)

val clear : t -> unit

val nonzero_buckets : t -> (float * float * int) array
(** [(lower, upper, count)] for every occupied interior bucket, in value
    order — the exporter's raw view.  Underflow and overflow counts are
    not included; recover them from [count] minus the interior total. *)
