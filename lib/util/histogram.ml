type t = {
  lo : float;
  log_lo : float;
  log_gamma : float; (* log10 of the bucket-bound ratio *)
  decades : int;
  per_decade : int;
  buckets : int array;
  mutable under : int;
  mutable over : int;
  mutable n : int;
  mutable total : float;
  mutable mn : float;
  mutable mx : float;
}

let create ?(lo = 1e-3) ?(decades = 7) ?(per_decade = 16) () =
  if lo <= 0.0 then invalid_arg "Histogram.create: lo must be positive";
  if decades <= 0 || per_decade <= 0 then
    invalid_arg "Histogram.create: decades and per_decade must be positive";
  {
    lo;
    log_lo = log10 lo;
    log_gamma = 1.0 /. float_of_int per_decade;
    decades;
    per_decade;
    buckets = Array.make (decades * per_decade) 0;
    under = 0;
    over = 0;
    n = 0;
    total = 0.0;
    mn = infinity;
    mx = neg_infinity;
  }

let nbuckets t = Array.length t.buckets

(* Bucket index of a value, or -1 / nbuckets for under / overflow. *)
let index t v =
  if v < t.lo then -1
  else
    let i = int_of_float ((log10 v -. t.log_lo) /. t.log_gamma) in
    if i >= nbuckets t then nbuckets t else i

let bounds t i =
  let lower = 10.0 ** (t.log_lo +. (float_of_int i *. t.log_gamma)) in
  let upper = 10.0 ** (t.log_lo +. (float_of_int (i + 1) *. t.log_gamma)) in
  (lower, upper)

let add t v =
  (match index t v with
  | -1 -> t.under <- t.under + 1
  | i when i = nbuckets t -> t.over <- t.over + 1
  | i -> t.buckets.(i) <- t.buckets.(i) + 1);
  t.n <- t.n + 1;
  t.total <- t.total +. v;
  if v < t.mn then t.mn <- v;
  if v > t.mx then t.mx <- v

let count t = t.n
let sum t = t.total
let mean t = if t.n = 0 then 0.0 else t.total /. float_of_int t.n
let min t = t.mn
let max t = t.mx

(* Same nearest-rank rule as [Stats.percentile]; the extremes (rank 1
   and rank n) and the underflow/overflow buckets answer with the exact
   observed min/max, so only interior ranks pay the one-bucket-width
   approximation. *)
let percentile t p =
  if t.n = 0 then 0.0
  else begin
    let rank = Stats.nearest_rank ~n:t.n p in
    if rank >= t.n then t.mx
    else if rank <= 1 then t.mn
    else if rank <= t.under then t.mn
    else begin
      let cum = ref t.under in
      let result = ref t.mx (* reached only if rank falls in overflow *) in
      (try
         for i = 0 to nbuckets t - 1 do
           cum := !cum + t.buckets.(i);
           if !cum >= rank then begin
             let lower, upper = bounds t i in
             let rep = sqrt (lower *. upper) in
             result := Stdlib.min t.mx (Stdlib.max t.mn rep);
             raise Exit
           end
         done
       with Exit -> ());
      !result
    end
  end

let clear t =
  Array.fill t.buckets 0 (nbuckets t) 0;
  t.under <- 0;
  t.over <- 0;
  t.n <- 0;
  t.total <- 0.0;
  t.mn <- infinity;
  t.mx <- neg_infinity

let merge a b =
  if
    a.lo <> b.lo || a.decades <> b.decades || a.per_decade <> b.per_decade
  then invalid_arg "Histogram.merge: geometry mismatch";
  let t = create ~lo:a.lo ~decades:a.decades ~per_decade:a.per_decade () in
  Array.blit a.buckets 0 t.buckets 0 (nbuckets a);
  Array.iteri (fun i c -> t.buckets.(i) <- t.buckets.(i) + c) b.buckets;
  t.under <- a.under + b.under;
  t.over <- a.over + b.over;
  t.n <- a.n + b.n;
  t.total <- a.total +. b.total;
  t.mn <- Stdlib.min a.mn b.mn;
  t.mx <- Stdlib.max a.mx b.mx;
  t

let nonzero_buckets t =
  let out = ref [] in
  for i = nbuckets t - 1 downto 0 do
    if t.buckets.(i) > 0 then begin
      let lower, upper = bounds t i in
      out := (lower, upper, t.buckets.(i)) :: !out
    end
  done;
  Array.of_list !out
