module type ORDERED = sig
  type elt

  val key : elt -> int
  val dummy : elt
end

module Make (O : ORDERED) = struct
  type t = { mutable a : O.elt array; mutable n : int }

  let create ?(capacity = 32) () =
    if capacity <= 0 then invalid_arg "Minheap.create: capacity";
    { a = Array.make capacity O.dummy; n = 0 }

  let length h = h.n
  let is_empty h = h.n = 0

  let push h x =
    if h.n = Array.length h.a then begin
      (* Grow with the dummy as filler: the doubled half must not retain
         whatever a.(0) happens to reference. *)
      let bigger = Array.make (2 * h.n) O.dummy in
      Array.blit h.a 0 bigger 0 h.n;
      h.a <- bigger
    end;
    let i = ref h.n in
    h.n <- h.n + 1;
    h.a.(!i) <- x;
    let continue = ref true in
    while !continue && !i > 0 do
      let p = (!i - 1) / 2 in
      if O.key h.a.(p) > O.key h.a.(!i) then begin
        let tmp = h.a.(p) in
        h.a.(p) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := p
      end
      else continue := false
    done

  let top h =
    if h.n = 0 then invalid_arg "Minheap.top: empty";
    h.a.(0)

  let min_key h = if h.n = 0 then max_int else O.key h.a.(0)

  let pop h =
    if h.n = 0 then invalid_arg "Minheap.pop: empty";
    let top = h.a.(0) in
    h.n <- h.n - 1;
    h.a.(0) <- h.a.(h.n);
    (* Clear the vacated slot: a dead thread or committed store entry
       must not be retained above [n] for the rest of the run. *)
    h.a.(h.n) <- O.dummy;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let s = ref !i in
      if l < h.n && O.key h.a.(l) < O.key h.a.(!s) then s := l;
      if r < h.n && O.key h.a.(r) < O.key h.a.(!s) then s := r;
      if !s <> !i then begin
        let tmp = h.a.(!s) in
        h.a.(!s) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := !s
      end
      else continue := false
    done;
    top

  let slots_clean h =
    let clean = ref true in
    for j = h.n to Array.length h.a - 1 do
      if h.a.(j) != O.dummy then clean := false
    done;
    !clean
end
