(* Bits are packed 62 per word so that all indices stay inside OCaml's
   immediate-int range on 64-bit platforms. *)

let bits_per_word = 62

type t = { words : int array; len : int }

let create n =
  if n < 0 then invalid_arg "Bitvec.create";
  { words = Array.make ((n + bits_per_word - 1) / bits_per_word + 1) 0; len = n }

let length t = t.len

let get t i = t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let set t i =
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let clear t i =
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let test_and_set t i =
  let w = i / bits_per_word and b = i mod bits_per_word in
  let mask = 1 lsl b in
  let old = t.words.(w) in
  if old land mask <> 0 then false
  else begin
    t.words.(w) <- old lor mask;
    true
  end

let clear_all t = Array.fill t.words 0 (Array.length t.words) 0

let full_word = (1 lsl bits_per_word) - 1

let set_range t pos len =
  if len > 0 then begin
    let last = pos + len - 1 in
    let w0 = pos / bits_per_word and w1 = last / bits_per_word in
    if w0 = w1 then begin
      let mask = (full_word lsr (bits_per_word - len)) lsl (pos mod bits_per_word) in
      t.words.(w0) <- t.words.(w0) lor mask
    end
    else begin
      t.words.(w0) <- t.words.(w0) lor (full_word lsl (pos mod bits_per_word) land full_word);
      for w = w0 + 1 to w1 - 1 do
        t.words.(w) <- full_word
      done;
      let hi_bits = (last mod bits_per_word) + 1 in
      t.words.(w1) <- t.words.(w1) lor (full_word lsr (bits_per_word - hi_bits))
    end
  end

let clear_range t pos len =
  if len > 0 then begin
    let last = pos + len - 1 in
    let w0 = pos / bits_per_word and w1 = last / bits_per_word in
    if w0 = w1 then begin
      let mask = (full_word lsr (bits_per_word - len)) lsl (pos mod bits_per_word) in
      t.words.(w0) <- t.words.(w0) land lnot mask
    end
    else begin
      t.words.(w0) <- t.words.(w0) land lnot (full_word lsl (pos mod bits_per_word) land full_word);
      for w = w0 + 1 to w1 - 1 do
        t.words.(w) <- 0
      done;
      let hi_bits = (last mod bits_per_word) + 1 in
      t.words.(w1) <- t.words.(w1) land lnot (full_word lsr (bits_per_word - hi_bits))
    end
  end

(* 256-entry byte kernels: one table lookup replaces a bit-at-a-time
   loop, so the scan primitives below touch each word a constant number
   of times instead of once per bit. *)

let pop8 =
  Array.init 256 (fun b ->
      let rec go b acc = if b = 0 then acc else go (b lsr 1) (acc + (b land 1)) in
      go b 0)

let ctz8 =
  Array.init 256 (fun b ->
      if b = 0 then 8
      else
        let rec go b i = if b land 1 <> 0 then i else go (b lsr 1) (i + 1) in
        go b 0)

(* Population count of one (62-bit) word. *)
let popcount w =
  pop8.(w land 0xFF)
  + pop8.((w lsr 8) land 0xFF)
  + pop8.((w lsr 16) land 0xFF)
  + pop8.((w lsr 24) land 0xFF)
  + pop8.((w lsr 32) land 0xFF)
  + pop8.((w lsr 40) land 0xFF)
  + pop8.((w lsr 48) land 0xFF)
  + pop8.((w lsr 56) land 0xFF)

(* Index of the lowest set bit of a nonzero word. *)
let lowest_bit w =
  let rec skip w i =
    if w land 0xFF = 0 then skip (w lsr 8) (i + 8)
    else i + ctz8.(w land 0xFF)
  in
  skip w 0

(* Index of the highest set bit of a nonzero word (-1 on zero bytes). *)
let fls8 =
  Array.init 256 (fun b ->
      let rec go b i = if b = 0 then i - 1 else go (b lsr 1) (i + 1) in
      go b 0)

let highest_bit w =
  let rec skip w i =
    if w lsr 8 = 0 then i + fls8.(w land 0xFF) else skip (w lsr 8) (i + 8)
  in
  skip w 0

let next_set t i =
  if i >= t.len then t.len
  else begin
    let w = ref (i / bits_per_word) in
    let cur = t.words.(!w) lsr (i mod bits_per_word) in
    let r =
      if cur <> 0 then i + lowest_bit cur
      else begin
        incr w;
        let nwords = Array.length t.words in
        while !w < nwords && t.words.(!w) = 0 do
          incr w
        done;
        if !w >= nwords then t.len
        else (!w * bits_per_word) + lowest_bit t.words.(!w)
      end
    in
    if r > t.len then t.len else r
  end

let next_clear t i =
  if i >= t.len then t.len
  else begin
    let w = ref (i / bits_per_word) in
    let cur = lnot t.words.(!w) land full_word in
    let cur = cur lsr (i mod bits_per_word) in
    let r =
      if cur <> 0 then i + lowest_bit cur
      else begin
        incr w;
        let nwords = Array.length t.words in
        while !w < nwords && t.words.(!w) = full_word do
          incr w
        done;
        if !w >= nwords then t.len
        else (!w * bits_per_word) + lowest_bit (lnot t.words.(!w) land full_word)
      end
    in
    if r > t.len then t.len else r
  end

let prev_set t i =
  if i < 0 then -1
  else begin
    let i = if i >= t.len then t.len - 1 else i in
    let w = ref (i / bits_per_word) in
    let nbits = (i mod bits_per_word) + 1 in
    let cur = t.words.(!w) land (full_word lsr (bits_per_word - nbits)) in
    if cur <> 0 then (!w * bits_per_word) + highest_bit cur
    else begin
      decr w;
      while !w >= 0 && t.words.(!w) = 0 do
        decr w
      done;
      if !w < 0 then -1 else (!w * bits_per_word) + highest_bit t.words.(!w)
    end
  end

let count t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let iter_words t f = Array.iteri f t.words

let count_range t pos len =
  if len <= 0 || pos >= t.len then 0
  else begin
    let last = min (pos + len) t.len - 1 in
    let w0 = pos / bits_per_word and w1 = last / bits_per_word in
    let lo_mask = full_word lsl (pos mod bits_per_word) land full_word in
    let hi_mask = full_word lsr (bits_per_word - 1 - (last mod bits_per_word)) in
    if w0 = w1 then popcount (t.words.(w0) land lo_mask land hi_mask)
    else begin
      let acc = ref (popcount (t.words.(w0) land lo_mask)) in
      for w = w0 + 1 to w1 - 1 do
        acc := !acc + popcount t.words.(w)
      done;
      !acc + popcount (t.words.(w1) land hi_mask)
    end
  end

let fold_set_ranges t ~lo ~hi ~init ~f =
  let hi = min hi t.len in
  let acc = ref init in
  let i = ref (if lo >= hi then hi else next_set t lo) in
  while !i < hi do
    let e = min hi (next_clear t (!i + 1)) in
    acc := f !acc !i (e - !i);
    i := if e >= hi then hi else next_set t e
  done;
  !acc
