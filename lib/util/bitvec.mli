(** Dense bit vectors with run-finding primitives.

    The collector keeps three per-heap bit vectors at one bit per 8-byte
    slot, exactly as in the paper: the {e mark bit vector} (live objects),
    the {e allocation bit vector} (valid object starts, also the basis of
    the batched-fence protocol of section 5.2) and, indirectly, the card
    table.  Bitwise sweep walks the mark bit vector looking for runs of
    clear bits, so this module exposes fast next-set/next-clear scans. *)

type t

val create : int -> t
(** [create n] is an all-clear vector of [n] bits. *)

val length : t -> int

val get : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit

val test_and_set : t -> int -> bool
(** [test_and_set t i] sets bit [i] and returns [true] iff it was
    previously clear (i.e. the caller "won").  This is the mark-bit
    idiom used to avoid pushing an object twice. *)

val clear_all : t -> unit

val set_range : t -> int -> int -> unit
(** [set_range t pos len] sets [len] bits starting at [pos]. *)

val clear_range : t -> int -> int -> unit

val next_set : t -> int -> int
(** [next_set t i] is the index of the first set bit at or after [i], or
    [length t] if none. *)

val next_clear : t -> int -> int
(** First clear bit at or after [i], or [length t]. *)

val prev_set : t -> int -> int
(** [prev_set t i] is the index of the last set bit at or before [i], or
    [-1] if none.  Used by card cleaning to find the object spanning a
    card boundary. *)

val count : t -> int
(** Population count of the whole vector. *)

val count_range : t -> int -> int -> int
(** [count_range t pos len] is the population count of [\[pos, pos+len)],
    computed word-at-a-time with masked popcounts. *)

(** {2 Word-level kernels}

    The hot paths of the simulator (bitwise sweep, card snapshot, the
    profiler's dirty-card probe) operate on whole 62-bit words rather
    than individual bits; these entry points expose that granularity. *)

val bits_per_word : int
(** Bits packed per backing word (62, so indices stay immediate). *)

val popcount : int -> int
(** Population count of one backing word (byte-table kernel). *)

val iter_words : t -> (int -> int -> unit) -> unit
(** [iter_words t f] calls [f i w] for every backing word in index
    order, including the all-zero sentinel word past the end.  Bits at
    or beyond [length t] are never set by any operation, so [f] may
    popcount or scan [w] without masking. *)

val fold_set_ranges : t -> lo:int -> hi:int -> init:'a -> f:('a -> int -> int -> 'a) -> 'a
(** [fold_set_ranges t ~lo ~hi ~init ~f] folds [f acc pos len] over the
    maximal runs of {e set} bits intersected with [\[lo, hi)], in
    ascending position order.  Runs are found by word-skipping scans
    ({!next_set} / {!next_clear}), so the cost is proportional to the
    number of words plus the number of runs, not the number of bits.
    This is the kernel under bitwise sweep's gap enumeration and the
    card-table snapshot. *)
