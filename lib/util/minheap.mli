(** Array-backed binary min-heap, functorized over an integer key.

    One kernel serves both event-core priority queues: the scheduler's
    sleep queue (threads keyed by wake time) and the weak-memory store
    buffer's drain queue (entries keyed by deadline).  The sift loops are
    byte-for-byte the comparison sequences the two hand-rolled heaps of
    PR 0 used, so pop order — and therefore every trace — is unchanged.

    What {e is} new is slot hygiene, fixing two retention bugs the
    originals shared:
    - [pop] used to leave a live reference to the removed element in
      [a.(n)] after decrementing, retaining dead threads and committed
      store entries for the life of the run; vacated slots are now
      cleared to the dummy.
    - [push]'s grow path used to fill the doubled array with [a.(0)] — a
      live element — instead of the dummy.

    [pop]/[top] on an empty heap now raise [Invalid_argument] instead of
    silently returning the dummy (or a stale slot) as the unguarded
    [a.(0)] read used to. *)

module type ORDERED = sig
  type elt

  val key : elt -> int
  (** Must not change while the element is in a heap. *)

  val dummy : elt
  (** Fills empty slots; never returned by a guarded operation. *)
end

module Make (O : ORDERED) : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** [capacity] (default 32) is the initial array size. *)

  val length : t -> int
  val is_empty : t -> bool

  val push : t -> O.elt -> unit

  val top : t -> O.elt
  (** The minimum-key element without removing it.  [Invalid_argument]
      on an empty heap. *)

  val min_key : t -> int
  (** [O.key (top t)], or [max_int] when empty — the allocation-free
      peek the scheduler's idle-advance uses. *)

  val pop : t -> O.elt
  (** Remove and return the minimum-key element, clearing the vacated
      slot to the dummy.  [Invalid_argument] on an empty heap. *)

  val slots_clean : t -> bool
  (** [true] iff every slot at or above [length t] is physically the
      dummy — the no-retention invariant the PR 9 bugfixes enforce. *)
end
