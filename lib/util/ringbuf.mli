(** Allocation-free FIFO ring deque over a preallocated array.

    The event core dispatches millions of times per host second, and the
    previous [Queue]-based runqueues allocated one list cell per push —
    enough to dominate the scheduler's hot path with minor-GC work.  This
    deque stores elements in a flat array indexed by a head cursor and a
    length, so {!push_back}/{!pop_front} are a handful of loads and
    stores and allocate nothing (the array doubles only when full).

    A [dummy] element is supplied at creation and used for two hygiene
    guarantees that the heap-retention bugfixes of PR 9 established:
    every vacated slot is overwritten with the dummy as soon as its
    element leaves the deque, and array growth fills fresh slots with
    the dummy — so the deque never retains a reference to an element it
    no longer contains.  {!slots_clean} checks that invariant (it is the
    hook the QCheck properties and regression tests use). *)

type 'a t

val create : ?capacity:int -> 'a -> 'a t
(** [create ?capacity dummy] — an empty deque.  [capacity] (default 16)
    is the initial array size; the deque grows as needed.
    [Invalid_argument] unless [capacity > 0]. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push_back : 'a t -> 'a -> unit
(** Append at the tail; O(1) amortised, allocation-free until the array
    must double. *)

val pop_front : 'a t -> 'a
(** Remove and return the head element, clearing its slot to the dummy.
    [Invalid_argument] on an empty deque. *)

val get : 'a t -> int -> 'a
(** [get t i] — the element at logical position [i] (0 = front).
    [Invalid_argument] unless [0 <= i < length t]. *)

val front : 'a t -> 'a
(** The head element without removing it.  [Invalid_argument] on an
    empty deque. *)

val back : 'a t -> 'a
(** The tail element (the most recently pushed).  [Invalid_argument] on
    an empty deque. *)

val iter : 'a t -> ('a -> unit) -> unit
(** Front to back. *)

val fold : 'a t -> init:'b -> f:('b -> 'a -> 'b) -> 'b
(** Front to back. *)

val clear : 'a t -> unit
(** Empty the deque, overwriting every occupied slot with the dummy. *)

val slots_clean : 'a t -> bool
(** [true] iff every array slot not currently occupied by an element is
    physically equal to the dummy — the no-retention invariant. *)
