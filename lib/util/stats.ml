type t = {
  mutable data : float array;
  mutable n : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable mn : float;
  mutable mx : float;
}

let create () =
  { data = Array.make 16 0.0; n = 0; sum = 0.0; sumsq = 0.0;
    mn = infinity; mx = neg_infinity }

let add t x =
  if t.n = Array.length t.data then begin
    let bigger = Array.make (2 * t.n) 0.0 in
    Array.blit t.data 0 bigger 0 t.n;
    t.data <- bigger
  end;
  t.data.(t.n) <- x;
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  t.sumsq <- t.sumsq +. (x *. x);
  if x < t.mn then t.mn <- x;
  if x > t.mx then t.mx <- x

let count t = t.n
let sum t = t.sum
let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

let stddev t =
  if t.n < 2 then 0.0
  else
    let m = mean t in
    let v = (t.sumsq /. float_of_int t.n) -. (m *. m) in
    if v <= 0.0 then 0.0 else sqrt v

let min t = t.mn
let max t = t.mx

(* The one nearest-rank rule shared by every percentile query in the
   tree (Histogram delegates its edge cases here): the 1-based rank of
   percentile [p] over [n] samples is [ceil (p/100 * n)] clamped to
   [1, n].  So p <= 0 selects the minimum, p >= 100 the maximum, and
   every query lands on an actual sample — no interpolation. *)
let nearest_rank ~n p =
  if n <= 0 then invalid_arg "Stats.nearest_rank: empty sample set";
  let r = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  Stdlib.max 1 (Stdlib.min n r)

let percentile t p =
  if t.n = 0 then 0.0
  else begin
    let sorted = Array.sub t.data 0 t.n in
    (* Float.compare, not polymorphic compare: a NaN sample (e.g. from a
       zero-duration rate division) must order deterministically (first)
       instead of poisoning the sort. *)
    Array.sort Float.compare sorted;
    sorted.(nearest_rank ~n:t.n p - 1)
  end

let samples t = Array.sub t.data 0 t.n

let merge a b =
  let t = create () in
  Array.iter (add t) (samples a);
  Array.iter (add t) (samples b);
  t

let clear t =
  t.n <- 0;
  t.sum <- 0.0;
  t.sumsq <- 0.0;
  t.mn <- infinity;
  t.mx <- neg_infinity
