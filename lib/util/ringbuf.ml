type 'a t = {
  mutable a : 'a array;
  mutable head : int; (* index of the front element *)
  mutable len : int;
  dummy : 'a;
}

let create ?(capacity = 16) dummy =
  if capacity <= 0 then invalid_arg "Ringbuf.create: capacity";
  { a = Array.make capacity dummy; head = 0; len = 0; dummy }

let length t = t.len
let is_empty t = t.len = 0

(* Physical index of logical position [i] (0 = front).  [head + i] can
   exceed the array length by at most one wrap, so a compare-and-subtract
   replaces the division a [mod] would cost on every access. *)
let idx t i =
  let j = t.head + i in
  let cap = Array.length t.a in
  if j >= cap then j - cap else j

let grow t =
  let cap = Array.length t.a in
  let bigger = Array.make (2 * cap) t.dummy in
  for i = 0 to t.len - 1 do
    bigger.(i) <- t.a.(idx t i)
  done;
  t.a <- bigger;
  t.head <- 0

let push_back t x =
  if t.len = Array.length t.a then grow t;
  t.a.(idx t t.len) <- x;
  t.len <- t.len + 1

let pop_front t =
  if t.len = 0 then invalid_arg "Ringbuf.pop_front: empty";
  let x = t.a.(t.head) in
  t.a.(t.head) <- t.dummy;
  let h = t.head + 1 in
  t.head <- (if h = Array.length t.a then 0 else h);
  t.len <- t.len - 1;
  if t.len = 0 then t.head <- 0;
  x

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Ringbuf.get: out of range";
  t.a.(idx t i)

let front t =
  if t.len = 0 then invalid_arg "Ringbuf.front: empty";
  t.a.(t.head)

let back t =
  if t.len = 0 then invalid_arg "Ringbuf.back: empty";
  t.a.(idx t (t.len - 1))

let iter t f =
  for i = 0 to t.len - 1 do
    f t.a.(idx t i)
  done

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.a.(idx t i)
  done;
  !acc

let clear t =
  for i = 0 to t.len - 1 do
    t.a.(idx t i) <- t.dummy
  done;
  t.head <- 0;
  t.len <- 0

let slots_clean t =
  let cap = Array.length t.a in
  let clean = ref true in
  for j = 0 to cap - 1 do
    (* is physical slot j occupied? *)
    let logical =
      let d = j - t.head in
      if d >= 0 then d else d + cap
    in
    if logical >= t.len && t.a.(j) != t.dummy then clean := false
  done;
  !clean
