(** The generic transaction-mix workload engine.

    All three of the paper's benchmarks (SPECjbb2000, pBOB, javac) are
    modelled as parameterisations of the same observable behaviour — which
    is all a tracing collector can see of an application:
    {ul
    {- a {e resident set}: per-worker linked structures built at startup
       (the warehouse "database"), sized to hit the paper's heap
       residency;}
    {- {e transient allocation}: short-lived objects allocated per
       transaction and dropped at its end;}
    {- {e pointer mutation}: replacing list heads in the resident set,
       which dirties cards, creates garbage, and (during a concurrent
       phase) creates floating garbage;}
    {- {e compute} ([work]) and {e think time} ([think]) — the latter is
       what gives pBOB its processor idle time;}
    {- occasional {e large objects} that bypass the allocation cache.}} *)

type profile = {
  live_lists : int;  (** resident lists per worker *)
  list_len : int;
  node_slots : int;  (** node size (slots, incl. header) *)
  leaf_fanout : int;
      (** leaf objects hung off every list node (order lines): they make
          the object graph bushy, which is what lets tracing parallelise *)
  leaf_slots : int;
  transient_objs : int;  (** per transaction *)
  transient_slots : int;
  mutations : int;  (** list-head replacements per transaction *)
  tx_work : int;  (** compute cycles per transaction *)
  think_mean : int;  (** mean think-time cycles (exponential); 0 = none *)
  large_every : int;  (** a large object every N transactions; 0 = never *)
  large_slots : int;
  junk_roots : bool;  (** store non-pointer ints into stack roots *)
}

val resident_slots : profile -> int
(** Slots of resident data one worker builds. *)

val scale_residency : profile -> target_slots:int -> profile
(** Adjust [list_len] so the resident set is close to [target_slots]. *)

val build_resident : profile -> Cgc_runtime.Mutator.t -> int
(** Build one worker's resident set and return the directory object
    (rooted at stack slot 0) — for callers that interleave transactions
    with other control flow, e.g. the [cgc_server] request loop. *)

val body : profile -> Cgc_runtime.Mutator.t -> unit
(** A worker owning a private resident set: builds it, then loops
    transactions until the simulation stops. *)

val shared_body :
  profile -> global_slot:int -> builder:bool -> Cgc_runtime.Mutator.t -> unit
(** pBOB-style worker: [builder] terminals build the warehouse resident
    set and publish it in the collector's global-roots table at
    [global_slot]; the others transact against the shared set. *)

val transaction : profile -> Cgc_runtime.Mutator.t -> dir:int -> unit
(** One transaction against the directory object [dir] (exposed for
    tests). *)
