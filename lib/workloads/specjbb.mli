(** A SPECjbb2000-like workload: [warehouses] worker threads, each owning
    a private resident "database" sized so that the paper's reference
    configuration (8 warehouses) reaches 60% heap residency, doing
    order-processing-style transactions with no think time (SPECjbb is
    throughput-oriented and saturates the machine). *)

val base_profile : Txmix.profile

val setup :
  warehouses:int ->
  gc:Cgc_core.Config.t ->
  ?heap_mb:float ->
  ?ncpus:int ->
  ?seed:int ->
  ?trace:bool ->
  ?trace_ring:int ->
  ?residency_at:int * float ->
  unit ->
  Cgc_runtime.Vm.t
(** Build a VM and spawn the warehouse threads (not yet run).
    [residency_at] is [(warehouse_count, fraction)] — default [(8, 0.6)]:
    the per-warehouse resident set is sized so that running with
    [warehouse_count] warehouses fills [fraction] of the heap.
    [trace] arms the event-tracing sink (see {!Cgc_runtime.Vm.trace_json}). *)

val run :
  warehouses:int ->
  gc:Cgc_core.Config.t ->
  ?heap_mb:float ->
  ?ncpus:int ->
  ?seed:int ->
  ?trace:bool ->
  ?trace_ring:int ->
  ?ms:float ->
  unit ->
  Cgc_runtime.Vm.t
(** [setup] followed by [Vm.run] (default 4000 simulated ms). *)
