(** A javac-like workload: a single-threaded compiler that builds a large
    AST per compilation unit (trees of small nodes), keeps the previous
    unit alive (symbol tables), and drops older units — 70% heap
    residency with a sawtooth of bulk deaths, on a uniprocessor with a
    single background collector thread (section 6.1). *)

val setup :
  gc:Cgc_core.Config.t ->
  ?heap_mb:float ->
  ?ncpus:int ->
  ?seed:int ->
  ?trace:bool ->
  ?n_background:int ->
  unit ->
  Cgc_runtime.Vm.t

val run :
  gc:Cgc_core.Config.t ->
  ?heap_mb:float ->
  ?ncpus:int ->
  ?seed:int ->
  ?trace:bool ->
  ?ms:float ->
  unit ->
  Cgc_runtime.Vm.t
(** Defaults: 25 MB heap, 1 CPU, 1 background thread, 4000 ms. *)
