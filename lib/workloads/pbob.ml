module Vm = Cgc_runtime.Vm

let base_profile : Txmix.profile =
  {
    live_lists = 25;
    list_len = 950; (* rescaled by setup *)
    node_slots = 6;
    leaf_fanout = 3;
    leaf_slots = 8;
    transient_objs = 8;
    transient_slots = 8;
    mutations = 3;
    tx_work = 15_000;
    think_mean = 16_500_000 (* 30 ms at 550 MHz; overridable *);
    large_every = 60;
    large_slots = 192;
    junk_roots = true;
  }

let setup ~warehouses ~gc ?(terminals = 25) ?(heap_mb = 256.0) ?(ncpus = 4)
    ?(seed = 1) ?(trace = false) ?trace_ring ?think_mean
    ?(residency_at = (80, 0.78)) () =
  let vm =
    Vm.create (Vm.config ~heap_mb ~ncpus ~seed ~gc ~trace ?trace_ring ())
  in
  let nslots = Cgc_heap.Heap.nslots (Vm.heap vm) in
  let ref_wh, frac = residency_at in
  let target = int_of_float (float_of_int nslots *. frac) / ref_wh in
  let profile = Txmix.scale_residency base_profile ~target_slots:target in
  let profile =
    match think_mean with
    | Some tm -> { profile with Txmix.think_mean = tm }
    | None -> profile
  in
  if warehouses > Cgc_core.Collector.n_globals then
    invalid_arg "Pbob.setup: too many warehouses for the global-roots table";
  for w = 0 to warehouses - 1 do
    for term = 0 to terminals - 1 do
      Vm.spawn_mutator vm
        ~name:(Printf.sprintf "wh%d-term%d" w term)
        (Txmix.shared_body profile ~global_slot:w ~builder:(term = 0))
    done
  done;
  vm

let run ~warehouses ~gc ?terminals ?heap_mb ?ncpus ?seed ?trace ?trace_ring
    ?think_mean ?(ms = 4000.0) () =
  let vm =
    setup ~warehouses ~gc ?terminals ?heap_mb ?ncpus ?seed ?trace ?trace_ring
      ?think_mean ()
  in
  Vm.run vm ~ms;
  vm
