module Vm = Cgc_runtime.Vm

let base_profile : Txmix.profile =
  {
    live_lists = 40;
    list_len = 1000; (* rescaled by setup *)
    node_slots = 6;
    leaf_fanout = 3;
    leaf_slots = 8;
    transient_objs = 12;
    transient_slots = 8;
    mutations = 4;
    tx_work = 25_000;
    think_mean = 0;
    large_every = 40;
    large_slots = 256;
    junk_roots = true;
  }

let setup ~warehouses ~gc ?(heap_mb = 64.0) ?(ncpus = 4) ?(seed = 1)
    ?(trace = false) ?trace_ring ?(residency_at = (8, 0.6)) () =
  let vm =
    Vm.create (Vm.config ~heap_mb ~ncpus ~seed ~gc ~trace ?trace_ring ())
  in
  let nslots = Cgc_heap.Heap.nslots (Vm.heap vm) in
  let ref_wh, frac = residency_at in
  let target = int_of_float (float_of_int nslots *. frac) / ref_wh in
  let profile = Txmix.scale_residency base_profile ~target_slots:target in
  for w = 1 to warehouses do
    Vm.spawn_mutator vm
      ~name:(Printf.sprintf "warehouse-%d" w)
      (Txmix.body profile)
  done;
  vm

let run ~warehouses ~gc ?heap_mb ?ncpus ?seed ?trace ?trace_ring ?(ms = 4000.0)
    () =
  let vm = setup ~warehouses ~gc ?heap_mb ?ncpus ?seed ?trace ?trace_ring () in
  Vm.run vm ~ms;
  vm
