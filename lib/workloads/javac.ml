module Vm = Cgc_runtime.Vm
module Mutator = Cgc_runtime.Mutator

(* One "class" is a tree: depth 4, fanout 4, 6-slot nodes: 341 nodes,
   about 2 Kslots. *)
let class_depth = 4
let class_fanout = 4
let class_node_slots = 6

let class_slots =
  (* nodes * size, roughly: internal nodes need fanout+1 slots *)
  341 * 6

let body ~unit_slots m =
  let classes_per_unit = max 1 (unit_slots / class_slots) in
  (* roots: 0 = previous unit, 1 = current unit *)
  let new_unit () =
    Mutator.alloc m ~nrefs:classes_per_unit ~size:(classes_per_unit + 1)
  in
  let current = ref (new_unit ()) in
  Mutator.root_set m 1 !current;
  let filled = ref 0 in
  while not (Mutator.stopped m) do
    (* Compile one class: build its AST and attach it. *)
    let tree =
      Objgraph.build_tree m ~depth:class_depth ~fanout:class_fanout
        ~node_slots:class_node_slots
    in
    Mutator.set_ref m !current !filled tree;
    incr filled;
    Mutator.work m 60_000;
    if !filled >= classes_per_unit then begin
      (* Unit finished: it becomes the "previous" unit (symbol tables
         stay live); the older previous is dropped in bulk. *)
      Mutator.root_set m 0 !current;
      current := new_unit ();
      Mutator.root_set m 1 !current;
      filled := 0
    end;
    Mutator.tx_done m
  done

let setup ~gc ?(heap_mb = 25.0) ?(ncpus = 1) ?(seed = 1) ?(trace = false)
    ?(n_background = 1) () =
  let gc = { gc with Cgc_core.Config.n_background } in
  let vm = Vm.create (Vm.config ~heap_mb ~ncpus ~seed ~gc ~trace ()) in
  let nslots = Cgc_heap.Heap.nslots (Vm.heap vm) in
  (* Two units live at ~70% residency. *)
  let unit_slots = int_of_float (float_of_int nslots *. 0.7 /. 2.0) in
  Vm.spawn_mutator vm ~name:"javac" (body ~unit_slots);
  vm

let run ~gc ?heap_mb ?ncpus ?seed ?trace ?(ms = 4000.0) () =
  let vm = setup ~gc ?heap_mb ?ncpus ?seed ?trace () in
  Vm.run vm ~ms;
  vm
