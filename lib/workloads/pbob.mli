(** A pBOB-like workload (the tunable IBM benchmark SPECjbb is based on),
    in "autoserver" mode: [warehouses * terminals_per_warehouse] threads,
    each warehouse database shared by its terminals through the global
    roots, and exponential think times that leave the processors partly
    idle — the conditions under which the background tracing threads do
    real work and thousands of threads compete for work packets. *)

val base_profile : Txmix.profile

val setup :
  warehouses:int ->
  gc:Cgc_core.Config.t ->
  ?terminals:int ->
  ?heap_mb:float ->
  ?ncpus:int ->
  ?seed:int ->
  ?trace:bool ->
  ?trace_ring:int ->
  ?think_mean:int ->
  ?residency_at:int * float ->
  unit ->
  Cgc_runtime.Vm.t
(** Defaults: 25 terminals per warehouse (the paper's figure 2 setup),
    256 MB heap, 4 CPUs, think time 30 ms, and residency scaled so that
    80 warehouses reach 82% base occupancy — around 90% once floating
    garbage is added, matching the paper's figure. *)

val run :
  warehouses:int ->
  gc:Cgc_core.Config.t ->
  ?terminals:int ->
  ?heap_mb:float ->
  ?ncpus:int ->
  ?seed:int ->
  ?trace:bool ->
  ?trace_ring:int ->
  ?think_mean:int ->
  ?ms:float ->
  unit ->
  Cgc_runtime.Vm.t
