module Prng = Cgc_util.Prng
module Obs = Cgc_obs.Obs
module Event = Cgc_obs.Event

type scenario =
  | Packet_starvation
  | Alloc_burst
  | Mutator_stall
  | Meter_lowball
  | Card_storm
  | Bg_stall

let all =
  [ Packet_starvation; Alloc_burst; Mutator_stall; Meter_lowball; Card_storm;
    Bg_stall ]

let n_scenarios = List.length all

let index = function
  | Packet_starvation -> 0
  | Alloc_burst -> 1
  | Mutator_stall -> 2
  | Meter_lowball -> 3
  | Card_storm -> 4
  | Bg_stall -> 5

let to_name = function
  | Packet_starvation -> "packet-starvation"
  | Alloc_burst -> "alloc-burst"
  | Mutator_stall -> "mutator-stall"
  | Meter_lowball -> "meter-lowball"
  | Card_storm -> "card-storm"
  | Bg_stall -> "bg-stall"

let of_name s = List.find_opt (fun sc -> to_name sc = s) all

let describe = function
  | Packet_starvation ->
      "periodic windows where the packet pool pretends to be empty"
  | Alloc_burst -> "occasional bursts of extra garbage allocation"
  | Mutator_stall -> "occasional long mutator stalls mid-allocation"
  | Meter_lowball -> "metering rate estimates scaled down (late, lazy cycles)"
  | Card_storm -> "periodic mass dirtying of random cards"
  | Bg_stall -> "background tracing threads repeatedly oversleep"

(* Timing/magnitude constants, in simulated cycles (the default cost
   model runs 550_000 cycles per simulated millisecond). *)
let starve_period = 1_100_000 (* a starvation window every ~2 ms... *)
let starve_window = 165_000 (* ...lasting ~0.3 ms *)
let storm_period = 1_650_000 (* a card storm every ~3 ms *)
let meter_emit_period = 2_750_000 (* trace marker every ~5 ms of lowball *)
let lowball_factor = 0.35

type armed = {
  rng : Prng.t;
  the_seed : int;
  active : bool array; (* by scenario index *)
  counts : int array;
  last_period : int array; (* last period index that fired, per site *)
  mutable now : unit -> int;
  mutable obs : Obs.t;
}

type t = Disabled | Armed of armed

let disabled = Disabled

let create ?(scenarios = all) ~seed () =
  let active = Array.make n_scenarios false in
  List.iter (fun s -> active.(index s) <- true) scenarios;
  Armed
    {
      rng = Prng.create (seed lxor 0x0fa317_1417);
      the_seed = seed;
      active;
      counts = Array.make n_scenarios 0;
      last_period = Array.make n_scenarios (-1);
      now = (fun () -> 0);
      obs = Obs.null;
    }

let attach t ~now ~obs =
  match t with
  | Disabled -> ()
  | Armed a ->
      a.now <- now;
      a.obs <- obs

let enabled = function Disabled -> false | Armed _ -> true

let is_active t s =
  match t with Disabled -> false | Armed a -> a.active.(index s)

let seed = function Disabled -> 0 | Armed a -> a.the_seed

let injections t =
  match t with
  | Disabled -> []
  | Armed a ->
      List.filter_map
        (fun s ->
          if a.active.(index s) then Some (s, a.counts.(index s)) else None)
        all

let total_injections t =
  match t with Disabled -> 0 | Armed a -> Array.fold_left ( + ) 0 a.counts

let fire a s =
  let i = index s in
  a.counts.(i) <- a.counts.(i) + 1;
  Obs.instant a.obs ~arg:i Event.Fault_inject

(* Continuous (window-based) sites count — and mark in the trace — each
   entered window once, keyed by the period index. *)
let fire_window a s ~period =
  let i = index s in
  let w = a.now () / period in
  if a.last_period.(i) <> w then begin
    a.last_period.(i) <- w;
    fire a s
  end

let starve_packets t =
  match t with
  | Disabled -> false
  | Armed a when not a.active.(index Packet_starvation) -> false
  | Armed a ->
      if a.now () mod starve_period < starve_window then begin
        fire_window a Packet_starvation ~period:starve_period;
        true
      end
      else false

let alloc_burst t =
  match t with
  | Disabled -> 0
  | Armed a when not a.active.(index Alloc_burst) -> 0
  | Armed a ->
      if Prng.chance a.rng 0.004 then begin
        fire a Alloc_burst;
        4 + Prng.int a.rng 13
      end
      else 0

let mutator_stall t =
  match t with
  | Disabled -> 0
  | Armed a when not a.active.(index Mutator_stall) -> 0
  | Armed a ->
      if Prng.chance a.rng 0.0015 then begin
        fire a Mutator_stall;
        25_000 + Prng.int a.rng 250_000
      end
      else 0

let meter_scale t =
  match t with
  | Disabled -> 1.0
  | Armed a when not a.active.(index Meter_lowball) -> 1.0
  | Armed a ->
      fire_window a Meter_lowball ~period:meter_emit_period;
      lowball_factor

let card_storm t ~ncards =
  match t with
  | Disabled -> []
  | Armed a when not a.active.(index Card_storm) -> []
  | Armed a ->
      let i = index Card_storm in
      let w = a.now () / storm_period in
      if a.last_period.(i) = w then []
      else begin
        a.last_period.(i) <- w;
        fire a Card_storm;
        let n = min 4096 (max 16 (ncards / 8)) in
        List.init n (fun _ -> Prng.int a.rng ncards)
      end

let bg_stall t =
  match t with
  | Disabled -> 0
  | Armed a when not a.active.(index Bg_stall) -> 0
  | Armed a ->
      if Prng.chance a.rng 0.08 then begin
        fire a Bg_stall;
        100_000 + Prng.int a.rng 400_000
      end
      else 0
