(** Deterministic fault injection.

    A [Fault.t] is a PRNG-seeded perturbation source threaded through
    {!Cgc_core.Config} into every layer of the simulator.  Each named
    {e scenario} arms one injection site; the sites query the injector on
    their hot paths and receive either "no fault" (the overwhelmingly
    common answer — a disabled injector is a single pattern match) or a
    perturbation to apply:

    {ul
    {- {e packet-starvation}: periodic windows during which the work-packet
       pool pretends to be empty — [get_input]/[get_output] return [None],
       forcing the overflow, deferral and card-retrace fallbacks;}
    {- {e alloc-burst}: a mutator's allocation occasionally explodes into a
       burst of extra short-lived objects, stressing the metering formulas
       with allocation-rate spikes;}
    {- {e mutator-stall}: a mutator occasionally stalls for a long stretch
       of cycles mid-allocation (a page fault, a descheduled thread);}
    {- {e meter-lowball}: the metering formulas see scaled-down rate
       estimates — the kickoff fires late and increments are assigned too
       little work, driving cycles toward allocation failure;}
    {- {e card-storm}: periodic mass dirtying of random cards, inflating
       the card-cleaning volume far beyond the M estimate;}
    {- {e bg-stall}: the background tracing threads repeatedly oversleep,
       withdrawing the concurrent help the progress formula credits.}}

    Determinism: the injector owns a {!Cgc_util.Prng} stream derived from
    its seed, windows are functions of simulated time only, and every
    query site runs inside the deterministic cooperative scheduler — so
    equal seed and scenario flags reproduce the same perturbations and
    byte-identical event traces.  Each firing emits a
    {!Cgc_obs.Event.Fault_inject} event (argument = scenario index) so
    traces show exactly what was injected and when. *)

type scenario =
  | Packet_starvation
  | Alloc_burst
  | Mutator_stall
  | Meter_lowball
  | Card_storm
  | Bg_stall

val all : scenario list
(** Every scenario, in declaration order (index order). *)

val index : scenario -> int
(** Stable 0-based index — the [arg] of the [Fault_inject] trace event. *)

val to_name : scenario -> string
(** Stable dashed name, e.g. ["packet-starvation"] — the CLI vocabulary. *)

val of_name : string -> scenario option
(** Inverse of {!to_name}; ["all"] is handled by the CLI, not here. *)

val describe : scenario -> string
(** One-line description for [--help] output and docs. *)

type t

val disabled : t
(** The inert injector: every query is a single match returning "no
    fault".  This is the {!Cgc_core.Config.default} value. *)

val create : ?scenarios:scenario list -> seed:int -> unit -> t
(** An armed injector firing the given scenarios (default: {!all}) from a
    deterministic PRNG stream.  Create a fresh injector per VM — it holds
    mutable counters and the VM's clock. *)

val attach : t -> now:(unit -> int) -> obs:Cgc_obs.Obs.t -> unit
(** Connect the injector to a VM's simulated clock and event sink
    ({!Cgc_runtime.Vm.create} does this).  No-op on {!disabled}. *)

val enabled : t -> bool

val is_active : t -> scenario -> bool

val seed : t -> int
(** The creation seed ([0] for {!disabled}) — printed by reports so a run
    can be reproduced. *)

val injections : t -> (scenario * int) list
(** Firing counts per active scenario (continuous sites count entered
    windows, discrete sites count individual firings). *)

val total_injections : t -> int

(** {2 Query sites}

    Each returns the neutral element when the injector is disabled, the
    scenario is not armed, or the dice say no. *)

val starve_packets : t -> bool
(** True while a packet-starvation window is open: the pool must answer
    [None] to both [get_input] and [get_output]. *)

val alloc_burst : t -> int
(** Number of extra garbage objects the mutator should allocate before
    the real one; [0] almost always. *)

val mutator_stall : t -> int
(** Cycles the mutator should burn right now; [0] almost always. *)

val meter_scale : t -> float
(** Factor applied to the metering rate estimates and the kickoff
    threshold; [1.0] unless meter-lowball is armed. *)

val card_storm : t -> ncards:int -> int list
(** Card indices (all [< ncards]) to mass-dirty right now; [[]] outside
    storm instants. *)

val bg_stall : t -> int
(** Cycles a background tracing thread should oversleep; [0] almost
    always. *)
