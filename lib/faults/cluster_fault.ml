module Prng = Cgc_util.Prng

type scenario = Shard_crash | Shard_restart | Shard_brownout | Ring_flap

let all = [ Shard_crash; Shard_restart; Shard_brownout; Ring_flap ]

let index = function
  | Shard_crash -> 0
  | Shard_restart -> 1
  | Shard_brownout -> 2
  | Ring_flap -> 3

let to_name = function
  | Shard_crash -> "shard-crash"
  | Shard_restart -> "shard-restart"
  | Shard_brownout -> "shard-brownout"
  | Ring_flap -> "ring-flap"

let of_name s = List.find_opt (fun sc -> to_name sc = s) all

let describe = function
  | Shard_crash ->
      "one shard goes dark mid-run and never rejoins; queued requests lost"
  | Shard_restart ->
      "a dark window then a cold rejoin with empty queue and fresh heap"
  | Shard_brownout ->
      "a noisy neighbour inflates one shard's service times for a window"
  | Ring_flap -> "the victim shard repeatedly leaves and rejoins the fleet"

type incarnation = { index : int; start : int; stop : int; crashed : bool }

type plan = {
  scenario : scenario option;
  seed : int;
  shards : int;
  horizon : int;
  victim : int;
  dark : (int * int) array; (* victim dark windows, half-open, sorted *)
  brown : (int * int * float) option; (* victim slowdown window *)
}

let none ~shards ~horizon =
  {
    scenario = None;
    seed = 0;
    shards;
    horizon;
    victim = -1;
    dark = [||];
    brown = None;
  }

(* Window geometry, as fractions of the horizon.  The per-seed jitter
   (up to 5% of the horizon) keeps different chaos seeds from hitting
   the same simulated instant while preserving determinism. *)
let frac h x = int_of_float (float_of_int h *. x)

let make ~scenario ~seed ~shards ~horizon =
  if shards <= 0 then invalid_arg "Cluster_fault.make: shards";
  let rng = Prng.create (seed lxor 0xc1a05_f1e7) in
  let victim = Prng.int rng shards in
  let jitter = Prng.int rng (max 1 (horizon / 20)) in
  let dark, brown =
    match scenario with
    | Shard_crash -> ([| (frac horizon 0.40 + jitter, max_int) |], None)
    | Shard_restart ->
        ([| (frac horizon 0.35 + jitter, frac horizon 0.65 + jitter) |], None)
    | Shard_brownout ->
        ([||], Some (frac horizon 0.30 + jitter, frac horizon 0.70 + jitter, 2.0))
    | Ring_flap ->
        let period = frac horizon 0.15 and width = frac horizon 0.06 in
        let base = frac horizon 0.30 + jitter in
        let ws = ref [] in
        let s = ref base in
        while !s + width < horizon do
          ws := (!s, !s + width) :: !ws;
          s := !s + period
        done;
        (Array.of_list (List.rev !ws), None)
  in
  { scenario = Some scenario; seed; shards; horizon; victim; dark; brown }

let scenario p = p.scenario
let seed p = p.seed
let victim p = p.victim

let live_at p ~shard t =
  shard <> p.victim
  || not (Array.exists (fun (s, e) -> t >= s && t < e) p.dark)

let incarnations p ~shard =
  if shard <> p.victim || Array.length p.dark = 0 then
    [ { index = 0; start = 0; stop = p.horizon; crashed = false } ]
  else begin
    let acc = ref [] in
    let cur = ref 0 and idx = ref 0 in
    Array.iter
      (fun (s, e) ->
        if s < p.horizon then begin
          acc := { index = !idx; start = !cur; stop = s; crashed = true } :: !acc;
          incr idx;
          cur := e
        end)
      p.dark;
    if !cur < p.horizon then
      acc := { index = !idx; start = !cur; stop = p.horizon; crashed = false }
             :: !acc;
    List.rev !acc
  end

let brownout p ~shard = if shard = p.victim then p.brown else None

let first_onset p =
  let starts =
    Array.to_list (Array.map fst p.dark)
    @ (match p.brown with Some (s, _, _) -> [ s ] | None -> [])
  in
  match starts with
  | [] -> None
  | l -> Some (List.fold_left min max_int l)

let recovered_at p =
  match p.scenario with
  | None -> None
  | Some _ ->
      let stops =
        Array.to_list (Array.map snd p.dark)
        @ (match p.brown with Some (_, e, _) -> [ e ] | None -> [])
      in
      if stops = [] then None
      else
        let last = List.fold_left max 0 stops in
        if last >= p.horizon then None else Some last
