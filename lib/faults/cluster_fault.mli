(** Deterministic fleet-level chaos scenarios.

    Where {!Fault} perturbs a single VM's collector from the inside, a
    [Cluster_fault.plan] perturbs the {e fleet}: shards going dark,
    rejoining cold, or running slow.  The plan is a pure function of
    [(scenario, seed, shards, horizon)] — no mutable state, no clock —
    so the cluster front end can consult it while routing and the same
    plan replays byte-identically at any [--jobs].

    {ul
    {- {e shard-crash}: one shard goes dark mid-run and never rejoins;
       requests queued on it at the crash are lost, later keys remap;}
    {- {e shard-restart}: a dark window followed by a cold rejoin — the
       restarted incarnation starts with an empty queue and a fresh heap,
       forcing re-warm GC behaviour;}
    {- {e shard-brownout}: a noisy neighbour inflates one shard's service
       times over a window (the shard stays routable);}
    {- {e ring-flap}: the victim repeatedly leaves and rejoins,
       exercising repeated ring remap / rejoin churn.}}

    Each time a scenario touches a shard the cluster layer emits a typed
    {!Cgc_obs.Event.Cluster_fault} event (argument = {!index}) into that
    shard incarnation's trace. *)

type scenario = Shard_crash | Shard_restart | Shard_brownout | Ring_flap

val all : scenario list
(** Every scenario, in declaration order (index order). *)

val index : scenario -> int
(** Stable 0-based index — the [arg] of the [Cluster_fault] trace
    event. *)

val to_name : scenario -> string
(** Stable dashed name, e.g. ["shard-crash"] — the CLI vocabulary. *)

val of_name : string -> scenario option
(** Inverse of {!to_name}. *)

val describe : scenario -> string
(** One-line description for [--help] output and docs. *)

type plan
(** An immutable chaos plan for one cluster run. *)

type incarnation = {
  index : int;  (** 0 for the initial VM, 1.. for each cold rejoin *)
  start : int;  (** fleet cycle the incarnation comes up *)
  stop : int;  (** fleet cycle it goes down (or the horizon) *)
  crashed : bool;  (** true when [stop] is a crash, not the horizon *)
}

val none : shards:int -> horizon:int -> plan
(** The inert plan: every shard lives [0, horizon), no victim. *)

val make : scenario:scenario -> seed:int -> shards:int -> horizon:int -> plan
(** Build the deterministic plan.  The victim shard and window jitter are
    drawn from a {!Cgc_util.Prng} stream derived from [seed]; windows are
    fixed fractions of [horizon] plus that jitter. *)

val scenario : plan -> scenario option
val seed : plan -> int
val victim : plan -> int
(** The perturbed shard id, or [-1] for {!none}. *)

val live_at : plan -> shard:int -> int -> bool
(** Ground truth: is [shard] up at fleet cycle [t]?  (The balancer only
    learns this at epoch boundaries; mid-epoch the retry rung discovers
    it the hard way.) *)

val incarnations : plan -> shard:int -> incarnation list
(** The shard's VM incarnations, in time order.  Exactly one entry for
    unperturbed shards; a crashed entry per dark window for the victim,
    plus a final live entry when it rejoins before the horizon. *)

val brownout : plan -> shard:int -> (int * int * float) option
(** [(start, stop, factor)] service-time inflation window, if the shard
    browns out. *)

val first_onset : plan -> int option
(** Fleet cycle of the first perturbation, if any. *)

val recovered_at : plan -> int option
(** Fleet cycle at which every shard is nominal again — [None] for the
    inert plan and for scenarios that never recover (shard-crash). *)
