module Machine = Cgc_smp.Machine
module Obs = Cgc_obs.Obs
module Obs_event = Cgc_obs.Event
module Fence = Cgc_smp.Fence
module Cost = Cgc_smp.Cost
module Fault = Cgc_fault.Fault

(* Sub-pool indices *)
let sp_empty = 0
let sp_nonempty = 1
let sp_almost = 2
let sp_deferred = 3

type t = {
  mach : Machine.t;
  packets : Packet.t array;
  subs : Packet.t list array;
  counters : int array;
  cap : int;
  fence_on_put : bool;
  naive_mark_fence : bool;
  faults : Fault.t;
  mutable hw_in_use : int;
  mutable n_entries : int;
  mutable hw_entries : int;
  mutable hw_deferred : int;
  mutable gets : int;
  mutable puts : int;
}

(* Mutation of t.subs is not concurrent in the host (the simulator is
   single-threaded); CAS costs are charged to model what the real
   structure would pay. *)

let create ?(fence_on_put = true) ?(naive_mark_fence = false)
    ?(faults = Fault.disabled) mach ~n_packets ~capacity =
  if n_packets < 2 then invalid_arg "Pool.create: need at least 2 packets";
  let packets =
    Array.init n_packets (fun id -> Packet.make mach ~id ~capacity)
  in
  let t =
    {
      mach;
      packets;
      subs = [| Array.to_list packets; []; []; [] |];
      counters = [| n_packets; 0; 0; 0 |];
      cap = capacity;
      fence_on_put;
      naive_mark_fence;
      faults;
      hw_in_use = 0;
      n_entries = 0;
      hw_entries = 0;
      hw_deferred = 0;
      gets = 0;
      puts = 0;
    }
  in
  t

let machine t = t.mach
let total t = Array.length t.packets
let capacity t = t.cap

let classify t p =
  let n = Packet.count p in
  if n = 0 then sp_empty else if 2 * n < t.cap then sp_nonempty else sp_almost

(* One CAS on the list head, one on the counter (section 4.2/4.3). *)
let charge_op t =
  Machine.charge t.mach t.mach.Machine.cost.Cost.packet_op;
  Machine.cas t.mach;
  Machine.cas t.mach

let take_from t sp =
  match t.subs.(sp) with
  | [] -> None
  | p :: rest ->
      t.subs.(sp) <- rest;
      t.counters.(sp) <- t.counters.(sp) - 1;
      charge_op t;
      t.gets <- t.gets + 1;
      if sp = sp_empty then begin
        let in_use = Array.length t.packets - t.counters.(sp_empty) in
        if in_use > t.hw_in_use then t.hw_in_use <- in_use
      end;
      Some p

(* An open starvation window makes the pool answer None while still
   charging the failed probe, so simulated time keeps advancing (the
   window closes even for a thread spinning on the pool). *)
let starved t =
  if Fault.starve_packets t.faults then begin
    Machine.charge t.mach t.mach.Machine.cost.Cost.packet_op;
    true
  end
  else false

let get_input t =
  if starved t then None
  else
    let got =
      match take_from t sp_almost with
      | Some p -> Some p
      | None -> take_from t sp_nonempty
    in
    (match got with
    | Some p ->
        Obs.instant t.mach.Machine.obs ~arg:(Packet.count p)
          Obs_event.Packet_get
    | None -> ());
    got

let get_output t =
  if starved t then None
  else
  match take_from t sp_empty with
  | Some p -> Some p
  | None -> (
      match take_from t sp_nonempty with
      | Some p -> Some p
      | None -> (
          (* An almost-full packet can serve as output only if it is not
             totally full. *)
          match t.subs.(sp_almost) with
          | p :: _ when not (Packet.is_full p) -> take_from t sp_almost
          | _ -> None))

let put_into t sp p =
  t.subs.(sp) <- p :: t.subs.(sp);
  t.counters.(sp) <- t.counters.(sp) + 1;
  charge_op t;
  t.puts <- t.puts + 1

let put t p =
  if t.fence_on_put && not (Packet.is_empty p) && not t.naive_mark_fence then
    Machine.fence t.mach Fence.Packet_return;
  Obs.instant t.mach.Machine.obs ~arg:(Packet.count p) Obs_event.Packet_put;
  put_into t (classify t p) p

let put_deferred t p =
  if t.fence_on_put && not (Packet.is_empty p) && not t.naive_mark_fence then
    Machine.fence t.mach Fence.Packet_return;
  Obs.instant t.mach.Machine.obs ~arg:(Packet.count p) Obs_event.Packet_defer;
  put_into t sp_deferred p;
  if t.counters.(sp_deferred) > t.hw_deferred then
    t.hw_deferred <- t.counters.(sp_deferred)

let recycle_deferred t =
  let moved = ref 0 in
  let rec go () =
    match t.subs.(sp_deferred) with
    | [] -> ()
    | p :: rest ->
        t.subs.(sp_deferred) <- rest;
        t.counters.(sp_deferred) <- t.counters.(sp_deferred) - 1;
        charge_op t;
        put_into t (classify t p) p;
        incr moved;
        go ()
  in
  go ();
  if !moved > 0 then
    Obs.instant t.mach.Machine.obs ~arg:!moved Obs_event.Packet_recycle;
  !moved

let deferred_count t = t.counters.(sp_deferred)
let max_deferred t = t.hw_deferred

let push t p v =
  let ok = Packet.push p v in
  if ok then begin
    if t.naive_mark_fence then Machine.fence t.mach Fence.Naive_mark;
    t.n_entries <- t.n_entries + 1;
    if t.n_entries > t.hw_entries then t.hw_entries <- t.n_entries
  end;
  ok

let terminated t = t.counters.(sp_empty) = Array.length t.packets

let counts t =
  (t.counters.(sp_empty), t.counters.(sp_nonempty), t.counters.(sp_almost),
   t.counters.(sp_deferred))

let no_entry = Packet.no_entry

let pop_raw t p =
  let v = Packet.pop_raw p in
  if v <> Packet.no_entry then t.n_entries <- t.n_entries - 1;
  v

let pop t p =
  match Packet.pop p with
  | None -> None
  | Some v ->
      t.n_entries <- t.n_entries - 1;
      Some v

let in_use t = Array.length t.packets - t.counters.(sp_empty)
let max_in_use t = t.hw_in_use
let entries t = t.n_entries
let max_entries t = t.hw_entries

type occupancy = {
  occ_empty : int;
  occ_nonempty : int;
  occ_almost_full : int;
  occ_deferred : int;
  occ_in_use : int;
  occ_entries : int;
}

let occupancy t =
  {
    occ_empty = t.counters.(sp_empty);
    occ_nonempty = t.counters.(sp_nonempty);
    occ_almost_full = t.counters.(sp_almost);
    occ_deferred = t.counters.(sp_deferred);
    occ_in_use = in_use t;
    occ_entries = t.n_entries;
  }
let get_ops t = t.gets
let put_ops t = t.puts

let debug_dump t =
  let b = Buffer.create 128 in
  let names = [| "empty"; "nonempty"; "almost"; "deferred" |] in
  for sp = 0 to 3 do
    Buffer.add_string b
      (Printf.sprintf "%s: ctr=%d len=%d; " names.(sp) t.counters.(sp)
         (List.length t.subs.(sp)));
    List.iter
      (fun p ->
        if not (Packet.is_empty p) then
          Buffer.add_string b
            (Printf.sprintf "[pkt%d n=%d] " (Packet.id p) (Packet.count p)))
      t.subs.(sp)
  done;
  Buffer.contents b

let reset_watermarks t =
  t.hw_in_use <- in_use t;
  t.hw_entries <- t.n_entries;
  t.hw_deferred <- t.counters.(sp_deferred)
