(** A work packet: a small bounded mark stack (the paper's packets hold up
    to 493 entries).

    Packet contents are written through the weak-memory system: a packet
    filled on one processor and consumed on another is only safe if the
    producer fenced before publishing it — that is the section 5.1
    protocol, enforced by {!Pool.put}.  The consumer needs no fence thanks
    to the data dependency on the packet pointer. *)

type t

val make : Cgc_smp.Machine.t -> id:int -> capacity:int -> t

val id : t -> int
val capacity : t -> int
val count : t -> int

val is_empty : t -> bool
val is_full : t -> bool

val push : t -> int -> bool
(** [push p v] appends an entry; false if full. *)

val pop : t -> int option
(** Remove and return the newest entry, reading through the weak-memory
    system (a stale masked value can be returned in [Relaxed] mode when
    the producer failed to fence — that is the point). *)

val no_entry : int
(** Sentinel returned by {!pop_raw} on an empty packet ([min_int], which
    is never a heap address). *)

val pop_raw : t -> int
(** Allocation-free {!pop}: the popped entry, or {!no_entry} when the
    packet is empty.  The tracer drains packets one entry per simulated
    object scan, so the [Some] box per {!pop} was measurable. *)

val peek : t -> int option
(** The entry {!pop} would return, without removing it — work packets let
    the tracer prefetch the next object because, unlike a mark stack's
    top, it is always known. *)

val iter : t -> (int -> unit) -> unit
(** Iterate current entries (weak-memory aware reads), newest last. *)

val transfer_all : t -> t -> int
(** [transfer_all src dst] moves as many entries as fit; returns how many
    moved. *)
