module Machine = Cgc_smp.Machine
module Weakmem = Cgc_smp.Weakmem

type t = {
  mach : Machine.t;
  pid : int;
  data : int array;
  mutable n : int;
  wm_base : int;
}

let make mach ~id ~capacity =
  let wm_base = Weakmem.register mach.Machine.wm capacity in
  { mach; pid = id; data = Array.make capacity 0; n = 0; wm_base }

let id t = t.pid
let capacity t = Array.length t.data
let count t = t.n
let is_empty t = t.n = 0
let is_full t = t.n = Array.length t.data

let read t i =
  let wm = t.mach.Machine.wm in
  match Weakmem.mode wm with
  | Sc -> t.data.(i)
  | Relaxed ->
      Weakmem.read wm ~cpu:(Machine.cpu t.mach) ~now:(Machine.now t.mach)
        ~key:(t.wm_base + i) ~current:t.data.(i)

let write t i v =
  let wm = t.mach.Machine.wm in
  (match Weakmem.mode wm with
  | Sc -> ()
  | Relaxed ->
      Weakmem.store wm ~cpu:(Machine.cpu t.mach) ~now:(Machine.now t.mach)
        ~key:(t.wm_base + i) ~prev:t.data.(i));
  t.data.(i) <- v

let push t v =
  if is_full t then false
  else begin
    write t t.n v;
    t.n <- t.n + 1;
    true
  end

let no_entry = min_int

let pop_raw t =
  if t.n = 0 then no_entry
  else begin
    t.n <- t.n - 1;
    read t t.n
  end

let pop t =
  if t.n = 0 then None
  else begin
    t.n <- t.n - 1;
    Some (read t t.n)
  end

let peek t = if t.n = 0 then None else Some (read t (t.n - 1))

let iter t f =
  for i = 0 to t.n - 1 do
    f (read t i)
  done

let transfer_all src dst =
  let moved = ref 0 in
  let continue = ref true in
  while !continue do
    if is_empty src || is_full dst then continue := false
    else
      match pop src with
      | Some v ->
          ignore (push dst v);
          incr moved
      | None -> continue := false
  done;
  !moved
