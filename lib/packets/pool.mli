(** The global work-packet pool with occupancy-classified sub-pools.

    Section 4 of the paper: the pool is split into an {e Empty} sub-pool,
    a {e Non-empty} sub-pool (packets under 50% full) and an
    {e Almost-full} sub-pool (50% and up, including full), plus the
    {e Deferred} sub-pool added in section 5.2 for packets holding objects
    whose allocation bits were not yet visible.

    Key properties implemented here:
    {ul
    {- input and output packets are separate; threads compete for input
       packets from the highest-occupancy sub-pool available, and take
       output packets from the lowest, which is what load-balances;}
    {- each sub-pool is a CAS-accessed list with an associated packet
       counter, also CAS-updated; every successful get/put costs two
       compare-and-swaps, which the Table 4 "cost" metric counts;}
    {- termination is detected when the Empty sub-pool's counter equals
       the total number of packets (section 4.3) — correct because getters
       acquire input before output and replacers get-new-before-put-old;}
    {- a fence is executed before a non-empty packet is returned to the
       pool (section 5.1), so consumers on other processors see its
       contents; consumers need no fence (address dependency).}} *)

type t

val create :
  ?fence_on_put:bool ->
  ?naive_mark_fence:bool ->
  ?faults:Cgc_fault.Fault.t ->
  Cgc_smp.Machine.t ->
  n_packets:int ->
  capacity:int ->
  t
(** [fence_on_put] (default true) can be disabled to demonstrate the
    section 5.1 race in relaxed-memory tests.  [naive_mark_fence] (default
    false) instead fences on {e every} push, for the fence-batching
    ablation.  [faults] (default {!Cgc_fault.Fault.disabled}) makes
    {!get_input}/{!get_output} answer [None] during injected packet
    starvation windows (still charging the probe). *)

val machine : t -> Cgc_smp.Machine.t
val total : t -> int
val capacity : t -> int

val get_input : t -> Packet.t option
(** A packet with tracing work, from the fullest available sub-pool. *)

val get_output : t -> Packet.t option
(** A packet with room, preferring empty packets. *)

val put : t -> Packet.t -> unit
(** Return a packet to the sub-pool matching its occupancy, fencing first
    if it is non-empty (per [fence_on_put]). *)

val put_deferred : t -> Packet.t -> unit
(** Park a packet of not-yet-safe objects in the Deferred sub-pool. *)

val recycle_deferred : t -> int
(** Move every deferred packet back to its occupancy sub-pool so its
    objects get another chance to be traced; returns how many packets
    moved. *)

val deferred_count : t -> int

val max_deferred : t -> int
(** High-water mark of {!deferred_count} since the last
    {!reset_watermarks} — how deep the section 5.2 deferral got. *)

val push : t -> Packet.t -> int -> bool
(** Push through the pool so the ablation [naive_mark_fence] policy can
    fence per entry and the entry watermark stays accurate.  Same result
    as {!Packet.push}. *)

val pop : t -> Packet.t -> int option
(** Pop through the pool (keeps the entry watermark accurate). *)

val no_entry : int
(** Sentinel returned by {!pop_raw}; see {!Packet.no_entry}. *)

val pop_raw : t -> Packet.t -> int
(** Allocation-free {!pop}: the entry, or {!no_entry} when the packet is
    empty.  Used by the tracer's drain loops, which pop one entry per
    simulated object and were paying a [Some] box each time. *)

val terminated : t -> bool
(** Empty-pool counter equals the total packet count: no tracing work
    exists anywhere and no thread holds a non-empty packet. *)

val counts : t -> int * int * int * int
(** (empty, nonempty, almost_full, deferred) counter values. *)

type occupancy = {
  occ_empty : int;
  occ_nonempty : int;
  occ_almost_full : int;
  occ_deferred : int;
  occ_in_use : int;
  occ_entries : int;
}
(** One coherent snapshot of the pool's occupancy, by sub-pool plus the
    in-use and total-entry gauges. *)

val occupancy : t -> occupancy
(** Probe for the profiler's online sampler: a host-side read of the
    counters, charging no simulated cycles. *)

val in_use : t -> int
(** Packets currently out of the Empty sub-pool (held or holding work). *)

val max_in_use : t -> int
(** High-water mark of {!in_use} — the paper's upper bound on packet
    memory (section 6.3). *)

val entries : t -> int
val max_entries : t -> int
(** High-water mark of total entries across all packets — the paper's
    lower bound on packet memory. *)

val get_ops : t -> int
val put_ops : t -> int

val reset_watermarks : t -> unit

val debug_dump : t -> string
(** Counters vs. actual list lengths per sub-pool, plus the ids and entry
    counts of non-empty pooled packets (diagnostics). *)
