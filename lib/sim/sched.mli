(** Discrete-event simulation of an N-way shared-memory multiprocessor.

    Simulated threads are OCaml 5 effect-handler coroutines multiplexed
    over [ncpus] simulated processors.  Each processor has its own clock;
    the scheduler always advances the processor that is furthest behind,
    so cross-processor interleaving happens at (at most) quantum
    granularity.  A thread expresses the passage of time by performing
    {!consume} (burn CPU cycles), {!sleep} (block without using a CPU —
    think time / IO) and {!yield}.

    Three priority levels implement the paper's thread taxonomy:
    - [High]: stop-the-world GC worker threads,
    - [Normal]: mutators (and the incremental tracing they perform
      during allocation, charged to their own CPU time),
    - [Low]: the concurrent collector's background tracing threads, which
      only run when a processor would otherwise be idle.

    {!stop_the_world} suspends scheduling of [Normal] and [Low] threads;
    only [High] threads run until {!restart_world}.  The elapsed simulated
    time between stop and restart is recorded as a pause. *)

type t

type prio = High | Normal | Low

type thread
(** Handle on a simulated thread. *)

val create : ?quantum:int -> ?dispatch:int -> ncpus:int -> unit -> t
(** [quantum] is the preemption slice in cycles (default 110_000 — about
    0.2 ms at 550 MHz, a compromise between OS realism and interleaving
    granularity); [dispatch] the context-switch cost (default
    {!Cgc_smp.Cost.default.dispatch}). *)

val ncpus : t -> int

val spawn : t -> name:string -> prio:prio -> (unit -> unit) -> thread
(** Create a thread; it becomes runnable immediately.  The body runs
    inside the simulation and may use {!consume}/{!sleep}/{!yield} and
    spawn further threads. *)

val run : t -> until:int -> unit
(** Drive the simulation until the clock passes [until] cycles or no
    thread remains alive or runnable.  Must not be called from inside a
    simulated thread. *)

(** {2 Operations usable only from inside a simulated thread} *)

val consume : int -> unit
(** Burn simulated CPU cycles; may be preempted part-way. *)

val consume_on : t -> int -> unit
(** Like {!consume}, for callers that hold the scheduler: semantically
    identical, but a charge that does not cross the quantum boundary is
    a direct state update with no effect dispatch, so sub-quantum
    charges — the overwhelming majority — cost a couple of stores
    instead of a continuation capture.  Must be called from the
    currently running thread of [t]. *)

val sleep : int -> unit
(** Block for the given number of cycles without occupying a CPU. *)

val yield : unit -> unit
(** Relinquish the CPU; the thread stays runnable. *)

val now : t -> int
(** Current simulated time in cycles (usable from inside or outside). *)

val current : t -> thread
(** The thread performing the call. *)

val stop_the_world : t -> unit
(** Request that only [High]-priority threads be scheduled.  Records the
    pause start.  The calling thread keeps running regardless of its
    priority (it is the collector's initiator). *)

val restart_world : t -> int
(** End the stop-the-world window; returns the pause length in cycles. *)

val world_stopped : t -> bool

val set_prio : t -> thread -> prio -> unit

val thread_name : thread -> string
val thread_id : thread -> int
val thread_cycles : thread -> int
(** Total CPU cycles this thread has consumed. *)

val terminated : t -> bool
(** True once [run] has returned: threads should wind down. *)

val request_stop : t -> unit
(** Cooperative shutdown flag for long-running threads (read it with
    {!stop_requested}). *)

val stop_requested : t -> bool

val idle_cycles : t -> int
(** Total processor-idle cycles accumulated so far (all CPUs). *)

val busy_cycles : t -> int
(** Total cycles consumed by threads (all CPUs). *)

val on_advance : t -> (int -> unit) -> unit
(** Install a hook called with the current time each time a processor is
    dispatched — used to drain due weak-memory stores and to tick the
    profiler's online sampler.  Hooks accumulate and run in installation
    order; they execute on the host side (outside any simulated thread),
    so they must not consume simulated time or call {!current}. *)

(** {2 Thread introspection (for the profiler's sampler)} *)

type tstate = Runnable | Running | Sleeping | Dead

val threads : t -> thread list
(** Every thread ever spawned, in spawn order (including dead ones). *)

val iter_threads : t -> (thread -> unit) -> unit
(** Apply a function to every thread ever spawned, in unspecified order,
    without materialising the list {!threads} builds — for probes that
    only count. *)

val thread_state : thread -> tstate
val thread_prio : thread -> prio

val debug_queues_clean : t -> bool
(** Test hook for the PR 9 retention bugfixes: [true] iff every vacated
    slot in the sleep queue and the three runqueue rings holds the dummy
    thread — i.e. the scheduler retains no reference to a thread that is
    not actually queued.  O(queue capacity); never used on the hot
    path. *)
