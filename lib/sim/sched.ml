module R = Cgc_util.Ringbuf

type prio = High | Normal | Low

type outcome = Finished | Preempted | Slept of int | Yielded

type cont = C : (unit, outcome) Effect.Deep.continuation -> cont

type state = Runnable | Running | Sleeping | Dead

type thread = {
  id : int;
  name : string;
  mutable prio : prio;
  mutable st : state;
  mutable wake_at : int;
  mutable ready_at : int;
      (* a thread may not be dispatched before this time: it is the end of
         its previous quantum, so a thread can never run on a lagging CPU
         "before" work it has already done on another *)
  mutable k : cont option;
  mutable body : (unit -> unit) option;
  mutable cycles : int;
}

type _ Effect.t +=
  | Consume : int -> unit Effect.t
  | Preempt : unit Effect.t
  | Sleep : int -> unit Effect.t
  | Yield : unit Effect.t

let dummy_thread =
  { id = -1; name = "<dummy>"; prio = Low; st = Dead; wake_at = 0;
    ready_at = 0; k = None; body = None; cycles = 0 }

(* Min-heap of sleeping threads keyed by wake time (shared kernel, see
   Cgc_util.Minheap for the slot-hygiene contract). *)
module Sleepq = Cgc_util.Minheap.Make (struct
  type elt = thread

  let key th = th.wake_at
  let dummy = dummy_thread
end)

(* One priority level's runqueue: an index-based ring (no per-push cell
   allocation, unlike the Queue it replaced) plus a cached lower bound on
   the queued threads' ready times.  [ready_at] is immutable while a
   thread is queued, so the cache is exact whenever [dirty] is false: it
   is refreshed eagerly on push and invalidated only when a thread is
   actually removed.  The in-place rotation [take_ready] performs leaves
   the contents unchanged, so it does not touch the cache. *)
type runq = {
  q : thread R.t;
  mutable cached_min : int; (* min ready_at of queued threads; exact unless dirty *)
  mutable dirty : bool;
}

let runq_create () =
  { q = R.create ~capacity:32 dummy_thread; cached_min = max_int; dirty = false }

let rq_push rq th =
  R.push_back rq.q th;
  if (not rq.dirty) && th.ready_at < rq.cached_min then
    rq.cached_min <- th.ready_at

let rec rq_min_scan q i n acc =
  if i >= n then acc
  else
    let th = R.get q i in
    rq_min_scan q (i + 1) n (if th.ready_at < acc then th.ready_at else acc)

let rq_min rq =
  if rq.dirty then begin
    rq.cached_min <- rq_min_scan rq.q 0 (R.length rq.q) max_int;
    rq.dirty <- false
  end;
  rq.cached_min

type t = {
  n_cpus : int;
  quantum : int;
  dispatch : int;
  clock : int array;
  runq_high : runq;
  runq_normal : runq;
  runq_low : runq;
  sleepers : Sleepq.t;
  mutable next_wake : int;
      (* mirror of [Sleepq.min_key t.sleepers], so the per-iteration
         "anything due?" test is one field compare.  Updated on every
         sleeper push and after every drain. *)
  mutable live : int;
  mutable stopped : bool;
  mutable stop_at : int;
  mutable initiator : (thread * prio) option;
  mutable cur : thread; (* [dummy_thread] when no thread is running *)
  mutable run_base : int;
  mutable used : int;
  mutable next_id : int;
  mutable finished : bool;
  mutable stop_flag : bool;
  mutable idle : int;
  mutable busy : int;
  mutable low_skips : int;
      (* priority aging: after this many dispatches in which a ready
         low-priority thread was passed over, it gets one slice.  Without
         this a machine saturated with normal-priority mutators would
         starve the background GC threads *absolutely* — unlike a real
         OS — and a preempted background thread could sit on work packets
         for a whole cycle, blocking termination detection. *)
  mutable hooks : (int -> unit) array;
      (* advance hooks, in installation order; an array so the per-
         dispatch walk is a plain indexed loop with no closure allocation *)
  mutable all_threads : thread list;  (* every spawned thread, newest first *)
}

let low_boost_every = 64

let create ?(quantum = 110_000) ?(dispatch = Cgc_smp.Cost.default.dispatch)
    ~ncpus () =
  if ncpus <= 0 then invalid_arg "Sched.create: ncpus";
  {
    n_cpus = ncpus;
    quantum;
    dispatch;
    clock = Array.make ncpus 0;
    runq_high = runq_create ();
    runq_normal = runq_create ();
    runq_low = runq_create ();
    sleepers = Sleepq.create ();
    next_wake = max_int;
    live = 0;
    stopped = false;
    stop_at = 0;
    initiator = None;
    cur = dummy_thread;
    run_base = 0;
    used = 0;
    next_id = 0;
    finished = false;
    stop_flag = false;
    idle = 0;
    busy = 0;
    low_skips = 0;
    hooks = [||];
    all_threads = [];
  }

let ncpus t = t.n_cpus

let now t = t.run_base + t.used

let enqueue t th =
  match th.prio with
  | High -> rq_push t.runq_high th
  | Normal -> rq_push t.runq_normal th
  | Low -> rq_push t.runq_low th

let spawn t ~name ~prio body =
  let th =
    { id = t.next_id; name; prio; st = Runnable; wake_at = 0;
      ready_at = now t; k = None; body = Some body; cycles = 0 }
  in
  t.next_id <- t.next_id + 1;
  t.live <- t.live + 1;
  t.all_threads <- th :: t.all_threads;
  enqueue t th;
  th

let consume n = if n > 0 then Effect.perform (Consume n)

(* Direct-call twin of {!consume} for callers that hold the scheduler.
   The simulation is cooperative and single-stacked: while a thread
   runs, nothing else can observe scheduler state, so a charge that does
   not cross the quantum boundary is a plain pair of field updates — no
   continuation capture, no handler round-trip.  Only an actual
   preemption suspends, via the [Preempt] effect, whose handler does
   exactly what [Consume]'s over-quantum arm did. *)
let consume_on t n =
  if n > 0 then begin
    let th = t.cur in
    if th == dummy_thread then
      invalid_arg "Sched.consume_on: no thread is running";
    t.used <- t.used + n;
    th.cycles <- th.cycles + n;
    if t.used >= t.quantum then Effect.perform Preempt
  end

let sleep n = if n > 0 then Effect.perform (Sleep n) else Effect.perform Yield
let yield () = Effect.perform Yield

let current t =
  if t.cur == dummy_thread then
    invalid_arg "Sched.current: no thread is running"
  else t.cur

let world_stopped t = t.stopped

let stop_the_world t =
  if t.stopped then invalid_arg "Sched.stop_the_world: already stopped";
  t.stopped <- true;
  t.stop_at <- now t;
  (* The initiating thread must remain schedulable while the world is
     stopped: it drives the collection.  Boost it to High for the
     duration. *)
  let th = t.cur in
  if th == dummy_thread then t.initiator <- None
  else begin
    t.initiator <- Some (th, th.prio);
    th.prio <- High
  end

let restart_world t =
  if not t.stopped then invalid_arg "Sched.restart_world: not stopped";
  t.stopped <- false;
  let pause = now t - t.stop_at in
  (match t.initiator with
  | Some (th, p) -> th.prio <- p
  | None -> ());
  t.initiator <- None;
  pause

let set_prio t th p =
  ignore t;
  (* If the thread is queued under its old priority we would have to move
     it; priority changes are only performed on the currently-running
     thread (GC helpers promote themselves), so the queues stay
     consistent: the thread is re-enqueued under the new priority when it
     next suspends. *)
  th.prio <- p

let thread_name th = th.name
let thread_id th = th.id
let thread_cycles th = th.cycles

let terminated t = t.finished
let request_stop t = t.stop_flag <- true
let stop_requested t = t.stop_flag

let idle_cycles t = t.idle
let busy_cycles t = t.busy

let on_advance t f = t.hooks <- Array.append t.hooks [| f |]

type tstate = Runnable | Running | Sleeping | Dead

let thread_state th =
  match th.st with
  | (Runnable : state) -> Runnable
  | Running -> Running
  | Sleeping -> Sleeping
  | Dead -> Dead

let thread_prio th = th.prio
let threads t = List.rev t.all_threads
let iter_threads t f = List.iter f t.all_threads

(* The no-retention invariant the PR 9 bugfixes enforce: every vacated
   slot in the sleep queue and the three runqueue rings holds the dummy.
   Test hook — O(capacity), never called on the hot path. *)
let debug_queues_clean t =
  Sleepq.slots_clean t.sleepers
  && R.slots_clean t.runq_high.q
  && R.slots_clean t.runq_normal.q
  && R.slots_clean t.runq_low.q

let handler t th : (unit, outcome) Effect.Deep.handler =
  {
    retc = (fun () -> Finished);
    exnc =
      (fun e ->
        Printf.eprintf "simulated thread %s died: %s\n%s\n%!" th.name
          (Printexc.to_string e)
          (Printexc.get_backtrace ());
        raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Consume n ->
            Some
              (fun (k : (a, outcome) Effect.Deep.continuation) ->
                t.used <- t.used + n;
                th.cycles <- th.cycles + n;
                if t.used < t.quantum then Effect.Deep.continue k ()
                else begin
                  th.k <- Some (C k);
                  Preempted
                end)
        | Preempt ->
            Some
              (fun (k : (a, outcome) Effect.Deep.continuation) ->
                th.k <- Some (C k);
                Preempted)
        | Sleep n ->
            Some
              (fun (k : (a, outcome) Effect.Deep.continuation) ->
                th.k <- Some (C k);
                Slept n)
        | Yield ->
            Some
              (fun (k : (a, outcome) Effect.Deep.continuation) ->
                th.k <- Some (C k);
                Yielded)
        | _ -> None);
  }

let exec t th =
  match th.k with
  | Some (C k) ->
      th.k <- None;
      Effect.Deep.continue k ()
  | None -> (
      match th.body with
      | Some body ->
          th.body <- None;
          Effect.Deep.match_with body () (handler t th)
      | None -> assert false)

(* Take the first thread in the queue that is allowed to run at time
   [tm]; threads inspected before it keep their relative order (they are
   rotated to the tail, exactly as the Queue pop/push of the previous
   implementation did — the rotation is semantically observable, so it
   is preserved).  Returns [dummy_thread] when nothing is ready; written
   as top-level tail recursion so the scan allocates nothing. *)
let rec take_ready_loop rq tm i n =
  if i >= n then dummy_thread
  else
    let th = R.pop_front rq.q in
    if th.ready_at <= tm then begin
      (* A thread actually left the queue: the cached bound may now be
         stale.  An empty queue resets to a clean max_int. *)
      if R.is_empty rq.q then begin
        rq.dirty <- false;
        rq.cached_min <- max_int
      end
      else rq.dirty <- true;
      th
    end
    else begin
      R.push_back rq.q th;
      take_ready_loop rq tm (i + 1) n
    end

(* A fully failed scan pops and re-pushes every element, which restores
   the original order — so when the cached bound proves no queued thread
   is ready yet, skipping the scan entirely is indistinguishable from
   running it.  Idle processors poll the queues every advance; this
   makes that poll O(1). *)
let take_ready rq tm =
  if rq_min rq > tm then dummy_thread
  else take_ready_loop rq tm 0 (R.length rq.q)

let pick t tm =
  if t.stopped then take_ready t.runq_high tm
  else begin
    let th = take_ready t.runq_high tm in
    if th != dummy_thread then th
    else begin
      let boost =
        t.low_skips >= low_boost_every && not (R.is_empty t.runq_low.q)
      in
      if boost then begin
        let th = take_ready t.runq_low tm in
        if th != dummy_thread then begin
          t.low_skips <- 0;
          th
        end
        else take_ready t.runq_normal tm
      end
      else begin
        let th = take_ready t.runq_normal tm in
        if th != dummy_thread then begin
          if not (R.is_empty t.runq_low.q) then
            t.low_skips <- t.low_skips + 1;
          th
        end
        else take_ready t.runq_low tm
      end
    end
  end

(* Earliest time any queued thread becomes dispatchable.  The cached
   per-queue bounds make this O(1) between dispatches; a queue is only
   re-scanned (once) after a removal dirtied its cache. *)
let min_ready_at t =
  let best = rq_min t.runq_high in
  if t.stopped then best
  else
    let best = min best (rq_min t.runq_normal) in
    min best (rq_min t.runq_low)

let min_cpu t =
  let c = ref 0 in
  for i = 1 to t.n_cpus - 1 do
    if t.clock.(i) < t.clock.(!c) then c := i
  done;
  !c

(* Drop stale top entries (threads that are no longer Sleeping) so the
   sleep queue can neither re-enqueue a dead thread nor stall the idle
   advance on a wake time that no longer means anything.  In the current
   scheduler every queued entry is Sleeping by construction; this is the
   defensive companion to the [st = Sleeping] check in [wake_due]. *)
let rec purge_stale_loop t =
  if
    (not (Sleepq.is_empty t.sleepers))
    && (Sleepq.top t.sleepers).st <> Sleeping
  then begin
    ignore (Sleepq.pop t.sleepers);
    purge_stale_loop t
  end

let purge_stale t =
  if
    (not (Sleepq.is_empty t.sleepers))
    && (Sleepq.top t.sleepers).st <> Sleeping
  then begin
    purge_stale_loop t;
    t.next_wake <- Sleepq.min_key t.sleepers
  end

(* Callers guard with [t.next_wake <= tm] so the no-op case costs one
   field compare and no call. *)
let wake_due t tm =
  while Sleepq.min_key t.sleepers <= tm do
    let th = Sleepq.pop t.sleepers in
    if th.st = Sleeping then begin
      th.st <- Runnable;
      enqueue t th
    end
  done;
  t.next_wake <- Sleepq.min_key t.sleepers

let run t ~until =
  if t.cur != dummy_thread then invalid_arg "Sched.run: reentrant call";
  t.finished <- false;
  let continue = ref true in
  while !continue do
    if t.live = 0 then continue := false
    else begin
      let c = min_cpu t in
      let tm = t.clock.(c) in
      if tm > until then continue := false
      else begin
        if t.next_wake <= tm then wake_due t tm;
        let hooks = t.hooks in
        for i = 0 to Array.length hooks - 1 do
          hooks.(i) tm
        done;
        let th = pick t tm in
        if th != dummy_thread then begin
          t.run_base <- tm;
          t.used <- 0;
          t.cur <- th;
          th.st <- Running;
          let outcome = exec t th in
          t.cur <- dummy_thread;
          t.busy <- t.busy + t.used;
          let fin = tm + t.used + t.dispatch in
          t.clock.(c) <- fin;
          match outcome with
          | Finished ->
              th.st <- Dead;
              t.live <- t.live - 1
          | Preempted | Yielded ->
              th.st <- Runnable;
              th.ready_at <- fin;
              enqueue t th
          | Slept n ->
              th.st <- Sleeping;
              th.wake_at <- tm + t.used + n;
              th.ready_at <- th.wake_at;
              Sleepq.push t.sleepers th;
              if th.wake_at < t.next_wake then t.next_wake <- th.wake_at
        end
        else begin
          (* This CPU is idle.  Advance it to the next time anything can
             change: the earliest queued thread's ready time, the
             earliest sleeper wake-up, bounded above by a quantum so a
             stopped world is re-polled cheaply. *)
          purge_stale t;
          let next_queued = min_ready_at t in
          let next_sleep = t.next_wake in
          let next = min next_queued next_sleep in
          let next =
            if next = max_int then
              if
                R.is_empty t.runq_high.q
                && R.is_empty t.runq_normal.q
                && R.is_empty t.runq_low.q
                && Sleepq.is_empty t.sleepers
              then (
                (* Nothing runnable and nothing will wake: no progress
                   is possible. *)
                continue := false;
                tm)
              else tm + t.quantum
            else max (tm + 1) (min next (tm + t.quantum))
          in
          t.idle <- t.idle + (next - tm);
          t.clock.(c) <- next
        end
      end
    end
  done;
  (* Note: the cooperative stop flag is NOT raised here — [run] may be
     called again to continue the same simulation (warm-up followed by a
     measured window).  Threads parked at effect points simply resume. *)
  t.finished <- true
