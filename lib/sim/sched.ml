type prio = High | Normal | Low

type outcome = Finished | Preempted | Slept of int | Yielded

type cont = C : (unit, outcome) Effect.Deep.continuation -> cont

type state = Runnable | Running | Sleeping | Dead

type thread = {
  id : int;
  name : string;
  mutable prio : prio;
  mutable st : state;
  mutable wake_at : int;
  mutable ready_at : int;
      (* a thread may not be dispatched before this time: it is the end of
         its previous quantum, so a thread can never run on a lagging CPU
         "before" work it has already done on another *)
  mutable k : cont option;
  mutable body : (unit -> unit) option;
  mutable cycles : int;
}

type _ Effect.t +=
  | Consume : int -> unit Effect.t
  | Sleep : int -> unit Effect.t
  | Yield : unit Effect.t

(* Min-heap of sleeping threads keyed by wake time. *)
module Sleepq = struct
  type t = { mutable a : thread array; mutable n : int }

  let create dummy = { a = Array.make 32 dummy; n = 0 }

  let is_empty h = h.n = 0

  let push h th =
    if h.n = Array.length h.a then begin
      let bigger = Array.make (2 * h.n) h.a.(0) in
      Array.blit h.a 0 bigger 0 h.n;
      h.a <- bigger
    end;
    let i = ref h.n in
    h.n <- h.n + 1;
    h.a.(!i) <- th;
    let continue = ref true in
    while !continue && !i > 0 do
      let p = (!i - 1) / 2 in
      if h.a.(p).wake_at > h.a.(!i).wake_at then begin
        let tmp = h.a.(p) in
        h.a.(p) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := p
      end
      else continue := false
    done

  let peek h = if h.n = 0 then None else Some h.a.(0)

  let pop h =
    let top = h.a.(0) in
    h.n <- h.n - 1;
    h.a.(0) <- h.a.(h.n);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let s = ref !i in
      if l < h.n && h.a.(l).wake_at < h.a.(!s).wake_at then s := l;
      if r < h.n && h.a.(r).wake_at < h.a.(!s).wake_at then s := r;
      if !s <> !i then begin
        let tmp = h.a.(!s) in
        h.a.(!s) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := !s
      end
      else continue := false
    done;
    top
end

type t = {
  n_cpus : int;
  quantum : int;
  dispatch : int;
  clock : int array;
  runq_high : thread Queue.t;
  runq_normal : thread Queue.t;
  runq_low : thread Queue.t;
  sleepers : Sleepq.t;
  mutable live : int;
  mutable stopped : bool;
  mutable stop_at : int;
  mutable initiator : (thread * prio) option;
  mutable cur : thread option;
  mutable run_base : int;
  mutable used : int;
  mutable next_id : int;
  mutable finished : bool;
  mutable stop_flag : bool;
  mutable idle : int;
  mutable busy : int;
  mutable low_skips : int;
      (* priority aging: after this many dispatches in which a ready
         low-priority thread was passed over, it gets one slice.  Without
         this a machine saturated with normal-priority mutators would
         starve the background GC threads *absolutely* — unlike a real
         OS — and a preempted background thread could sit on work packets
         for a whole cycle, blocking termination detection. *)
  mutable hooks : (int -> unit) list;
      (* advance hooks, in installation order *)
  mutable all_threads : thread list;  (* every spawned thread, newest first *)
}

let low_boost_every = 64

let dummy_thread =
  { id = -1; name = "<dummy>"; prio = Low; st = Dead; wake_at = 0;
    ready_at = 0; k = None; body = None; cycles = 0 }

let create ?(quantum = 110_000) ?(dispatch = Cgc_smp.Cost.default.dispatch)
    ~ncpus () =
  if ncpus <= 0 then invalid_arg "Sched.create: ncpus";
  {
    n_cpus = ncpus;
    quantum;
    dispatch;
    clock = Array.make ncpus 0;
    runq_high = Queue.create ();
    runq_normal = Queue.create ();
    runq_low = Queue.create ();
    sleepers = Sleepq.create dummy_thread;
    live = 0;
    stopped = false;
    stop_at = 0;
    initiator = None;
    cur = None;
    run_base = 0;
    used = 0;
    next_id = 0;
    finished = false;
    stop_flag = false;
    idle = 0;
    busy = 0;
    low_skips = 0;
    hooks = [];
    all_threads = [];
  }

let ncpus t = t.n_cpus

let now t = t.run_base + t.used

let enqueue t th =
  match th.prio with
  | High -> Queue.push th t.runq_high
  | Normal -> Queue.push th t.runq_normal
  | Low -> Queue.push th t.runq_low

let spawn t ~name ~prio body =
  let th =
    { id = t.next_id; name; prio; st = Runnable; wake_at = 0;
      ready_at = now t; k = None; body = Some body; cycles = 0 }
  in
  t.next_id <- t.next_id + 1;
  t.live <- t.live + 1;
  t.all_threads <- th :: t.all_threads;
  enqueue t th;
  th

let consume n = if n > 0 then Effect.perform (Consume n)
let sleep n = if n > 0 then Effect.perform (Sleep n) else Effect.perform Yield
let yield () = Effect.perform Yield

let current t =
  match t.cur with
  | Some th -> th
  | None -> invalid_arg "Sched.current: no thread is running"

let world_stopped t = t.stopped

let stop_the_world t =
  if t.stopped then invalid_arg "Sched.stop_the_world: already stopped";
  t.stopped <- true;
  t.stop_at <- now t;
  (* The initiating thread must remain schedulable while the world is
     stopped: it drives the collection.  Boost it to High for the
     duration. *)
  match t.cur with
  | Some th ->
      t.initiator <- Some (th, th.prio);
      th.prio <- High
  | None -> t.initiator <- None

let restart_world t =
  if not t.stopped then invalid_arg "Sched.restart_world: not stopped";
  t.stopped <- false;
  let pause = now t - t.stop_at in
  (match t.initiator with
  | Some (th, p) -> th.prio <- p
  | None -> ());
  t.initiator <- None;
  pause

let set_prio t th p =
  ignore t;
  (* If the thread is queued under its old priority we would have to move
     it; priority changes are only performed on the currently-running
     thread (GC helpers promote themselves), so the queues stay
     consistent: the thread is re-enqueued under the new priority when it
     next suspends. *)
  th.prio <- p

let thread_name th = th.name
let thread_id th = th.id
let thread_cycles th = th.cycles

let terminated t = t.finished
let request_stop t = t.stop_flag <- true
let stop_requested t = t.stop_flag

let idle_cycles t = t.idle
let busy_cycles t = t.busy

let on_advance t f = t.hooks <- t.hooks @ [ f ]

type tstate = Runnable | Running | Sleeping | Dead

let thread_state th =
  match th.st with
  | (Runnable : state) -> Runnable
  | Running -> Running
  | Sleeping -> Sleeping
  | Dead -> Dead

let thread_prio th = th.prio
let threads t = List.rev t.all_threads

let handler t th : (unit, outcome) Effect.Deep.handler =
  {
    retc = (fun () -> Finished);
    exnc =
      (fun e ->
        Printf.eprintf "simulated thread %s died: %s\n%s\n%!" th.name
          (Printexc.to_string e)
          (Printexc.get_backtrace ());
        raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Consume n ->
            Some
              (fun (k : (a, outcome) Effect.Deep.continuation) ->
                t.used <- t.used + n;
                th.cycles <- th.cycles + n;
                if t.used < t.quantum then Effect.Deep.continue k ()
                else begin
                  th.k <- Some (C k);
                  Preempted
                end)
        | Sleep n ->
            Some
              (fun (k : (a, outcome) Effect.Deep.continuation) ->
                th.k <- Some (C k);
                Slept n)
        | Yield ->
            Some
              (fun (k : (a, outcome) Effect.Deep.continuation) ->
                th.k <- Some (C k);
                Yielded)
        | _ -> None);
  }

let exec t th =
  match th.k with
  | Some (C k) ->
      th.k <- None;
      Effect.Deep.continue k ()
  | None -> (
      match th.body with
      | Some body ->
          th.body <- None;
          Effect.Deep.match_with body () (handler t th)
      | None -> assert false)

(* Take the first thread in the queue that is allowed to run at time
   [tm]; threads inspected before it keep their relative order. *)
let take_ready q tm =
  let n = Queue.length q in
  let rec go i =
    if i >= n then None
    else
      let th = Queue.pop q in
      if th.ready_at <= tm then Some th
      else begin
        Queue.push th q;
        go (i + 1)
      end
  in
  go 0

let pick t tm =
  if t.stopped then take_ready t.runq_high tm
  else
    match take_ready t.runq_high tm with
    | Some th -> Some th
    | None ->
        let boost =
          t.low_skips >= low_boost_every
          && not (Queue.is_empty t.runq_low)
        in
        if boost then begin
          match take_ready t.runq_low tm with
          | Some th ->
              t.low_skips <- 0;
              Some th
          | None -> take_ready t.runq_normal tm
        end
        else begin
          match take_ready t.runq_normal tm with
          | Some th ->
              if not (Queue.is_empty t.runq_low) then
                t.low_skips <- t.low_skips + 1;
              Some th
          | None -> take_ready t.runq_low tm
        end

let min_ready_at t =
  let best = ref max_int in
  let scan q = Queue.iter (fun th -> if th.ready_at < !best then best := th.ready_at) q in
  scan t.runq_high;
  if not t.stopped then begin
    scan t.runq_normal;
    scan t.runq_low
  end;
  !best

let min_cpu t =
  let c = ref 0 in
  for i = 1 to t.n_cpus - 1 do
    if t.clock.(i) < t.clock.(!c) then c := i
  done;
  !c

let wake_due t tm =
  let continue = ref true in
  while !continue do
    match Sleepq.peek t.sleepers with
    | Some th when th.wake_at <= tm ->
        let th = Sleepq.pop t.sleepers in
        if th.st = Sleeping then begin
          th.st <- Runnable;
          enqueue t th
        end
    | _ -> continue := false
  done

let run t ~until =
  if t.cur <> None then invalid_arg "Sched.run: reentrant call";
  t.finished <- false;
  let continue = ref true in
  while !continue do
    if t.live = 0 then continue := false
    else begin
      let c = min_cpu t in
      let tm = t.clock.(c) in
      if tm > until then continue := false
      else begin
        wake_due t tm;
        List.iter (fun f -> f tm) t.hooks;
        match pick t tm with
        | Some th ->
            t.run_base <- tm;
            t.used <- 0;
            t.cur <- Some th;
            th.st <- Running;
            let outcome = exec t th in
            t.cur <- None;
            t.busy <- t.busy + t.used;
            let fin = tm + t.used + t.dispatch in
            t.clock.(c) <- fin;
            (match outcome with
            | Finished ->
                th.st <- Dead;
                t.live <- t.live - 1
            | Preempted | Yielded ->
                th.st <- Runnable;
                th.ready_at <- fin;
                enqueue t th
            | Slept n ->
                th.st <- Sleeping;
                th.wake_at <- tm + t.used + n;
                th.ready_at <- th.wake_at;
                Sleepq.push t.sleepers th)
        | None ->
            (* This CPU is idle.  Advance it to the next time anything can
               change: the earliest queued thread's ready time, the
               earliest sleeper wake-up, bounded above by a quantum so a
               stopped world is re-polled cheaply. *)
            let next_queued = min_ready_at t in
            let next_sleep =
              match Sleepq.peek t.sleepers with
              | Some th -> th.wake_at
              | None -> max_int
            in
            let next = min next_queued next_sleep in
            let next =
              if next = max_int then
                if
                  Queue.is_empty t.runq_high
                  && Queue.is_empty t.runq_normal
                  && Queue.is_empty t.runq_low
                  && Sleepq.is_empty t.sleepers
                then (
                  (* Nothing runnable and nothing will wake: no progress
                     is possible. *)
                  continue := false;
                  tm)
                else tm + t.quantum
              else max (tm + 1) (min next (tm + t.quantum))
            in
            t.idle <- t.idle + (next - tm);
            t.clock.(c) <- next
      end
    end
  done;
  (* Note: the cooperative stop flag is NOT raised here — [run] may be
     called again to continue the same simulation (warm-up followed by a
     measured window).  Threads parked at effect points simply resume. *)
  t.finished <- true
