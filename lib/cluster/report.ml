module Json = Cgc_prof.Json
module Server = Cgc_server.Server
module Server_report = Cgc_server.Report
module Latency = Cgc_server.Latency

module Cluster_fault = Cgc_fault.Cluster_fault

let schema = "cgcsim-cluster-v3"

(* ------------------------------------------------------------------ *)
(* Derived views                                                       *)

type spread = { min : int; max : int; mean : float; cv : float }

let spread_of xs =
  let n = Array.length xs in
  if n = 0 then { min = 0; max = 0; mean = 0.0; cv = 0.0 }
  else begin
    let mn = ref xs.(0) and mx = ref xs.(0) and sum = ref 0 in
    Array.iter
      (fun x ->
        if x < !mn then mn := x;
        if x > !mx then mx := x;
        sum := !sum + x)
      xs;
    let mean = float_of_int !sum /. float_of_int n in
    let var =
      Array.fold_left
        (fun acc x ->
          let d = float_of_int x -. mean in
          acc +. (d *. d))
        0.0 xs
      /. float_of_int n
    in
    let cv = if mean = 0.0 then 0.0 else sqrt var /. mean in
    { min = !mn; max = !mx; mean; cv }
  end

type phenomena = {
  bins : int;
  co_max_stopped : int;  (** most shards stopped in one bin *)
  co_frac : float;  (** fraction of bins with >= 2 shards stopped *)
  shed_total : int;
  shed_peak_bin : int;  (** most fleet sheds in one bin *)
  shed_max_shards : int;  (** most shards shedding in one bin *)
  shed_frac : float;  (** fraction of bins with any shed *)
}

let phenomena (r : Cluster.result) =
  (* Incarnations of one shard never overlap in time, but a short dark
     window can put two of them inside one boundary bin — merge per
     shard id first so "shards stopped" counts shards, not VMs. *)
  let bins =
    Array.fold_left
      (fun acc s -> Stdlib.max acc (Array.length s.Shard.stopped_ms))
      1 r.Cluster.shards
  in
  let nids = r.Cluster.cfg.Cluster.shards in
  let stopped_by_id = Array.init nids (fun _ -> Array.make bins 0.0) in
  let sheds_by_id = Array.init nids (fun _ -> Array.make bins 0) in
  Array.iter
    (fun (s : Shard.result) ->
      let id = s.Shard.id in
      Array.iteri
        (fun b v -> stopped_by_id.(id).(b) <- stopped_by_id.(id).(b) +. v)
        s.Shard.stopped_ms;
      Array.iteri
        (fun b v -> sheds_by_id.(id).(b) <- sheds_by_id.(id).(b) + v)
        s.Shard.sheds)
    r.Cluster.shards;
  let shards =
    Array.init nids (fun id -> (stopped_by_id.(id), sheds_by_id.(id)))
  in
  let co_max = ref 0 and co_bins = ref 0 in
  let shed_total = ref 0
  and shed_peak = ref 0
  and shed_max_shards = ref 0
  and shed_bins = ref 0 in
  for b = 0 to bins - 1 do
    let stopped = ref 0 and shedding = ref 0 and bin_sheds = ref 0 in
    Array.iter
      (fun (stopped_ms, sheds) ->
        if b < Array.length stopped_ms && stopped_ms.(b) > 0.0 then
          incr stopped;
        if b < Array.length sheds && sheds.(b) > 0 then begin
          incr shedding;
          bin_sheds := !bin_sheds + sheds.(b)
        end)
      shards;
    if !stopped > !co_max then co_max := !stopped;
    if !stopped >= 2 then incr co_bins;
    shed_total := !shed_total + !bin_sheds;
    if !bin_sheds > !shed_peak then shed_peak := !bin_sheds;
    if !shedding > !shed_max_shards then shed_max_shards := !shedding;
    if !bin_sheds > 0 then incr shed_bins
  done;
  let frac n = float_of_int n /. float_of_int bins in
  {
    bins;
    co_max_stopped = !co_max;
    co_frac = frac !co_bins;
    shed_total = !shed_total;
    shed_peak_bin = !shed_peak;
    shed_max_shards = !shed_max_shards;
    shed_frac = frac !shed_bins;
  }

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

let spread_json s =
  Json.Obj
    [
      ("min", Json.Int s.min);
      ("max", Json.Int s.max);
      ("mean", Json.Float s.mean);
      ("cv", Json.Float s.cv);
    ]

let shard_json (cfg : Cluster.cfg) (s : Shard.result) =
  Json.Obj
    [
      ("id", Json.Int s.Shard.id);
      ("incarnation", Json.Int s.Shard.incarnation);
      ("seed", Json.Int s.Shard.seed);
      ("routed", Json.Int s.Shard.routed);
      ("startMs", Json.Float s.Shard.start_ms);
      ("runMs", Json.Float s.Shard.run_ms);
      ("crashed", Json.Bool s.Shard.crashed);
      ("unfinished", Json.Int s.Shard.unfinished);
      ("gcCycles", Json.Int s.Shard.gc_cycles);
      ("maxPauseMs", Json.Float s.Shard.max_pause_ms);
      ("droppedEvents", Json.Int s.Shard.dropped);
      ( "droppedByTid",
        Json.Arr
          (List.map
             (fun (tid, d) ->
               Json.Obj [ ("tid", Json.Int tid); ("dropped", Json.Int d) ])
             s.Shard.dropped_by_tid) );
      ( "server",
        Server_report.to_json cfg.Cluster.server ~ran_ms:s.Shard.run_ms
          s.Shard.totals );
    ]

let chaos_json (r : Cluster.result) =
  let c = r.Cluster.chaos in
  let plan = c.Cluster.plan in
  Json.Obj
    [
      ( "scenario",
        match Cluster_fault.scenario plan with
        | Some s -> Json.Str (Cluster_fault.to_name s)
        | None -> Json.Null );
      ("seed", Json.Int (Cluster_fault.seed plan));
      ("victim", Json.Int (Cluster_fault.victim plan));
      ("drawn", Json.Int c.Cluster.drawn);
      ("retried", Json.Int c.Cluster.retried);
      ("redirected", Json.Int c.Cluster.redirected);
      ("hedgeWins", Json.Int c.Cluster.hedge_wins);
      ("shedFleet", Json.Int c.Cluster.shed_fleet);
      ("lostUnroutable", Json.Int c.Cluster.lost_unroutable);
      ("lostCrashed", Json.Int (Cluster.lost_crashed r));
      ("unarrived", Json.Int (Cluster.unarrived r));
      ("availability", Json.Float (Cluster.availability r));
      ( "timeToRecoverMs",
        match c.Cluster.ttr_ms with
        | Some t -> Json.Float t
        | None -> Json.Float (-1.0) );
      ("epochMs", Json.Float c.Cluster.epoch_cfg_ms);
      ( "liveEpochs",
        Json.Arr
          (Array.to_list
             (Array.map (fun l -> Json.Int l) c.Cluster.live_epochs)) );
      ( "epochDigests",
        Json.Arr
          (Array.to_list
             (Array.map
                (fun d -> Json.Str (Printf.sprintf "%016Lx" d))
                c.Cluster.digests)) );
    ]

let to_json (r : Cluster.result) =
  let cfg = r.Cluster.cfg in
  let tot = Cluster.fleet_totals r in
  let lat = tot.Server.lat in
  let ph = phenomena r in
  let per_shard f = Array.map f r.Cluster.shards in
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("shards", Json.Int cfg.Cluster.shards);
      ("policy", Json.Str (Balancer.policy_name cfg.Cluster.policy));
      ("ratePerS", Json.Float cfg.Cluster.rate_per_s);
      ("sloMs", Json.Float cfg.Cluster.server.Server.slo_ms);
      ("sloTarget", Json.Float cfg.Cluster.server.Server.slo_target);
      ("ranMs", Json.Float cfg.Cluster.ms);
      ("binMs", Json.Float cfg.Cluster.bin_ms);
      ( "fleet",
        Json.Obj
          ([
            ( "counts",
              Json.Obj
                [
                  ("arrived", Json.Int tot.Server.arrived);
                  ("admitted", Json.Int tot.Server.admitted);
                  ("shedFull", Json.Int tot.Server.shed_full);
                  ("shedThrottled", Json.Int tot.Server.shed_throttled);
                  ("timedOut", Json.Int tot.Server.timed_out);
                  ("completed", Json.Int tot.Server.completed);
                  ("sloViolations", Json.Int tot.Server.slo_violations);
                  ("maxQueueDepth", Json.Int tot.Server.max_depth);
                ] );
            ( "completedPerS",
              Json.Float
                (if cfg.Cluster.ms <= 0.0 then 0.0
                 else
                   float_of_int tot.Server.completed
                   /. (cfg.Cluster.ms /. 1000.0)) );
            ("sloAttainment", Json.Float (Server.slo_attainment tot));
            ("availability", Json.Float (Cluster.availability r));
            ( "latencyMs",
              Json.Obj
                [
                  ("e2e", Server_report.hist_json (Latency.e2e lat));
                  ("queueing", Server_report.hist_json (Latency.queueing lat));
                  ("service", Server_report.hist_json (Latency.service lat));
                  ("gcInflation", Server_report.hist_json (Latency.gc lat));
                ] );
          ]
          @ Server_report.spans_json tot.Server.spans) );
      ( "balance",
        Json.Obj
          [
            ( "routed",
              spread_json (spread_of (per_shard (fun s -> s.Shard.routed))) );
            ( "completed",
              spread_json
                (spread_of
                   (per_shard (fun s -> s.Shard.totals.Server.completed))) );
          ] );
      ( "phenomena",
        Json.Obj
          [
            ("bins", Json.Int ph.bins);
            ( "coStopped",
              Json.Obj
                [
                  ("maxShardsStopped", Json.Int ph.co_max_stopped);
                  ("binsAtLeast2Frac", Json.Float ph.co_frac);
                ] );
            ( "shedStorm",
              Json.Obj
                [
                  ("totalSheds", Json.Int ph.shed_total);
                  ("peakBinSheds", Json.Int ph.shed_peak_bin);
                  ("maxShardsShedding", Json.Int ph.shed_max_shards);
                  ("binsWithShedsFrac", Json.Float ph.shed_frac);
                ] );
          ] );
      ("chaos", chaos_json r);
      ("perShard", Json.Arr (Array.to_list (per_shard (shard_json cfg))));
    ]

(* ------------------------------------------------------------------ *)
(* Text                                                                *)

let text (r : Cluster.result) =
  let cfg = r.Cluster.cfg in
  let tot = Cluster.fleet_totals r in
  let ph = phenomena r in
  let b = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "cluster: %d shards, %s routing, %.0f req/s fleet, %.1f ms run\n"
    cfg.Cluster.shards
    (Balancer.policy_name cfg.Cluster.policy)
    cfg.Cluster.rate_per_s cfg.Cluster.ms;
  pf "  %-7s %9s %9s %9s %9s %6s %9s\n" "shard" "routed" "completed" "shed"
    "timedout" "gc" "maxP(ms)";
  Array.iter
    (fun (s : Shard.result) ->
      let t = s.Shard.totals in
      let label =
        if s.Shard.incarnation = 0 then Printf.sprintf "%d" s.Shard.id
        else Printf.sprintf "%d.r%d" s.Shard.id s.Shard.incarnation
      in
      pf "  %-7s %9d %9d %9d %9d %6d %9.3f%s\n" label s.Shard.routed
        t.Server.completed
        (t.Server.shed_full + t.Server.shed_throttled)
        t.Server.timed_out s.Shard.gc_cycles s.Shard.max_pause_ms
        (if s.Shard.crashed then "  [crashed]" else ""))
    r.Cluster.shards;
  let routed = spread_of (Array.map (fun s -> s.Shard.routed) r.Cluster.shards)
  and completed =
    spread_of
      (Array.map (fun s -> s.Shard.totals.Server.completed) r.Cluster.shards)
  in
  pf "  balance: routed %d..%d (cv %.4f), completed %d..%d (cv %.4f)\n"
    routed.min routed.max routed.cv completed.min completed.max completed.cv;
  pf
    "  fleet: arrived %d  completed %d (%.0f/s)  shed %d+%d  timed-out %d  \
     max-depth %d\n"
    tot.Server.arrived tot.Server.completed
    (if cfg.Cluster.ms <= 0.0 then 0.0
     else float_of_int tot.Server.completed /. (cfg.Cluster.ms /. 1000.0))
    tot.Server.shed_full tot.Server.shed_throttled tot.Server.timed_out
    tot.Server.max_depth;
  if cfg.Cluster.server.Server.slo_ms > 0.0 then
    pf "  fleet SLO %.1f ms: attainment %.4f (target %.4f), %d violations\n"
      cfg.Cluster.server.Server.slo_ms
      (Server.slo_attainment tot)
      cfg.Cluster.server.Server.slo_target tot.Server.slo_violations;
  pf
    "  phenomena (%d bins of %.0f ms): co-stopped max %d shards \
     (>=2 in %.1f%% of bins); sheds %d total, peak bin %d, max %d shards \
     shedding (%.1f%% of bins)\n"
    ph.bins cfg.Cluster.bin_ms ph.co_max_stopped
    (100.0 *. ph.co_frac)
    ph.shed_total ph.shed_peak_bin ph.shed_max_shards
    (100.0 *. ph.shed_frac);
  let lat = tot.Server.lat in
  let module Histogram = Cgc_util.Histogram in
  pf "  %-12s %8s %8s %8s %8s %8s %8s\n" "latency (ms)" "mean" "p50" "p95"
    "p99" "p99.9" "max";
  let row name h =
    let v p = Histogram.percentile h p in
    pf "  %-12s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n" name (Histogram.mean h)
      (v 50.0) (v 95.0) (v 99.0) (v 99.9)
      (if Histogram.count h = 0 then 0.0 else Histogram.max h)
  in
  row "end-to-end" (Latency.e2e lat);
  row "queueing" (Latency.queueing lat);
  row "service" (Latency.service lat);
  row "gc-inflation" (Latency.gc lat);
  Server_report.blame_text b tot.Server.spans;
  (* Ring-drop warnings: a per-incarnation trace that lost events can
     under-report, so name every lossy (shard, incarnation, tid). *)
  Array.iter
    (fun (s : Shard.result) ->
      List.iter
        (fun (tid, d) ->
          pf
            "  WARNING: shard %d.r%d dropped %d events on tid %d (ring \
             overflow — raise --trace-ring)\n"
            s.Shard.id s.Shard.incarnation d tid)
        s.Shard.dropped_by_tid)
    r.Cluster.shards;
  let c = r.Cluster.chaos in
  (match Cluster_fault.scenario c.Cluster.plan with
  | None -> ()
  | Some sc ->
      pf
        "  chaos: %s (seed %d, victim shard %d) — availability %.4f, \
         retried %d, redirected %d, hedge-wins %d, fleet-shed %d, \
         unroutable %d, lost-in-crash %d\n"
        (Cluster_fault.to_name sc)
        (Cluster_fault.seed c.Cluster.plan)
        (Cluster_fault.victim c.Cluster.plan)
        (Cluster.availability r) c.Cluster.retried c.Cluster.redirected
        c.Cluster.hedge_wins c.Cluster.shed_fleet c.Cluster.lost_unroutable
        (Cluster.lost_crashed r);
      let distinct =
        let d = ref 1 in
        Array.iteri
          (fun i x -> if i > 0 && x <> c.Cluster.digests.(i - 1) then incr d)
          c.Cluster.digests;
        !d
      in
      pf
        "  epochs: %d of %.0f ms, %d routing-table changes, \
         time-to-recover %s\n"
        (Array.length c.Cluster.digests)
        c.Cluster.epoch_cfg_ms (distinct - 1)
        (match c.Cluster.ttr_ms with
        | Some t -> Printf.sprintf "%.0f ms" t
        | None -> "never"));
  Buffer.contents b

let validate s =
  match Json.parse s with
  | Error e -> Error e
  | Ok j -> (
      match Json.member "schema" j with
      | Some (Json.Str v) when v = schema -> (
          (* Conservation identity: the fleet blame block, every tail
             and exemplar span, and each embedded per-shard report must
             have blame components summing to their e2eCycles. *)
          let fleet_check =
            match Json.member "fleet" j with
            | Some f -> Server_report.check_conservation f
            | None -> Error "missing fleet block"
          in
          let shard_check () =
            match Json.member "perShard" j with
            | Some (Json.Arr shards) ->
                let rec go i = function
                  | [] -> Ok ()
                  | s :: rest -> (
                      match Json.member "server" s with
                      | Some srv -> (
                          match Server_report.check_conservation srv with
                          | Error e ->
                              Error (Printf.sprintf "perShard[%d]: %s" i e)
                          | Ok () -> go (i + 1) rest)
                      | None -> go (i + 1) rest)
                in
                go 0 shards
            | _ -> Ok ()
          in
          match fleet_check with
          | Error e -> Error e
          | Ok () -> (
              match shard_check () with Error e -> Error e | Ok () -> Ok j))
      | Some (Json.Str v) ->
          Error (Printf.sprintf "schema mismatch: expected %s, got %s" schema v)
      | _ -> Error "missing schema tag")
