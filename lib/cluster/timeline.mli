(** Merged fleet timeline as Chrome-trace counter tracks.

    One artefact aligns the router and every shard on the fleet clock:
    per-epoch balancer-visible liveness ([fleet/live-shards]), per-bin
    front-end placement accounting and availability ([fleet/placed],
    [fleet/shed], [fleet/lost], [fleet/availability]), and per-shard
    stop-the-world time, high-water queue depth and shed counts
    ([shardK/stopped-ms], [shardK/queue-depth], [shardK/sheds]) — all
    as ["ph":"C"] counter events a trace viewer renders as stacked
    tracks next to the shards' own phase traces.

    Derived serially from an already-merged {!Cluster.result}, so the
    bytes are identical at any [--jobs] count. *)

val schema : string
(** ["cgcsim-timeline-v1"] — the [cgcSchema] header tag. *)

val chrome_json : Cluster.result -> string
(** Serialise the counter tracks; written by
    [cgcsim cluster --timeline-out FILE]. *)
