(** Fleet-wide SLO report: text summary and [cgcsim-cluster-v3] JSON.

    Merges the per-shard server reports into one artefact with four
    fleet-level views a single-server report cannot express:

    {ul
    {- {e fleet} — summed counters, merged latency histograms, the
       fleet SLO attainment (sheds and timeouts count as violations,
       exactly as in {!Cgc_server.Server.slo_attainment}) and the
       availability (completed fraction of all drawn arrivals);}
    {- {e balance} — min/max/CV of routed and completed requests per
       shard, the direct measure of what the routing policy did;}
    {- {e phenomena} — derived from the shards' [bin_ms] timeline bins:
       {e co-stopped} windows where several shards' worlds were stopped
       at once (unsynchronised collectors drifting into alignment), and
       {e shed storms} where overload control fires across the fleet in
       the same bin (incarnations of one shard are merged per shard id
       first, so the counts are of shards, not VMs);}
    {- {e chaos} — the v2 block: scenario/seed/victim, the degradation
       ladder counters (retried / redirected / hedge-wins / fleet-shed /
       unroutable / lost-in-crash / unarrived), availability,
       balancer-visible time-to-recover, and the per-epoch live counts
       and routing-table digests proving when routing changed.}}

    v3 adds the causal-span blocks to the fleet view — the exact
    [blame] decomposition summed over every completed request, the
    fleet-merged worst-span [tails] and per-decade [exemplars] — plus
    per-incarnation [droppedByTid] ring-loss warnings.

    Follows the repo's schema conventions: a [schema] tag,
    deterministic key order, [%.6f] floats — equal-seed runs serialise
    byte-identically.  The per-shard array embeds each incarnation's
    [cgcsim-server-v2] report unchanged, so existing tooling can peel
    one shard out of a fleet artefact. *)

val schema : string
(** ["cgcsim-cluster-v3"]. *)

type phenomena = {
  bins : int;  (** timeline bins covering the run *)
  co_max_stopped : int;  (** most shards stopped in one bin *)
  co_frac : float;  (** fraction of bins with >= 2 shards stopped *)
  shed_total : int;
  shed_peak_bin : int;  (** most fleet sheds in one bin *)
  shed_max_shards : int;  (** most shards shedding in one bin *)
  shed_frac : float;  (** fraction of bins with any shed *)
}

val phenomena : Cluster.result -> phenomena
(** Fold the shards' timeline bins into the fleet-phenomena counters —
    exposed for the [clusterlat] experiment and tests; {!to_json} and
    {!text} render the same values. *)

val text : Cluster.result -> string
(** Human-readable summary: fleet rates and SLO, a per-shard table
    (routed / completed / shed / GC cycles / max pause), balance
    figures and the phenomena counters. *)

val to_json : Cluster.result -> Cgc_prof.Json.t

val validate : string -> (Cgc_prof.Json.t, string) result
(** Parse a serialised report, check its [schema] tag, and re-check the
    blame conservation identity ({!Cgc_server.Report.check_conservation})
    on the fleet block and every embedded per-shard report — the cluster
    artefact's round-trip guard (exit code 4 territory in the CLI). *)
