(** The sharded multi-VM cluster: N shard simulations behind a
    front-end load balancer, executed on the persistent domain pool.

    A run has three phases:

    {ol
    {- {e front end} (serial, deterministic): draw the fleet arrival
       stream once from a dedicated PRNG root, route every arrival to a
       shard with {!Balancer.route};}
    {- {e shards} (parallel): each shard replays its routed slice as a
       complete, self-contained VM + server simulation
       ({!Shard.run}), distributed over the {!Dpool};}
    {- {e merge} (serial): per-shard totals fold into fleet totals and
       the {!Report} derives fleet phenomena from the shards' timeline
       bins.}}

    Because phase 1 is serial and phase 2's simulations share no state,
    every per-shard trace and report — and therefore the fleet report —
    is byte-identical at any pool size. *)

type cfg = {
  shards : int;
  policy : Balancer.policy;
  rate_per_s : float;  (** {e fleet} offered load, requests per second *)
  server : Cgc_server.Server.cfg;
      (** per-shard server parameters; its [rate_per_s] is the nominal
          per-shard share [rate_per_s /. shards] *)
  service_est_ms : float;
      (** the balancer's estimate of mean service time, parameterising
          the least-queue fluid model *)
  bin_ms : float;  (** fleet-phenomena timeline bin width *)
  gc : Cgc_core.Config.t;
  heap_mb : float;  (** per-shard heap *)
  ncpus : int;  (** per-shard simulated CPUs *)
  seed : int;  (** fleet seed; shard seeds are derived from it *)
  ms : float;
  trace : bool;  (** arm every shard's event sink *)
  trace_ring : int;
}

val cfg :
  ?shards:int ->
  ?policy:Balancer.policy ->
  ?arrival:Cgc_server.Arrival.kind ->
  ?queue_cap:int ->
  ?workers:int ->
  ?timeout_ms:float ->
  ?slo_ms:float ->
  ?slo_target:float ->
  ?throttle_hi:int ->
  ?throttle_lo:int ->
  ?service_est_ms:float ->
  ?bin_ms:float ->
  ?gc:Cgc_core.Config.t ->
  ?heap_mb:float ->
  ?ncpus:int ->
  ?seed:int ->
  ?ms:float ->
  ?trace:bool ->
  ?trace_ring:int ->
  rate_per_s:float ->
  unit ->
  cfg
(** Defaults: 4 shards, round-robin, Poisson arrivals, per-shard queue
    of 256 and 4 workers, no timeout/SLO/throttle, 0.12 ms service
    estimate, 10 ms bins, CGC with paper parameters, 24 MB heap and
    4 CPUs per shard, seed 1, 2000 ms, tracing off.  The server
    overload-control options mirror [cgcsim serve]; [rate_per_s] is the
    whole fleet's offered load.  Raises [Invalid_argument] on
    non-positive shard count, bin width or service estimate, and
    whatever {!Cgc_server.Server.cfg} rejects. *)

val shard_seed : cfg -> int -> int
(** The derived VM seed for shard [k] — exposed so a single shard can
    be re-run standalone (e.g. to re-trace one shard of a campaign). *)

type result = {
  cfg : cfg;
  shards : Shard.result array;  (** indexed by shard id *)
}

val run : ?pool:Dpool.t -> cfg -> result
(** Execute the three phases.  [pool] defaults to {!Dpool.global} (so
    [--jobs] controls shard parallelism); a shard that raises is
    re-raised here after the remaining shards finish. *)

val fleet_totals : result -> Cgc_server.Server.totals
(** Sum of every shard's counters, maximum of queue high-water marks,
    histogram-merge of latency accounting — the same shape a single
    server reports, so SLO accounting composes. *)

val slo_attainment : result -> float
(** {!Cgc_server.Server.slo_attainment} of {!fleet_totals}. *)

val slo_breached : result -> bool
(** An SLO was configured and {e fleet} attainment is below target —
    the [cgcsim cluster] exit-6 condition. *)
