(** The sharded multi-VM cluster: N shard simulations behind a
    front-end load balancer, executed on the persistent domain pool.

    A run has three phases:

    {ol
    {- {e front end} (serial, deterministic): draw the fleet arrival
       stream once from a dedicated PRNG root, then route every arrival
       through the {e epoch router} — the balancer re-reads each shard's
       liveness only at epoch boundaries ({!cfg.epoch_ms}, default one
       timeline bin), and between boundaries walks the per-request
       degradation ladder: {e reroute} around balancer-visibly dark
       shards, {e retry} with doubling backoff (plus optional hedging)
       when a target turns out dark mid-epoch, {e fleet-wide admission
       throttle} once the visible live fraction falls to
       [fleet_throttle_frac], and finally a typed {!Fleet_unavailable}
       (CLI exit 7) after [give_up] unroutable requests;}
    {- {e shards} (parallel): each shard {e incarnation} replays its
       routed slice as a complete, self-contained VM + server simulation
       ({!Shard.run}), distributed over the {!Dpool} — a restarted shard
       is simply another independent job with a fresh heap;}
    {- {e merge} (serial): per-incarnation totals fold into fleet totals
       and the {!Report} derives fleet phenomena, availability and
       time-to-recover.}}

    Because phase 1 is serial and a pure function of [(cfg, plan)], and
    phase 2's simulations share no state, every per-shard trace and
    report — and therefore the fleet report — is byte-identical at any
    pool size, under every chaos scenario. *)

type cfg = {
  shards : int;
  policy : Balancer.policy;
  rate_per_s : float;  (** {e fleet} offered load, requests per second *)
  server : Cgc_server.Server.cfg;
      (** per-shard server parameters; its [rate_per_s] is the nominal
          per-shard share [rate_per_s /. shards] *)
  service_est_ms : float;
      (** the balancer's estimate of mean service time, parameterising
          the least-queue fluid model *)
  bin_ms : float;  (** fleet-phenomena timeline bin width *)
  gc : Cgc_core.Config.t;
  heap_mb : float;  (** per-shard heap *)
  ncpus : int;  (** per-shard simulated CPUs *)
  seed : int;  (** fleet seed; shard seeds are derived from it *)
  ms : float;
  trace : bool;  (** arm every shard's event sink *)
  trace_ring : int;
  chaos : Cgc_fault.Cluster_fault.scenario option;
  chaos_seed : int;  (** seeds the chaos plan (victim, window jitter) *)
  epoch_ms : float;  (** balancer liveness re-read interval *)
  retries : int;  (** per-request retry budget *)
  retry_base_ms : float;  (** first backoff; doubles per attempt *)
  hedge_margin : float;
      (** hedge to a shard whose modelled depth undercuts the primary's
          by at least this many requests; 0 disables *)
  fleet_throttle_frac : float;
      (** arm the fleet admission throttle at or below this visible live
          fraction *)
  give_up : int;  (** unroutable requests before {!Fleet_unavailable} *)
}

val cfg :
  ?shards:int ->
  ?policy:Balancer.policy ->
  ?arrival:Cgc_server.Arrival.kind ->
  ?queue_cap:int ->
  ?workers:int ->
  ?timeout_ms:float ->
  ?slo_ms:float ->
  ?slo_target:float ->
  ?throttle_hi:int ->
  ?throttle_lo:int ->
  ?service_est_ms:float ->
  ?bin_ms:float ->
  ?gc:Cgc_core.Config.t ->
  ?heap_mb:float ->
  ?ncpus:int ->
  ?seed:int ->
  ?ms:float ->
  ?trace:bool ->
  ?trace_ring:int ->
  ?chaos:Cgc_fault.Cluster_fault.scenario ->
  ?chaos_seed:int ->
  ?epoch_ms:float ->
  ?retries:int ->
  ?retry_base_ms:float ->
  ?hedge_margin:float ->
  ?fleet_throttle_frac:float ->
  ?give_up:int ->
  rate_per_s:float ->
  unit ->
  cfg
(** Defaults: 4 shards, round-robin, Poisson arrivals, per-shard queue
    of 256 and 4 workers, no timeout/SLO/throttle, 0.12 ms service
    estimate, 10 ms bins, CGC with paper parameters, 24 MB heap and
    4 CPUs per shard, seed 1, 2000 ms, tracing off; chaos off,
    chaos seed 1, [epoch_ms = bin_ms], 3 retries from a 0.25 ms base,
    hedging off, fleet throttle at a half-dark fleet, give-up after 100
    unroutable requests.  The server overload-control options mirror
    [cgcsim serve]; [rate_per_s] is the whole fleet's offered load.
    Raises [Invalid_argument] on non-positive shard count, bin width or
    service estimate, out-of-range chaos knobs, and whatever
    {!Cgc_server.Server.cfg} rejects. *)

val shard_seed : cfg -> int -> int
(** The derived VM seed for shard [k] — exposed so a single shard can
    be re-run standalone (e.g. to re-trace one shard of a campaign). *)

val incarnation_seed : cfg -> int -> int -> int
(** [incarnation_seed cfg k inc]: a cold rejoin is a new process, so
    incarnation [inc > 0] of shard [k] shifts {!shard_seed} again. *)

type chaos_info = {
  plan : Cgc_fault.Cluster_fault.plan;
  drawn : int;  (** fleet arrivals drawn up to the horizon *)
  retried : int;  (** retry attempts issued (with backoff) *)
  redirected : int;  (** requests that landed off their first target *)
  hedge_wins : int;  (** requests served by the hedged copy *)
  shed_fleet : int;  (** shed by the fleet-wide admission throttle *)
  lost_unroutable : int;  (** no routable shard within the retry budget *)
  epoch_cfg_ms : float;
  digests : int64 array;  (** per-epoch routing-table digest *)
  live_epochs : int array;  (** per-epoch balancer-visible live count *)
  ttr_ms : float option;
      (** balancer-visible time-to-recover: plan onset to the first
          epoch boundary after the last degraded epoch; plan-derived for
          brownouts (which the balancer never sees); [None] when the
          fleet never recovers or chaos is off *)
}

type fleet_bins = { placed : int array; shed : int array; lost : int array }
(** Fleet-level per-bin arrival accounting for the merged timeline:
    requests the front end placed on some shard (at their possibly
    backed-off placement stamp), shed at the fleet door, or lost as
    unroutable, each bucketed by [cfg.bin_ms] over the fleet horizon. *)

type result = {
  cfg : cfg;
  shards : Shard.result array;
      (** one entry per shard {e incarnation}, ordered by
          [(shard id, incarnation)] — exactly one per shard when chaos
          is off *)
  chaos : chaos_info;
  bins : fleet_bins;
}

type unavailable = {
  at_ms : float;
  scenario : string;
  live : int;  (** balancer-visible live shards at the give-up point *)
  of_shards : int;
  placed : int;  (** requests successfully placed before giving up *)
  lost : int;
  retries_spent : int;
}
(** The diagnostic record carried by {!Fleet_unavailable}. *)

exception Fleet_unavailable of unavailable
(** The last rung of the fleet degradation ladder; [cgcsim cluster]
    maps it to exit code 7. *)

val unavailable_to_string : unavailable -> string

val run : ?pool:Dpool.t -> cfg -> result
(** Execute the three phases.  [pool] defaults to {!Dpool.global} (so
    [--jobs] controls shard parallelism); a shard that raises is
    re-raised here after the remaining shards finish.  Raises
    {!Fleet_unavailable} from the serial front end when the ladder
    bottoms out. *)

val fleet_totals : result -> Cgc_server.Server.totals
(** Sum of every incarnation's counters, maximum of queue high-water
    marks, histogram-merge of latency accounting — the same shape a
    single server reports, so SLO accounting composes. *)

val lost_crashed : result -> int
(** Requests admitted by an incarnation that then crashed — the queue
    that went down with the shard. *)

val unarrived : result -> int
(** Routed requests an incarnation never consumed (scripted past its
    end) — in transit at the horizon or at a crash.  With
    {!lost_crashed}, {!chaos_info} counters and {!fleet_totals} this
    closes the conservation identity: every drawn arrival is placed,
    fleet-shed or lost, and every placed one is served, shed, timed
    out, unfinished or unarrived. *)

val availability : result -> float
(** Completed fraction of all drawn fleet arrivals. *)

val slo_attainment : result -> float
(** {!Cgc_server.Server.slo_attainment} of {!fleet_totals}. *)

val slo_breached : result -> bool
(** An SLO was configured and {e fleet} attainment is below target —
    the [cgcsim cluster] exit-6 condition. *)
