(** A persistent pool of OCaml 5 domains with work-stealing deques.

    [Common.par_map] used to spawn and join fresh domains on every
    call; a 16-shard cluster campaign (or a bench matrix fanning out
    dozens of cells) wants the domains spawned {e once} and fed batches
    of jobs.  A pool keeps [domains - 1] worker domains parked on a
    condition variable between batches; {!run} distributes a batch's
    job indices round-robin over per-worker {!Deque}s, wakes everyone,
    and participates from the calling domain.  A worker that drains its
    own deque steals from its peers' heads (the ebsl
    [spmc_queue]/[scheduler] idiom), so a batch of uneven jobs — say,
    shards whose GC cycles diverge — finishes at the speed of the
    slowest {e job}, not the slowest {e worker share}.

    Host-side parallelism only: jobs must not share mutable simulation
    state (every simulation in this repo is a self-contained value), and
    the pool guarantees nothing about execution order — determinism
    comes from jobs being independent and results being indexed.

    A job that calls back into {!run} or {!map} on any pool (nested
    parallelism) executes the inner batch inline on the calling domain
    — the pool never deadlocks on re-entry, it just declines to
    parallelise the inner level. *)

type t

val create : domains:int -> t
(** A pool that runs batches on [max 1 domains] domains: the caller of
    {!run} plus [domains - 1] spawned workers (so [domains = 1] spawns
    nothing and {!run} degenerates to a serial loop). *)

val size : t -> int
(** The domain count {!create} was given (clamped to at least 1). *)

val shutdown : t -> unit
(** Park, wake and join the worker domains.  Idempotent.  Calling
    {!run} after [shutdown] raises [Invalid_argument]. *)

val run : t -> n:int -> (int -> unit) -> unit
(** [run t ~n f] executes [f 0 .. f (n-1)], each exactly once, across
    the pool's domains, returning when all have finished.  If one or
    more jobs raise, the remaining jobs still run and the first
    exception (in completion order) is re-raised in the caller. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f items] is {!run} writing [f items.(i)] into slot [i] of
    the result — item order is preserved regardless of which domain
    ran what. *)

(** {2 The global pool}

    One process-wide pool shared by [Common.par_map], the benchmark
    matrix and the cluster layer, resized by [--jobs]. *)

val set_size : int -> unit
(** Resize the global pool (joining the old workers if the size
    changes).  Clamped to at least 1; the initial size is 1. *)

val global_size : unit -> int

val global : unit -> t
(** The global pool at its current size. *)
