module Prng = Cgc_util.Prng

type policy = Round_robin | Least_queue | Consistent_hash

let policy_name = function
  | Round_robin -> "round-robin"
  | Least_queue -> "least-queue"
  | Consistent_hash -> "consistent-hash"

let policy_of_name = function
  | "round-robin" | "rr" -> Some Round_robin
  | "least-queue" | "lqd" | "least-queue-depth" -> Some Least_queue
  | "consistent-hash" | "hash" -> Some Consistent_hash
  | _ -> None

let all_policies = [ Round_robin; Least_queue; Consistent_hash ]

(* SplitMix64 finalizer — the ring and the session keys need a mixer,
   not a stream, so shard placement is a pure function of shard id. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let vnodes = 64

let route policy ~nshards ~workers ~service_est_ms ~cycles_per_ms ~rng ts =
  if nshards < 1 then invalid_arg "Balancer.route: nshards < 1";
  let n = Array.length ts in
  match policy with
  | Round_robin -> Array.init n (fun i -> i mod nshards)
  | Least_queue ->
      (* Fluid backlog model: shard [s] drains [drain] requests per
         cycle; each arrival joins the shallowest modelled queue. *)
      let drain =
        float_of_int workers
        /. (service_est_ms *. float_of_int cycles_per_ms)
      in
      let depth = Array.make nshards 0.0 in
      let last = Array.make nshards 0 in
      let rr = ref 0 in
      let assign = Array.make n 0 in
      (* Explicit loop: the model is stateful, so arrivals must be
         routed strictly in timestamp order. *)
      for i = 0 to n - 1 do
        let t = ts.(i) in
        let dmin = ref infinity in
        for s = 0 to nshards - 1 do
          depth.(s) <-
            Float.max 0.0
              (depth.(s) -. (float_of_int (t - last.(s)) *. drain));
          last.(s) <- t;
          if depth.(s) < !dmin then dmin := depth.(s)
        done;
        (* Ties break round-robin, not lowest-id: at low load every
           modelled queue drains to zero between arrivals, and a fixed
           tie-break would herd the whole fleet onto shard 0. *)
        let best = ref !rr in
        let found = ref false in
        for k = 0 to nshards - 1 do
          let s = (!rr + k) mod nshards in
          if (not !found) && depth.(s) <= !dmin +. 1e-9 then begin
            best := s;
            found := true
          end
        done;
        rr := (!best + 1) mod nshards;
        depth.(!best) <- depth.(!best) +. 1.0;
        assign.(i) <- !best
      done;
      assign
  | Consistent_hash ->
      (* [vnodes] ring points per shard; requests carry a session key
         drawn from the balancer's stream. *)
      let ring =
        Array.init (nshards * vnodes) (fun i ->
            let shard = i / vnodes and replica = i mod vnodes in
            ( mix64 (Int64.of_int ((shard * 0x10001) + (replica * 0x9e37) + 1)),
              shard ))
      in
      Array.sort compare ring;
      let npoints = Array.length ring in
      let lookup h =
        (* first ring point with hash >= h, wrapping past the top *)
        let lo = ref 0 and hi = ref npoints in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if fst ring.(mid) < h then lo := mid + 1 else hi := mid
        done;
        snd ring.(if !lo = npoints then 0 else !lo)
      in
      let assign = Array.make n 0 in
      (* Explicit loop: session keys must be drawn in arrival order. *)
      for i = 0 to n - 1 do
        assign.(i) <- lookup (mix64 (Prng.next rng))
      done;
      assign
