module Prng = Cgc_util.Prng

type policy = Round_robin | Least_queue | Consistent_hash

let policy_name = function
  | Round_robin -> "round-robin"
  | Least_queue -> "least-queue"
  | Consistent_hash -> "consistent-hash"

let policy_of_name = function
  | "round-robin" | "rr" -> Some Round_robin
  | "least-queue" | "lqd" | "least-queue-depth" -> Some Least_queue
  | "consistent-hash" | "hash" -> Some Consistent_hash
  | _ -> None

let all_policies = [ Round_robin; Least_queue; Consistent_hash ]

(* SplitMix64 finalizer — the ring and the session keys need a mixer,
   not a stream, so shard placement is a pure function of shard id. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let vnodes = 64

let policy_index = function
  | Round_robin -> 0
  | Least_queue -> 1
  | Consistent_hash -> 2

(* A shard's vnode positions are a pure function of its id, so the ring
   over any live set is the full ring minus the dark shards' points —
   removing a shard remaps exactly the keys it owned (monotonicity), and
   re-adding it restores the prior assignment bit-for-bit. *)
let ring_points ~nshards ~live =
  let pts = ref [] in
  for shard = nshards - 1 downto 0 do
    if live.(shard) then
      for replica = vnodes - 1 downto 0 do
        pts :=
          ( mix64 (Int64.of_int ((shard * 0x10001) + (replica * 0x9e37) + 1)),
            shard )
          :: !pts
      done
  done;
  let ring = Array.of_list !pts in
  Array.sort compare ring;
  ring

(* Index of the first ring point with hash >= h, wrapping past the top. *)
let ring_index ring h =
  let npoints = Array.length ring in
  let lo = ref 0 and hi = ref npoints in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst ring.(mid) < h then lo := mid + 1 else hi := mid
  done;
  if !lo = npoints then 0 else !lo

let ring_lookup ring h = snd ring.(ring_index ring h)

let route policy ~nshards ~workers ~service_est_ms ~cycles_per_ms ~rng ts =
  if nshards < 1 then invalid_arg "Balancer.route: nshards < 1";
  let n = Array.length ts in
  match policy with
  | Round_robin -> Array.init n (fun i -> i mod nshards)
  | Least_queue ->
      (* Fluid backlog model: shard [s] drains [drain] requests per
         cycle; each arrival joins the shallowest modelled queue. *)
      let drain =
        float_of_int workers
        /. (service_est_ms *. float_of_int cycles_per_ms)
      in
      let depth = Array.make nshards 0.0 in
      let last = Array.make nshards 0 in
      let rr = ref 0 in
      let assign = Array.make n 0 in
      (* Explicit loop: the model is stateful, so arrivals must be
         routed strictly in timestamp order. *)
      for i = 0 to n - 1 do
        let t = ts.(i) in
        let dmin = ref infinity in
        for s = 0 to nshards - 1 do
          depth.(s) <-
            Float.max 0.0
              (depth.(s) -. (float_of_int (t - last.(s)) *. drain));
          last.(s) <- t;
          if depth.(s) < !dmin then dmin := depth.(s)
        done;
        (* Ties break round-robin, not lowest-id: at low load every
           modelled queue drains to zero between arrivals, and a fixed
           tie-break would herd the whole fleet onto shard 0. *)
        let best = ref !rr in
        let found = ref false in
        for k = 0 to nshards - 1 do
          let s = (!rr + k) mod nshards in
          if (not !found) && depth.(s) <= !dmin +. 1e-9 then begin
            best := s;
            found := true
          end
        done;
        rr := (!best + 1) mod nshards;
        depth.(!best) <- depth.(!best) +. 1.0;
        assign.(i) <- !best
      done;
      assign
  | Consistent_hash ->
      (* [vnodes] ring points per shard; requests carry a session key
         drawn from the balancer's stream. *)
      let ring = ring_points ~nshards ~live:(Array.make nshards true) in
      let assign = Array.make n 0 in
      (* Explicit loop: session keys must be drawn in arrival order. *)
      for i = 0 to n - 1 do
        assign.(i) <- ring_lookup ring (mix64 (Prng.next rng))
      done;
      assign

(* {2 Epoch router}

   The stateful flavour of [route] used by the chaos-aware cluster: the
   front end feeds it the balancer-visible live set at each epoch
   boundary and then asks it to place arrivals one at a time, so a
   request can be re-placed (retry) or double-placed (hedge) without
   disturbing the scripted per-shard replay.  The fluid backlog model is
   maintained for {e every} policy — it is the hedging signal even when
   the placement policy ignores it. *)

type router = {
  policy : policy;
  nshards : int;
  drain : float;
  depth : float array;
  last : int array;
  mutable rr : int;
  live : bool array;
  mutable nlive : int;
  mutable ring : (int64 * int) array;
}

let router policy ~nshards ~workers ~service_est_ms ~cycles_per_ms =
  if nshards < 1 then invalid_arg "Balancer.router: nshards < 1";
  let live = Array.make nshards true in
  {
    policy;
    nshards;
    drain =
      float_of_int workers /. (service_est_ms *. float_of_int cycles_per_ms);
    depth = Array.make nshards 0.0;
    last = Array.make nshards 0;
    rr = 0;
    live;
    nlive = nshards;
    ring =
      (if policy = Consistent_hash then ring_points ~nshards ~live else [||]);
  }

let set_live r live =
  if Array.length live <> r.nshards then
    invalid_arg "Balancer.set_live: wrong length";
  Array.blit live 0 r.live 0 r.nshards;
  r.nlive <- Array.fold_left (fun n b -> if b then n + 1 else n) 0 r.live;
  if r.policy = Consistent_hash then
    r.ring <- ring_points ~nshards:r.nshards ~live:r.live

let nlive r = r.nlive
let is_live r s = r.live.(s)

let drain_to r t =
  for s = 0 to r.nshards - 1 do
    r.depth.(s) <-
      Float.max 0.0 (r.depth.(s) -. (float_of_int (t - r.last.(s)) *. r.drain));
    r.last.(s) <- t
  done

(* Min-depth candidate among [ok] shards, ties breaking from the
   round-robin cursor (shared rationale with [route]). *)
let min_depth_from r ok =
  let dmin = ref infinity in
  for s = 0 to r.nshards - 1 do
    if ok s && r.depth.(s) < !dmin then dmin := r.depth.(s)
  done;
  let best = ref (-1) in
  for k = 0 to r.nshards - 1 do
    let s = (r.rr + k) mod r.nshards in
    if !best < 0 && ok s && r.depth.(s) <= !dmin +. 1e-9 then best := s
  done;
  !best

let pick r ~now ~key ~avoid =
  drain_to r now;
  let ok s = r.live.(s) && not avoid.(s) in
  let chosen =
    match r.policy with
    | Round_robin ->
        let best = ref (-1) in
        for k = 0 to r.nshards - 1 do
          let s = (r.rr + k) mod r.nshards in
          if !best < 0 && ok s then best := s
        done;
        !best
    | Least_queue -> min_depth_from r ok
    | Consistent_hash ->
        if Array.length r.ring = 0 then -1
        else begin
          (* Walk clockwise from the key's point to the first shard not
             yet tried — vnode removal without rebuilding the ring. *)
          let npoints = Array.length r.ring in
          let i0 = ring_index r.ring key in
          let best = ref (-1) in
          let k = ref 0 in
          while !best < 0 && !k < npoints do
            let s = snd r.ring.((i0 + !k) mod npoints) in
            if ok s then best := s;
            incr k
          done;
          !best
        end
  in
  if chosen < 0 then None
  else begin
    (match r.policy with
    | Round_robin | Least_queue -> r.rr <- (chosen + 1) mod r.nshards
    | Consistent_hash -> ());
    Some chosen
  end

let note_routed r s = r.depth.(s) <- r.depth.(s) +. 1.0

let hedge_better r ~primary ~margin =
  if margin <= 0.0 then None
  else begin
    let ok s = r.live.(s) && s <> primary in
    let best = min_depth_from r ok in
    if best >= 0 && r.depth.(best) +. margin <= r.depth.(primary) then
      Some best
    else None
  end

let digest r =
  let h = ref (mix64 (Int64.of_int ((policy_index r.policy * 31) + r.nshards)))
  in
  let fold x = h := mix64 (Int64.logxor !h x) in
  Array.iteri
    (fun s b -> fold (Int64.of_int ((s * 2) + (if b then 1 else 0) + 0x51)))
    r.live;
  Array.iter
    (fun (p, s) -> fold (Int64.logxor p (Int64.of_int (s + 1))))
    r.ring;
  !h
