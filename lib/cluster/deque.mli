(** Single-producer multi-consumer work deque.

    The {!Dpool} scheduler gives every worker domain one of these: the
    owner pushes its assigned jobs at the tail, and {e any} domain —
    owner included — takes from the head with a CAS, so an idle worker
    steals the oldest job of a loaded peer (the
    work-stealing-scheduler idiom of ebsl's [spmc_queue.ml] /
    [scheduler.ml]).  Taking from the head keeps steals FIFO, which
    favours large, early jobs — the right granularity when each job is
    a whole simulation.

    Only the owner may call {!push}, and only before consumers start
    taking (the pool distributes a batch up front, then publishes it);
    {!take} is safe from any number of domains concurrently. *)

type t

val create : capacity:int -> t
(** A deque able to hold [capacity] jobs (rounded up to a power of
    two).  Jobs are integers — the pool indexes its batch array. *)

val push : t -> int -> unit
(** Owner-only tail push.  Raises [Invalid_argument] when full — the
    pool sizes each deque for its whole share of the batch, so a full
    deque is a scheduler bug, not a recoverable condition. *)

val take : t -> int option
(** Pop the oldest job, racing any other consumer for it; [None] when
    the deque is (momentarily) empty.  Each pushed job is returned by
    exactly one successful [take] across all domains. *)

val length : t -> int
(** Jobs currently enqueued (racy under concurrent takes; exact once
    consumers are quiescent). *)
