(* Persistent worker domains fed batches of indexed jobs through
   per-worker SPMC deques.

   Between batches the workers block on [cv]; [run] installs a batch,
   bumps the epoch and broadcasts.  Inside a batch everything is
   lock-free: each worker drains its own deque, then steals from its
   peers, then spins on [remaining] until the stragglers finish.  The
   caller participates as worker 0, so a size-1 pool is just a serial
   loop with no domains spawned at all. *)

type batch = {
  deques : Deque.t array;
  f : int -> unit;
  remaining : int Atomic.t;
  err : exn option Atomic.t;
}

type t = {
  nworkers : int;
  mu : Mutex.t;
  cv : Condition.t;
  mutable batch : batch option;
  mutable epoch : int;
  mutable stopped : bool;
  mutable doms : unit Domain.t list;
}

(* Re-entrance flag: a job that calls run/map again executes the inner
   batch inline instead of deadlocking on the single batch slot. *)
let inside_pool : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let size t = t.nworkers

let work b ~wid =
  let nw = Array.length b.deques in
  let steal () =
    (* Own deque first, then sweep the peers from the right neighbour
       round — the fixed scan order is fine because job payloads are
       coarse (whole simulations), not queue operations. *)
    let rec scan k =
      if k = nw then None
      else
        match Deque.take b.deques.((wid + k) mod nw) with
        | Some j -> Some j
        | None -> scan (k + 1)
    in
    scan 0
  in
  let rec loop () =
    match steal () with
    | Some j ->
        (try b.f j
         with e -> ignore (Atomic.compare_and_set b.err None (Some e)));
        ignore (Atomic.fetch_and_add b.remaining (-1));
        loop ()
    | None ->
        if Atomic.get b.remaining > 0 then begin
          Domain.cpu_relax ();
          loop ()
        end
  in
  loop ()

let worker t ~wid () =
  let last = ref 0 in
  let rec serve () =
    Mutex.lock t.mu;
    while t.epoch = !last && not t.stopped do
      Condition.wait t.cv t.mu
    done;
    if t.stopped then Mutex.unlock t.mu
    else begin
      last := t.epoch;
      match t.batch with
      | None ->
          (* The batch drained (and was cleared) before this worker
             woke up — nothing to do for that epoch. *)
          Mutex.unlock t.mu;
          serve ()
      | Some b ->
          Mutex.unlock t.mu;
          Domain.DLS.set inside_pool true;
          work b ~wid;
          Domain.DLS.set inside_pool false;
          serve ()
    end
  in
  serve ()

let create ~domains =
  let nworkers = Stdlib.max 1 domains in
  let t =
    {
      nworkers;
      mu = Mutex.create ();
      cv = Condition.create ();
      batch = None;
      epoch = 0;
      stopped = false;
      doms = [];
    }
  in
  t.doms <-
    List.init (nworkers - 1) (fun i ->
        Domain.spawn (worker t ~wid:(i + 1)));
  t

let shutdown t =
  Mutex.lock t.mu;
  t.stopped <- true;
  Condition.broadcast t.cv;
  Mutex.unlock t.mu;
  List.iter Domain.join t.doms;
  t.doms <- []

(* Same exception contract as the parallel path: every job runs, the
   first exception (in completion order — here, index order) is kept and
   re-raised after the batch drains.  Without this, a serial pool would
   abandon the remaining jobs where an 8-domain pool runs them, and
   "first exception" would mean different things at different sizes. *)
let run_serial ~n f =
  let err = ref None in
  for i = 0 to n - 1 do
    try f i with e -> if !err = None then err := Some e
  done;
  match !err with Some e -> raise e | None -> ()

let run t ~n f =
  if n <= 0 then ()
  else if t.nworkers = 1 || n = 1 || Domain.DLS.get inside_pool then
    (* Serial fast path — also the nested-parallelism fallback. *)
    run_serial ~n f
  else begin
    if t.stopped then invalid_arg "Dpool.run: pool is shut down";
    let nw = t.nworkers in
    let deques =
      Array.init nw (fun _ -> Deque.create ~capacity:((n + nw - 1) / nw))
    in
    (* Round-robin distribution: contiguous indices land on distinct
       workers, so equal-cost jobs split evenly and unequal ones are
       rebalanced by stealing. *)
    for i = 0 to n - 1 do
      Deque.push deques.(i mod nw) i
    done;
    let b = { deques; f; remaining = Atomic.make n; err = Atomic.make None } in
    Mutex.lock t.mu;
    t.batch <- Some b;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.cv;
    Mutex.unlock t.mu;
    Domain.DLS.set inside_pool true;
    work b ~wid:0;
    Domain.DLS.set inside_pool false;
    (* remaining = 0: every job has completed, and each worker's writes
       were published by its fetch_and_add on [remaining]. *)
    Mutex.lock t.mu;
    t.batch <- None;
    Mutex.unlock t.mu;
    match Atomic.get b.err with Some e -> raise e | None -> ()
  end

let map t f items =
  let n = Array.length items in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    run t ~n (fun i -> results.(i) <- Some (f items.(i)));
    Array.map (function Some r -> r | None -> assert false) results
  end

(* ------------------------------ global ------------------------------ *)

let the_global = ref None
let global_size_ref = ref 1

let global () =
  match !the_global with
  | Some p -> p
  | None ->
      let p = create ~domains:!global_size_ref in
      the_global := Some p;
      p

let global_size () = !global_size_ref

let set_size n =
  let n = Stdlib.max 1 n in
  if n <> !global_size_ref || !the_global = None then begin
    (match !the_global with Some p -> shutdown p | None -> ());
    global_size_ref := n;
    the_global := Some (create ~domains:n)
  end
