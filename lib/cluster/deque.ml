(* SPMC array deque: the owner advances [tail] (plain writes — the pool
   publishes the filled deque to consumers with an atomic release, so
   pushes happen-before every take), consumers race on [head] with a
   CAS.  Slots hold job indices; a power-of-two ring keeps the index
   math branch-free. *)

type t = {
  mask : int;
  buf : int array;
  head : int Atomic.t; (* next slot to take *)
  tail : int Atomic.t; (* next slot to fill; stored atomically so a
                          thief's bounds check reads a published value *)
}

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ~capacity =
  let cap = pow2 (Stdlib.max 1 capacity) 1 in
  {
    mask = cap - 1;
    buf = Array.make cap (-1);
    head = Atomic.make 0;
    tail = Atomic.make 0;
  }

let push t job =
  let tl = Atomic.get t.tail in
  if tl - Atomic.get t.head > t.mask then invalid_arg "Deque.push: full";
  t.buf.(tl land t.mask) <- job;
  Atomic.set t.tail (tl + 1)

let rec take t =
  let hd = Atomic.get t.head in
  if hd >= Atomic.get t.tail then None
  else
    let job = t.buf.(hd land t.mask) in
    if Atomic.compare_and_set t.head hd (hd + 1) then Some job else take t

let length t = Stdlib.max 0 (Atomic.get t.tail - Atomic.get t.head)
