(* The merged fleet timeline: Chrome-trace counter tracks aligned on
   the fleet clock, so one trace-viewer tab shows the router and every
   shard's GC phases side by side.

   Counter events ("ph":"C") render as stacked area tracks.  Emitted
   tracks:

     fleet/live-shards     balancer-visible live count, one point per
                           routing epoch
     fleet/placed|shed|lost   front-end arrival accounting per bin
     fleet/availability    placed fraction of arrivals per bin
     shardK/stopped-ms     stop-the-world ms per bin (incarnations of
                           one shard id merged — they never overlap)
     shardK/queue-depth    high-water server queue depth per bin
     shardK/sheds          requests shed per bin

   Everything derives serially from an already-merged [Cluster.result],
   so the artefact is byte-identical at any --jobs. *)

module Cost = Cgc_smp.Cost

let schema = "cgcsim-timeline-v1"

let chrome_json (r : Cluster.result) =
  let cfg = r.Cluster.cfg in
  let cycles_per_ms = Cost.default.Cost.cycles_per_ms in
  let cycles_per_us = float_of_int cycles_per_ms /. 1000.0 in
  let b = Buffer.create 65536 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf
    "{\"displayTimeUnit\":\"ms\",\"cgcSchema\":\"%s\",\"cyclesPerUs\":%.3f,\"traceEvents\":["
    schema cycles_per_us;
  let first = ref true in
  let counter ~name ~ts_us ~key v =
    if !first then first := false else Buffer.add_char b ',';
    pf "\n{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":0,\"tid\":0,\"args\":{\"%s\":%s}}"
      name ts_us key v
  in
  (* Per-epoch balancer-visible liveness. *)
  let c = r.Cluster.chaos in
  let epoch_us = c.Cluster.epoch_cfg_ms *. 1000.0 in
  Array.iteri
    (fun e live ->
      counter ~name:"fleet/live-shards"
        ~ts_us:(float_of_int e *. epoch_us)
        ~key:"live" (string_of_int live))
    c.Cluster.live_epochs;
  (* Per-bin front-end accounting. *)
  let bin_us = cfg.Cluster.bin_ms *. 1000.0 in
  let bins = r.Cluster.bins in
  let nbins = Array.length bins.Cluster.placed in
  for i = 0 to nbins - 1 do
    let ts_us = float_of_int i *. bin_us in
    counter ~name:"fleet/placed" ~ts_us ~key:"count"
      (string_of_int bins.Cluster.placed.(i));
    counter ~name:"fleet/shed" ~ts_us ~key:"count"
      (string_of_int bins.Cluster.shed.(i));
    counter ~name:"fleet/lost" ~ts_us ~key:"count"
      (string_of_int bins.Cluster.lost.(i));
    let total =
      bins.Cluster.placed.(i) + bins.Cluster.shed.(i) + bins.Cluster.lost.(i)
    in
    let avail =
      if total = 0 then 1.0
      else float_of_int bins.Cluster.placed.(i) /. float_of_int total
    in
    counter ~name:"fleet/availability" ~ts_us ~key:"frac"
      (Printf.sprintf "%.6f" avail)
  done;
  (* Per-shard tracks, incarnations merged by shard id.  Incarnations
     of one shard never overlap in time, so summing per bin is exact
     (depth is a max: two incarnations can touch a boundary bin). *)
  let nids = cfg.Cluster.shards in
  let stopped = Array.init nids (fun _ -> Array.make nbins 0.0) in
  let sheds = Array.init nids (fun _ -> Array.make nbins 0) in
  let depth = Array.init nids (fun _ -> Array.make nbins 0) in
  Array.iter
    (fun (s : Shard.result) ->
      let id = s.Shard.id in
      Array.iteri
        (fun i v ->
          if i < nbins then stopped.(id).(i) <- stopped.(id).(i) +. v)
        s.Shard.stopped_ms;
      Array.iteri
        (fun i v -> if i < nbins then sheds.(id).(i) <- sheds.(id).(i) + v)
        s.Shard.sheds;
      Array.iteri
        (fun i v ->
          if i < nbins && v > depth.(id).(i) then depth.(id).(i) <- v)
        s.Shard.depth_max)
    r.Cluster.shards;
  for id = 0 to nids - 1 do
    for i = 0 to nbins - 1 do
      let ts_us = float_of_int i *. bin_us in
      counter
        ~name:(Printf.sprintf "shard%d/stopped-ms" id)
        ~ts_us ~key:"ms"
        (Printf.sprintf "%.6f" stopped.(id).(i));
      counter
        ~name:(Printf.sprintf "shard%d/queue-depth" id)
        ~ts_us ~key:"depth"
        (string_of_int depth.(id).(i));
      counter
        ~name:(Printf.sprintf "shard%d/sheds" id)
        ~ts_us ~key:"count"
        (string_of_int sheds.(id).(i))
    done
  done;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b
