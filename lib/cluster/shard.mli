(** One shard: a complete VM + collector + open-loop server, replaying
    its routed slice of the fleet arrival stream.

    A shard is a self-contained simulation — its own heap, collector,
    PRNG streams and event sink — so shards run on any host domain with
    no shared mutable state, and a shard's trace, report and totals are
    byte-identical at every [--jobs] count.  The only cluster-specific
    machinery is a scheduler hook that samples stop-the-world time and
    shed counts into fixed [bin_ms] timeline bins, which is what lets
    the fleet report detect {e correlated} phenomena (co-stopped shards,
    shed storms) without the shards ever communicating. *)

type cfg = {
  id : int;  (** shard index in [0, shards) *)
  seed : int;  (** this shard's VM seed (derived from the fleet seed) *)
  heap_mb : float;
  ncpus : int;
  gc : Cgc_core.Config.t;
  trace : bool;  (** arm the event sink (costs memory on long runs) *)
  trace_ring : int;
  server : Cgc_server.Server.cfg;
      (** per-shard server parameters; its [rate_per_s] is the nominal
          fleet share — the actual arrivals are the scripted slice *)
  bin_ms : float;  (** timeline bin width for fleet-phenomena sampling *)
  ms : float;  (** simulated milliseconds to run *)
}

type result = {
  id : int;
  seed : int;
  routed : int;  (** arrivals the balancer sent this shard *)
  totals : Cgc_server.Server.totals;
  gc_cycles : int;
  max_pause_ms : float;
  stopped_ms : float array;
      (** per timeline bin: simulated ms this shard's world was stopped *)
  sheds : int array;  (** per timeline bin: requests shed in that bin *)
  trace : string option;  (** Chrome trace JSON when [cfg.trace] *)
  dropped : int;  (** events lost to ring overflow (exit-5 territory) *)
}
(** Plain values only — the worker domain extracts everything from the
    VM before returning, so no simulation state escapes the domain that
    ran it. *)

val nbins : ms:float -> bin_ms:float -> int
(** Timeline bin count for a run: [ceil (ms / bin_ms)], at least 1.
    Exposed so {!Report} can label bins without re-deriving it. *)

val run : cfg -> arrivals:int array -> result
(** Build the VM, attach the server with
    [Cgc_server.Arrival.scripted arrivals], install the timeline
    sampler, run for [cfg.ms] simulated milliseconds and extract the
    result.  Raises whatever the simulation raises
    ([Cgc_core.Collector.Out_of_memory], invariant violations) — the
    pool re-raises in the caller. *)
