(** One shard incarnation: a complete VM + collector + open-loop server,
    replaying its routed slice of the fleet arrival stream.

    A shard is a self-contained simulation — its own heap, collector,
    PRNG streams and event sink — so shards run on any host domain with
    no shared mutable state, and a shard's trace, report and totals are
    byte-identical at every [--jobs] count.  Under chaos a shard may run
    as several {e incarnations}: the initial VM up to a crash, then a
    fresh VM (empty queue, cold heap — the re-warm is the point) per
    rejoin.  Each incarnation is its own independent [run]; the only
    cluster-specific machinery is a scheduler hook that samples
    stop-the-world time and shed counts into fixed [bin_ms] bins on the
    {e fleet} timeline (offset by [start_ms]), which is what lets the
    fleet report detect correlated phenomena (co-stopped shards, shed
    storms) without the shards ever communicating. *)

type cfg = {
  id : int;  (** shard index in [0, shards) *)
  seed : int;  (** this incarnation's VM seed (derived from fleet seed) *)
  heap_mb : float;
  ncpus : int;
  gc : Cgc_core.Config.t;
  trace : bool;  (** arm the event sink (costs memory on long runs) *)
  trace_ring : int;
  server : Cgc_server.Server.cfg;
      (** per-shard server parameters; its [rate_per_s] is the nominal
          fleet share — the actual arrivals are the scripted slice *)
  bin_ms : float;  (** timeline bin width for fleet-phenomena sampling *)
  ms : float;  (** simulated milliseconds {e this incarnation} runs *)
  incarnation : int;  (** 0 = initial VM, 1.. = cold rejoins *)
  start_ms : float;  (** fleet time at which this incarnation comes up *)
  fleet_ms : float;  (** whole-run length — sizes the timeline arrays *)
  crashed : bool;  (** this incarnation ends in a crash, not the horizon *)
  brownout : (int * int * float) option;
      (** [(start, stop, factor)] service inflation window, local cycles *)
  marks : (int * int) list;
      (** [(local ts, scenario index)] chaos marks to stamp into the
          trace as {!Cgc_obs.Event.Cluster_fault} instants *)
}

type result = {
  id : int;
  seed : int;
  routed : int;  (** arrivals the balancer sent this incarnation *)
  totals : Cgc_server.Server.totals;
  gc_cycles : int;
  max_pause_ms : float;
  stopped_ms : float array;
      (** per fleet-timeline bin: simulated ms this shard was stopped *)
  sheds : int array;  (** per fleet-timeline bin: requests shed *)
  depth_max : int array;
      (** per fleet-timeline bin: high-water server queue depth — the
          queue-depth counter track of the merged fleet timeline *)
  trace : string option;  (** Chrome trace JSON when [cfg.trace] *)
  emitted : int;  (** events the incarnation's rings accepted *)
  dropped : int;  (** events lost to ring overflow (exit-5 territory) *)
  dropped_by_tid : (int * int) list;
      (** (tid, dropped) for every ring that lost events — surfaced as
          warnings in the cluster report so per-incarnation traces can't
          silently under-report *)
  incarnation : int;
  start_ms : float;
  run_ms : float;
  crashed : bool;
  unfinished : int;
      (** admitted but neither completed nor timed out when the
          incarnation ended — lost if [crashed], in flight at the
          horizon otherwise *)
}
(** Plain values only — the worker domain extracts everything from the
    VM before returning, so no simulation state escapes the domain that
    ran it. *)

val nbins : ms:float -> bin_ms:float -> int
(** Timeline bin count for a run: [ceil (ms / bin_ms)], at least 1.
    Exposed so {!Report} can label bins without re-deriving it. *)

val run :
  cfg ->
  arrivals:int array ->
  ?delays:int array ->
  ?routes:Cgc_server.Span.route array ->
  unit ->
  result
(** Build the VM, attach the server with
    [Cgc_server.Arrival.scripted ?delays arrivals] (timestamps local to
    the incarnation; [delays] the per-arrival retry backoff), install
    the timeline sampler, run for [cfg.ms] simulated milliseconds and
    extract the result.  [routes] aligns with [arrivals]: the fleet
    routing decision per scripted arrival, threaded into each completed
    request's causal span.  Raises whatever the simulation raises
    ([Cgc_core.Collector.Out_of_memory], invariant violations) — the
    pool re-raises in the caller. *)
