(** Front-end request routing across shards.

    The balancer runs {e before} any shard simulation: it draws the
    fleet arrival stream once, assigns every arrival to a shard, and
    hands each shard its slice to replay
    ({!Cgc_server.Arrival.scripted}).  Routing therefore uses only
    front-end knowledge — arrival times and the balancer's own model of
    each shard's backlog — never oracle visibility into shard state,
    exactly like a real L7 balancer tracking its outstanding requests
    per backend.  The payoff is that shard simulations stay mutually
    independent: they can run on any number of host domains and remain
    byte-identical.

    Three policies:

    {ul
    {- {e round-robin} — arrival [i] goes to shard [i mod n];}
    {- {e least-queue-depth} — each shard's backlog is modelled as a
       fluid queue draining at [workers / service_est_ms]; every
       arrival goes to the shard whose modelled depth is lowest, ties
       breaking round-robin (a fixed tie-break would herd the whole
       fleet onto shard 0 whenever the modelled queues are empty).
       This is join-shortest-queue as seen from the front end;}
    {- {e consistent-hash} — shards own [vnodes] points each on a hash
       ring; every arrival draws a session key from the balancer's PRNG
       stream and goes to the first shard point clockwise of the key's
       hash.  Keyed routing concentrates hot sessions, so expect worse
       tail balance than round-robin at equal load — that skew is the
       point of measuring it.}} *)

type policy = Round_robin | Least_queue | Consistent_hash

val policy_name : policy -> string
(** ["round-robin"], ["least-queue"] or ["consistent-hash"]. *)

val policy_of_name : string -> policy option
(** Accepts the {!policy_name} forms plus the CLI short forms ["rr"],
    ["lqd"] and ["hash"]. *)

val all_policies : policy list

val route :
  policy ->
  nshards:int ->
  workers:int ->
  service_est_ms:float ->
  cycles_per_ms:int ->
  rng:Cgc_util.Prng.t ->
  int array ->
  int array
(** [route p ~nshards ... ts] maps each arrival timestamp in [ts]
    (non-decreasing, cycles) to a shard id in [0, nshards).
    [workers] and [service_est_ms] parameterise the least-queue fluid
    model (ignored by the other policies); [rng] draws consistent-hash
    session keys (ignored by the other policies — callers pass a
    dedicated split stream so policies stay comparable under one
    seed). *)

(** {2 Hash ring over a live set}

    Exposed so tests can check the failover contract directly: a shard's
    vnode positions depend only on its id, so removing a shard from the
    live set remaps {e only} the keys it owned (monotonicity) and
    re-adding it restores the exact prior assignment. *)

val mix64 : int64 -> int64
(** The SplitMix64 finalizer used for ring points and session keys. *)

val vnodes : int
(** Ring points per shard. *)

val ring_points : nshards:int -> live:bool array -> (int64 * int) array
(** The sorted [(point, shard)] ring restricted to live shards. *)

val ring_lookup : (int64 * int) array -> int64 -> int
(** First shard clockwise of the hash.  The ring must be non-empty. *)

(** {2 Epoch router}

    The stateful flavour of {!route} used by the chaos-aware cluster
    front end.  The balancer-visible live set is updated only at epoch
    boundaries ({!set_live}); between boundaries {!pick} places arrivals
    one at a time, supporting per-request retry (grow [avoid]) and
    hedging ({!hedge_better}).  The least-queue fluid backlog model is
    maintained for every policy — it is the hedging signal even when
    placement ignores it.  All state is deterministic: same inputs, same
    placements, at any [--jobs]. *)

type router

val router :
  policy ->
  nshards:int ->
  workers:int ->
  service_est_ms:float ->
  cycles_per_ms:int ->
  router
(** A fresh router with every shard live and empty modelled queues. *)

val set_live : router -> bool array -> unit
(** Install the balancer-visible live set (epoch boundary).  Rebuilds
    the hash ring from the live shards' vnodes. *)

val nlive : router -> int

val is_live : router -> int -> bool

val pick : router -> now:int -> key:int64 -> avoid:bool array -> int option
(** Place one arrival at cycle [now]: the next live non-avoided shard
    (round-robin), the shallowest modelled queue (least-queue), or the
    first live non-avoided shard clockwise of [key] (consistent-hash —
    [key] is ignored by the other policies).  [None] when every live
    shard is avoided or the fleet is dark.  Advances the fluid model to
    [now]; does {e not} bump any queue — call {!note_routed} on the
    shard the request finally lands on. *)

val note_routed : router -> int -> unit
(** Record a request landing on a shard in the fluid backlog model. *)

val hedge_better :
  router -> primary:int -> margin:float -> int option
(** The hedging rung: a live shard whose modelled depth undercuts the
    primary's by at least [margin], if any ([margin <= 0] disables). *)

val digest : router -> int64
(** Order-independent digest of the routing table — policy, live set and
    hash ring — reported per epoch so runs can prove when routing
    actually changed. *)
