(** Front-end request routing across shards.

    The balancer runs {e before} any shard simulation: it draws the
    fleet arrival stream once, assigns every arrival to a shard, and
    hands each shard its slice to replay
    ({!Cgc_server.Arrival.scripted}).  Routing therefore uses only
    front-end knowledge — arrival times and the balancer's own model of
    each shard's backlog — never oracle visibility into shard state,
    exactly like a real L7 balancer tracking its outstanding requests
    per backend.  The payoff is that shard simulations stay mutually
    independent: they can run on any number of host domains and remain
    byte-identical.

    Three policies:

    {ul
    {- {e round-robin} — arrival [i] goes to shard [i mod n];}
    {- {e least-queue-depth} — each shard's backlog is modelled as a
       fluid queue draining at [workers / service_est_ms]; every
       arrival goes to the shard whose modelled depth is lowest, ties
       breaking round-robin (a fixed tie-break would herd the whole
       fleet onto shard 0 whenever the modelled queues are empty).
       This is join-shortest-queue as seen from the front end;}
    {- {e consistent-hash} — shards own [vnodes] points each on a hash
       ring; every arrival draws a session key from the balancer's PRNG
       stream and goes to the first shard point clockwise of the key's
       hash.  Keyed routing concentrates hot sessions, so expect worse
       tail balance than round-robin at equal load — that skew is the
       point of measuring it.}} *)

type policy = Round_robin | Least_queue | Consistent_hash

val policy_name : policy -> string
(** ["round-robin"], ["least-queue"] or ["consistent-hash"]. *)

val policy_of_name : string -> policy option
(** Accepts the {!policy_name} forms plus the CLI short forms ["rr"],
    ["lqd"] and ["hash"]. *)

val all_policies : policy list

val route :
  policy ->
  nshards:int ->
  workers:int ->
  service_est_ms:float ->
  cycles_per_ms:int ->
  rng:Cgc_util.Prng.t ->
  int array ->
  int array
(** [route p ~nshards ... ts] maps each arrival timestamp in [ts]
    (non-decreasing, cycles) to a shard id in [0, nshards).
    [workers] and [service_est_ms] parameterise the least-queue fluid
    model (ignored by the other policies); [rng] draws consistent-hash
    session keys (ignored by the other policies — callers pass a
    dedicated split stream so policies stay comparable under one
    seed). *)
