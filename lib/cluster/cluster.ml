module Prng = Cgc_util.Prng
module Cost = Cgc_smp.Cost
module Server = Cgc_server.Server
module Arrival = Cgc_server.Arrival
module Latency = Cgc_server.Latency

type cfg = {
  shards : int;
  policy : Balancer.policy;
  rate_per_s : float;
  server : Server.cfg;
  service_est_ms : float;
  bin_ms : float;
  gc : Cgc_core.Config.t;
  heap_mb : float;
  ncpus : int;
  seed : int;
  ms : float;
  trace : bool;
  trace_ring : int;
}

let cfg ?(shards = 4) ?(policy = Balancer.Round_robin)
    ?(arrival = Arrival.Poisson) ?(queue_cap = 256) ?(workers = 4)
    ?(timeout_ms = 0.0) ?(slo_ms = 0.0) ?(slo_target = 0.999)
    ?(throttle_hi = 0) ?(throttle_lo = 0) ?(service_est_ms = 0.12)
    ?(bin_ms = 10.0) ?(gc = Cgc_core.Config.default) ?(heap_mb = 24.0)
    ?(ncpus = 4) ?(seed = 1) ?(ms = 2000.0) ?(trace = false)
    ?(trace_ring = 1 lsl 16) ~rate_per_s () =
  if shards < 1 then invalid_arg "Cluster.cfg: shards < 1";
  if service_est_ms <= 0.0 then
    invalid_arg "Cluster.cfg: service_est_ms must be positive";
  if bin_ms <= 0.0 then invalid_arg "Cluster.cfg: bin_ms must be positive";
  if ms <= 0.0 then invalid_arg "Cluster.cfg: ms must be positive";
  let server =
    Server.cfg ~arrival ~queue_cap ~workers ~timeout_ms ~slo_ms ~slo_target
      ~throttle_hi ~throttle_lo
      ~rate_per_s:(rate_per_s /. float_of_int shards)
      ()
  in
  {
    shards;
    policy;
    rate_per_s;
    server;
    service_est_ms;
    bin_ms;
    gc;
    heap_mb;
    ncpus;
    seed;
    ms;
    trace;
    trace_ring;
  }

(* Shard seeds fan out from the fleet seed with a large odd stride, so
   neighbouring shards' SplitMix64 roots are far apart; +1 keeps shard 0
   distinct from a plain [cgcsim serve] run at the same seed. *)
let shard_seed (cfg : cfg) k = cfg.seed + ((k + 1) * 0x632bd5)

type result = { cfg : cfg; shards : Shard.result array }

(* Phase 1a: the fleet arrival stream, drawn once up to the horizon. *)
let fleet_arrivals (cfg : cfg) ~cycles_per_ms ~rng =
  let horizon = int_of_float (cfg.ms *. float_of_int cycles_per_ms) in
  let arr =
    Arrival.create cfg.server.Server.arrival ~rate_per_s:cfg.rate_per_s
      ~cycles_per_ms ~rng
  in
  let acc = ref [] in
  let n = ref 0 in
  let rec go t =
    if t <= horizon then begin
      acc := t :: !acc;
      incr n;
      go (Arrival.next arr)
    end
  in
  go (Arrival.next arr);
  let ts = Array.make !n 0 in
  let i = ref (!n - 1) in
  List.iter
    (fun t ->
      ts.(!i) <- t;
      decr i)
    !acc;
  ts

(* Phase 1b: slice the routed stream into per-shard arrays, preserving
   arrival order within each shard. *)
let slice ~nshards ts assign =
  let counts = Array.make nshards 0 in
  Array.iter (fun s -> counts.(s) <- counts.(s) + 1) assign;
  let slices = Array.init nshards (fun s -> Array.make counts.(s) 0) in
  let fill = Array.make nshards 0 in
  Array.iteri
    (fun i s ->
      slices.(s).(fill.(s)) <- ts.(i);
      fill.(s) <- fill.(s) + 1)
    assign;
  slices

let run ?pool (cfg : cfg) =
  let pool = match pool with Some p -> p | None -> Dpool.global () in
  let cycles_per_ms = Cost.default.Cost.cycles_per_ms in
  (* An own PRNG root, offset from the fleet seed; one split stream for
     the arrival process, one for consistent-hash session keys, so the
     arrival stream is identical across routing policies. *)
  let root = Prng.create (cfg.seed + 0xc1a57e5) in
  let arr_rng = Prng.split root in
  let key_rng = Prng.split root in
  let ts = fleet_arrivals cfg ~cycles_per_ms ~rng:arr_rng in
  let assign =
    Balancer.route cfg.policy ~nshards:cfg.shards
      ~workers:cfg.server.Server.workers ~service_est_ms:cfg.service_est_ms
      ~cycles_per_ms ~rng:key_rng ts
  in
  let slices = slice ~nshards:cfg.shards ts assign in
  let shard_cfg k : Shard.cfg =
    {
      Shard.id = k;
      seed = shard_seed cfg k;
      heap_mb = cfg.heap_mb;
      ncpus = cfg.ncpus;
      gc = cfg.gc;
      trace = cfg.trace;
      trace_ring = cfg.trace_ring;
      server = cfg.server;
      bin_ms = cfg.bin_ms;
      ms = cfg.ms;
    }
  in
  let results =
    Dpool.map pool
      (fun k -> Shard.run (shard_cfg k) ~arrivals:slices.(k))
      (Array.init cfg.shards Fun.id)
  in
  { cfg; shards = results }

let fleet_totals (r : result) =
  Array.fold_left
    (fun (acc : Server.totals) (s : Shard.result) ->
      let t = s.Shard.totals in
      {
        Server.arrived = acc.Server.arrived + t.Server.arrived;
        admitted = acc.Server.admitted + t.Server.admitted;
        shed_full = acc.Server.shed_full + t.Server.shed_full;
        shed_throttled = acc.Server.shed_throttled + t.Server.shed_throttled;
        timed_out = acc.Server.timed_out + t.Server.timed_out;
        completed = acc.Server.completed + t.Server.completed;
        slo_violations = acc.Server.slo_violations + t.Server.slo_violations;
        max_depth = Stdlib.max acc.Server.max_depth t.Server.max_depth;
        lat = Latency.merge acc.Server.lat t.Server.lat;
      })
    {
      Server.arrived = 0;
      admitted = 0;
      shed_full = 0;
      shed_throttled = 0;
      timed_out = 0;
      completed = 0;
      slo_violations = 0;
      max_depth = 0;
      lat = Latency.create ();
    }
    r.shards

let slo_attainment r = Server.slo_attainment (fleet_totals r)

let slo_breached (r : result) =
  r.cfg.server.Server.slo_ms > 0.0
  && slo_attainment r < r.cfg.server.Server.slo_target
