module Prng = Cgc_util.Prng
module Cost = Cgc_smp.Cost
module Server = Cgc_server.Server
module Arrival = Cgc_server.Arrival
module Latency = Cgc_server.Latency
module Span = Cgc_server.Span
module Cluster_fault = Cgc_fault.Cluster_fault

type cfg = {
  shards : int;
  policy : Balancer.policy;
  rate_per_s : float;
  server : Server.cfg;
  service_est_ms : float;
  bin_ms : float;
  gc : Cgc_core.Config.t;
  heap_mb : float;
  ncpus : int;
  seed : int;
  ms : float;
  trace : bool;
  trace_ring : int;
  chaos : Cluster_fault.scenario option;
  chaos_seed : int;
  epoch_ms : float;
  retries : int;
  retry_base_ms : float;
  hedge_margin : float;
  fleet_throttle_frac : float;
  give_up : int;
}

let cfg ?(shards = 4) ?(policy = Balancer.Round_robin)
    ?(arrival = Arrival.Poisson) ?(queue_cap = 256) ?(workers = 4)
    ?(timeout_ms = 0.0) ?(slo_ms = 0.0) ?(slo_target = 0.999)
    ?(throttle_hi = 0) ?(throttle_lo = 0) ?(service_est_ms = 0.12)
    ?(bin_ms = 10.0) ?(gc = Cgc_core.Config.default) ?(heap_mb = 24.0)
    ?(ncpus = 4) ?(seed = 1) ?(ms = 2000.0) ?(trace = false)
    ?(trace_ring = 1 lsl 16) ?chaos ?(chaos_seed = 1) ?epoch_ms ?(retries = 3)
    ?(retry_base_ms = 0.25) ?(hedge_margin = 0.0)
    ?(fleet_throttle_frac = 0.5) ?(give_up = 100) ~rate_per_s () =
  if shards < 1 then invalid_arg "Cluster.cfg: shards < 1";
  if service_est_ms <= 0.0 then
    invalid_arg "Cluster.cfg: service_est_ms must be positive";
  if bin_ms <= 0.0 then invalid_arg "Cluster.cfg: bin_ms must be positive";
  if ms <= 0.0 then invalid_arg "Cluster.cfg: ms must be positive";
  let epoch_ms = match epoch_ms with Some e -> e | None -> bin_ms in
  if epoch_ms <= 0.0 then invalid_arg "Cluster.cfg: epoch_ms must be positive";
  if retries < 0 then invalid_arg "Cluster.cfg: retries < 0";
  if retry_base_ms <= 0.0 then
    invalid_arg "Cluster.cfg: retry_base_ms must be positive";
  if fleet_throttle_frac < 0.0 || fleet_throttle_frac > 1.0 then
    invalid_arg "Cluster.cfg: fleet_throttle_frac outside [0, 1]";
  if give_up < 1 then invalid_arg "Cluster.cfg: give_up < 1";
  let server =
    Server.cfg ~arrival ~queue_cap ~workers ~timeout_ms ~slo_ms ~slo_target
      ~throttle_hi ~throttle_lo
      ~rate_per_s:(rate_per_s /. float_of_int shards)
      ()
  in
  {
    shards;
    policy;
    rate_per_s;
    server;
    service_est_ms;
    bin_ms;
    gc;
    heap_mb;
    ncpus;
    seed;
    ms;
    trace;
    trace_ring;
    chaos;
    chaos_seed;
    epoch_ms;
    retries;
    retry_base_ms;
    hedge_margin;
    fleet_throttle_frac;
    give_up;
  }

(* Shard seeds fan out from the fleet seed with a large odd stride, so
   neighbouring shards' SplitMix64 roots are far apart; +1 keeps shard 0
   distinct from a plain [cgcsim serve] run at the same seed.  A cold
   rejoin is a new process: its incarnation index shifts the seed again
   so the restarted VM draws fresh streams. *)
let shard_seed (cfg : cfg) k = cfg.seed + ((k + 1) * 0x632bd5)
let incarnation_seed (cfg : cfg) k inc = shard_seed cfg k + (inc * 0x2545f49)

type chaos_info = {
  plan : Cluster_fault.plan;
  drawn : int;
  retried : int;
  redirected : int;
  hedge_wins : int;
  shed_fleet : int;
  lost_unroutable : int;
  epoch_cfg_ms : float;
  digests : int64 array;
  live_epochs : int array;
  ttr_ms : float option;
}

(* Fleet-level per-bin counters for the merged timeline: arrivals the
   front end placed on some shard, shed at the fleet door, or lost as
   unroutable, bucketed by [cfg.bin_ms] over the fleet horizon. *)
type fleet_bins = { placed : int array; shed : int array; lost : int array }

type result = {
  cfg : cfg;
  shards : Shard.result array;
  chaos : chaos_info;
  bins : fleet_bins;
}

type unavailable = {
  at_ms : float;
  scenario : string;
  live : int;
  of_shards : int;
  placed : int;
  lost : int;
  retries_spent : int;
}

exception Fleet_unavailable of unavailable

let unavailable_to_string u =
  Printf.sprintf
    "fleet unavailable at %.1f ms under %s: %d/%d shards visible, %d lost \
     after %d retries (%d requests placed before giving up)"
    u.at_ms u.scenario u.live u.of_shards u.lost u.retries_spent u.placed

let () =
  Printexc.register_printer (function
    | Fleet_unavailable u -> Some (unavailable_to_string u)
    | _ -> None)

(* Phase 1a: the fleet arrival stream, drawn once up to the horizon. *)
let fleet_arrivals (cfg : cfg) ~cycles_per_ms ~rng =
  let horizon = int_of_float (cfg.ms *. float_of_int cycles_per_ms) in
  let arr =
    Arrival.create cfg.server.Server.arrival ~rate_per_s:cfg.rate_per_s
      ~cycles_per_ms ~rng
  in
  let acc = ref [] in
  let n = ref 0 in
  let rec go t =
    if t <= horizon then begin
      acc := t :: !acc;
      incr n;
      go (Arrival.next arr)
    end
  in
  go (Arrival.next arr);
  let ts = Array.make !n 0 in
  let i = ref (!n - 1) in
  List.iter
    (fun t ->
      ts.(!i) <- t;
      decr i)
    !acc;
  ts

(* Phase 1b under chaos: route arrival-by-arrival through the epoch
   router, walking the degradation ladder per request:
   reroute (the router skips balancer-visibly dark shards) -> retry
   with doubling backoff when the target turns out to be dark ->
   fleet-wide admission throttle once the visible live fraction falls
   to [fleet_throttle_frac] -> [Fleet_unavailable] after [give_up]
   unroutable requests.  Everything here is serial and a function of
   (cfg, plan), so the produced slices are identical at any pool
   size. *)
type placement =
  | Placed of { shard : int; at : int; pre : int; route : Span.route }
  | Shed_fleet
  | Lost

let route_chaos (cfg : cfg) ~plan ~cycles_per_ms ~key_rng ts =
  let nshards = cfg.shards in
  let horizon = int_of_float (cfg.ms *. float_of_int cycles_per_ms) in
  let epoch_cycles =
    Stdlib.max 1 (int_of_float (cfg.epoch_ms *. float_of_int cycles_per_ms))
  in
  let nepochs =
    Stdlib.max 1
      (int_of_float (Float.ceil (cfg.ms /. cfg.epoch_ms)))
  in
  let router =
    Balancer.router cfg.policy ~nshards ~workers:cfg.server.Server.workers
      ~service_est_ms:cfg.service_est_ms ~cycles_per_ms
  in
  let digests = Array.make nepochs 0L in
  let live_epochs = Array.make nepochs nshards in
  let live = Array.make nshards true in
  let cur_epoch = ref (-1) in
  let enter_epoch e =
    let boundary = e * epoch_cycles in
    for s = 0 to nshards - 1 do
      live.(s) <- Cluster_fault.live_at plan ~shard:s boundary
    done;
    Balancer.set_live router live;
    digests.(e) <- Balancer.digest router;
    live_epochs.(e) <- Balancer.nlive router;
    cur_epoch := e
  in
  let advance_to t =
    let e = Stdlib.min (nepochs - 1) (t / epoch_cycles) in
    while !cur_epoch < e do
      enter_epoch (!cur_epoch + 1)
    done
  in
  enter_epoch 0;
  let n = Array.length ts in
  let out = Array.make n Lost in
  let retried = ref 0 in
  let redirected = ref 0 in
  let hedge_wins = ref 0 in
  let shed_fleet = ref 0 in
  let lost = ref 0 in
  let placed = ref 0 in
  let credit = ref 0.0 in
  let avoid = Array.make nshards false in
  let give_up_check at =
    if !lost >= cfg.give_up then
      raise
        (Fleet_unavailable
           {
             at_ms = float_of_int at /. float_of_int cycles_per_ms;
             scenario =
               (match Cluster_fault.scenario plan with
               | Some s -> Cluster_fault.to_name s
               | None -> "none");
             live = Balancer.nlive router;
             of_shards = nshards;
             placed = !placed;
             lost = !lost;
             retries_spent = !retried;
           })
  in
  for i = 0 to n - 1 do
    let t0 = ts.(i) in
    advance_to t0;
    (* Session keys are drawn per arrival regardless of the request's
       fate, so the key stream stays aligned across scenarios. *)
    let key = Balancer.mix64 (Prng.next key_rng) in
    let nlive = Balancer.nlive router in
    let throttled =
      nlive < nshards
      && float_of_int nlive /. float_of_int nshards <= cfg.fleet_throttle_frac
      &&
      let frac = float_of_int nlive /. float_of_int nshards in
      (credit := !credit +. frac;
       if !credit >= 1.0 then begin
         credit := !credit -. 1.0;
         false
       end
       else true)
    in
    if throttled then begin
      incr shed_fleet;
      out.(i) <- Shed_fleet
    end
    else begin
      Array.fill avoid 0 nshards false;
      let tcur = ref t0 and pre = ref 0 and attempt = ref 0 in
      let first = ref (-1) in
      let hedged = ref false in
      let finished = ref false in
      while not !finished do
        match Balancer.pick router ~now:!tcur ~key ~avoid with
        | None ->
            incr lost;
            out.(i) <- Lost;
            finished := true;
            give_up_check !tcur
        | Some cand ->
            let cand =
              if !attempt = 0 then
                match
                  Balancer.hedge_better router ~primary:cand
                    ~margin:cfg.hedge_margin
                with
                | Some alt ->
                    hedged := true;
                    alt
                | None -> cand
              else cand
            in
            if !first < 0 then first := cand;
            if Cluster_fault.live_at plan ~shard:cand !tcur then begin
              let hedge_win = !hedged && cand = !first && !attempt = 0 in
              if hedge_win then incr hedge_wins;
              if cand <> !first then incr redirected;
              Balancer.note_routed router cand;
              let route =
                {
                  Span.rid = i;
                  first = !first;
                  shard = cand;
                  epoch = !cur_epoch;
                  attempts = !attempt;
                  hedged = !hedged;
                  hedge_win;
                }
              in
              out.(i) <- Placed { shard = cand; at = !tcur; pre = !pre; route };
              incr placed;
              finished := true
            end
            else begin
              avoid.(cand) <- true;
              if !attempt >= cfg.retries then begin
                incr lost;
                out.(i) <- Lost;
                finished := true;
                give_up_check !tcur
              end
              else begin
                incr retried;
                let backoff =
                  int_of_float
                    (cfg.retry_base_ms
                    *. float_of_int (1 lsl !attempt)
                    *. float_of_int cycles_per_ms)
                in
                tcur := !tcur + backoff;
                pre := !pre + backoff;
                incr attempt;
                if !tcur > horizon then begin
                  incr lost;
                  out.(i) <- Lost;
                  finished := true;
                  give_up_check !tcur
                end
              end
            end
      done
    end
  done;
  (* Trailing epochs with no arrivals still appear in the digest
     history — a recovery the traffic never exercised is still a
     recovery. *)
  while !cur_epoch < nepochs - 1 do
    enter_epoch (!cur_epoch + 1)
  done;
  ( out,
    {
      plan;
      drawn = n;
      retried = !retried;
      redirected = !redirected;
      hedge_wins = !hedge_wins;
      shed_fleet = !shed_fleet;
      lost_unroutable = !lost;
      epoch_cfg_ms = cfg.epoch_ms;
      digests;
      live_epochs;
      ttr_ms = None (* filled by [run] *);
    } )

(* Balancer-visible time-to-recover: from the plan's first onset to the
   start of the first epoch after the last degraded one.  When the
   balancer never saw degradation (brownout), fall back to the plan's
   own recovery point. *)
let time_to_recover ~plan ~live_epochs ~epoch_ms ~shards ~cycles_per_ms =
  match Cluster_fault.first_onset plan with
  | None -> None
  | Some onset ->
      let onset_ms = float_of_int onset /. float_of_int cycles_per_ms in
      let last_degraded = ref (-1) in
      Array.iteri
        (fun e l -> if l < shards then last_degraded := e)
        live_epochs;
      if !last_degraded >= 0 then
        if !last_degraded = Array.length live_epochs - 1 then None
        else Some ((float_of_int (!last_degraded + 1) *. epoch_ms) -. onset_ms)
      else
        (match Cluster_fault.recovered_at plan with
        | None -> None
        | Some r ->
            Some ((float_of_int r /. float_of_int cycles_per_ms) -. onset_ms))

let run ?pool (cfg : cfg) =
  let pool = match pool with Some p -> p | None -> Dpool.global () in
  let cycles_per_ms = Cost.default.Cost.cycles_per_ms in
  let horizon = int_of_float (cfg.ms *. float_of_int cycles_per_ms) in
  (* An own PRNG root, offset from the fleet seed; one split stream for
     the arrival process, one for consistent-hash session keys, so the
     arrival stream is identical across routing policies. *)
  let root = Prng.create (cfg.seed + 0xc1a57e5) in
  let arr_rng = Prng.split root in
  let key_rng = Prng.split root in
  let ts = fleet_arrivals cfg ~cycles_per_ms ~rng:arr_rng in
  let plan =
    match cfg.chaos with
    | None -> Cluster_fault.none ~shards:cfg.shards ~horizon
    | Some scenario ->
        Cluster_fault.make ~scenario ~seed:cfg.chaos_seed ~shards:cfg.shards
          ~horizon
  in
  let placements, chaos = route_chaos cfg ~plan ~cycles_per_ms ~key_rng ts in
  let chaos =
    {
      chaos with
      ttr_ms =
        time_to_recover ~plan ~live_epochs:chaos.live_epochs
          ~epoch_ms:cfg.epoch_ms ~shards:cfg.shards ~cycles_per_ms;
    }
  in
  (* Phase 1c: split placements into per-incarnation scripts.  Retry
     backoff can reorder placements within a shard, so each script is
     re-sorted by effective arrival time (stable, so simultaneous
     arrivals keep front-end order). *)
  let scenario_idx =
    match Cluster_fault.scenario plan with
    | Some s -> Cluster_fault.index s
    | None -> 0
  in
  let jobs = ref [] in
  for k = cfg.shards - 1 downto 0 do
    let incs = Array.of_list (Cluster_fault.incarnations plan ~shard:k) in
    let buckets = Array.make (Array.length incs) [] in
    let bucket_of t =
      let b = ref (Array.length incs - 1) in
      Array.iteri
        (fun j (inc : Cluster_fault.incarnation) ->
          if t >= inc.start && t < inc.stop && !b > j then b := j)
        incs;
      !b
    in
    Array.iter
      (fun p ->
        match p with
        | Placed { shard; at; pre; route } when shard = k ->
            let j = bucket_of at in
            buckets.(j) <- (at, pre, route) :: buckets.(j)
        | _ -> ())
      placements;
    (* Both loops run high-to-low so consing onto [jobs] leaves the
       final array ordered by (shard id, incarnation). *)
    for j = Array.length incs - 1 downto 0 do
      let inc = incs.(j) in
        let entries = Array.of_list (List.rev buckets.(j)) in
        (* stable: equal effective times keep front-end order *)
        let order = Array.init (Array.length entries) Fun.id in
        Array.sort
          (fun a b ->
            let ta, _, _ = entries.(a) and tb, _, _ = entries.(b) in
            if ta <> tb then compare ta tb else compare a b)
          order;
        let narr = Array.length entries in
        let arrivals = Array.make narr 0 in
        let delays = Array.make narr 0 in
        let routes = Array.make narr (Span.local_route 0) in
        Array.iteri
          (fun pos o ->
            let at, pre, route = entries.(o) in
            arrivals.(pos) <- at - inc.start;
            delays.(pos) <- pre;
            routes.(pos) <- route)
          order;
        let run_cycles = Stdlib.min inc.stop horizon - inc.start in
        let start_ms =
          float_of_int inc.start /. float_of_int cycles_per_ms
        in
        let run_ms = float_of_int run_cycles /. float_of_int cycles_per_ms in
        let brownout =
          match Cluster_fault.brownout plan ~shard:k with
          | None -> None
          | Some (b0, b1, f) ->
              let l0 = Stdlib.max 0 (b0 - inc.start) in
              let l1 = Stdlib.min run_cycles (b1 - inc.start) in
              if l1 > l0 then Some (l0, l1, f) else None
        in
        let marks =
          (if inc.crashed then [ (run_cycles, scenario_idx) ] else [])
          @ (if inc.index > 0 then [ (0, scenario_idx) ] else [])
          @
          match Cluster_fault.brownout plan ~shard:k with
          | Some (b0, b1, _) when b0 < inc.stop && b1 > inc.start ->
              [ (Stdlib.max 0 (b0 - inc.start), scenario_idx) ]
          | _ -> []
        in
        let scfg : Shard.cfg =
          {
            Shard.id = k;
            seed = incarnation_seed cfg k inc.index;
            heap_mb = cfg.heap_mb;
            ncpus = cfg.ncpus;
            gc = cfg.gc;
            trace = cfg.trace;
            trace_ring = cfg.trace_ring;
            server = cfg.server;
            bin_ms = cfg.bin_ms;
            ms = run_ms;
            incarnation = inc.index;
            start_ms;
            fleet_ms = cfg.ms;
            crashed = inc.crashed;
            brownout;
            marks;
          }
        in
        jobs := (scfg, arrivals, delays, routes) :: !jobs
    done
  done;
  let jobs = Array.of_list !jobs in
  let results =
    Dpool.map pool
      (fun (scfg, arrivals, delays, routes) ->
        Shard.run scfg ~arrivals ~delays ~routes ())
      jobs
  in
  (* Fleet-level timeline bins, computed serially from the placements:
     shed/lost arrivals bucket at their front-end arrival stamp, placed
     ones at their (possibly backed-off) placement stamp. *)
  let nbins = Shard.nbins ~ms:cfg.ms ~bin_ms:cfg.bin_ms in
  let bin_cycles =
    Stdlib.max 1 (int_of_float (cfg.bin_ms *. float_of_int cycles_per_ms))
  in
  let bin t = Stdlib.min (nbins - 1) (Stdlib.max 0 (t / bin_cycles)) in
  let bins =
    {
      placed = Array.make nbins 0;
      shed = Array.make nbins 0;
      lost = Array.make nbins 0;
    }
  in
  Array.iteri
    (fun i p ->
      match p with
      | Placed { at; _ } ->
          let b = bin at in
          bins.placed.(b) <- bins.placed.(b) + 1
      | Shed_fleet ->
          let b = bin ts.(i) in
          bins.shed.(b) <- bins.shed.(b) + 1
      | Lost ->
          let b = bin ts.(i) in
          bins.lost.(b) <- bins.lost.(b) + 1)
    placements;
  { cfg; shards = results; chaos; bins }

let fleet_totals (r : result) =
  Array.fold_left
    (fun (acc : Server.totals) (s : Shard.result) ->
      let t = s.Shard.totals in
      {
        Server.arrived = acc.Server.arrived + t.Server.arrived;
        admitted = acc.Server.admitted + t.Server.admitted;
        shed_full = acc.Server.shed_full + t.Server.shed_full;
        shed_throttled = acc.Server.shed_throttled + t.Server.shed_throttled;
        timed_out = acc.Server.timed_out + t.Server.timed_out;
        completed = acc.Server.completed + t.Server.completed;
        slo_violations = acc.Server.slo_violations + t.Server.slo_violations;
        max_depth = Stdlib.max acc.Server.max_depth t.Server.max_depth;
        lat = Latency.merge acc.Server.lat t.Server.lat;
        spans = Span.merge acc.Server.spans t.Server.spans;
      })
    {
      Server.arrived = 0;
      admitted = 0;
      shed_full = 0;
      shed_throttled = 0;
      timed_out = 0;
      completed = 0;
      slo_violations = 0;
      max_depth = 0;
      lat = Latency.create ();
      spans = Span.empty_summary;
    }
    r.shards

let lost_crashed (r : result) =
  Array.fold_left
    (fun acc (s : Shard.result) ->
      if s.Shard.crashed then acc + s.Shard.unfinished else acc)
    0 r.shards

let unarrived (r : result) =
  Array.fold_left
    (fun acc (s : Shard.result) ->
      acc + s.Shard.routed - s.Shard.totals.Server.arrived)
    0 r.shards

let availability (r : result) =
  if r.chaos.drawn = 0 then 1.0
  else
    float_of_int (fleet_totals r).Server.completed
    /. float_of_int r.chaos.drawn

let slo_attainment r = Server.slo_attainment (fleet_totals r)

let slo_breached (r : result) =
  r.cfg.server.Server.slo_ms > 0.0
  && slo_attainment r < r.cfg.server.Server.slo_target
