module Vm = Cgc_runtime.Vm
module Sched = Cgc_sim.Sched
module Machine = Cgc_smp.Machine
module Cost = Cgc_smp.Cost
module Server = Cgc_server.Server
module Arrival = Cgc_server.Arrival
module Obs = Cgc_obs.Obs
module Event = Cgc_obs.Event
module Gstats = Cgc_core.Gstats
module Histogram = Cgc_util.Histogram

(* Chaos marks are emitted host-side like the server's arrival events. *)
let server_tid = -1

type cfg = {
  id : int;
  seed : int;
  heap_mb : float;
  ncpus : int;
  gc : Cgc_core.Config.t;
  trace : bool;
  trace_ring : int;
  server : Server.cfg;
  bin_ms : float;
  ms : float;
  incarnation : int;
  start_ms : float;
  fleet_ms : float;
  crashed : bool;
  brownout : (int * int * float) option;
  marks : (int * int) list;
}

type result = {
  id : int;
  seed : int;
  routed : int;
  totals : Server.totals;
  gc_cycles : int;
  max_pause_ms : float;
  stopped_ms : float array;
  sheds : int array;
  depth_max : int array;
  trace : string option;
  emitted : int;
  dropped : int;
  dropped_by_tid : (int * int) list;
  incarnation : int;
  start_ms : float;
  run_ms : float;
  crashed : bool;
  unfinished : int;
}

let nbins ~ms ~bin_ms =
  if bin_ms <= 0.0 then invalid_arg "Shard.nbins: bin_ms must be positive";
  Stdlib.max 1 (int_of_float (Float.ceil (ms /. bin_ms)))

(* The timeline sampler: an [on_advance] hook registered after the
   server's, so by the time it runs at timestamp [now] the server has
   already admitted/shed every arrival up to [now].  It integrates
   stopped-world time the same way [Server.on_tick] does (previous
   stopped flag times the elapsed interval) and differences the
   monotone shed counter; both land in the bin of the interval start,
   which is exact to within one scheduler tick — far finer than a
   bin.  [start_cycles] offsets an incarnation's local clock into the
   fleet timeline, so every incarnation of every shard bins onto the
   same fleet-wide axis. *)
let install_sampler vm srv ~bin_cycles ~start_cycles ~stopped ~sheds
    ~depth_max =
  let last = Array.length stopped - 1 in
  let bin t = Stdlib.min last ((start_cycles + t) / bin_cycles) in
  let prev_now = ref 0 in
  let prev_stopped = ref false in
  let prev_shed = ref 0 in
  Sched.on_advance (Vm.sched vm) (fun now ->
      if !prev_stopped then
        stopped.(bin !prev_now) <-
          stopped.(bin !prev_now) + (now - !prev_now);
      prev_now := now;
      prev_stopped := Sched.world_stopped (Vm.sched vm);
      let s = Server.shed_now srv in
      if s <> !prev_shed then begin
        sheds.(bin now) <- sheds.(bin now) + (s - !prev_shed);
        prev_shed := s
      end;
      let d = Server.queue_depth srv in
      let b = bin now in
      if d > depth_max.(b) then depth_max.(b) <- d)

let run (cfg : cfg) ~arrivals ?delays ?routes () =
  let vm =
    Vm.create
      (Vm.config ~heap_mb:cfg.heap_mb ~ncpus:cfg.ncpus ~seed:cfg.seed
         ~gc:cfg.gc ~trace:cfg.trace ~trace_ring:cfg.trace_ring ())
  in
  let route =
    Option.map (fun r ord -> (r : Cgc_server.Span.route array).(ord)) routes
  in
  let srv =
    Server.create
      ~arrivals:(Arrival.scripted ?delays arrivals)
      ?degrade:cfg.brownout ?route cfg.server vm
  in
  List.iter
    (fun (ts, arg) ->
      Obs.instant_host (Vm.obs vm) ~arg ~tid:server_tid ~ts Event.Cluster_fault)
    cfg.marks;
  let mach = Vm.machine vm in
  let cycles_per_ms = mach.Machine.cost.Cost.cycles_per_ms in
  let nb = nbins ~ms:cfg.fleet_ms ~bin_ms:cfg.bin_ms in
  let bin_cycles =
    Stdlib.max 1 (int_of_float (cfg.bin_ms *. float_of_int cycles_per_ms))
  in
  let start_cycles =
    int_of_float (cfg.start_ms *. float_of_int cycles_per_ms)
  in
  let stopped = Array.make nb 0 in
  let sheds = Array.make nb 0 in
  let depth_max = Array.make nb 0 in
  install_sampler vm srv ~bin_cycles ~start_cycles ~stopped ~sheds ~depth_max;
  Vm.run vm ~ms:cfg.ms;
  let gs = Vm.gc_stats vm in
  let pauses = gs.Gstats.pause_ms in
  let totals = Server.totals srv in
  {
    id = cfg.id;
    seed = cfg.seed;
    routed = Array.length arrivals;
    totals;
    gc_cycles = gs.Gstats.cycles;
    max_pause_ms =
      (if Histogram.count pauses = 0 then 0.0 else Histogram.max pauses);
    stopped_ms =
      Array.map
        (fun c -> float_of_int c /. float_of_int cycles_per_ms)
        stopped;
    sheds;
    depth_max;
    trace = (if cfg.trace then Some (Vm.trace_json vm) else None);
    emitted = Obs.emitted (Vm.obs vm);
    dropped = Obs.dropped (Vm.obs vm);
    dropped_by_tid =
      List.filter (fun (_, d) -> d > 0) (Obs.dropped_by_thread (Vm.obs vm));
    incarnation = cfg.incarnation;
    start_ms = cfg.start_ms;
    run_ms = cfg.ms;
    crashed = cfg.crashed;
    unfinished =
      totals.Server.admitted - totals.Server.completed
      - totals.Server.timed_out;
  }
