type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of t_float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

and t_float = float

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let to_string ?(pretty = false) v =
  let b = Buffer.create 4096 in
  let pad n = if pretty then Buffer.add_string b (String.make (2 * n) ' ') in
  let nl () = if pretty then Buffer.add_char b '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f ->
        if Float.is_finite f then
          Buffer.add_string b (Printf.sprintf "%.6f" f)
        else Buffer.add_string b "null"
    | Str s -> escape b s
    | Arr [] -> Buffer.add_string b "[]"
    | Arr xs ->
        Buffer.add_char b '[';
        nl ();
        List.iteri
          (fun i x ->
            if i > 0 then begin
              Buffer.add_char b ',';
              nl ()
            end;
            pad (depth + 1);
            go (depth + 1) x)
          xs;
        nl ();
        pad depth;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
        Buffer.add_char b '{';
        nl ();
        List.iteri
          (fun i (k, x) ->
            if i > 0 then begin
              Buffer.add_char b ',';
              nl ()
            end;
            pad (depth + 1);
            escape b k;
            Buffer.add_char b ':';
            if pretty then Buffer.add_char b ' ';
            go (depth + 1) x)
          kvs;
        nl ();
        pad depth;
        Buffer.add_char b '}'
  in
  go 0 v;
  if pretty then Buffer.add_char b '\n';
  Buffer.contents b

(* A strict recursive-descent parser for the subset this module writes.
   Number literals containing '.', 'e' or 'E' become [Float], everything
   else [Int] — so a [to_string]'d value re-parses to a value that
   serialises back to the same bytes. *)
exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' ->
              Buffer.add_char b '"';
              advance ();
              go ()
          | Some '\\' ->
              Buffer.add_char b '\\';
              advance ();
              go ()
          | Some '/' ->
              Buffer.add_char b '/';
              advance ();
              go ()
          | Some 'n' ->
              Buffer.add_char b '\n';
              advance ();
              go ()
          | Some 't' ->
              Buffer.add_char b '\t';
              advance ();
              go ()
          | Some 'r' ->
              Buffer.add_char b '\r';
              advance ();
              go ()
          | Some 'b' ->
              Buffer.add_char b '\b';
              advance ();
              go ()
          | Some 'f' ->
              Buffer.add_char b '\012';
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              pos := !pos + 4;
              (* The writer only emits \u00xx for control characters. *)
              if code < 0x80 then Buffer.add_char b (Char.chr code)
              else fail "non-ASCII \\u escape unsupported";
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail "expected number";
    let lit = String.sub s start (!pos - start) in
    if String.exists (function '.' | 'e' | 'E' -> true | _ -> false) lit
    then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail "bad float literal"
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> fail "bad int literal"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (items [])
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
    | Some _ -> parse_number ()
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing bytes at offset %d" !pos)
    else Ok v
  with Bad msg -> Error msg

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None
