type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of t_float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

and t_float = float

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let to_string ?(pretty = false) v =
  let b = Buffer.create 4096 in
  let pad n = if pretty then Buffer.add_string b (String.make (2 * n) ' ') in
  let nl () = if pretty then Buffer.add_char b '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f ->
        if Float.is_finite f then
          Buffer.add_string b (Printf.sprintf "%.6f" f)
        else Buffer.add_string b "null"
    | Str s -> escape b s
    | Arr [] -> Buffer.add_string b "[]"
    | Arr xs ->
        Buffer.add_char b '[';
        nl ();
        List.iteri
          (fun i x ->
            if i > 0 then begin
              Buffer.add_char b ',';
              nl ()
            end;
            pad (depth + 1);
            go (depth + 1) x)
          xs;
        nl ();
        pad depth;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
        Buffer.add_char b '{';
        nl ();
        List.iteri
          (fun i (k, x) ->
            if i > 0 then begin
              Buffer.add_char b ',';
              nl ()
            end;
            pad (depth + 1);
            escape b k;
            Buffer.add_char b ':';
            if pretty then Buffer.add_char b ' ';
            go (depth + 1) x)
          kvs;
        nl ();
        pad depth;
        Buffer.add_char b '}'
  in
  go 0 v;
  if pretty then Buffer.add_char b '\n';
  Buffer.contents b
