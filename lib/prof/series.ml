type t = {
  name : string;
  ts : int array;
  vs : float array;
  capacity : int;
  mutable start : int;  (* index of the oldest retained point *)
  mutable len : int;
  mutable total : int;  (* points ever added *)
  mutable sum : float;
  mutable mn : float;
  mutable mx : float;
}

let create ?(capacity = 8192) ~name () =
  let capacity = max 1 capacity in
  {
    name;
    ts = Array.make capacity 0;
    vs = Array.make capacity 0.0;
    capacity;
    start = 0;
    len = 0;
    total = 0;
    sum = 0.0;
    mn = infinity;
    mx = neg_infinity;
  }

let name t = t.name

let add t ~ts v =
  let i = (t.start + t.len) mod t.capacity in
  t.ts.(i) <- ts;
  t.vs.(i) <- v;
  if t.len = t.capacity then t.start <- (t.start + 1) mod t.capacity
  else t.len <- t.len + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum +. v;
  if v < t.mn then t.mn <- v;
  if v > t.mx then t.mx <- v

let length t = t.len
let count t = t.total
let dropped t = t.total - t.len

let to_list t =
  List.init t.len (fun k ->
      let i = (t.start + k) mod t.capacity in
      (t.ts.(i), t.vs.(i)))

let min t = if t.total = 0 then 0.0 else t.mn
let max t = if t.total = 0 then 0.0 else t.mx
let mean t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total

let last t =
  if t.len = 0 then None
  else
    let i = (t.start + t.len - 1) mod t.capacity in
    Some (t.ts.(i), t.vs.(i))

let clear t =
  t.start <- 0;
  t.len <- 0;
  t.total <- 0;
  t.sum <- 0.0;
  t.mn <- infinity;
  t.mx <- neg_infinity
