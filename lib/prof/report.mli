(** Rendering an {!Analysis.t}: aligned text tables for humans, a
    versioned JSON document for tooling.  Both are deterministic. *)

val analysis_schema : string
(** The [schema] tag in the JSON report: ["cgcsim-analysis-v1"]. *)

val summary : ?dropped:int -> Analysis.t -> string
(** Human-readable report: overview, MMU curve, per-thread tracing work,
    load balance, pause distribution and per-event attribution.
    [dropped] (ring-overflow losses in the source trace, default 0)
    prepends a prominent warning when nonzero — derived metrics from a
    truncated trace undercount early history. *)

val to_json :
  ?label:string -> ?emitted:int -> ?dropped:int -> Analysis.t -> Json.t
(** The same content as a JSON object tagged with {!analysis_schema}.
    [label] names the analysed run; [emitted]/[dropped] echo the source
    trace's event accounting. *)
