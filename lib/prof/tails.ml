(* Tail forensics and LBO cost distillation over serialised reports.

   [of_report] accepts every latency-bearing artefact the CLI writes —
   cgcsim-server-v1/v2 and cgcsim-cluster-v2/v3 — and normalises it
   into one view: the fleet-wide blame decomposition plus the worst-N
   causal chains.  v2-server / v3-cluster reports carry exact
   integer-cycle spans; the legacy schemas degrade gracefully to a
   histogram-mean decomposition with a note that per-request chains are
   unavailable.

   [lbo_of_bench] implements the "Distilling the Real Cost of
   Production Garbage Collectors" methodology on a cgcsim-bench-v1
   document: group cells by workload shape, take each group's
   lower-bound-overhead baseline — the best service-only latency
   (mean e2e minus mean GC blame, a service-only replay computed
   analytically) or the best throughput — and report every cell's
   distilled GC cost as its fractional distance above that baseline. *)

let schema = "cgcsim-tails-v1"
let lbo_schema = "cgcsim-lbo-v1"

(* ------------------------- JSON accessors ------------------------- *)

let mem = Json.member

let get_int k j =
  match mem k j with
  | Some (Json.Int n) -> n
  | Some (Json.Float f) -> int_of_float f
  | _ -> 0

let get_float k j =
  match mem k j with
  | Some (Json.Float f) -> f
  | Some (Json.Int n) -> float_of_int n
  | _ -> 0.0

let get_bool k j = match mem k j with Some (Json.Bool b) -> b | _ -> false
let get_str k j = match mem k j with Some (Json.Str s) -> s | _ -> ""

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

(* ------------------------------ tails ----------------------------- *)

type tail = {
  rid : int;
  shard : int;
  first : int;
  epoch : int;
  attempts : int;
  hedged : bool;
  hedge_win : bool;
  e2e_cycles : int;
  e2e_ms : float;
  fleet_queue : int;
  backoff : int;
  queue : int;
  gc_queue : int;
  service : int;
  gc_service : int;
}

type t = {
  source : string;  (* the source artefact's schema tag *)
  exact : bool;  (* per-request spans present *)
  count : int;  (* completed requests *)
  cycles_per_ms : float;
  mean_ms : (string * float) list;  (* component -> mean ms *)
  tails : tail list;  (* worst-first *)
  exemplars : (int * tail) list;  (* (decade, span) *)
  tails_json : Json.t list;  (* raw span objects, passed through *)
  exemplars_json : Json.t list;
  dropped : int;  (* ring-dropped events summed over shards *)
}

let tail_of_json s =
  let b = match mem "blame" s with Some b -> b | None -> Json.Obj [] in
  {
    rid = get_int "rid" s;
    shard = get_int "shard" s;
    first = get_int "firstChoice" s;
    epoch = get_int "epoch" s;
    attempts = get_int "attempts" s;
    hedged = get_bool "hedged" s;
    hedge_win = get_bool "hedgeWin" s;
    e2e_cycles = get_int "e2eCycles" s;
    e2e_ms = get_float "e2eMs" s;
    fleet_queue = get_int "fleetQueueCycles" b;
    backoff = get_int "backoffCycles" b;
    queue = get_int "queueCycles" b;
    gc_queue = get_int "gcQueueCycles" b;
    service = get_int "serviceCycles" b;
    gc_service = get_int "gcServiceCycles" b;
  }

(* Exact mode: a report object carrying blame/tails/exemplars blocks
   (a cgcsim-server-v2 report, or a cgcsim-cluster-v3 fleet block). *)
let of_spans ~source ~dropped body =
  let blame = match mem "blame" body with Some b -> b | None -> Json.Obj [] in
  let count = get_int "count" blame in
  let cpm = get_float "cyclesPerMs" blame in
  let mean_of = mem "meanMs" blame in
  let mean k =
    match mean_of with Some m -> get_float k m | None -> 0.0
  in
  let arr k =
    match mem k body with Some (Json.Arr l) -> l | _ -> []
  in
  let tails_json = arr "tails" in
  let exemplars_json = arr "exemplars" in
  {
    source;
    exact = true;
    count;
    cycles_per_ms = cpm;
    mean_ms =
      [
        ("e2e", mean "e2e");
        ("fleetQueue", mean "fleetQueue");
        ("backoff", mean "backoff");
        ("queue", mean "queue");
        ("gcQueue", mean "gcQueue");
        ("service", mean "service");
        ("gcService", mean "gcService");
      ];
    tails = List.map tail_of_json tails_json;
    exemplars =
      List.map (fun s -> (get_int "decade" s, tail_of_json s)) exemplars_json;
    tails_json;
    exemplars_json;
    dropped;
  }

(* Legacy mode: only histogram means are available; the decomposition
   is queueing/service/gcInflation and no per-request chains exist. *)
let of_hists ~source ~count ~dropped lat =
  let m k = match mem k lat with Some h -> get_float "mean" h | None -> 0.0 in
  {
    source;
    exact = false;
    count;
    cycles_per_ms = 0.0;
    mean_ms =
      [
        ("e2e", m "e2e");
        ("queueing", m "queueing");
        ("service", m "service");
        ("gcInflation", m "gcInflation");
      ];
    tails = [];
    exemplars = [];
    tails_json = [];
    exemplars_json = [];
    dropped;
  }

let shard_drops j =
  match mem "perShard" j with
  | Some (Json.Arr shards) ->
      List.fold_left (fun acc s -> acc + get_int "droppedEvents" s) 0 shards
  | _ -> 0

let of_json j =
  match mem "schema" j with
  | Some (Json.Str ("cgcsim-server-v2" as source)) ->
      Ok (of_spans ~source ~dropped:0 j)
  | Some (Json.Str ("cgcsim-cluster-v3" as source)) -> (
      match mem "fleet" j with
      | Some fleet -> Ok (of_spans ~source ~dropped:(shard_drops j) fleet)
      | None -> Error "cgcsim-cluster-v3 report has no fleet block")
  | Some (Json.Str ("cgcsim-server-v1" as source)) ->
      let count =
        match mem "counts" j with Some c -> get_int "completed" c | None -> 0
      in
      let lat =
        match mem "latencyMs" j with Some l -> l | None -> Json.Obj []
      in
      Ok (of_hists ~source ~count ~dropped:0 lat)
  | Some (Json.Str ("cgcsim-cluster-v2" as source)) -> (
      match mem "fleet" j with
      | Some fleet ->
          let count =
            match mem "counts" fleet with
            | Some c -> get_int "completed" c
            | None -> 0
          in
          let lat =
            match mem "latencyMs" fleet with
            | Some l -> l
            | None -> Json.Obj []
          in
          Ok (of_hists ~source ~count ~dropped:(shard_drops j) lat)
      | None -> Error "cgcsim-cluster-v2 report has no fleet block")
  | Some (Json.Str v) ->
      Error
        (Printf.sprintf
           "unsupported report schema %s (want cgcsim-server-v1/v2 or \
            cgcsim-cluster-v2/v3)"
           v)
  | _ -> Error "missing schema tag"

let of_report s =
  match Json.parse s with Error e -> Error e | Ok j -> of_json j

(* ------------------------------ render ---------------------------- *)

let text ?(n = 16) t =
  let b = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "tail forensics: %s, %d completed requests\n" t.source t.count;
  let e2e = match t.mean_ms with (_, e) :: _ -> e | [] -> 0.0 in
  pf "  %-12s %10s %7s\n" "blame" "mean ms" "share";
  List.iter
    (fun (k, v) ->
      pf "  %-12s %10.4f %6.1f%%\n" k v
        (if e2e > 0.0 then 100.0 *. v /. e2e else 0.0))
    t.mean_ms;
  if not t.exact then
    pf
      "  (legacy %s: per-request spans unavailable — histogram means only; \
       re-run with the current binary for exact blame)\n"
      t.source
  else begin
    let shown = take n t.tails in
    pf "  worst %d of %d retained spans:\n" (List.length shown)
      (List.length t.tails);
    List.iteri
      (fun i tl ->
        let ms c =
          if t.cycles_per_ms > 0.0 then
            float_of_int c /. t.cycles_per_ms
          else 0.0
        in
        pf
          "  #%-3d rid %-8d %9.3f ms  shard %d (first %d, epoch %d, %d \
           retries%s)\n"
          (i + 1) tl.rid tl.e2e_ms tl.shard tl.first tl.epoch tl.attempts
          (if tl.hedge_win then ", hedge won"
           else if tl.hedged then ", hedged"
           else "");
        pf
          "       = fleet-q %.3f + backoff %.3f + queue %.3f + gc-queue %.3f \
           + service %.3f + gc-service %.3f\n"
          (ms tl.fleet_queue) (ms tl.backoff) (ms tl.queue) (ms tl.gc_queue)
          (ms tl.service) (ms tl.gc_service))
      shown;
    pf "  exemplars: %d spans across latency decades\n"
      (List.length t.exemplars)
  end;
  Buffer.contents b

let to_json ?(n = 16) t =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("source", Json.Str t.source);
      ("exact", Json.Bool t.exact);
      ("count", Json.Int t.count);
      ("cyclesPerMs", Json.Float t.cycles_per_ms);
      ("droppedEvents", Json.Int t.dropped);
      ( "blameMeanMs",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) t.mean_ms) );
      ("tails", Json.Arr (take n t.tails_json));
      ("exemplars", Json.Arr t.exemplars_json);
    ]

(* ------------------------------- LBO ------------------------------ *)

type lbo_row = {
  label : string;
  group : string;
  latency : bool;  (* latency cell (ms) vs throughput cell (tx/s) *)
  value : float;  (* mean e2e ms, or tx/s *)
  gc_ms : float;  (* mean GC blame, latency cells only *)
  baseline : float;  (* the group's lower-bound-overhead baseline *)
  distilled : float;  (* fractional GC cost above the baseline *)
}

(* One bench cell -> (label, group, latency?, value, gc_ms) or None. *)
let lbo_point cell =
  let workload = get_str "workload" cell in
  let latency_of rep =
    match mem "latencyMs" rep with
    | Some lat ->
        let m k =
          match mem k lat with Some h -> get_float "mean" h | None -> 0.0
        in
        (* Prefer exact blame means when the report carries spans. *)
        let gc =
          match mem "blame" rep with
          | Some blame -> (
              match mem "meanMs" blame with
              | Some mm -> get_float "gcQueue" mm +. get_float "gcService" mm
              | None -> m "gcInflation")
          | None -> m "gcInflation"
        in
        Some (m "e2e", gc)
    | None -> None
  in
  match workload with
  | "serve" -> (
      match mem "server" cell with
      | Some (Json.Obj _ as rep) -> (
          match latency_of rep with
          | Some (e2e, gc) ->
              let label =
                Printf.sprintf "serve-%.0frps" (get_float "ratePerS" rep)
              in
              Some (label, "serve", true, e2e, gc)
          | None -> None)
      | _ -> None)
  | "cluster" -> (
      match mem "cluster" cell with
      | Some rep -> (
          match mem "fleet" rep with
          | Some fleet -> (
              match latency_of fleet with
              | Some (e2e, gc) ->
                  let shards = get_int "shards" cell in
                  let chaos =
                    match mem "chaos" cell with
                    | Some (Json.Str s) -> "-" ^ s
                    | _ -> ""
                  in
                  let label =
                    Printf.sprintf "cluster-%dsh-%.0frps%s" shards
                      (get_float "ratePerS" cell)
                      chaos
                  in
                  Some (label, Printf.sprintf "cluster-%dsh" shards, true, e2e, gc)
              | None -> None)
          | None -> None)
      | _ -> None)
  | "" -> None
  | w ->
      (* Throughput workloads (specjbb, pbob): the cell's tx/s against
         the best config of the same workload shape. *)
      let wh = get_int "warehouses" cell in
      let label =
        Printf.sprintf "%s-%dwh-k0=%.0f" w wh (get_float "k0" cell)
      in
      let tx = get_float "throughput" cell in
      if tx <= 0.0 then None
      else Some (label, Printf.sprintf "%s-%dwh" w wh, false, tx, 0.0)

let lbo_rows points =
  (* Group baselines: for latency groups the lower-bound overhead is the
     best service-only mean (e2e - gc); for throughput groups it is the
     best observed rate.  Serial fold in cell order — deterministic. *)
  let baseline group latency =
    List.fold_left
      (fun acc (_, g, l, v, gc) ->
        if g <> group || l <> latency then acc
        else
          let cand = if latency then v -. gc else v in
          match acc with
          | None -> Some cand
          | Some best ->
              Some (if latency then Float.min best cand else Float.max best cand))
      None points
  in
  List.filter_map
    (fun (label, group, latency, value, gc_ms) ->
      match baseline group latency with
      | Some base when base > 0.0 ->
          let distilled =
            if latency then (value /. base) -. 1.0 else (base /. value) -. 1.0
          in
          Some { label; group; latency; value; gc_ms; baseline = base; distilled }
      | _ -> None)
    points

let lbo_of_bench s =
  match Json.parse s with
  | Error e -> Error e
  | Ok j -> (
      match mem "schema" j with
      | Some (Json.Str "cgcsim-bench-v1") -> (
          match mem "cells" j with
          | Some (Json.Arr cells) ->
              Ok (lbo_rows (List.filter_map lbo_point cells))
          | _ -> Error "bench document has no cells array")
      | Some (Json.Str v) ->
          Error
            (Printf.sprintf "unsupported bench schema %s (want cgcsim-bench-v1)"
               v)
      | _ -> Error "missing schema tag")

(* Single-report LBO: the report is its own group of one, so the
   baseline is its own service-only mean and the distilled cost is the
   GC inflation relative to it. *)
let lbo_of_report s =
  match of_report s with
  | Error e -> Error e
  | Ok t ->
      let e2e = match t.mean_ms with (_, e) :: _ -> e | [] -> 0.0 in
      let gc =
        if t.exact then
          List.fold_left
            (fun acc (k, v) ->
              if k = "gcQueue" || k = "gcService" then acc +. v else acc)
            0.0 t.mean_ms
        else List.fold_left
            (fun acc (k, v) -> if k = "gcInflation" then acc +. v else acc)
            0.0 t.mean_ms
      in
      let base = e2e -. gc in
      Ok
        {
          label = t.source;
          group = t.source;
          latency = true;
          value = e2e;
          gc_ms = gc;
          baseline = base;
          distilled = (if base > 0.0 then (e2e /. base) -. 1.0 else 0.0);
        }

let lbo_text rows =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "LBO-distilled GC cost (baseline = per-group lower-bound overhead)\n";
  pf "  %-28s %-14s %12s %10s %12s %9s\n" "cell" "group" "value" "gc-ms"
    "baseline" "distilled";
  List.iter
    (fun r ->
      pf "  %-28s %-14s %12.3f %10.4f %12.3f %8.1f%%\n" r.label r.group r.value
        r.gc_ms r.baseline (100.0 *. r.distilled))
    rows;
  Buffer.contents b

let lbo_json rows =
  Json.Obj
    [
      ("schema", Json.Str lbo_schema);
      ( "rows",
        Json.Arr
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("cell", Json.Str r.label);
                   ("group", Json.Str r.group);
                   ("metric", Json.Str (if r.latency then "latencyMs" else "txPerS"));
                   ("value", Json.Float r.value);
                   ("gcMs", Json.Float r.gc_ms);
                   ("baseline", Json.Float r.baseline);
                   ("distilled", Json.Float r.distilled);
                 ])
             rows) );
    ]
