(** Derived metrics from a trace: the offline half of the profiler.

    Everything here is computed from an {!Cgc_obs.Event.t} list alone —
    either the live sink of a run that just finished or a Chrome-trace
    file re-parsed by {!Cgc_obs.Export.parse_chrome_json}.  That is the
    point: the paper's headline tables (minimum mutator utilization,
    Table 4's tracing-factor load balance, pause distributions) become
    reproducible from a trace artefact without re-running the workload.

    The load-balance block is defined to coincide with what the collector
    accumulates into {!Cgc_core.Gstats} online: [factor_mean] matches
    [Stats.mean Gstats.tracing_factor] and [fairness] matches
    [Stats.mean Gstats.fairness] (the per-cycle population stddev of
    tracing factors, over cycles with at least two samples), up to the
    1e-6 fixed-point quantisation of the [Incr_factor] event payload and
    float summation order.  This equivalence is asserted by the test
    suite. *)

type tracer = {
  tid : int;
  increments : int;  (** mutator tracing increments performed *)
  busy_ms : float;  (** time inside those increments *)
  slots : int;  (** slots traced by those increments *)
  bg_chunks : int;  (** background tracing chunks (background threads) *)
  bg_slots : int;  (** slots traced by background chunks *)
  gets : int;
  puts : int;
  steals : int;
  defers : int;  (** work-packet traffic attributed to this thread *)
}

type balance = {
  tracers : tracer list;  (** per-thread rows, ascending thread id *)
  busy_mean_ms : float;
  busy_stddev_ms : float;
  busy_cv : float;  (** stddev/mean of per-mutator tracing time *)
  slots_mean : float;
  slots_stddev : float;
  slots_cv : float;  (** same, of per-mutator traced slots *)
  factor_mean : float;  (** mean tracing factor, as Gstats measures it *)
  factor_stddev : float;
  factor_count : int;  (** tracing-factor samples in the trace *)
  fairness : float;  (** mean per-cycle stddev of tracing factors *)
  fairness_cycles : int;  (** cycles contributing a fairness sample *)
}

type pauses = {
  pause_count : int;
  pause_mean_ms : float;
  pause_p50_ms : float;
  pause_p90_ms : float;
  pause_p99_ms : float;
  pause_max_ms : float;
}

type gen_stats = {
  minor_count : int;  (** minor (nursery) collections in the trace *)
  minor_mean_ms : float;
  minor_p50_ms : float;
  minor_p90_ms : float;
  minor_p99_ms : float;
  minor_max_ms : float;
      (** minor-pause distribution, from [Minor_done] span durations —
          each pause stops only the allocating mutator, so these sit in
          a different column than the world-stopping [pauses] above *)
  promoted_slots : int;  (** total slots promoted to the old space *)
}
(** Generational decomposition ([Config.Gen] runs).  All zero when the
    trace contains no minor collections. *)

type phase_row = {
  code : Cgc_obs.Event.code;
  count : int;
  total_ms : float;  (** summed span duration; 0 for instant events *)
}

type mmu_point = {
  window_ms : float;
  mmu : float;  (** minimum mutator utilization over all windows *)
  avg_util : float;
  n_windows : int;
}

type t = {
  wall_ms : float;  (** first event to last event end *)
  n_events : int;
  n_mutators : int;  (** distinct threads that ran tracing increments *)
  n_cycles : int;  (** completed GC cycles in the trace *)
  phases : phase_row list;  (** per-event-code attribution, catalogue order *)
  balance : balance;
  pauses : pauses;  (** stop-the-world (major) pause distribution *)
  gen : gen_stats;  (** minor-pause / promotion decomposition (Gen mode) *)
  mmu : mmu_point list;  (** one point per requested window size *)
}

val default_mmu_windows_ms : float list
(** [[1.0; 5.0; 20.0; 50.0]] — the window sizes reported by default. *)

val analyse :
  ?mmu_windows_ms:float list ->
  cycles_per_us:float ->
  Cgc_obs.Event.t list ->
  t
(** Compute every derived metric over an event list (which must be in
    the stable order {!Cgc_obs.Obs.events} produces).  [cycles_per_us]
    converts cycle timestamps to wall time — pass the recording VM's
    rate, or the one recovered from a parsed trace header.

    Mutator utilization of a window is
    [1 - stw_overlap/w - increment_overlap/(w * n_mutators)], clamped to
    [\[0,1\]]: stop-the-world time robs every mutator, a tracing
    increment robs only the mutator running it. *)

val analyse_events :
  ?mmu_windows_ms:float list ->
  cycles_per_us:float ->
  Cgc_obs.Event.t array ->
  t
(** {!analyse} over the flat array {!Cgc_obs.Obs.events_array} produces.
    Identical results (every pass walks the same order); several times
    faster on large traces, so the hot report/bench paths use this
    form. *)

val utilization_timeline :
  cycles_per_us:float ->
  window_ms:float ->
  Cgc_obs.Event.t list ->
  (float * float) list
(** [(window_start_ms, utilization)] per window, for plotting a
    utilization timeline at one window size.  The trailing partial
    window (if any) is normalised by its actual length. *)
