(** A minimal, deterministic JSON writer.

    The toolchain has no JSON dependency, and none is needed: the
    profiler only {e writes} JSON (the analysis report and the benchmark
    matrix), with object keys in the order given and floats at fixed
    precision, so equal inputs serialise to identical bytes — the same
    determinism contract the Chrome-trace exporter keeps. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of t_float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

and t_float = float
(** Serialised with [%.6f]; non-finite values become [null]. *)

val to_string : ?pretty:bool -> t -> string
(** Compact by default; [pretty] indents with two spaces per level
    (still deterministic). *)

val parse : string -> (t, string) result
(** Strict parser for the subset {!to_string} emits (used by schema
    round-trip checks on the versioned artefacts).  Number literals
    containing ['.'], ['e'] or ['E'] parse as [Float], all others as
    [Int] — so [parse (to_string v)] re-serialises to the same bytes.
    Rejects trailing garbage and malformed input with a message. *)

val member : string -> t -> t option
(** [member k (Obj kvs)] looks up the first binding of [k]; [None] on
    non-objects. *)
