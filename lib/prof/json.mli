(** A minimal, deterministic JSON writer.

    The toolchain has no JSON dependency, and none is needed: the
    profiler only {e writes} JSON (the analysis report and the benchmark
    matrix), with object keys in the order given and floats at fixed
    precision, so equal inputs serialise to identical bytes — the same
    determinism contract the Chrome-trace exporter keeps. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of t_float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

and t_float = float
(** Serialised with [%.6f]; non-finite values become [null]. *)

val to_string : ?pretty:bool -> t -> string
(** Compact by default; [pretty] indents with two spaces per level
    (still deterministic). *)
