type probe = { every : int; fn : unit -> float; s : Series.t }

type t = {
  interval : int;
  capacity : int;
  mutable probes : probe list;  (* reverse registration order *)
  mutable due : int;
  mutable nticks : int;
}

let create ~interval ?(capacity = 8192) () =
  { interval = max 1 interval; capacity; probes = []; due = 0; nticks = 0 }

let interval t = t.interval

let add_probe t ~name ?(every = 1) fn =
  let s = Series.create ~capacity:t.capacity ~name () in
  t.probes <- { every = max 1 every; fn; s } :: t.probes

let tick t ~now =
  if now >= t.due then begin
    (* One sample per tick, stamped at the latest interval boundary, so
       a clock that jumps several intervals at once (a long pause, an
       idle stretch) does not fabricate a burst of identical samples. *)
    let ts = now / t.interval * t.interval in
    let n = t.nticks in
    t.nticks <- n + 1;
    List.iter
      (fun p -> if n mod p.every = 0 then Series.add p.s ~ts (p.fn ()))
      (List.rev t.probes);
    t.due <- ts + t.interval
  end

let ticks t = t.nticks
let series t = List.rev_map (fun p -> p.s) t.probes
let find t name = List.find_opt (fun s -> Series.name s = name) (series t)

let clear t =
  List.iter (fun p -> Series.clear p.s) t.probes;
  t.nticks <- 0;
  t.due <- 0
