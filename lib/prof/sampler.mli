(** The online sampler: periodic snapshots of live simulator state.

    Unlike the event sink — which records what the collector {e does} —
    the sampler records what the system {e looks like} at a fixed cadence:
    how many mutators are runnable, how full the packet pool is, how many
    cards are dirty.  The VM wires {!tick} into the scheduler's
    [on_advance] hook, so sampling happens host-side between simulated
    instructions and charges no simulated cycles.

    Timestamps are aligned to multiples of the sampling interval
    regardless of when the clock actually advances past a deadline, so
    two equal-seed runs produce identical series even if their event
    timing differs at sub-interval granularity (it does not, but the
    alignment also makes series from different runs directly
    comparable). *)

type t

val create : interval:int -> ?capacity:int -> unit -> t
(** [interval] is the sampling period in simulated cycles; [capacity]
    (default 8192) is the per-probe {!Series} window. *)

val interval : t -> int

val add_probe : t -> name:string -> ?every:int -> (unit -> float) -> unit
(** Register a named probe.  [every] (default 1) samples the probe only
    on every [every]-th sampling tick — for probes whose read is
    expensive (the card-table dirty count walks the whole table). *)

val tick : t -> now:int -> unit
(** Advance to simulated time [now]; takes at most one sample, at the
    latest interval boundary [<= now] not yet sampled.  Intended as a
    {!Cgc_sim.Sched.on_advance} hook. *)

val ticks : t -> int
(** Sampling points taken so far. *)

val series : t -> Series.t list
(** All probe series, in probe-registration order. *)

val find : t -> string -> Series.t option

val clear : t -> unit
(** Reset every series and the tick counter (used by
    [Vm.reset_stats] when a measured run discards its warmup). *)
