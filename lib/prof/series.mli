(** A bounded time series: [(timestamp, value)] points in a ring.

    The online sampler ({!Sampler}) appends one point per probe per
    sampling tick; like the event rings in {!Cgc_obs.Ring}, the buffer
    is bounded so an arbitrarily long run cannot exhaust host memory —
    when full, the oldest point is overwritten and a drop counter is
    bumped.  Aggregate statistics ([count]/[min]/[max]/[mean]) are
    maintained over {e every} point ever added, so they stay exact even
    after the window has slid past the data. *)

type t

val create : ?capacity:int -> name:string -> unit -> t
(** [capacity] (default 8192) bounds the retained window. *)

val name : t -> string

val add : t -> ts:int -> float -> unit
(** Append a point at simulated time [ts] (cycles).  Overwrites the
    oldest retained point when the ring is full. *)

val length : t -> int
(** Points currently retained. *)

val count : t -> int
(** Points ever added, including overwritten ones. *)

val dropped : t -> int
(** Points overwritten by ring wrap-around ([count - length]). *)

val to_list : t -> (int * float) list
(** The retained window, oldest first. *)

val min : t -> float
(** Smallest value ever added; [0.0] when empty. *)

val max : t -> float
(** Largest value ever added; [0.0] when empty. *)

val mean : t -> float
(** Mean over every value ever added; [0.0] when empty. *)

val last : t -> (int * float) option
(** The newest point, if any. *)

val clear : t -> unit
(** Forget all points and reset the aggregate statistics. *)
