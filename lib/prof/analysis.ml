module Event = Cgc_obs.Event
module Stats = Cgc_util.Stats

type tracer = {
  tid : int;
  increments : int;
  busy_ms : float;
  slots : int;
  bg_chunks : int;
  bg_slots : int;
  gets : int;
  puts : int;
  steals : int;
  defers : int;
}

type balance = {
  tracers : tracer list;
  busy_mean_ms : float;
  busy_stddev_ms : float;
  busy_cv : float;
  slots_mean : float;
  slots_stddev : float;
  slots_cv : float;
  factor_mean : float;
  factor_stddev : float;
  factor_count : int;
  fairness : float;
  fairness_cycles : int;
}

type pauses = {
  pause_count : int;
  pause_mean_ms : float;
  pause_p50_ms : float;
  pause_p90_ms : float;
  pause_p99_ms : float;
  pause_max_ms : float;
}

type gen_stats = {
  minor_count : int;
  minor_mean_ms : float;
  minor_p50_ms : float;
  minor_p90_ms : float;
  minor_p99_ms : float;
  minor_max_ms : float;
  promoted_slots : int;
}

type phase_row = { code : Event.code; count : int; total_ms : float }

type mmu_point = {
  window_ms : float;
  mmu : float;
  avg_util : float;
  n_windows : int;
}

type t = {
  wall_ms : float;
  n_events : int;
  n_mutators : int;
  n_cycles : int;
  phases : phase_row list;
  balance : balance;
  pauses : pauses;
  gen : gen_stats;
  mmu : mmu_point list;
}

let default_mmu_windows_ms = [ 1.0; 5.0; 20.0; 50.0 ]

(* ------------------------------------------------------------------ *)
(* Per-thread tracing work                                             *)

type acc = {
  mutable a_increments : int;
  mutable a_busy : int;  (* cycles *)
  mutable a_slots : int;
  mutable a_bg_chunks : int;
  mutable a_bg_slots : int;
  mutable a_gets : int;
  mutable a_puts : int;
  mutable a_steals : int;
  mutable a_defers : int;
}

(* All passes below walk a flat [Event.t array] — the form
   {!Cgc_obs.Obs.events_array} produces — in index order, which is
   exactly the order the list-based implementation walked, so every
   float accumulation sees the same sequence and the results are
   bit-identical.  The list entry points below are thin wrappers. *)

let tracers_of ~cycles_per_ms (events : Event.t array) =
  let tbl : (int, acc) Hashtbl.t = Hashtbl.create 16 in
  let get tid =
    match Hashtbl.find_opt tbl tid with
    | Some a -> a
    | None ->
        let a =
          { a_increments = 0; a_busy = 0; a_slots = 0; a_bg_chunks = 0;
            a_bg_slots = 0; a_gets = 0; a_puts = 0; a_steals = 0;
            a_defers = 0 }
        in
        Hashtbl.add tbl tid a;
        a
  in
  Array.iter
    (fun (e : Event.t) ->
      match e.code with
      | Event.Mut_increment ->
          let a = get e.tid in
          a.a_increments <- a.a_increments + 1;
          a.a_busy <- a.a_busy + max 0 e.dur;
          a.a_slots <- a.a_slots + e.arg
      | Event.Bg_chunk ->
          let a = get e.tid in
          a.a_bg_chunks <- a.a_bg_chunks + 1;
          a.a_bg_slots <- a.a_bg_slots + e.arg
      | Event.Packet_get -> (get e.tid).a_gets <- (get e.tid).a_gets + 1
      | Event.Packet_put -> (get e.tid).a_puts <- (get e.tid).a_puts + 1
      | Event.Packet_steal ->
          (get e.tid).a_steals <- (get e.tid).a_steals + 1
      | Event.Packet_defer ->
          (get e.tid).a_defers <- (get e.tid).a_defers + 1
      | _ -> ())
    events;
  Hashtbl.fold
    (fun tid a rows ->
      {
        tid;
        increments = a.a_increments;
        busy_ms = float_of_int a.a_busy /. cycles_per_ms;
        slots = a.a_slots;
        bg_chunks = a.a_bg_chunks;
        bg_slots = a.a_bg_slots;
        gets = a.a_gets;
        puts = a.a_puts;
        steals = a.a_steals;
        defers = a.a_defers;
      }
      :: rows)
    tbl []
  |> List.sort (fun a b -> compare a.tid b.tid)

(* ------------------------------------------------------------------ *)
(* Load balance: Table 4 from the event stream alone                   *)

let balance_of ~cycles_per_ms (events : Event.t array) =
  let tracers = tracers_of ~cycles_per_ms events in
  let spread f rows =
    (* Mean/stddev/CV across the mutator tracers only: background
       threads trace chunks, not assigned increments, so they are not
       load-balance participants in the Table 4 sense. *)
    let s = Stats.create () in
    List.iter (fun r -> if r.increments > 0 then Stats.add s (f r)) rows;
    let m = Stats.mean s and sd = Stats.stddev s in
    (m, sd, if m > 0.0 then sd /. m else 0.0)
  in
  let busy_mean_ms, busy_stddev_ms, busy_cv =
    spread (fun r -> r.busy_ms) tracers
  in
  let slots_mean, slots_stddev, slots_cv =
    spread (fun r -> float_of_int r.slots) tracers
  in
  (* Tracing factors arrive as Incr_factor instants (fixed-point, x1e6);
     fairness reproduces the collector's definition: the population
     stddev of the factors within one GC cycle, averaged over cycles
     that collected at least two samples. *)
  let all = Stats.create () and fair = Stats.create () in
  let cycle = ref (Stats.create ()) in
  Array.iter
    (fun (e : Event.t) ->
      match e.code with
      | Event.Cycle_start -> cycle := Stats.create ()
      | Event.Incr_factor ->
          let f = float_of_int e.arg /. 1e6 in
          Stats.add all f;
          Stats.add !cycle f
      | Event.Cycle_end ->
          if Stats.count !cycle >= 2 then Stats.add fair (Stats.stddev !cycle);
          cycle := Stats.create ()
      | _ -> ())
    events;
  {
    tracers;
    busy_mean_ms;
    busy_stddev_ms;
    busy_cv;
    slots_mean;
    slots_stddev;
    slots_cv;
    factor_mean = Stats.mean all;
    factor_stddev = Stats.stddev all;
    factor_count = Stats.count all;
    fairness = Stats.mean fair;
    fairness_cycles = Stats.count fair;
  }

(* ------------------------------------------------------------------ *)
(* Windowed mutator utilization (MMU)                                  *)

let bounds (events : Event.t array) =
  Array.fold_left
    (fun (t0, t1) (e : Event.t) ->
      (min t0 e.ts, max t1 (e.ts + max 0 e.dur)))
    (max_int, min_int) events

(* Spread the [spans] (cycle intervals) over [n] windows of width [w]
   cycles starting at [t0], accumulating the overlap with each window
   into [into].  The final window may extend past [t1]; callers
   normalise by actual window length. *)
let overlaps ~t0 ~w ~n spans into =
  List.iter
    (fun (a, b) ->
      if b > a then begin
        let first = max 0 ((a - t0) / w) in
        let last = min (n - 1) ((b - 1 - t0) / w) in
        for k = first to last do
          let ws = t0 + (k * w) in
          let o = min b (ws + w) - max a ws in
          if o > 0 then into.(k) <- into.(k) +. float_of_int o
        done
      end)
    spans

let window_utils ~t0 ~t1 ~w ~n_mut ~stw ~incr =
  let n = max 1 ((t1 - t0 + w - 1) / w) in
  let stw_o = Array.make n 0.0 and incr_o = Array.make n 0.0 in
  overlaps ~t0 ~w ~n stw stw_o;
  overlaps ~t0 ~w ~n incr incr_o;
  Array.init n (fun k ->
      let ws = t0 + (k * w) in
      let len = float_of_int (min w (t1 - ws)) in
      if len <= 0.0 then 1.0
      else
        let stolen =
          (stw_o.(k) /. len)
          +.
          if n_mut = 0 then 0.0
          else incr_o.(k) /. (len *. float_of_int n_mut)
        in
        Float.max 0.0 (Float.min 1.0 (1.0 -. stolen)))

let spans_of code (events : Event.t array) =
  (* Right fold so the spans come out in index (i.e. timestamp) order,
     matching what [List.filter_map] produced. *)
  Array.fold_right
    (fun (e : Event.t) acc ->
      if e.code = code && e.dur > 0 then (e.ts, e.ts + e.dur) :: acc else acc)
    events []

let mutator_tids (events : Event.t array) =
  List.sort_uniq compare
    (Array.fold_right
       (fun (e : Event.t) acc ->
         if e.code = Event.Mut_increment then e.tid :: acc else acc)
       events [])

let timeline_of_array ~cycles_per_us ~window_ms (events : Event.t array) =
  if Array.length events = 0 then []
  else begin
      let cycles_per_ms = cycles_per_us *. 1000.0 in
      let t0, t1 = bounds events in
      let w = max 1 (int_of_float (window_ms *. cycles_per_ms)) in
      let stw = spans_of Event.Stw_pause events in
      let incr = spans_of Event.Mut_increment events in
      let n_mut = List.length (mutator_tids events) in
      let utils = window_utils ~t0 ~t1 ~w ~n_mut ~stw ~incr in
      Array.to_list
        (Array.mapi
           (fun k u ->
             (float_of_int (t0 + (k * w)) /. cycles_per_ms, u))
           utils)
  end

let utilization_timeline ~cycles_per_us ~window_ms events =
  timeline_of_array ~cycles_per_us ~window_ms (Array.of_list events)

(* ------------------------------------------------------------------ *)
(* The full analysis                                                   *)

let analyse_events ?(mmu_windows_ms = default_mmu_windows_ms) ~cycles_per_us
    (events : Event.t array) =
  let cycles_per_ms = cycles_per_us *. 1000.0 in
  let n_events = Array.length events in
  let t0, t1 = if n_events = 0 then (0, 0) else bounds events in
  let wall_ms = float_of_int (t1 - t0) /. cycles_per_ms in
  (* Per-code phase attribution. *)
  let counts = Hashtbl.create 32 in
  Array.iter
    (fun (e : Event.t) ->
      let c, d =
        match Hashtbl.find_opt counts e.code with
        | Some (c, d) -> (c, d)
        | None -> (0, 0)
      in
      Hashtbl.replace counts e.code (c + 1, d + max 0 e.dur))
    events;
  let phases =
    List.filter_map
      (fun code ->
        match Hashtbl.find_opt counts code with
        | Some (count, dur) ->
            Some { code; count; total_ms = float_of_int dur /. cycles_per_ms }
        | None -> None)
      Event.all_codes
  in
  (* Pause distribution (exact nearest-rank percentiles). *)
  let ps = Stats.create () in
  Array.iter
    (fun (e : Event.t) ->
      if e.code = Event.Stw_pause && e.dur >= 0 then
        Stats.add ps (float_of_int e.dur /. cycles_per_ms))
    events;
  let pauses =
    {
      pause_count = Stats.count ps;
      pause_mean_ms = Stats.mean ps;
      pause_p50_ms = Stats.percentile ps 50.0;
      pause_p90_ms = Stats.percentile ps 90.0;
      pause_p99_ms = Stats.percentile ps 99.0;
      pause_max_ms = (if Stats.count ps = 0 then 0.0 else Stats.max ps);
    }
  in
  (* Minor (nursery) pause distribution and promotion volume, from the
     generational front end's Minor_done spans.  All-zero for traces of
     non-Gen runs — the record is additive, not a mode switch. *)
  let ms = Stats.create () in
  let promoted = ref 0 in
  Array.iter
    (fun (e : Event.t) ->
      if e.code = Event.Minor_done && e.dur >= 0 then begin
        Stats.add ms (float_of_int e.dur /. cycles_per_ms);
        promoted := !promoted + e.arg
      end)
    events;
  let gen =
    {
      minor_count = Stats.count ms;
      minor_mean_ms = Stats.mean ms;
      minor_p50_ms = Stats.percentile ms 50.0;
      minor_p90_ms = Stats.percentile ms 90.0;
      minor_p99_ms = Stats.percentile ms 99.0;
      minor_max_ms = (if Stats.count ms = 0 then 0.0 else Stats.max ms);
      promoted_slots = !promoted;
    }
  in
  (* MMU curve. *)
  let stw = spans_of Event.Stw_pause events in
  let incr = spans_of Event.Mut_increment events in
  let muts = mutator_tids events in
  let n_mut = List.length muts in
  let mmu =
    if n_events = 0 then []
    else
      List.map
        (fun window_ms ->
          let w = max 1 (int_of_float (window_ms *. cycles_per_ms)) in
          let utils = window_utils ~t0 ~t1 ~w ~n_mut ~stw ~incr in
          let s = Stats.create () in
          Array.iter (Stats.add s) utils;
          {
            window_ms;
            mmu = (if Stats.count s = 0 then 1.0 else Stats.min s);
            avg_util = Stats.mean s;
            n_windows = Array.length utils;
          })
        mmu_windows_ms
  in
  let n_cycles =
    Array.fold_left
      (fun acc (e : Event.t) -> if e.code = Event.Cycle_end then acc + 1 else acc)
      0 events
  in
  {
    wall_ms;
    n_events;
    n_mutators = n_mut;
    n_cycles;
    phases;
    balance = balance_of ~cycles_per_ms events;
    pauses;
    gen;
    mmu;
  }

let analyse ?mmu_windows_ms ~cycles_per_us events =
  analyse_events ?mmu_windows_ms ~cycles_per_us (Array.of_list events)
