(** Tail forensics and LBO-distilled GC cost over serialised reports.

    The [cgcsim analyze --tails/--lbo] back end.  {!of_report} accepts
    every latency-bearing artefact the CLI writes — [cgcsim-server-v1]
    / [v2] and [cgcsim-cluster-v2] / [v3] — and normalises it into one
    view: the fleet-wide blame decomposition plus the worst-N causal
    chains.  Reports carrying exact spans (server v2, cluster v3)
    render per-request chains whose six blame components sum exactly to
    the request's end-to-end cycles; the legacy schemas degrade to a
    histogram-mean decomposition with an explicit note.

    {!lbo_of_bench} implements the lower-bound-overhead methodology of
    "Distilling the Real Cost of Production Garbage Collectors" on a
    [cgcsim-bench-v1] document: cells are grouped by workload shape,
    each group's baseline is its best service-only latency (mean e2e
    minus mean GC blame) or best throughput, and every cell's distilled
    GC cost is its fractional distance above that baseline.

    All output is derived serially from already-merged artefacts and
    every float is printed with a fixed format, so both the text and
    JSON renderings are byte-identical at any [--jobs]. *)

val schema : string
(** ["cgcsim-tails-v1"]. *)

val lbo_schema : string
(** ["cgcsim-lbo-v1"]. *)

type tail = {
  rid : int;  (** fleet-unique request id *)
  shard : int;  (** shard that served it *)
  first : int;  (** router's first-choice shard *)
  epoch : int;  (** routing epoch at placement *)
  attempts : int;  (** retries before placement *)
  hedged : bool;
  hedge_win : bool;
  e2e_cycles : int;
  e2e_ms : float;
  fleet_queue : int;  (** blame components, cycles; sum = e2e *)
  backoff : int;
  queue : int;
  gc_queue : int;
  service : int;
  gc_service : int;
}

type t = {
  source : string;  (** the source artefact's schema tag *)
  exact : bool;  (** per-request spans present (v2 server / v3 cluster) *)
  count : int;  (** completed requests *)
  cycles_per_ms : float;
  mean_ms : (string * float) list;  (** component -> mean ms, e2e first *)
  tails : tail list;  (** worst-first *)
  exemplars : (int * tail) list;  (** (latency decade, span) *)
  tails_json : Json.t list;
      (** raw span objects, passed through verbatim into {!to_json} *)
  exemplars_json : Json.t list;
  dropped : int;  (** ring-dropped events summed over shards *)
}

val of_json : Json.t -> (t, string) result
val of_report : string -> (t, string) result
(** Parse a serialised report and dispatch on its schema tag. *)

val text : ?n:int -> t -> string
(** Blame decomposition table plus the worst-[n] (default 16) causal
    chains, one ["= fleet-q + backoff + queue + gc-queue + service +
    gc-service"] line each. *)

val to_json : ?n:int -> t -> Json.t
(** [cgcsim-tails-v1]: blame means, the worst-[n] raw span objects and
    the exemplar reservoir, copied verbatim from the source report. *)

type lbo_row = {
  label : string;  (** bench-cell label, reconstructed from its fields *)
  group : string;  (** baseline group (same workload shape) *)
  latency : bool;  (** latency cell (ms) vs throughput cell (tx/s) *)
  value : float;  (** mean e2e ms, or tx/s *)
  gc_ms : float;  (** mean GC blame, latency cells only *)
  baseline : float;  (** the group's lower-bound baseline *)
  distilled : float;  (** fractional GC cost above the baseline *)
}

val lbo_of_bench : string -> (lbo_row list, string) result
(** Distill a [cgcsim-bench-v1] document; cells without a latency or
    throughput signal are skipped. *)

val lbo_of_report : string -> (lbo_row, string) result
(** Single-report distillation: the report is its own group of one, so
    the baseline is its own service-only mean. *)

val lbo_text : lbo_row list -> string
val lbo_json : lbo_row list -> Json.t
