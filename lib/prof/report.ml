module Table = Cgc_util.Table
module Event = Cgc_obs.Event

let analysis_schema = "cgcsim-analysis-v1"

let summary ?(dropped = 0) (a : Analysis.t) =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  if dropped > 0 then
    line
      "WARNING: %d events were dropped by ring overflow before export; \
       derived metrics undercount the run's early history." dropped;
  line "=== trace analysis ===";
  line "wall %.1f ms; %d events; %d GC cycles; %d mutator tracers" a.wall_ms
    a.n_events a.n_cycles a.n_mutators;
  (* MMU curve. *)
  let t = Table.create ~title:"Mutator utilization (MMU)"
      ~header:[ "window ms"; "min util"; "avg util"; "windows" ]
  in
  List.iter
    (fun (p : Analysis.mmu_point) ->
      Table.add_row t
        [ Table.f1 p.window_ms; Table.fpct p.mmu; Table.fpct p.avg_util;
          string_of_int p.n_windows ])
    a.mmu;
  Buffer.add_string b (Table.render t);
  Buffer.add_char b '\n';
  (* Per-thread tracing work. *)
  let t = Table.create ~title:"Tracing work by thread"
      ~header:[ "tid"; "incrs"; "busy ms"; "slots"; "bg chunks"; "bg slots";
                "gets"; "puts"; "steals"; "defers" ]
  in
  List.iter
    (fun (r : Analysis.tracer) ->
      Table.add_row t
        [ string_of_int r.tid; string_of_int r.increments;
          Table.f1 r.busy_ms; string_of_int r.slots;
          string_of_int r.bg_chunks; string_of_int r.bg_slots;
          string_of_int r.gets; string_of_int r.puts;
          string_of_int r.steals; string_of_int r.defers ])
    a.balance.tracers;
  Buffer.add_string b (Table.render t);
  Buffer.add_char b '\n';
  let bal = a.balance in
  line "load balance: busy cv %s  slots cv %s  (stddev/mean across mutators)"
    (Table.f3 bal.busy_cv) (Table.f3 bal.slots_cv);
  line
    "tracing factor: mean %s  stddev %s  (%d samples); fairness %s over %d \
     cycles"
    (Table.f3 bal.factor_mean) (Table.f3 bal.factor_stddev) bal.factor_count
    (Table.f3 bal.fairness) bal.fairness_cycles;
  let p = a.pauses in
  line "pauses: n=%d  mean %s ms  p50 %s  p90 %s  p99 %s  max %s"
    p.pause_count (Table.f2 p.pause_mean_ms) (Table.f2 p.pause_p50_ms)
    (Table.f2 p.pause_p90_ms) (Table.f2 p.pause_p99_ms)
    (Table.f2 p.pause_max_ms);
  let g = a.gen in
  if g.minor_count > 0 then
    line
      "minor pauses: n=%d  mean %s ms  p50 %s  p90 %s  p99 %s  max %s; \
       promoted %d slots (one-mutator pauses, not world stops)"
      g.minor_count (Table.f2 g.minor_mean_ms) (Table.f2 g.minor_p50_ms)
      (Table.f2 g.minor_p90_ms) (Table.f2 g.minor_p99_ms)
      (Table.f2 g.minor_max_ms) g.promoted_slots;
  (* Per-event attribution. *)
  let t = Table.create ~title:"Event attribution"
      ~header:[ "event"; "count"; "total ms"; "% of wall" ]
  in
  List.iter
    (fun (r : Analysis.phase_row) ->
      Table.add_row t
        [ Event.name r.code; string_of_int r.count; Table.f1 r.total_ms;
          (if a.wall_ms > 0.0 then Table.fpct (r.total_ms /. a.wall_ms)
           else "-") ])
    a.phases;
  Buffer.add_string b (Table.render t);
  Buffer.contents b

let to_json ?(label = "") ?(emitted = 0) ?(dropped = 0) (a : Analysis.t) =
  let open Json in
  let bal = a.balance in
  let p = a.pauses in
  Obj
    [
      ("schema", Str analysis_schema);
      ("label", Str label);
      ("wallMs", Float a.wall_ms);
      ("events", Int a.n_events);
      ("emitted", Int emitted);
      ("dropped", Int dropped);
      ("cycles", Int a.n_cycles);
      ("mutators", Int a.n_mutators);
      ( "mmu",
        Arr
          (List.map
             (fun (m : Analysis.mmu_point) ->
               Obj
                 [
                   ("windowMs", Float m.window_ms);
                   ("min", Float m.mmu);
                   ("avg", Float m.avg_util);
                   ("windows", Int m.n_windows);
                 ])
             a.mmu) );
      ( "pauses",
        Obj
          [
            ("count", Int p.pause_count);
            ("meanMs", Float p.pause_mean_ms);
            ("p50Ms", Float p.pause_p50_ms);
            ("p90Ms", Float p.pause_p90_ms);
            ("p99Ms", Float p.pause_p99_ms);
            ("maxMs", Float p.pause_max_ms);
          ] );
      (* Additive fields: same cgcsim-analysis-v1 schema, all-zero for
         traces without minor collections; consumers of older reports
         never see them and new consumers tolerate their absence. *)
      ( "minorPauses",
        Obj
          [
            ("count", Int a.gen.minor_count);
            ("meanMs", Float a.gen.minor_mean_ms);
            ("p50Ms", Float a.gen.minor_p50_ms);
            ("p90Ms", Float a.gen.minor_p90_ms);
            ("p99Ms", Float a.gen.minor_p99_ms);
            ("maxMs", Float a.gen.minor_max_ms);
            ("promotedSlots", Int a.gen.promoted_slots);
          ] );
      ( "loadBalance",
        Obj
          [
            ("busyMeanMs", Float bal.busy_mean_ms);
            ("busyStddevMs", Float bal.busy_stddev_ms);
            ("busyCv", Float bal.busy_cv);
            ("slotsMean", Float bal.slots_mean);
            ("slotsStddev", Float bal.slots_stddev);
            ("slotsCv", Float bal.slots_cv);
            ("factorMean", Float bal.factor_mean);
            ("factorStddev", Float bal.factor_stddev);
            ("factorCount", Int bal.factor_count);
            ("fairness", Float bal.fairness);
            ("fairnessCycles", Int bal.fairness_cycles);
          ] );
      ( "tracers",
        Arr
          (List.map
             (fun (r : Analysis.tracer) ->
               Obj
                 [
                   ("tid", Int r.tid);
                   ("increments", Int r.increments);
                   ("busyMs", Float r.busy_ms);
                   ("slots", Int r.slots);
                   ("bgChunks", Int r.bg_chunks);
                   ("bgSlots", Int r.bg_slots);
                   ("gets", Int r.gets);
                   ("puts", Int r.puts);
                   ("steals", Int r.steals);
                   ("defers", Int r.defers);
                 ])
             bal.tracers) );
      ( "phases",
        Arr
          (List.map
             (fun (r : Analysis.phase_row) ->
               Obj
                 [
                   ("event", Str (Event.name r.code));
                   ("count", Int r.count);
                   ("totalMs", Float r.total_ms);
                 ])
             a.phases) );
    ]
