module Heap = Cgc_heap.Heap
module Arena = Cgc_heap.Arena
module Alloc_bits = Cgc_heap.Alloc_bits
module Freelist = Cgc_heap.Freelist
module Machine = Cgc_smp.Machine
module Cost = Cgc_smp.Cost
module Bitvec = Cgc_util.Bitvec
module Obs = Cgc_obs.Obs
module Obs_event = Cgc_obs.Event

type region = {
  lo : int;
  hi : int;
  mutable gaps : (int * int) list; (* reversed (addr, len) *)
  mutable first_mark : int; (* max_int when the region has no marks *)
  mutable last_end : int; (* end of last live object; -1 when no marks *)
  mutable live : int;
}

let charge_scan heap ~lo ~hi =
  let mach = Heap.machine heap in
  let words = ((hi - lo) / 62) + 1 in
  Machine.charge mach (words * mach.Machine.cost.Cost.sweep_word)

let sweep_region heap ~lo ~hi =
  let mach = Heap.machine heap in
  let t0 = Machine.now mach in
  let finish r =
    Obs.span mach.Machine.obs ~arg:r.live ~start:t0 Obs_event.Sweep_chunk;
    r
  in
  let r = { lo; hi; gaps = []; first_mark = max_int; last_end = -1; live = 0 } in
  let mark = Heap.mark_bits heap in
  let arena = Heap.arena heap in
  charge_scan heap ~lo ~hi;
  (* Gap enumeration over word-level runs of mark bits: every set bit in
     [lo, hi) is a candidate object head (runs longer than one bit are
     adjacent small objects).  A head inside the extent of the object we
     just accepted is skipped, which is exactly what the jump to
     [next_set (head + size)] did in the byte-at-a-time formulation. *)
  let cur_end = ref (-1) in
  Bitvec.fold_set_ranges mark ~lo ~hi ~init:()
    ~f:(fun () pos len ->
      for m = pos to pos + len - 1 do
        if m >= !cur_end then begin
          if r.first_mark = max_int then r.first_mark <- m
          else if m > !cur_end then r.gaps <- (!cur_end, m - !cur_end) :: r.gaps;
          let size = Arena.size_of arena m in
          r.live <- r.live + size;
          cur_end := m + size
        end
      done);
  if r.first_mark <> max_int then r.last_end <- !cur_end;
  Machine.flush mach;
  finish r

let add_free heap ~addr ~size =
  let mach = Heap.machine heap in
  Machine.charge mach mach.Machine.cost.Cost.sweep_chunk;
  Alloc_bits.clear_range (Heap.alloc_bits heap) addr size;
  Freelist.add (Heap.freelist heap) ~addr ~size

let merge ?limit heap regions =
  let fl = Heap.freelist heap in
  Freelist.clear fl;
  let prev_end = ref 1 in
  let live = ref 0 in
  Array.iter
    (fun r ->
      if r.first_mark <> max_int then begin
        if r.first_mark > !prev_end then
          add_free heap ~addr:!prev_end ~size:(r.first_mark - !prev_end);
        List.iter
          (fun (addr, size) -> add_free heap ~addr ~size)
          (List.rev r.gaps);
        live := !live + r.live;
        prev_end := max !prev_end r.last_end
      end)
    regions;
  let n = match limit with Some l -> l | None -> Heap.nslots heap in
  if n > !prev_end then add_free heap ~addr:!prev_end ~size:(n - !prev_end);
  Machine.flush (Heap.machine heap);
  !live

let regions ~nslots ~workers =
  let workers = max 1 workers in
  let span = (nslots - 1 + workers - 1) / workers in
  Array.init workers (fun i ->
      let lo = 1 + (i * span) in
      let hi = min nslots (lo + span) in
      (lo, hi))

type lazy_t = {
  mutable pos : int;
  mutable prev_end : int;
  mutable llive : int;
  mutable fin : bool;
}

let lazy_begin heap =
  Freelist.clear (Heap.freelist heap);
  { pos = 1; prev_end = 1; llive = 0; fin = false }

let lazy_step heap lz ~max_slots =
  if lz.fin then false
  else begin
    let n = Heap.nslots heap in
    let pos0 = lz.pos in
    let hi = min n (lz.pos + max_slots) in
    let mark = Heap.mark_bits heap in
    let arena = Heap.arena heap in
    charge_scan heap ~lo:lz.pos ~hi;
    (* Same word-level gap enumeration as [sweep_region], windowed: walk
       the runs of mark bits in [start, hi), emitting each free gap as a
       chunk.  [crossed] records that the last object ran past the window
       edge — in that case the cursor parks at its end and no partial run
       is emitted, matching the cursor-based formulation exactly. *)
    let start = max lz.pos lz.prev_end in
    let crossed = ref false in
    Bitvec.fold_set_ranges mark ~lo:start ~hi ~init:()
      ~f:(fun () pos len ->
        for m = pos to pos + len - 1 do
          if m >= lz.prev_end then begin
            if m > lz.prev_end then
              add_free heap ~addr:lz.prev_end ~size:(m - lz.prev_end);
            let size = Arena.size_of arena m in
            lz.llive <- lz.llive + size;
            lz.prev_end <- m + size;
            lz.pos <- m + size;
            if lz.pos >= hi then crossed := true
          end
        done);
    if not !crossed then begin
      (* Emit the partial free run up to the window edge.  This may
         split a long run across steps; the resulting chunks are still
         usable and the fragmentation washes out at the next full
         sweep. *)
      if hi > lz.prev_end then
        add_free heap ~addr:lz.prev_end ~size:(hi - lz.prev_end);
      lz.prev_end <- max lz.prev_end hi;
      lz.pos <- hi;
      if hi >= n then lz.fin <- true
    end;
    Machine.flush (Heap.machine heap);
    Obs.instant
      (Heap.machine heap).Machine.obs
      ~arg:(lz.pos - pos0) Obs_event.Sweep_chunk;
    true
  end

let lazy_finished lz = lz.fin
let lazy_pos lz = lz.pos
let lazy_live lz = lz.llive

let lazy_finish heap lz =
  while not lz.fin do
    ignore (lazy_step heap lz ~max_slots:65536)
  done
