type mode = Stw | Cgc | Gen

type load_balance = Packets | Stealing

type t = {
  mode : mode;
  k0 : float;
  kmax_factor : float;
  corrective : float;
  ewma_alpha : float;
  n_packets : int;
  packet_capacity : int;
  n_background : int;
  gc_workers : int;
  cache_slots : int;
  large_object_slots : int;
  card_passes : int;
  lazy_sweep : bool;
  load_balance : load_balance;
  initial_l_fraction : float;
  initial_m_fraction : float;
  bg_chunk : int;
  defer_protocol : bool;
  compaction : bool;
  evac_fraction : float;
  nursery_fraction : float;
  faults : Cgc_fault.Fault.t;
  verify : bool;
}

let default =
  {
    mode = Cgc;
    k0 = 8.0;
    kmax_factor = 2.0;
    corrective = 0.5;
    ewma_alpha = 0.5;
    n_packets = 1000;
    packet_capacity = 493;
    n_background = 4;
    gc_workers = 4;
    cache_slots = 256 (* 2 KB *);
    large_object_slots = 128 (* 1 KB *);
    card_passes = 1;
    lazy_sweep = false;
    load_balance = Packets;
    initial_l_fraction = 0.4;
    initial_m_fraction = 0.02;
    bg_chunk = 512;
    defer_protocol = true;
    compaction = false;
    evac_fraction = 1.0 /. 16.0;
    nursery_fraction = 0.125;
    faults = Cgc_fault.Fault.disabled;
    verify = false;
  }

let stw = { default with mode = Stw }
let gen = { default with mode = Gen }

let mode_name = function Stw -> "stw" | Cgc -> "cgc" | Gen -> "gen"

let mode_of_name = function
  | "stw" -> Some Stw
  | "cgc" -> Some Cgc
  | "gen" -> Some Gen
  | _ -> None
