(** Aggregate collector statistics — everything the paper's evaluation
    section measures.

    Pause components follow the paper's breakdown: the {e mark} component
    of a stop-the-world pause covers final card cleaning, stack rescanning
    and mark completion; the {e sweep} component is the parallel bitwise
    sweep.  The metering criteria of Table 2 (CC Rate, premature-GC Free
    Space, Cards Left) are recorded per cycle.

    Since the observability rework, the four latency aggregates
    ([pause_ms], [mark_ms], [sweep_ms], [compact_ms]) are bounded
    log-scale {!Cgc_util.Histogram}s — the VM report derives its
    p50/p90/p99/max pause figures from them — and each completed GC cycle
    additionally appends one {!cycle_row} to an in-order log, which is
    what the [--metrics-out] CSV exporter serialises.  Everything is fed
    at cycle finalisation through {!note_cycle}; the remaining fields are
    unchanged {!Cgc_util.Stats} sample sets and plain counters. *)

module Stats = Cgc_util.Stats
module Histogram = Cgc_util.Histogram

type cycle_row = {
  cycle : int;  (** 1-based GC cycle number *)
  end_ms : float;  (** simulated time when the cycle's pause ended *)
  pause_ms : float;  (** full stop-the-world pause *)
  mark_ms : float;  (** mark component of the pause *)
  sweep_ms : float;  (** sweep component of the pause *)
  compact_ms : float;  (** evacuation + fix-up component of the pause *)
  conc_cards : int;  (** cards cleaned concurrently this cycle *)
  stw_cards : int;  (** cards cleaned inside the pause *)
  traced_conc : int;  (** slots traced concurrently *)
  traced_stw : int;  (** slots traced inside the pause *)
  evac_slots : int;  (** slots evacuated (0 without compaction) *)
  occupancy : float;  (** heap occupancy fraction after the cycle *)
  degrade_force_finish : int;
      (** cumulative force-finish ladder rungs climbed by cycle end *)
  degrade_full_stw : int;  (** cumulative full-STW ladder rungs *)
  degrade_compact : int;  (** cumulative emergency-compaction rungs *)
}
(** One completed GC cycle, as the per-cycle metrics CSV reports it. *)

type t = {
  pause_ms : Histogram.t;  (** full stop-the-world pauses *)
  mark_ms : Histogram.t;  (** mark component of each pause *)
  sweep_ms : Histogram.t;  (** sweep component of each pause *)
  compact_ms : Histogram.t;  (** evacuation + fix-up component of each pause *)
  stw_cards : Stats.t;  (** cards cleaned in the stop-the-world phase *)
  conc_cards : Stats.t;  (** cards cleaned concurrently *)
  cc_ratio : Stats.t;  (** stw cards / concurrent cards, per cycle *)
  occupancy_end : Stats.t;  (** heap occupancy fraction after each cycle *)
  premature_free : Stats.t;  (** free fraction when tracing finished early *)
  cards_left : Stats.t;  (** registered cards left when halted by alloc failure *)
  tracing_factor : Stats.t;  (** actual/assigned per mutator increment *)
  fairness : Stats.t;  (** per-cycle stddev of tracing factors *)
  cas_per_mb : Stats.t;  (** CAS ops per cycle, normalised by live MB *)
  traced_conc_slots : Stats.t;  (** slots traced concurrently per cycle *)
  traced_stw_slots : Stats.t;  (** slots traced inside the pause per cycle *)
  float_slots : Stats.t;  (** live slots at end of cycle *)
  evac_slots : Stats.t;  (** slots evacuated per cycle *)
  mutable cycle_log : cycle_row list;  (** newest first; see {!cycle_rows} *)
  mutable cycles : int;
  mutable premature_cycles : int;  (** concurrent phase finished all work *)
  mutable halted_cycles : int;  (** concurrent phase halted by alloc failure *)
  mutable overflow_events : int;
  mutable max_deferred_packets : int;
      (** high-water mark of the section 5.2 Deferred sub-pool *)
  (* Degradation-ladder accounting (robustness): each counter is one rung
     of the allocation-failure escalation in [Collector], climbed in
     order before a typed [Out_of_memory] is raised. *)
  mutable degrade_force_finish : int;
      (** rung 1: in-flight cycle force-finished (or degenerate full
          collection when no cycle was running) *)
  mutable degrade_full_stw : int;
      (** rung 2: fresh full stop-the-world collection *)
  mutable degrade_compact : int;
      (** rung 3: emergency compacting full collection *)
  mutable oom_raised : int;
      (** allocations that exhausted the ladder and raised *)
  (* Mutator-utilization accounting (Table 3) *)
  mutable preconc_slots : int;  (** slots allocated between cycles *)
  mutable preconc_time : int;  (** cycles of pre-concurrent wall time *)
  mutable conc_slots : int;  (** slots allocated during concurrent phases *)
  mutable conc_time : int;  (** cycles of concurrent-phase wall time *)
  mutable total_alloc_slots : int;
  (* Generational front end (Gen mode).  The per-cycle CSV schema
     (cgcsim-cycles-v1) is unchanged: minors are not major cycles, so
     they aggregate here and surface through the run report and the
     trace analyzer instead. *)
  minor_pause_ms : Histogram.t;
      (** per-minor pause of the allocating mutator (the only thread a
          minor collection stops) *)
  mutable minors : int;  (** minor collections run *)
  mutable promoted_slots : int;  (** slots copied into the old space *)
  mutable minor_deferred : int;
      (** nursery exhaustions that fell back to old-space allocation
          because a concurrent major phase was in flight *)
}

val create : unit -> t

val reset : t -> unit
(** Zero everything — used to discard warm-up cycles before measuring. *)

val note_cycle : t -> cycle_row -> unit
(** Record one finished GC cycle: appends the row to the cycle log and
    feeds the four latency histograms.  The collector calls this exactly
    once per cycle, after the world restarts. *)

val cycle_rows : t -> cycle_row list
(** The per-cycle log in chronological order. *)

val csv_header : string list
(** Column names of the per-cycle metrics CSV, aligned with
    {!csv_rows}. *)

val csv_rows : t -> string list list
(** {!cycle_rows} rendered for {!Cgc_obs.Export.csv}: fixed-precision
    decimal formatting, so equal-seed runs serialise identically. *)

val utilization : t -> float
(** Concurrent-phase allocation rate over pre-concurrent allocation rate
    (the paper's mutator-utilization proxy); 0 if unmeasurable. *)

val alloc_rate_preconc : t -> cost:Cgc_smp.Cost.t -> float
(** KB per millisecond of allocation between cycles. *)

val alloc_rate_conc : t -> cost:Cgc_smp.Cost.t -> float
(** KB per millisecond of allocation during concurrent phases. *)
