(** The collector itself: the paper's parallel, incremental, mostly
    concurrent mark-sweep garbage collector, plus the parallel
    stop-the-world baseline it is compared against.

    Life of a CGC collection cycle (sections 2 and 3):
    {ol
    {- {e Kickoff}: a mutator's allocation slow path notices free space has
       dropped below [(L+M)/K0] and initialises a cycle — mark bits and
       card table cleared, background threads start soaking idle cycles.}
    {- {e Concurrent phase}: each allocation slow path performs an
       increment of tracing work metered by the progress formula; the
       first increment per thread scans that thread's own stack.  Work is
       distributed through the work-packet pool.  When packets run dry a
       card-cleaning pass starts (deferred as long as possible, each card
       cleaned at most once per pass), then unscanned stacks of
       non-allocating threads are taken, then deferred packets recycled.}
    {- {e Stop-the-world phase}: triggered by concurrent-tracing
       termination (detected via the Empty sub-pool counter) or by
       allocation failure.  All caches are retired (publishing allocation
       bits), dirty cards are cleaned under the snapshot protocol, all
       stacks are rescanned, marking completes and the heap is swept —
       all fully parallel across [gc_workers] threads.}}

    In [Stw] mode the collector is the baseline: no write barrier, no
    concurrent phase; allocation failure triggers a full parallel
    stop-the-world mark-sweep. *)

type t

type phase = Idle | Marking | Finalizing

type oom_diag = {
  oom_phase : phase;  (** phase when the failing request was made *)
  oom_request : int;  (** slots requested *)
  oom_cycle : int;  (** GC cycle count at the time of the raise *)
  oom_free : int;  (** free slots after the last-resort collection *)
  oom_live : int;  (** live-volume estimate, slots *)
  oom_nslots : int;  (** heap size, slots *)
  oom_pool : int * int * int * int;
      (** work-packet sub-pool counters (empty, nonempty, almost-full,
          deferred) *)
  oom_rungs : int;  (** degradation-ladder rungs climbed before raising *)
}
(** Diagnostic payload of {!Out_of_memory}: enough state to tell a
    genuinely oversubscribed heap from a collector defect. *)

exception Out_of_memory of oom_diag
(** Raised only after the full degradation ladder — force-finish of the
    in-flight cycle, a fresh full stop-the-world collection, and an
    emergency compacting collection — has failed to free enough space.
    A printer is registered with {!Printexc}, so uncaught it still
    renders as {!oom_to_string}. *)

val oom_to_string : oom_diag -> string

val create : Config.t -> sched:Cgc_sim.Sched.t -> heap:Cgc_heap.Heap.t -> t

val config : t -> Config.t
val heap : t -> Cgc_heap.Heap.t
val machine : t -> Cgc_smp.Machine.t
val stats : t -> Gstats.t
val tracer : t -> Tracer.t
val pool : t -> Cgc_packets.Pool.t
val cleaner : t -> Card_clean.t
val compactor : t -> Compact.t
val phase : t -> phase
val cycles : t -> int

val register_mutator : t -> Cgc_sim.Sched.thread -> stack_slots:int -> Mctx.t
(** Must be called from inside the thread being registered (the mutator's
    store-buffer identity is its scheduler thread id). *)

val start_background : t -> unit
(** Spawn the [n_background] low-priority tracing threads. *)

val alloc : t -> Mctx.t -> nrefs:int -> size:int -> int
(** Allocate an object of [size] slots with [nrefs] leading reference
    slots (all null).  Performs the incremental GC work mandated by the
    progress formula on slow paths; may stop the world.  On exhaustion it
    climbs the degradation ladder (force-finish, full stop-the-world
    collection, emergency compaction — each rung counted in {!Gstats}).
    @raise Out_of_memory when the ladder too cannot free enough space. *)

val set_ref : t -> parent:int -> idx:int -> value:int -> unit
(** Store a reference through the write barrier (store, then dirty the
    parent's card; no fence — section 5.3). *)

val get_ref : t -> parent:int -> idx:int -> int

val global_set : t -> int -> int -> unit
(** Store into the global-roots table.  Globals are rescanned during
    every stop-the-world phase, so no card is needed. *)

val global_get : t -> int -> int

val n_globals : int

val force_collect : t -> unit
(** Run a full collection now (from inside a simulated thread). *)

(** {2 Generational front end (Gen mode)}

    The nursery itself lives above this library (in [cgc_gen]); the
    collector exposes the integration points: the old-space boundary
    (sweep and emergency compaction must not cross it), a barrier hook
    called on every [Gen]-mode store after the major's card dirtying,
    and a cache-refill hook consulted on the allocation slow path before
    the old-space free list. *)

val install_gen :
  t ->
  old_limit:int ->
  barrier:(parent:int -> value:int -> unit) ->
  refill:(Mctx.t -> min:int -> bool) ->
  unit
(** Wire the generational front end in.  Must be called before any
    allocation; raises [Invalid_argument] unless the collector was
    created in [Gen] mode. *)

val old_limit : t -> int
(** First slot past the old space ([Heap.nslots] except in Gen mode). *)

val mutators : t -> Mctx.t list
(** Every registered mutator — the minor collector scans all root arrays
    and republishes all allocation caches. *)

val globals_array : t -> int array
(** The global-roots table itself (precise; the minor collector rewrites
    young entries in place). *)

val alloc_old : t -> size:int -> int
(** Raw old-space slots for a promoted survivor: no header is written
    and no bits are touched — the minor collector copies the complete
    object over the extent and publishes the allocation bit itself.
    Climbs the degradation ladder on exhaustion.
    @raise Out_of_memory when even the ladder cannot free the space. *)

val checkpoint : t -> unit
(** Spend any accumulated cycle debt (call between transactions). *)

val check_reachable : t -> (int * int) list
(** Host-side heap-integrity walk: follow every reference reachable from
    the mutator roots and globals and return the (referrer, address)
    pairs that no longer look like valid objects.  Empty on a sound
    heap.  Used by the tests and by [CGC_VERIFY=1] (which runs it after
    every collection and aborts on corruption). *)
