module Heap = Cgc_heap.Heap
module Card_table = Cgc_heap.Card_table
module Alloc_bits = Cgc_heap.Alloc_bits
module Machine = Cgc_smp.Machine
module Cost = Cgc_smp.Cost
module Obs = Cgc_obs.Obs
module Obs_event = Cgc_obs.Event

type t = {
  heap : Heap.t;
  mach : Machine.t;
  mutable queue : int list;
  mutable qlen : int;
  mutable passes : int;
  mutable conc : int;
  mutable stw : int;
  mutable redirty : int;
}

let create heap =
  {
    heap;
    mach = Heap.machine heap;
    queue = [];
    qlen = 0;
    passes = 0;
    conc = 0;
    stw = 0;
    redirty = 0;
  }

let reset_cycle t =
  t.queue <- [];
  t.qlen <- 0;
  t.passes <- 0;
  t.conc <- 0;
  t.stw <- 0;
  t.redirty <- 0

let start_pass t ~force_fences =
  (* Claim the pass before anything that can suspend the thread (the
     fence-forcing flush is a preemption point): a second thread finding
     no cleaning work must not start a duplicate pass and clobber the
     queue. *)
  t.passes <- t.passes + 1;
  let cards = Card_table.snapshot (Heap.cards t.heap) in
  force_fences ();
  let ncards = List.length cards in
  t.queue <- t.queue @ cards;
  t.qlen <- t.qlen + ncards;
  Obs.instant t.mach.Machine.obs ~arg:ncards Obs_event.Card_pass;
  Machine.flush t.mach

let queue_len t = t.qlen
let passes_started t = t.passes

let clean_one t tracer session ~stw =
  match t.queue with
  | [] -> None
  | card :: rest ->
      t.queue <- rest;
      t.qlen <- t.qlen - 1;
      Machine.charge t.mach t.mach.Machine.cost.Cost.card_scan;
      let scanned = ref 0 in
      let unsafe = ref false in
      Heap.iter_marked_on_card t.heap card (fun addr ->
          if Alloc_bits.is_set (Heap.alloc_bits t.heap) addr then
            scanned := !scanned + Tracer.scan_object tracer session ~retrace:true addr
          else unsafe := true);
      if !unsafe then begin
        (* Cannot rescan an unpublished object; give the card back to a
           later pass (ultimately the stop-the-world one). *)
        Card_table.dirty (Heap.cards t.heap) card;
        t.redirty <- t.redirty + 1
      end;
      if stw then t.stw <- t.stw + 1 else t.conc <- t.conc + 1;
      Obs.instant t.mach.Machine.obs ~arg:!scanned
        (if stw then Obs_event.Card_clean_stw else Obs_event.Card_clean_conc);
      Machine.flush t.mach;
      Some !scanned

let conc_cleaned t = t.conc
let stw_cleaned t = t.stw
let redirtied t = t.redirty
