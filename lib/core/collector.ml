module Heap = Cgc_heap.Heap
module Arena = Cgc_heap.Arena
module Card_table = Cgc_heap.Card_table
module Pool = Cgc_packets.Pool
module Machine = Cgc_smp.Machine
module Weakmem = Cgc_smp.Weakmem
module Fence = Cgc_smp.Fence
module Cost = Cgc_smp.Cost
module Sched = Cgc_sim.Sched
module Parallel = Cgc_sim.Parallel
module Stats = Cgc_util.Stats
module Obs = Cgc_obs.Obs
module Obs_event = Cgc_obs.Event
module Fault = Cgc_fault.Fault

type phase = Idle | Marking | Finalizing

let phase_name = function
  | Idle -> "idle"
  | Marking -> "marking"
  | Finalizing -> "finalizing"

type oom_diag = {
  oom_phase : phase;  (* phase when the failing request was made *)
  oom_request : int;
  oom_cycle : int;
  oom_free : int;
  oom_live : int;
  oom_nslots : int;
  oom_pool : int * int * int * int;
  oom_rungs : int;
}

exception Out_of_memory of oom_diag

let oom_to_string d =
  let e, ne, af, df = d.oom_pool in
  Printf.sprintf
    "out of memory: request=%d slots in %s phase (cycle %d); after %d \
     degradation rungs free=%d of %d slots, live~=%d; packet pool \
     (empty=%d, nonempty=%d, almost-full=%d, deferred=%d)"
    d.oom_request (phase_name d.oom_phase) d.oom_cycle d.oom_rungs d.oom_free
    d.oom_nslots d.oom_live e ne af df

let () =
  Printexc.register_printer (function
    | Out_of_memory d -> Some (oom_to_string d)
    | _ -> None)

let n_globals = 256

type t = {
  cfg : Config.t;
  sched : Sched.t;
  hp : Heap.t;
  mach : Machine.t;
  pl : Pool.t;
  tr : Tracer.t;
  cl : Card_clean.t;
  meter : Metering.t;
  st : Gstats.t;
  globals : int array;
  mutable ph : phase;
  mutable muts : Mctx.t list;
  mutable globals_scanned : bool;
  mutable cycle_no : int;
  (* per-cycle scratch *)
  mutable conc_start : int;
  mutable preconc_start : int;
  mutable cycle_factors : Stats.t;
  mutable cas_at_start : int;
  mutable black_slots : int; (* allocate-black volume this cycle *)
  mutable bg_window_traced : int;
  mutable alloc_window : int;
  mutable last_recycle : int;
  mutable starve_streak : int;
      (* consecutive work-seeking attempts that found no packet work *)
  mutable lazy_state : Sweep.lazy_t option;
  mutable bg_started : bool;
  mutable emergency_compact : bool;
      (* ladder rung 3: arm the compactor for the next forced cycle even
         though cfg.compaction is off *)
  cp : Compact.t;
  (* Generational front end (Gen mode), injected by [install_gen] after
     construction — the nursery lives in cgc_gen, above this library, so
     the collector only sees the old-space boundary and two closures. *)
  mutable old_limit : int;
      (* first slot past the old space; Heap.nslots except in Gen mode.
         The sweep (and the emergency compactor) must never touch
         [old_limit, nslots). *)
  mutable gen_barrier : (parent:int -> value:int -> unit) option;
      (* extra Gen write-barrier work: dirty the young remembered set on
         an old->young store *)
  mutable gen_refill : (Mctx.t -> min:int -> bool) option;
      (* refill a mutator cache from the nursery, running a minor
         collection if the nursery is exhausted; false when the caller
         must fall back to the old-space free list *)
}

let create cfg ~sched ~heap =
  if cfg.Config.compaction && cfg.Config.lazy_sweep then
    invalid_arg "Collector.create: compaction requires in-pause sweep";
  if cfg.Config.compaction && cfg.Config.load_balance = Config.Stealing then
    invalid_arg "Collector.create: compaction requires the packet tracer";
  if cfg.Config.mode = Config.Gen && cfg.Config.compaction then
    invalid_arg
      "Collector.create: gen mode excludes incremental compaction (the \
       compactor would evacuate across the nursery boundary)";
  if cfg.Config.mode = Config.Gen && cfg.Config.lazy_sweep then
    invalid_arg
      "Collector.create: gen mode requires in-pause sweep (the lazy cursor \
       would fold the nursery into the free list)";
  let mach = Heap.machine heap in
  let pl =
    (* Under the naive fence policy the ablation also pays one fence per
       object marked, instead of one per packet returned (section 5.1). *)
    Pool.create mach
      ~naive_mark_fence:(Heap.fence_policy_of heap = Cgc_heap.Heap.Naive)
      ~faults:cfg.Config.faults
      ~n_packets:cfg.Config.n_packets
      ~capacity:cfg.Config.packet_capacity
  in
  {
    cfg;
    sched;
    hp = heap;
    mach;
    pl;
    tr = Tracer.create cfg heap pl;
    cl = Card_clean.create heap;
    meter = Metering.create cfg ~heap_slots:(Heap.nslots heap);
    st = Gstats.create ();
    globals = Array.make n_globals 0;
    ph = Idle;
    muts = [];
    globals_scanned = false;
    cycle_no = 0;
    conc_start = 0;
    preconc_start = 0;
    cycle_factors = Stats.create ();
    cas_at_start = 0;
    black_slots = 0;
    bg_window_traced = 0;
    alloc_window = 0;
    last_recycle = 0;
    starve_streak = 0;
    lazy_state = None;
    bg_started = false;
    emergency_compact = false;
    cp = Compact.create heap;
    old_limit = Heap.nslots heap;
    gen_barrier = None;
    gen_refill = None;
  }

let compactor t = t.cp

let install_gen t ~old_limit ~barrier ~refill =
  if t.cfg.Config.mode <> Config.Gen then
    invalid_arg "Collector.install_gen: collector is not in Gen mode";
  t.old_limit <- old_limit;
  t.gen_barrier <- Some barrier;
  t.gen_refill <- Some refill

let old_limit t = t.old_limit
let mutators t = t.muts
let globals_array t = t.globals

let config t = t.cfg
let heap t = t.hp
let machine t = t.mach
let stats t = t.st
let tracer t = t.tr
let pool t = t.pl
let cleaner t = t.cl
let phase t = t.ph
let cycles t = t.cycle_no

let register_mutator t thread ~stack_slots =
  let m = Mctx.create ~tid:(Sched.thread_id thread) ~thread ~stack_slots in
  t.muts <- m :: t.muts;
  m

(* ------------------------------------------------------------------ *)
(* Write barrier                                                       *)

let set_ref t ~parent ~idx ~value =
  let c = t.mach.Machine.cost in
  (* The new reference is made accessible as a root first (it is the
     [value] argument, live in the caller), then the cell is modified,
     and finally the card is dirtied — no fence (footnote 3, section 5.3). *)
  Arena.ref_set_raw (Heap.arena t.hp) parent idx value;
  match t.cfg.Config.mode with
  | Config.Stw -> ()
  | Config.Cgc ->
      Machine.charge t.mach c.Cost.write_barrier;
      Card_table.dirty (Heap.cards t.hp) (Arena.card_of_addr parent)
  | Config.Gen -> (
      (* The major's barrier unchanged, plus the generational half: an
         old->young store must also reach the young remembered set or
         the next minor would miss the edge. *)
      Machine.charge t.mach c.Cost.write_barrier;
      Card_table.dirty (Heap.cards t.hp) (Arena.card_of_addr parent);
      match t.gen_barrier with
      | Some f -> f ~parent ~value
      | None -> ())

let get_ref t ~parent ~idx = Arena.ref_get (Heap.arena t.hp) parent idx

let global_set t i v = t.globals.(i) <- v
let global_get t i = t.globals.(i)

let checkpoint t = Machine.flush t.mach

(* Free space for the metering formulas.  Under lazy sweep the free list
   only holds what the sweep cursor has uncovered so far; the unswept
   remainder of the heap still contains (1 - occupancy) of reclaimable
   space, and the kickoff formula must see it or it would start (and
   force-finish) a new cycle immediately after every mark. *)
let free_estimate t =
  let actual = Heap.free_slots t.hp in
  match t.lazy_state with
  | Some lz when not (Sweep.lazy_finished lz) ->
      let n = float_of_int (Heap.nslots t.hp) in
      let free_frac =
        Float.max 0.0 (1.0 -. (Metering.l_estimate t.meter /. n))
      in
      let unswept = float_of_int (Heap.nslots t.hp - Sweep.lazy_pos lz) in
      actual + int_of_float (unswept *. free_frac)
  | _ -> actual

(* ------------------------------------------------------------------ *)
(* Concurrent-phase helpers                                            *)

let live_estimate t =
  Tracer.marked_slots t.tr + t.black_slots

let all_stacks_scanned t =
  List.for_all (fun (m : Mctx.t) -> m.Mctx.stack_scanned) t.muts

let trace_complete t =
  t.ph = Marking
  && Pool.terminated t.pl
  && Card_clean.queue_len t.cl = 0
  && Card_clean.passes_started t.cl >= t.cfg.Config.card_passes
  && all_stacks_scanned t && t.globals_scanned

let force_mutator_fences t =
  (* "Force all mutators to execute a fence, e.g., stop each one
     individually" (section 5.3 step 2).  We drain each mutator's store
     buffer and charge one fence plus a dispatch per mutator to the
     thread doing the forcing. *)
  let c = t.mach.Machine.cost in
  List.iter
    (fun (m : Mctx.t) ->
      Fence.count t.mach.Machine.fences Fence.Card_snapshot;
      Machine.charge t.mach (c.Cost.fence + c.Cost.dispatch);
      Weakmem.fence t.mach.Machine.wm ~cpu:m.Mctx.tid ~now:(Machine.now t.mach))
    t.muts

let scan_own_stack t session (m : Mctx.t) =
  if not m.Mctx.stack_scanned then begin
    m.Mctx.stack_scanned <- true;
    ignore (Tracer.scan_roots t.tr session m.Mctx.roots)
  end

let scan_globals t session =
  if not t.globals_scanned then begin
    t.globals_scanned <- true;
    ignore (Tracer.scan_roots t.tr session t.globals)
  end

(* The concurrent-work ladder: packets first; when starved, recycle
   deferred packets; then start / continue a card-cleaning pass; then take
   the stack of a thread that never allocates.  Returns slots traced, 0
   when no work could be found anywhere. *)
let find_work t session ~budget =
  let n = Tracer.trace_until t.tr session ~budget in
  if n > 0 then begin
    t.starve_streak <- 0;
    n
  end
  else begin
    t.starve_streak <- t.starve_streak + 1;
    let recycled =
      if
        Pool.deferred_count t.pl > 0
        && Machine.now t.mach - t.last_recycle
           > t.mach.Machine.cost.Cost.cycles_per_ms
      then begin
        t.last_recycle <- Machine.now t.mach;
        Pool.recycle_deferred t.pl
      end
      else 0
    in
    if recycled > 0 then Tracer.trace_until t.tr session ~budget
    else begin
      (* Card cleaning: deferred as long as possible (section 2.1) — a
         momentary packet shortage early in the cycle must not trigger
         it, or cards cleaned now will just be dirtied again.  The pass
         starts only once the bulk of the expected tracing volume is
         done and all stacks have been scanned. *)
      if
        Card_clean.queue_len t.cl = 0
        && Card_clean.passes_started t.cl < t.cfg.Config.card_passes
        && all_stacks_scanned t && t.globals_scanned
        && (float_of_int (Tracer.marked_slots t.tr)
            >= 0.8 *. Metering.l_estimate t.meter
           || t.starve_streak >= 64)
      then Card_clean.start_pass t.cl ~force_fences:(fun () -> force_mutator_fences t);
      match Card_clean.clean_one t.cl t.tr session ~stw:false with
      | Some n -> n
      | None -> (
          (* Stacks of threads that never allocate, last. *)
          match
            List.find_opt (fun (m : Mctx.t) -> not m.Mctx.stack_scanned) t.muts
          with
          | Some m ->
              scan_own_stack t session m;
              1 (* progress was made even if no roots were pushed *)
          | None ->
              if not t.globals_scanned then begin
                scan_globals t session;
                1
              end
              else 0)
    end
  end

(* ------------------------------------------------------------------ *)
(* Cycle start                                                         *)

let dbg = try Sys.getenv "CGC_DEBUG" = "1" with Not_found -> false

let start_cycle t =
  assert (t.ph = Idle);
  if dbg then
    Printf.printf "[%d] start_cycle %d free=%d\n%!" (Machine.now t.mach)
      (t.cycle_no + 1) (Heap.free_slots t.hp);
  (* A still-running lazy sweep reads the mark bits we are about to
     clear: drive it to completion first. *)
  (match t.lazy_state with
  | Some lz when not (Sweep.lazy_finished lz) -> Sweep.lazy_finish t.hp lz
  | _ -> ());
  t.lazy_state <- None;
  t.cycle_no <- t.cycle_no + 1;
  Obs.instant t.mach.Machine.obs ~arg:t.cycle_no Obs_event.Cycle_start;
  if t.cfg.Config.compaction || t.emergency_compact then begin
    (* An emergency-compaction cycle (ladder rung 3) evacuates a larger
       area than the steady-state incremental setting: the heap is nearly
       exhausted and the goal is defragmentation, not pause bounding. *)
    let fraction =
      if t.emergency_compact then Float.max t.cfg.Config.evac_fraction 0.125
      else t.cfg.Config.evac_fraction
    in
    Compact.choose_area t.cp ~cycle:t.cycle_no ~fraction;
    Tracer.set_compactor t.tr t.cp
  end;
  t.ph <- Marking;
  let now = Machine.now t.mach in
  t.st.Gstats.preconc_time <- t.st.Gstats.preconc_time + (now - t.preconc_start);
  t.conc_start <- now;
  Heap.clear_marks t.hp;
  Card_table.clear_all (Heap.cards t.hp);
  Tracer.reset_cycle t.tr;
  Card_clean.reset_cycle t.cl;
  List.iter
    (fun (m : Mctx.t) ->
      m.Mctx.stack_scanned <- false;
      m.Mctx.trace_debt <- 0)
    t.muts;
  t.globals_scanned <- false;
  t.cycle_factors <- Stats.create ();
  t.cas_at_start <- t.mach.Machine.cas_ops;
  t.starve_streak <- 0;
  t.black_slots <- 0;
  t.bg_window_traced <- 0;
  t.alloc_window <- 0

(* ------------------------------------------------------------------ *)
(* Stop-the-world phase                                                *)

let stw_mark_worker t wid nworkers =
  let spin = ref 0 in
  let rec go session =
    let _ = Tracer.trace_until t.tr session ~budget:max_int in
    match Card_clean.clean_one t.cl t.tr session ~stw:true with
    | Some _ -> go session
    | None ->
        if Pool.deferred_count t.pl > 0 && Pool.recycle_deferred t.pl > 0 then begin
          incr spin;
          if dbg && !spin mod 100_000 = 0 then begin
            Printf.printf "[stw spin %d] %s
%!" !spin (Pool.debug_dump t.pl);
            (* dump a deferred entry *)
            ignore (Pool.recycle_deferred t.pl);
            (match Pool.get_input t.pl with
            | Some p ->
                (match Cgc_packets.Packet.peek p with
                | Some v ->
                    Printf.printf
                      "  entry=%d in_heap=%b abit_sc=%b abit_weak=%b header_sc=%b marked=%b
%!"
                      v
                      (Arena.in_heap (Heap.arena t.hp) v)
                      (Cgc_heap.Alloc_bits.is_set_sc (Heap.alloc_bits t.hp) v)
                      (Cgc_heap.Alloc_bits.is_set (Heap.alloc_bits t.hp) v)
                      (Arena.header_valid_sc (Heap.arena t.hp) v)
                      (Heap.is_marked t.hp v)
                | None -> ());
                Pool.put t.pl p
            | None -> ())
          end;
          go session
        end
        else begin
          Tracer.release t.tr session;
          if not (Pool.terminated t.pl) || Card_clean.queue_len t.cl > 0 then begin
            Sched.yield ();
            go (Tracer.new_session t.tr)
          end
        end
  in
  let session = Tracer.new_session t.tr in
  (* Rescan every thread stack (they changed since the concurrent scan)
     plus the global roots, partitioned across workers. *)
  List.iteri
    (fun i (m : Mctx.t) ->
      if i mod nworkers = wid then begin
        ignore (Tracer.scan_roots t.tr session m.Mctx.roots);
        m.Mctx.stack_scanned <- true
      end)
    t.muts;
  if wid = 0 then begin
    ignore (Tracer.scan_roots t.tr session t.globals);
    t.globals_scanned <- true
  end;
  go session

type stw_reason = Completed | Halted | Degenerate | Forced

let verify = try Sys.getenv "CGC_VERIFY" = "1" with Not_found -> false

(* Host-side (uncharged) heap-integrity walk: every object reachable from
   the roots must still look like an object.  Returns the invalid
   (referrer, address) pairs. *)
let check_reachable t =
  let arena = Heap.arena t.hp in
  let abits = Heap.alloc_bits t.hp in
  let seen = Hashtbl.create 1024 in
  let bad = ref [] in
  let rec walk from addr =
    if addr <> 0 && not (Hashtbl.mem seen addr) then begin
      Hashtbl.replace seen addr ();
      (* A heap-reachable object may legitimately still be unpublished
         (its allocation bit waits for the owner's cache to retire), so
         only the header is validated here; the allocation bit is required
         only for the conservative root filtering below. *)
      if not (Arena.in_heap arena addr && Arena.header_valid_sc arena addr)
      then bad := (from, addr) :: !bad
      else
        let nrefs = Arena.nrefs_of_sc arena addr in
        for i = 0 to nrefs - 1 do
          walk addr (Arena.ref_get_sc arena addr i)
        done
    end
  in
  List.iter
    (fun (m : Mctx.t) ->
      Array.iter
        (fun v ->
          (* Roots are conservative: only follow values that the scan
             itself would have treated as references. *)
          if
            Arena.in_heap arena v
            && Cgc_heap.Alloc_bits.is_set_sc abits v
            && Arena.header_valid_sc arena v
          then walk (-m.Mctx.tid) v)
        m.Mctx.roots)
    t.muts;
  Array.iter (fun v -> if v <> 0 then walk (-999) v) t.globals;
  !bad

let verify_reachable t =
  match check_reachable t with
  | [] -> ()
  | bad ->
      List.iter
        (fun (from, addr) ->
          Printf.eprintf
            "HEAP CORRUPTION cycle %d: object %d (from %d) invalid\n%!"
            t.cycle_no addr from)
        (List.filteri (fun i _ -> i < 5) bad);
      failwith "verify_reachable: corruption"

let finalize t reason =
  if t.ph <> Marking then ()
  else begin
    (* Stop the world before anything that can suspend this thread — the
       phase change must be atomic with the stop, or another mutator could
       take an allocation failure while we are in Finalizing. *)
    Sched.stop_the_world t.sched;
    t.ph <- Finalizing;
    (if dbg then
       let e, ne, af, d = Pool.counts t.pl in
       Printf.printf
         "[%d] finalize %s pool=(%d,%d,%d,%d) qlen=%d passes=%d stacks=%b globals=%b free=%d\n%!"
         (Machine.now t.mach)
         (match reason with Completed -> "completed" | Halted -> "halted"
          | Degenerate -> "degenerate" | Forced -> "forced")
         e ne af d (Card_clean.queue_len t.cl) (Card_clean.passes_started t.cl)
         (all_stacks_scanned t) t.globals_scanned (Heap.free_slots t.hp));
    Machine.flush t.mach;
    let free_frac =
      float_of_int (Heap.free_slots t.hp) /. float_of_int (Heap.nslots t.hp)
    in
    (match reason with
    | Completed ->
        t.st.Gstats.premature_cycles <- t.st.Gstats.premature_cycles + 1;
        Stats.add t.st.Gstats.premature_free free_frac
    | Halted ->
        t.st.Gstats.halted_cycles <- t.st.Gstats.halted_cycles + 1;
        Stats.add t.st.Gstats.cards_left
          (float_of_int (Card_clean.queue_len t.cl))
    | Degenerate | Forced -> ());
    let now = Machine.now t.mach in
    t.st.Gstats.conc_time <- t.st.Gstats.conc_time + (now - t.conc_start);
    let mark_t0 = now in
    let marked_before_stw = Tracer.marked_slots t.tr in
    (match t.cfg.Config.mode with
    | Config.Cgc | Config.Gen ->
        Obs.span t.mach.Machine.obs ~arg:marked_before_stw ~start:t.conc_start
          Obs_event.Conc_mark
    | Config.Stw -> ());
    (* Any thread suspended mid-increment holds packets; reclaim them so
       termination detection stays sound.  The threads notice their
       poisoned sessions at their next safe point. *)
    Tracer.confiscate_all t.tr;
    (* Retire every allocation cache: publishes allocation bits (one
       fence per cache with pending objects), so everything is traceable. *)
    List.iter (fun (m : Mctx.t) -> Heap.retire_cache t.hp m.Mctx.cache) t.muts;
    (* Stopping a thread synchronises it: drain all store buffers. *)
    Weakmem.fence_all t.mach.Machine.wm;
    ignore (Pool.recycle_deferred t.pl);
    (* Final card cleaning under the snapshot protocol (mutator fences
       already implied by the stop). *)
    (match t.cfg.Config.mode with
    | Config.Cgc | Config.Gen ->
        Card_clean.start_pass t.cl ~force_fences:(fun () -> ())
    | Config.Stw -> ());
    let workers = max 1 (min t.cfg.Config.gc_workers (Sched.ncpus t.sched)) in
    (match (t.cfg.Config.load_balance, t.cfg.Config.mode) with
    | Config.Stealing, Config.Stw ->
        (* Section 4.4 ablation: Endo-style work-stealing mark stacks in
           place of work packets for the parallel STW mark. *)
        let stl = Stealing.create t.hp ~nworkers:workers in
        Parallel.run t.sched ~workers (fun wid ->
            List.iteri
              (fun i (m : Mctx.t) ->
                if i mod workers = wid then begin
                  Array.iter
                    (fun v -> ignore (Stealing.push_root stl ~worker:wid v))
                    m.Mctx.roots;
                  m.Mctx.stack_scanned <- true
                end)
              t.muts;
            if wid = 0 then begin
              Array.iter
                (fun v -> ignore (Stealing.push_root stl ~worker:wid v))
                t.globals;
              t.globals_scanned <- true
            end;
            Stealing.mark_worker stl ~worker:wid)
    | _ -> Parallel.run t.sched ~workers (fun wid -> stw_mark_worker t wid workers));
    (* A tracer that finds no output packet falls back to marking the
       object and dirtying its card (section 4.3).  Concurrently that is
       sound — a later cleaning pass retraces it — but here the final
       pass has already been snapshotted, so a card dirtied by overflow
       during the stop-the-world mark (which injected packet starvation
       makes routine) would never be rescanned and the object's children
       would be swept while live.  Re-snapshot and re-mark until no dirty
       card remains. *)
    while Card_table.dirty_count (Heap.cards t.hp) > 0 do
      Weakmem.fence_all t.mach.Machine.wm;
      Card_clean.start_pass t.cl ~force_fences:(fun () -> ());
      Parallel.run t.sched ~workers (fun wid -> stw_mark_worker t wid workers)
    done;
    Machine.flush t.mach;
    let mark_t1 = Machine.now t.mach in
    (* Sweep. *)
    let live =
      if t.cfg.Config.lazy_sweep then begin
        let lz = Sweep.lazy_begin t.hp in
        t.lazy_state <- Some lz;
        live_estimate t
      end
      else begin
        (* Gen mode sweeps only the old space: the nursery above
           [old_limit] is bump-allocated and reclaimed wholesale by the
           minors, and must never reach the free list. *)
        let regs = Sweep.regions ~nslots:t.old_limit ~workers in
        let results = Array.make workers None in
        Parallel.run t.sched ~workers (fun wid ->
            let lo, hi = regs.(wid) in
            results.(wid) <- Some (Sweep.sweep_region t.hp ~lo ~hi));
        let results =
          Array.map
            (function Some r -> r | None -> assert false)
            results
        in
        Sweep.merge ~limit:t.old_limit t.hp results
      end
    in
    Machine.flush t.mach;
    let sweep_t1 = Machine.now t.mach in
    (* Incremental compaction: evacuate the chosen area and fix up the
       remembered in-pointers, still inside the pause (section 2.3). *)
    let moved =
      if
        (t.cfg.Config.compaction || t.emergency_compact)
        && Compact.active t.cp
      then begin
        let moved = Compact.evacuate t.cp ~globals:t.globals in
        Machine.flush t.mach;
        Stats.add t.st.Gstats.evac_slots (float_of_int moved);
        moved
      end
      else 0
    in
    let compact_t1 = Machine.now t.mach in
    (* Statistics. *)
    let cost = t.mach.Machine.cost in
    let st = t.st in
    Stats.add st.Gstats.stw_cards (float_of_int (Card_clean.stw_cleaned t.cl));
    Stats.add st.Gstats.conc_cards (float_of_int (Card_clean.conc_cleaned t.cl));
    Stats.add st.Gstats.cc_ratio
      (float_of_int (Card_clean.stw_cleaned t.cl)
      /. float_of_int (max 1 (Card_clean.conc_cleaned t.cl)));
    Stats.add st.Gstats.occupancy_end
      (float_of_int live /. float_of_int (Heap.nslots t.hp));
    Stats.add st.Gstats.float_slots (float_of_int live);
    Stats.add st.Gstats.traced_conc_slots (float_of_int marked_before_stw);
    Stats.add st.Gstats.traced_stw_slots
      (float_of_int (Tracer.marked_slots t.tr - marked_before_stw));
    if Stats.count t.cycle_factors >= 2 then
      Stats.add st.Gstats.fairness (Stats.stddev t.cycle_factors);
    let live_mb = float_of_int (live * 8) /. 1_048_576.0 in
    if live_mb > 0.0 then
      Stats.add st.Gstats.cas_per_mb
        (float_of_int (t.mach.Machine.cas_ops - t.cas_at_start) /. live_mb);
    st.Gstats.overflow_events <- Tracer.overflow_events t.tr;
    st.Gstats.max_deferred_packets <-
      max st.Gstats.max_deferred_packets (Pool.max_deferred t.pl);
    st.Gstats.cycles <- st.Gstats.cycles + 1;
    (* Metering feedback. *)
    Metering.end_cycle t.meter ~l_observed:(live_estimate t)
      ~m_observed:
        ((Card_clean.conc_cleaned t.cl + Card_clean.stw_cleaned t.cl)
        * Arena.slots_per_card);
    if verify then verify_reachable t;
    (* Configured invariant verification (host-side, uncharged): marking
       is complete, caches are retired, sweep has rebuilt the free list
       and the overflow re-mark loop left no dirty card, so the strongest
       form of every invariant must hold right here. *)
    if t.cfg.Config.verify then begin
      let r =
        Verify.check ~heap:t.hp
          ~roots:(List.map (fun (m : Mctx.t) -> m.Mctx.roots) t.muts)
          ~globals:t.globals ~expect_marked:true ~expect_clean_cards:true
          ~label:(Printf.sprintf "cycle %d" t.cycle_no)
      in
      Obs.instant t.mach.Machine.obs ~arg:r.Verify.objects
        Obs_event.Verify_pass
    end;
    let pause = Sched.restart_world t.sched in
    let pause_end = Machine.now t.mach in
    let obs = t.mach.Machine.obs in
    Obs.span_at obs ~ts:(pause_end - pause) ~dur:pause Obs_event.Stw_pause;
    Obs.span_at obs ~ts:mark_t0 ~dur:(mark_t1 - mark_t0) Obs_event.Stw_mark;
    Obs.span_at obs ~ts:mark_t1 ~dur:(sweep_t1 - mark_t1) Obs_event.Stw_sweep;
    if moved > 0 then
      Obs.span_at obs ~ts:sweep_t1 ~dur:(compact_t1 - sweep_t1)
        Obs_event.Stw_compact;
    Obs.instant obs ~arg:t.cycle_no Obs_event.Cycle_end;
    Gstats.note_cycle st
      {
        Gstats.cycle = t.cycle_no;
        end_ms = Cost.ms_of_cycles cost pause_end;
        pause_ms = Cost.ms_of_cycles cost pause;
        mark_ms = Cost.ms_of_cycles cost (mark_t1 - mark_t0);
        sweep_ms = Cost.ms_of_cycles cost (sweep_t1 - mark_t1);
        compact_ms = Cost.ms_of_cycles cost (compact_t1 - sweep_t1);
        conc_cards = Card_clean.conc_cleaned t.cl;
        stw_cards = Card_clean.stw_cleaned t.cl;
        traced_conc = marked_before_stw;
        traced_stw = Tracer.marked_slots t.tr - marked_before_stw;
        evac_slots = moved;
        occupancy = float_of_int live /. float_of_int (Heap.nslots t.hp);
        degrade_force_finish = st.Gstats.degrade_force_finish;
        degrade_full_stw = st.Gstats.degrade_full_stw;
        degrade_compact = st.Gstats.degrade_compact;
      };
    t.ph <- Idle;
    t.preconc_start <- pause_end
  end

(* A full stop-the-world collection in baseline mode (or a degenerate CGC
   cycle where kickoff never fired before exhaustion). *)
let full_collect t reason =
  (match t.ph with
  | Idle -> start_cycle t
  | Marking -> ()
  | Finalizing -> assert false);
  finalize t reason

let force_collect t = full_collect t Forced

(* ------------------------------------------------------------------ *)
(* Incremental work on the allocation slow path                        *)

let do_increment t (m : Mctx.t) ~alloc =
  if t.ph = Marking then begin
    let incr_t0 = Machine.now t.mach in
    m.Mctx.incr_count <- m.Mctx.incr_count + 1;
    (* Card-storm injection: mass-dirty a random batch of cards, as a
       pathological write-heavy mutator would, inflating the cleaning
       backlog mid-cycle. *)
    (match
       Fault.card_storm t.cfg.Config.faults
         ~ncards:(Card_table.ncards (Heap.cards t.hp))
     with
    | [] -> ()
    | storm ->
        let c = t.mach.Machine.cost in
        List.iter
          (fun card ->
            Machine.charge t.mach c.Cost.write_barrier;
            Card_table.dirty (Heap.cards t.hp) card)
          storm);
    (* Occasionally refresh the background-rate estimate Best. *)
    if t.alloc_window >= 8192 then begin
      Metering.observe_background t.meter ~bg_traced:t.bg_window_traced
        ~mutator_alloc:t.alloc_window;
      t.bg_window_traced <- 0;
      t.alloc_window <- 0
    end;
    let traced_so_far =
      Tracer.marked_slots t.tr + Tracer.retraced_slots t.tr
    in
    let work =
      Metering.increment_work t.meter ~traced:traced_so_far
        ~free:(free_estimate t) ~alloc
      + m.Mctx.trace_debt
    in
    let session = ref (Tracer.new_session t.tr) in
    scan_own_stack t !session m;
    scan_globals t !session;
    let traced = ref 0 in
    let retries = ref 3 in
    let continue = ref true in
    while !continue && !traced < work do
      let n = find_work t !session ~budget:(work - !traced) in
      if n > 0 then traced := !traced + n
      else if !retries > 0 && t.ph = Marking then begin
        (* Momentary shortage: the work packets with the remaining tracing
           work are held by other threads mid-scan.  Release our own
           (empty) packets first — a waiting thread must hold nothing, or
           a rotating population of waiters would keep the Empty-pool
           termination criterion false forever — then give the holders a
           slice and retry. *)
        decr retries;
        Tracer.release t.tr !session;
        Machine.flush t.mach;
        Sched.yield ();
        session := Tracer.new_session t.tr
      end
      else continue := false
    done;
    (* Unfulfilled work is not forgiven: it carries into this mutator's
       next increment so the cycle's total assignment stays on pace. *)
    m.Mctx.trace_debt <- max 0 (work - !traced);
    Tracer.release t.tr !session;
    Machine.flush t.mach;
    let complete = trace_complete t in
    (if dbg && !traced < work && t.ph = Marking then
       let e, ne, af, d = Pool.counts t.pl in
       Printf.printf
         "[%d] starved: pool=(%d,%d,%d,%d) term=%b qlen=%d passes=%d stacks=%b free=%d marked=%d sessions=%d\n%!"
         (Machine.now t.mach) e ne af d (Pool.terminated t.pl)
         (Card_clean.queue_len t.cl)
         (Card_clean.passes_started t.cl)
         (all_stacks_scanned t) (Heap.free_slots t.hp)
         (Tracer.marked_slots t.tr) (Tracer.live_sessions t.tr));
    (* The tracing factor is measured over increments that participated
       in tracing.  A thread that could not obtain any input packet at
       all "quits the tracing task" (section 4.3) and contributes no
       sample; and the increment that discovers global termination is not
       a starvation data point (its assignment no longer exists). *)
    if work > 0 && !traced > 0 && not complete then begin
      let f = float_of_int !traced /. float_of_int work in
      Stats.add t.st.Gstats.tracing_factor f;
      Stats.add t.cycle_factors f;
      (* Mirror the sample into the trace (fixed-point, x1e6) so the
         profiler can recompute the Table 4 load-balance statistics from
         the event stream alone. *)
      Obs.instant t.mach.Machine.obs
        ~arg:(int_of_float (Float.round (f *. 1e6)))
        Obs_event.Incr_factor
    end;
    if work > 0 then
      Obs.span t.mach.Machine.obs ~arg:!traced ~start:incr_t0
        Obs_event.Mut_increment;
    if complete then finalize t Completed
  end

(* ------------------------------------------------------------------ *)
(* Allocation                                                          *)

let account t (m : Mctx.t) size =
  m.Mctx.alloc_slots <- m.Mctx.alloc_slots + size;
  t.st.Gstats.total_alloc_slots <- t.st.Gstats.total_alloc_slots + size;
  t.alloc_window <- t.alloc_window + size;
  match t.ph with
  | Idle -> t.st.Gstats.preconc_slots <- t.st.Gstats.preconc_slots + size
  | Marking -> t.st.Gstats.conc_slots <- t.st.Gstats.conc_slots + size
  | Finalizing -> ()

let mark_new t = t.ph <> Idle

let note_black t size = if t.ph <> Idle then t.black_slots <- t.black_slots + size

(* Refill helper that understands lazy sweeping: when the free list is
   short, try advancing the lazy-sweep cursor before declaring failure. *)
let rec try_refill t (m : Mctx.t) ~min =
  if Heap.refill_cache t.hp m.Mctx.cache ~min ~pref:t.cfg.Config.cache_slots
  then true
  else
    match t.lazy_state with
    | Some lz when not (Sweep.lazy_finished lz) ->
        ignore (Sweep.lazy_step t.hp lz ~max_slots:8192);
        try_refill t m ~min
    | _ -> false

let rec try_alloc_large t ~size ~nrefs =
  match Heap.alloc_large t.hp ~size ~nrefs ~mark_new:(mark_new t) with
  | Some a -> Some a
  | None -> (
      match t.lazy_state with
      | Some lz when not (Sweep.lazy_finished lz) ->
          ignore (Sweep.lazy_step t.hp lz ~max_slots:8192);
          try_alloc_large t ~size ~nrefs
      | _ -> None)

let pre_alloc_hook t m ~request =
  match t.cfg.Config.mode with
  | Config.Stw -> ()
  | Config.Cgc | Config.Gen -> (
      match t.ph with
      | Idle ->
          if Metering.should_start t.meter ~free:(free_estimate t) then begin
            start_cycle t;
            do_increment t m ~alloc:request
          end
      | Marking -> do_increment t m ~alloc:request
      | Finalizing -> ())

(* ------------------------------------------------------------------ *)
(* Degradation ladder                                                  *)

(* An allocation that fails even after a collection no longer gives up
   immediately: it climbs a ladder of typed escalation rungs, each a
   stronger (and more disruptive) collection, and raises the typed
   [Out_of_memory] only when the heap genuinely cannot satisfy the
   request:

     rung 1  force-finish the in-flight cycle (stop-the-world completion
             of its marking), or a degenerate full collection when no
             cycle was running;
     rung 2  a fresh full stop-the-world collection — a halted cycle's
             snapshot keeps everything allocated during that cycle alive
             (allocate-black), so a cycle started from scratch reclaims
             the floating garbage the first one could not;
     rung 3  an emergency compacting collection: the free list may hold
             enough total space in fragments too small for the request,
             and evacuation coalesces them (needs the packet tracer and
             in-pause sweep; degenerates to rung 2 otherwise).

   Each rung bumps its [Gstats] counter and emits a [Degrade_*] event. *)

let rung_force_finish t =
  t.st.Gstats.degrade_force_finish <- t.st.Gstats.degrade_force_finish + 1;
  Obs.instant t.mach.Machine.obs ~arg:t.cycle_no Obs_event.Degrade_force_finish;
  match (t.cfg.Config.mode, t.ph) with
  | _, Marking -> finalize t Halted
  | (Config.Cgc | Config.Gen), Idle -> full_collect t Degenerate
  | Config.Stw, Idle -> full_collect t Forced
  | _, Finalizing -> assert false

let rung_full_stw t =
  t.st.Gstats.degrade_full_stw <- t.st.Gstats.degrade_full_stw + 1;
  Obs.instant t.mach.Machine.obs ~arg:t.cycle_no Obs_event.Degrade_full_stw;
  full_collect t Forced

let compaction_possible t =
  (not t.cfg.Config.lazy_sweep)
  && t.cfg.Config.load_balance = Config.Packets
  (* With a nursery carved off the top, emergency compaction would
     evacuate into (or free ranges out of) the nursery; the rung
     degenerates to a plain full collection instead. *)
  && t.old_limit = Heap.nslots t.hp

let rung_emergency_compact t =
  t.st.Gstats.degrade_compact <- t.st.Gstats.degrade_compact + 1;
  Obs.instant t.mach.Machine.obs ~arg:t.cycle_no Obs_event.Degrade_compact;
  if compaction_possible t then begin
    t.emergency_compact <- true;
    Fun.protect
      ~finally:(fun () -> t.emergency_compact <- false)
      (fun () -> full_collect t Forced)
  end
  else full_collect t Forced

let raise_oom t ~phase0 ~request =
  t.st.Gstats.oom_raised <- t.st.Gstats.oom_raised + 1;
  Obs.instant t.mach.Machine.obs ~arg:request Obs_event.Oom;
  raise
    (Out_of_memory
       {
         oom_phase = phase0;
         oom_request = request;
         oom_cycle = t.cycle_no;
         oom_free = Heap.free_slots t.hp;
         oom_live = live_estimate t;
         oom_nslots = Heap.nslots t.hp;
         oom_pool = Pool.counts t.pl;
         oom_rungs = 3;
       })

let degrade : 'a. t -> request:int -> attempt:(unit -> 'a option) -> 'a =
 fun t ~request ~attempt ->
  let phase0 = t.ph in
  Obs.instant t.mach.Machine.obs Obs_event.Alloc_failure;
  rung_force_finish t;
  match attempt () with
  | Some a -> a
  | None -> (
      rung_full_stw t;
      match attempt () with
      | Some a -> a
      | None -> (
          rung_emergency_compact t;
          match attempt () with
          | Some a -> a
          | None -> raise_oom t ~phase0 ~request))

(* Promotion allocation (Gen mode): raw old-space slots for a survivor
   copy, climbing the same degradation ladder as ordinary allocation on
   exhaustion.  Safe to call mid-minor: until the caller rewrites a
   referent slot, the extent is unreachable, and if a ladder collection
   sweeps it back onto the free list the retried [Heap.alloc_raw] simply
   re-carves a fresh one. *)
let alloc_old t ~size =
  match Heap.alloc_raw t.hp ~size with
  | Some a -> a
  | None ->
      degrade t ~request:size ~attempt:(fun () -> Heap.alloc_raw t.hp ~size)

let rec alloc t (m : Mctx.t) ~nrefs ~size =
  if size >= t.cfg.Config.large_object_slots then begin
    Machine.flush t.mach;
    pre_alloc_hook t m ~request:size;
    match try_alloc_large t ~size ~nrefs with
    | Some a ->
        note_black t size;
        account t m size;
        Machine.flush t.mach;
        a
    | None ->
        let a =
          degrade t ~request:size ~attempt:(fun () ->
              try_alloc_large t ~size ~nrefs)
        in
        note_black t size;
        account t m size;
        Machine.flush t.mach;
        a
  end
  else
    let a =
      Heap.cache_alloc_addr t.hp m.Mctx.cache ~size ~nrefs
        ~mark_new:(mark_new t)
    in
    if a <> Heap.no_addr then begin
      note_black t size;
      account t m size;
      a
    end
    else begin
        (* Slow path.  Retire (and publish) the old cache first so that
           the stack scan performed by the increment can validate this
           thread's objects through their allocation bits. *)
        Machine.flush t.mach;
        Heap.retire_cache t.hp m.Mctx.cache;
        pre_alloc_hook t m ~request:t.cfg.Config.cache_slots;
        (* Gen mode: refill from the nursery first (running a minor
           collection when it is exhausted and the major is idle); the
           old-space free list is the fallback — large objects above and
           nursery overflow during a concurrent major land there. *)
        let gen_refilled =
          match t.gen_refill with Some f -> f m ~min:size | None -> false
        in
        if gen_refilled then alloc t m ~nrefs ~size
        else if try_refill t m ~min:size then alloc t m ~nrefs ~size
        else begin
          degrade t ~request:size ~attempt:(fun () ->
              if try_refill t m ~min:size then Some () else None);
          alloc t m ~nrefs ~size
        end
    end

(* ------------------------------------------------------------------ *)
(* Background tracing threads                                          *)

let background_body t () =
  let idle_nap = t.mach.Machine.cost.Cost.cycles_per_ms / 4 in
  while not (Sched.stop_requested t.sched) do
    (* Background-stall injection: the low-priority tracer is descheduled
       for a while, starving the cycle of its free tracing credit. *)
    (let stall = Fault.bg_stall t.cfg.Config.faults in
     if stall > 0 then Sched.sleep stall);
    if t.ph = Marking then begin
      let session = Tracer.new_session t.tr in
      let n = find_work t session ~budget:t.cfg.Config.bg_chunk in
      Tracer.release t.tr session;
      Machine.flush t.mach;
      if n > 0 then begin
        t.bg_window_traced <- t.bg_window_traced + n;
        Obs.instant t.mach.Machine.obs ~arg:n Obs_event.Bg_chunk;
        if trace_complete t then finalize t Completed;
        Sched.yield ()
      end
      else begin
        if trace_complete t then finalize t Completed;
        Sched.sleep (idle_nap / 4)
      end
    end
    else begin
      (* Section 7: spread deferred sweeping over the idle background
         threads too, so the free list refills before mutators must
         sweep on their own allocation paths. *)
      match t.lazy_state with
      | Some lz when not (Sweep.lazy_finished lz) ->
          ignore (Sweep.lazy_step t.hp lz ~max_slots:16384);
          Machine.flush t.mach;
          Sched.yield ()
      | _ -> Sched.sleep idle_nap
    end
  done

let start_background t =
  if not t.bg_started then begin
    t.bg_started <- true;
    match t.cfg.Config.mode with
    | Config.Stw -> ()
    | Config.Cgc | Config.Gen ->
        for i = 1 to t.cfg.Config.n_background do
          ignore
            (Sched.spawn t.sched
               ~name:(Printf.sprintf "gc-background-%d" i)
               ~prio:Sched.Low (background_body t))
        done
  end
