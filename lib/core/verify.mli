(** Heap invariant verifier.

    A host-side (uncharged, simulation-invisible) checker the collector
    runs at every cycle boundary when {!Config.t.verify} is set, and that
    the fault-injection tests run to prove that injected degradation never
    turns into heap corruption.  Checks, in order:

    {ol
    {- {e Reachability}: every object reachable from the mutator root
       arrays (conservatively filtered exactly like the tracer's root
       scan) and from the global-roots table has a valid header, its
       allocation bit set, and in-range reference fields;}
    {- {e Mark/phase consistency}: when [expect_marked] (true at the end
       of a collection's stop-the-world phase, where marking is complete
       and allocation has been black), every reachable object's mark bit
       is set — an unmarked reachable object would be swept;}
    {- {e Free-list disjointness}: no free-list chunk overlaps any
       reachable object, and no slot inside a free chunk carries a set
       allocation bit;}
    {- {e Card-table soundness}: when [expect_clean_cards] (true at the
       end of the stop-the-world phase, after the final cleaning pass and
       the overflow re-mark loop), no card is left dirty.}}

    All reads use committed ([_sc]) accessors: the world is stopped and
    store buffers drained when the collector calls this, so committed
    state is the truth. *)

exception Invariant_violation of string
(** Raised with a human-readable description of the first violated
    invariant (which object / chunk / card, and why). *)

type report = {
  objects : int;  (** reachable objects walked *)
  live_slots : int;  (** total slots covered by reachable objects *)
  free_chunks : int;  (** free-list chunks checked *)
  free_slots : int;  (** total slots on the free list *)
}

val check :
  heap:Cgc_heap.Heap.t ->
  roots:int array list ->
  globals:int array ->
  expect_marked:bool ->
  expect_clean_cards:bool ->
  label:string ->
  report
(** Walk the heap and raise {!Invariant_violation} on the first breach.
    [roots] are the mutator root arrays (conservative), [globals] the
    precise global table.  [label] prefixes violation messages (e.g.
    ["cycle 12"]). *)

val check_nursery :
  heap:Cgc_heap.Heap.t ->
  young:Cgc_heap.Card_table.t ->
  n_lo:int ->
  n_hi:int ->
  bump:int ->
  pins:(int * int) list ->
  caches:(int * int * int) list ->
  promoted:int list ->
  stage:[ `Pre | `Post ] ->
  label:string ->
  unit
(** Nursery invariants (Gen mode), run at minor-collection boundaries
    under [Config.verify].  Always: the carve pointer [bump] and every
    live allocation-cache extent ([caches], from
    {!Cgc_heap.Heap.cache_extent}) stay inside the nursery
    [[n_lo, n_hi)], and the pinned extents [pins] are sorted, disjoint
    and in bounds.  At [`Pre] (caches published, evacuation about to
    start): every old->young reference sits on a dirty card of the
    [young] remembered set — a clean card hiding such an edge is exactly
    the bug the extended write barrier (and the pinned-edge re-dirtying)
    exists to prevent.  At [`Post] (nursery reset): the only allocation
    bits left in the nursery are the pinned survivors' (each a valid
    object), and every [promoted] survivor is a valid old-space object
    whose remaining young references, if any, point at pinned survivors.
    Raises {!Invariant_violation} on the first breach. *)
