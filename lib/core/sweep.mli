(** Bitwise sweep — parallel (in-pause) and lazy (section 7) variants.

    Bitwise sweep frees memory in time essentially proportional to the
    number of live objects by finding runs of unmarked slots in the mark
    bit vector.  The parallel variant splits the heap into one region per
    stop-the-world worker; each worker scans its region independently and
    a cheap serial merge stitches the boundary runs together and rebuilds
    the free list.

    The lazy variant implements the paper's future-work proposal: the
    pause ends right after marking, the free list starts empty, and
    mutators (or background threads) sweep incrementally from a cursor
    whenever the free list cannot satisfy an allocation. *)

type region
(** Per-worker sweep result: interior free gaps, the first marked address,
    the end of the last live object, and the live volume. *)

val sweep_region : Cgc_heap.Heap.t -> lo:int -> hi:int -> region
(** Scan one region of the mark bit vector.  Charges scan cost; safe to
    run from parallel worker threads. *)

val merge : ?limit:int -> Cgc_heap.Heap.t -> region array -> int
(** Clear the free list, install all free runs (clearing their allocation
    bits), and return the total live slots.  Regions must be given in
    ascending address order and cover the swept space exactly.  [limit]
    (default [Heap.nslots]) bounds the final tail run — [Gen] mode sweeps
    only the old space, and the nursery above [limit] must never reach
    the free list. *)

val regions : nslots:int -> workers:int -> (int * int) array
(** Split [1, nslots) into [workers] balanced [(lo, hi)] regions. *)

(** {2 Lazy sweep} *)

type lazy_t

val lazy_begin : Cgc_heap.Heap.t -> lazy_t
(** Clear the free list and start a sweep cursor at the bottom of the
    heap.  Call right after marking completes. *)

val lazy_step : Cgc_heap.Heap.t -> lazy_t -> max_slots:int -> bool
(** Sweep the next [max_slots] of address space, feeding the free list.
    Returns false if the sweep had already finished. *)

val lazy_finished : lazy_t -> bool

val lazy_pos : lazy_t -> int
(** Current sweep-cursor position (slots below it have been swept). *)

val lazy_live : lazy_t -> int
(** Live slots found so far (complete once the sweep finishes). *)

val lazy_finish : Cgc_heap.Heap.t -> lazy_t -> unit
(** Drive the sweep to completion (used when a new cycle must start while
    a lazy sweep is still in progress, since the new cycle clears the mark
    bits the sweep reads). *)
