module Stats = Cgc_util.Stats
module Histogram = Cgc_util.Histogram
module Cost = Cgc_smp.Cost

type cycle_row = {
  cycle : int;
  end_ms : float;
  pause_ms : float;
  mark_ms : float;
  sweep_ms : float;
  compact_ms : float;
  conc_cards : int;
  stw_cards : int;
  traced_conc : int;
  traced_stw : int;
  evac_slots : int;
  occupancy : float;
  degrade_force_finish : int;
  degrade_full_stw : int;
  degrade_compact : int;
}

type t = {
  pause_ms : Histogram.t;
  mark_ms : Histogram.t;
  sweep_ms : Histogram.t;
  compact_ms : Histogram.t;
  stw_cards : Stats.t;
  conc_cards : Stats.t;
  cc_ratio : Stats.t;
  occupancy_end : Stats.t;
  premature_free : Stats.t;
  cards_left : Stats.t;
  tracing_factor : Stats.t;
  fairness : Stats.t;
  cas_per_mb : Stats.t;
  traced_conc_slots : Stats.t;
  traced_stw_slots : Stats.t;
  float_slots : Stats.t;
  evac_slots : Stats.t;
  mutable cycle_log : cycle_row list;
  mutable cycles : int;
  mutable premature_cycles : int;
  mutable halted_cycles : int;
  mutable overflow_events : int;
  mutable max_deferred_packets : int;
  mutable degrade_force_finish : int;
  mutable degrade_full_stw : int;
  mutable degrade_compact : int;
  mutable oom_raised : int;
  mutable preconc_slots : int;
  mutable preconc_time : int;
  mutable conc_slots : int;
  mutable conc_time : int;
  mutable total_alloc_slots : int;
  (* Generational front end (Gen mode): minor-collection aggregates,
     kept out of the per-cycle CSV so the cgcsim-cycles-v1 schema is
     untouched. *)
  minor_pause_ms : Histogram.t;
  mutable minors : int;
  mutable promoted_slots : int;
  mutable minor_deferred : int;
}

let create () =
  {
    pause_ms = Histogram.create ();
    mark_ms = Histogram.create ();
    sweep_ms = Histogram.create ();
    compact_ms = Histogram.create ();
    stw_cards = Stats.create ();
    conc_cards = Stats.create ();
    cc_ratio = Stats.create ();
    occupancy_end = Stats.create ();
    premature_free = Stats.create ();
    cards_left = Stats.create ();
    tracing_factor = Stats.create ();
    fairness = Stats.create ();
    cas_per_mb = Stats.create ();
    traced_conc_slots = Stats.create ();
    traced_stw_slots = Stats.create ();
    float_slots = Stats.create ();
    evac_slots = Stats.create ();
    cycle_log = [];
    cycles = 0;
    premature_cycles = 0;
    halted_cycles = 0;
    overflow_events = 0;
    max_deferred_packets = 0;
    degrade_force_finish = 0;
    degrade_full_stw = 0;
    degrade_compact = 0;
    oom_raised = 0;
    preconc_slots = 0;
    preconc_time = 0;
    conc_slots = 0;
    conc_time = 0;
    total_alloc_slots = 0;
    minor_pause_ms = Histogram.create ();
    minors = 0;
    promoted_slots = 0;
    minor_deferred = 0;
  }

let reset t =
  Histogram.clear t.pause_ms;
  Histogram.clear t.mark_ms;
  Histogram.clear t.sweep_ms;
  Histogram.clear t.compact_ms;
  Stats.clear t.stw_cards;
  Stats.clear t.conc_cards;
  Stats.clear t.cc_ratio;
  Stats.clear t.occupancy_end;
  Stats.clear t.premature_free;
  Stats.clear t.cards_left;
  Stats.clear t.tracing_factor;
  Stats.clear t.fairness;
  Stats.clear t.cas_per_mb;
  Stats.clear t.traced_conc_slots;
  Stats.clear t.traced_stw_slots;
  Stats.clear t.float_slots;
  Stats.clear t.evac_slots;
  t.cycle_log <- [];
  t.cycles <- 0;
  t.premature_cycles <- 0;
  t.halted_cycles <- 0;
  t.overflow_events <- 0;
  t.max_deferred_packets <- 0;
  t.degrade_force_finish <- 0;
  t.degrade_full_stw <- 0;
  t.degrade_compact <- 0;
  t.oom_raised <- 0;
  t.preconc_slots <- 0;
  t.preconc_time <- 0;
  t.conc_slots <- 0;
  t.conc_time <- 0;
  t.total_alloc_slots <- 0;
  Histogram.clear t.minor_pause_ms;
  t.minors <- 0;
  t.promoted_slots <- 0;
  t.minor_deferred <- 0

let note_cycle t row =
  t.cycle_log <- row :: t.cycle_log;
  Histogram.add t.pause_ms row.pause_ms;
  Histogram.add t.mark_ms row.mark_ms;
  Histogram.add t.sweep_ms row.sweep_ms;
  Histogram.add t.compact_ms row.compact_ms

let cycle_rows t = List.rev t.cycle_log

let csv_header =
  [
    "cycle"; "end_ms"; "pause_ms"; "mark_ms"; "sweep_ms"; "compact_ms";
    "conc_cards"; "stw_cards"; "traced_conc_slots"; "traced_stw_slots";
    "evac_slots"; "occupancy"; "degrade_force_finish"; "degrade_full_stw";
    "degrade_compact";
  ]

let csv_rows t =
  List.map
    (fun r ->
      [
        string_of_int r.cycle;
        Printf.sprintf "%.3f" r.end_ms;
        Printf.sprintf "%.4f" r.pause_ms;
        Printf.sprintf "%.4f" r.mark_ms;
        Printf.sprintf "%.4f" r.sweep_ms;
        Printf.sprintf "%.4f" r.compact_ms;
        string_of_int r.conc_cards;
        string_of_int r.stw_cards;
        string_of_int r.traced_conc;
        string_of_int r.traced_stw;
        string_of_int r.evac_slots;
        Printf.sprintf "%.4f" r.occupancy;
        string_of_int r.degrade_force_finish;
        string_of_int r.degrade_full_stw;
        string_of_int r.degrade_compact;
      ])
    (cycle_rows t)

let rate slots time cost =
  if time <= 0 then 0.0
  else
    let kb = float_of_int (slots * 8) /. 1024.0 in
    kb /. Cost.ms_of_cycles cost time

let alloc_rate_preconc t ~cost = rate t.preconc_slots t.preconc_time cost
let alloc_rate_conc t ~cost = rate t.conc_slots t.conc_time cost

let utilization t =
  let pre = t.preconc_slots and pt = t.preconc_time in
  let con = t.conc_slots and ct = t.conc_time in
  (* At tracing rate 1 there is (almost) no pre-concurrent phase, so the
     baseline rate cannot be measured from this run (the paper hits the
     same problem, footnote 6); report 0 and let callers substitute a
     baseline from another run. *)
  if pt <= 0 || ct <= 0 || pre <= 0 || pt * 10 < ct then 0.0
  else
    let pre_rate = float_of_int pre /. float_of_int pt in
    let conc_rate = float_of_int con /. float_of_int ct in
    conc_rate /. pre_rate
