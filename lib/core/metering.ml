module Ewma = Cgc_util.Ewma

type t = {
  cfg : Config.t;
  l_est : Ewma.t;
  m_est : Ewma.t;
  best : Ewma.t;
}

let create (cfg : Config.t) ~heap_slots =
  let h = float_of_int heap_slots in
  {
    cfg;
    l_est =
      Ewma.create ~alpha:cfg.ewma_alpha
        ~init:(cfg.initial_l_fraction *. h) ();
    m_est =
      Ewma.create ~alpha:cfg.ewma_alpha
        ~init:(cfg.initial_m_fraction *. h) ();
    best = Ewma.create ~alpha:cfg.ewma_alpha ~init:0.0 ();
  }

(* Meter-lowball injection scales the L+M view the meter works from, so
   both the kickoff threshold and the increment rate underestimate. *)
let fault_scale t = Cgc_fault.Fault.meter_scale t.cfg.Config.faults

let kickoff_threshold t =
  fault_scale t *. (Ewma.value t.l_est +. Ewma.value t.m_est) /. t.cfg.k0

let should_start t ~free = float_of_int free < kickoff_threshold t

let increment_rate t ~traced ~free =
  let scale = fault_scale t in
  let l = scale *. Ewma.value t.l_est
  and m = scale *. Ewma.value t.m_est in
  let kmax = t.cfg.kmax_factor *. t.cfg.k0 in
  let f = float_of_int (max free 1) in
  let k = (m +. l -. float_of_int traced) /. f in
  if k < 0.0 then
    (* L or M was underestimated: trace flat out at Kmax (section 3.1). *)
    kmax
  else begin
    let k = Float.min k kmax in
    (* Background credit: if the background threads are tracing faster
       than the required rate, the mutators need not trace at all. *)
    let b = Ewma.value t.best in
    let k = if k < b then 0.0 else k -. b in
    (* Corrective boost when behind schedule. *)
    let k =
      if k > t.cfg.k0 then k +. ((k -. t.cfg.k0) *. t.cfg.corrective) else k
    in
    Float.min k (t.cfg.kmax_factor *. kmax)
  end

let increment_work t ~traced ~free ~alloc =
  let k = increment_rate t ~traced ~free in
  int_of_float (ceil (k *. float_of_int alloc))

let observe_background t ~bg_traced ~mutator_alloc =
  if mutator_alloc > 0 then
    Ewma.observe t.best (float_of_int bg_traced /. float_of_int mutator_alloc)

let best t = Ewma.value t.best
let l_estimate t = Ewma.value t.l_est
let m_estimate t = Ewma.value t.m_est

let end_cycle t ~l_observed ~m_observed =
  Ewma.observe t.l_est (float_of_int l_observed);
  Ewma.observe t.m_est (float_of_int m_observed)
