(** The kickoff and progress formulas of section 3.

    All quantities are in heap slots (1 slot = 8 simulated bytes); the
    tracing rate K is dimensionless (slots traced per slot allocated), so
    the formulas are identical to the paper's byte-based ones.

    {ul
    {- {e Kickoff}: a new concurrent cycle starts when free space drops
       below [(L + M) / K0], where [L] predicts the volume to be traced
       and [M] the dirty-card volume to be scanned; both are exponential
       smoothing averages over past cycles.}
    {- {e Progress}: at each increment the current rate is
       [K = (M + L - T) / F]; a negative K (under-estimated L or M) is
       clamped to [Kmax = kmax_factor * K0].  The background threads'
       smoothed rate [Best] is subtracted — if they are keeping up, the
       mutators trace nothing.  If the remaining K exceeds K0 (tracing
       behind schedule) it is boosted by the corrective term:
       [K + (K - K0) * C].}} *)

type t
(** Mutable metering state for one collector: the L, M and Best
    exponential-smoothing estimators plus the {!Config.t} policy knobs
    (K0, the corrective constant C, Kmax). *)

val create : Config.t -> heap_slots:int -> t
(** Fresh estimators.  Before any cycle has completed, L is seeded with
    half the heap and M with zero, so the first kickoff errs early
    (starting a cycle too soon is safe; too late risks an allocation
    failure). *)

val kickoff_threshold : t -> float
(** Free-slot threshold that triggers a new concurrent cycle. *)

val should_start : t -> free:int -> bool
(** [free < kickoff_threshold], i.e. time to start a concurrent cycle. *)

val increment_rate : t -> traced:int -> free:int -> float
(** The effective mutator tracing rate K for an increment, after
    clamping, background credit and the corrective term. *)

val increment_work : t -> traced:int -> free:int -> alloc:int -> int
(** Slots of tracing to assign to a mutator that just allocated [alloc]
    slots: [increment_rate * alloc], rounded up. *)

val observe_background : t -> bg_traced:int -> mutator_alloc:int -> unit
(** Fold one measurement window into Best ([B = bg / alloc]). *)

val best : t -> float
(** Current smoothed background tracing rate Best (slots traced by the
    background threads per slot allocated by mutators). *)

val l_estimate : t -> float
(** Predicted live (to-be-traced) volume for the current cycle, slots. *)

val m_estimate : t -> float
(** Predicted dirty-card rescan volume for the current cycle, slots. *)

val end_cycle : t -> l_observed:int -> m_observed:int -> unit
(** Update the L and M estimators with this cycle's actual values. *)
