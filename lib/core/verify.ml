module Heap = Cgc_heap.Heap
module Arena = Cgc_heap.Arena
module Alloc_bits = Cgc_heap.Alloc_bits
module Card_table = Cgc_heap.Card_table
module Freelist = Cgc_heap.Freelist

exception Invariant_violation of string

type report = {
  objects : int;
  live_slots : int;
  free_chunks : int;
  free_slots : int;
}

let fail label fmt =
  Printf.ksprintf
    (fun msg -> raise (Invariant_violation (label ^ ": " ^ msg)))
    fmt

let check ~heap ~roots ~globals ~expect_marked ~expect_clean_cards ~label =
  let arena = Heap.arena heap in
  let abits = Heap.alloc_bits heap in
  let nslots = Heap.nslots heap in
  (* One byte per slot: which slots are covered by a reachable object.
     Doubles as the visited set (an object's first slot is its address). *)
  let live = Bytes.make nslots '\000' in
  let objects = ref 0 in
  let live_slots = ref 0 in
  let rec walk from addr =
    if addr <> 0 && Bytes.get live addr <> '\002' then begin
      if Bytes.get live addr = '\001' then
        fail label
          "object %d (from %d) starts inside another reachable object" addr
          from;
      if not (Arena.in_heap arena addr) then
        fail label "reference %d (from %d) is outside the heap" addr from;
      if not (Arena.header_valid_sc arena addr) then
        fail label "reachable object %d (from %d) has an invalid header" addr
          from;
      if not (Alloc_bits.is_set_sc abits addr) then
        fail label
          "reachable object %d (from %d) has no allocation bit (caches are \
           retired at a cycle boundary, so every live object must be \
           published)"
          addr from;
      if expect_marked && not (Heap.is_marked heap addr) then
        fail label
          "reachable object %d (from %d) is unmarked at the end of a \
           collection: it would be swept"
          addr from;
      let size = Arena.size_of_sc arena addr in
      if addr + size > nslots then
        fail label "object %d (size %d) extends past the heap end" addr size;
      for i = addr + 1 to addr + size - 1 do
        if Bytes.get live i <> '\000' then
          fail label "reachable objects overlap at slot %d (inside %d)" i addr;
        Bytes.set live i '\001'
      done;
      Bytes.set live addr '\002';
      incr objects;
      live_slots := !live_slots + size;
      let nrefs = Arena.nrefs_of_sc arena addr in
      for i = 0 to nrefs - 1 do
        walk addr (Arena.ref_get_sc arena addr i)
      done
    end
  in
  (* Mutator stacks are conservative: follow only values the tracer's own
     root filter would have accepted (Tracer.push_root). *)
  List.iteri
    (fun mi root_array ->
      Array.iter
        (fun v ->
          if
            Arena.in_heap arena v
            && Alloc_bits.is_set_sc abits v
            && Arena.header_valid_sc arena v
          then walk (-(mi + 1)) v)
        root_array)
    roots;
  (* The global table is precise: every non-null entry must be an object. *)
  Array.iteri
    (fun i v ->
      if v <> 0 then begin
        if
          not
            (Arena.in_heap arena v
            && Alloc_bits.is_set_sc abits v
            && Arena.header_valid_sc arena v)
        then fail label "global root %d holds %d, not a valid object" i v;
        walk (-1000 - i) v
      end)
    globals;
  (* Free-list disjointness: a chunk overlapping a reachable object means
     the allocator will hand out live memory; a set allocation bit inside
     a chunk means sweep reclaimed a published object it should not have
     (or failed to clear the bit). *)
  let free_chunks = ref 0 in
  let free_slots = ref 0 in
  Freelist.iter (Heap.freelist heap) (fun ~addr ~size ->
      incr free_chunks;
      free_slots := !free_slots + size;
      if addr < 1 || addr + size > nslots then
        fail label "free chunk [%d, %d) is outside the heap" addr (addr + size);
      for i = addr to addr + size - 1 do
        if Bytes.get live i <> '\000' then
          fail label
            "free chunk [%d, %d) overlaps reachable object slot %d" addr
            (addr + size) i;
        if Alloc_bits.is_set_sc abits i then
          fail label
            "slot %d inside free chunk [%d, %d) still has its allocation \
             bit set"
            i addr (addr + size)
      done);
  (* The card table's O(1) dirty counter must agree with a committed-byte
     rescan — a drift here means some write path bypassed the counter
     maintenance and every metering decision based on it is suspect. *)
  let cards = Heap.cards heap in
  let counted = Card_table.dirty_count cards in
  let recounted = Card_table.recount cards in
  if counted <> recounted then
    fail label
      "incremental dirty-card counter (%d) disagrees with a committed \
       rescan (%d)"
      counted recounted;
  if expect_clean_cards then begin
    if counted > 0 then
      fail label
        "%d dirty cards remain after the final stop-the-world cleaning pass"
        counted
  end;
  {
    objects = !objects;
    live_slots = !live_slots;
    free_chunks = !free_chunks;
    free_slots = !free_slots;
  }

(* ------------------------------------------------------------------ *)
(* Nursery invariants (Gen mode)                                       *)

let check_nursery ~heap ~young ~n_lo ~n_hi ~bump ~pins ~caches ~promoted
    ~stage ~label =
  let arena = Heap.arena heap in
  let abits = Heap.alloc_bits heap in
  if bump < n_lo || bump > n_hi then
    fail label "nursery bump pointer %d outside the nursery [%d, %d)" bump n_lo
      n_hi;
  ignore
    (List.fold_left
       (fun prev_end (pa, ps) ->
         if pa < n_lo || pa + ps > n_hi then
           fail label "pinned extent [%d, %d) escapes the nursery [%d, %d)" pa
             (pa + ps) n_lo n_hi;
         if pa < prev_end then
           fail label "pinned extents overlap or are unsorted at %d" pa;
         pa + ps)
       n_lo pins);
  let pin_start a = List.exists (fun (pa, _) -> pa = a) pins in
  List.iter
    (fun (base, cur, limit) ->
      if limit > 0 then begin
        (* A live cache extent is a carved nursery chunk: it must sit
           inside the nursery, below the carve pointer, and its own bump
           cursor must stay inside it. *)
        if base < n_lo || limit > n_hi then
          fail label "allocation cache [%d, %d) escapes the nursery [%d, %d)"
            base limit n_lo n_hi;
        if limit > bump then
          fail label
            "allocation cache [%d, %d) extends past the nursery carve \
             pointer %d"
            base limit bump;
        if cur < base || cur > limit then
          fail label "cache bump pointer %d outside its chunk [%d, %d)" cur
            base limit
      end)
    caches;
  match stage with
  | `Pre ->
      (* Every old->young edge must sit on a dirty young card (parent's
         header card, matching the barrier's convention), or the minor
         about to run would miss the referent and reclaim it live.  All
         caches were published before this check, so committed state is
         the truth. *)
      let addr = ref (Alloc_bits.next_set abits 1) in
      while !addr < n_lo do
        let a = !addr in
        if Arena.header_valid_sc arena a then begin
          let nrefs = Arena.nrefs_of_sc arena a in
          for i = 0 to nrefs - 1 do
            let v = Arena.ref_get_sc arena a i in
            if v >= n_lo && v < n_hi then
              if not (Card_table.is_dirty young (Arena.card_of_addr a)) then
                fail label
                  "old object %d holds young reference %d (slot %d) but its \
                   young card %d is clean"
                  a v i (Arena.card_of_addr a)
          done
        end;
        addr := Alloc_bits.next_set abits (a + 1)
      done
  | `Post ->
      (* The nursery was reset: the only published objects left in it
         are the pinned survivors, each a valid object at a pin start. *)
      let addr = ref (Alloc_bits.next_set abits n_lo) in
      while !addr < n_hi do
        let a = !addr in
        if not (pin_start a) then
          fail label
            "slot %d carries an allocation bit after the nursery reset but \
             is not a pinned survivor"
            a;
        addr := Alloc_bits.next_set abits (a + 1)
      done;
      List.iter
        (fun (pa, _) ->
          if not (Alloc_bits.is_set_sc abits pa) then
            fail label "pinned survivor %d lost its allocation bit" pa;
          if not (Arena.header_valid_sc arena pa) then
            fail label "pinned survivor %d has an invalid header" pa)
        pins;
      (* Every survivor copied out must be a fully-formed old-space
         object whose only remaining young references point at pinned
         survivors (those edges stay registered via re-dirtied cards). *)
      List.iter
        (fun a ->
          if a < 1 || a >= n_lo then
            fail label "promoted object %d is not in the old space" a;
          if not (Alloc_bits.is_set_sc abits a) then
            fail label "promoted object %d has no allocation bit" a;
          if not (Arena.header_valid_sc arena a) then
            fail label "promoted object %d has an invalid header" a;
          let size = Arena.size_of_sc arena a in
          if a + size > n_lo then
            fail label
              "promoted object %d (size %d) straddles the nursery boundary %d"
              a size n_lo;
          let nrefs = Arena.nrefs_of_sc arena a in
          for i = 0 to nrefs - 1 do
            let v = Arena.ref_get_sc arena a i in
            if v >= n_lo && v < n_hi && not (pin_start v) then
              fail label
                "promoted object %d still references nursery slot %d (slot \
                 %d) after evacuation"
                a v i
          done)
        promoted
