module Heap = Cgc_heap.Heap
module Arena = Cgc_heap.Arena
module Alloc_bits = Cgc_heap.Alloc_bits
module Card_table = Cgc_heap.Card_table
module Pool = Cgc_packets.Pool
module Packet = Cgc_packets.Packet
module Machine = Cgc_smp.Machine
module Fence = Cgc_smp.Fence
module Cost = Cgc_smp.Cost

type session = {
  mutable input : Packet.t option;
  mutable output : Packet.t option;
  mutable is_stolen : bool;
}

type t = {
  cfg : Config.t;
  heap : Heap.t;
  pl : Pool.t;
  mach : Machine.t;
  mutable sessions : session list;
  mutable compact : Compact.t option;
  mutable marked : int;
  mutable retraced : int;
  mutable overflows : int;
  mutable corrupt : int;
  mutable scratch_safe : int array;
  mutable scratch_unsafe : int array;
      (* reusable partition buffers for [acquire_input]'s allocation-bit
         filter; grown to packet capacity on first use.  Safe to share
         across the (self-)recursive calls: the recursion only happens
         after both buffers have been fully drained back into packets. *)
}

let create cfg heap pl =
  {
    cfg;
    heap;
    pl;
    mach = Heap.machine heap;
    sessions = [];
    compact = None;
    marked = 0;
    retraced = 0;
    overflows = 0;
    corrupt = 0;
    scratch_safe = [||];
    scratch_unsafe = [||];
  }

let pool t = t.pl

let set_compactor t c = t.compact <- Some c

let new_session t =
  let s = { input = None; output = None; is_stolen = false } in
  t.sessions <- s :: t.sessions;
  s

let stolen s = s.is_stolen

let unregister t s = t.sessions <- List.filter (fun s' -> s' != s) t.sessions

let release t s =
  if not s.is_stolen then begin
    (match s.output with
    | Some p ->
        Pool.put t.pl p;
        s.output <- None
    | None -> ());
    (match s.input with
    | Some p ->
        Pool.put t.pl p;
        s.input <- None
    | None -> ())
  end;
  unregister t s

let confiscate_all t =
  List.iter
    (fun s ->
      if not s.is_stolen then begin
        s.is_stolen <- true;
        (match s.output with
        | Some p ->
            Pool.put t.pl p;
            s.output <- None
        | None -> ());
        match s.input with
        | Some p ->
            Pool.put t.pl p;
            s.input <- None
        | None -> ()
      end)
    t.sessions;
  t.sessions <- []

(* Acquire an input packet, applying the section 5.2 allocation-bit
   filtering.  Unsafe entries are moved to a deferred packet.  Returns a
   packet guaranteed to contain only safe entries (it may come back empty
   after filtering, in which case we retry a bounded number of times). *)
let rec acquire_input ?(tries = 3) t =
  if tries = 0 then None
  else
    match Pool.get_input t.pl with
    | None -> None
    | Some p ->
        if not t.cfg.Config.defer_protocol then Some p
        else begin
          let abits = Heap.alloc_bits t.heap in
          let n = Packet.count p in
          if Array.length t.scratch_safe < n then begin
            t.scratch_safe <- Array.make n 0;
            t.scratch_unsafe <- Array.make n 0
          end;
          let safe = t.scratch_safe and nsafe = ref 0 in
          let unsafe = t.scratch_unsafe and nunsafe = ref 0 in
          (* Step 2 of the protocol: test allocation bits, partitioning. *)
          let rec drain () =
            let v = Pool.pop_raw t.pl p in
            if v <> Pool.no_entry then begin
              Machine.charge t.mach t.mach.Machine.cost.Cost.trace_slot;
              if Alloc_bits.is_set abits v then begin
                safe.(!nsafe) <- v;
                incr nsafe
              end
              else begin
                unsafe.(!nunsafe) <- v;
                incr nunsafe
              end;
              drain ()
            end
          in
          drain ();
          (* Step 3: fence, ordering the bit loads before the traces. *)
          Machine.fence t.mach Fence.Packet_defer;
          if !nunsafe = 0 then begin
            for i = 0 to !nsafe - 1 do
              ignore (Pool.push t.pl p safe.(i))
            done;
            if Packet.is_empty p then begin
              Pool.put t.pl p;
              acquire_input ~tries:(tries - 1) t
            end
            else Some p
          end
          else begin
            match Pool.get_output t.pl with
            | Some d ->
                (* Park the unsafe entries in a deferred packet; keep the
                   safe ones for tracing. *)
                for i = 0 to !nunsafe - 1 do
                  ignore (Pool.push t.pl d unsafe.(i))
                done;
                Pool.put_deferred t.pl d;
                for i = 0 to !nsafe - 1 do
                  ignore (Pool.push t.pl p safe.(i))
                done;
                if Packet.is_empty p then begin
                  Pool.put t.pl p;
                  acquire_input ~tries:(tries - 1) t
                end
                else Some p
            | None ->
                (* No spare packet to defer into: park the whole packet
                   (safe and unsafe entries together) in the Deferred
                   sub-pool — nothing is lost, the safe work just waits
                   for the next recycle — and try another input. *)
                for i = 0 to !nsafe - 1 do
                  ignore (Pool.push t.pl p safe.(i))
                done;
                for i = 0 to !nunsafe - 1 do
                  ignore (Pool.push t.pl p unsafe.(i))
                done;
                Pool.put_deferred t.pl p;
                acquire_input ~tries:(tries - 1) t
          end
        end

(* Ensure the session has an input packet with work; per section 4.3 the
   new packet is obtained before the old one is returned.  When the pool
   has no input work but our own output packet does, the output is
   returned to the pool (fenced) and re-acquired — without this a lone
   tracer would starve on work it generated itself.  Roles are still
   never swapped in place: the packet goes through the pool. *)
let input_with_work t s =
  if s.is_stolen then None
  else
    match s.input with
    | Some p when not (Packet.is_empty p) -> Some p
    | old -> (
        match acquire_input t with
        | Some fresh ->
            (match old with Some p -> Pool.put t.pl p | None -> ());
            s.input <- Some fresh;
            Some fresh
        | None -> (
            match s.output with
            | Some o when not (Packet.is_empty o) -> (
                Pool.put t.pl o;
                s.output <- None;
                (* On real hardware other starved tracers race us for the
                   packet we just returned; give them that chance instead
                   of atomically taking our own work back. *)
                Machine.flush t.mach;
                t.mach.Machine.relinquish ();
                if s.is_stolen then None
                else
                  match acquire_input t with
                  | Some fresh ->
                      (match old with Some p -> Pool.put t.pl p | None -> ());
                      s.input <- Some fresh;
                      Some fresh
                  | None -> None)
            | _ -> None))

let dirty_card_of t addr =
  Card_table.dirty (Heap.cards t.heap) (Arena.card_of_addr addr)

(* Find room to push a marked object; implements output replacement,
   input/output swap and the overflow fallback. *)
let push_to_output t s addr =
  let pushed =
    match s.output with Some o -> Pool.push t.pl o addr | None -> false
  in
  if not pushed then begin
    (* Get the new packet first; only then return the old one. *)
    match Pool.get_output t.pl with
    | Some fresh ->
        (match s.output with Some o -> Pool.put t.pl o | None -> ());
        s.output <- Some fresh;
        ignore (Pool.push t.pl fresh addr)
    | None -> (
        (* Try swapping input and output (the one exception to the
           fixed-role rule, section 4.3). *)
        match s.input with
        | Some i when not (Packet.is_full i) ->
            let o = s.output in
            s.input <- o;
            s.output <- Some i;
            ignore (Pool.push t.pl i addr)
        | _ ->
            (* Overflow: the object stays marked and its card is dirtied
               so card cleaning will retrace it. *)
            t.overflows <- t.overflows + 1;
            dirty_card_of t addr)
  end

let watch =
  match Sys.getenv_opt "CGC_WATCH" with
  | Some v -> int_of_string v
  | None -> -1

let push_obj t s addr =
  if addr = watch then
    Printf.printf "[watch %d] PUSHED at t=%d
%!" addr (Machine.now t.mach);
  if Heap.mark_test_and_set t.heap addr then
    if s.is_stolen then begin
      (* The session lost its packets to a world-stop; fall back to the
         overflow treatment so the object is retraced from its card. *)
      t.overflows <- t.overflows + 1;
      dirty_card_of t addr
    end
    else push_to_output t s addr

let valid_object t addr =
  Arena.in_heap (Heap.arena t.heap) addr
  && Alloc_bits.is_set (Heap.alloc_bits t.heap) addr
  && Arena.header_valid (Heap.arena t.heap) addr

let push_root t s v =
  Machine.charge t.mach t.mach.Machine.cost.Cost.stack_slot;
  if valid_object t v then begin
    (* A stack slot is conservative: it cannot be rewritten, so an area
       object it references must not move. *)
    (match t.compact with
    | Some cp -> Compact.pin cp v
    | None -> ());
    if not (Heap.is_marked t.heap v) then begin
      push_obj t s v;
      true
    end
    else false
  end
  else false

let scan_object t s ~retrace addr =
  let arena = Heap.arena t.heap in
  if not (Arena.header_valid arena addr) then begin
    (* Tracing an object whose initialising stores are not yet visible:
       the section 5.2 anomaly.  Real hardware would fault; we count. *)
    t.corrupt <- t.corrupt + 1;
    0
  end
  else begin
    let size = Arena.size_of arena addr in
    let nrefs = Arena.nrefs_of arena addr in
    let c = t.mach.Machine.cost in
    Machine.charge t.mach (c.Cost.trace_obj + (nrefs * c.Cost.trace_slot));
    (* Do not read a child's header here: it may be a freshly allocated
       object whose initialising stores are not visible yet.  Push the
       address; its header is examined only when it is popped for
       scanning, after the section 5.2 allocation-bit filter has declared
       it safe.  The compactor test is hoisted out of the loop: most
       cycles run with no compactor armed, and this loop is the hottest
       in the simulator. *)
    (match t.compact with
    | None ->
        for i = 0 to nrefs - 1 do
          let child = Arena.ref_get arena addr i in
          if child <> 0 then
            if Arena.in_heap arena child then push_obj t s child
            else t.corrupt <- t.corrupt + 1
        done
    | Some cp ->
        for i = 0 to nrefs - 1 do
          let child = Arena.ref_get arena addr i in
          if child <> 0 then
            if Arena.in_heap arena child then begin
              if Compact.in_area cp child then
                Compact.record_ref cp ~parent:addr ~idx:i ~child;
              push_obj t s child
            end
            else t.corrupt <- t.corrupt + 1
        done);
    if retrace then t.retraced <- t.retraced + size
    else t.marked <- t.marked + size;
    size
  end

let trace_until t s ~budget =
  let traced = ref 0 in
  let continue = ref true in
  while !continue && !traced < budget do
    if s.is_stolen then continue := false
    else
      match input_with_work t s with
      | None -> continue := false
      | Some p ->
          let addr = Pool.pop_raw t.pl p in
          if addr <> Pool.no_entry then begin
            traced := !traced + scan_object t s ~retrace:false addr;
            (* Safe point: spend the accumulated cycle debt.  Preemption
               can only happen here, between whole-object scans. *)
            Machine.flush t.mach
          end
  done;
  Machine.flush t.mach;
  !traced

let scan_roots t s roots =
  let n = ref 0 in
  Array.iter
    (fun v ->
      if push_root t s v then incr n;
      Machine.flush t.mach)
    roots;
  Cgc_obs.Obs.instant t.mach.Machine.obs ~arg:!n Cgc_obs.Event.Root_scan;
  !n

let marked_slots t = t.marked
let retraced_slots t = t.retraced
let overflow_events t = t.overflows
let corruptions t = t.corrupt

let live_sessions t = List.length t.sessions

let reset_cycle t =
  t.marked <- 0;
  t.retraced <- 0
