module Heap = Cgc_heap.Heap
module Arena = Cgc_heap.Arena
module Alloc_bits = Cgc_heap.Alloc_bits
module Machine = Cgc_smp.Machine
module Cost = Cgc_smp.Cost
module Sched = Cgc_sim.Sched
module Obs = Cgc_obs.Obs
module Obs_event = Cgc_obs.Event

type stack = { mutable data : int array; mutable n : int }

let stack_push st v =
  if st.n = Array.length st.data then begin
    let bigger = Array.make (2 * st.n) 0 in
    Array.blit st.data 0 bigger 0 st.n;
    st.data <- bigger
  end;
  st.data.(st.n) <- v;
  st.n <- st.n + 1

let stack_pop st =
  if st.n = 0 then None
  else begin
    st.n <- st.n - 1;
    Some st.data.(st.n)
  end

let expose_threshold = 16
let batch = 8

type t = {
  heap : Heap.t;
  mach : Machine.t;
  priv : stack array;
  public : stack array; (* CAS-protected in the real system *)
  mutable items : int; (* entries across all stacks *)
  mutable busy : int; (* workers currently scanning an object *)
  mutable marked : int;
  mutable nsteals : int;
  mutable nexposes : int;
}

let create heap ~nworkers =
  {
    heap;
    mach = Heap.machine heap;
    priv = Array.init nworkers (fun _ -> { data = Array.make 256 0; n = 0 });
    public = Array.init nworkers (fun _ -> { data = Array.make 64 0; n = 0 });
    items = 0;
    busy = 0;
    marked = 0;
    nsteals = 0;
    nexposes = 0;
  }

let push_local t ~worker v =
  stack_push t.priv.(worker) v;
  t.items <- t.items + 1;
  (* Expose surplus for stealing: one synchronised batch transfer. *)
  if t.priv.(worker).n > expose_threshold then begin
    Machine.cas t.mach;
    t.nexposes <- t.nexposes + 1;
    for _ = 1 to batch do
      match stack_pop t.priv.(worker) with
      | Some v -> stack_push t.public.(worker) v
      | None -> ()
    done
  end

let push_obj t ~worker addr =
  if Heap.mark_test_and_set t.heap addr then push_local t ~worker addr

let valid_object t addr =
  Arena.in_heap (Heap.arena t.heap) addr
  && Alloc_bits.is_set (Heap.alloc_bits t.heap) addr
  && Arena.header_valid (Heap.arena t.heap) addr

let push_root t ~worker v =
  Machine.charge t.mach t.mach.Machine.cost.Cost.stack_slot;
  if valid_object t v && not (Heap.is_marked t.heap v) then begin
    push_obj t ~worker v;
    true
  end
  else false

let scan t ~worker addr =
  let arena = Heap.arena t.heap in
  let size = Arena.size_of arena addr in
  let nrefs = Arena.nrefs_of arena addr in
  let c = t.mach.Machine.cost in
  Machine.charge t.mach (c.Cost.trace_obj + (nrefs * c.Cost.trace_slot));
  for i = 0 to nrefs - 1 do
    let child = Arena.ref_get arena addr i in
    if child <> 0 then push_obj t ~worker child
  done;
  t.marked <- t.marked + size

let try_steal t ~worker =
  (* Pick the victim with the fullest public queue — the "difficulty of
     finding the right thread to steal from" is idealised away here,
     which only makes stealing look better in the comparison. *)
  let victim = ref (-1) in
  let best = ref 0 in
  Array.iteri
    (fun i q -> if i <> worker && q.n > !best then begin best := q.n; victim := i end)
    t.public;
  Machine.cas t.mach;
  if !victim < 0 then begin
    (* also try our own public queue *)
    if t.public.(worker).n > 0 then victim := worker
  end;
  if !victim < 0 then false
  else begin
    t.nsteals <- t.nsteals + 1;
    let q = t.public.(!victim) in
    let take = max 1 (min batch q.n) in
    for _ = 1 to take do
      match stack_pop q with
      | Some v ->
          stack_push t.priv.(worker) v
      | None -> ()
    done;
    Obs.instant t.mach.Machine.obs ~arg:take Obs_event.Packet_steal;
    true
  end

let mark_worker t ~worker =
  let continue = ref true in
  while !continue do
    match stack_pop t.priv.(worker) with
    | Some addr ->
        t.busy <- t.busy + 1;
        t.items <- t.items - 1;
        scan t ~worker addr;
        t.busy <- t.busy - 1;
        Machine.flush t.mach
    | None ->
        if try_steal t ~worker then Machine.flush t.mach
        else begin
          Machine.flush t.mach;
          (* Termination: no entries anywhere and nobody mid-scan.  This
             needs two globally consistent counters — compare with the
             packet pool's single sub-pool counter. *)
          if t.items = 0 && t.busy = 0 then continue := false
          else Sched.yield ()
        end
  done

let marked_slots t = t.marked
let steals t = t.nsteals
let exposes t = t.nexposes
