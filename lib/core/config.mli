(** Collector configuration.

    The defaults mirror the paper's experimental setup (section 6):
    tracing rate 8.0, 1000 work packets of 493 entries each, 4 low-priority
    background threads, a single concurrent card-cleaning pass, and
    stop-the-world phases parallelised over all processors. *)

type mode =
  | Stw  (** the baseline: parallel stop-the-world mark-sweep only *)
  | Cgc  (** the paper's parallel, incremental, mostly-concurrent collector *)
  | Gen
      (** the generational front end: a bump-allocated nursery with
          copying minor collections in front of the concurrent (Cgc)
          major collector *)

type load_balance =
  | Packets   (** the paper's work-packet mechanism (section 4) *)
  | Stealing  (** Endo-style private mark stacks with stealing (section 4.4) *)

type t = {
  mode : mode;
  k0 : float;  (** desired allocator tracing rate K0 (the "tracing rate") *)
  kmax_factor : float;  (** Kmax = kmax_factor * K0; the paper uses 2 *)
  corrective : float;  (** the corrective term C applied when K > K0 *)
  ewma_alpha : float;  (** smoothing for the L, M and Best estimators *)
  n_packets : int;
  packet_capacity : int;
  n_background : int;  (** low-priority background tracing threads *)
  gc_workers : int;  (** parallel workers for the stop-the-world phases *)
  cache_slots : int;  (** preferred allocation-cache size, in slots *)
  large_object_slots : int;  (** objects at least this big bypass the cache *)
  card_passes : int;  (** concurrent card-cleaning passes (1; footnote 2 suggests 2) *)
  lazy_sweep : bool;  (** section 7 extension: sweep outside the pause *)
  load_balance : load_balance;
  initial_l_fraction : float;  (** initial L estimate, fraction of heap *)
  initial_m_fraction : float;  (** initial M estimate, fraction of heap *)
  bg_chunk : int;  (** slots traced per background-thread scheduling chunk *)
  defer_protocol : bool;  (** section 5.2 allocation-bit check (tests disable) *)
  compaction : bool;
      (** incremental compaction (section 2.3): evacuate one area per
          cycle inside the pause, with in-pointers tracked during marking *)
  evac_fraction : float;  (** fraction of the heap evacuated per cycle *)
  nursery_fraction : float;
      (** [Gen] mode: fraction of the arena carved off as the nursery
          (card-aligned, taken from the top of the heap; the old space
          shrinks by the same amount, so heap budgets stay comparable
          across the [--gc] axis) *)
  faults : Cgc_fault.Fault.t;
      (** deterministic fault injector (default {!Cgc_fault.Fault.disabled});
          see [docs/FAULTS.md] for the scenario catalogue *)
  verify : bool;
      (** run the {!Verify} heap invariant checker at every cycle
          boundary (host-side, uncharged; raises
          {!Verify.Invariant_violation} on corruption) *)
}

val default : t
(** CGC with the paper's parameters. *)

val stw : t
(** The stop-the-world baseline. *)

val gen : t
(** The generational front end over the concurrent major collector. *)

val mode_name : mode -> string
(** ["stw"], ["cgc"] or ["gen"] — the [--gc] axis spelling. *)

val mode_of_name : string -> mode option
(** Inverse of {!mode_name}. *)
