(** Deterministic open-loop arrival processes.

    An arrival process generates the cycle timestamps at which requests
    reach the server, {e independently of the system's state} — requests
    keep arriving while the world is stopped, which is precisely what
    turns a GC pause into queueing delay and client-visible tail
    latency.  All randomness comes from a split {!Cgc_util.Prng} stream,
    so the arrival sequence for a given seed is byte-identical across
    runs, collectors and host job counts. *)

type kind =
  | Poisson  (** exponential interarrivals at the offered rate *)
  | Constant  (** evenly spaced interarrivals (a paced load generator) *)
  | Bursty of { on_ms : float; off_ms : float; factor : float }
      (** on/off modulated Poisson: during each [on_ms] window the rate
          is [factor] times the offered rate; during the following
          [off_ms] window it is reduced so the {e average} offered rate
          is preserved (clamped at zero if [factor] is large enough to
          owe the whole period to the burst). *)

val kind_name : kind -> string
(** ["poisson"], ["constant"] or ["bursty"]. *)

type t

val create :
  kind -> rate_per_s:float -> cycles_per_ms:int -> rng:Cgc_util.Prng.t -> t
(** [rate_per_s] is the average offered load in requests per simulated
    second; must be positive.  Bursty windows must be positive and
    [factor >= 1]. *)

val scripted : ?delays:int array -> int array -> t
(** An arrival process that replays a precomputed, non-decreasing list
    of cycle timestamps, then returns [max_int] forever.  This is how
    the cluster front end feeds each shard its routed share of the
    fleet arrival stream: the balancer draws the fleet process once
    (host-side, deterministic), routes every arrival to a shard, and
    each shard replays its slice — so shard simulations stay
    independent of each other and of the host domain count.

    [delays] (same length, non-negative) carries per-arrival front-end
    delay already suffered before the request reached this shard — retry
    backoff, mostly.  The server subtracts it from the enqueue timestamp
    when stamping the request's {e arrival}, so queueing and end-to-end
    latency include the time the balancer spent redirecting.  Raises
    [Invalid_argument] on a decreasing timestamp, a negative delay, or a
    length mismatch. *)

val next : t -> int
(** The next arrival timestamp in simulated cycles.  Non-decreasing;
    each call advances the process. *)

val last_delay : t -> int
(** The front-end delay of the arrival most recently returned by
    {!next}; [0] for generated processes and scripts without
    [delays]. *)
