module Vm = Cgc_runtime.Vm
module Mutator = Cgc_runtime.Mutator
module Sched = Cgc_sim.Sched
module Machine = Cgc_smp.Machine
module Cost = Cgc_smp.Cost
module Heap = Cgc_heap.Heap
module Txmix = Cgc_workloads.Txmix
module Obs = Cgc_obs.Obs
module Event = Cgc_obs.Event
module Prng = Cgc_util.Prng
module Sampler = Cgc_prof.Sampler

(* Arrival/shed events are emitted host-side, outside any simulated
   thread; they get a synthetic ring of their own. *)
let server_tid = -1

type cfg = {
  rate_per_s : float;
  arrival : Arrival.kind;
  queue_cap : int;
  workers : int;
  timeout_ms : float;
  slo_ms : float;
  slo_target : float;
  throttle_hi : int;
  throttle_lo : int;
  service : Txmix.profile;
  resident_frac : float;
  poll_cycles : int;
}

(* A lighter transaction than the warehouse benchmarks: ~0.1 ms of
   compute plus a short burst of transient allocation, so a handful of
   workers saturate in the thousands of requests per second and a
   stop-the-world pause is many service times long. *)
let default_service : Txmix.profile =
  {
    live_lists = 16;
    list_len = 400; (* rescaled by create *)
    node_slots = 6;
    leaf_fanout = 3;
    leaf_slots = 8;
    transient_objs = 20;
    transient_slots = 8;
    mutations = 4;
    tx_work = 60_000;
    think_mean = 0;
    large_every = 50;
    large_slots = 256;
    junk_roots = true;
  }

let cfg ?(arrival = Arrival.Poisson) ?(queue_cap = 256) ?(workers = 4)
    ?(timeout_ms = 0.0) ?(slo_ms = 0.0) ?(slo_target = 0.999)
    ?(throttle_hi = 0) ?(throttle_lo = 0) ?(service = default_service)
    ?(resident_frac = 0.5) ?(poll_cycles = 20_000) ~rate_per_s () =
  if rate_per_s <= 0.0 then invalid_arg "Server.cfg: rate must be positive";
  if queue_cap < 1 then invalid_arg "Server.cfg: queue capacity < 1";
  if workers < 1 then invalid_arg "Server.cfg: workers < 1";
  if throttle_hi > 0 && throttle_lo >= throttle_hi then
    invalid_arg "Server.cfg: throttle_lo must be below throttle_hi";
  {
    rate_per_s;
    arrival;
    queue_cap;
    workers;
    timeout_ms;
    slo_ms;
    slo_target;
    throttle_hi;
    throttle_lo;
    service;
    resident_frac;
    poll_cycles;
  }

type req = {
  id : int;
  arrival : int; (* backdated enqueue timestamp, cycles (= ts - pre) *)
  pre : int; (* front-end backoff charged before the true enqueue *)
  s_arr : int; (* stopped-world integral at enqueue *)
  route : Span.route; (* fleet routing decision that placed this request *)
}

type t = {
  cfg : cfg;
  vm : Vm.t;
  cycles_per_ms : float;
  obs : Obs.t;
  profile : Txmix.profile; (* residency-scaled service profile *)
  queue : req Queue.t;
  lats : Latency.t array;
  spans : Span.collector;
  (* Fleet routing decision keyed by arrival ordinal (the scripted
     stream position); single-VM runs default to [Span.local_route]. *)
  route : int -> Span.route;
  arr : Arrival.t;
  (* Brownout window [d0, d1) during which service times are inflated by
     the factor — the cluster's noisy-neighbour scenario. *)
  degrade : (int * int * float) option;
  mutable next_arrival : int;
  mutable next_pre : int;
  mutable next_id : int;
  mutable in_flight : int;
  mutable throttling : bool;
  mutable arrived : int;
  mutable admitted : int;
  mutable shed_full : int;
  mutable shed_throttled : int;
  mutable timed_out : int;
  mutable max_depth : int;
  (* Dispatch-granularity integral of stopped-world simulated time,
     maintained by the on_advance hook; requests sample it at enqueue
     and completion, the difference being the pause overlap. *)
  mutable stopped_cycles : int;
  mutable prev_now : int;
  mutable prev_stopped : bool;
  mutable probes_attached : bool;
}

let the_cfg t = t.cfg
let queue_depth t = Queue.length t.queue
let in_flight t = t.in_flight
let shed_now t = t.shed_full + t.shed_throttled

(* ------------------------------------------------------------------ *)
(* Admission (host side, from the scheduler hook)                      *)

let arrive ?(pre = 0) t ~ts =
  t.arrived <- t.arrived + 1;
  let depth = Queue.length t.queue in
  if t.cfg.throttle_hi > 0 then
    if depth >= t.cfg.throttle_hi then t.throttling <- true
    else if depth <= t.cfg.throttle_lo then t.throttling <- false;
  if depth >= t.cfg.queue_cap then begin
    t.shed_full <- t.shed_full + 1;
    Obs.instant_host t.obs ~arg:0 ~tid:server_tid ~ts Event.Req_shed
  end
  else if t.throttling then begin
    t.shed_throttled <- t.shed_throttled + 1;
    Obs.instant_host t.obs ~arg:1 ~tid:server_tid ~ts Event.Req_shed
  end
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    let route = t.route (t.arrived - 1) in
    (* Causal-chain markers for requests the front end diverted: each is
       visible in the shard trace next to the enqueue it produced. *)
    if route.Span.attempts > 0 then
      Obs.instant_host t.obs ~arg:route.Span.attempts ~tid:server_tid ~ts
        Event.Req_retry;
    if route.Span.shard <> route.Span.first then
      Obs.instant_host t.obs ~arg:route.Span.first ~tid:server_tid ~ts
        Event.Req_redirect;
    if route.Span.hedged then
      Obs.instant_host t.obs
        ~arg:(if route.Span.hedge_win then 1 else 0)
        ~tid:server_tid ~ts Event.Req_hedge;
    (* Front-end delay (retry backoff) backdates the arrival stamp, so
       queueing and end-to-end latency charge the redirection time. *)
    Queue.push
      { id; arrival = ts - pre; pre; s_arr = t.stopped_cycles; route }
      t.queue;
    t.admitted <- t.admitted + 1;
    let depth = depth + 1 in
    if depth > t.max_depth then t.max_depth <- depth;
    Obs.instant_host t.obs ~arg:depth ~tid:server_tid ~ts Event.Req_arrive
  end

let on_tick t now =
  if t.prev_stopped then
    t.stopped_cycles <- t.stopped_cycles + (now - t.prev_now);
  t.prev_now <- now;
  t.prev_stopped <- Sched.world_stopped (Vm.sched t.vm);
  while t.next_arrival <= now do
    arrive t ~ts:t.next_arrival ~pre:t.next_pre;
    t.next_arrival <- Arrival.next t.arr;
    t.next_pre <- Arrival.last_delay t.arr
  done

(* ------------------------------------------------------------------ *)
(* Workers (simulated mutator threads)                                 *)

let handle t m ~wid ~dir req ~start =
  t.in_flight <- t.in_flight + 1;
  let s_start = t.stopped_cycles in
  Obs.span_at t.obs ~arg:req.id ~ts:req.arrival ~dur:(start - req.arrival)
    Event.Req_start;
  Txmix.transaction t.profile m ~dir;
  (match t.degrade with
  | Some (d0, d1, factor) when start >= d0 && start < d1 ->
      (* Noisy neighbour: stretch the transaction by (factor - 1)× its
         own duration, as if the shard's CPUs were shared away. *)
      let served = Mutator.now_cycles m - start in
      if served > 0 && factor > 1.0 then
        Mutator.think m (int_of_float ((factor -. 1.0) *. float_of_int served))
  | _ -> ());
  let finish = Mutator.now_cycles m in
  t.in_flight <- t.in_flight - 1;
  let s_fin = t.stopped_cycles in
  let s =
    Latency.decompose ~cycles_per_ms:t.cycles_per_ms ~arrival:req.arrival
      ~start ~finish ~s_arr:req.s_arr ~s_start ~s_fin
  in
  Latency.observe t.lats.(wid) ~slo_ms:t.cfg.slo_ms s;
  (* The causal span.  [req.arrival] is backdated by the backoff, so the
     true enqueue stamp is [arrival + pre]; the blame components then
     sum to [finish - req.arrival] — the same e2e the histogram saw —
     exactly, which we assert for every completed request. *)
  let enqueue = req.arrival + req.pre in
  let blame =
    Span.blame_of ~pre:req.pre ~enqueue ~start ~finish ~s_enq:req.s_arr
      ~s_start ~s_fin
  in
  assert (Span.blame_total blame = finish - req.arrival);
  Span.record t.spans { Span.route = req.route; enqueue; start; finish; blame };
  Obs.span_at t.obs
    ~arg:(int_of_float (s.Latency.e2e_ms *. 1000.0))
    ~ts:start ~dur:(finish - start) Event.Req_done

let rec dispatch t m ~wid ~dir =
  match Queue.take_opt t.queue with
  | None -> Mutator.think m t.cfg.poll_cycles
  | Some req ->
      let now = Mutator.now_cycles m in
      if
        t.cfg.timeout_ms > 0.0
        && float_of_int (now - req.arrival)
           > t.cfg.timeout_ms *. t.cycles_per_ms
      then begin
        t.timed_out <- t.timed_out + 1;
        Obs.instant t.obs ~arg:req.id Event.Req_timeout;
        dispatch t m ~wid ~dir
      end
      else handle t m ~wid ~dir req ~start:now

let worker t ~wid m =
  let dir = Txmix.build_resident t.profile m in
  while not (Mutator.stopped m) do
    dispatch t m ~wid ~dir
  done

(* ------------------------------------------------------------------ *)

let reset t =
  t.arrived <- 0;
  t.admitted <- 0;
  t.shed_full <- 0;
  t.shed_throttled <- 0;
  t.timed_out <- 0;
  t.max_depth <- Queue.length t.queue;
  Array.iter Latency.clear t.lats;
  Span.clear t.spans
(* The queue, throttle state and stopped-time integral deliberately
   survive: in-flight warm-up requests finish into the measured window,
   and the integral is only ever read as a difference. *)

let attach_probes t =
  match Vm.profiler t.vm with
  | None -> ()
  | Some p ->
      if not t.probes_attached then begin
        t.probes_attached <- true;
        Sampler.add_probe p ~name:"server-queue-depth" (fun () ->
            float_of_int (Queue.length t.queue));
        Sampler.add_probe p ~name:"server-in-flight" (fun () ->
            float_of_int t.in_flight)
      end

let create ?arrivals ?degrade ?(route = Span.local_route) (cfg : cfg) vm =
  let mach = Vm.machine vm in
  let cycles_per_ms = mach.Machine.cost.Cost.cycles_per_ms in
  (* An own PRNG root, offset from the VM's seed so the arrival stream
     is not the VM's mutator-split stream.  A cluster shard passes the
     balancer's routed timestamp slice as [arrivals] instead. *)
  let arr =
    match arrivals with
    | Some a -> a
    | None ->
        let root = Prng.create ((Vm.the_config vm).Vm.seed + 0x5e7fe1d) in
        Arrival.create cfg.arrival ~rate_per_s:cfg.rate_per_s ~cycles_per_ms
          ~rng:(Prng.split root)
  in
  let nslots = Heap.nslots (Vm.heap vm) in
  let target_slots =
    int_of_float (float_of_int nslots *. cfg.resident_frac)
    / Stdlib.max 1 cfg.workers
  in
  let profile = Txmix.scale_residency cfg.service ~target_slots in
  let t =
    {
      cfg;
      vm;
      cycles_per_ms = float_of_int cycles_per_ms;
      obs = Vm.obs vm;
      profile;
      queue = Queue.create ();
      lats = Array.init cfg.workers (fun _ -> Latency.create ());
      spans =
        Span.create
          ~cycles_per_ms:(float_of_int cycles_per_ms)
          ~seed:(Vm.the_config vm).Vm.seed;
      route;
      arr;
      degrade;
      next_arrival = 0;
      next_pre = 0;
      next_id = 0;
      in_flight = 0;
      throttling = false;
      arrived = 0;
      admitted = 0;
      shed_full = 0;
      shed_throttled = 0;
      timed_out = 0;
      max_depth = 0;
      stopped_cycles = 0;
      prev_now = 0;
      prev_stopped = false;
      probes_attached = false;
    }
  in
  t.next_arrival <- Arrival.next t.arr;
  t.next_pre <- Arrival.last_delay t.arr;
  for wid = 0 to cfg.workers - 1 do
    Vm.spawn_mutator vm
      ~name:(Printf.sprintf "server-worker-%d" wid)
      (worker t ~wid)
  done;
  Sched.on_advance (Vm.sched vm) (fun now -> on_tick t now);
  Vm.on_reset vm (fun () -> reset t);
  attach_probes t;
  t

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)

type totals = {
  arrived : int;
  admitted : int;
  shed_full : int;
  shed_throttled : int;
  timed_out : int;
  completed : int;
  slo_violations : int;
  max_depth : int;
  lat : Latency.t;
  spans : Span.summary;
}

let totals t =
  let lat =
    Array.fold_left Latency.merge (Latency.create ()) t.lats
  in
  {
    arrived = t.arrived;
    admitted = t.admitted;
    shed_full = t.shed_full;
    shed_throttled = t.shed_throttled;
    timed_out = t.timed_out;
    completed = Latency.handled lat;
    slo_violations = Latency.slo_violations lat;
    max_depth = t.max_depth;
    lat;
    spans = Span.summary t.spans;
  }

let slo_attainment tot =
  let resolved =
    tot.completed + tot.shed_full + tot.shed_throttled + tot.timed_out
  in
  if resolved = 0 then 1.0
  else
    float_of_int (tot.completed - tot.slo_violations) /. float_of_int resolved

let slo_breached t =
  t.cfg.slo_ms > 0.0 && slo_attainment (totals t) < t.cfg.slo_target
