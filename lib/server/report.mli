(** SLO report for a server run: text summary and versioned JSON.

    The JSON artefact follows the repo's schema conventions: a
    [schema] tag ({!schema}), deterministic key order, [%.6f] floats —
    two equal-seed runs serialise to identical bytes. *)

val schema : string
(** ["cgcsim-server-v2"] — v2 added the [blame] / [tails] / [exemplars]
    causal-span blocks. *)

val hist_json : Cgc_util.Histogram.t -> Cgc_prof.Json.t
(** The percentile-object shape shared by every latency block
    ([count]/[mean]/[min]/[p50]/[p95]/[p99]/[p999]/[max]) — exposed so
    the cluster report renders fleet-merged histograms identically. *)

val span_json : cycles_per_ms:float -> Span.t -> Cgc_prof.Json.t
(** One causal span: route fields, cycle stamps, [e2eCycles] and its
    integer-cycle [blame] object (components sum to [e2eCycles]). *)

val spans_json : Span.summary -> (string * Cgc_prof.Json.t) list
(** The [blame] / [tails] / [exemplars] members appended to the report
    object — exposed so the cluster report emits the fleet-merged
    summary in the identical shape. *)

val blame_text : Buffer.t -> Span.summary -> unit
(** Append the mean blame decomposition line and the worst span's causal
    chain; shared with the cluster text report. *)

val check_conservation : Cgc_prof.Json.t -> (unit, string) result
(** Re-check the conservation identity on a serialised report: every
    [blame] object's components must sum to its sibling [e2eCycles]
    (aggregate, tails and exemplars).  The cluster validator applies it
    to the fleet block and to each embedded per-shard report. *)

val text : Server.cfg -> ran_ms:float -> Server.totals -> string
(** Human-readable summary: offered/served rates, the overload-control
    counters, and the latency decomposition's percentile table. *)

val to_json : Server.cfg -> ran_ms:float -> Server.totals -> Cgc_prof.Json.t

val validate : string -> (Cgc_prof.Json.t, string) result
(** Parse a serialised report and check its [schema] tag — the server
    artefact's round-trip guard (exit code 4 territory in the CLI). *)
