(** SLO report for a server run: text summary and versioned JSON.

    The JSON artefact follows the repo's schema conventions: a
    [schema] tag ({!schema}), deterministic key order, [%.6f] floats —
    two equal-seed runs serialise to identical bytes. *)

val schema : string
(** ["cgcsim-server-v1"]. *)

val hist_json : Cgc_util.Histogram.t -> Cgc_prof.Json.t
(** The percentile-object shape shared by every latency block
    ([count]/[mean]/[min]/[p50]/[p95]/[p99]/[p999]/[max]) — exposed so
    the cluster report renders fleet-merged histograms identically. *)

val text : Server.cfg -> ran_ms:float -> Server.totals -> string
(** Human-readable summary: offered/served rates, the overload-control
    counters, and the latency decomposition's percentile table. *)

val to_json : Server.cfg -> ran_ms:float -> Server.totals -> Cgc_prof.Json.t

val validate : string -> (Cgc_prof.Json.t, string) result
(** Parse a serialised report and check its [schema] tag — the server
    artefact's round-trip guard (exit code 4 territory in the CLI). *)
