(* Per-request causal spans with an exact blame decomposition.

   Every completed request carries one [t]: the routing decision the
   fleet front end made for it (shard, epoch, retries, hedge outcome),
   its shard-side enqueue/start/finish stamps, and a blame record that
   splits the end-to-end latency into integer-cycle components.  The
   split is exact by construction — [blame_total] equals the reported
   e2e latency for every request, which the report validator and the
   QCheck conservation property both re-check. *)

module Prng = Cgc_util.Prng

type route = {
  rid : int;
  first : int;
  shard : int;
  epoch : int;
  attempts : int;
  hedged : bool;
  hedge_win : bool;
}

let local_route rid =
  {
    rid;
    first = 0;
    shard = 0;
    epoch = 0;
    attempts = 0;
    hedged = false;
    hedge_win = false;
  }

type blame = {
  fleet_queue : int;
  backoff : int;
  queue : int;
  gc_queue : int;
  service : int;
  gc_service : int;
}

let blame_total b =
  b.fleet_queue + b.backoff + b.queue + b.gc_queue + b.service + b.gc_service

let zero_blame =
  {
    fleet_queue = 0;
    backoff = 0;
    queue = 0;
    gc_queue = 0;
    service = 0;
    gc_service = 0;
  }

let add_blame a b =
  {
    fleet_queue = a.fleet_queue + b.fleet_queue;
    backoff = a.backoff + b.backoff;
    queue = a.queue + b.queue;
    gc_queue = a.gc_queue + b.gc_queue;
    service = a.service + b.service;
    gc_service = a.gc_service + b.gc_service;
  }

(* The conservation identity, in integer cycles.

   [enqueue] is the true shard-enqueue stamp (after any front-end
   backoff), [pre] the cycles the request spent backing off before it,
   [s_enq]/[s_start]/[s_fin] the VM's cumulative stopped-world integral
   sampled at enqueue, dispatch and completion.  The integral is
   monotone, so both GC overlaps are non-negative before clamping; each
   is clamped to the interval it overlaps, and the plain queue/service
   components are defined as the remainders — so

     fleet_queue + backoff + queue + gc_queue + service + gc_service
       = pre + (start - enqueue) + (finish - start)
       = finish - (enqueue - pre)

   holds exactly, with no floats involved. *)
let blame_of ~pre ~enqueue ~start ~finish ~s_enq ~s_start ~s_fin =
  let wait = start - enqueue in
  let serve = finish - start in
  let gc_queue = Stdlib.min wait (Stdlib.max 0 (s_start - s_enq)) in
  let gc_service = Stdlib.min serve (Stdlib.max 0 (s_fin - s_start)) in
  {
    fleet_queue = 0;
    backoff = pre;
    queue = wait - gc_queue;
    gc_queue;
    service = serve - gc_service;
    gc_service;
  }

type t = { route : route; enqueue : int; start : int; finish : int; blame : blame }

let e2e_cycles s = blame_total s.blame

(* Total order on spans for the worst-N list: slowest first, request id
   as the tiebreak.  Request ids are unique within a fleet run, so the
   order is total and the list is deterministic. *)
let worse a b =
  let ea = e2e_cycles a and eb = e2e_cycles b in
  if ea <> eb then compare eb ea else compare a.route.rid b.route.rid

let worst_k = 32
let exemplars_r = 4
let decades = 6

(* Latency decade of a span: <0.1 ms, 0.1-1, 1-10, 10-100, 100-1000,
   >= 1000 ms.  Used to key the exemplar reservoir. *)
let decade_of ~cycles_per_ms s =
  if cycles_per_ms <= 0.0 then 0
  else
    let ms = float_of_int (e2e_cycles s) /. cycles_per_ms in
    if ms <= 0.0 then 0
    else
      let d = int_of_float (Float.floor (Float.log10 ms)) + 2 in
      Stdlib.max 0 (Stdlib.min (decades - 1) d)

type summary = {
  count : int;
  sum : blame;
  sum_e2e : int;
  worst : t list;
  exemplars : (int * t) list;
  cycles_per_ms : float;
}

let empty_summary =
  {
    count = 0;
    sum = zero_blame;
    sum_e2e = 0;
    worst = [];
    exemplars = [];
    cycles_per_ms = 0.0;
  }

type collector = {
  cpm : float;
  rng : Prng.t;
  mutable count : int;
  mutable sum : blame;
  mutable sum_e2e : int;
  mutable worst : t list; (* sorted by [worse], length <= worst_k *)
  mutable nworst : int;
  seen : int array; (* arrivals per decade, drives the reservoir *)
  slots : t option array array; (* decades x exemplars_r *)
}

let create ~cycles_per_ms ~seed =
  {
    cpm = cycles_per_ms;
    rng = Prng.create (seed + 0x5ba7e11);
    count = 0;
    sum = zero_blame;
    sum_e2e = 0;
    worst = [];
    nworst = 0;
    seen = Array.make decades 0;
    slots = Array.init decades (fun _ -> Array.make exemplars_r None);
  }

let clear c =
  c.count <- 0;
  c.sum <- zero_blame;
  c.sum_e2e <- 0;
  c.worst <- [];
  c.nworst <- 0;
  Array.fill c.seen 0 decades 0;
  Array.iter (fun row -> Array.fill row 0 exemplars_r None) c.slots

let rec insert_worst s = function
  | [] -> [ s ]
  | x :: rest as l -> if worse s x < 0 then s :: l else x :: insert_worst s rest

let rec drop_last = function
  | [] | [ _ ] -> []
  | x :: rest -> x :: drop_last rest

let record c s =
  c.count <- c.count + 1;
  c.sum <- add_blame c.sum s.blame;
  c.sum_e2e <- c.sum_e2e + e2e_cycles s;
  (if c.nworst < worst_k then begin
     c.worst <- insert_worst s c.worst;
     c.nworst <- c.nworst + 1
   end
   else
     let last = List.nth c.worst (worst_k - 1) in
     if worse s last < 0 then c.worst <- drop_last (insert_worst s c.worst));
  (* Deterministic single-pass reservoir per latency decade: the first
     [exemplars_r] spans of a decade fill the slots, after which each
     newcomer replaces a uniformly drawn slot with probability r/seen. *)
  let d = decade_of ~cycles_per_ms:c.cpm s in
  c.seen.(d) <- c.seen.(d) + 1;
  if c.seen.(d) <= exemplars_r then c.slots.(d).(c.seen.(d) - 1) <- Some s
  else
    let j = Prng.int c.rng c.seen.(d) in
    if j < exemplars_r then c.slots.(d).(j) <- Some s

let summary c =
  let exemplars =
    let acc = ref [] in
    for d = decades - 1 downto 0 do
      for i = exemplars_r - 1 downto 0 do
        match c.slots.(d).(i) with
        | Some s -> acc := (d, s) :: !acc
        | None -> ()
      done
    done;
    (* canonical order inside each decade: by request id *)
    List.stable_sort
      (fun (da, a) (db, b) ->
        if da <> db then compare da db else compare a.route.rid b.route.rid)
      !acc
  in
  {
    count = c.count;
    sum = c.sum;
    sum_e2e = c.sum_e2e;
    worst = c.worst;
    exemplars;
    cycles_per_ms = c.cpm;
  }

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

(* Serial, order-sensitive merge: the fleet merge folds shard summaries
   in shard/incarnation order, so the result is deterministic.  Worst
   lists merge under the same total order; exemplars keep, per decade,
   the [exemplars_r] lowest request ids of the union — a rule that does
   not depend on merge order. *)
let merge a b =
  let rec merge_worst n xs ys =
    if n = 0 then []
    else
      match (xs, ys) with
      | [], [] -> []
      | x :: xr, [] -> x :: merge_worst (n - 1) xr []
      | [], y :: yr -> y :: merge_worst (n - 1) [] yr
      | x :: xr, y :: yr ->
          if worse x y <= 0 then x :: merge_worst (n - 1) xr ys
          else y :: merge_worst (n - 1) xs yr
  in
  let exemplars =
    let all =
      List.stable_sort
        (fun (da, a) (db, b) ->
          if da <> db then compare da db else compare a.route.rid b.route.rid)
        (a.exemplars @ b.exemplars)
    in
    let rec per_decade d rest =
      if d >= decades then []
      else
        let mine, others = List.partition (fun (dd, _) -> dd = d) rest in
        take exemplars_r mine @ per_decade (d + 1) others
    in
    per_decade 0 all
  in
  {
    count = a.count + b.count;
    sum = add_blame a.sum b.sum;
    sum_e2e = a.sum_e2e + b.sum_e2e;
    worst = merge_worst worst_k a.worst b.worst;
    exemplars;
    cycles_per_ms =
      (if a.cycles_per_ms > 0.0 then a.cycles_per_ms else b.cycles_per_ms);
  }
