(** Per-request causal spans and the exact blame decomposition.

    Every completed request yields one {!t}: the fleet routing decision
    that placed it (shard, epoch, retry count, hedge outcome), its
    shard-side enqueue/dispatch/finish stamps, and a {!blame} record
    splitting its end-to-end latency into integer-cycle components.
    The split obeys an exact conservation identity —
    {!blame_total}[ b = finish - (enqueue - backoff)] — asserted at
    runtime for every request, re-checked by the report validators and
    property-tested across chaos scenarios. *)

type route = {
  rid : int;  (** fleet-unique request id (arrival index) *)
  first : int;  (** first-choice shard before any reroute *)
  shard : int;  (** shard that finally served the request *)
  epoch : int;  (** routing epoch at placement *)
  attempts : int;  (** retries before placement (0 = first try) *)
  hedged : bool;  (** a hedge was issued at the front end *)
  hedge_win : bool;  (** the hedge target won the race *)
}

val local_route : int -> route
(** Route for a single-VM [serve] run: shard 0, epoch 0, no retries. *)

type blame = {
  fleet_queue : int;  (** front-end queueing (reserved; 0 today) *)
  backoff : int;  (** retry backoff before shard enqueue *)
  queue : int;  (** shard queueing net of GC overlap *)
  gc_queue : int;  (** stopped-world cycles overlapping the queue wait *)
  service : int;  (** service time net of GC overlap *)
  gc_service : int;  (** stopped-world cycles inflating the service *)
}
(** All components in simulated cycles. *)

val blame_total : blame -> int
(** Sum of all six components — exactly the e2e latency in cycles. *)

val zero_blame : blame
val add_blame : blame -> blame -> blame

val blame_of :
  pre:int ->
  enqueue:int ->
  start:int ->
  finish:int ->
  s_enq:int ->
  s_start:int ->
  s_fin:int ->
  blame
(** [blame_of ~pre ~enqueue ~start ~finish ~s_enq ~s_start ~s_fin]
    decomposes one request.  [pre] is the backoff charged before the
    true enqueue stamp [enqueue]; [s_enq]/[s_start]/[s_fin] are the
    VM's cumulative stopped-world integral sampled at enqueue, dispatch
    and completion.  The GC overlaps are clamped to the interval they
    overlap and queue/service are the remainders, so the identity
    [blame_total b = finish - enqueue + pre] holds exactly. *)

type t = {
  route : route;
  enqueue : int;  (** true shard-enqueue cycle (after backoff) *)
  start : int;  (** dispatch cycle *)
  finish : int;  (** completion cycle *)
  blame : blame;
}

val e2e_cycles : t -> int
(** End-to-end latency in cycles, including backoff ([blame_total]). *)

val worse : t -> t -> int
(** Total order for the worst-N list: e2e descending, then request id
    ascending.  Request ids are fleet-unique, so this is total. *)

val worst_k : int
(** Worst spans retained per summary (32). *)

val exemplars_r : int
(** Exemplar spans retained per latency decade (4). *)

val decades : int
(** Number of latency decades (6: <0.1 ms ... >=1 s). *)

val decade_of : cycles_per_ms:float -> t -> int
(** Latency decade index of a span, in [0, decades). *)

type summary = {
  count : int;  (** completed requests folded in *)
  sum : blame;  (** componentwise blame totals *)
  sum_e2e : int;  (** total e2e cycles; equals [blame_total sum] *)
  worst : t list;  (** worst spans under {!worse}, at most {!worst_k} *)
  exemplars : (int * t) list;
      (** (decade, span) exemplars, at most {!exemplars_r} per decade,
          ordered by decade then request id *)
  cycles_per_ms : float;  (** conversion used for decades and reports *)
}

val empty_summary : summary

val merge : summary -> summary -> summary
(** Order-sensitive but deterministic merge: fold shard summaries in
    shard/incarnation order.  Worst lists merge under {!worse};
    exemplars keep the lowest request ids per decade. *)

type collector
(** Mutable per-VM span collector.  Aggregates exactly, retains the
    worst {!worst_k} spans, and keeps a deterministic seed-derived
    reservoir of {!exemplars_r} exemplars per latency decade so memory
    stays bounded no matter how many requests complete. *)

val create : cycles_per_ms:float -> seed:int -> collector
(** The reservoir PRNG derives from [seed], so runs are reproducible. *)

val clear : collector -> unit
(** Forget everything (used by warmup [reset]). *)

val record : collector -> t -> unit
val summary : collector -> summary
