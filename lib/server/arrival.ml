module Prng = Cgc_util.Prng

type kind =
  | Poisson
  | Constant
  | Bursty of { on_ms : float; off_ms : float; factor : float }

let kind_name = function
  | Poisson -> "poisson"
  | Constant -> "constant"
  | Bursty _ -> "bursty"

type gen = {
  kind : kind;
  rate_ms : float; (* average arrivals per simulated millisecond *)
  cycles_per_ms : float;
  rng : Prng.t;
  mutable t_ms : float; (* the arrival process's own clock *)
}

type t =
  | Gen of gen
  | Scripted of { ts : int array; delays : int array; mutable i : int }

let scripted ?delays ts =
  let n = Array.length ts in
  for i = 1 to n - 1 do
    if ts.(i) < ts.(i - 1) then
      invalid_arg "Arrival.scripted: timestamps must be non-decreasing"
  done;
  let delays =
    match delays with
    | None -> [||]
    | Some d ->
        if Array.length d <> n then
          invalid_arg "Arrival.scripted: delays length mismatch";
        Array.iter
          (fun x -> if x < 0 then invalid_arg "Arrival.scripted: delay < 0")
          d;
        d
  in
  Scripted { ts; delays; i = 0 }

let create kind ~rate_per_s ~cycles_per_ms ~rng =
  if rate_per_s <= 0.0 then invalid_arg "Arrival.create: rate must be positive";
  (match kind with
  | Bursty { on_ms; off_ms; factor } ->
      if on_ms <= 0.0 || off_ms <= 0.0 then
        invalid_arg "Arrival.create: bursty windows must be positive";
      if factor < 1.0 then invalid_arg "Arrival.create: burst factor < 1"
  | Poisson | Constant -> ());
  Gen
    {
      kind;
      rate_ms = rate_per_s /. 1000.0;
      cycles_per_ms = float_of_int cycles_per_ms;
      rng;
      t_ms = 0.0;
    }

(* Instantaneous rate (arrivals/ms) at time [ms].  The bursty off-window
   rate is derived so the period average equals [rate_ms]:
   on*factor*r + off*r_off = (on+off)*r. *)
let rate_at t ms =
  match t.kind with
  | Poisson | Constant -> t.rate_ms
  | Bursty { on_ms; off_ms; factor } ->
      let period = on_ms +. off_ms in
      let phase = Float.rem ms period in
      if phase < on_ms then t.rate_ms *. factor
      else Float.max 0.0 (t.rate_ms *. (period -. (on_ms *. factor)) /. off_ms)

(* Milliseconds from [ms] to the next on/off window boundary. *)
let boundary_after t ms =
  match t.kind with
  | Poisson | Constant -> infinity
  | Bursty { on_ms; off_ms; _ } ->
      let period = on_ms +. off_ms in
      let phase = Float.rem ms period in
      if phase < on_ms then on_ms -. phase else period -. phase

(* One arrival of a piecewise-constant-rate Poisson process: draw a
   unit-rate exponential "budget" and spend it at the local rate,
   carrying the residual across window boundaries (the standard
   inversion for non-homogeneous processes).  Constant spacing is the
   degenerate case with a budget of exactly 1. *)
let next_gen t =
  let budget =
    match t.kind with
    | Constant -> 1.0
    | Poisson | Bursty _ -> Prng.exponential t.rng 1.0
  in
  let rec consume budget =
    let r = rate_at t t.t_ms in
    let b = boundary_after t t.t_ms in
    if r <= 0.0 then begin
      t.t_ms <- t.t_ms +. b;
      consume budget
    end
    else
      let dt = budget /. r in
      if dt <= b then t.t_ms <- t.t_ms +. dt
      else begin
        t.t_ms <- t.t_ms +. b;
        consume (budget -. (b *. r))
      end
  in
  consume budget;
  int_of_float (t.t_ms *. t.cycles_per_ms)

let next = function
  | Gen g -> next_gen g
  | Scripted s ->
      if s.i >= Array.length s.ts then max_int
      else begin
        let ts = s.ts.(s.i) in
        s.i <- s.i + 1;
        ts
      end

let last_delay = function
  | Gen _ -> 0
  | Scripted s ->
      (* Delay of the arrival most recently returned by [next]. *)
      if Array.length s.delays = 0 || s.i = 0 || s.i > Array.length s.delays
      then 0
      else s.delays.(s.i - 1)
