module Histogram = Cgc_util.Histogram
module Json = Cgc_prof.Json

let schema = "cgcsim-server-v2"

let pcts = [ ("p50", 50.0); ("p95", 95.0); ("p99", 99.0); ("p999", 99.9) ]

let hist_json h =
  let n = Histogram.count h in
  Json.Obj
    ([
       ("count", Json.Int n);
       ("mean", Json.Float (Histogram.mean h));
       ("min", Json.Float (if n = 0 then 0.0 else Histogram.min h));
     ]
    @ List.map (fun (k, p) -> (k, Json.Float (Histogram.percentile h p))) pcts
    @ [ ("max", Json.Float (if n = 0 then 0.0 else Histogram.max h)) ])

let arrival_json (cfg : Server.cfg) =
  let kind = Arrival.kind_name cfg.Server.arrival in
  match cfg.Server.arrival with
  | Arrival.Poisson | Arrival.Constant -> Json.Obj [ ("kind", Json.Str kind) ]
  | Arrival.Bursty { on_ms; off_ms; factor } ->
      Json.Obj
        [
          ("kind", Json.Str kind);
          ("onMs", Json.Float on_ms);
          ("offMs", Json.Float off_ms);
          ("factor", Json.Float factor);
        ]

(* ------------------------- causal spans --------------------------- *)

let blame_fields (b : Span.blame) =
  [
    ("fleetQueueCycles", Json.Int b.Span.fleet_queue);
    ("backoffCycles", Json.Int b.Span.backoff);
    ("queueCycles", Json.Int b.Span.queue);
    ("gcQueueCycles", Json.Int b.Span.gc_queue);
    ("serviceCycles", Json.Int b.Span.service);
    ("gcServiceCycles", Json.Int b.Span.gc_service);
  ]

let span_json ~cycles_per_ms (s : Span.t) =
  let ms c =
    if cycles_per_ms <= 0.0 then 0.0 else float_of_int c /. cycles_per_ms
  in
  let r = s.Span.route in
  Json.Obj
    [
      ("rid", Json.Int r.Span.rid);
      ("shard", Json.Int r.Span.shard);
      ("firstChoice", Json.Int r.Span.first);
      ("epoch", Json.Int r.Span.epoch);
      ("attempts", Json.Int r.Span.attempts);
      ("hedged", Json.Bool r.Span.hedged);
      ("hedgeWin", Json.Bool r.Span.hedge_win);
      ("enqueueCycles", Json.Int s.Span.enqueue);
      ("startCycles", Json.Int s.Span.start);
      ("finishCycles", Json.Int s.Span.finish);
      ("e2eCycles", Json.Int (Span.e2e_cycles s));
      ("e2eMs", Json.Float (ms (Span.e2e_cycles s)));
      ("blame", Json.Obj (blame_fields s.Span.blame));
    ]

let spans_json (sum : Span.summary) =
  let cpm = sum.Span.cycles_per_ms in
  let ms c = if cpm <= 0.0 then 0.0 else float_of_int c /. cpm in
  let mean c =
    if sum.Span.count = 0 then 0.0 else ms c /. float_of_int sum.Span.count
  in
  let b = sum.Span.sum in
  [
    ( "blame",
      Json.Obj
        ([ ("count", Json.Int sum.Span.count) ]
        @ blame_fields b
        @ [
            ("e2eCycles", Json.Int sum.Span.sum_e2e);
            ("cyclesPerMs", Json.Float cpm);
            ( "meanMs",
              Json.Obj
                [
                  ("e2e", Json.Float (mean sum.Span.sum_e2e));
                  ("fleetQueue", Json.Float (mean b.Span.fleet_queue));
                  ("backoff", Json.Float (mean b.Span.backoff));
                  ("queue", Json.Float (mean b.Span.queue));
                  ("gcQueue", Json.Float (mean b.Span.gc_queue));
                  ("service", Json.Float (mean b.Span.service));
                  ("gcService", Json.Float (mean b.Span.gc_service));
                ] );
          ]) );
    ( "tails",
      Json.Arr (List.map (span_json ~cycles_per_ms:cpm) sum.Span.worst) );
    ( "exemplars",
      Json.Arr
        (List.map
           (fun (d, s) ->
             match span_json ~cycles_per_ms:cpm s with
             | Json.Obj fields -> Json.Obj (("decade", Json.Int d) :: fields)
             | j -> j)
           sum.Span.exemplars) );
  ]

(* Conservation check on the serialised artefact: every [blame] object
   must have components summing to its sibling [e2eCycles].  Used by
   {!validate} and re-used by the cluster validator on each embedded
   per-shard report. *)
let check_conservation j =
  let blame_sum = function
    | Json.Obj _ as b ->
        let get k =
          match Json.member k b with Some (Json.Int n) -> n | _ -> 0
        in
        Some
          (get "fleetQueueCycles" + get "backoffCycles" + get "queueCycles"
          + get "gcQueueCycles" + get "serviceCycles" + get "gcServiceCycles")
    | _ -> None
  in
  let check_span where s =
    match (Json.member "blame" s, Json.member "e2eCycles" s) with
    | Some b, Some (Json.Int e2e) -> (
        match blame_sum b with
        | Some sum when sum <> e2e ->
            Error
              (Printf.sprintf
                 "%s: blame components sum to %d cycles but e2eCycles is %d"
                 where sum e2e)
        | _ -> Ok ())
    | _ -> Ok ()
  in
  let check_list key =
    match Json.member key j with
    | Some (Json.Arr spans) ->
        let rec go i = function
          | [] -> Ok ()
          | s :: rest -> (
              match check_span (Printf.sprintf "%s[%d]" key i) s with
              | Error _ as e -> e
              | Ok () -> go (i + 1) rest)
        in
        go 0 spans
    | _ -> Ok ()
  in
  let top =
    match Json.member "blame" j with
    | Some (Json.Obj _ as b) -> (
        match (blame_sum b, Json.member "e2eCycles" b) with
        | Some sum, Some (Json.Int e2e) when sum <> e2e ->
            Error
              (Printf.sprintf
                 "blame: components sum to %d cycles but e2eCycles is %d" sum
                 e2e)
        | _ -> Ok ())
    | _ -> Ok ()
  in
  match top with
  | Error _ as e -> e
  | Ok () -> (
      match check_list "tails" with
      | Error _ as e -> e
      | Ok () -> check_list "exemplars")

let to_json (cfg : Server.cfg) ~ran_ms (tot : Server.totals) =
  let lat = tot.Server.lat in
  Json.Obj
    ([
      ("schema", Json.Str schema);
      ("ratePerS", Json.Float cfg.Server.rate_per_s);
      ("arrival", arrival_json cfg);
      ("queueCap", Json.Int cfg.Server.queue_cap);
      ("workers", Json.Int cfg.Server.workers);
      ("timeoutMs", Json.Float cfg.Server.timeout_ms);
      ("sloMs", Json.Float cfg.Server.slo_ms);
      ("sloTarget", Json.Float cfg.Server.slo_target);
      ("throttleHi", Json.Int cfg.Server.throttle_hi);
      ("throttleLo", Json.Int cfg.Server.throttle_lo);
      ("ranMs", Json.Float ran_ms);
      ( "counts",
        Json.Obj
          [
            ("arrived", Json.Int tot.Server.arrived);
            ("admitted", Json.Int tot.Server.admitted);
            ("shedFull", Json.Int tot.Server.shed_full);
            ("shedThrottled", Json.Int tot.Server.shed_throttled);
            ("timedOut", Json.Int tot.Server.timed_out);
            ("completed", Json.Int tot.Server.completed);
            ("sloViolations", Json.Int tot.Server.slo_violations);
            ("maxQueueDepth", Json.Int tot.Server.max_depth);
          ] );
      ( "completedPerS",
        Json.Float
          (if ran_ms <= 0.0 then 0.0
           else float_of_int tot.Server.completed /. (ran_ms /. 1000.0)) );
      ("sloAttainment", Json.Float (Server.slo_attainment tot));
      ( "latencyMs",
        Json.Obj
          [
            ("e2e", hist_json (Latency.e2e lat));
            ("queueing", hist_json (Latency.queueing lat));
            ("service", hist_json (Latency.service lat));
            ("gcInflation", hist_json (Latency.gc lat));
          ] );
    ]
    @ spans_json tot.Server.spans)

(* Shared by the server and cluster text reports: a one-line mean blame
   decomposition plus the worst spans' causal chains. *)
let blame_text buf (sum : Span.summary) =
  if sum.Span.count > 0 then begin
    let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    let cpm = sum.Span.cycles_per_ms in
    let ms c = if cpm <= 0.0 then 0.0 else float_of_int c /. cpm in
    let mean c = ms c /. float_of_int sum.Span.count in
    let b = sum.Span.sum in
    pf
      "  blame (mean ms over %d): e2e %.3f = fleet-q %.3f + backoff %.3f + \
       queue %.3f + gc-queue %.3f + service %.3f + gc-service %.3f\n"
      sum.Span.count (mean sum.Span.sum_e2e)
      (mean b.Span.fleet_queue)
      (mean b.Span.backoff) (mean b.Span.queue) (mean b.Span.gc_queue)
      (mean b.Span.service)
      (mean b.Span.gc_service);
    match sum.Span.worst with
    | [] -> ()
    | worst :: _ ->
        let r = worst.Span.route in
        pf
          "  worst span: rid %d via shard %d (first choice %d, epoch %d, %d \
           retries%s) e2e %.3f ms = backoff %.3f + queue %.3f + gc-queue %.3f \
           + service %.3f + gc-service %.3f\n"
          r.Span.rid r.Span.shard r.Span.first r.Span.epoch r.Span.attempts
          (if r.Span.hedge_win then ", hedge won"
           else if r.Span.hedged then ", hedged"
           else "")
          (ms (Span.e2e_cycles worst))
          (ms worst.Span.blame.Span.backoff)
          (ms worst.Span.blame.Span.queue)
          (ms worst.Span.blame.Span.gc_queue)
          (ms worst.Span.blame.Span.service)
          (ms worst.Span.blame.Span.gc_service)
  end

let text (cfg : Server.cfg) ~ran_ms (tot : Server.totals) =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let lat = tot.Server.lat in
  pf "server: %s arrivals at %.0f req/s, %d workers, queue %d, %.1f ms run\n"
    (Arrival.kind_name cfg.Server.arrival)
    cfg.Server.rate_per_s cfg.Server.workers cfg.Server.queue_cap ran_ms;
  pf
    "  arrived %d  admitted %d  completed %d (%.0f/s)  shed %d+%d  \
     timed-out %d  max-depth %d\n"
    tot.Server.arrived tot.Server.admitted tot.Server.completed
    (if ran_ms <= 0.0 then 0.0
     else float_of_int tot.Server.completed /. (ran_ms /. 1000.0))
    tot.Server.shed_full tot.Server.shed_throttled tot.Server.timed_out
    tot.Server.max_depth;
  if cfg.Server.slo_ms > 0.0 then
    pf "  SLO %.1f ms: attainment %.4f (target %.4f), %d violations\n"
      cfg.Server.slo_ms
      (Server.slo_attainment tot)
      cfg.Server.slo_target tot.Server.slo_violations;
  pf "  %-12s %8s %8s %8s %8s %8s %8s\n" "latency (ms)" "mean" "p50" "p95"
    "p99" "p99.9" "max";
  let row name h =
    let v p = Histogram.percentile h p in
    pf "  %-12s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n" name (Histogram.mean h)
      (v 50.0) (v 95.0) (v 99.0) (v 99.9)
      (if Histogram.count h = 0 then 0.0 else Histogram.max h)
  in
  row "end-to-end" (Latency.e2e lat);
  row "queueing" (Latency.queueing lat);
  row "service" (Latency.service lat);
  row "gc-inflation" (Latency.gc lat);
  blame_text b tot.Server.spans;
  Buffer.contents b

let validate s =
  match Json.parse s with
  | Error e -> Error e
  | Ok j -> (
      match Json.member "schema" j with
      | Some (Json.Str v) when v = schema -> (
          match check_conservation j with
          | Ok () -> Ok j
          | Error e -> Error e)
      | Some (Json.Str v) ->
          Error (Printf.sprintf "schema mismatch: expected %s, got %s" schema v)
      | _ -> Error "missing schema tag")
