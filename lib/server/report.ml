module Histogram = Cgc_util.Histogram
module Json = Cgc_prof.Json

let schema = "cgcsim-server-v1"

let pcts = [ ("p50", 50.0); ("p95", 95.0); ("p99", 99.0); ("p999", 99.9) ]

let hist_json h =
  let n = Histogram.count h in
  Json.Obj
    ([
       ("count", Json.Int n);
       ("mean", Json.Float (Histogram.mean h));
       ("min", Json.Float (if n = 0 then 0.0 else Histogram.min h));
     ]
    @ List.map (fun (k, p) -> (k, Json.Float (Histogram.percentile h p))) pcts
    @ [ ("max", Json.Float (if n = 0 then 0.0 else Histogram.max h)) ])

let arrival_json (cfg : Server.cfg) =
  let kind = Arrival.kind_name cfg.Server.arrival in
  match cfg.Server.arrival with
  | Arrival.Poisson | Arrival.Constant -> Json.Obj [ ("kind", Json.Str kind) ]
  | Arrival.Bursty { on_ms; off_ms; factor } ->
      Json.Obj
        [
          ("kind", Json.Str kind);
          ("onMs", Json.Float on_ms);
          ("offMs", Json.Float off_ms);
          ("factor", Json.Float factor);
        ]

let to_json (cfg : Server.cfg) ~ran_ms (tot : Server.totals) =
  let lat = tot.Server.lat in
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("ratePerS", Json.Float cfg.Server.rate_per_s);
      ("arrival", arrival_json cfg);
      ("queueCap", Json.Int cfg.Server.queue_cap);
      ("workers", Json.Int cfg.Server.workers);
      ("timeoutMs", Json.Float cfg.Server.timeout_ms);
      ("sloMs", Json.Float cfg.Server.slo_ms);
      ("sloTarget", Json.Float cfg.Server.slo_target);
      ("throttleHi", Json.Int cfg.Server.throttle_hi);
      ("throttleLo", Json.Int cfg.Server.throttle_lo);
      ("ranMs", Json.Float ran_ms);
      ( "counts",
        Json.Obj
          [
            ("arrived", Json.Int tot.Server.arrived);
            ("admitted", Json.Int tot.Server.admitted);
            ("shedFull", Json.Int tot.Server.shed_full);
            ("shedThrottled", Json.Int tot.Server.shed_throttled);
            ("timedOut", Json.Int tot.Server.timed_out);
            ("completed", Json.Int tot.Server.completed);
            ("sloViolations", Json.Int tot.Server.slo_violations);
            ("maxQueueDepth", Json.Int tot.Server.max_depth);
          ] );
      ( "completedPerS",
        Json.Float
          (if ran_ms <= 0.0 then 0.0
           else float_of_int tot.Server.completed /. (ran_ms /. 1000.0)) );
      ("sloAttainment", Json.Float (Server.slo_attainment tot));
      ( "latencyMs",
        Json.Obj
          [
            ("e2e", hist_json (Latency.e2e lat));
            ("queueing", hist_json (Latency.queueing lat));
            ("service", hist_json (Latency.service lat));
            ("gcInflation", hist_json (Latency.gc lat));
          ] );
    ]

let text (cfg : Server.cfg) ~ran_ms (tot : Server.totals) =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let lat = tot.Server.lat in
  pf "server: %s arrivals at %.0f req/s, %d workers, queue %d, %.1f ms run\n"
    (Arrival.kind_name cfg.Server.arrival)
    cfg.Server.rate_per_s cfg.Server.workers cfg.Server.queue_cap ran_ms;
  pf
    "  arrived %d  admitted %d  completed %d (%.0f/s)  shed %d+%d  \
     timed-out %d  max-depth %d\n"
    tot.Server.arrived tot.Server.admitted tot.Server.completed
    (if ran_ms <= 0.0 then 0.0
     else float_of_int tot.Server.completed /. (ran_ms /. 1000.0))
    tot.Server.shed_full tot.Server.shed_throttled tot.Server.timed_out
    tot.Server.max_depth;
  if cfg.Server.slo_ms > 0.0 then
    pf "  SLO %.1f ms: attainment %.4f (target %.4f), %d violations\n"
      cfg.Server.slo_ms
      (Server.slo_attainment tot)
      cfg.Server.slo_target tot.Server.slo_violations;
  pf "  %-12s %8s %8s %8s %8s %8s %8s\n" "latency (ms)" "mean" "p50" "p95"
    "p99" "p99.9" "max";
  let row name h =
    let v p = Histogram.percentile h p in
    pf "  %-12s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n" name (Histogram.mean h)
      (v 50.0) (v 95.0) (v 99.0) (v 99.9)
      (if Histogram.count h = 0 then 0.0 else Histogram.max h)
  in
  row "end-to-end" (Latency.e2e lat);
  row "queueing" (Latency.queueing lat);
  row "service" (Latency.service lat);
  row "gc-inflation" (Latency.gc lat);
  Buffer.contents b

let validate s =
  match Json.parse s with
  | Error e -> Error e
  | Ok j -> (
      match Json.member "schema" j with
      | Some (Json.Str v) when v = schema -> Ok j
      | Some (Json.Str v) ->
          Error (Printf.sprintf "schema mismatch: expected %s, got %s" schema v)
      | _ -> Error "missing schema tag")
