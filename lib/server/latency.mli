(** Per-worker request-latency accounting.

    Each server worker owns one accumulator; {!Server.totals} combines
    them with {!Cgc_util.Histogram.merge}, so percentiles are computed
    over the union of all workers' samples while recording stays
    allocation-free on the request path.  All values are simulated
    milliseconds. *)

type sample = {
  queueing_ms : float;  (** enqueue → dispatch *)
  service_ms : float;  (** dispatch → response *)
  e2e_ms : float;  (** exactly [queueing_ms +. service_ms] *)
  gc_ms : float;
      (** end-to-end inflation attributable to stop-the-world time
          overlapping the request's lifetime: the queue-phase overlap
          clamped to [queueing_ms] plus the service-phase overlap
          clamped to [service_ms] *)
}

val decompose :
  cycles_per_ms:float ->
  arrival:int ->
  start:int ->
  finish:int ->
  s_arr:int ->
  s_start:int ->
  s_fin:int ->
  sample
(** Pure accounting from cycle timestamps: [arrival] (enqueue), [start]
    (worker pick-up) and [finish] (response), plus the cumulative
    stopped-world cycle integral sampled at arrival ([s_arr]), at
    dispatch ([s_start]) and at completion ([s_fin]). *)

type t

val create : unit -> t

val observe : t -> slo_ms:float -> sample -> unit
(** Record one completed request; counts an SLO violation when
    [slo_ms > 0] and [e2e_ms > slo_ms]. *)

val handled : t -> int
val slo_violations : t -> int

val e2e : t -> Cgc_util.Histogram.t
val queueing : t -> Cgc_util.Histogram.t
val service : t -> Cgc_util.Histogram.t
val gc : t -> Cgc_util.Histogram.t

val merge : t -> t -> t
(** Bucket-wise combination of every histogram plus the counters. *)

val clear : t -> unit
