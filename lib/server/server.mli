(** The open-loop request/latency subsystem.

    The paper's collector exists to keep {e server} tails short, yet the
    closed-loop workloads (SPECjbb, pBOB, javac) can only measure GC
    pauses — a closed loop stops offering load the instant the world
    stops, hiding the queueing delay a real client would eat.  This
    module layers an open-loop request simulation over a {!Vm}:

    {ul
    {- an {!Arrival} process injects request arrivals from a host-side
       scheduler hook, so arrivals continue during stop-the-world pauses
       (the open-loop property);}
    {- arrivals land in a bounded FIFO queue with two overload-control
       rungs: {e drop-newest} load shedding when the queue is full, and
       an optional hysteretic {e admission throttle} that sheds at the
       door while the backlog is above a high-water mark;}
    {- worker mutators (plain {!Cgc_runtime.Mutator} threads running a
       {!Cgc_workloads.Txmix} transaction per request) dispatch FIFO,
       abandoning requests whose deadline passed while queued;}
    {- every response is decomposed into queueing / service / GC-pause
       inflation ({!Latency}) and recorded into per-worker bounded
       histograms, merged for reporting.}}

    All state changes are driven by the simulated clock and split PRNG
    streams: same seed ⇒ byte-identical event trace and report. *)

type cfg = {
  rate_per_s : float;  (** average offered load, requests per second *)
  arrival : Arrival.kind;
  queue_cap : int;  (** bound on queued (not yet dispatched) requests *)
  workers : int;
  timeout_ms : float;  (** queueing deadline; 0 = none *)
  slo_ms : float;  (** end-to-end latency SLO; 0 = none *)
  slo_target : float;
      (** required attainment fraction (default 0.999) — below it,
          {!slo_breached} holds and [cgcsim serve] exits 6 *)
  throttle_hi : int;
      (** queue depth arming the admission throttle; 0 = disabled *)
  throttle_lo : int;  (** depth at which the throttle disarms *)
  service : Cgc_workloads.Txmix.profile;
      (** per-request service work (its [list_len] is rescaled so all
          workers' resident sets total [resident_frac] of the heap) *)
  resident_frac : float;
  poll_cycles : int;  (** idle-worker queue poll interval *)
}

val default_service : Cgc_workloads.Txmix.profile

val cfg :
  ?arrival:Arrival.kind ->
  ?queue_cap:int ->
  ?workers:int ->
  ?timeout_ms:float ->
  ?slo_ms:float ->
  ?slo_target:float ->
  ?throttle_hi:int ->
  ?throttle_lo:int ->
  ?service:Cgc_workloads.Txmix.profile ->
  ?resident_frac:float ->
  ?poll_cycles:int ->
  rate_per_s:float ->
  unit ->
  cfg
(** Defaults: Poisson arrivals, queue of 256, 4 workers, no timeout, no
    SLO, throttle off, {!default_service}, 50% heap residency, ~36 µs
    poll. *)

type t

val create :
  ?arrivals:Arrival.t ->
  ?degrade:int * int * float ->
  ?route:(int -> Span.route) ->
  cfg ->
  Cgc_runtime.Vm.t ->
  t
(** Spawns the worker mutators, installs the arrival hook, registers a
    {!Cgc_runtime.Vm.on_reset} hook so warm-up statistics are discarded
    by [run_measured], and — when a profiler is already enabled —
    attaches the queue-depth / in-flight probes.  Call before
    {!Cgc_runtime.Vm.run}.

    [arrivals] overrides the arrival process built from the [cfg]
    fields — the cluster layer passes {!Arrival.scripted} slices of the
    routed fleet stream here, so a shard serves exactly the requests
    the balancer sent it.  When the script carries per-arrival [delays]
    (retry backoff), the request's arrival stamp is backdated by the
    delay so queueing/end-to-end latency include the redirection time.

    [degrade] is a [(start, stop, factor)] brownout window in this VM's
    cycles: transactions dispatched inside it are stretched by
    [(factor - 1)]× their own duration, modelling a noisy neighbour
    sharing away the shard's CPUs.

    [route] maps an arrival ordinal (position in the arrival stream,
    counting shed arrivals) to the fleet routing decision that placed
    it; the cluster layer passes the balancer's per-request
    {!Span.route} records here so every completed request's causal span
    carries its route, retries and hedge outcome.  Defaults to
    {!Span.local_route}. *)

val the_cfg : t -> cfg

val attach_probes : t -> unit
(** Register the ["server-queue-depth"] and ["server-in-flight"] probes
    on the VM's profiler (idempotent; no-op when no profiler is
    enabled).  {!create} calls this automatically if the profiler was
    enabled first; call it manually after a later
    [Vm.enable_profiler]. *)

val queue_depth : t -> int
val in_flight : t -> int

val shed_now : t -> int
(** Requests shed so far (queue-full + throttled) — an O(1) read the
    cluster shard's timeline sampler polls every scheduler tick. *)

type totals = {
  arrived : int;  (** every generated arrival, including shed ones *)
  admitted : int;
  shed_full : int;  (** dropped because the queue was full *)
  shed_throttled : int;  (** dropped by the admission throttle *)
  timed_out : int;  (** abandoned at dispatch: deadline passed in queue *)
  completed : int;
  slo_violations : int;  (** completed, but over [slo_ms] end-to-end *)
  max_depth : int;  (** high-water queue depth *)
  lat : Latency.t;  (** all workers' accounting, histogram-merged *)
  spans : Span.summary;
      (** exact blame decomposition over every completed request, plus
          the worst-{!Span.worst_k} spans and per-decade exemplars *)
}

val totals : t -> totals

val slo_attainment : totals -> float
(** Fraction of {e offered-and-resolved} requests (completed + shed +
    timed out) that completed within the SLO; 1.0 when none resolved.
    Sheds and timeouts count as violations — a dropped request is the
    worst latency of all. *)

val slo_breached : t -> bool
(** [slo_ms > 0] and attainment below [slo_target]. *)
