module Histogram = Cgc_util.Histogram

type sample = {
  queueing_ms : float;
  service_ms : float;
  e2e_ms : float;
  gc_ms : float;
}

let decompose ~cycles_per_ms ~arrival ~start ~finish ~s_arr ~s_start ~s_fin =
  let ms c = float_of_int c /. cycles_per_ms in
  let queueing_ms = ms (start - arrival) in
  let service_ms = ms (finish - start) in
  let e2e_ms = queueing_ms +. service_ms in
  (* Clamp each stopped-world overlap to the interval it can inflate,
     mirroring the integer-exact split in {!Span.blame_of}. *)
  let gc_q = min (start - arrival) (max 0 (s_start - s_arr)) in
  let gc_s = min (finish - start) (max 0 (s_fin - s_start)) in
  let gc_ms = ms (gc_q + gc_s) in
  { queueing_ms; service_ms; e2e_ms; gc_ms }

type t = {
  e2e : Histogram.t;
  queueing : Histogram.t;
  service : Histogram.t;
  gc : Histogram.t;
  mutable handled : int;
  mutable slo_violations : int;
}

let create () =
  {
    e2e = Histogram.create ();
    queueing = Histogram.create ();
    service = Histogram.create ();
    gc = Histogram.create ();
    handled = 0;
    slo_violations = 0;
  }

let observe t ~slo_ms s =
  Histogram.add t.e2e s.e2e_ms;
  Histogram.add t.queueing s.queueing_ms;
  Histogram.add t.service s.service_ms;
  Histogram.add t.gc s.gc_ms;
  t.handled <- t.handled + 1;
  if slo_ms > 0.0 && s.e2e_ms > slo_ms then
    t.slo_violations <- t.slo_violations + 1

let handled t = t.handled
let slo_violations t = t.slo_violations
let e2e t = t.e2e
let queueing t = t.queueing
let service t = t.service
let gc t = t.gc

let merge a b =
  {
    e2e = Histogram.merge a.e2e b.e2e;
    queueing = Histogram.merge a.queueing b.queueing;
    service = Histogram.merge a.service b.service;
    gc = Histogram.merge a.gc b.gc;
    handled = a.handled + b.handled;
    slo_violations = a.slo_violations + b.slo_violations;
  }

let clear t =
  Histogram.clear t.e2e;
  Histogram.clear t.queueing;
  Histogram.clear t.service;
  Histogram.clear t.gc;
  t.handled <- 0;
  t.slo_violations <- 0
