(** The generational front end: a bump-allocated nursery and minor
    collections layered over the concurrent major collector.

    The nursery is a card-aligned region carved off the top of the arena
    at startup ({!Cgc_heap.Heap.reserve_top}); everything below it is the
    {e old space}, owned by the free-list allocator and the concurrent
    major collector.  Mutators bump-allocate small objects out of nursery
    chunks (their ordinary allocation caches, pointed at nursery extents
    through the collector's refill hook).  When the nursery is exhausted,
    the allocating mutator — and {e only} that mutator — runs a minor
    collection: it scans every mutator's root array (conservatively,
    with the tracer's own filter), the precise global table, and the
    old→young remembered set, evacuates the survivors into the old space
    by copying, and resets the nursery.  Promotion is {e everything
    survives one minor} (promote-all): objects either die in the nursery
    or leave it on their first collection — with one exception.  A young
    object referenced from a root array is {e pinned}: a suspended
    mutator mirrors its live locals in its root array (the discipline
    [Compact] already relies on), and a local cannot be rewritten, so a
    root-reachable young object must not move.  Pinned survivors stay at
    their address (the nursery carver steps over them), are rescanned by
    every minor while pinned, and are evacuated by the first minor that
    no longer finds them in any root.  An old-space object left holding
    a reference to a pinned survivor keeps its remembered-set card
    dirty, so the edge is re-examined by the next minor.

    The remembered set is a second {!Cgc_heap.Card_table} over the same
    geometry: the [Gen]-mode write barrier dirties the {e parent's} card
    in it whenever an old-space object stores a young reference.  Only
    minor collections snapshot and clear this table — the major
    collector's card passes never touch it.

    Two rules keep the two collectors composable:
    {ul
    {- {e Minors run only while the major collector is Idle.}  A nursery
       exhaustion during a concurrent marking phase falls back to
       old-space allocation instead (counted as [minor_deferred]) — so a
       minor never has to reason about mark bits, work packets or
       tracing termination.}
    {- {e The major collector never crosses the nursery boundary.}
       Sweep and emergency compaction stop at [Collector.old_limit];
       nursery reclamation belongs to minors alone.}}

    The whole minor runs host-atomically inside the allocating mutator's
    slow path and is billed to that mutator as one flush — the pause
    stops one thread, not the world. *)

type t

val create : Cgc_core.Collector.t -> nursery_slots:int -> t
(** Carve the nursery off the top of the collector's (pristine) heap,
    create the young remembered-set card table, and install the barrier
    and refill hooks via {!Cgc_core.Collector.install_gen}.  The
    collector must have been created in [Config.Gen] mode and nothing
    may have been allocated yet. *)

val minor : t -> used:int -> unit
(** Run one minor collection from inside a simulated mutator thread.
    [used] is the nursery occupancy (slots) at the trigger, reported in
    the [Minor_start] event and fed to the survival-rate estimator.
    Normally invoked by the refill hook on nursery exhaustion; exposed
    for tests and forced collections. *)

(** {2 Probes and report feeds} *)

val n_lo : t -> int
(** First nursery slot (= the old-space limit). *)

val n_hi : t -> int
(** One past the last nursery slot (= [Heap.nslots]). *)

val nursery_used : t -> float
(** Fraction of the nursery currently carved out into allocation chunks
    (the profiler's nursery-occupancy probe). *)

val promotion_rate : t -> float
(** Exponentially-smoothed survivor fraction (slots promoted or pinned
    over slots in use at the trigger) across minors — the profiler's
    promotion-rate probe.  [0.] until the first minor. *)

val pinned_slots : t -> int
(** Slots pinned in place by the most recent minor collection. *)

val young : t -> Cgc_heap.Card_table.t
(** The old→young remembered-set card table (diagnostics and tests). *)
