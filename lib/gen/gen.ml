module Heap = Cgc_heap.Heap
module Arena = Cgc_heap.Arena
module Alloc_bits = Cgc_heap.Alloc_bits
module Card_table = Cgc_heap.Card_table
module Machine = Cgc_smp.Machine
module Cost = Cgc_smp.Cost
module Weakmem = Cgc_smp.Weakmem
module Obs = Cgc_obs.Obs
module Event = Cgc_obs.Event
module Collector = Cgc_core.Collector
module Config = Cgc_core.Config
module Gstats = Cgc_core.Gstats
module Mctx = Cgc_core.Mctx
module Verify = Cgc_core.Verify
module Histogram = Cgc_util.Histogram
module Ewma = Cgc_util.Ewma

type t = {
  coll : Collector.t;
  hp : Heap.t;
  mach : Machine.t;
  young : Card_table.t;  (** old->young remembered set *)
  n_lo : int;  (** first nursery slot *)
  n_hi : int;  (** one past the last nursery slot *)
  chunk_pref : int;  (** preferred carve size (= the cache size) *)
  verify : bool;
  mutable bump : int;  (** nursery carve pointer, in [n_lo, n_hi] *)
  mutable pins_ahead : (int * int) list;
      (** pinned extents at or above [bump], ascending — the carver
          steps over them *)
  mutable pin_extents : (int * int) list;
      (** all pinned [(addr, size)] extents, ascending, as of the last
          minor *)
  pinned : (int, unit) Hashtbl.t;  (** membership for the same set *)
  fwd : (int, int) Hashtbl.t;  (** young address -> promoted copy *)
  mutable worklist : int list;  (** promoted copies whose refs are unscanned *)
  survival : Ewma.t;  (** smoothed survivor fraction across minors *)
  mutable promoted_this : int;  (** slots promoted by the current minor *)
  mutable pinned_this : int;  (** slots pinned in place by the current minor *)
  mutable promoted_list : int list;  (** promoted addresses (verify only) *)
}

let n_lo t = t.n_lo
let n_hi t = t.n_hi
let young t = t.young
let pinned_slots t = t.pinned_this

let nursery_used t =
  float_of_int (t.bump - t.n_lo) /. float_of_int (t.n_hi - t.n_lo)

let promotion_rate t = Ewma.value t.survival
let in_nursery t v = v >= t.n_lo && v < t.n_hi

(* ------------------------------------------------------------------ *)
(* Evacuation *)

(* The survivor destination for a live young object: itself when pinned
   (referenced from some root array, so a suspended mutator may hold the
   address in a local — exactly the objects [Compact] pins for the same
   reason), otherwise a copy in the old space.  The copy extent comes
   from [Collector.alloc_old] (raw slots, no header, no bits): the
   complete object — header included — is copied over it and only then
   published, so a conservative scan can never observe a half-formed
   survivor.  Promoted copies need no mark bit: minors run only while
   the major collector is Idle, and the next cycle starts by clearing
   all marks. *)
let evacuate t v =
  if Hashtbl.mem t.pinned v then v
  else
    match Hashtbl.find_opt t.fwd v with
    | Some dst -> dst
    | None ->
        let arena = Heap.arena t.hp in
        let c = t.mach.Machine.cost in
        let size = Arena.size_of_sc arena v in
        let dst = Collector.alloc_old t.coll ~size in
        for k = 0 to size - 1 do
          Arena.write_slot arena (dst + k) (Arena.read_slot_sc arena (v + k))
        done;
        Alloc_bits.set (Heap.alloc_bits t.hp) dst;
        Machine.charge t.mach (c.Cost.trace_obj + (size * c.Cost.trace_slot));
        Hashtbl.replace t.fwd v dst;
        t.worklist <- dst :: t.worklist;
        t.promoted_this <- t.promoted_this + size;
        if t.verify then t.promoted_list <- dst :: t.promoted_list;
        dst

(* Scan one survivor's reference slots, evacuating its young children.
   A child that stays young (pinned) leaves a young reference behind:
   when the scanned object lives in the old space, that edge must stay
   in the remembered set — re-dirty its young card — or the next minor
   would miss it. *)
let scan_object t a ~old =
  let arena = Heap.arena t.hp in
  let keep = ref false in
  let nrefs = Arena.nrefs_of_sc arena a in
  for i = 0 to nrefs - 1 do
    let v = Arena.ref_get_sc arena a i in
    if in_nursery t v then begin
      let nv = evacuate t v in
      if nv <> v then Arena.ref_set_raw arena a i nv else keep := true
    end
  done;
  if old && !keep then Card_table.dirty t.young (Arena.card_of_addr a)

(* Transitive closure over the promoted copies (explicit worklist, LIFO:
   the order is part of the deterministic trace contract). *)
let rec drain t =
  match t.worklist with
  | [] -> ()
  | dst :: rest ->
      t.worklist <- rest;
      scan_object t dst ~old:true;
      drain t

let run_verify t ~stage ~caches ~promoted ~label =
  Verify.check_nursery ~heap:t.hp ~young:t.young ~n_lo:t.n_lo ~n_hi:t.n_hi
    ~bump:t.bump ~pins:t.pin_extents ~caches ~promoted ~stage ~label

(* ------------------------------------------------------------------ *)
(* The minor collection *)

let minor t ~used =
  let arena = Heap.arena t.hp in
  let abits = Heap.alloc_bits t.hp in
  let c = t.mach.Machine.cost in
  let st = Collector.stats t.coll in
  let obs = t.mach.Machine.obs in
  (* Bill the slow path's pending debt before timing the pause. *)
  Machine.flush t.mach;
  let t0 = Machine.now t.mach in
  Obs.instant obs ~arg:used Event.Minor_start;
  let muts = Collector.mutators t.coll in
  (* Nursery cache extents, captured before retirement for the verifier
     (old-space caches — installed while a minor was deferred — are not
     nursery chunks and are excluded). *)
  let extents =
    if t.verify then
      List.filter
        (fun (base, _, limit) -> limit > 0 && base >= t.n_lo)
        (List.map (fun m -> Heap.cache_extent m.Mctx.cache) muts)
    else []
  in
  (* Publish every allocation cache: the conservative root filter and
     the remembered-set walk read committed allocation bits.  Nursery
     chunks must be dropped anyway (the nursery resets below); old-space
     caches are simply refilled on their owner's next slow path. *)
  List.iter (fun m -> Heap.retire_cache t.hp m.Mctx.cache) muts;
  Weakmem.fence_all t.mach.Machine.wm;
  let label = Printf.sprintf "minor %d" (st.Gstats.minors + 1) in
  if t.verify then
    run_verify t ~stage:`Pre ~caches:extents ~promoted:[] ~label;
  t.promoted_this <- 0;
  t.pinned_this <- 0;
  t.promoted_list <- [];
  (* Pin pass: every young object referenced from a root array stays at
     its address.  A mutator suspended mid-transaction mirrors its live
     locals in its root array (the discipline [Compact] already relies
     on), but the local itself cannot be rewritten — so a root-reachable
     young object must not move.  The full pin set is computed before
     anything is evacuated. *)
  Hashtbl.reset t.pinned;
  let pin_scan = ref [] in
  List.iter
    (fun m ->
      Array.iter
        (fun v ->
          if
            v >= t.n_lo && Arena.in_heap arena v
            && Alloc_bits.is_set_sc abits v
            && Arena.header_valid_sc arena v
            && not (Hashtbl.mem t.pinned v)
          then begin
            Hashtbl.replace t.pinned v ();
            let size = Arena.size_of_sc arena v in
            t.pinned_this <- t.pinned_this + size;
            Machine.charge t.mach c.Cost.trace_obj;
            pin_scan := v :: !pin_scan
          end)
        m.Mctx.roots)
    muts;
  (* The global table is precise.  A pinned referent stays young (the
     store that published it mirrored a rooted local); globals are
     rescanned by every minor, so no remembered-set entry is needed. *)
  let g = Collector.globals_array t.coll in
  for i = 0 to Array.length g - 1 do
    let v = g.(i) in
    if in_nursery t v then g.(i) <- evacuate t v
  done;
  (* Old->young remembered set: snapshot registers and clears the dirty
     cards (all old-space cards — the barrier dirties the parent's
     card).  Objects are found through committed allocation bits, so a
     parent swept dead by an earlier major is skipped, not scanned.
     [scan_object ~old:true] re-dirties the card when a young (pinned)
     referent remains. *)
  let cards = Card_table.snapshot t.young in
  List.iter
    (fun card ->
      Heap.iter_objects_on_card t.hp card (fun a ->
          if a < t.n_lo then scan_object t a ~old:true))
    cards;
  (* Pinned survivors keep their address but their children still
     evacuate; while pinned they are rescanned by every minor, so no
     remembered-set entry is needed for young->young edges. *)
  List.iter (fun a -> scan_object t a ~old:false) (List.rev !pin_scan);
  drain t;
  (* Reset the nursery: clear allocation bits in the gaps between the
     pinned extents and rewind the carve pointer (the carver steps over
     the pins).  Stale nursery mark bits are harmless — the next major
     cycle begins by clearing every mark bit. *)
  let pins =
    List.sort compare
      (Hashtbl.fold
         (fun a () acc -> (a, Arena.size_of_sc arena a) :: acc)
         t.pinned [])
  in
  let rec clear_gaps lo = function
    | [] -> if lo < t.n_hi then Alloc_bits.clear_range abits lo (t.n_hi - lo)
    | (pa, ps) :: rest ->
        if lo < pa then Alloc_bits.clear_range abits lo (pa - lo);
        clear_gaps (pa + ps) rest
  in
  clear_gaps t.n_lo pins;
  t.pin_extents <- pins;
  t.pins_ahead <- pins;
  t.bump <- t.n_lo;
  Hashtbl.reset t.fwd;
  Weakmem.fence_all t.mach.Machine.wm;
  if t.verify then
    run_verify t ~stage:`Post ~caches:[] ~promoted:t.promoted_list ~label;
  (* One flush: the whole minor is billed to the allocating mutator. *)
  Machine.flush t.mach;
  let t1 = Machine.now t.mach in
  let promoted = t.promoted_this in
  Obs.instant obs ~arg:promoted Event.Promote;
  Obs.span_at obs ~arg:promoted ~ts:t0 ~dur:(t1 - t0) Event.Minor_done;
  st.Gstats.minors <- st.Gstats.minors + 1;
  st.Gstats.promoted_slots <- st.Gstats.promoted_slots + promoted;
  Histogram.add st.Gstats.minor_pause_ms
    (Cost.ms_of_cycles t.mach.Machine.cost (t1 - t0));
  Ewma.observe t.survival
    (if used > 0 then
       float_of_int (promoted + t.pinned_this) /. float_of_int used
     else 0.)

(* ------------------------------------------------------------------ *)
(* Hooks installed into the collector *)

(* Write-barrier extension: [Collector.set_ref] has already charged the
   barrier and dirtied the major card; record the old->young edge in the
   remembered set (keyed by the parent's header card). *)
let barrier t ~parent ~value =
  if parent < t.n_lo && value >= t.n_lo then
    Card_table.dirty t.young (Arena.card_of_addr parent)

(* Carve [need] slots (preferably [chunk_pref]) out of the nursery,
   stepping over pinned extents.  [None] means no gap fits: time for a
   minor (or the old-space fallback). *)
let rec carve t ~need =
  let gap_end =
    match t.pins_ahead with (pa, _) :: _ -> pa | [] -> t.n_hi
  in
  if t.bump + need <= gap_end then begin
    let chunk = Stdlib.min t.chunk_pref (gap_end - t.bump) in
    let chunk = Stdlib.max chunk need in
    let base = t.bump in
    t.bump <- base + chunk;
    Some (base, t.bump)
  end
  else
    match t.pins_ahead with
    | (pa, ps) :: rest ->
        (* The gap before this pin is too small; skip past it (the
           sliver stays unused until the next minor re-opens it). *)
        t.bump <- pa + ps;
        t.pins_ahead <- rest;
        carve t ~need
    | [] -> None

let install t (m : Mctx.t) ~base ~limit =
  Heap.install_cache t.hp m.Mctx.cache ~base ~limit;
  Obs.instant t.mach.Machine.obs ~arg:(t.n_hi - t.bump) Event.Nursery_fill

(* Allocation-cache refill from the nursery.  False sends the slow path
   to the old-space free list: a request larger than the nursery, a
   nursery so pinned-up that no gap fits even after a minor, or an
   exhausted nursery while a concurrent major phase is in flight (a
   minor must not run concurrently with marking — the deferral is
   counted, and the next Idle-time exhaustion collects as usual). *)
let refill t m ~min:need =
  if need > t.n_hi - t.n_lo then false
  else
    match carve t ~need with
    | Some (base, limit) ->
        install t m ~base ~limit;
        true
    | None -> (
        match Collector.phase t.coll with
        | Collector.Idle -> (
            minor t ~used:(t.bump - t.n_lo);
            match carve t ~need with
            | Some (base, limit) ->
                install t m ~base ~limit;
                true
            | None -> false)
        | Collector.Marking | Collector.Finalizing ->
            let st = Collector.stats t.coll in
            st.Gstats.minor_deferred <- st.Gstats.minor_deferred + 1;
            false)

let create coll ~nursery_slots =
  let hp = Collector.heap coll in
  let mach = Heap.machine hp in
  let cfg = Collector.config coll in
  let n_lo = Heap.reserve_top hp ~slots:nursery_slots in
  let n_hi = Heap.nslots hp in
  let young =
    Card_table.create mach ~ncards:(Card_table.ncards (Heap.cards hp))
  in
  let t =
    {
      coll;
      hp;
      mach;
      young;
      n_lo;
      n_hi;
      chunk_pref = cfg.Config.cache_slots;
      verify = cfg.Config.verify;
      bump = n_lo;
      pins_ahead = [];
      pin_extents = [];
      pinned = Hashtbl.create 64;
      fwd = Hashtbl.create 256;
      worklist = [];
      survival = Ewma.create ~init:0. ();
      promoted_this = 0;
      pinned_this = 0;
      promoted_list = [];
    }
  in
  Collector.install_gen coll ~old_limit:n_lo
    ~barrier:(fun ~parent ~value -> barrier t ~parent ~value)
    ~refill:(fun m ~min -> refill t m ~min);
  t
