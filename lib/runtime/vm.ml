module Sched = Cgc_sim.Sched
module Collector = Cgc_core.Collector
module Config = Cgc_core.Config
module Gstats = Cgc_core.Gstats
module Heap = Cgc_heap.Heap
module Machine = Cgc_smp.Machine
module Weakmem = Cgc_smp.Weakmem
module Fence = Cgc_smp.Fence
module Cost = Cgc_smp.Cost
module Pool = Cgc_packets.Pool
module Prng = Cgc_util.Prng
module Fault = Cgc_fault.Fault
module Stats = Cgc_util.Stats
module Histogram = Cgc_util.Histogram
module Obs = Cgc_obs.Obs
module Export = Cgc_obs.Export
module Sampler = Cgc_prof.Sampler
module Series = Cgc_prof.Series
module Card_table = Cgc_heap.Card_table
module Tracer = Cgc_core.Tracer
module Gen = Cgc_gen.Gen

type config = {
  heap_mb : float;
  ncpus : int;
  seed : int;
  gc : Config.t;
  wm_mode : Weakmem.mode;
  stack_slots : int;
  quantum : int;
  fence_policy : Heap.fence_policy;
  trace : bool;
  trace_ring : int;
}

let config ?(heap_mb = 64.0) ?(ncpus = 4) ?(seed = 1) ?(gc = Config.default)
    ?(wm_mode = Weakmem.Sc) ?(stack_slots = 48) ?(quantum = 110_000)
    ?(fence_policy = Heap.Batched) ?(trace = false) ?(trace_ring = 65536) () =
  { heap_mb; ncpus; seed; gc; wm_mode; stack_slots; quantum; fence_policy;
    trace; trace_ring }

type t = {
  cfg : config;
  sc : Sched.t;
  hp : Heap.t;
  coll : Collector.t;
  gen : Gen.t option;  (* the nursery, in [Config.Gen] mode *)
  rng : Prng.t;
  mutable mutators : Mutator.t list;
  mutable txs : int;
  mutable ran_ms : float;
  mutable prof : Sampler.t option;
  mutable reset_hooks : (unit -> unit) list;
}

let create cfg =
  let sc = Sched.create ~quantum:cfg.quantum ~ncpus:cfg.ncpus () in
  let rng = Prng.create cfg.seed in
  let wm = Weakmem.create ~mode:cfg.wm_mode ~rng:(Prng.split rng) () in
  let obs =
    if cfg.trace then
      Obs.create ~ring_capacity:cfg.trace_ring
        ~now:(fun () -> Sched.now sc)
        ~tid:(fun () -> Sched.thread_id (Sched.current sc))
        ()
    else Obs.null
  in
  let mach =
    Machine.create ~wm ~obs
      ~now:(fun () -> Sched.now sc)
      ~spend:(Sched.consume_on sc)
      ~cpu:(fun () -> Sched.thread_id (Sched.current sc))
      ~relinquish:Sched.yield ()
  in
  (* In [Sc] mode the store buffers are always empty and [commit_due] is a
     no-op, so don't pay an indirect call per scheduler iteration for
     it. *)
  (match Weakmem.mode wm with
  | Sc -> ()
  | Relaxed -> Sched.on_advance sc (fun now -> Weakmem.commit_due wm ~now));
  (* Arm the fault injector: its windows are keyed on simulated time and
     its events go to this VM's sink.  A disabled injector ignores this. *)
  Fault.attach cfg.gc.Config.faults ~now:(fun () -> Sched.now sc) ~obs;
  let nslots = int_of_float (cfg.heap_mb *. 1024.0 *. 1024.0 /. 8.0) in
  let hp = Heap.create ~fence_policy:cfg.fence_policy mach ~nslots in
  let coll = Collector.create cfg.gc ~sched:sc ~heap:hp in
  let gen =
    match cfg.gc.Config.mode with
    | Config.Stw | Config.Cgc -> None
    | Config.Gen ->
        let slots =
          int_of_float (float_of_int nslots *. cfg.gc.Config.nursery_fraction)
        in
        Some (Gen.create coll ~nursery_slots:slots)
  in
  { cfg; sc; hp; coll; gen; rng; mutators = []; txs = 0; ran_ms = 0.0;
    prof = None; reset_hooks = [] }

let sched t = t.sc
let collector t = t.coll
let gen t = t.gen
let heap t = t.hp
let machine t = Heap.machine t.hp
let gc_stats t = Collector.stats t.coll
let the_config t = t.cfg

let spawn_mutator t ~name body =
  let mrng = Prng.split t.rng in
  ignore
    (Sched.spawn t.sc ~name ~prio:Sched.Normal (fun () ->
         let thread = Sched.current t.sc in
         let mctx =
           Collector.register_mutator t.coll thread
             ~stack_slots:t.cfg.stack_slots
         in
         let m =
           Mutator.make ~vm_sched:t.sc ~coll:t.coll ~mctx ~rng:mrng
             ~on_tx:(fun () -> t.txs <- t.txs + 1)
         in
         t.mutators <- m :: t.mutators;
         body m))

let run t ~ms =
  Collector.start_background t.coll;
  let cost = (machine t).Machine.cost in
  let until = Sched.now t.sc + Cost.cycles_of_ms cost ms in
  Sched.run t.sc ~until;
  t.ran_ms <- t.ran_ms +. ms

let reset_stats t =
  Gstats.reset (gc_stats t);
  let mach = machine t in
  Fence.reset mach.Machine.fences;
  mach.Machine.cas_ops <- 0;
  Pool.reset_watermarks (Collector.pool t.coll);
  Obs.clear mach.Machine.obs;
  Option.iter Sampler.clear t.prof;
  t.txs <- 0;
  t.ran_ms <- 0.0;
  List.iter (fun f -> f ()) (List.rev t.reset_hooks)

let on_reset t f = t.reset_hooks <- f :: t.reset_hooks

let run_measured t ~warmup_ms ~ms =
  run t ~ms:warmup_ms;
  reset_stats t;
  run t ~ms

let now_ms t = Cost.ms_of_cycles (machine t).Machine.cost (Sched.now t.sc)

let total_transactions t = t.txs

let throughput t =
  if t.ran_ms <= 0.0 then 0.0
  else float_of_int t.txs /. (t.ran_ms /. 1000.0)

let obs t = (machine t).Machine.obs

let cycles_per_us t =
  float_of_int (machine t).Machine.cost.Cost.cycles_per_ms /. 1000.0

(* ------------------------------------------------------------------ *)
(* Online profiler                                                     *)

let profiler t = t.prof

let enable_profiler ?(interval_ms = 0.25) t =
  match t.prof with
  | Some _ -> ()  (* idempotent: keep the existing sampler and probes *)
  | None ->
      let cost = (machine t).Machine.cost in
      let interval =
        max 1 (int_of_float (interval_ms *. float_of_int cost.Cost.cycles_per_ms))
      in
      let p = Sampler.create ~interval () in
      let fi = float_of_int in
      let count_threads prio states () =
        let n = ref 0 in
        Sched.iter_threads t.sc (fun th ->
            if
              Sched.thread_prio th = prio
              && List.mem (Sched.thread_state th) states
            then incr n);
        fi !n
      in
      let probe name ?every fn = Sampler.add_probe p ~name ?every fn in
      probe "mutators-running"
        (count_threads Sched.Normal [ Sched.Runnable; Sched.Running ]);
      probe "mutators-sleeping" (count_threads Sched.Normal [ Sched.Sleeping ]);
      probe "bg-tracers-running"
        (count_threads Sched.Low [ Sched.Runnable; Sched.Running ]);
      probe "world-stopped" (fun () ->
          if Sched.world_stopped t.sc then 1.0 else 0.0);
      let pl = Collector.pool t.coll in
      probe "pool-empty" (fun () -> fi (Pool.occupancy pl).Pool.occ_empty);
      probe "pool-nonempty" (fun () -> fi (Pool.occupancy pl).Pool.occ_nonempty);
      probe "pool-almost-full" (fun () ->
          fi (Pool.occupancy pl).Pool.occ_almost_full);
      probe "pool-deferred" (fun () -> fi (Pool.occupancy pl).Pool.occ_deferred);
      probe "pool-in-use" (fun () -> fi (Pool.occupancy pl).Pool.occ_in_use);
      probe "pool-entries" (fun () -> fi (Pool.occupancy pl).Pool.occ_entries);
      (* The dirty count is an incrementally-maintained counter (O(1)),
         so it can be sampled at the same rate as the other probes. *)
      probe "cards-dirty" (fun () ->
          fi (Card_table.dirty_count (Heap.cards t.hp)));
      probe "heap-free-slots" (fun () -> fi (Heap.free_slots t.hp));
      probe "marked-slots" (fun () ->
          fi (Tracer.marked_slots (Collector.tracer t.coll)));
      probe "gc-phase" (fun () ->
          match Collector.phase t.coll with
          | Collector.Idle -> 0.0
          | Collector.Marking -> 1.0
          | Collector.Finalizing -> 2.0);
      (match t.gen with
      | None -> ()
      | Some g ->
          probe "nursery-occupancy" (fun () -> Gen.nursery_used g);
          probe "promotion-rate" (fun () -> Gen.promotion_rate g));
      Sched.on_advance t.sc (fun now -> Sampler.tick p ~now);
      t.prof <- Some p

let trace_json t =
  let o = obs t in
  Export.chrome_json_events ~emitted:(Obs.emitted o) ~dropped:(Obs.dropped o)
    ~cycles_per_us:(cycles_per_us t) (Obs.events_array o)

let write_trace t path = Export.write_file path (trace_json t)

let cycles_schema = "cgcsim-cycles-v1"

let metrics_csv t =
  Export.csv ~schema:cycles_schema ~header:Gstats.csv_header
    (Gstats.csv_rows (gc_stats t))

let write_metrics t path = Export.write_file path (metrics_csv t)

let print_report t =
  let st = gc_stats t in
  let mach = machine t in
  let p label h =
    Printf.printf
      "  %-24s avg %8.2f ms   p50 %8.2f   p90 %8.2f   p99 %8.2f   max %8.2f   (n=%d)\n"
      label (Histogram.mean h)
      (Histogram.percentile h 50.0)
      (Histogram.percentile h 90.0)
      (Histogram.percentile h 99.0)
      (if Histogram.count h = 0 then 0.0 else Histogram.max h)
      (Histogram.count h)
  in
  Printf.printf "=== VM report (%.0f MB heap, %d cpus, %s) ===\n" t.cfg.heap_mb
    t.cfg.ncpus
    (match t.cfg.gc.Config.mode with
    | Config.Cgc -> "CGC"
    | Config.Stw -> "STW"
    | Config.Gen -> "GEN");
  Printf.printf "simulated time: %.1f ms; transactions: %d (%.1f tx/s)\n"
    (now_ms t) t.txs (throughput t);
  Printf.printf "GC cycles: %d (%d finished concurrently, %d halted by allocation failure)\n"
    st.Gstats.cycles st.Gstats.premature_cycles st.Gstats.halted_cycles;
  p "pause" st.Gstats.pause_ms;
  p "  mark component" st.Gstats.mark_ms;
  p "  sweep component" st.Gstats.sweep_ms;
  (match t.gen with
  | None -> ()
  | Some g ->
      Printf.printf
        "minor GCs: %d (%d deferred to old space during marking); promoted \
         %d slots (%.1f KB); survival %.1f%%\n"
        st.Gstats.minors st.Gstats.minor_deferred st.Gstats.promoted_slots
        (float_of_int st.Gstats.promoted_slots *. 8.0 /. 1024.0)
        (100.0 *. Gen.promotion_rate g);
      p "minor pause" st.Gstats.minor_pause_ms);
  Printf.printf "  avg occupancy after GC: %.1f%%\n"
    (100.0 *. Stats.mean st.Gstats.occupancy_end);
  Printf.printf "  cards cleaned: concurrent avg %.0f, stop-the-world avg %.0f\n"
    (Stats.mean st.Gstats.conc_cards)
    (Stats.mean st.Gstats.stw_cards);
  Printf.printf "  mutator utilization during concurrent phase: %.0f%%\n"
    (100.0 *. Gstats.utilization st);
  Printf.printf "  traced slots/cycle: concurrent avg %.0f, stop-the-world avg %.0f\n"
    (Stats.mean st.Gstats.traced_conc_slots)
    (Stats.mean st.Gstats.traced_stw_slots);
  let f = mach.Machine.fences in
  Printf.printf "fences: total %d (alloc-batch %d, packet %d, defer %d, card %d)\n"
    (Fence.total f) (Fence.get f Fence.Alloc_batch)
    (Fence.get f Fence.Packet_return) (Fence.get f Fence.Packet_defer)
    (Fence.get f Fence.Card_snapshot);
  let pl = Collector.pool t.coll in
  Printf.printf "packets: high-water %d of %d in use, %d entries; CAS ops %d\n"
    (Pool.max_in_use pl) (Pool.total pl) (Pool.max_entries pl)
    mach.Machine.cas_ops;
  Printf.printf
    "robustness: overflow events %d, deferred-packet high-water %d\n"
    st.Gstats.overflow_events st.Gstats.max_deferred_packets;
  if
    st.Gstats.degrade_force_finish + st.Gstats.degrade_full_stw
    + st.Gstats.degrade_compact + st.Gstats.oom_raised > 0
  then
    Printf.printf
      "degradation ladder: force-finish %d, full-STW %d, emergency \
       compaction %d, out-of-memory %d\n"
      st.Gstats.degrade_force_finish st.Gstats.degrade_full_stw
      st.Gstats.degrade_compact st.Gstats.oom_raised;
  let faults = t.cfg.gc.Config.faults in
  if Fault.enabled faults then begin
    Printf.printf "fault injection (seed %d):" (Fault.seed faults);
    List.iter
      (fun (s, n) ->
        if n > 0 then Printf.printf " %s=%d" (Fault.to_name s) n)
      (Fault.injections faults);
    Printf.printf " (total %d)\n" (Fault.total_injections faults)
  end;
  if Obs.enabled mach.Machine.obs then begin
    Printf.printf "trace: %d events emitted, %d dropped by ring overflow\n"
      (Obs.emitted mach.Machine.obs)
      (Obs.dropped mach.Machine.obs);
    match Obs.dropped_by_thread mach.Machine.obs with
    | [] -> ()
    | per_tid ->
        Printf.printf
          "WARNING: ring overflow truncated the trace; lossy rings:";
        List.iter (fun (tid, n) -> Printf.printf " tid%d=%d" tid n) per_tid;
        Printf.printf
          "\n  (raise the ring capacity — Vm.config ~trace_ring — or \
           shorten the traced window)\n"
  end;
  match t.prof with
  | None -> ()
  | Some p ->
      Printf.printf "profiler: %d sampling ticks every %.2f ms\n"
        (Sampler.ticks p)
        (float_of_int (Sampler.interval p)
        /. float_of_int mach.Machine.cost.Cost.cycles_per_ms);
      List.iter
        (fun s ->
          Printf.printf "  %-20s n=%-6d mean %10.1f  min %10.1f  max %10.1f%s\n"
            (Series.name s) (Series.count s) (Series.mean s) (Series.min s)
            (Series.max s)
            (if Series.dropped s > 0 then
               Printf.sprintf "  (window slid past %d points)"
                 (Series.dropped s)
             else ""))
        (Sampler.series p)
