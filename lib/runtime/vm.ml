module Sched = Cgc_sim.Sched
module Collector = Cgc_core.Collector
module Config = Cgc_core.Config
module Gstats = Cgc_core.Gstats
module Heap = Cgc_heap.Heap
module Machine = Cgc_smp.Machine
module Weakmem = Cgc_smp.Weakmem
module Fence = Cgc_smp.Fence
module Cost = Cgc_smp.Cost
module Pool = Cgc_packets.Pool
module Prng = Cgc_util.Prng
module Fault = Cgc_fault.Fault
module Stats = Cgc_util.Stats
module Histogram = Cgc_util.Histogram
module Obs = Cgc_obs.Obs
module Export = Cgc_obs.Export

type config = {
  heap_mb : float;
  ncpus : int;
  seed : int;
  gc : Config.t;
  wm_mode : Weakmem.mode;
  stack_slots : int;
  quantum : int;
  fence_policy : Heap.fence_policy;
  trace : bool;
}

let config ?(heap_mb = 64.0) ?(ncpus = 4) ?(seed = 1) ?(gc = Config.default)
    ?(wm_mode = Weakmem.Sc) ?(stack_slots = 48) ?(quantum = 110_000)
    ?(fence_policy = Heap.Batched) ?(trace = false) () =
  { heap_mb; ncpus; seed; gc; wm_mode; stack_slots; quantum; fence_policy;
    trace }

type t = {
  cfg : config;
  sc : Sched.t;
  hp : Heap.t;
  coll : Collector.t;
  rng : Prng.t;
  mutable mutators : Mutator.t list;
  mutable txs : int;
  mutable ran_ms : float;
}

let create cfg =
  let sc = Sched.create ~quantum:cfg.quantum ~ncpus:cfg.ncpus () in
  let rng = Prng.create cfg.seed in
  let wm = Weakmem.create ~mode:cfg.wm_mode ~rng:(Prng.split rng) () in
  let obs =
    if cfg.trace then
      Obs.create
        ~now:(fun () -> Sched.now sc)
        ~tid:(fun () -> Sched.thread_id (Sched.current sc))
        ()
    else Obs.null
  in
  let mach =
    Machine.create ~wm ~obs
      ~now:(fun () -> Sched.now sc)
      ~spend:Sched.consume
      ~cpu:(fun () -> Sched.thread_id (Sched.current sc))
      ~relinquish:Sched.yield ()
  in
  Sched.on_advance sc (fun now -> Weakmem.commit_due wm ~now);
  (* Arm the fault injector: its windows are keyed on simulated time and
     its events go to this VM's sink.  A disabled injector ignores this. *)
  Fault.attach cfg.gc.Config.faults ~now:(fun () -> Sched.now sc) ~obs;
  let nslots = int_of_float (cfg.heap_mb *. 1024.0 *. 1024.0 /. 8.0) in
  let hp = Heap.create ~fence_policy:cfg.fence_policy mach ~nslots in
  let coll = Collector.create cfg.gc ~sched:sc ~heap:hp in
  { cfg; sc; hp; coll; rng; mutators = []; txs = 0; ran_ms = 0.0 }

let sched t = t.sc
let collector t = t.coll
let heap t = t.hp
let machine t = Heap.machine t.hp
let gc_stats t = Collector.stats t.coll
let the_config t = t.cfg

let spawn_mutator t ~name body =
  let mrng = Prng.split t.rng in
  ignore
    (Sched.spawn t.sc ~name ~prio:Sched.Normal (fun () ->
         let thread = Sched.current t.sc in
         let mctx =
           Collector.register_mutator t.coll thread
             ~stack_slots:t.cfg.stack_slots
         in
         let m =
           Mutator.make ~vm_sched:t.sc ~coll:t.coll ~mctx ~rng:mrng
             ~on_tx:(fun () -> t.txs <- t.txs + 1)
         in
         t.mutators <- m :: t.mutators;
         body m))

let run t ~ms =
  Collector.start_background t.coll;
  let cost = (machine t).Machine.cost in
  let until = Sched.now t.sc + Cost.cycles_of_ms cost ms in
  Sched.run t.sc ~until;
  t.ran_ms <- t.ran_ms +. ms

let reset_stats t =
  Gstats.reset (gc_stats t);
  let mach = machine t in
  Fence.reset mach.Machine.fences;
  mach.Machine.cas_ops <- 0;
  Pool.reset_watermarks (Collector.pool t.coll);
  Obs.clear mach.Machine.obs;
  t.txs <- 0;
  t.ran_ms <- 0.0

let run_measured t ~warmup_ms ~ms =
  run t ~ms:warmup_ms;
  reset_stats t;
  run t ~ms

let now_ms t = Cost.ms_of_cycles (machine t).Machine.cost (Sched.now t.sc)

let total_transactions t = t.txs

let throughput t =
  if t.ran_ms <= 0.0 then 0.0
  else float_of_int t.txs /. (t.ran_ms /. 1000.0)

let obs t = (machine t).Machine.obs

let cycles_per_us t =
  float_of_int (machine t).Machine.cost.Cost.cycles_per_ms /. 1000.0

let trace_json t =
  Export.chrome_json ~cycles_per_us:(cycles_per_us t) (Obs.events (obs t))

let write_trace t path = Export.write_file path (trace_json t)

let metrics_csv t =
  Export.csv ~header:Gstats.csv_header ~rows:(Gstats.csv_rows (gc_stats t))

let write_metrics t path = Export.write_file path (metrics_csv t)

let print_report t =
  let st = gc_stats t in
  let mach = machine t in
  let p label h =
    Printf.printf
      "  %-24s avg %8.2f ms   p50 %8.2f   p90 %8.2f   p99 %8.2f   max %8.2f   (n=%d)\n"
      label (Histogram.mean h)
      (Histogram.percentile h 50.0)
      (Histogram.percentile h 90.0)
      (Histogram.percentile h 99.0)
      (if Histogram.count h = 0 then 0.0 else Histogram.max h)
      (Histogram.count h)
  in
  Printf.printf "=== VM report (%.0f MB heap, %d cpus, %s) ===\n" t.cfg.heap_mb
    t.cfg.ncpus
    (match t.cfg.gc.Config.mode with Config.Cgc -> "CGC" | Config.Stw -> "STW");
  Printf.printf "simulated time: %.1f ms; transactions: %d (%.1f tx/s)\n"
    (now_ms t) t.txs (throughput t);
  Printf.printf "GC cycles: %d (%d finished concurrently, %d halted by allocation failure)\n"
    st.Gstats.cycles st.Gstats.premature_cycles st.Gstats.halted_cycles;
  p "pause" st.Gstats.pause_ms;
  p "  mark component" st.Gstats.mark_ms;
  p "  sweep component" st.Gstats.sweep_ms;
  Printf.printf "  avg occupancy after GC: %.1f%%\n"
    (100.0 *. Stats.mean st.Gstats.occupancy_end);
  Printf.printf "  cards cleaned: concurrent avg %.0f, stop-the-world avg %.0f\n"
    (Stats.mean st.Gstats.conc_cards)
    (Stats.mean st.Gstats.stw_cards);
  Printf.printf "  mutator utilization during concurrent phase: %.0f%%\n"
    (100.0 *. Gstats.utilization st);
  Printf.printf "  traced slots/cycle: concurrent avg %.0f, stop-the-world avg %.0f\n"
    (Stats.mean st.Gstats.traced_conc_slots)
    (Stats.mean st.Gstats.traced_stw_slots);
  let f = mach.Machine.fences in
  Printf.printf "fences: total %d (alloc-batch %d, packet %d, defer %d, card %d)\n"
    (Fence.total f) (Fence.get f Fence.Alloc_batch)
    (Fence.get f Fence.Packet_return) (Fence.get f Fence.Packet_defer)
    (Fence.get f Fence.Card_snapshot);
  let pl = Collector.pool t.coll in
  Printf.printf "packets: high-water %d of %d in use, %d entries; CAS ops %d\n"
    (Pool.max_in_use pl) (Pool.total pl) (Pool.max_entries pl)
    mach.Machine.cas_ops;
  Printf.printf
    "robustness: overflow events %d, deferred-packet high-water %d\n"
    st.Gstats.overflow_events st.Gstats.max_deferred_packets;
  if
    st.Gstats.degrade_force_finish + st.Gstats.degrade_full_stw
    + st.Gstats.degrade_compact + st.Gstats.oom_raised > 0
  then
    Printf.printf
      "degradation ladder: force-finish %d, full-STW %d, emergency \
       compaction %d, out-of-memory %d\n"
      st.Gstats.degrade_force_finish st.Gstats.degrade_full_stw
      st.Gstats.degrade_compact st.Gstats.oom_raised;
  let faults = t.cfg.gc.Config.faults in
  if Fault.enabled faults then begin
    Printf.printf "fault injection (seed %d):" (Fault.seed faults);
    List.iter
      (fun (s, n) ->
        if n > 0 then Printf.printf " %s=%d" (Fault.to_name s) n)
      (Fault.injections faults);
    Printf.printf " (total %d)\n" (Fault.total_injections faults)
  end;
  if Obs.enabled mach.Machine.obs then
    Printf.printf "trace: %d events emitted, %d dropped by ring overflow\n"
      (Obs.emitted mach.Machine.obs)
      (Obs.dropped mach.Machine.obs)
