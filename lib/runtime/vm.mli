(** The virtual-machine facade: the public entry point of the library.

    A [Vm.t] bundles a simulated multiprocessor, a heap, and a collector
    (either the paper's CGC or the stop-the-world baseline).  Mutator
    threads are spawned with {!spawn_mutator} and interact with the heap
    exclusively through the {!Mutator} API; {!run} drives the simulation
    for a given number of simulated milliseconds.

    {[
      let vm = Vm.create (Vm.config ~heap_mb:64.0 ~ncpus:4 ()) in
      Vm.spawn_mutator vm ~name:"worker" (fun m ->
          while not (Mutator.stopped m) do
            let obj = Mutator.alloc m ~nrefs:1 ~size:8 in
            Mutator.root_set m 0 obj;
            Mutator.work m 5_000;
            Mutator.tx_done m
          done);
      Vm.run vm ~ms:1_000.0;
      Vm.print_report vm
    ]} *)

type t

type config = {
  heap_mb : float;  (** simulated heap size in megabytes *)
  ncpus : int;
  seed : int;
  gc : Cgc_core.Config.t;
  wm_mode : Cgc_smp.Weakmem.mode;
  stack_slots : int;  (** root-array ("stack") slots per mutator *)
  quantum : int;  (** scheduler preemption slice, cycles *)
  fence_policy : Cgc_heap.Heap.fence_policy;
      (** [Batched] (the paper's protocols) or [Naive] (one fence per
          object / per mark) for the fence-batching ablation *)
  trace : bool;
      (** arm the {!Cgc_obs} event sink; off by default because tracing,
          while cheap, is not free *)
  trace_ring : int;
      (** per-thread event-ring capacity; long traced runs need more
          than the default 65536 to avoid overflow drops *)
}

val config :
  ?heap_mb:float ->
  ?ncpus:int ->
  ?seed:int ->
  ?gc:Cgc_core.Config.t ->
  ?wm_mode:Cgc_smp.Weakmem.mode ->
  ?stack_slots:int ->
  ?quantum:int ->
  ?fence_policy:Cgc_heap.Heap.fence_policy ->
  ?trace:bool ->
  ?trace_ring:int ->
  unit ->
  config
(** Defaults: 64 MB heap, 4 CPUs, seed 1, CGC with paper parameters,
    sequentially-consistent memory (fence costs still charged), 48 stack
    slots, 110k-cycle (0.2 ms) quantum, tracing off, 65536-event rings. *)

val create : config -> t

val sched : t -> Cgc_sim.Sched.t
val collector : t -> Cgc_core.Collector.t

val gen : t -> Cgc_gen.Gen.t option
(** The generational front end — [Some] exactly when the VM was created
    with [Config.Gen] mode (nursery carved, hooks installed). *)

val heap : t -> Cgc_heap.Heap.t
val machine : t -> Cgc_smp.Machine.t
val gc_stats : t -> Cgc_core.Gstats.t
val the_config : t -> config

val spawn_mutator : t -> name:string -> (Mutator.t -> unit) -> unit
(** Create a mutator thread.  The body receives its {!Mutator.t} handle
    once the thread starts executing inside the simulation. *)

val run : t -> ms:float -> unit
(** Start the background GC threads and run the simulation for [ms]
    simulated milliseconds (or until every thread finishes). *)

val run_measured : t -> warmup_ms:float -> ms:float -> unit
(** Run for [warmup_ms], discard all statistics gathered so far (GC
    stats, fence and CAS counters, packet watermarks, transaction
    counts), then run for [ms] more.  This is how the experiments skip
    the cycles during which the metering estimators are still
    converging. *)

val reset_stats : t -> unit

val on_reset : t -> (unit -> unit) -> unit
(** Register a hook run (in registration order) at the end of every
    {!reset_stats} — lets subsystems layered on the VM (e.g.
    [cgc_server]) discard their warm-up statistics in the same sweep. *)

val now_ms : t -> float

val total_transactions : t -> int
(** Sum of {!Mutator.tx_done} counts across all mutators. *)

val throughput : t -> float
(** Transactions per simulated second over the whole run. *)

val print_report : t -> unit
(** Human-readable summary of pauses (avg / p50 / p90 / p99 / max, from
    the {!Cgc_core.Gstats} histograms), components, throughput and
    fence / packet statistics. *)

(** {2 Observability} *)

val obs : t -> Cgc_obs.Obs.t
(** The event sink ({!Cgc_obs.Obs.null} unless [config ~trace:true]). *)

val cycles_per_us : t -> float
(** Simulated cycles per microsecond — the rate trace timestamps are
    exported at, and the one {!Cgc_prof.Analysis.analyse} needs. *)

val trace_json : t -> string
(** The recorded events as Chrome [trace_event] JSON — open the file in
    [chrome://tracing] or Perfetto.  Deterministic: equal-seed runs
    produce byte-identical output.  Empty event list when tracing is
    off. *)

val write_trace : t -> string -> unit
(** [write_trace t path] writes {!trace_json} to [path]. *)

val cycles_schema : string
(** The [#schema=] tag on per-cycle CSV dumps: ["cgcsim-cycles-v1"]. *)

val metrics_csv : t -> string
(** Per-GC-cycle metrics (pause / mark / sweep / compact ms, cards,
    traced slots, occupancy) as CSV, one row per cycle, tagged with the
    [cgcsim-cycles-v1] schema line. *)

val write_metrics : t -> string -> unit
(** [write_metrics t path] writes {!metrics_csv} to [path]. *)

(** {2 Online profiler} *)

val enable_profiler : ?interval_ms:float -> t -> unit
(** Install the {!Cgc_prof.Sampler} on this VM (idempotent).  Every
    [interval_ms] (default 0.25) of simulated time, host-side probes
    snapshot scheduler occupancy (running / sleeping mutators,
    background tracers, world-stopped), packet-pool occupancy by list,
    card-table dirty count, heap free slots, marked slots and the
    collector phase — charging no simulated cycles.  Call before
    {!run}; {!reset_stats} clears the collected series along with
    everything else. *)

val profiler : t -> Cgc_prof.Sampler.t option
(** The sampler installed by {!enable_profiler}, if any. *)
