module Sched = Cgc_sim.Sched
module Collector = Cgc_core.Collector
module Config = Cgc_core.Config
module Mctx = Cgc_core.Mctx
module Prng = Cgc_util.Prng
module Fault = Cgc_fault.Fault

type t = {
  sched : Sched.t;
  coll : Collector.t;
  mc : Mctx.t;
  prng : Prng.t;
  on_tx : unit -> unit;
  mutable txs : int;
}

let make ~vm_sched ~coll ~mctx ~rng ~on_tx =
  { sched = vm_sched; coll; mc = mctx; prng = rng; on_tx; txs = 0 }

let alloc t ~nrefs ~size = Collector.alloc t.coll t.mc ~nrefs ~size

let set_ref t parent i child =
  Collector.set_ref t.coll ~parent ~idx:i ~value:child

let get_ref t parent i = Collector.get_ref t.coll ~parent ~idx:i

let root_set t i v = Mctx.root_set t.mc i v
let root_get t i = Mctx.root_get t.mc i
let n_roots t = Array.length t.mc.Mctx.roots

let work t n = Sched.consume_on t.sched n
let think _t n = Sched.sleep n

let tx_done t =
  t.txs <- t.txs + 1;
  Collector.checkpoint t.coll;
  (* Fault injection at the transaction boundary: an allocation burst
     models a request suddenly building a large temporary structure (the
     objects are dropped immediately — pure pressure); a stall models the
     thread being descheduled mid-transaction. *)
  (let faults = (Collector.config t.coll).Config.faults in
   let burst = Fault.alloc_burst faults in
   for _ = 1 to burst do
     ignore (alloc t ~nrefs:1 ~size:8)
   done;
   let stall = Fault.mutator_stall faults in
   if stall > 0 then Sched.consume_on t.sched stall);
  t.on_tx ()

let transactions t = t.txs
let rng t = t.prng
let stopped t = Sched.stop_requested t.sched
let now_cycles t = Sched.now t.sched
let collector t = t.coll
let mctx t = t.mc
