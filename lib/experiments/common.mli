(** Shared plumbing for the paper-reproduction experiments.

    Every experiment runs one or more VMs with a warm-up window (so the
    L/M/Best estimators have converged, as the paper's steady-state
    measurements assume), extracts a {!metrics} record, and renders the
    paper's tables/figures as text tables. *)

type metrics = {
  label : string;
  throughput : float;  (** transactions per simulated second *)
  avg_pause : float;  (** ms *)
  max_pause : float;
  avg_mark : float;
  max_mark : float;
  avg_sweep : float;
  max_sweep : float;
  occupancy : float;  (** mean heap occupancy after GC, fraction *)
  conc_cards : float;  (** mean cards cleaned concurrently per cycle *)
  stw_cards : float;
  cycles : int;
  premature : int;  (** cycles whose concurrent phase finished all work *)
  halted : int;  (** cycles halted by allocation failure *)
  cc_fail_pct : float;  (** % of cycles with stw/conc card ratio > 20% *)
  free_fail_pct : float;  (** % of cycles finishing early with > 5% free *)
  cards_left_pct : float;  (** % of cycles halted with cards left to clean *)
  avg_cards_left : float;
  pre_rate : float;  (** pre-concurrent allocation rate, KB/ms *)
  conc_rate : float;  (** concurrent-phase allocation rate, KB/ms *)
  utilization : float;  (** conc_rate / pre_rate *)
  tracing_factor : float;  (** mean actual/assigned per increment *)
  fairness : float;  (** mean per-cycle stddev of tracing factors *)
  cas_avg : float;  (** mean CAS ops per cycle per live MB *)
  cas_max : float;
  fences_total : int;
  pkt_in_use_hw : int;  (** high-water packets in use *)
  pkt_entries_hw : int;  (** high-water entries across packets *)
  heap_slots : int;
  idle_frac : float;  (** processor idle fraction over the run *)
}

val collect : label:string -> Cgc_runtime.Vm.t -> metrics
(** Extract a {!metrics} record from a finished VM run.  Every record is
    also appended to the session registry (see {!recorded}), so the CLI
    driver can dump everything an experiment measured as CSV. *)

val recorded : unit -> metrics list
(** All metrics collected since start-up (or {!reset_recorded}), in
    collection order. *)

val reset_recorded : unit -> unit

val metrics_csv_header : string list
(** Column names for {!metrics_csv_row} / {!write_metrics_csv}. *)

val metrics_csv_row : metrics -> string list

val runs_schema : string
(** The [#schema=] tag on experiment CSV dumps: ["cgcsim-runs-v1"]. *)

val write_metrics_csv : string -> unit
(** Write every recorded metrics record to [path] as CSV, first line
    [#schema=cgcsim-runs-v1], so consumers can reject incompatible
    column sets (implements [cgcsim experiment NAME --metrics-out
    FILE]). *)

val quick : unit -> bool
(** True when the CGC_BENCH_FAST environment variable is set: experiments
    shrink their sweeps for a fast smoke run. *)

val set_jobs : int -> unit
(** Resize the process-wide persistent domain pool
    ({!Cgc_cluster.Dpool.set_size}) that {!par_map}, the benchmark
    matrix and the cluster layer all draw from (clamped to at least 1;
    default 1).  Host-side parallelism only — the simulated results of
    every experiment are identical at every job count. *)

val jobs : unit -> int
(** The current {!set_jobs} value. *)

val par_map : ?progress:(int -> 'a -> unit) -> 'a list -> ('a -> 'b) -> 'b list
(** [par_map items f] maps [f] over [items] on the persistent
    work-stealing domain pool ({!Cgc_cluster.Dpool}, sized by
    {!set_jobs}), returning results in item order regardless of
    completion order.  Each simulation owns its state (VM, machine,
    PRNG, event sink), so items never share mutable simulation state;
    metrics records made by {!collect} inside [f] are diverted to a
    per-item domain-local sink and spliced into the {!recorded}
    registry in item order, making the registry byte-identical to a
    serial run.  [progress], if given, is called with [(index, item)]
    under a mutex when a domain picks the item up.  A nested [par_map]
    (called from inside an item) runs inline on the calling domain.
    If any [f] raises, every remaining item still runs and the first
    exception (in completion order) is re-raised. *)

val specjbb :
  label:string ->
  gc:Cgc_core.Config.t ->
  ?warehouses:int ->
  ?heap_mb:float ->
  ?warmup_ms:float ->
  ?ms:float ->
  ?seed:int ->
  unit ->
  metrics
(** Warm up and measure a SPECjbb-like run (defaults: 8 warehouses, 64 MB,
    1500 ms warm-up, 4000 ms measured). *)

val pbob :
  label:string ->
  gc:Cgc_core.Config.t ->
  warehouses:int ->
  ?terminals:int ->
  ?heap_mb:float ->
  ?think_mean:int ->
  ?residency_at:int * float ->
  ?warmup_ms:float ->
  ?ms:float ->
  ?seed:int ->
  unit ->
  metrics

val specjbb_vm :
  label:string ->
  gc:Cgc_core.Config.t ->
  ?warehouses:int ->
  ?heap_mb:float ->
  ?warmup_ms:float ->
  ?ms:float ->
  ?seed:int ->
  ?trace:bool ->
  ?trace_ring:int ->
  ?profile:bool ->
  unit ->
  metrics * Cgc_runtime.Vm.t
(** Like {!specjbb} but also returns the finished VM, and optionally
    arms the event sink ([trace], with [trace_ring] capacity) and the
    online {!Cgc_prof.Sampler} ([profile]) — for experiments that derive
    extra columns from the trace. *)

val pbob_vm :
  label:string ->
  gc:Cgc_core.Config.t ->
  warehouses:int ->
  ?terminals:int ->
  ?heap_mb:float ->
  ?think_mean:int ->
  ?residency_at:int * float ->
  ?warmup_ms:float ->
  ?ms:float ->
  ?seed:int ->
  ?trace:bool ->
  ?trace_ring:int ->
  ?profile:bool ->
  unit ->
  metrics * Cgc_runtime.Vm.t

val analyse_trace :
  ?mmu_windows_ms:float list -> Cgc_runtime.Vm.t -> Cgc_prof.Analysis.t
(** Run the offline profiler over a finished traced VM's event stream. *)

val hdr : string -> unit
(** Print an experiment banner. *)
