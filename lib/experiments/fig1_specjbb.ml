(* Figure 1 of the paper: SPECjbb from 1 to 8 warehouses, comparing the
   stop-the-world baseline with the mostly-concurrent collector — average
   and maximum pause times plus the mark component of each.

   The paper's headline at 8 warehouses: STW 266 ms avg / 284 ms max pause
   (mark avg 235 ms) versus CGC 66 ms avg / 101 ms max (mark avg 34 ms),
   at a 10% throughput cost.  We reproduce the shape at 1/4 scale (64 MB
   simulated heap vs 256 MB). *)

module Table = Cgc_util.Table
module Config = Cgc_core.Config

let warehouse_counts () =
  if Common.quick () then [ 2; 8 ] else [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let run () =
  Common.hdr
    "Figure 1 — SPECjbb 1..8 warehouses: pause times, STW vs CGC (tracing rate 8.0)";
  let t =
    Table.create ~title:"(all times in simulated ms; 64 MB heap, 4 CPUs)"
      ~header:
        [ "wh"; "STW avg"; "STW max"; "STW mark"; "CGC avg"; "CGC max";
          "CGC mark"; "STW tx/s"; "CGC tx/s"; "thrpt" ]
  in
  (* Each warehouse count is one independent pair of simulations, so the
     sweep parallelises across host domains; rows are rendered serially
     afterwards from the order-preserving result list. *)
  let results =
    Common.par_map (warehouse_counts ()) (fun wh ->
        let ms = if Common.quick () then 2000.0 else 4000.0 in
        let stw =
          Common.specjbb ~label:"stw" ~gc:Config.stw ~warehouses:wh ~ms ()
        in
        let cgc =
          Common.specjbb ~label:"cgc" ~gc:Config.default ~warehouses:wh ~ms ()
        in
        (wh, stw, cgc))
  in
  List.iter
    (fun (wh, stw, cgc) ->
      let ratio =
        if stw.Common.throughput > 0.0 then
          cgc.Common.throughput /. stw.Common.throughput
        else 0.0
      in
      Table.add_row t
        [ string_of_int wh;
          Table.fms stw.Common.avg_pause;
          Table.fms stw.Common.max_pause;
          Table.fms stw.Common.avg_mark;
          Table.fms cgc.Common.avg_pause;
          Table.fms cgc.Common.max_pause;
          Table.fms cgc.Common.avg_mark;
          Printf.sprintf "%.0f" stw.Common.throughput;
          Printf.sprintf "%.0f" cgc.Common.throughput;
          Table.fpct ratio ])
    results;
  Table.print t;
  (match List.rev results with
  | (wh, stw, cgc) :: _ ->
      Printf.printf
        "At %d warehouses: avg pause %.0f -> %.0f ms (%.0f%% reduction; paper: 75%%),\n\
         mark avg %.0f -> %.0f ms (%.0f%% reduction; paper: 86%%), throughput ratio %.0f%% (paper: 90%%).\n"
        wh stw.Common.avg_pause cgc.Common.avg_pause
        (100.0 *. (1.0 -. (cgc.Common.avg_pause /. stw.Common.avg_pause)))
        stw.Common.avg_mark cgc.Common.avg_mark
        (100.0 *. (1.0 -. (cgc.Common.avg_mark /. stw.Common.avg_mark)))
        (100.0 *. cgc.Common.throughput /. stw.Common.throughput)
  | [] -> ());
  results
