(* Table 4 of the paper: the quality of work-packet load balancing as the
   number of mutator threads grows — pBOB without CPU idle time and
   without background threads, 1000 work packets, 25 terminals per
   warehouse from 625 to 1000 threads.

   Reported per thread count: the average tracing factor (actual/assigned
   tracing per increment — stable means no starvation), fairness (the
   stddev of tracing factors over a cycle — it plummets when threads
   outnumber packets, since every tracer needs two), and the number of
   compare-and-swap operations normalized by live MB (the real cost of
   load balancing — it grows only moderately with thread count). *)

module Table = Cgc_util.Table
module Config = Cgc_core.Config

let warehouse_counts () =
  if Common.quick () then [ 25; 40 ] else [ 25; 30; 34; 36; 38; 40 ]

let run () =
  Common.hdr
    "Table 4 — Quality of work-packet load balancing (pBOB, no idle time, no background threads, 1000 packets)";
  let t =
    Table.create ~title:"(48 MB heap standing in for the paper's 1.2 GB)"
      ~header:
        [ "warehouses"; "threads"; "avg tracing factor"; "fairness";
          "avg CAS/MB"; "max CAS/MB"; "trace factor"; "trace fairness";
          "busy CV" ]
  in
  (* Each thread count is one independent simulation; the sweep fans out
     across host domains and rows render serially in item order. *)
  let rows =
    Common.par_map (warehouse_counts ()) (fun wh ->
        let gc = { Config.default with Config.n_background = 0 } in
        let ms = if Common.quick () then 1500.0 else 3000.0 in
        (* Trace the run so the offline profiler can re-derive the same
           load-balance statistics from the event stream; the rings are
           kept small because a thousand mutators each get one. *)
        let m, vm =
          Common.pbob_vm
            ~label:(Printf.sprintf "%d threads" (wh * 25))
            ~gc ~warehouses:wh ~heap_mb:48.0 ~think_mean:0
            ~residency_at:(40, 0.85) ~warmup_ms:1000.0 ~ms ~trace:true
            ~trace_ring:4096 ()
        in
        let a = Common.analyse_trace vm in
        (wh, m, a))
  in
  let results =
    List.map
      (fun (wh, m, a) ->
        Table.add_row t
          [ string_of_int wh;
            string_of_int (wh * 25);
            Table.f3 m.Common.tracing_factor;
            Table.f3 m.Common.fairness;
            Printf.sprintf "%.0f" m.Common.cas_avg;
            Printf.sprintf "%.0f" m.Common.cas_max;
            Table.f3 a.Cgc_prof.Analysis.balance.Cgc_prof.Analysis.factor_mean;
            Table.f3 a.Cgc_prof.Analysis.balance.Cgc_prof.Analysis.fairness;
            Table.f3 a.Cgc_prof.Analysis.balance.Cgc_prof.Analysis.busy_cv ];
        (wh, m))
      rows
  in
  Table.print t;
  Printf.printf
    "The paper finds the tracing factor stable (~0.95), fairness degrading sharply\n\
     near 950+ threads (two packets per tracer exhausts the 1000-packet pool), and\n\
     the normalized CAS cost growing only moderately with threads.\n\
     The trace-derived columns recompute factor and fairness offline from the\n\
     event stream (Cgc_prof.Analysis); busy CV is the stddev/mean of per-mutator\n\
     tracing time — low values mean the packet pool spread work evenly.\n";
  results
