(* Routing policies compared at equal fleet load.

   Every policy sees the *same* fleet arrival stream (the cluster draws
   it from a dedicated PRNG root before routing), so the only variable
   is which shard each request lands on.  Expected shape: round-robin
   and least-queue-depth spread load near-uniformly and their tails
   track a single shard's GC inflation; consistent-hash concentrates
   keyed sessions, so its routed-count CV is an order of magnitude
   higher and the overloaded shards' queueing delay pushes the fleet
   tail up — locality has a latency price, which is why you measure it
   before paying it. *)

module Histogram = Cgc_util.Histogram
module Table = Cgc_util.Table
module Server = Cgc_server.Server
module Latency = Cgc_server.Latency
module Balancer = Cgc_cluster.Balancer
module Cluster = Cgc_cluster.Cluster
module Report = Cgc_cluster.Report
module Shard = Cgc_cluster.Shard

let run () =
  Common.hdr
    "Cluster routing policies — one fleet arrival stream, three balancers";
  let shards = if Common.quick () then 4 else 8 in
  let rate = if Common.quick () then 12_000.0 else 24_000.0 in
  let ms = if Common.quick () then 1000.0 else 3000.0 in
  (* Policies run serially: the domain pool's parallelism goes to the
     shards inside each Cluster.run, where the work is. *)
  let results =
    List.map
      (fun policy ->
        (* 16 MB per shard so even the short window contains GC cycles
           (and their co-stopped windows and latency inflation). *)
        let cfg =
          Cluster.cfg ~shards ~policy ~rate_per_s:rate ~slo_ms:50.0
            ~heap_mb:16.0 ~ms ()
        in
        (policy, Cluster.run cfg))
      Balancer.all_policies
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "(%d shards, %.0f req/s fleet, 16 MB heap and 4 workers per \
            shard, %.0f ms; latencies in ms)"
           shards rate ms)
      ~header:
        [ "policy"; "done/s"; "p50"; "p99"; "p99.9"; "shed"; "routed cv";
          "done cv"; "co-stop"; "slo att" ]
  in
  List.iter
    (fun (policy, r) ->
      let tot = Cluster.fleet_totals r in
      let e2e = Latency.e2e tot.Server.lat in
      let p q = Histogram.percentile e2e q in
      let cv f =
        let xs = Array.map f r.Cluster.shards in
        let n = float_of_int (Array.length xs) in
        let mean = Array.fold_left ( +. ) 0.0 (Array.map float_of_int xs) /. n in
        if mean = 0.0 then 0.0
        else
          sqrt
            (Array.fold_left
               (fun acc x ->
                 let d = float_of_int x -. mean in
                 acc +. (d *. d))
               0.0 xs
            /. n)
          /. mean
      in
      let ph = Report.phenomena r in
      Table.add_row t
        [ Balancer.policy_name policy;
          Printf.sprintf "%.0f"
            (float_of_int tot.Server.completed /. (ms /. 1000.0));
          Printf.sprintf "%.2f" (p 50.0);
          Printf.sprintf "%.2f" (p 99.0);
          Printf.sprintf "%.2f" (p 99.9);
          string_of_int (tot.Server.shed_full + tot.Server.shed_throttled);
          Printf.sprintf "%.4f" (cv (fun s -> s.Shard.routed));
          Printf.sprintf "%.4f"
            (cv (fun s -> s.Shard.totals.Server.completed));
          string_of_int ph.Report.co_max_stopped;
          Printf.sprintf "%.4f" (Cluster.slo_attainment r) ])
    results;
  Table.print t;
  (match
     ( List.assoc_opt Balancer.Round_robin results,
       List.assoc_opt Balancer.Consistent_hash results )
   with
  | Some rr, Some ch ->
      let p r q =
        Histogram.percentile
          (Latency.e2e (Cluster.fleet_totals r).Server.lat)
          q
      in
      Printf.printf
        "Same %d arrivals, different placement: consistent-hash p99.9 %.1f ms \
         vs round-robin\n%.1f ms.  The hash ring trades balance for session \
         locality; the balance CV column is\nthe price tag, and the fleet \
         tail is where it gets paid.\n"
        (Cluster.fleet_totals rr).Server.arrived
        (p ch 99.9) (p rr 99.9)
  | _ -> ());
  results
