(* Fleet chaos scenarios crossed with routing policies.

   Every cell replays the *same* fleet arrival stream (the cluster
   draws it before routing), injects one deterministic chaos scenario,
   and measures what the degradation ladder salvages: availability
   (completed fraction of everything drawn), the fleet p99.9 with retry
   backoff folded into end-to-end latency, balancer-visible
   time-to-recover, and what was lost anyway.

   Expected shape: round-robin and least-queue reroute around a dark
   shard almost for free (the other shards absorb 1/N extra load), so
   availability stays near the crash-free share and TTR is one epoch.
   Consistent-hash must remap the victim's vnode arcs; its retried and
   redirected counts are where failover work concentrates, and
   ring-flap — the victim leaving and rejoining repeatedly — is its
   worst case because every flap re-routes the same keyed sessions. *)

module Histogram = Cgc_util.Histogram
module Table = Cgc_util.Table
module Server = Cgc_server.Server
module Latency = Cgc_server.Latency
module Balancer = Cgc_cluster.Balancer
module Cluster = Cgc_cluster.Cluster
module Cluster_fault = Cgc_fault.Cluster_fault

let run () =
  Common.hdr "Fleet chaos — scenarios x routing policies, one arrival stream";
  let shards = if Common.quick () then 4 else 8 in
  let rate = if Common.quick () then 8_000.0 else 16_000.0 in
  let ms = if Common.quick () then 800.0 else 2000.0 in
  let scenarios = None :: List.map Option.some Cluster_fault.all in
  let results =
    List.concat_map
      (fun chaos ->
        List.map
          (fun policy ->
            let cfg =
              Cluster.cfg ~shards ~policy ~rate_per_s:rate ~slo_ms:50.0
                ~heap_mb:16.0 ~ms ?chaos ()
            in
            (chaos, policy, Cluster.run cfg))
          Balancer.all_policies)
      scenarios
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "(%d shards, %.0f req/s fleet, %.0f ms; availability over all \
            drawn arrivals, latencies in ms)"
           shards rate ms)
      ~header:
        [ "scenario"; "policy"; "avail"; "p99.9"; "ttr ms"; "lost";
          "retried"; "redir"; "shed" ]
  in
  List.iter
    (fun (chaos, policy, r) ->
      let tot = Cluster.fleet_totals r in
      let e2e = Latency.e2e tot.Server.lat in
      let c = r.Cluster.chaos in
      Table.add_row t
        [ (match chaos with
          | None -> "none"
          | Some sc -> Cluster_fault.to_name sc);
          Balancer.policy_name policy;
          Printf.sprintf "%.4f" (Cluster.availability r);
          Printf.sprintf "%.2f" (Histogram.percentile e2e 99.9);
          (match c.Cluster.ttr_ms with
          | Some ttr -> Printf.sprintf "%.0f" ttr
          | None -> "-");
          string_of_int
            (Cluster.lost_crashed r + c.Cluster.lost_unroutable);
          string_of_int c.Cluster.retried;
          string_of_int c.Cluster.redirected;
          string_of_int
            (tot.Server.shed_full + tot.Server.shed_throttled
           + c.Cluster.shed_fleet) ])
    results;
  Table.print t;
  let find sc policy =
    List.find_opt
      (fun (c, p, _) -> c = Some sc && p = policy)
      results
  in
  (match
     ( find Cluster_fault.Ring_flap Balancer.Consistent_hash,
       find Cluster_fault.Ring_flap Balancer.Least_queue )
   with
  | Some (_, _, ch), Some (_, _, lq) ->
      Printf.printf
        "Under ring-flap, consistent-hash retried %d requests and \
         redirected %d (every flap\nremaps the victim's arcs) against \
         least-queue's %d/%d — and both hold availability\nat %.4f or \
         better: the reroute-retry rungs of the ladder absorb a \
         flapping shard\neither way.\n"
        ch.Cluster.chaos.Cluster.retried
        ch.Cluster.chaos.Cluster.redirected
        lq.Cluster.chaos.Cluster.retried
        lq.Cluster.chaos.Cluster.redirected
        (Stdlib.min (Cluster.availability ch) (Cluster.availability lq))
  | _ -> ());
  results
