(* The paper's headline claim restated in client-visible terms: at the
   same offered load, the mostly-concurrent collector's end-to-end
   request tail (p99.9) is far below the stop-the-world baseline's,
   because an open-loop client keeps sending while the world is stopped
   and every queued request eats the whole pause.

   Expected shape: the p99.9 gap grows with offered load — more
   requests arrive per pause, and queues drain more slowly — until the
   server saturates and overload control (shedding) takes over for both
   collectors. *)

module Config = Cgc_core.Config
module Vm = Cgc_runtime.Vm
module Histogram = Cgc_util.Histogram
module Table = Cgc_util.Table
module Server = Cgc_server.Server
module Report = Cgc_server.Report

let rates () =
  if Common.quick () then [ 6000.0; 20000.0 ]
  else [ 2000.0; 6000.0; 12000.0; 20000.0 ]

type outcome = {
  rate : float;
  label : string;
  totals : Server.totals;
  ran_ms : float;
}

let serve_one ~label ~gc ~rate ~seed ~heap_mb ~warmup_ms ~ms () =
  let vm = Vm.create (Vm.config ~heap_mb ~ncpus:4 ~seed ~gc ()) in
  let scfg =
    Server.cfg ~rate_per_s:rate ~queue_cap:256 ~workers:4 ~slo_ms:50.0 ()
  in
  let srv = Server.create scfg vm in
  Vm.run_measured vm ~warmup_ms ~ms;
  ignore (Common.collect ~label vm);
  { rate; label; totals = Server.totals srv; ran_ms = ms }

let run () =
  Common.hdr
    "Server tail latency — open-loop request stream, STW vs CGC at equal offered load";
  let warmup_ms = if Common.quick () then 500.0 else 1000.0 in
  let ms = if Common.quick () then 1500.0 else 4000.0 in
  let heap_mb = 24.0 in
  let results =
    Common.par_map (rates ()) (fun rate ->
        let stw =
          serve_one
            ~label:(Printf.sprintf "server-stw-%.0f" rate)
            ~gc:Config.stw ~rate ~seed:1 ~heap_mb ~warmup_ms ~ms ()
        in
        let cgc =
          serve_one
            ~label:(Printf.sprintf "server-cgc-%.0f" rate)
            ~gc:Config.default ~rate ~seed:1 ~heap_mb ~warmup_ms ~ms ()
        in
        (rate, stw, cgc))
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "(%.0f MB heap, 4 CPUs, 4 workers, Poisson arrivals, %.0f ms \
            measured; latencies in ms)"
           heap_mb ms)
      ~header:
        [ "req/s"; "gc"; "done/s"; "p50"; "p99"; "p99.9"; "max"; "shed";
          "t/o"; "p99.9 gap" ]
  in
  let p o q = Histogram.percentile (Cgc_server.Latency.e2e o.totals.Server.lat) q in
  List.iter
    (fun (rate, stw, cgc) ->
      let gap =
        let c = p cgc 99.9 in
        if c > 0.0 then p stw 99.9 /. c else 0.0
      in
      List.iter
        (fun (o, gap_cell) ->
          let tot = o.totals in
          Table.add_row t
            [ Printf.sprintf "%.0f" rate;
              (if o == stw then "stw" else "cgc");
              Printf.sprintf "%.0f"
                (float_of_int tot.Server.completed /. (o.ran_ms /. 1000.0));
              Printf.sprintf "%.2f" (p o 50.0);
              Printf.sprintf "%.2f" (p o 99.0);
              Printf.sprintf "%.2f" (p o 99.9);
              Printf.sprintf "%.2f"
                (Histogram.max (Cgc_server.Latency.e2e tot.Server.lat));
              string_of_int
                (tot.Server.shed_full + tot.Server.shed_throttled);
              string_of_int tot.Server.timed_out;
              gap_cell ])
        [ (stw, ""); (cgc, Printf.sprintf "%.1fx" gap) ])
    results;
  Table.print t;
  (match List.rev results with
  | (rate_hi, stw_hi, cgc_hi) :: _ ->
      Printf.printf
        "At %.0f req/s the STW p99.9 is %.1f ms vs CGC %.1f ms: every request \
         that lands\nduring a stop-the-world pause queues for the whole pause, \
         so the client-visible\ntail tracks max-pause, not avg-pause.  Shed \
         counts (%d stw / %d cgc) show the\noverload-control rungs engaging \
         as the offered load approaches saturation.\n"
        rate_hi (p stw_hi 99.9) (p cgc_hi 99.9)
        (stw_hi.totals.Server.shed_full + stw_hi.totals.Server.shed_throttled)
        (cgc_hi.totals.Server.shed_full + cgc_hi.totals.Server.shed_throttled)
  | [] -> ());
  results
