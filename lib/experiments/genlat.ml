(* The generational question asked in client-visible terms: at the same
   offered load and the SAME total heap budget, what does a nursery buy
   over the concurrent collector alone — and what does either buy over
   the stop-the-world baseline?

   Expected shape: stw's tail tracks its max pause (every queued request
   eats the whole collection); cgc moves most of the work off the pause
   and the tail collapses; gen keeps the cgc tail while retiring the
   short-lived request garbage in minor collections that stop only the
   allocating worker — fewer major cycles, and the pause columns split
   cleanly into a per-generation decomposition. *)

module Config = Cgc_core.Config
module Gstats = Cgc_core.Gstats
module Vm = Cgc_runtime.Vm
module Histogram = Cgc_util.Histogram
module Table = Cgc_util.Table
module Server = Cgc_server.Server

let rates () =
  if Common.quick () then [ 6000.0; 20000.0 ]
  else [ 2000.0; 6000.0; 12000.0; 20000.0 ]

let modes = [ Config.stw; Config.default; Config.gen ]

type outcome = {
  rate : float;
  mode : Config.mode;
  totals : Server.totals;
  ran_ms : float;
  minors : int;
  majors : int;
  minor_p99_ms : float;
  promoted_kb : float;
}

let serve_one ~gc ~rate ~seed ~heap_mb ~warmup_ms ~ms () =
  let label =
    Printf.sprintf "genlat-%s-%.0f" (Config.mode_name gc.Config.mode) rate
  in
  let vm = Vm.create (Vm.config ~heap_mb ~ncpus:4 ~seed ~gc ()) in
  let scfg =
    Server.cfg ~rate_per_s:rate ~queue_cap:256 ~workers:4 ~slo_ms:50.0 ()
  in
  let srv = Server.create scfg vm in
  Vm.run_measured vm ~warmup_ms ~ms;
  ignore (Common.collect ~label vm);
  let st = Vm.gc_stats vm in
  {
    rate;
    mode = gc.Config.mode;
    totals = Server.totals srv;
    ran_ms = ms;
    minors = st.Gstats.minors;
    majors = Histogram.count st.Gstats.pause_ms;
    minor_p99_ms = Histogram.percentile st.Gstats.minor_pause_ms 99.0;
    promoted_kb = float_of_int st.Gstats.promoted_slots *. 8.0 /. 1024.0;
  }

let p o q = Histogram.percentile (Cgc_server.Latency.e2e o.totals.Server.lat) q

let run () =
  Common.hdr
    "Generational tail latency — stw vs cgc vs gen at equal offered load \
     and equal total heap budget";
  let warmup_ms = if Common.quick () then 500.0 else 1000.0 in
  let ms = if Common.quick () then 1500.0 else 4000.0 in
  let heap_mb = 24.0 in
  let results =
    Common.par_map (rates ()) (fun rate ->
        List.map
          (fun gc -> serve_one ~gc ~rate ~seed:1 ~heap_mb ~warmup_ms ~ms ())
          modes)
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "(%.0f MB total heap each — gen carves its nursery from the same \
            budget; 4 CPUs, 4 workers,\n Poisson arrivals, %.0f ms measured; \
            latencies in ms)"
           heap_mb ms)
      ~header:
        [ "req/s"; "gc"; "done/s"; "p50"; "p99"; "p99.9"; "max"; "majors";
          "minors"; "minor p99"; "promoted KB" ]
  in
  List.iter
    (fun row ->
      List.iter
        (fun o ->
          let tot = o.totals in
          Table.add_row t
            [ Printf.sprintf "%.0f" o.rate;
              Config.mode_name o.mode;
              Printf.sprintf "%.0f"
                (float_of_int tot.Server.completed /. (o.ran_ms /. 1000.0));
              Printf.sprintf "%.2f" (p o 50.0);
              Printf.sprintf "%.2f" (p o 99.0);
              Printf.sprintf "%.2f" (p o 99.9);
              Printf.sprintf "%.2f"
                (Histogram.max (Cgc_server.Latency.e2e tot.Server.lat));
              string_of_int o.majors;
              (if o.mode = Config.Gen then string_of_int o.minors else "-");
              (if o.mode = Config.Gen then
                 Printf.sprintf "%.3f" o.minor_p99_ms
               else "-");
              (if o.mode = Config.Gen then
                 Printf.sprintf "%.0f" o.promoted_kb
               else "-") ])
        row)
    results;
  Table.print t;
  (match List.rev results with
  | [ stw_hi; cgc_hi; gen_hi ] :: _ ->
      Printf.printf
        "At %.0f req/s: p99.9 %.1f ms stw / %.1f ms cgc / %.1f ms gen.  The \
         nursery retires\nrequest garbage in %d minor collections (p99 %.3f \
         ms, one mutator each) and ran\n%d major cycles vs cgc's %d — \
         survivors promoted into the concurrently-collected\nold space \
         instead of being traced every cycle.\n"
        gen_hi.rate (p stw_hi 99.9) (p cgc_hi 99.9) (p gen_hi 99.9)
        gen_hi.minors gen_hi.minor_p99_ms gen_hi.majors cgc_hi.majors
  | _ -> ());
  results
