(* Tables 1, 2 and 3 of the paper share one parameter sweep: SPECjbb at 8
   warehouses under the STW baseline and under CGC at tracing rates 1, 4,
   8 and 10.

   Table 1: throughput, floating garbage, final (stop-the-world) card
   cleaning, average and maximum pause time per tracing rate.
   Table 2: effectiveness of metering — the percentage of collections
   failing the CC-Rate (< 20%), premature-GC Free Space (< 5%) and
   Cards-Left (= 0) criteria.
   Table 3: mutator utilization — pre-concurrent and concurrent allocation
   rates (KB/ms) and their ratio. *)

module Table = Cgc_util.Table
module Config = Cgc_core.Config

type tr_run = {
  k0 : float;
  m : Common.metrics;
  mmu : Cgc_prof.Analysis.mmu_point list;
      (* derived offline from the run's event trace *)
}

type sweep = { stw : Common.metrics; trs : tr_run list }

let tracing_rates () = if Common.quick () then [ 1.0; 8.0 ] else [ 1.0; 4.0; 8.0; 10.0 ]

let run_sweep () =
  let ms = if Common.quick () then 2000.0 else 5000.0 in
  (* The STW baseline runs first (keeping the metrics registry in the
     serial order), then the tracing-rate runs fan out across host
     domains — each is an independent simulation. *)
  let stw = Common.specjbb ~label:"STW" ~gc:Config.stw ~ms () in
  let trs =
    Common.par_map (tracing_rates ()) (fun k0 ->
        let gc = { Config.default with Config.k0 } in
        let m, vm =
          Common.specjbb_vm ~label:(Printf.sprintf "TR %.0f" k0) ~gc ~ms
            ~trace:true ~trace_ring:(1 lsl 18) ()
        in
        let a = Common.analyse_trace vm in
        { k0; m; mmu = a.Cgc_prof.Analysis.mmu })
  in
  { stw; trs }

let table1 s =
  Common.hdr "Table 1 — The effects of different tracing rates (SPECjbb, 8 warehouses)";
  let cols = "measurement" :: "STW" :: List.map (fun r -> Printf.sprintf "TR %.0f" r.k0) s.trs in
  let t =
    Table.create ~title:"(floating garbage = occupancy above the STW baseline)"
      ~header:cols
  in
  let row name f_stw f_tr =
    Table.add_row t (name :: f_stw s.stw :: List.map (fun r -> f_tr r.m) s.trs)
  in
  row "Throughput (tx/s)"
    (fun m -> Printf.sprintf "%.0f" m.Common.throughput)
    (fun m -> Printf.sprintf "%.0f" m.Common.throughput);
  let base_occ = s.stw.Common.occupancy in
  row "Floating Garbage"
    (fun _ -> "0.0%")
    (fun m -> Table.fpct (Float.max 0.0 (m.Common.occupancy -. base_occ)));
  row "Avg Final Card Cleaning"
    (fun _ -> "--")
    (fun m -> Printf.sprintf "%.0f" m.Common.stw_cards);
  row "Average Pause Time (ms)"
    (fun m -> Table.fms m.Common.avg_pause)
    (fun m -> Table.fms m.Common.avg_pause);
  row "Max Pause Time (ms)"
    (fun m -> Table.fms m.Common.max_pause)
    (fun m -> Table.fms m.Common.max_pause);
  Table.print t

let table2 s =
  Common.hdr "Table 2 — Effectiveness of metering (percentage of collections failing)";
  let cols = "criterion" :: List.map (fun r -> Printf.sprintf "TR %.0f" r.k0) s.trs in
  let t = Table.create ~title:"" ~header:cols in
  let row name f =
    Table.add_row t (name :: List.map (fun r -> f r.m) s.trs)
  in
  row "CC Rate fails (stw/conc > 20%)" (fun m ->
      Printf.sprintf "%.0f%%" m.Common.cc_fail_pct);
  row "Free Space fails (> 5% on completion)" (fun m ->
      Printf.sprintf "%.1f%%" m.Common.free_fail_pct);
  row "Cards Left (halted with cards pending)" (fun m ->
      Printf.sprintf "%.0f%%" m.Common.cards_left_pct);
  Table.print t

let table3 s =
  Common.hdr "Table 3 — Mutator utilization during the concurrent phase";
  let cols = "measurement" :: List.map (fun r -> Printf.sprintf "TR %.0f" r.k0) s.trs in
  let t = Table.create ~title:"(allocation rates in KB per simulated ms)" ~header:cols in
  (* At tracing rate 1 there is no pre-concurrent phase; like the paper
     (footnote 6) we substitute the pre-concurrent rate measured at the
     next higher tracing rate. *)
  let fallback_pre =
    List.fold_left
      (fun acc r -> if r.m.Common.utilization > 0.0 then r.m.Common.pre_rate else acc)
      0.0 s.trs
  in
  let row name f =
    Table.add_row t (name :: List.map (fun r -> f r.m) s.trs)
  in
  row "pre-concurrent" (fun m ->
      if m.Common.utilization = 0.0 then "--" else Table.f1 m.Common.pre_rate);
  row "concurrent" (fun m -> Table.f1 m.Common.conc_rate);
  row "utilization" (fun m ->
      if m.Common.utilization > 0.0 then Table.fpct m.Common.utilization
      else if fallback_pre > 0.0 then
        Table.fpct (m.Common.conc_rate /. fallback_pre)
      else "--");
  (* Windowed utilization from the event trace: the paper-style MMU view
     of the same runs — the worst and average mutator share of each
     window, all pauses and tracing increments deducted. *)
  List.iter
    (fun (w : float) ->
      let point r =
        List.find_opt
          (fun (p : Cgc_prof.Analysis.mmu_point) -> p.window_ms = w)
          r.mmu
      in
      Table.add_row t
        (Printf.sprintf "MMU %.0f ms (min)" w
        :: List.map
             (fun r ->
               match point r with
               | Some p -> Table.fpct p.Cgc_prof.Analysis.mmu
               | None -> "--")
             s.trs);
      Table.add_row t
        (Printf.sprintf "MMU %.0f ms (avg)" w
        :: List.map
             (fun r ->
               match point r with
               | Some p -> Table.fpct p.Cgc_prof.Analysis.avg_util
               | None -> "--")
             s.trs))
    [ 5.0; 20.0 ];
  Table.print t

let run () =
  let s = run_sweep () in
  table1 s;
  table2 s;
  table3 s;
  s
