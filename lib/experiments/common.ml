module Vm = Cgc_runtime.Vm
module Gstats = Cgc_core.Gstats
module Collector = Cgc_core.Collector
module Stats = Cgc_util.Stats
module Hist = Cgc_util.Histogram
module Machine = Cgc_smp.Machine
module Fence = Cgc_smp.Fence
module Pool = Cgc_packets.Pool
module Sched = Cgc_sim.Sched

type metrics = {
  label : string;
  throughput : float;
  avg_pause : float;
  max_pause : float;
  avg_mark : float;
  max_mark : float;
  avg_sweep : float;
  max_sweep : float;
  occupancy : float;
  conc_cards : float;
  stw_cards : float;
  cycles : int;
  premature : int;
  halted : int;
  cc_fail_pct : float;
  free_fail_pct : float;
  cards_left_pct : float;
  avg_cards_left : float;
  pre_rate : float;
  conc_rate : float;
  utilization : float;
  tracing_factor : float;
  fairness : float;
  cas_avg : float;
  cas_max : float;
  fences_total : int;
  pkt_in_use_hw : int;
  pkt_entries_hw : int;
  heap_slots : int;
  idle_frac : float;
}

let safe_max s = if Stats.count s = 0 then 0.0 else Stats.max s
let safe_hmax h = if Hist.count h = 0 then 0.0 else Hist.max h

(* Every metrics record extracted by [collect] is also appended here, so
   the driver can dump a whole experiment's results as CSV afterwards
   (cgcsim experiment NAME --metrics-out FILE).  Only the main domain
   touches this list directly: workers spawned by [par_map] divert their
   records into a per-item domain-local sink (below), and [par_map]
   splices the sinks back in item order, so the registry's contents are
   independent of how many domains ran the experiment. *)
let recorded_rev : metrics list ref = ref []

let sink_key : metrics list ref option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let record m =
  match Domain.DLS.get sink_key with
  | Some sink -> sink := m :: !sink
  | None -> recorded_rev := m :: !recorded_rev

let recorded () = List.rev !recorded_rev
let reset_recorded () = recorded_rev := []

(* ----------------------- domain-parallel runs ----------------------- *)

(* Host-side parallelism only: every simulation (a VM and its Machine,
   Prng, Sched, Obs) is a self-contained value, so distinct items can
   run in distinct domains without sharing any mutable simulation state.
   The simulated results are identical at every job count; only host
   wall-clock changes.

   Since the cluster PR the domains come from the persistent
   work-stealing pool ({!Cgc_cluster.Dpool}) shared with the cluster
   layer and the bench matrix: --jobs resizes one process-wide pool
   instead of every par_map spawning and joining its own domains. *)

module Dpool = Cgc_cluster.Dpool

let set_jobs n = Dpool.set_size n
let jobs () = Dpool.global_size ()

let par_map (type a b) ?progress (items : a list) (f : a -> b) : b list =
  let items = Array.of_list items in
  let n = Array.length items in
  let results : b option array = Array.make n None in
  let records : metrics list array = Array.make n [] in
  let mu = Mutex.create () in
  Dpool.run (Dpool.global ()) ~n (fun i ->
      (match progress with
      | None -> ()
      | Some p ->
          Mutex.lock mu;
          (try p i items.(i)
           with e ->
             Mutex.unlock mu;
             raise e);
          Mutex.unlock mu);
      (* Divert this item's metrics records to a private sink so the
         global registry sees them in item order, not in domain
         completion order.  The previous sink is restored on the way
         out, so a nested par_map (which the pool runs inline) splices
         its records into the enclosing item's sink. *)
      let sink = ref [] in
      let saved = Domain.DLS.get sink_key in
      Domain.DLS.set sink_key (Some sink);
      let r =
        Fun.protect
          ~finally:(fun () -> Domain.DLS.set sink_key saved)
          (fun () -> f items.(i))
      in
      results.(i) <- Some r;
      records.(i) <- List.rev !sink);
  Array.iter (fun rs -> List.iter record rs) records;
  Array.to_list
    (Array.map (function Some r -> r | None -> assert false) results)

let metrics_csv_header =
  [ "label"; "throughput"; "avg_pause_ms"; "max_pause_ms"; "avg_mark_ms";
    "max_mark_ms"; "avg_sweep_ms"; "max_sweep_ms"; "occupancy"; "conc_cards";
    "stw_cards"; "cycles"; "premature"; "halted"; "cc_fail_pct";
    "free_fail_pct"; "cards_left_pct"; "avg_cards_left"; "pre_rate_kb_ms";
    "conc_rate_kb_ms"; "utilization"; "tracing_factor"; "fairness";
    "cas_avg"; "cas_max"; "fences_total"; "pkt_in_use_hw"; "pkt_entries_hw";
    "heap_slots"; "idle_frac" ]

let metrics_csv_row m =
  let f x = Printf.sprintf "%.4f" x and i = string_of_int in
  [ m.label; f m.throughput; f m.avg_pause; f m.max_pause; f m.avg_mark;
    f m.max_mark; f m.avg_sweep; f m.max_sweep; f m.occupancy; f m.conc_cards;
    f m.stw_cards; i m.cycles; i m.premature; i m.halted; f m.cc_fail_pct;
    f m.free_fail_pct; f m.cards_left_pct; f m.avg_cards_left; f m.pre_rate;
    f m.conc_rate; f m.utilization; f m.tracing_factor; f m.fairness;
    f m.cas_avg; f m.cas_max; i m.fences_total; i m.pkt_in_use_hw;
    i m.pkt_entries_hw; i m.heap_slots; f m.idle_frac ]

let runs_schema = "cgcsim-runs-v1"

let write_metrics_csv path =
  let rows = List.map metrics_csv_row (recorded ()) in
  Cgc_obs.Export.write_file path
    (Cgc_obs.Export.csv ~schema:runs_schema ~header:metrics_csv_header rows)

let pct_over samples threshold total =
  if total = 0 then 0.0
  else
    let fails = Array.fold_left (fun n x -> if x > threshold then n + 1 else n) 0 samples in
    100.0 *. float_of_int fails /. float_of_int total

let collect ~label vm =
  let st = Vm.gc_stats vm in
  let m =
  let mach = Vm.machine vm in
  let cost = mach.Machine.cost in
  let pl = Collector.pool (Vm.collector vm) in
  let sc = Vm.sched vm in
  let idle = Sched.idle_cycles sc and busy = Sched.busy_cycles sc in
  {
    label;
    throughput = Vm.throughput vm;
    avg_pause = Hist.mean st.Gstats.pause_ms;
    max_pause = safe_hmax st.Gstats.pause_ms;
    avg_mark = Hist.mean st.Gstats.mark_ms;
    max_mark = safe_hmax st.Gstats.mark_ms;
    avg_sweep = Hist.mean st.Gstats.sweep_ms;
    max_sweep = safe_hmax st.Gstats.sweep_ms;
    occupancy = Stats.mean st.Gstats.occupancy_end;
    conc_cards = Stats.mean st.Gstats.conc_cards;
    stw_cards = Stats.mean st.Gstats.stw_cards;
    cycles = st.Gstats.cycles;
    premature = st.Gstats.premature_cycles;
    halted = st.Gstats.halted_cycles;
    cc_fail_pct =
      pct_over (Stats.samples st.Gstats.cc_ratio) 0.20 st.Gstats.cycles;
    free_fail_pct =
      pct_over (Stats.samples st.Gstats.premature_free) 0.05 st.Gstats.cycles;
    cards_left_pct =
      pct_over (Stats.samples st.Gstats.cards_left) 0.5 st.Gstats.cycles;
    avg_cards_left = Stats.mean st.Gstats.cards_left;
    pre_rate = Gstats.alloc_rate_preconc st ~cost;
    conc_rate = Gstats.alloc_rate_conc st ~cost;
    utilization = Gstats.utilization st;
    tracing_factor = Stats.mean st.Gstats.tracing_factor;
    fairness = Stats.mean st.Gstats.fairness;
    cas_avg = Stats.mean st.Gstats.cas_per_mb;
    cas_max = safe_max st.Gstats.cas_per_mb;
    fences_total = Fence.total mach.Machine.fences;
    pkt_in_use_hw = Pool.max_in_use pl;
    pkt_entries_hw = Pool.max_entries pl;
    heap_slots = Cgc_heap.Heap.nslots (Vm.heap vm);
      idle_frac =
        (if idle + busy = 0 then 0.0
         else float_of_int idle /. float_of_int (idle + busy));
    }
  in
  record m;
  m

let quick () =
  match Sys.getenv_opt "CGC_BENCH_FAST" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let specjbb_vm ~label ~gc ?(warehouses = 8) ?(heap_mb = 64.0)
    ?(warmup_ms = 1500.0) ?(ms = 4000.0) ?(seed = 1) ?(trace = false)
    ?trace_ring ?(profile = false) () =
  let vm =
    Cgc_workloads.Specjbb.setup ~warehouses ~gc ~heap_mb ~seed ~trace
      ?trace_ring ()
  in
  if profile then Vm.enable_profiler vm;
  Vm.run_measured vm ~warmup_ms ~ms;
  (collect ~label vm, vm)

let specjbb ~label ~gc ?warehouses ?heap_mb ?warmup_ms ?ms ?seed () =
  fst
    (specjbb_vm ~label ~gc ?warehouses ?heap_mb ?warmup_ms ?ms ?seed ())

let pbob_vm ~label ~gc ~warehouses ?terminals ?(heap_mb = 96.0) ?think_mean
    ?residency_at ?(warmup_ms = 1500.0) ?(ms = 5000.0) ?(seed = 1)
    ?(trace = false) ?trace_ring ?(profile = false) () =
  let vm =
    Cgc_workloads.Pbob.setup ~warehouses ~gc ?terminals ~heap_mb ~trace
      ?trace_ring ?think_mean ?residency_at ~seed ()
  in
  if profile then Vm.enable_profiler vm;
  Vm.run_measured vm ~warmup_ms ~ms;
  (collect ~label vm, vm)

let pbob ~label ~gc ~warehouses ?terminals ?heap_mb ?think_mean ?residency_at
    ?warmup_ms ?ms ?seed () =
  fst
    (pbob_vm ~label ~gc ~warehouses ?terminals ?heap_mb ?think_mean
       ?residency_at ?warmup_ms ?ms ?seed ())

let analyse_trace ?mmu_windows_ms vm =
  Cgc_prof.Analysis.analyse_events ?mmu_windows_ms
    ~cycles_per_us:(Vm.cycles_per_us vm)
    (Cgc_obs.Obs.events_array (Vm.obs vm))

let hdr title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')
