(* Figure 2 of the paper: pBOB in autoserver mode on a multi-gigabyte heap
   (2.5 GB, 25 terminals per warehouse, 30-80 warehouses) — average and
   maximum pause times and the average mark time.

   The paper's findings reproduced here at scale (96 MB simulated heap):
   - the pause reduction is even larger than on SPECjbb (84%);
   - sweep becomes the dominant residual pause component (42% at 80
     warehouses), motivating lazy sweep;
   - average mark time grows much more slowly than heap occupancy. *)

module Table = Cgc_util.Table
module Config = Cgc_core.Config

let warehouse_counts () =
  if Common.quick () then [ 40; 80 ] else [ 40; 50; 60; 70; 80 ]

let run () =
  Common.hdr
    "Figure 2 — pBOB (autoserver, 25 terminals/warehouse) on a large heap: STW vs CGC";
  let t =
    Table.create
      ~title:"(96 MB simulated heap standing in for the paper's 2.5 GB; times in ms)"
      ~header:
        [ "wh"; "threads"; "occ"; "STW avg"; "STW max"; "CGC avg"; "CGC max";
          "CGC mark"; "CGC sweep"; "sweep/pause" ]
  in
  (* One warehouse count = one independent STW/CGC pair; the sweep runs
     across host domains and the rows render serially in item order. *)
  let results =
    Common.par_map (warehouse_counts ()) (fun wh ->
        let ms = if Common.quick () then 2500.0 else 6000.0 in
        let warmup_ms = if Common.quick () then 1000.0 else 2000.0 in
        let stw =
          Common.pbob ~label:"stw" ~gc:Config.stw ~warehouses:wh ~warmup_ms ~ms
            ()
        in
        let cgc =
          Common.pbob ~label:"cgc" ~gc:Config.default ~warehouses:wh ~warmup_ms
            ~ms ()
        in
        (wh, stw, cgc))
  in
  List.iter
    (fun (wh, stw, cgc) ->
      let sweep_share =
        if cgc.Common.avg_pause > 0.0 then
          cgc.Common.avg_sweep /. cgc.Common.avg_pause
        else 0.0
      in
      Table.add_row t
        [ string_of_int wh;
          string_of_int (wh * 25);
          Table.fpct cgc.Common.occupancy;
          Table.fms stw.Common.avg_pause;
          Table.fms stw.Common.max_pause;
          Table.fms cgc.Common.avg_pause;
          Table.fms cgc.Common.max_pause;
          Table.fms cgc.Common.avg_mark;
          Table.fms cgc.Common.avg_sweep;
          Table.fpct sweep_share ])
    results;
  Table.print t;
  (match (List.rev results, results) with
  | (wh_hi, stw_hi, cgc_hi) :: _, (wh_lo, _, cgc_lo) :: _ when wh_hi <> wh_lo ->
      Printf.printf
        "From %d to %d warehouses: occupancy grows %.0f%% -> %.0f%% while the CGC mark\n\
         time grows %.1f -> %.1f ms — mark grows much more slowly than occupancy (paper: +58%% vs +35%%).\n"
        wh_lo wh_hi
        (100.0 *. cgc_lo.Common.occupancy)
        (100.0 *. cgc_hi.Common.occupancy)
        cgc_lo.Common.avg_mark cgc_hi.Common.avg_mark;
      Printf.printf
        "At %d warehouses the total pause drops %.0f -> %.0f ms and sweep is %.0f%% of the\n\
         remaining CGC pause (paper: 4192 -> 657 ms with sweep at 42%%) — the case for lazy sweep.\n"
        wh_hi stw_hi.Common.avg_pause cgc_hi.Common.avg_pause
        (100.0 *. cgc_hi.Common.avg_sweep /. Float.max 0.001 cgc_hi.Common.avg_pause)
  | _ -> ());
  results
