module Prng = Cgc_util.Prng
module R = Cgc_util.Ringbuf

type mode = Sc | Relaxed

type entry = {
  key : int;
  cpu : int;
  deadline : int;
  prev : int;
  mutable dead : bool;
}

let dummy_entry = { key = 0; cpu = 0; deadline = 0; prev = 0; dead = true }

(* Binary min-heap of entries keyed by deadline (shared kernel, see
   Cgc_util.Minheap for the slot-hygiene contract). *)
module Heap = Cgc_util.Minheap.Make (struct
  type elt = entry

  let key e = e.deadline
  let dummy = dummy_entry
end)

(* Per-location state: the still-pending stores in coherence (issue)
   order, plus the last deadline handed out for this location so drain
   deadlines stay monotone per key.  The deque replaces the [!l @ [e]]
   list append the previous implementation paid on every store (O(n) in
   the pending-store count, with a fresh list each time) and the
   [List.nth entries (length - 1)] double traversal every read paid to
   find the newest entry: front/back are now O(1) slot reads. *)
type kq = {
  buf : entry R.t;
  mutable last_deadline : int;
}

(* Per-CPU index of issued entries, so a fence drains exactly the fencing
   processor's stores without the whole-table [Hashtbl.iter] the previous
   implementation performed.  Entries killed early (by a drain deadline
   or a coherence kill) stay in the vector marked dead until the next
   fence or a compaction sweep discards them. *)
type cpuvec = {
  mutable ents : entry array;
  mutable n : int;
  mutable live_hint : int; (* live entries, maintained to decide compaction *)
}

type t = {
  md : mode;
  rng : Prng.t;
  max_delay : int;
  pending : Heap.t;
  by_key : (int, kq) Hashtbl.t; (* live entries, oldest first *)
  mutable by_cpu : cpuvec array; (* indexed by cpu id, grown on demand *)
  mutable next_key : int;
  mutable live : int;
}

let create ?(max_delay = 5000) ~mode ~rng () =
  {
    md = mode;
    rng;
    max_delay;
    pending = Heap.create ();
    by_key = Hashtbl.create 256;
    by_cpu = [||];
    next_key = 0;
    live = 0;
  }

let mode t = t.md

let register t n =
  let base = t.next_key in
  t.next_key <- base + n;
  base

let kq_of t key =
  match Hashtbl.find t.by_key key with
  | kq -> kq
  | exception Not_found ->
      let kq = { buf = R.create ~capacity:8 dummy_entry; last_deadline = min_int } in
      Hashtbl.add t.by_key key kq;
      kq

let cpuvec_of t cpu =
  if cpu < 0 then invalid_arg "Weakmem: negative cpu";
  let n = Array.length t.by_cpu in
  if cpu >= n then begin
    let bigger =
      Array.init (max (cpu + 1) (max 4 (2 * n))) (fun i ->
          if i < n then t.by_cpu.(i)
          else { ents = Array.make 16 dummy_entry; n = 0; live_hint = 0 })
    in
    t.by_cpu <- bigger
  end;
  t.by_cpu.(cpu)

(* Append to the cpu's index; when the vector fills up and is mostly
   dead, compact it in place instead of growing — the index stays
   proportional to the cpu's live pending stores. *)
let cpuvec_add v e =
  if v.n = Array.length v.ents then begin
    if 2 * v.live_hint <= v.n then begin
      let k = ref 0 in
      for i = 0 to v.n - 1 do
        let x = v.ents.(i) in
        if not x.dead then begin
          v.ents.(!k) <- x;
          incr k
        end
      done;
      for i = !k to v.n - 1 do
        v.ents.(i) <- dummy_entry
      done;
      v.n <- !k
    end
    else begin
      let bigger = Array.make (2 * Array.length v.ents) dummy_entry in
      Array.blit v.ents 0 bigger 0 v.n;
      v.ents <- bigger
    end
  end;
  v.ents.(v.n) <- e;
  v.n <- v.n + 1;
  v.live_hint <- v.live_hint + 1

(* Make [e] globally visible.  Per-location coherence: every pending
   store to the same location that is OLDER than [e] (the by_key deques
   are kept in coherence order) becomes visible too — once a newer store
   to a cache line is globally visible, reads can never again return
   values from before it, no matter which processor's buffer the older
   stores sat in. *)
let kill t e =
  if not e.dead then begin
    (match Hashtbl.find_opt t.by_key e.key with
    | None -> ()
    | Some kq ->
        let continue = ref true in
        while !continue && not (R.is_empty kq.buf) do
          let x = R.pop_front kq.buf in
          x.dead <- true;
          t.live <- t.live - 1;
          if x.cpu < Array.length t.by_cpu then begin
            let v = t.by_cpu.(x.cpu) in
            v.live_hint <- v.live_hint - 1
          end;
          if x == e then continue := false
        done);
    if not e.dead then begin
      (* e was not in its key's deque — defensive, mirrors the previous
         implementation's behaviour for an orphaned entry. *)
      e.dead <- true;
      t.live <- t.live - 1
    end
  end

let store t ~cpu ~now ~key ~prev =
  match t.md with
  | Sc -> ()
  | Relaxed ->
      let d = now + 1 + Prng.int t.rng t.max_delay in
      let kq = kq_of t key in
      let d = if kq.last_deadline >= d then kq.last_deadline + 1 else d in
      kq.last_deadline <- d;
      let e = { key; cpu; deadline = d; prev; dead = false } in
      Heap.push t.pending e;
      t.live <- t.live + 1;
      R.push_back kq.buf e;
      cpuvec_add (cpuvec_of t cpu) e

let commit_due t ~now =
  match t.md with
  | Sc -> ()
  | Relaxed ->
      let continue = ref true in
      while !continue do
        if Heap.is_empty t.pending then continue := false
        else begin
          let e = Heap.top t.pending in
          if e.dead then ignore (Heap.pop t.pending)
          else if e.deadline <= now then begin
            ignore (Heap.pop t.pending);
            kill t e
          end
          else continue := false
        end
      done

let read t ~cpu ~now ~key ~current =
  match t.md with
  | Sc -> current
  | Relaxed when t.live = 0 ->
      (* No pending store anywhere: nothing can be masked.  [commit_due]
         could only discard already-dead heap entries, which later calls
         skip anyway, so the whole lookup short-circuits to the backing
         value.  Reads outnumber stores heavily, so this is the common
         case whenever the buffers are drained. *)
      current
  | Relaxed -> (
      commit_due t ~now;
      match Hashtbl.find t.by_key key with
      | exception Not_found -> current
      | kq ->
          if R.is_empty kq.buf then current
          else
            (* A processor always sees its own latest store.  If the
               newest pending entry is ours, the backing value is what we
               wrote.  Otherwise remote readers are still masked by the
               oldest pending store. *)
            let newest = R.back kq.buf in
            if newest.cpu = cpu then current
            else
              let oldest = R.front kq.buf in
              if oldest.cpu = cpu then current else oldest.prev)

let fence t ~cpu ~now:_ =
  match t.md with
  | Sc -> ()
  | Relaxed ->
      if cpu >= 0 && cpu < Array.length t.by_cpu then begin
        let v = t.by_cpu.(cpu) in
        for i = 0 to v.n - 1 do
          let e = v.ents.(i) in
          v.ents.(i) <- dummy_entry;
          if not e.dead then kill t e
        done;
        v.n <- 0;
        v.live_hint <- 0
      end

let fence_all t =
  match t.md with
  | Sc -> ()
  | Relaxed ->
      for cpu = 0 to Array.length t.by_cpu - 1 do
        let v = t.by_cpu.(cpu) in
        for i = 0 to v.n - 1 do
          let e = v.ents.(i) in
          v.ents.(i) <- dummy_entry;
          if not e.dead then kill t e
        done;
        v.n <- 0;
        v.live_hint <- 0
      done

let pending_count t = t.live

let debug_heap_clean t = Heap.slots_clean t.pending
