type t = {
  cost : Cost.t;
  wm : Weakmem.t;
  fences : Fence.counters;
  obs : Cgc_obs.Obs.t;
  mutable cas_ops : int;
  mutable debt : int;
  now : unit -> int;
  spend : int -> unit;
  cpu : unit -> int;
  relinquish : unit -> unit;
}

let create ?(cost = Cost.default) ?(obs = Cgc_obs.Obs.null) ~wm ~now ~spend
    ~cpu ?(relinquish = fun () -> ()) () =
  { cost; wm; fences = Fence.create (); obs; cas_ops = 0; debt = 0; now;
    spend; cpu; relinquish }

let testing ?(mode = Weakmem.Sc) ?(seed = 42) () =
  let clock = ref 0 in
  let wm = Weakmem.create ~mode ~rng:(Cgc_util.Prng.create seed) () in
  create ~wm
    ~now:(fun () -> !clock)
    ~spend:(fun n -> clock := !clock + n)
    ~cpu:(fun () -> 0)
    ()

let testing_multi ?(mode = Weakmem.Relaxed) ?(seed = 42) () =
  let clock = ref 0 in
  let cpu = ref 0 in
  let wm = Weakmem.create ~mode ~rng:(Cgc_util.Prng.create seed) () in
  let m =
    create ~wm
      ~now:(fun () -> !clock)
      ~spend:(fun n -> clock := !clock + n)
      ~cpu:(fun () -> !cpu)
      ()
  in
  (m, clock, cpu)

let charge t n = t.debt <- t.debt + n

let flush t =
  if t.debt > 0 then begin
    let d = t.debt in
    t.debt <- 0;
    t.spend d
  end

let fence t site =
  Fence.count t.fences site;
  Cgc_obs.Obs.instant t.obs ~arg:(Fence.site_index site) Cgc_obs.Event.Fence_flush;
  charge t t.cost.Cost.fence;
  Weakmem.fence t.wm ~cpu:(t.cpu ()) ~now:(t.now ())

let cas t =
  t.cas_ops <- t.cas_ops + 1;
  charge t t.cost.Cost.cas

let now t = t.now ()
let cpu t = t.cpu ()
