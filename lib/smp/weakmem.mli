(** Simulated weak-ordering memory system.

    The paper targets PowerPC / IA-64 class machines where stores issued
    by one processor become visible to others in no particular order
    unless a fence is executed.  This module models exactly that: every
    protocol-relevant store (heap slots, allocation bits, card-table
    bytes, work-packet contents and pool heads) is applied to the shared
    state immediately but remains {e masked} for other processors until a
    randomized drain deadline passes or the issuing processor fences.
    While masked, readers on other processors observe the pre-store value,
    so store-store reordering anomalies — the three races of section 5 —
    actually manifest.

    Per-location coherence is preserved (drain deadlines are monotone per
    location), matching real weak-ordering hardware.

    In [Sc] (sequentially consistent) mode every operation is a direct
    memory access; the experiments run in this mode for speed, with fence
    {e costs} still charged via {!Fence} and {!Cost}.  The [Relaxed] mode
    is used by the correctness tests that demonstrate the section 5
    protocols are necessary and sufficient. *)

type mode = Sc | Relaxed

type t

val create : ?max_delay:int -> mode:mode -> rng:Cgc_util.Prng.t -> unit -> t
(** [max_delay] (default 5000 cycles) bounds how long a store may stay
    buffered before draining on its own. *)

val mode : t -> mode

val register : t -> int -> int
(** [register t n] reserves a fresh key range of size [n] for one shared
    structure and returns its base key.  Location identity is
    [base + offset]. *)

val store : t -> cpu:int -> now:int -> key:int -> prev:int -> unit
(** Record that processor [cpu] overwrote location [key] at time [now];
    [prev] is the value the location held before the store (what remote
    readers will see until the store drains).  The caller must have
    already applied the new value to the backing structure. *)

val read : t -> cpu:int -> now:int -> key:int -> current:int -> int
(** The value processor [cpu] observes for [key] at [now], where
    [current] is the value currently in the backing structure. *)

val fence : t -> cpu:int -> now:int -> unit
(** Drain all pending stores issued by [cpu]: they become globally
    visible.  (Cost accounting is the caller's job.) *)

val fence_all : t -> unit
(** Drain every pending store on every processor — used when the collector
    forces all mutators to fence (section 5.3, step 2). *)

val commit_due : t -> now:int -> unit
(** Drain stores whose deadline has passed.  Called by the scheduler. *)

val pending_count : t -> int
(** Number of still-masked stores (diagnostics / tests). *)

val debug_heap_clean : t -> bool
(** Test hook for the PR 9 retention bugfixes: [true] iff every vacated
    slot of the internal drain heap holds the dummy entry — i.e. no
    committed store entry is retained above the heap's length.
    O(heap capacity); never used on the hot path. *)
