(** Shared machine context threaded through the heap and the collector.

    Bundles the cycle {!Cost} model, the {!Weakmem} system, fence and CAS
    accounting, and three environment closures wired up by the runtime:
    the simulated clock, a way to charge cycles to the currently running
    simulated thread, and the identity of the store buffer (thread) the
    caller is executing on.  Keeping these as closures lets the heap and
    collector libraries stay independent of the scheduler, and lets unit
    tests drive them with a hand-rolled clock. *)

type t = {
  cost : Cost.t;
  wm : Weakmem.t;
  fences : Fence.counters;
  obs : Cgc_obs.Obs.t;
      (** event sink for the observability layer; {!Cgc_obs.Obs.null}
          (every emit is a no-op) unless the run was started with tracing
          armed *)
  mutable cas_ops : int;
  mutable debt : int;    (** cycles charged but not yet spent *)
  now : unit -> int;
  spend : int -> unit;   (** consume simulated cycles on the current thread *)
  cpu : unit -> int;     (** store-buffer id of the current thread *)
  relinquish : unit -> unit;
      (** yield the current simulated thread's processor (no-op outside a
          scheduler, e.g. in unit tests) *)
}

val create :
  ?cost:Cost.t ->
  ?obs:Cgc_obs.Obs.t ->
  wm:Weakmem.t ->
  now:(unit -> int) ->
  spend:(int -> unit) ->
  cpu:(unit -> int) ->
  ?relinquish:(unit -> unit) ->
  unit ->
  t

val testing : ?mode:Weakmem.mode -> ?seed:int -> unit -> t
(** A machine for unit tests: manual clock (starts at 0, advanced by
    [charge]), single store buffer 0, default costs. *)

val testing_multi : ?mode:Weakmem.mode -> ?seed:int -> unit -> t * int ref * int ref
(** Like {!testing} but returns the clock cell and a mutable "current cpu"
    cell so a test can play several processors. *)

val fence : t -> Fence.site -> unit
(** Count a fence at [site], charge its cost, and drain the calling
    thread's store buffer. *)

val cas : t -> unit
(** Count and charge one compare-and-swap. *)

val charge : t -> int -> unit
(** Accumulate cycles into the debt counter.  Debt is only turned into
    simulated time by {!flush}; the stretch of host code between two
    flushes is therefore atomic with respect to simulated preemption.
    The collector flushes at {e safe points} only — between object scans,
    between cards, between allocation slow paths — which is what makes it
    sound to confiscate the work-packet sessions of preempted threads
    when the world stops (a session is never mid-object at a flush). *)

val flush : t -> unit
(** Spend the accumulated debt on the current simulated thread. *)

val now : t -> int
val cpu : t -> int
