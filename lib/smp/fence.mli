(** Fence-instruction accounting.

    Section 5 of the paper is about minimising memory-fence instructions
    on weak-ordering hardware: one fence per allocation-cache retirement
    (not per object), one per work packet returned to the pool (not per
    mark), and none in the write barrier (replaced by the card-table
    snapshot protocol).  This module counts fences per site so the
    ablation bench can compare the batched protocols against the naive
    per-operation placements. *)

type site =
  | Alloc_batch     (** one per retired allocation cache (section 5.2) *)
  | Packet_return   (** one per output packet returned to the pool (section 5.1) *)
  | Packet_defer    (** tracer-side fence before tracing a packet (section 5.2) *)
  | Card_snapshot   (** per-mutator fence forced by card cleaning (section 5.3) *)
  | Naive_alloc     (** ablation: one fence per object allocated *)
  | Naive_barrier   (** ablation: one fence per write barrier *)
  | Naive_mark      (** ablation: one fence per object marked/pushed *)
  | Other

type counters

val create : unit -> counters

val count : counters -> site -> unit

val get : counters -> site -> int

val total : counters -> int

val reset : counters -> unit

val site_name : site -> string

val site_index : site -> int
(** Stable small integer per site — the payload trace events carry. *)

val all_sites : site list
