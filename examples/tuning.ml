(* Tuning the tracing rate (section 3 / table 1 of the paper).

   The tracing rate K0 is the central policy knob of the incremental
   collector: how many bytes a mutator must trace per byte it allocates.
   Low rates start collection cycles early and spread the work out —
   mutators keep more of the processor, but floating garbage accumulates
   and cards get re-dirtied; high rates start late and finish just as
   memory runs out — less floating garbage and fewer cards left to the
   pause, at the price of mutator slowdown while the cycle runs.

   Run with:  dune exec examples/tuning.exe *)

module Vm = Cgc_runtime.Vm
module Config = Cgc_core.Config
module Gstats = Cgc_core.Gstats
module Stats = Cgc_util.Stats
module Hist = Cgc_util.Histogram
module Table = Cgc_util.Table

let measure k0 =
  let gc = { Config.default with Config.k0 } in
  let vm = Cgc_workloads.Specjbb.setup ~warehouses:8 ~gc ~heap_mb:48.0 () in
  Vm.run_measured vm ~warmup_ms:1200.0 ~ms:2500.0;
  vm

let () =
  Printf.printf
    "Sweeping the tracing rate K0 on a SPECjbb-like workload (8 warehouses, 48 MB):\n\n";
  let t =
    Table.create ~title:""
      ~header:
        [ "K0"; "tx/s"; "occupancy"; "avg pause"; "max pause"; "utilization";
          "GC cycles" ]
  in
  List.iter
    (fun k0 ->
      let vm = measure k0 in
      let st = Vm.gc_stats vm in
      Table.add_row t
        [ Printf.sprintf "%.0f" k0;
          Printf.sprintf "%.0f" (Vm.throughput vm);
          Table.fpct (Stats.mean st.Gstats.occupancy_end);
          Table.fms (Hist.mean st.Gstats.pause_ms);
          Table.fms
            (if Hist.count st.Gstats.pause_ms = 0 then 0.0
             else Hist.max st.Gstats.pause_ms);
          Table.fpct (Gstats.utilization st);
          string_of_int st.Gstats.cycles ])
    [ 1.0; 4.0; 8.0; 10.0 ];
  Table.print t;
  Printf.printf
    "\nReading the table (compare the paper's Table 1): occupancy above the ~60%%\n\
     baseline is floating garbage — it shrinks as K0 grows; utilization is the\n\
     mutators' share of the machine while collection runs — it shrinks too.\n\
     The paper settles on K0 = 8 as the sweet spot, and so do we.\n"
