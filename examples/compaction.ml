(* Incremental compaction in action (section 2.3).

   A fragmentation-heavy workload: each worker keeps a resident set of
   mixed-size objects and continuously frees the small ones between the
   big ones, shredding the free list into small chunks.  With compaction
   on, the collector evacuates one sixteenth of the heap per cycle —
   tracking pointers into the area during marking and fixing them up
   inside the pause — so free space re-coalesces.

   Run with:  dune exec examples/compaction.exe *)

module Vm = Cgc_runtime.Vm
module Mutator = Cgc_runtime.Mutator
module Config = Cgc_core.Config
module Collector = Cgc_core.Collector
module Compact = Cgc_core.Compact
module Freelist = Cgc_heap.Freelist
module Heap = Cgc_heap.Heap
module Stats = Cgc_util.Stats
module Prng = Cgc_util.Prng

let n_anchors = 200

let worker m =
  let rng = Mutator.rng m in
  (* a directory of long-lived "anchor" objects; each transaction replaces
     one anchor (the new copy lands at a fresh address) and churns small
     filler objects, so over time the live anchors end up peppered across
     the whole address space with shredded free space between them *)
  let dir = Mutator.alloc m ~nrefs:n_anchors ~size:(n_anchors + 1) in
  Mutator.root_set m 0 dir;
  for i = 0 to n_anchors - 1 do
    let a = Mutator.alloc m ~nrefs:0 ~size:24 in
    Mutator.set_ref m dir i a
  done;
  while not (Mutator.stopped m) do
    let i = Prng.int rng n_anchors in
    let fresh = Mutator.alloc m ~nrefs:0 ~size:24 in
    Mutator.set_ref m dir i fresh;
    for _ = 1 to 8 do
      let o = Mutator.alloc m ~nrefs:0 ~size:(4 + Prng.int rng 10) in
      Mutator.root_set m 1 o
    done;
    Mutator.root_set m 1 0;
    Mutator.work m 6_000;
    Mutator.tx_done m
  done

(* The metric that matters for fragmentation: the largest contiguous
   block the allocator could hand out right now. *)
let largest_block fl =
  let lo = ref 1 and hi = ref (Freelist.free_slots fl + 1) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    match Freelist.alloc fl mid with
    | Some addr ->
        Freelist.add fl ~addr ~size:mid;
        lo := mid
    | None -> hi := mid
  done;
  !lo

let run label gc =
  let vm = Vm.create (Vm.config ~heap_mb:8.0 ~ncpus:4 ~gc ()) in
  for i = 1 to 16 do
    Vm.spawn_mutator vm ~name:(Printf.sprintf "w%d" i) worker
  done;
  Vm.run vm ~ms:2500.0;
  let coll = Vm.collector vm in
  let fl = Heap.freelist (Vm.heap vm) in
  let st = Vm.gc_stats vm in
  Printf.printf
    "%-16s largest allocatable block: %7d slots (of %7d free) | avg pause %5.2f ms | evacuated %7d objs, %7d fixups\n"
    label (largest_block fl) (Freelist.free_slots fl)
    (Cgc_util.Histogram.mean st.Cgc_core.Gstats.pause_ms)
    (Compact.evacuated_objects (Collector.compactor coll))
    (Compact.fixups (Collector.compactor coll))

let () =
  print_endline
    "Fragmentation workload, 16 workers on an 8 MB heap (2500 simulated ms):\n";
  run "no compaction" Config.default;
  run "compaction" { Config.default with Config.compaction = true };
  print_endline
    "\nEvacuating one area per cycle keeps the free list coarse (fewer, larger\n\
     chunks) for a bounded addition to the pause — section 2.3's incremental\n\
     alternative to stopping the world for a full compaction."
