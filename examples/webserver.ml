(* A web-application-server scenario — the workload the paper's
   introduction motivates: many more request-handler threads than
   processors, a large session cache as the resident set, and a latency
   budget per request.

   We run the same server under the stop-the-world baseline and under the
   mostly-concurrent collector and report the request-latency tail: with
   STW, every request that lands on a collection absorbs the full pause;
   with CGC the pause (and therefore the tail) collapses.

   Run with:  dune exec examples/webserver.exe *)

module Vm = Cgc_runtime.Vm
module Mutator = Cgc_runtime.Mutator
module Config = Cgc_core.Config
module Stats = Cgc_util.Stats
module Prng = Cgc_util.Prng

let n_handlers = 64
let session_lists = 6
let session_list_len = 550

(* One request: allocate a response, update the session cache (pointer
   mutation), compute, measure the wall latency, then think. *)
let handler latencies cycles_per_ms m =
  for i = 0 to session_lists - 1 do
    let l =
      Cgc_workloads.Objgraph.build_list m ~len:session_list_len ~node_slots:12
    in
    Mutator.root_set m i l
  done;
  let rng = Mutator.rng m in
  while not (Mutator.stopped m) do
    let t_start = Mutator.now_cycles m in
    (* response buffer + a few temporaries *)
    let resp = Mutator.alloc m ~nrefs:1 ~size:24 in
    Mutator.root_set m 6 resp;
    for _ = 1 to 4 do
      let tmp = Mutator.alloc m ~nrefs:0 ~size:8 in
      Mutator.set_ref m resp 0 tmp
    done;
    (* session update: replace a list head *)
    let i = Prng.int rng session_lists in
    let old = Mutator.root_get m i in
    let tail = Mutator.get_ref m old 0 in
    Mutator.root_set m 7 tail;
    let fresh = Mutator.alloc m ~nrefs:1 ~size:12 in
    Mutator.set_ref m fresh 0 tail;
    Mutator.root_set m i fresh;
    Mutator.root_set m 6 0;
    Mutator.root_set m 7 0;
    Mutator.work m 12_000;
    Mutator.tx_done m;
    let lat =
      float_of_int (Mutator.now_cycles m - t_start)
      /. float_of_int cycles_per_ms
    in
    Stats.add latencies lat;
    (* ~1 ms of think time between requests: this idle time is what the
       background collector threads soak up *)
    Mutator.think m (1 + int_of_float (Prng.exponential rng 550_000.0))
  done

let serve name gc =
  let vm = Vm.create (Vm.config ~heap_mb:48.0 ~ncpus:4 ~gc ()) in
  let cycles_per_ms =
    (Vm.machine vm).Cgc_smp.Machine.cost.Cgc_smp.Cost.cycles_per_ms
  in
  let latencies = Stats.create () in
  for i = 1 to n_handlers do
    Vm.spawn_mutator vm
      ~name:(Printf.sprintf "handler-%d" i)
      (handler latencies cycles_per_ms)
  done;
  Vm.run vm ~ms:4000.0;
  let st = Vm.gc_stats vm in
  Printf.printf
    "%-4s  requests %7d   latency p50 %6.2f ms  p99.9 %6.2f ms  max %7.2f ms   GC avg pause %6.2f ms (max %.2f)\n"
    name (Stats.count latencies)
    (Stats.percentile latencies 50.0)
    (Stats.percentile latencies 99.9)
    (Stats.max latencies)
    (Cgc_util.Histogram.mean st.Cgc_core.Gstats.pause_ms)
    (if Cgc_util.Histogram.count st.Cgc_core.Gstats.pause_ms = 0 then 0.0
     else Cgc_util.Histogram.max st.Cgc_core.Gstats.pause_ms)

let () =
  Printf.printf
    "Web application server: %d handler threads on 4 CPUs, 48 MB heap.\n\
     Request latency tail under each collector:\n\n"
    n_handlers;
  serve "STW" Config.stw;
  serve "CGC" Config.default;
  Printf.printf
    "\nThe p99/max latency under STW absorbs whole collection pauses; the\n\
     mostly-concurrent collector trades a little throughput for a flat tail.\n"
