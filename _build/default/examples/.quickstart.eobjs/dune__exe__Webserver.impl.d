examples/webserver.ml: Cgc_core Cgc_runtime Cgc_smp Cgc_util Cgc_workloads Printf
