examples/quickstart.ml: Cgc_runtime Cgc_workloads Printf
