examples/compaction.ml: Cgc_core Cgc_heap Cgc_runtime Cgc_util Printf
