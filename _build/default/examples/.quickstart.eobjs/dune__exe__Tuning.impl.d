examples/tuning.ml: Cgc_core Cgc_runtime Cgc_util Cgc_workloads List Printf
