examples/tuning.mli:
