examples/weak_memory.ml: Cgc_heap Cgc_packets Cgc_smp List Option Printf
