examples/webserver.mli:
