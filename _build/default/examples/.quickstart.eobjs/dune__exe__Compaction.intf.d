examples/compaction.mli:
