examples/quickstart.mli:
