(* Demonstrating the weak-ordering races of section 5 on the relaxed
   memory simulator — and that the paper's fence-batching protocols close
   them without putting a fence in every write barrier or allocation.

   Run with:  dune exec examples/weak_memory.exe *)

module Machine = Cgc_smp.Machine
module Weakmem = Cgc_smp.Weakmem
module Heap = Cgc_heap.Heap
module Arena = Cgc_heap.Arena
module Card_table = Cgc_heap.Card_table
module Pool = Cgc_packets.Pool

(* Race 1 (section 5.1): a work packet handed from one processor to
   another without the producer-side fence exposes stale contents. *)
let race1 ~fenced =
  let fails = ref 0 in
  let trials = 500 in
  for seed = 1 to trials do
    let m, _clock, cpu = Machine.testing_multi ~mode:Weakmem.Relaxed ~seed () in
    let pl = Pool.create ~fence_on_put:fenced m ~n_packets:4 ~capacity:8 in
    cpu := 1;
    let p = Option.get (Pool.get_output pl) in
    for i = 1 to 5 do
      ignore (Pool.push pl p (100 + i))
    done;
    Pool.put pl p;
    cpu := 2;
    let q = Option.get (Pool.get_input pl) in
    let stale = ref false in
    let rec drain () =
      match Pool.pop pl q with
      | Some v ->
          if v < 101 || v > 105 then stale := true;
          drain ()
      | None -> ()
    in
    drain ();
    if !stale then incr fails
  done;
  (!fails, trials)

(* Race 3 (section 5.3): the card-dirtying store becomes visible before
   the reference store it covers; a cleaner that does not force the
   mutator to fence misses the reference. *)
let race3 ~force_fence =
  let fails = ref 0 in
  let trials = 500 in
  for seed = 1 to trials do
    let m, _clock, cpu = Machine.testing_multi ~mode:Weakmem.Relaxed ~seed () in
    let heap = Heap.create m ~nslots:4096 in
    cpu := 1;
    let o1 = Option.get (Heap.alloc_large heap ~size:8 ~nrefs:1 ~mark_new:false) in
    let o2 = Option.get (Heap.alloc_large heap ~size:8 ~nrefs:0 ~mark_new:false) in
    Weakmem.fence m.Machine.wm ~cpu:1 ~now:(Machine.now m);
    ignore (Heap.mark_test_and_set heap o1);
    Arena.ref_set_raw (Heap.arena heap) o1 0 o2;
    Card_table.dirty (Heap.cards heap) (Arena.card_of_addr o1);
    Machine.charge m 3_000;
    Machine.flush m;
    Weakmem.commit_due m.Machine.wm ~now:(Machine.now m);
    cpu := 2;
    let registered = Card_table.snapshot (Heap.cards heap) in
    if force_fence then Weakmem.fence m.Machine.wm ~cpu:1 ~now:(Machine.now m);
    let found = ref false in
    List.iter
      (fun card ->
        Heap.iter_marked_on_card heap card (fun addr ->
            if Arena.ref_get (Heap.arena heap) addr 0 = o2 then found := true))
      registered;
    if registered <> [] && not !found then incr fails
  done;
  (!fails, trials)

let report name (fails, trials) =
  Printf.printf "  %-46s %4d / %d trials lost an update\n" name fails trials

let () =
  print_endline
    "Weak-ordering races on the relaxed-memory simulator (500 seeds each):";
  print_endline "";
  print_endline "Race 1 — packet hand-off between processors (section 5.1):";
  report "without the fence-before-put" (race1 ~fenced:false);
  report "with one fence per returned packet" (race1 ~fenced:true);
  print_endline "";
  print_endline "Race 3 — card cleaning vs the write barrier (section 5.3):";
  report "snapshot only, no forced mutator fence" (race3 ~force_fence:false);
  report "snapshot + forced mutator fence" (race3 ~force_fence:true);
  print_endline "";
  print_endline
    "The batched protocols (one fence per packet, none in the write barrier)\n\
     are exactly strong enough: zero losses with them, reproducible losses\n\
     without.  See test/test_races.ml for the full property checks, including\n\
     the section 5.2 allocation-bit protocol."
