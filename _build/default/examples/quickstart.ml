(* Quickstart: a small VM with four mutators allocating linked structures
   while the mostly-concurrent collector runs underneath.

   Run with:  dune exec examples/quickstart.exe *)

module Vm = Cgc_runtime.Vm
module Mutator = Cgc_runtime.Mutator

let worker m =
  (* Build a resident list, then churn: allocate short-lived chains and
     replace the resident list's head every transaction. *)
  let resident = Cgc_workloads.Objgraph.build_list m ~len:2000 ~node_slots:16 in
  Mutator.root_set m 0 resident;
  while not (Mutator.stopped m) do
    (* transient chain *)
    let chain = ref 0 in
    for _ = 1 to 10 do
      let o = Mutator.alloc m ~nrefs:1 ~size:8 in
      if !chain <> 0 then Mutator.set_ref m o 0 !chain;
      chain := o;
      Mutator.root_set m 1 o
    done;
    (* replace the resident head: the old head becomes garbage *)
    let old_head = Mutator.root_get m 0 in
    let tail = Mutator.get_ref m old_head 0 in
    Mutator.root_set m 2 tail;
    let fresh = Mutator.alloc m ~nrefs:1 ~size:16 in
    Mutator.set_ref m fresh 0 tail;
    Mutator.root_set m 0 fresh;
    Mutator.root_set m 2 0;
    Mutator.work m 20_000;
    Mutator.root_set m 1 0;
    Mutator.tx_done m
  done

let () =
  let vm = Vm.create (Vm.config ~heap_mb:16.0 ~ncpus:4 ()) in
  for i = 1 to 4 do
    Vm.spawn_mutator vm ~name:(Printf.sprintf "worker-%d" i) worker
  done;
  Vm.run vm ~ms:2000.0;
  Vm.print_report vm
