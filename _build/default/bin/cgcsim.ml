(* cgcsim — command-line driver for the collector simulator.

   Run a workload under either collector with custom parameters and print
   the VM report:

     dune exec bin/cgcsim.exe -- run --workload specjbb --collector cgc \
       --warehouses 8 --heap-mb 64 --ms 4000 --tracing-rate 8

   Or run one of the paper-reproduction experiments:

     dune exec bin/cgcsim.exe -- experiment fig1 *)

open Cmdliner

module Vm = Cgc_runtime.Vm
module Config = Cgc_core.Config

let run_cmd =
  let workload =
    let doc = "Workload: specjbb, pbob or javac." in
    Arg.(value & opt string "specjbb" & info [ "workload"; "w" ] ~doc)
  in
  let collector =
    let doc = "Collector: cgc (mostly-concurrent) or stw (baseline)." in
    Arg.(value & opt string "cgc" & info [ "collector"; "c" ] ~doc)
  in
  let warehouses =
    Arg.(value & opt int 8 & info [ "warehouses" ] ~doc:"Warehouse count.")
  in
  let heap_mb =
    Arg.(value & opt float 64.0 & info [ "heap-mb" ] ~doc:"Simulated heap size (MB).")
  in
  let ncpus = Arg.(value & opt int 4 & info [ "ncpus" ] ~doc:"Simulated CPUs.") in
  let ms =
    Arg.(value & opt float 4000.0 & info [ "ms" ] ~doc:"Simulated milliseconds to run.")
  in
  let tracing_rate =
    Arg.(value & opt float 8.0 & info [ "tracing-rate"; "k0" ] ~doc:"Tracing rate K0.")
  in
  let n_background =
    Arg.(value & opt int 4 & info [ "background" ] ~doc:"Background GC threads.")
  in
  let packets =
    Arg.(value & opt int 1000 & info [ "packets" ] ~doc:"Work packets in the pool.")
  in
  let lazy_sweep =
    Arg.(value & flag & info [ "lazy-sweep" ] ~doc:"Sweep outside the pause (section 7).")
  in
  let compaction =
    Arg.(value & flag & info [ "compaction" ] ~doc:"Evacuate one heap area per cycle (section 2.3).")
  in
  let card_passes =
    Arg.(value & opt int 1 & info [ "card-passes" ] ~doc:"Concurrent card-cleaning passes.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"PRNG seed.") in
  let exec workload collector warehouses heap_mb ncpus ms tracing_rate
      n_background packets lazy_sweep compaction card_passes seed =
    let gc =
      {
        (if collector = "stw" then Config.stw else Config.default) with
        Config.k0 = tracing_rate;
        n_background;
        n_packets = packets;
        lazy_sweep;
        compaction;
        card_passes;
      }
    in
    let vm =
      match workload with
      | "specjbb" ->
          Cgc_workloads.Specjbb.run ~warehouses ~gc ~heap_mb ~ncpus ~seed ~ms ()
      | "pbob" ->
          Cgc_workloads.Pbob.run ~warehouses ~gc ~heap_mb ~ncpus ~seed ~ms ()
      | "javac" -> Cgc_workloads.Javac.run ~gc ~heap_mb ~ncpus ~seed ~ms ()
      | w ->
          Printf.eprintf "unknown workload %s (specjbb|pbob|javac)\n" w;
          exit 1
    in
    Vm.print_report vm
  in
  let info =
    Cmd.info "run" ~doc:"Run a workload under the simulated collector."
  in
  Cmd.v info
    Term.(
      const exec $ workload $ collector $ warehouses $ heap_mb $ ncpus $ ms
      $ tracing_rate $ n_background $ packets $ lazy_sweep $ compaction
      $ card_passes $ seed)

let experiment_cmd =
  let which =
    let doc =
      "Experiment: fig1, fig2, table1, table2, table3, table4, javac, \
       packetmem."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc)
  in
  let exec which =
    let module E = Cgc_experiments in
    match which with
    | "fig1" -> ignore (E.Fig1_specjbb.run ())
    | "fig2" -> ignore (E.Fig2_pbob.run ())
    | "table1" | "table2" | "table3" -> ignore (E.Tables123.run ())
    | "table4" -> ignore (E.Table4_load_balance.run ())
    | "javac" -> ignore (E.Javac_exp.run ())
    | "packetmem" -> ignore (E.Packet_memory.run ())
    | n ->
        Printf.eprintf "unknown experiment %s\n" n;
        exit 1
  in
  let info = Cmd.info "experiment" ~doc:"Run a paper-reproduction experiment." in
  Cmd.v info Term.(const exec $ which)

let () =
  let info =
    Cmd.info "cgcsim"
      ~doc:
        "Simulator of the PLDI 2002 parallel, incremental and mostly \
         concurrent garbage collector."
  in
  exit (Cmd.eval (Cmd.group info [ run_cmd; experiment_cmd ]))
