(* Tests for the tracing engine: exact reachability marking, conservative
   root filtering, the deferred-object (section 5.2) machinery, output
   replacement, input/output recirculation and overflow handling. *)

module Machine = Cgc_smp.Machine
module Heap = Cgc_heap.Heap
module Arena = Cgc_heap.Arena
module Alloc_bits = Cgc_heap.Alloc_bits
module Card_table = Cgc_heap.Card_table
module Pool = Cgc_packets.Pool
module Config = Cgc_core.Config
module Tracer = Cgc_core.Tracer

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

type env = { heap : Heap.t; pool : Pool.t; tracer : Tracer.t }

let mk ?(nslots = 65536) ?(n_packets = 16) ?(capacity = 8)
    ?(defer_protocol = true) () =
  let mach = Machine.testing () in
  let heap = Heap.create mach ~nslots in
  let pool = Pool.create mach ~n_packets ~capacity in
  let cfg = { Config.default with Config.defer_protocol } in
  { heap; pool; tracer = Tracer.create cfg heap pool }

(* Allocate a published object (allocation bit set immediately). *)
let obj env ~nrefs ~size =
  match Heap.alloc_large env.heap ~size ~nrefs ~mark_new:false with
  | Some a -> a
  | None -> Alcotest.fail "allocation failed"

let link env parent i child =
  Arena.ref_set_raw (Heap.arena env.heap) parent i child

(* Trace from the given roots to fixpoint. *)
let trace_all env roots =
  let s = Tracer.new_session env.tracer in
  List.iter (fun r -> Tracer.push_obj env.tracer s r) roots;
  let rec go () =
    let n = Tracer.trace_until env.tracer s ~budget:max_int in
    if n > 0 then go ()
  in
  go ();
  Tracer.release env.tracer s;
  (* recycle any deferred packets and finish *)
  while Pool.deferred_count env.pool > 0 do
    ignore (Pool.recycle_deferred env.pool);
    let s = Tracer.new_session env.tracer in
    let rec go () =
      let n = Tracer.trace_until env.tracer s ~budget:max_int in
      if n > 0 then go ()
    in
    go ();
    Tracer.release env.tracer s
  done

let test_marks_reachable_graph () =
  let env = mk () in
  (* diamond: a -> b, c; b -> d; c -> d; plus unreachable e *)
  let a = obj env ~nrefs:2 ~size:4 in
  let b = obj env ~nrefs:1 ~size:4 in
  let c = obj env ~nrefs:1 ~size:4 in
  let d = obj env ~nrefs:0 ~size:4 in
  let e = obj env ~nrefs:0 ~size:4 in
  link env a 0 b;
  link env a 1 c;
  link env b 0 d;
  link env c 0 d;
  trace_all env [ a ];
  List.iter
    (fun x -> check cb "reachable marked" true (Heap.is_marked env.heap x))
    [ a; b; c; d ];
  check cb "unreachable unmarked" false (Heap.is_marked env.heap e);
  check cb "pool terminated after trace" true (Pool.terminated env.pool)

let test_cycle_terminates () =
  let env = mk () in
  let a = obj env ~nrefs:1 ~size:4 in
  let b = obj env ~nrefs:1 ~size:4 in
  link env a 0 b;
  link env b 0 a;
  trace_all env [ a ];
  check cb "a marked" true (Heap.is_marked env.heap a);
  check cb "b marked" true (Heap.is_marked env.heap b)

let test_long_chain_recirculates () =
  (* A list far longer than one packet forces output replacement and the
     output->input recirculation path. *)
  let env = mk ~capacity:4 ~n_packets:4 () in
  let n = 500 in
  let nodes = Array.init n (fun _ -> obj env ~nrefs:1 ~size:3) in
  for i = 0 to n - 2 do
    link env nodes.(i) 0 nodes.(i + 1)
  done;
  trace_all env [ nodes.(0) ];
  Array.iter
    (fun x -> check cb "chain fully marked" true (Heap.is_marked env.heap x))
    nodes

let test_wide_fanout_overflow () =
  (* A root with many children and a tiny pool forces the overflow path:
     children still get marked, and the overflow dirties cards. *)
  let env = mk ~capacity:4 ~n_packets:3 () in
  let fan = 64 in
  let root = obj env ~nrefs:fan ~size:(fan + 1) in
  let kids = Array.init fan (fun _ -> obj env ~nrefs:0 ~size:3) in
  Array.iteri (fun i k -> link env root i k) kids;
  trace_all env [ root ];
  Array.iter
    (fun k -> check cb "kid marked despite overflow" true (Heap.is_marked env.heap k))
    kids;
  if Tracer.overflow_events env.tracer > 0 then
    check cb "overflow dirtied cards" true
      (Card_table.dirty_count (Heap.cards env.heap) > 0)

let test_marked_volume () =
  let env = mk () in
  let a = obj env ~nrefs:1 ~size:10 in
  let b = obj env ~nrefs:0 ~size:20 in
  link env a 0 b;
  trace_all env [ a ];
  check ci "volume = sum of sizes" 30 (Tracer.marked_slots env.tracer);
  Tracer.reset_cycle env.tracer;
  check ci "reset" 0 (Tracer.marked_slots env.tracer)

let test_push_root_conservative () =
  let env = mk () in
  let a = obj env ~nrefs:0 ~size:4 in
  let s = Tracer.new_session env.tracer in
  check cb "valid root pushed" true (Tracer.push_root env.tracer s a);
  check cb "duplicate not pushed" false (Tracer.push_root env.tracer s a);
  check cb "null rejected" false (Tracer.push_root env.tracer s 0);
  check cb "out of range rejected" false
    (Tracer.push_root env.tracer s 1_000_000);
  (* interior pointer: no allocation bit at that slot *)
  check cb "interior pointer rejected" false (Tracer.push_root env.tracer s (a + 1));
  Tracer.release env.tracer s

let test_scan_roots_array () =
  let env = mk () in
  let a = obj env ~nrefs:0 ~size:4 in
  let b = obj env ~nrefs:0 ~size:4 in
  let roots = [| 0; a; 12345678; b; -3; a |] in
  let s = Tracer.new_session env.tracer in
  let pushed = Tracer.scan_roots env.tracer s roots in
  Tracer.release env.tracer s;
  check ci "two valid roots" 2 pushed

let test_unsafe_objects_deferred () =
  (* An object whose allocation bit is not yet set must not be traced;
     it goes to the Deferred pool and is traced after publication. *)
  let env = mk () in
  let a = obj env ~nrefs:1 ~size:4 in
  (* craft an unpublished object by writing its header manually *)
  let unpub = 30_000 in
  Arena.write_header (Heap.arena env.heap) unpub ~size:6 ~nrefs:0;
  link env a 0 unpub;
  let s = Tracer.new_session env.tracer in
  Tracer.push_obj env.tracer s a;
  let rec drain () =
    if Tracer.trace_until env.tracer s ~budget:max_int > 0 then drain ()
  in
  drain ();
  Tracer.release env.tracer s;
  check cb "unsafe object marked but deferred" true
    (Heap.is_marked env.heap unpub);
  check ci "one deferred packet" 1 (Pool.deferred_count env.pool);
  (* marked volume must not include the unscanned object *)
  check ci "unsafe not counted as traced" 4 (Tracer.marked_slots env.tracer);
  (* now publish and recycle: it gets traced *)
  Alloc_bits.set (Heap.alloc_bits env.heap) unpub;
  ignore (Pool.recycle_deferred env.pool);
  let s = Tracer.new_session env.tracer in
  let rec drain () =
    if Tracer.trace_until env.tracer s ~budget:max_int > 0 then drain ()
  in
  drain ();
  Tracer.release env.tracer s;
  check ci "traced after publication" 10 (Tracer.marked_slots env.tracer);
  check cb "terminated" true (Pool.terminated env.pool)

let test_defer_fence_counted () =
  let env = mk () in
  let a = obj env ~nrefs:0 ~size:4 in
  trace_all env [ a ];
  let m = Heap.machine env.heap in
  check cb "tracer-side fence executed" true
    (Cgc_smp.Fence.get m.Machine.fences Cgc_smp.Fence.Packet_defer >= 1)

let test_budget_respected () =
  let env = mk () in
  let n = 100 in
  let nodes = Array.init n (fun _ -> obj env ~nrefs:1 ~size:10) in
  for i = 0 to n - 2 do
    link env nodes.(i) 0 nodes.(i + 1)
  done;
  let s = Tracer.new_session env.tracer in
  Tracer.push_obj env.tracer s nodes.(0);
  let traced = Tracer.trace_until env.tracer s ~budget:50 in
  Tracer.release env.tracer s;
  check cb "stopped near budget" true (traced >= 50 && traced < 100)

let test_confiscation () =
  let env = mk () in
  let a = obj env ~nrefs:1 ~size:4 in
  let b = obj env ~nrefs:0 ~size:4 in
  link env a 0 b;
  let s = Tracer.new_session env.tracer in
  Tracer.push_obj env.tracer s a;
  (* the session holds a non-empty output: not terminated *)
  check cb "not terminated while held" false (Pool.terminated env.pool);
  Tracer.confiscate_all env.tracer;
  check cb "stolen flag" true (Tracer.stolen s);
  (* all packets are accounted for in the sub-pools again *)
  let e, ne, af, d = Pool.counts env.pool in
  check ci "packets back in pool" (Pool.total env.pool) (e + ne + af + d);
  (* stolen sessions do no further work *)
  check ci "no tracing on stolen session" 0
    (Tracer.trace_until env.tracer s ~budget:max_int);
  Tracer.release env.tracer s;
  (* a fresh session can finish the work the confiscated one left *)
  trace_all env [];
  check cb "b eventually marked" true (Heap.is_marked env.heap b)

let test_corruption_detection_disabled_protocol () =
  (* With the section 5.2 protocol disabled, tracing an unpublished object
     whose header slot holds garbage is detected as a corruption. *)
  let env = mk ~defer_protocol:false () in
  let a = obj env ~nrefs:1 ~size:4 in
  let junk = 40_000 in
  (* no header written: slot is zero, which is an invalid header *)
  link env a 0 junk;
  trace_all env [ a ];
  check cb "corruption observed without the protocol" true
    (Tracer.corruptions env.tracer > 0)

let () =
  Alcotest.run "tracer"
    [
      ( "tracer",
        [
          Alcotest.test_case "marks reachable graph" `Quick
            test_marks_reachable_graph;
          Alcotest.test_case "cycles terminate" `Quick test_cycle_terminates;
          Alcotest.test_case "long chain recirculates" `Quick
            test_long_chain_recirculates;
          Alcotest.test_case "wide fanout overflow" `Quick
            test_wide_fanout_overflow;
          Alcotest.test_case "marked volume" `Quick test_marked_volume;
          Alcotest.test_case "conservative roots" `Quick
            test_push_root_conservative;
          Alcotest.test_case "scan_roots" `Quick test_scan_roots_array;
          Alcotest.test_case "unsafe deferred (5.2)" `Quick
            test_unsafe_objects_deferred;
          Alcotest.test_case "defer fence counted" `Quick
            test_defer_fence_counted;
          Alcotest.test_case "budget respected" `Quick test_budget_respected;
          Alcotest.test_case "confiscation" `Quick test_confiscation;
          Alcotest.test_case "corruption without protocol" `Quick
            test_corruption_detection_disabled_protocol;
        ] );
    ]
