(* Tests for the work-packet mechanism: packets, occupancy-classified
   sub-pools, input/output discipline, termination detection, the
   deferred pool, watermarks and CAS accounting. *)

module Machine = Cgc_smp.Machine
module Fence = Cgc_smp.Fence
module Packet = Cgc_packets.Packet
module Pool = Cgc_packets.Pool

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

let mk_pool ?(n = 8) ?(capacity = 10) ?fence_on_put ?naive_mark_fence () =
  Pool.create ?fence_on_put ?naive_mark_fence (Machine.testing ())
    ~n_packets:n ~capacity

(* ------------------------------ Packet ------------------------------ *)

let test_packet_lifo () =
  let m = Machine.testing () in
  let p = Packet.make m ~id:0 ~capacity:4 in
  check cb "push 1" true (Packet.push p 11);
  check cb "push 2" true (Packet.push p 22);
  check (Alcotest.option ci) "peek newest" (Some 22) (Packet.peek p);
  check (Alcotest.option ci) "pop newest" (Some 22) (Packet.pop p);
  check (Alcotest.option ci) "pop next" (Some 11) (Packet.pop p);
  check (Alcotest.option ci) "pop empty" None (Packet.pop p)

let test_packet_capacity () =
  let m = Machine.testing () in
  let p = Packet.make m ~id:0 ~capacity:3 in
  for i = 1 to 3 do
    check cb "push fits" true (Packet.push p i)
  done;
  check cb "full rejects" false (Packet.push p 4);
  check cb "is_full" true (Packet.is_full p);
  check ci "count" 3 (Packet.count p)

let test_packet_transfer () =
  let m = Machine.testing () in
  let a = Packet.make m ~id:0 ~capacity:10 in
  let b = Packet.make m ~id:1 ~capacity:4 in
  for i = 1 to 8 do
    ignore (Packet.push a i)
  done;
  let moved = Packet.transfer_all a b in
  check ci "moved up to dst capacity" 4 moved;
  check ci "src keeps the rest" 4 (Packet.count a)

let test_packet_iter () =
  let m = Machine.testing () in
  let p = Packet.make m ~id:0 ~capacity:8 in
  List.iter (fun v -> ignore (Packet.push p v)) [ 1; 2; 3 ];
  let acc = ref [] in
  Packet.iter p (fun v -> acc := v :: !acc);
  check (Alcotest.list ci) "iter order oldest-first" [ 3; 2; 1 ] !acc

(* ------------------------------ Pool ------------------------------ *)

let test_pool_initial_state () =
  let pl = mk_pool () in
  let e, ne, af, d = Pool.counts pl in
  check ci "all empty initially" 8 e;
  check ci "nonempty" 0 ne;
  check ci "almost" 0 af;
  check ci "deferred" 0 d;
  check cb "terminated when untouched" true (Pool.terminated pl)

let test_get_output_prefers_empty () =
  let pl = mk_pool () in
  match Pool.get_output pl with
  | Some p ->
      check cb "got empty packet" true (Packet.is_empty p);
      check cb "no longer terminated (packet held)" false (Pool.terminated pl)
  | None -> Alcotest.fail "no output packet"

let test_no_input_when_all_empty () =
  let pl = mk_pool () in
  check cb "no input available" true (Pool.get_input pl = None)

let test_put_classifies () =
  let pl = mk_pool ~capacity:10 () in
  let take () =
    match Pool.get_output pl with Some p -> p | None -> Alcotest.fail "out"
  in
  let p1 = take () and p2 = take () and p3 = take () in
  (* p1 empty, p2 30% (nonempty), p3 60% (almost full) *)
  for _ = 1 to 3 do
    ignore (Pool.push pl p2 1)
  done;
  for _ = 1 to 6 do
    ignore (Pool.push pl p3 1)
  done;
  Pool.put pl p1;
  Pool.put pl p2;
  Pool.put pl p3;
  let e, ne, af, _ = Pool.counts pl in
  check ci "empties" 6 e;
  check ci "nonempty" 1 ne;
  check ci "almost full" 1 af

let test_get_input_prefers_fullest () =
  let pl = mk_pool ~capacity:10 () in
  let take () =
    match Pool.get_output pl with Some p -> p | None -> Alcotest.fail "out"
  in
  let half = take () and full = take () in
  ignore (Pool.push pl half 1);
  for _ = 1 to 9 do
    ignore (Pool.push pl full 2)
  done;
  Pool.put pl half;
  Pool.put pl full;
  match Pool.get_input pl with
  | Some p -> check ci "fullest first" 9 (Packet.count p)
  | None -> Alcotest.fail "no input"

let test_termination_counter () =
  let pl = mk_pool () in
  let p = match Pool.get_output pl with Some p -> p | None -> assert false in
  check cb "not terminated while held" false (Pool.terminated pl);
  ignore (Pool.push pl p 1);
  Pool.put pl p;
  check cb "not terminated with work" false (Pool.terminated pl);
  (match Pool.get_input pl with
  | Some p ->
      ignore (Pool.pop pl p);
      Pool.put pl p
  | None -> Alcotest.fail "input");
  check cb "terminated after drain" true (Pool.terminated pl)

let test_deferred_pool () =
  let pl = mk_pool () in
  let p = match Pool.get_output pl with Some p -> p | None -> assert false in
  ignore (Pool.push pl p 42);
  Pool.put_deferred pl p;
  check ci "deferred count" 1 (Pool.deferred_count pl);
  check cb "deferred packets block termination" false (Pool.terminated pl);
  check cb "deferred not served as input" true (Pool.get_input pl = None);
  let moved = Pool.recycle_deferred pl in
  check ci "recycled" 1 moved;
  check ci "deferred empty" 0 (Pool.deferred_count pl);
  match Pool.get_input pl with
  | Some p' -> check ci "work available again" 42
      (match Pool.pop pl p' with Some v -> v | None -> -1)
  | None -> Alcotest.fail "recycled packet not offered"

let test_put_fences_nonempty () =
  let pl = mk_pool () in
  let m = Pool.machine pl in
  let p = match Pool.get_output pl with Some p -> p | None -> assert false in
  Pool.put pl p;
  check ci "empty packet returns without fence" 0
    (Fence.get m.Machine.fences Fence.Packet_return);
  let p = match Pool.get_output pl with Some p -> p | None -> assert false in
  ignore (Pool.push pl p 1);
  Pool.put pl p;
  check ci "non-empty packet fenced on return" 1
    (Fence.get m.Machine.fences Fence.Packet_return)

let test_fence_on_put_disabled () =
  let pl = mk_pool ~fence_on_put:false () in
  let m = Pool.machine pl in
  let p = match Pool.get_output pl with Some p -> p | None -> assert false in
  ignore (Pool.push pl p 1);
  Pool.put pl p;
  check ci "no fence when disabled" 0
    (Fence.get m.Machine.fences Fence.Packet_return)

let test_naive_mark_fence () =
  let pl = mk_pool ~naive_mark_fence:true () in
  let m = Pool.machine pl in
  let p = match Pool.get_output pl with Some p -> p | None -> assert false in
  for i = 1 to 5 do
    ignore (Pool.push pl p i)
  done;
  check ci "fence per push" 5 (Fence.get m.Machine.fences Fence.Naive_mark)

let test_watermarks () =
  let pl = mk_pool () in
  let ps =
    List.init 3 (fun _ ->
        match Pool.get_output pl with Some p -> p | None -> assert false)
  in
  check ci "in_use" 3 (Pool.in_use pl);
  check ci "hw in_use" 3 (Pool.max_in_use pl);
  (* leave the first packet empty so it returns to the Empty sub-pool *)
  List.iteri
    (fun i p ->
      for _ = 1 to i do
        ignore (Pool.push pl p 9)
      done)
    ps;
  check ci "entries" 3 (Pool.entries pl);
  check ci "hw entries" 3 (Pool.max_entries pl);
  List.iter (fun p -> Pool.put pl p) ps;
  (* the empty one went back to the Empty sub-pool; two hold work *)
  check ci "in_use drops to the packets holding work" 2 (Pool.in_use pl);
  check ci "hw sticks" 3 (Pool.max_in_use pl)

let test_cas_accounting () =
  let pl = mk_pool () in
  let m = Pool.machine pl in
  let before = m.Machine.cas_ops in
  let p = match Pool.get_output pl with Some p -> p | None -> assert false in
  Pool.put pl p;
  (* one get + one put, two CAS each (list head + counter) *)
  check ci "4 CAS for get+put" (before + 4) m.Machine.cas_ops;
  check ci "ops counted" 1 (Pool.get_ops pl)

let test_get_output_falls_back () =
  (* When only almost-full (but not full) packets remain, get_output
     still returns one. *)
  let pl = mk_pool ~n:2 ~capacity:10 () in
  let a = match Pool.get_output pl with Some p -> p | None -> assert false in
  let b = match Pool.get_output pl with Some p -> p | None -> assert false in
  for _ = 1 to 7 do
    ignore (Pool.push pl a 1);
    ignore (Pool.push pl b 1)
  done;
  Pool.put pl a;
  Pool.put pl b;
  (match Pool.get_output pl with
  | Some p -> check cb "70% packet served as output" true (not (Packet.is_full p))
  | None -> Alcotest.fail "expected fallback output");
  (* totally full packets are not served as output *)
  let pl2 = mk_pool ~n:2 ~capacity:4 () in
  let c = match Pool.get_output pl2 with Some p -> p | None -> assert false in
  let d = match Pool.get_output pl2 with Some p -> p | None -> assert false in
  for _ = 1 to 4 do
    ignore (Pool.push pl2 c 1);
    ignore (Pool.push pl2 d 1)
  done;
  Pool.put pl2 c;
  Pool.put pl2 d;
  check cb "full packets rejected as output" true (Pool.get_output pl2 = None)

(* Property: counters always equal list lengths; total packets conserved. *)
let pool_conservation =
  QCheck.Test.make ~name:"pool conserves packets across random ops" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 200) (int_bound 5))
    (fun ops ->
      let pl = mk_pool ~n:6 ~capacity:8 () in
      let held = ref [] in
      List.iter
        (fun op ->
          match op with
          | 0 -> (
              match Pool.get_input pl with
              | Some p -> held := p :: !held
              | None -> ())
          | 1 -> (
              match Pool.get_output pl with
              | Some p -> held := p :: !held
              | None -> ())
          | 2 -> (
              match !held with
              | p :: rest ->
                  held := rest;
                  Pool.put pl p
              | [] -> ())
          | 3 -> (
              match !held with
              | p :: rest ->
                  held := rest;
                  Pool.put_deferred pl p
              | [] -> ())
          | 4 -> (
              match !held with
              | p :: _ -> ignore (Pool.push pl p 7)
              | [] -> ())
          | _ -> ignore (Pool.recycle_deferred pl))
        ops;
      let e, ne, af, d = Pool.counts pl in
      e + ne + af + d + List.length !held = Pool.total pl)

let () =
  Alcotest.run "packets"
    [
      ( "packet",
        [
          Alcotest.test_case "lifo" `Quick test_packet_lifo;
          Alcotest.test_case "capacity" `Quick test_packet_capacity;
          Alcotest.test_case "transfer" `Quick test_packet_transfer;
          Alcotest.test_case "iter" `Quick test_packet_iter;
        ] );
      ( "pool",
        [
          Alcotest.test_case "initial state" `Quick test_pool_initial_state;
          Alcotest.test_case "output prefers empty" `Quick
            test_get_output_prefers_empty;
          Alcotest.test_case "no input when all empty" `Quick
            test_no_input_when_all_empty;
          Alcotest.test_case "put classifies" `Quick test_put_classifies;
          Alcotest.test_case "input prefers fullest" `Quick
            test_get_input_prefers_fullest;
          Alcotest.test_case "termination counter" `Quick
            test_termination_counter;
          Alcotest.test_case "deferred pool" `Quick test_deferred_pool;
          Alcotest.test_case "put fences non-empty" `Quick
            test_put_fences_nonempty;
          Alcotest.test_case "fence_on_put disabled" `Quick
            test_fence_on_put_disabled;
          Alcotest.test_case "naive mark fence" `Quick test_naive_mark_fence;
          Alcotest.test_case "watermarks" `Quick test_watermarks;
          Alcotest.test_case "cas accounting" `Quick test_cas_accounting;
          Alcotest.test_case "output fallback" `Quick test_get_output_falls_back;
          QCheck_alcotest.to_alcotest pool_conservation;
        ] );
    ]
