(* The three weak-ordering races of section 5, demonstrated on the
   relaxed-memory simulator.

   Each test has two halves: with the paper's protocol DISABLED the race
   manifests for some seed (stale data observed / object lost); with the
   protocol ENABLED it can never manifest, for any seed.  This is the
   evidence that the fence placements of section 5 are both necessary and
   sufficient in our memory model. *)

module Machine = Cgc_smp.Machine
module Weakmem = Cgc_smp.Weakmem
module Heap = Cgc_heap.Heap
module Arena = Cgc_heap.Arena
module Alloc_bits = Cgc_heap.Alloc_bits
module Card_table = Cgc_heap.Card_table
module Packet = Cgc_packets.Packet
module Pool = Cgc_packets.Pool
module Config = Cgc_core.Config
module Tracer = Cgc_core.Tracer

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

(* -------------------- Race 1: packet hand-off (5.1) -------------------- *)

(* Producer on CPU 1 fills a packet and returns it to the pool; consumer
   on CPU 2 takes it and reads the entries.  Without the producer-side
   fence the consumer can read the packet slots' stale previous contents. *)
let packet_handoff ~fenced ~seed =
  let m, _clock, cpu = Machine.testing_multi ~mode:Weakmem.Relaxed ~seed () in
  let pl = Pool.create ~fence_on_put:fenced m ~n_packets:4 ~capacity:8 in
  cpu := 1;
  let p = match Pool.get_output pl with Some p -> p | None -> assert false in
  for i = 1 to 5 do
    ignore (Pool.push pl p (100 + i))
  done;
  Pool.put pl p;
  cpu := 2;
  let q = match Pool.get_input pl with Some q -> q | None -> assert false in
  let stale = ref false in
  let rec drain () =
    match Pool.pop pl q with
    | Some v ->
        if v < 101 || v > 105 then stale := true;
        drain ()
    | None -> ()
  in
  drain ();
  !stale

let test_race1_unfenced_fails () =
  let observed = ref false in
  for seed = 1 to 100 do
    if packet_handoff ~fenced:false ~seed then observed := true
  done;
  check cb "stale packet contents observable without the 5.1 fence" true
    !observed

let test_race1_fenced_safe () =
  for seed = 1 to 100 do
    if packet_handoff ~fenced:true ~seed then
      Alcotest.failf "stale read despite fence (seed %d)" seed
  done

(* --------------- Race 2: tracing a new object (5.2) --------------- *)

(* A mutator on CPU 1 allocates and initialises an object; a tracer on
   CPU 2 follows a reference to it.  Without the allocation-bit protocol
   the tracer reads the object's pre-allocation garbage. *)
let trace_fresh_object ~protocol ~seed =
  let m, _clock, cpu = Machine.testing_multi ~mode:Weakmem.Relaxed ~seed () in
  let heap = Heap.create m ~nslots:4096 in
  let pool = Pool.create m ~n_packets:8 ~capacity:16 in
  let cfg = { Config.default with Config.defer_protocol = protocol } in
  let tracer = Tracer.create cfg heap pool in
  (* Pre-existing garbage: CPU 2 once wrote junk over the region the new
     object will occupy (freed memory keeps old contents). *)
  cpu := 2;
  for i = 200 to 220 do
    Arena.write_slot (Heap.arena heap) i 0xDEAD
  done;
  Weakmem.fence m.Machine.wm ~cpu:2 ~now:0;
  (* CPU 1: allocate at 200 via a cache carved there, initialise it. *)
  cpu := 1;
  let parent =
    match Heap.alloc_large heap ~size:8 ~nrefs:1 ~mark_new:false with
    | Some a -> a
    | None -> assert false
  in
  (* Place a fresh object at 200 manually through the cache-alloc path:
     simplest is to write header+fields as a mutator would (stores are
     buffered on CPU 1), without publishing the allocation bit. *)
  Arena.write_header (Heap.arena heap) 200 ~size:8 ~nrefs:0;
  Arena.ref_set_raw (Heap.arena heap) parent 0 200;
  (* Let time pass so that SOME of CPU 1's stores drain, in random order:
     the interesting interleavings are the ones where the parent's
     reference store has drained but the child's header store has not. *)
  Machine.charge m 2_500;
  Machine.flush m;
  Weakmem.commit_due m.Machine.wm ~now:(Machine.now m);
  (* CPU 2: trace the parent. *)
  cpu := 2;
  let s = Tracer.new_session tracer in
  Tracer.push_obj tracer s parent;
  let rec go () = if Tracer.trace_until tracer s ~budget:max_int > 0 then go () in
  go ();
  Tracer.release tracer s;
  Tracer.corruptions tracer > 0

let test_race2_unprotected_fails () =
  let observed = ref false in
  for seed = 1 to 200 do
    if trace_fresh_object ~protocol:false ~seed then observed := true
  done;
  check cb "tracer reads uninitialised object without the 5.2 protocol" true
    !observed

let test_race2_protected_safe () =
  for seed = 1 to 200 do
    if trace_fresh_object ~protocol:true ~seed then
      Alcotest.failf "corruption despite allocation-bit protocol (seed %d)"
        seed
  done

let test_race2_publication_makes_traceable () =
  (* With the protocol, the deferred object is traced once its allocation
     bits are published behind the mutator's batched fence. *)
  let m, _clock, cpu = Machine.testing_multi ~mode:Weakmem.Relaxed ~seed:7 () in
  let heap = Heap.create m ~nslots:4096 in
  let pool = Pool.create m ~n_packets:8 ~capacity:16 in
  let tracer = Tracer.create Config.default heap pool in
  cpu := 1;
  let parent =
    match Heap.alloc_large heap ~size:8 ~nrefs:1 ~mark_new:false with
    | Some a -> a
    | None -> assert false
  in
  let cache = Heap.new_cache () in
  ignore (Heap.refill_cache heap cache ~min:8 ~pref:64);
  let child =
    match Heap.cache_alloc heap cache ~size:8 ~nrefs:0 ~mark_new:false with
    | Some a -> a
    | None -> assert false
  in
  Arena.ref_set_raw (Heap.arena heap) parent 0 child;
  Weakmem.fence m.Machine.wm ~cpu:1 ~now:0;
  (* alloc bit for child is NOT yet set: cache not retired *)
  cpu := 2;
  let s = Tracer.new_session tracer in
  Tracer.push_obj tracer s parent;
  let rec go () = if Tracer.trace_until tracer s ~budget:max_int > 0 then go () in
  go ();
  Tracer.release tracer s;
  check ci "child deferred, not traced" 8 (Tracer.marked_slots tracer);
  check ci "no corruption" 0 (Tracer.corruptions tracer);
  (* mutator retires its cache: fence + publish.  The allocation-bit
     stores themselves drain a little later (they are after the fence);
     let simulated time pass so they become visible. *)
  cpu := 1;
  Heap.retire_cache heap cache;
  Machine.charge m 20_000;
  Machine.flush m;
  Weakmem.commit_due m.Machine.wm ~now:(Machine.now m);
  cpu := 2;
  ignore (Pool.recycle_deferred pool);
  let s = Tracer.new_session tracer in
  let rec go () = if Tracer.trace_until tracer s ~budget:max_int > 0 then go () in
  go ();
  Tracer.release tracer s;
  check ci "child traced after publication" 16 (Tracer.marked_slots tracer);
  check ci "still no corruption" 0 (Tracer.corruptions tracer)

(* ----------------- Race 3: cleaning dirty cards (5.3) ----------------- *)

(* A mutator on CPU 1 stores a reference to unmarked O2 into marked O1 and
   then dirties O1's card.  The card-dirtying store can become visible
   before the reference store.  A cleaner that sees the dirty card, clears
   it and rescans O1 without forcing the mutator to fence misses O2. *)
let card_cleaning ~force_fence ~seed =
  let m, _clock, cpu = Machine.testing_multi ~mode:Weakmem.Relaxed ~seed () in
  let heap = Heap.create m ~nslots:4096 in
  cpu := 1;
  let o1 =
    match Heap.alloc_large heap ~size:8 ~nrefs:1 ~mark_new:false with
    | Some a -> a
    | None -> assert false
  in
  let o2 =
    match Heap.alloc_large heap ~size:8 ~nrefs:0 ~mark_new:false with
    | Some a -> a
    | None -> assert false
  in
  Weakmem.fence m.Machine.wm ~cpu:1 ~now:(Machine.now m);
  ignore (Heap.mark_test_and_set heap o1);
  (* o1 was already traced (before the store).  Now the racing pair: *)
  Arena.ref_set_raw (Heap.arena heap) o1 0 o2;
  Card_table.dirty (Heap.cards heap) (Arena.card_of_addr o1);
  (* Time passes; stores drain in random order. *)
  Machine.charge m 3_000;
  Machine.flush m;
  Weakmem.commit_due m.Machine.wm ~now:(Machine.now m);
  (* CPU 2 runs a cleaning pass. *)
  cpu := 2;
  let registered = Card_table.snapshot (Heap.cards heap) in
  if force_fence then
    (* step 2 of the protocol: force the mutator to fence *)
    Weakmem.fence m.Machine.wm ~cpu:1 ~now:(Machine.now m);
  let found_o2 = ref false in
  List.iter
    (fun card ->
      Heap.iter_marked_on_card heap card (fun addr ->
          let r = Arena.ref_get (Heap.arena heap) addr 0 in
          if r = o2 then found_o2 := true))
    registered;
  (* The race fired iff the cleaner consumed the dirty card but missed the
     reference.  (If the card itself was still masked the cleaner simply
     does not clean it yet — that is safe, a later pass will.) *)
  registered <> [] && not !found_o2

let test_race3_unprotected_fails () =
  let observed = ref false in
  for seed = 1 to 300 do
    if card_cleaning ~force_fence:false ~seed then observed := true
  done;
  check cb "reference missed without the snapshot protocol's fence" true
    !observed

let test_race3_protected_safe () =
  for seed = 1 to 300 do
    if card_cleaning ~force_fence:true ~seed then
      Alcotest.failf "reference missed despite forced fence (seed %d)" seed
  done

(* ------------- End-to-end: full VM under relaxed memory ------------- *)

let test_vm_relaxed_end_to_end () =
  (* The full collector with all protocols enabled, on relaxed memory:
     several GC cycles must complete with an intact heap and no
     corruptions detected by the tracer. *)
  let vm =
    Cgc_runtime.Vm.create
      (Cgc_runtime.Vm.config ~heap_mb:8.0 ~ncpus:4 ~wm_mode:Weakmem.Relaxed ())
  in
  for i = 1 to 4 do
    Cgc_runtime.Vm.spawn_mutator vm
      ~name:(Printf.sprintf "w%d" i)
      (fun m ->
        let module M = Cgc_runtime.Mutator in
        let resident =
          Cgc_workloads.Objgraph.build_list m ~len:1500 ~node_slots:12
        in
        M.root_set m 0 resident;
        while not (M.stopped m) do
          let o = M.alloc m ~nrefs:1 ~size:8 in
          M.root_set m 1 o;
          let old = M.root_get m 0 in
          M.root_set m 2 old;
          let tail = M.get_ref m old 0 in
          M.root_set m 3 tail;
          let fresh = M.alloc m ~nrefs:1 ~size:12 in
          M.set_ref m fresh 0 tail;
          M.root_set m 0 fresh;
          M.root_set m 2 0;
          M.root_set m 3 0;
          M.work m 8_000;
          M.tx_done m
        done)
  done;
  Cgc_runtime.Vm.run vm ~ms:600.0;
  let coll = Cgc_runtime.Vm.collector vm in
  let st = Cgc_runtime.Vm.gc_stats vm in
  check cb "collected at least twice" true (st.Cgc_core.Gstats.cycles >= 2);
  check ci "no tracer corruptions" 0
    (Tracer.corruptions (Cgc_core.Collector.tracer coll));
  check (Alcotest.list (Alcotest.pair ci ci)) "heap intact" []
    (Cgc_core.Collector.check_reachable coll)

let () =
  Alcotest.run "races"
    [
      ( "race1-packet-handoff",
        [
          Alcotest.test_case "unfenced: stale reads occur" `Quick
            test_race1_unfenced_fails;
          Alcotest.test_case "fenced: always safe" `Quick test_race1_fenced_safe;
        ] );
      ( "race2-fresh-object",
        [
          Alcotest.test_case "unprotected: garbage traced" `Quick
            test_race2_unprotected_fails;
          Alcotest.test_case "protected: always safe" `Quick
            test_race2_protected_safe;
          Alcotest.test_case "publication enables tracing" `Quick
            test_race2_publication_makes_traceable;
        ] );
      ( "race3-card-cleaning",
        [
          Alcotest.test_case "no forced fence: reference missed" `Quick
            test_race3_unprotected_fails;
          Alcotest.test_case "forced fence: always safe" `Quick
            test_race3_protected_safe;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "full VM on relaxed memory" `Slow
            test_vm_relaxed_end_to_end;
        ] );
    ]
