(* Direct tests of the card-cleaning machinery: the snapshot pass
   protocol, retracing of marked objects on dirty cards, the
   at-most-once-per-pass property, unsafe-object re-dirtying and the
   pass counters used by termination detection. *)

module Machine = Cgc_smp.Machine
module Heap = Cgc_heap.Heap
module Arena = Cgc_heap.Arena
module Alloc_bits = Cgc_heap.Alloc_bits
module Card_table = Cgc_heap.Card_table
module Pool = Cgc_packets.Pool
module Config = Cgc_core.Config
module Tracer = Cgc_core.Tracer
module Card_clean = Cgc_core.Card_clean

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

type env = {
  heap : Heap.t;
  pool : Pool.t;
  tracer : Tracer.t;
  cleaner : Card_clean.t;
}

let mk () =
  let mach = Machine.testing () in
  let heap = Heap.create mach ~nslots:65536 in
  let pool = Pool.create mach ~n_packets:16 ~capacity:16 in
  let tracer = Tracer.create Config.default heap pool in
  { heap; pool; tracer; cleaner = Card_clean.create heap }

let obj env ~nrefs ~size =
  match Heap.alloc_large env.heap ~size ~nrefs ~mark_new:false with
  | Some a -> a
  | None -> Alcotest.fail "alloc failed"

let drain env =
  let s = Tracer.new_session env.tracer in
  let rec go () =
    if Tracer.trace_until env.tracer s ~budget:max_int > 0 then go ()
  in
  go ();
  Tracer.release env.tracer s

let test_pass_lifecycle () =
  let env = mk () in
  check ci "no passes initially" 0 (Card_clean.passes_started env.cleaner);
  Card_clean.start_pass env.cleaner ~force_fences:(fun () -> ());
  check ci "pass counted" 1 (Card_clean.passes_started env.cleaner);
  check ci "clean table registers nothing" 0 (Card_clean.queue_len env.cleaner);
  Card_clean.reset_cycle env.cleaner;
  check ci "reset" 0 (Card_clean.passes_started env.cleaner)

let test_retraces_marked_on_dirty_card () =
  let env = mk () in
  (* o1 marked and already traced; then a ref to unmarked o2 is stored
     into it and its card dirtied — the cleaning pass must find o2. *)
  let o1 = obj env ~nrefs:1 ~size:8 in
  let o2 = obj env ~nrefs:0 ~size:8 in
  ignore (Heap.mark_test_and_set env.heap o1);
  Arena.ref_set_raw (Heap.arena env.heap) o1 0 o2;
  Card_table.dirty (Heap.cards env.heap) (Arena.card_of_addr o1);
  Card_clean.start_pass env.cleaner ~force_fences:(fun () -> ());
  check ci "one card registered" 1 (Card_clean.queue_len env.cleaner);
  let s = Tracer.new_session env.tracer in
  (match Card_clean.clean_one env.cleaner env.tracer s ~stw:false with
  | Some n -> check cb "rescanned something" true (n >= 8)
  | None -> Alcotest.fail "no card to clean");
  Tracer.release env.tracer s;
  drain env;
  check cb "o2 marked via card cleaning" true (Heap.is_marked env.heap o2);
  check ci "concurrent counter" 1 (Card_clean.conc_cleaned env.cleaner);
  check ci "queue drained" 0 (Card_clean.queue_len env.cleaner)

let test_unmarked_objects_not_retraced () =
  let env = mk () in
  (* a dirty card whose objects are all unmarked produces no work *)
  let o1 = obj env ~nrefs:1 ~size:8 in
  let o2 = obj env ~nrefs:0 ~size:8 in
  Arena.ref_set_raw (Heap.arena env.heap) o1 0 o2;
  Card_table.dirty (Heap.cards env.heap) (Arena.card_of_addr o1);
  Card_clean.start_pass env.cleaner ~force_fences:(fun () -> ());
  let s = Tracer.new_session env.tracer in
  (match Card_clean.clean_one env.cleaner env.tracer s ~stw:false with
  | Some n -> check ci "nothing rescanned" 0 n
  | None -> Alcotest.fail "card expected");
  Tracer.release env.tracer s;
  check cb "o2 stays unmarked" false (Heap.is_marked env.heap o2)

let test_card_cleaned_once_per_pass () =
  let env = mk () in
  let o1 = obj env ~nrefs:0 ~size:8 in
  ignore (Heap.mark_test_and_set env.heap o1);
  Card_table.dirty (Heap.cards env.heap) (Arena.card_of_addr o1);
  Card_clean.start_pass env.cleaner ~force_fences:(fun () -> ());
  let s = Tracer.new_session env.tracer in
  ignore (Card_clean.clean_one env.cleaner env.tracer s ~stw:false);
  check cb "no second cleaning of the same card" true
    (Card_clean.clean_one env.cleaner env.tracer s ~stw:false = None);
  Tracer.release env.tracer s;
  (* a second pass would re-register only if the card is dirty again *)
  Card_clean.start_pass env.cleaner ~force_fences:(fun () -> ());
  check ci "clean card not re-registered" 0 (Card_clean.queue_len env.cleaner)

let test_redirty_again_recleaned () =
  let env = mk () in
  let o1 = obj env ~nrefs:1 ~size:8 in
  ignore (Heap.mark_test_and_set env.heap o1);
  Card_table.dirty (Heap.cards env.heap) (Arena.card_of_addr o1);
  Card_clean.start_pass env.cleaner ~force_fences:(fun () -> ());
  let s = Tracer.new_session env.tracer in
  ignore (Card_clean.clean_one env.cleaner env.tracer s ~stw:false);
  (* mutator dirties it again after cleaning *)
  let o2 = obj env ~nrefs:0 ~size:8 in
  Arena.ref_set_raw (Heap.arena env.heap) o1 0 o2;
  Card_table.dirty (Heap.cards env.heap) (Arena.card_of_addr o1);
  Card_clean.start_pass env.cleaner ~force_fences:(fun () -> ());
  check ci "re-dirtied card registered by next pass" 1
    (Card_clean.queue_len env.cleaner);
  (match Card_clean.clean_one env.cleaner env.tracer s ~stw:true with
  | Some _ -> ()
  | None -> Alcotest.fail "expected card");
  Tracer.release env.tracer s;
  drain env;
  check cb "late store caught by the later pass" true
    (Heap.is_marked env.heap o2);
  check ci "stw counter" 1 (Card_clean.stw_cleaned env.cleaner)

let test_unsafe_object_redirties_card () =
  let env = mk () in
  (* a MARKED object whose allocation bit is not yet published cannot be
     rescanned; the card must come back dirty for a later pass *)
  let unpub = 30_000 in
  Arena.write_header (Heap.arena env.heap) unpub ~size:8 ~nrefs:0;
  ignore (Heap.mark_test_and_set env.heap unpub);
  Card_table.dirty (Heap.cards env.heap) (Arena.card_of_addr unpub);
  Card_clean.start_pass env.cleaner ~force_fences:(fun () -> ());
  let s = Tracer.new_session env.tracer in
  ignore (Card_clean.clean_one env.cleaner env.tracer s ~stw:false);
  Tracer.release env.tracer s;
  check ci "card re-dirtied" 1 (Card_clean.redirtied env.cleaner);
  check cb "dirty again in the table" true
    (Card_table.is_dirty (Heap.cards env.heap) (Arena.card_of_addr unpub));
  (* after publication the next pass handles it *)
  Alloc_bits.set (Heap.alloc_bits env.heap) unpub;
  Card_clean.start_pass env.cleaner ~force_fences:(fun () -> ());
  let s = Tracer.new_session env.tracer in
  (match Card_clean.clean_one env.cleaner env.tracer s ~stw:false with
  | Some n -> check ci "rescanned after publication" 8 n
  | None -> Alcotest.fail "card expected");
  Tracer.release env.tracer s

let test_object_spanning_cards () =
  let env = mk () in
  (* a large marked object spans several cards; dirtying a card in its
     middle must retrace it *)
  let big = obj env ~nrefs:1 ~size:300 in
  let child = obj env ~nrefs:0 ~size:8 in
  ignore (Heap.mark_test_and_set env.heap big);
  Arena.ref_set_raw (Heap.arena env.heap) big 0 child;
  let mid_card = Arena.card_of_addr (big + 150) in
  Card_table.dirty (Heap.cards env.heap) mid_card;
  Card_clean.start_pass env.cleaner ~force_fences:(fun () -> ());
  let s = Tracer.new_session env.tracer in
  (match Card_clean.clean_one env.cleaner env.tracer s ~stw:false with
  | Some n -> check cb "spanning object rescanned" true (n >= 300)
  | None -> Alcotest.fail "card expected");
  Tracer.release env.tracer s;
  drain env;
  check cb "child found through spanning object" true
    (Heap.is_marked env.heap child)

let test_force_fences_called () =
  let env = mk () in
  Card_table.dirty (Heap.cards env.heap) 3;
  let called = ref false in
  Card_clean.start_pass env.cleaner ~force_fences:(fun () -> called := true);
  check cb "step-2 callback invoked" true !called

let () =
  Alcotest.run "cardclean"
    [
      ( "card-clean",
        [
          Alcotest.test_case "pass lifecycle" `Quick test_pass_lifecycle;
          Alcotest.test_case "retraces marked on dirty card" `Quick
            test_retraces_marked_on_dirty_card;
          Alcotest.test_case "unmarked not retraced" `Quick
            test_unmarked_objects_not_retraced;
          Alcotest.test_case "cleaned once per pass" `Quick
            test_card_cleaned_once_per_pass;
          Alcotest.test_case "re-dirty recleaned" `Quick
            test_redirty_again_recleaned;
          Alcotest.test_case "unsafe object re-dirties" `Quick
            test_unsafe_object_redirties_card;
          Alcotest.test_case "object spanning cards" `Quick
            test_object_spanning_cards;
          Alcotest.test_case "force fences callback" `Quick
            test_force_fences_called;
        ] );
    ]
