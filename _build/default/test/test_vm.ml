(* Tests for the Vm facade: configuration, measurement windows,
   throughput accounting, report rendering, and a qcheck property that
   packet-based tracing marks exactly the reachable set of random object
   graphs. *)

module Vm = Cgc_runtime.Vm
module Mutator = Cgc_runtime.Mutator
module Collector = Cgc_core.Collector
module Config = Cgc_core.Config
module Gstats = Cgc_core.Gstats
module Stats = Cgc_util.Stats
module Machine = Cgc_smp.Machine
module Heap = Cgc_heap.Heap
module Arena = Cgc_heap.Arena
module Pool = Cgc_packets.Pool
module Tracer = Cgc_core.Tracer

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

let spin_worker m =
  while not (Mutator.stopped m) do
    let o = Mutator.alloc m ~nrefs:1 ~size:8 in
    Mutator.root_set m 0 o;
    Mutator.work m 5_000;
    Mutator.tx_done m
  done

let test_defaults () =
  let cfg = Vm.config () in
  check (Alcotest.float 0.001) "heap" 64.0 cfg.Vm.heap_mb;
  check ci "cpus" 4 cfg.Vm.ncpus;
  check cb "cgc default" true (cfg.Vm.gc.Config.mode = Config.Cgc)

let test_run_duration () =
  let vm = Vm.create (Vm.config ~heap_mb:4.0 ~ncpus:2 ()) in
  Vm.spawn_mutator vm ~name:"w" spin_worker;
  Vm.run vm ~ms:100.0;
  check cb "clock advanced ~100ms" true
    (Vm.now_ms vm >= 99.0 && Vm.now_ms vm < 110.0)

let test_throughput_accounting () =
  let vm = Vm.create (Vm.config ~heap_mb:4.0 ~ncpus:1 ()) in
  Vm.spawn_mutator vm ~name:"w" spin_worker;
  Vm.run vm ~ms:200.0;
  let tx = Vm.total_transactions vm in
  check cb "transactions counted" true (tx > 10);
  check cb "throughput consistent" true
    (abs_float (Vm.throughput vm -. (float_of_int tx /. 0.2)) < 1.0)

let test_run_measured_resets () =
  let vm = Vm.create (Vm.config ~heap_mb:4.0 ~ncpus:2 ()) in
  Vm.spawn_mutator vm ~name:"w" spin_worker;
  Vm.run vm ~ms:100.0;
  let tx_warm = Vm.total_transactions vm in
  check cb "warm-up transacted" true (tx_warm > 0);
  Vm.reset_stats vm;
  check ci "tx reset" 0 (Vm.total_transactions vm);
  check ci "fences reset" 0
    (Cgc_smp.Fence.total (Vm.machine vm).Machine.fences);
  Vm.run vm ~ms:100.0;
  check cb "threads continued after reset" true (Vm.total_transactions vm > 0)

let test_multiple_run_windows_continuous () =
  let vm = Vm.create (Vm.config ~heap_mb:4.0 ~ncpus:1 ()) in
  Vm.spawn_mutator vm ~name:"w" spin_worker;
  Vm.run vm ~ms:50.0;
  let t1 = Vm.now_ms vm in
  Vm.run vm ~ms:50.0;
  check cb "second window continues the clock" true (Vm.now_ms vm > t1 +. 40.0)

let test_report_renders () =
  let vm = Vm.create (Vm.config ~heap_mb:4.0 ~ncpus:1 ()) in
  Vm.spawn_mutator vm ~name:"w" spin_worker;
  Vm.run vm ~ms:50.0;
  (* smoke: must not raise *)
  Vm.print_report vm

let test_seed_changes_schedule () =
  let run seed =
    let vm = Vm.create (Vm.config ~heap_mb:4.0 ~ncpus:2 ~seed ()) in
    Vm.spawn_mutator vm ~name:"w" (fun m ->
        let rng = Mutator.rng m in
        while not (Mutator.stopped m) do
          let o = Mutator.alloc m ~nrefs:0 ~size:(4 + Cgc_util.Prng.int rng 12) in
          Mutator.root_set m 0 o;
          Mutator.work m 3_000;
          Mutator.tx_done m
        done);
    Vm.run vm ~ms:150.0;
    Vm.total_transactions vm
  in
  check cb "different seeds give different runs" true (run 1 <> run 99)

(* Property: for random object graphs, packet tracing marks exactly the
   set reachable from the chosen roots. *)
let trace_random_graph =
  QCheck.Test.make ~name:"tracing marks exactly the reachable set" ~count:60
    QCheck.(
      triple (int_range 2 60) (* nodes *)
        (list_of_size (Gen.int_range 0 120) (pair (int_bound 59) (int_bound 59)))
        (list_of_size (Gen.int_range 1 5) (int_bound 59)))
    (fun (n, edges, root_idx) ->
      let mach = Machine.testing () in
      let heap = Heap.create mach ~nslots:65536 in
      let pool = Pool.create mach ~n_packets:8 ~capacity:8 in
      let tracer = Tracer.create Config.default heap pool in
      let nrefs = 6 in
      let nodes =
        Array.init n (fun _ ->
            match Heap.alloc_large heap ~size:8 ~nrefs ~mark_new:false with
            | Some a -> a
            | None -> failwith "heap full")
      in
      let slot_used = Array.make n 0 in
      let adj = Array.make n [] in
      List.iter
        (fun (a, b) ->
          let a = a mod n and b = b mod n in
          if slot_used.(a) < nrefs then begin
            Arena.ref_set_raw (Heap.arena heap) nodes.(a) slot_used.(a)
              nodes.(b);
            slot_used.(a) <- slot_used.(a) + 1;
            adj.(a) <- b :: adj.(a)
          end)
        edges;
      let roots = List.map (fun i -> i mod n) root_idx in
      (* reference reachability *)
      let reach = Array.make n false in
      let rec visit i =
        if not reach.(i) then begin
          reach.(i) <- true;
          List.iter visit adj.(i)
        end
      in
      List.iter visit roots;
      (* trace *)
      let s = Tracer.new_session tracer in
      List.iter (fun i -> Tracer.push_obj tracer s nodes.(i)) roots;
      let rec go () =
        if Tracer.trace_until tracer s ~budget:max_int > 0 then go ()
      in
      go ();
      Tracer.release tracer s;
      let rec settle () =
        if Pool.deferred_count pool > 0 && Pool.recycle_deferred pool > 0 then begin
          let s = Tracer.new_session tracer in
          let rec go () =
            if Tracer.trace_until tracer s ~budget:max_int > 0 then go ()
          in
          go ();
          Tracer.release tracer s;
          settle ()
        end
      in
      settle ();
      let ok = ref true in
      Array.iteri
        (fun i a -> if Heap.is_marked heap a <> reach.(i) then ok := false)
        nodes;
      !ok && Pool.terminated pool)

let () =
  Alcotest.run "vm"
    [
      ( "vm",
        [
          Alcotest.test_case "config defaults" `Quick test_defaults;
          Alcotest.test_case "run duration" `Quick test_run_duration;
          Alcotest.test_case "throughput accounting" `Quick
            test_throughput_accounting;
          Alcotest.test_case "run_measured resets" `Quick
            test_run_measured_resets;
          Alcotest.test_case "continuous windows" `Quick
            test_multiple_run_windows_continuous;
          Alcotest.test_case "report renders" `Quick test_report_renders;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_schedule;
          QCheck_alcotest.to_alcotest trace_random_graph;
        ] );
    ]
