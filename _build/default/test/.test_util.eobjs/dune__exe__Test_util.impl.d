test/test_util.ml: Alcotest Array Cgc_util List Printf QCheck QCheck_alcotest String
