test/test_fuzz.ml: Alcotest Cgc_core Cgc_heap Cgc_runtime Cgc_smp Cgc_util Cgc_workloads Printf QCheck QCheck_alcotest
