test/test_cardclean.ml: Alcotest Cgc_core Cgc_heap Cgc_packets Cgc_smp
