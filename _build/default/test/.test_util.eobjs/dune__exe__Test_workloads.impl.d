test/test_workloads.ml: Alcotest Cgc_core Cgc_runtime Cgc_sim Cgc_util Cgc_workloads Printf
