test/test_vm.ml: Alcotest Array Cgc_core Cgc_heap Cgc_packets Cgc_runtime Cgc_smp Cgc_util Gen List QCheck QCheck_alcotest
