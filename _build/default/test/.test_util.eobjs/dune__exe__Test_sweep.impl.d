test/test_sweep.ml: Alcotest Array Cgc_core Cgc_heap Cgc_smp Gen List QCheck QCheck_alcotest
