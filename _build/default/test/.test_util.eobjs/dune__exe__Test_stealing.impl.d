test/test_stealing.ml: Alcotest Cgc_core Cgc_heap Cgc_runtime Cgc_sim Cgc_smp Cgc_util Cgc_workloads List
