test/test_packets.ml: Alcotest Cgc_packets Cgc_smp Gen List QCheck QCheck_alcotest
