test/test_packets.mli:
