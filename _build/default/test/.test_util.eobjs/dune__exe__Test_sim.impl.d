test/test_sim.ml: Alcotest Array Buffer Cgc_sim Printf
