test/test_collector.ml: Alcotest Cgc_core Cgc_heap Cgc_runtime Cgc_smp Cgc_util Cgc_workloads Printf
