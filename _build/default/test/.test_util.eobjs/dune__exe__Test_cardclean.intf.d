test/test_cardclean.mli:
