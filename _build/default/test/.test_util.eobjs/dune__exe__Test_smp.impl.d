test/test_smp.ml: Alcotest Cgc_smp Cgc_util List String
