test/test_heap.ml: Alcotest Array Cgc_heap Cgc_smp Cgc_util Gen Hashtbl List Printf QCheck QCheck_alcotest
