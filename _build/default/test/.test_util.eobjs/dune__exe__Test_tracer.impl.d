test/test_tracer.ml: Alcotest Array Cgc_core Cgc_heap Cgc_packets Cgc_smp List
