test/test_races.ml: Alcotest Cgc_core Cgc_heap Cgc_packets Cgc_runtime Cgc_smp Cgc_workloads List Printf
