test/test_stealing.mli:
