(* Tests for the workload library: object-graph helpers, the transaction
   mix engine and the three benchmark presets. *)

module Vm = Cgc_runtime.Vm
module Mutator = Cgc_runtime.Mutator
module Collector = Cgc_core.Collector
module Config = Cgc_core.Config
module Gstats = Cgc_core.Gstats
module Stats = Cgc_util.Stats
module Objgraph = Cgc_workloads.Objgraph
module Txmix = Cgc_workloads.Txmix
module Specjbb = Cgc_workloads.Specjbb
module Pbob = Cgc_workloads.Pbob
module Javac = Cgc_workloads.Javac

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

let with_mutator ?(heap_mb = 8.0) f =
  let vm = Vm.create (Vm.config ~heap_mb ~ncpus:1 ()) in
  let result = ref None in
  Vm.spawn_mutator vm ~name:"t" (fun m -> result := Some (f vm m));
  Vm.run vm ~ms:60_000.0;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "mutator did not finish"

(* --------------------------- Objgraph --------------------------- *)

let test_build_list () =
  with_mutator (fun _vm m ->
      let head = Objgraph.build_list m ~len:500 ~node_slots:8 in
      Mutator.root_set m 0 head;
      check ci "length" 500 (Objgraph.list_length m head);
      check ci "empty list" 0 (Objgraph.list_length m 0))

let test_build_tree () =
  with_mutator (fun _vm m ->
      let t = Objgraph.build_tree m ~depth:3 ~fanout:3 ~node_slots:6 in
      Mutator.root_set m 0 t;
      (* 1 + 3 + 9 + 27 = 40 *)
      check ci "node count" 40 (Objgraph.count_tree m t))

let test_build_tree_survives_gc () =
  with_mutator ~heap_mb:4.0 (fun vm m ->
      let t = Objgraph.build_tree m ~depth:4 ~fanout:4 ~node_slots:6 in
      Mutator.root_set m 0 t;
      Collector.force_collect (Vm.collector vm);
      check ci "tree intact after GC" 341 (Objgraph.count_tree m t))

(* --------------------------- Txmix --------------------------- *)

let test_resident_slots_math () =
  let p =
    {
      Specjbb.base_profile with
      Txmix.live_lists = 10;
      list_len = 100;
      node_slots = 6;
      leaf_fanout = 3;
      leaf_slots = 8;
    }
  in
  (* node group = 6 + 3*8 = 30 slots *)
  check ci "resident slots" ((10 * 100 * 30) + 11) (Txmix.resident_slots p)

let test_scale_residency () =
  let p = Specjbb.base_profile in
  let scaled = Txmix.scale_residency p ~target_slots:64_000 in
  let got = Txmix.resident_slots scaled in
  check cb "close to target" true (abs (got - 64_000) < 64_000 / 10)

let test_transactions_preserve_lists () =
  with_mutator ~heap_mb:16.0 (fun _vm m ->
      let p =
        {
          Specjbb.base_profile with
          Txmix.live_lists = 5;
          list_len = 50;
          tx_work = 100;
        }
      in
      (* mirror Txmix.body's setup so we keep access to dir *)
      let dir = Mutator.alloc m ~nrefs:5 ~size:6 in
      Mutator.root_set m 0 dir;
      for i = 0 to 4 do
        let h = Objgraph.build_list m ~len:50 ~node_slots:p.Txmix.node_slots in
        Mutator.set_ref m dir i h
      done;
      for _ = 1 to 2000 do
        Txmix.transaction p m ~dir
      done;
      (* head replacement preserves list length *)
      for i = 0 to 4 do
        check ci
          (Printf.sprintf "list %d length preserved" i)
          50
          (Objgraph.list_length m (Mutator.get_ref m dir i))
      done)

(* --------------------------- Presets --------------------------- *)

let test_specjbb_runs_and_occupies () =
  let vm =
    Specjbb.run ~warehouses:8 ~gc:Config.stw ~heap_mb:16.0 ~ms:600.0 ()
  in
  let st = Vm.gc_stats vm in
  check cb "transactions" true (Vm.total_transactions vm > 100);
  check cb "collections happened" true (st.Gstats.cycles >= 1);
  let occ = Stats.mean st.Gstats.occupancy_end in
  check cb
    (Printf.sprintf "residency near 60%% (got %.0f%%)" (100. *. occ))
    true
    (occ > 0.45 && occ < 0.75);
  check (Alcotest.list (Alcotest.pair ci ci)) "heap intact" []
    (Collector.check_reachable (Vm.collector vm))

let test_specjbb_warehouse_scaling () =
  let vm1 =
    Specjbb.run ~warehouses:1 ~gc:Config.stw ~heap_mb:16.0 ~ms:400.0 ()
  in
  let vm4 =
    Specjbb.run ~warehouses:4 ~gc:Config.stw ~heap_mb:16.0 ~ms:400.0 ()
  in
  check cb "4 warehouses do more work on 4 cpus" true
    (Vm.total_transactions vm4 > 2 * Vm.total_transactions vm1)

let test_pbob_idle_time () =
  (* pBOB thinks; the processors should be largely idle. *)
  let vm =
    Pbob.run ~warehouses:2 ~gc:Config.default ~terminals:5 ~heap_mb:16.0
      ~ms:600.0 ()
  in
  let s = Vm.sched vm in
  let idle = Cgc_sim.Sched.idle_cycles s in
  let busy = Cgc_sim.Sched.busy_cycles s in
  check cb "mostly idle" true (idle > busy);
  check cb "transactions" true (Vm.total_transactions vm > 20);
  check (Alcotest.list (Alcotest.pair ci ci)) "heap intact" []
    (Collector.check_reachable (Vm.collector vm))

let test_pbob_shared_warehouse () =
  let vm =
    Pbob.run ~warehouses:1 ~gc:Config.default ~terminals:4 ~heap_mb:16.0
      ~think_mean:100_000 ~ms:500.0 ()
  in
  (* the warehouse database is published in the globals *)
  let dir = Collector.global_get (Vm.collector vm) 0 in
  check cb "warehouse dir published" true (dir <> 0);
  check (Alcotest.list (Alcotest.pair ci ci)) "heap intact" []
    (Collector.check_reachable (Vm.collector vm))

let test_pbob_too_many_warehouses_rejected () =
  Alcotest.check_raises "rejects > n_globals warehouses"
    (Invalid_argument "Pbob.setup: too many warehouses for the global-roots table")
    (fun () ->
      ignore
        (Pbob.setup ~warehouses:(Collector.n_globals + 1) ~gc:Config.default ()))

let test_javac_runs () =
  let vm = Javac.run ~gc:Config.default ~ms:800.0 () in
  let st = Vm.gc_stats vm in
  check cb "compiled some classes" true (Vm.total_transactions vm > 50);
  check cb "GC happened" true (st.Gstats.cycles >= 1);
  check (Alcotest.list (Alcotest.pair ci ci)) "heap intact" []
    (Collector.check_reachable (Vm.collector vm))

let test_javac_uniprocessor_config () =
  let vm = Javac.setup ~gc:Config.default () in
  check ci "1 cpu" 1 (Cgc_sim.Sched.ncpus (Vm.sched vm));
  check ci "1 background thread" 1
    (Collector.config (Vm.collector vm)).Config.n_background

let () =
  Alcotest.run "workloads"
    [
      ( "objgraph",
        [
          Alcotest.test_case "build_list" `Quick test_build_list;
          Alcotest.test_case "build_tree" `Quick test_build_tree;
          Alcotest.test_case "tree survives GC" `Quick
            test_build_tree_survives_gc;
        ] );
      ( "txmix",
        [
          Alcotest.test_case "resident slots" `Quick test_resident_slots_math;
          Alcotest.test_case "scale residency" `Quick test_scale_residency;
          Alcotest.test_case "transactions preserve lists" `Slow
            test_transactions_preserve_lists;
        ] );
      ( "presets",
        [
          Alcotest.test_case "specjbb occupancy" `Slow
            test_specjbb_runs_and_occupies;
          Alcotest.test_case "specjbb scaling" `Slow
            test_specjbb_warehouse_scaling;
          Alcotest.test_case "pbob idle time" `Slow test_pbob_idle_time;
          Alcotest.test_case "pbob shared warehouse" `Slow
            test_pbob_shared_warehouse;
          Alcotest.test_case "pbob warehouse limit" `Quick
            test_pbob_too_many_warehouses_rejected;
          Alcotest.test_case "javac runs" `Slow test_javac_runs;
          Alcotest.test_case "javac uniprocessor" `Quick
            test_javac_uniprocessor_config;
        ] );
    ]
