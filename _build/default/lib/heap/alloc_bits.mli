(** The allocation bit vector — one bit per 8-byte slot, set at the first
    slot of every valid object.

    It serves two roles from the paper: validating slot values during the
    conservative stack scan, and the batched-fence publication protocol
    of section 5.2 — a mutator sets the bits for a whole retired
    allocation cache {e after} one fence, so a concurrent tracer that sees
    the bit set is guaranteed to see the object's initialised contents.
    Bit accesses therefore go through the weak-memory system. *)

type t

val create : Cgc_smp.Machine.t -> nslots:int -> t

val set : t -> int -> unit
val clear : t -> int -> unit

val is_set : t -> int -> bool
(** As observed by the calling thread (weak-memory aware). *)

val is_set_sc : t -> int -> bool
(** Committed value, bypassing store-buffer masking (tests / sweep). *)

val clear_range : t -> int -> int -> unit
(** Used by sweep when reclaiming a free run. *)

val prev_set : t -> int -> int
(** Committed-state scan backwards for the nearest object start at or
    before the given slot; used by card cleaning to find the object
    spanning a card boundary.  [-1] if none. *)

val next_set : t -> int -> int
(** Committed-state scan forward; [nslots] if none. *)
