module Machine = Cgc_smp.Machine
module Weakmem = Cgc_smp.Weakmem
module Cost = Cgc_smp.Cost

type t = {
  mach : Machine.t;
  bytes : Bytes.t;
  n : int;
  wm_base : int;
}

let create mach ~ncards =
  let wm_base = Weakmem.register mach.Machine.wm ncards in
  { mach; bytes = Bytes.make ncards '\000'; n = ncards; wm_base }

let ncards t = t.n

let get_committed t i = Char.code (Bytes.get t.bytes i)

let read t i =
  let wm = t.mach.Machine.wm in
  match Weakmem.mode wm with
  | Sc -> get_committed t i
  | Relaxed ->
      Weakmem.read wm ~cpu:(Machine.cpu t.mach) ~now:(Machine.now t.mach)
        ~key:(t.wm_base + i) ~current:(get_committed t i)

let write t i v =
  let wm = t.mach.Machine.wm in
  (match Weakmem.mode wm with
  | Sc -> ()
  | Relaxed ->
      Weakmem.store wm ~cpu:(Machine.cpu t.mach) ~now:(Machine.now t.mach)
        ~key:(t.wm_base + i) ~prev:(get_committed t i));
  Bytes.set t.bytes i (Char.chr v)

let dirty t i = write t i 1
let is_dirty t i = read t i <> 0
let clear t i = write t i 0

let clear_all t = Bytes.fill t.bytes 0 t.n '\000'

let dirty_count t =
  let c = ref 0 in
  for i = 0 to t.n - 1 do
    if get_committed t i <> 0 then incr c
  done;
  !c

let snapshot t =
  let acc = ref [] in
  Machine.charge t.mach (t.n * t.mach.Machine.cost.Cost.card_probe);
  for i = t.n - 1 downto 0 do
    if read t i <> 0 then begin
      clear t i;
      acc := i :: !acc
    end
  done;
  !acc
