module Machine = Cgc_smp.Machine
module Weakmem = Cgc_smp.Weakmem
module Bitvec = Cgc_util.Bitvec

type t = { mach : Machine.t; bits : Bitvec.t; wm_base : int }

let create mach ~nslots =
  let wm_base = Weakmem.register mach.Machine.wm nslots in
  { mach; bits = Bitvec.create nslots; wm_base }

let bit b = if b then 1 else 0

let set t i =
  let wm = t.mach.Machine.wm in
  (match Weakmem.mode wm with
  | Sc -> ()
  | Relaxed ->
      Weakmem.store wm ~cpu:(Machine.cpu t.mach) ~now:(Machine.now t.mach)
        ~key:(t.wm_base + i)
        ~prev:(bit (Bitvec.get t.bits i)));
  Bitvec.set t.bits i

let clear t i =
  let wm = t.mach.Machine.wm in
  (match Weakmem.mode wm with
  | Sc -> ()
  | Relaxed ->
      Weakmem.store wm ~cpu:(Machine.cpu t.mach) ~now:(Machine.now t.mach)
        ~key:(t.wm_base + i)
        ~prev:(bit (Bitvec.get t.bits i)));
  Bitvec.clear t.bits i

let is_set t i =
  let wm = t.mach.Machine.wm in
  match Weakmem.mode wm with
  | Sc -> Bitvec.get t.bits i
  | Relaxed ->
      Weakmem.read wm ~cpu:(Machine.cpu t.mach) ~now:(Machine.now t.mach)
        ~key:(t.wm_base + i)
        ~current:(bit (Bitvec.get t.bits i))
      <> 0

let is_set_sc t i = Bitvec.get t.bits i

let clear_range t pos len = Bitvec.clear_range t.bits pos len

let prev_set t i = Bitvec.prev_set t.bits i
let next_set t i = Bitvec.next_set t.bits i
