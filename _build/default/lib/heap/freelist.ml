type chunk = { addr : int; size : int }

let nbins = 30
let min_chunk = 4

type t = {
  bins : chunk list array;
  mutable free : int;
  mutable dark : int;
  mutable count : int;
}

let create () = { bins = Array.make nbins []; free = 0; dark = 0; count = 0 }

let clear t =
  Array.fill t.bins 0 nbins [];
  t.free <- 0;
  t.dark <- 0;
  t.count <- 0

let bin_of_size size =
  (* floor(log2 size), clamped *)
  let rec go s i = if s <= 1 then i else go (s lsr 1) (i + 1) in
  min (nbins - 1) (go size 0)

let add t ~addr ~size =
  if size < min_chunk then t.dark <- t.dark + size
  else begin
    let b = bin_of_size size in
    t.bins.(b) <- { addr; size } :: t.bins.(b);
    t.free <- t.free + size;
    t.count <- t.count + 1
  end

(* Take any chunk of at least [size] slots out of the structure. *)
let take t size =
  (* Bins >= ceil(log2 size) are guaranteed to fit; the exact bin of
     [size] may also contain fitting chunks, so scan its head shallowly. *)
  let exact = bin_of_size size in
  let rec from_bin b =
    if b >= nbins then None
    else
      match t.bins.(b) with
      | c :: rest when c.size >= size || b > exact ->
          (* any chunk in a higher bin has size >= 2^b >= 2^(exact+1) > size *)
          if c.size >= size then begin
            t.bins.(b) <- rest;
            t.free <- t.free - c.size;
            t.count <- t.count - 1;
            Some c
          end
          else from_bin (b + 1)
      | _ :: _ ->
          (* head of exact bin too small: scan a few entries *)
          let rec scan acc l depth =
            match l with
            | c :: rest when c.size >= size ->
                t.bins.(b) <- List.rev_append acc rest;
                t.free <- t.free - c.size;
                t.count <- t.count - 1;
                Some c
            | c :: rest when depth < 8 -> scan (c :: acc) rest (depth + 1)
            | _ -> None
          in
          (match scan [] t.bins.(b) 0 with
          | Some c -> Some c
          | None -> from_bin (b + 1))
      | [] -> from_bin (b + 1)
  in
  from_bin exact

let alloc t size =
  if size < 1 then invalid_arg "Freelist.alloc";
  match take t size with
  | None -> None
  | Some c ->
      let rem = c.size - size in
      if rem > 0 then add t ~addr:(c.addr + size) ~size:rem;
      Some c.addr

let alloc_range t ~min ~pref =
  if min < 1 || pref < min then invalid_arg "Freelist.alloc_range";
  match take t min with
  | None -> None
  | Some c ->
      if c.size <= pref then Some (c.addr, c.size)
      else begin
        add t ~addr:(c.addr + pref) ~size:(c.size - pref);
        Some (c.addr, pref)
      end

let free_slots t = t.free
let dark_matter t = t.dark
let chunk_count t = t.count

let iter t f =
  Array.iter (List.iter (fun c -> f ~addr:c.addr ~size:c.size)) t.bins
