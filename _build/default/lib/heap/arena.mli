(** The simulated heap arena and object model.

    Memory is an array of 8-byte {e slots}; an {e address} is a slot
    index.  An object occupies [size] contiguous slots: one header slot
    followed by [nrefs] reference slots (each holding an object address,
    [0] meaning null — address 0 is never handed out) and then scalar
    slots.  The header packs [size] and [nrefs].

    All slot accesses go through the {!Cgc_smp.Weakmem} system so the
    weak-ordering races of section 5 are observable in [Relaxed] mode.
    Freed memory keeps its old contents, as on real hardware — tracing a
    dead or not-yet-published object reads stale garbage, which is exactly
    what the allocation-bit protocol must guard against. *)

type t

val create : Cgc_smp.Machine.t -> nslots:int -> t
(** A heap of [nslots] slots ([8 * nslots] simulated bytes).  Slot 0 is
    reserved so that address 0 can mean null. *)

val machine : t -> Cgc_smp.Machine.t
val nslots : t -> int

val slots_per_card : int
(** 64 slots = the paper's 512-byte cards. *)

val ncards : t -> int

val card_of_addr : int -> int

(** {2 Raw slot access (weak-memory aware)} *)

val read_slot : t -> int -> int
(** Read a slot as observed by the calling thread's processor. *)

val write_slot : t -> int -> int -> unit

val read_slot_sc : t -> int -> int
(** Read the committed value directly, bypassing store-buffer masking.
    Only for tests and diagnostics. *)

(** {2 Object model} *)

val max_size : int
(** Largest encodable object size in slots. *)

val write_header : t -> int -> size:int -> nrefs:int -> unit
(** Store the header at [addr]; does {e not} clear the field slots. *)

val clear_fields : t -> int -> size:int -> nrefs:int -> unit
(** Null out the [nrefs] reference slots (a freshly allocated object must
    never expose stale references as valid pointers to the program —
    though an unfenced remote observer may still see stale memory). *)

val size_of : t -> int -> int
(** Decode the object size from the header at [addr]. *)

val nrefs_of : t -> int -> int

val header_valid : t -> int -> bool
(** Whether the header at [addr] decodes to a plausible object (size
    within the heap, nrefs <= size-1).  Used to detect the section 5.2
    anomaly when the protocol is deliberately disabled in tests. *)

(** {2 Committed-state accessors}

    These bypass store-buffer masking and need no running simulated
    thread; they are for host-side verifiers, sweeping (which runs after
    a global synchronisation) and tests. *)

val header_valid_sc : t -> int -> bool
val size_of_sc : t -> int -> int
val nrefs_of_sc : t -> int -> int
val ref_get_sc : t -> int -> int -> int

val ref_get : t -> int -> int -> int
(** [ref_get t addr i] reads reference slot [i] of the object at [addr]. *)

val ref_set_raw : t -> int -> int -> int -> unit
(** Store into a reference slot {e without} any write barrier.  The
    collector's write barrier lives in [Cgc_core.Collector]; mutators go
    through that. *)

val in_heap : t -> int -> bool
(** Whether [addr] is a plausible object address (within bounds, not the
    reserved slot). *)
