module Machine = Cgc_smp.Machine
module Weakmem = Cgc_smp.Weakmem

type t = {
  mach : Machine.t;
  data : int array;
  n : int;
  wm_base : int;
}

let slots_per_card = 64

let create mach ~nslots =
  if nslots < slots_per_card then invalid_arg "Arena.create: heap too small";
  let wm_base = Weakmem.register mach.Machine.wm nslots in
  { mach; data = Array.make nslots 0; n = nslots; wm_base }

let machine t = t.mach
let nslots t = t.n
let ncards t = (t.n + slots_per_card - 1) / slots_per_card
let card_of_addr addr = addr / slots_per_card

let read_slot t i =
  let wm = t.mach.Machine.wm in
  match Weakmem.mode wm with
  | Sc -> t.data.(i)
  | Relaxed ->
      Weakmem.read wm ~cpu:(Machine.cpu t.mach) ~now:(Machine.now t.mach)
        ~key:(t.wm_base + i) ~current:t.data.(i)

let write_slot t i v =
  let wm = t.mach.Machine.wm in
  (match Weakmem.mode wm with
  | Sc -> ()
  | Relaxed ->
      Weakmem.store wm ~cpu:(Machine.cpu t.mach) ~now:(Machine.now t.mach)
        ~key:(t.wm_base + i) ~prev:t.data.(i));
  t.data.(i) <- v

let read_slot_sc t i = t.data.(i)

(* Header layout: size in the low 26 bits, nrefs in the next 26.  Bit 61
   is a tag so that a header is distinguishable from a null slot. *)
let size_bits = 26
let size_mask = (1 lsl size_bits) - 1
let tag = 1 lsl 61
let max_size = size_mask

let encode ~size ~nrefs = tag lor size lor (nrefs lsl size_bits)
let decode_size h = h land size_mask
let decode_nrefs h = (h lsr size_bits) land size_mask

let write_header t addr ~size ~nrefs =
  if size < 1 || size > max_size then invalid_arg "Arena.write_header: size";
  if nrefs < 0 || nrefs > size - 1 then invalid_arg "Arena.write_header: nrefs";
  write_slot t addr (encode ~size ~nrefs)

let clear_fields t addr ~size ~nrefs =
  ignore size;
  for i = 1 to nrefs do
    write_slot t (addr + i) 0
  done

let size_of t addr = decode_size (read_slot t addr)
let nrefs_of t addr = decode_nrefs (read_slot t addr)

let header_valid t addr =
  let h = read_slot t addr in
  h land tag <> 0
  &&
  let size = decode_size h and nrefs = decode_nrefs h in
  size >= 1 && addr + size <= t.n && nrefs <= size - 1

let header_valid_sc t addr =
  let h = read_slot_sc t addr in
  h land tag <> 0
  &&
  let size = decode_size h and nrefs = decode_nrefs h in
  size >= 1 && addr + size <= t.n && nrefs <= size - 1

let size_of_sc t addr = decode_size (read_slot_sc t addr)
let nrefs_of_sc t addr = decode_nrefs (read_slot_sc t addr)
let ref_get_sc t addr i = read_slot_sc t (addr + 1 + i)

let ref_get t addr i = read_slot t (addr + 1 + i)
let ref_set_raw t addr i v = write_slot t (addr + 1 + i) v

let in_heap t addr = addr > 0 && addr < t.n
