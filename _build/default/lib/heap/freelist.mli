(** Size-segregated free list over heap chunks.

    Bitwise sweep rebuilds this list every collection cycle from the runs
    of unmarked memory it finds in the mark bit vector, so the list never
    needs incremental coalescing.  Chunks are binned by floor(log2 size)
    for near-O(1) allocation.  Remainders below {!min_chunk} are abandoned
    ("dark matter") — the next sweep re-coalesces them. *)

type t

val min_chunk : int
(** Smallest chunk worth keeping on the list, in slots. *)

val create : unit -> t

val clear : t -> unit
(** Empty the list (start of a sweep rebuild). *)

val add : t -> addr:int -> size:int -> unit
(** Insert a free chunk.  Chunks smaller than {!min_chunk} are dropped
    (counted as dark matter). *)

val alloc : t -> int -> int option
(** [alloc t size] carves exactly [size] slots, returning the address, or
    [None] when no chunk is large enough.  The remainder is re-binned. *)

val alloc_range : t -> min:int -> pref:int -> (int * int) option
(** Allocation-cache refill: return a chunk of at least [min] slots,
    splitting anything larger than [pref] down to [pref].  Returns
    [(addr, size)]. *)

val free_slots : t -> int
(** Total slots currently on the list. *)

val dark_matter : t -> int
(** Slots dropped since the last {!clear} because they were below
    {!min_chunk}. *)

val chunk_count : t -> int

val iter : t -> (addr:int -> size:int -> unit) -> unit
(** Iterate all chunks (diagnostics, tests). *)
