lib/heap/heap.mli: Alloc_bits Arena Card_table Cgc_smp Cgc_util Freelist
