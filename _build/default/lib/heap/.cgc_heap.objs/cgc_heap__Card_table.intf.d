lib/heap/card_table.mli: Cgc_smp
