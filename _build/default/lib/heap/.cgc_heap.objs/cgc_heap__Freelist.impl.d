lib/heap/freelist.ml: Array List
