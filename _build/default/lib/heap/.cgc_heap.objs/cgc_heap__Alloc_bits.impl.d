lib/heap/alloc_bits.ml: Cgc_smp Cgc_util
