lib/heap/card_table.ml: Bytes Cgc_smp Char
