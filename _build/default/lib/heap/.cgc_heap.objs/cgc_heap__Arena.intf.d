lib/heap/arena.mli: Cgc_smp
