lib/heap/alloc_bits.mli: Cgc_smp
