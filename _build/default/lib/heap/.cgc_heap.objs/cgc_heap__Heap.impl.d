lib/heap/heap.ml: Alloc_bits Arena Card_table Cgc_smp Cgc_util Freelist List
