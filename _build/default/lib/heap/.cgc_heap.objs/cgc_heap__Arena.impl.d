lib/heap/arena.ml: Array Cgc_smp
