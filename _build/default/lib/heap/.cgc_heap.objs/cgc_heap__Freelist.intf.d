lib/heap/freelist.mli:
