lib/packets/pool.ml: Array Buffer Cgc_smp List Packet Printf
