lib/packets/packet.mli: Cgc_smp
