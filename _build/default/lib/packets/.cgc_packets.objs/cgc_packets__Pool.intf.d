lib/packets/pool.mli: Cgc_smp Packet
