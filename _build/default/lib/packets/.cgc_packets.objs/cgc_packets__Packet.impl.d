lib/packets/packet.ml: Array Cgc_smp
