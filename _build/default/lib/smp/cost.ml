type t = {
  cycles_per_ms : int;
  fence : int;
  cas : int;
  dispatch : int;
  alloc_obj : int;
  alloc_slot : int;
  cache_refill : int;
  trace_obj : int;
  trace_slot : int;
  sweep_word : int;
  sweep_chunk : int;
  card_scan : int;
  card_probe : int;
  stack_slot : int;
  write_barrier : int;
  packet_op : int;
}

let default =
  {
    cycles_per_ms = 550_000;
    fence = 120;
    cas = 40;
    dispatch = 400;
    alloc_obj = 12;
    alloc_slot = 2;
    cache_refill = 300;
    trace_obj = 100;
    trace_slot = 12;
    sweep_word = 40;
    sweep_chunk = 200;
    card_scan = 300;
    card_probe = 2;
    stack_slot = 6;
    write_barrier = 8;
    packet_op = 25;
  }

let ms_of_cycles t c = float_of_int c /. float_of_int t.cycles_per_ms
let cycles_of_ms t ms = int_of_float (ms *. float_of_int t.cycles_per_ms)
