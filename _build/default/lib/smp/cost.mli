(** Cycle cost model for the simulated multiprocessor.

    All durations in the simulator are integer {e cycles}.  The model is
    loosely calibrated to the paper's 4-way 550 MHz Pentium III server:
    [cycles_per_ms = 550_000], a fence is a multi-cycle instruction, a
    compare-and-swap costs tens of cycles, tracing costs are per-object
    plus per-slot, and bitwise sweep is proportional to mark-bit words
    scanned.  Absolute numbers are a model; experiments report shapes and
    ratios, which depend only on the relative costs. *)

type t = {
  cycles_per_ms : int;  (** simulated clock frequency, cycles per millisecond *)
  fence : int;          (** memory fence (sync / mfence) *)
  cas : int;            (** compare-and-swap *)
  dispatch : int;       (** scheduler context-switch overhead *)
  alloc_obj : int;      (** allocation fast path, per object *)
  alloc_slot : int;     (** object initialisation, per 8-byte slot *)
  cache_refill : int;   (** allocation-cache refill slow path (free-list work) *)
  trace_obj : int;      (** tracing, per object visited *)
  trace_slot : int;     (** tracing, per slot scanned *)
  sweep_word : int;     (** bitwise sweep, per 62-bit mark-bit word *)
  sweep_chunk : int;    (** free-list insertion, per free chunk found *)
  card_scan : int;      (** card cleaning, per card scanned (fixed part) *)
  card_probe : int;     (** card-table scan for dirty cards, per card probed *)
  stack_slot : int;     (** conservative stack scan, per stack slot *)
  write_barrier : int;  (** card-marking write barrier, excluding any fence *)
  packet_op : int;      (** work-packet get/put bookkeeping, excluding the CAS *)
}

val default : t

val ms_of_cycles : t -> int -> float
(** Convert a cycle count to simulated milliseconds. *)

val cycles_of_ms : t -> float -> int
