lib/smp/weakmem.ml: Array Cgc_util Hashtbl List
