lib/smp/machine.ml: Cgc_util Cost Fence Weakmem
