lib/smp/fence.mli:
