lib/smp/machine.mli: Cost Fence Weakmem
