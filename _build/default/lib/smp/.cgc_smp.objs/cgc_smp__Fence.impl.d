lib/smp/fence.ml: Array
