lib/smp/cost.ml:
