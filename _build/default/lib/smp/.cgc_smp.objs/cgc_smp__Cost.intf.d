lib/smp/cost.mli:
