lib/smp/weakmem.mli: Cgc_util
