type site =
  | Alloc_batch
  | Packet_return
  | Packet_defer
  | Card_snapshot
  | Naive_alloc
  | Naive_barrier
  | Naive_mark
  | Other

let site_index = function
  | Alloc_batch -> 0
  | Packet_return -> 1
  | Packet_defer -> 2
  | Card_snapshot -> 3
  | Naive_alloc -> 4
  | Naive_barrier -> 5
  | Naive_mark -> 6
  | Other -> 7

let nsites = 8

type counters = int array

let create () = Array.make nsites 0

let count c site = c.(site_index site) <- c.(site_index site) + 1

let get c site = c.(site_index site)

let total c = Array.fold_left ( + ) 0 c

let reset c = Array.fill c 0 nsites 0

let site_name = function
  | Alloc_batch -> "alloc-batch"
  | Packet_return -> "packet-return"
  | Packet_defer -> "packet-defer"
  | Card_snapshot -> "card-snapshot"
  | Naive_alloc -> "naive-alloc"
  | Naive_barrier -> "naive-barrier"
  | Naive_mark -> "naive-mark"
  | Other -> "other"

let all_sites =
  [ Alloc_batch; Packet_return; Packet_defer; Card_snapshot;
    Naive_alloc; Naive_barrier; Naive_mark; Other ]
