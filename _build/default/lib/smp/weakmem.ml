module Prng = Cgc_util.Prng

type mode = Sc | Relaxed

type entry = {
  key : int;
  cpu : int;
  deadline : int;
  prev : int;
  mutable dead : bool;
}

(* Binary min-heap of entries keyed by deadline. *)
module Heap = struct
  type t = { mutable a : entry array; mutable n : int }

  let dummy =
    { key = 0; cpu = 0; deadline = 0; prev = 0; dead = true }

  let create () = { a = Array.make 64 dummy; n = 0 }

  let push h e =
    if h.n = Array.length h.a then begin
      let bigger = Array.make (2 * h.n) dummy in
      Array.blit h.a 0 bigger 0 h.n;
      h.a <- bigger
    end;
    let i = ref h.n in
    h.n <- h.n + 1;
    h.a.(!i) <- e;
    let continue = ref true in
    while !continue && !i > 0 do
      let parent = (!i - 1) / 2 in
      if h.a.(parent).deadline > h.a.(!i).deadline then begin
        let tmp = h.a.(parent) in
        h.a.(parent) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := parent
      end
      else continue := false
    done

  let peek h = if h.n = 0 then None else Some h.a.(0)

  let pop h =
    let top = h.a.(0) in
    h.n <- h.n - 1;
    h.a.(0) <- h.a.(h.n);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.n && h.a.(l).deadline < h.a.(!smallest).deadline then smallest := l;
      if r < h.n && h.a.(r).deadline < h.a.(!smallest).deadline then smallest := r;
      if !smallest <> !i then begin
        let tmp = h.a.(!smallest) in
        h.a.(!smallest) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := !smallest
      end
      else continue := false
    done;
    top
end

type t = {
  md : mode;
  rng : Prng.t;
  max_delay : int;
  pending : Heap.t;
  by_key : (int, entry list ref) Hashtbl.t; (* live entries, oldest first *)
  last_deadline : (int, int) Hashtbl.t;     (* per-key coherence ordering *)
  mutable next_key : int;
  mutable live : int;
}

let create ?(max_delay = 5000) ~mode ~rng () =
  {
    md = mode;
    rng;
    max_delay;
    pending = Heap.create ();
    by_key = Hashtbl.create 256;
    last_deadline = Hashtbl.create 256;
    next_key = 0;
    live = 0;
  }

let mode t = t.md

let register t n =
  let base = t.next_key in
  t.next_key <- base + n;
  base

(* Make [e] globally visible.  Per-location coherence: every pending
   store to the same location that is OLDER than [e] (the by_key lists
   are kept in coherence order) becomes visible too — once a newer store
   to a cache line is globally visible, reads can never again return
   values from before it, no matter which processor's buffer the older
   stores sat in. *)
let kill t e =
  if not e.dead then begin
    match Hashtbl.find_opt t.by_key e.key with
    | None ->
        e.dead <- true;
        t.live <- t.live - 1
    | Some l ->
        let rec drop_upto = function
          | [] -> []
          | x :: rest ->
              x.dead <- true;
              t.live <- t.live - 1;
              if x == e then rest else drop_upto rest
        in
        l := drop_upto !l;
        if !l = [] then Hashtbl.remove t.by_key e.key
  end

let store t ~cpu ~now ~key ~prev =
  match t.md with
  | Sc -> ()
  | Relaxed ->
      let d = now + 1 + Prng.int t.rng t.max_delay in
      let d =
        match Hashtbl.find_opt t.last_deadline key with
        | Some last when last >= d -> last + 1
        | _ -> d
      in
      Hashtbl.replace t.last_deadline key d;
      let e = { key; cpu; deadline = d; prev; dead = false } in
      Heap.push t.pending e;
      t.live <- t.live + 1;
      (match Hashtbl.find_opt t.by_key key with
      | Some l -> l := !l @ [ e ]
      | None -> Hashtbl.replace t.by_key key (ref [ e ]))

let commit_due t ~now =
  match t.md with
  | Sc -> ()
  | Relaxed ->
      let continue = ref true in
      while !continue do
        match Heap.peek t.pending with
        | Some e when e.dead -> ignore (Heap.pop t.pending)
        | Some e when e.deadline <= now ->
            ignore (Heap.pop t.pending);
            kill t e
        | _ -> continue := false
      done

let read t ~cpu ~now ~key ~current =
  match t.md with
  | Sc -> current
  | Relaxed -> (
      commit_due t ~now;
      match Hashtbl.find_opt t.by_key key with
      | None -> current
      | Some l -> (
          match !l with
          | [] -> current
          | entries ->
              (* A processor always sees its own latest store.  If the
                 newest pending entry is ours, the backing value is what we
                 wrote.  Otherwise remote readers are still masked by the
                 oldest pending store. *)
              let newest = List.nth entries (List.length entries - 1) in
              if newest.cpu = cpu then current
              else
                let oldest = List.hd entries in
                if oldest.cpu = cpu then current else oldest.prev))

let fence t ~cpu ~now:_ =
  match t.md with
  | Sc -> ()
  | Relaxed ->
      let to_kill = ref [] in
      Hashtbl.iter
        (fun _ l -> List.iter (fun e -> if e.cpu = cpu then to_kill := e :: !to_kill) !l)
        t.by_key;
      List.iter (kill t) !to_kill

let fence_all t =
  match t.md with
  | Sc -> ()
  | Relaxed ->
      let to_kill = ref [] in
      Hashtbl.iter (fun _ l -> List.iter (fun e -> to_kill := e :: !to_kill) !l) t.by_key;
      List.iter (kill t) !to_kill

let pending_count t = t.live
