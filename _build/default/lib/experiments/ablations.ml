(* Ablation studies for the design choices the paper calls out.

   - Fence batching (section 5): one fence per retired allocation cache
     and one per returned work packet, versus the naive placement of one
     fence per object allocated and per object marked.
   - Second concurrent card-cleaning pass (section 2.1, footnote 2).
   - Lazy sweep (section 7 future work): move the bitwise sweep out of
     the stop-the-world pause.
   - Work packets versus Endo-style work-stealing mark stacks for the
     parallel stop-the-world mark (section 4.4). *)

module Table = Cgc_util.Table
module Config = Cgc_core.Config
module Fence = Cgc_smp.Fence
module Vm = Cgc_runtime.Vm
module Machine = Cgc_smp.Machine

let ms () = if Common.quick () then 2000.0 else 4000.0

(* SPECjbb with a specific heap fence policy (the Vm config knob the
   preset does not expose). *)
let run_policy label fence_policy =
  let cfg = Vm.config ~heap_mb:64.0 ~ncpus:4 ~gc:Config.default ~fence_policy () in
  let vm = Vm.create cfg in
  let nslots = Cgc_heap.Heap.nslots (Vm.heap vm) in
  let target = int_of_float (float_of_int nslots *. 0.6) / 8 in
  let profile =
    Cgc_workloads.Txmix.scale_residency Cgc_workloads.Specjbb.base_profile
      ~target_slots:target
  in
  for w = 1 to 8 do
    Vm.spawn_mutator vm
      ~name:(Printf.sprintf "warehouse-%d" w)
      (Cgc_workloads.Txmix.body profile)
  done;
  Vm.run_measured vm ~warmup_ms:1000.0 ~ms:(ms ());
  (Common.collect ~label vm, Vm.machine vm)

let fence_batching () =
  Common.hdr
    "Ablation — fence batching (section 5): batched protocols vs one fence per operation";
  let batched, bm = run_policy "batched" Cgc_heap.Heap.Batched in
  let naive, nm = run_policy "naive" Cgc_heap.Heap.Naive in
  let t =
    Table.create ~title:"(fences counted over the measured window)"
      ~header:
        [ "policy"; "alloc fences"; "mark fences"; "packet fences";
          "total fences"; "tx/s" ]
  in
  let row label (m : Common.metrics) mach =
    let f = mach.Machine.fences in
    Table.add_row t
      [ label;
        string_of_int
          (Fence.get f Fence.Alloc_batch + Fence.get f Fence.Naive_alloc);
        string_of_int (Fence.get f Fence.Naive_mark);
        string_of_int
          (Fence.get f Fence.Packet_return + Fence.get f Fence.Packet_defer);
        string_of_int m.Common.fences_total;
        Printf.sprintf "%.0f" m.Common.throughput ]
  in
  row "batched (paper)" batched bm;
  row "naive" naive nm;
  Table.print t;
  let reduction =
    float_of_int naive.Common.fences_total
    /. float_of_int (max 1 batched.Common.fences_total)
  in
  Printf.printf
    "Batching cuts fence instructions by %.1fx and recovers %.1f%% throughput.\n"
    reduction
    (100.0
    *. ((batched.Common.throughput /. Float.max 1.0 naive.Common.throughput)
       -. 1.0));
  (batched, naive)

let card_passes () =
  Common.hdr
    "Ablation — second concurrent card-cleaning pass (section 2.1, footnote 2)";
  let run label passes =
    let gc = { Config.default with Config.card_passes = passes } in
    Common.specjbb ~label ~gc ~ms:(ms ()) ()
  in
  let one = run "1 pass" 1 in
  let two = run "2 passes" 2 in
  let t =
    Table.create ~title:""
      ~header:
        [ "passes"; "conc cards"; "stw cards"; "avg pause"; "max pause"; "tx/s" ]
  in
  List.iter
    (fun (m : Common.metrics) ->
      Table.add_row t
        [ m.Common.label;
          Printf.sprintf "%.0f" m.Common.conc_cards;
          Printf.sprintf "%.0f" m.Common.stw_cards;
          Table.fms m.Common.avg_pause;
          Table.fms m.Common.max_pause;
          Printf.sprintf "%.0f" m.Common.throughput ])
    [ one; two ];
  Table.print t;
  Printf.printf
    "Paper (footnote 2): a second pass further reduces pause time without a\n\
     noticeable throughput impact.\n";
  (one, two)

let lazy_sweep () =
  Common.hdr "Ablation — lazy sweep (section 7 future work)";
  let run label lazy_sweep =
    let gc = { Config.default with Config.lazy_sweep } in
    Common.specjbb ~label ~gc ~ms:(ms ()) ()
  in
  let eager = run "in-pause sweep" false in
  let lzy = run "lazy sweep" true in
  let t =
    Table.create ~title:""
      ~header:[ "sweep"; "avg pause"; "max pause"; "avg sweep-in-pause"; "tx/s" ]
  in
  List.iter
    (fun (m : Common.metrics) ->
      Table.add_row t
        [ m.Common.label;
          Table.fms m.Common.avg_pause;
          Table.fms m.Common.max_pause;
          Table.fms m.Common.avg_sweep;
          Printf.sprintf "%.0f" m.Common.throughput ])
    [ eager; lzy ];
  Table.print t;
  Printf.printf
    "The paper projects that deferring sweep out of the pause brings the pause\n\
     close to the mark component alone (section 6.1 / section 7).\n";
  (eager, lzy)

let stealing () =
  Common.hdr
    "Ablation — work packets vs work-stealing mark stacks for the STW mark (section 4.4)";
  let run label load_balance =
    let gc = { Config.stw with Config.load_balance } in
    Common.specjbb ~label ~gc ~ms:(ms ()) ()
  in
  let packets = run "work packets" Config.Packets in
  let steal = run "work stealing" Config.Stealing in
  let t =
    Table.create ~title:"(both as the load balancer of the parallel STW mark)"
      ~header:[ "mechanism"; "avg pause"; "max pause"; "avg mark"; "CAS/MB avg" ]
  in
  List.iter
    (fun (m : Common.metrics) ->
      Table.add_row t
        [ m.Common.label;
          Table.fms m.Common.avg_pause;
          Table.fms m.Common.max_pause;
          Table.fms m.Common.avg_mark;
          Printf.sprintf "%.0f" m.Common.cas_avg ])
    [ packets; steal ];
  Table.print t;
  Printf.printf
    "On this chain-heavy workload private mark stacks beat packets for the pure\n\
     STW mark (packets pay pool synchronisation on every hand-off), while packets\n\
     need only the Empty-pool counter for termination where stealing needs global\n\
     work and in-flight counters — the trade-off sections 4.4 and 7 discuss.\n\
     Packets' real advantage is the incremental phase, where the set of tracing\n\
     participants is large and dynamic.\n";
  (packets, steal)

let compaction () =
  Common.hdr
    "Ablation — incremental compaction (section 2.3): evacuating one area per cycle";
  let run label compaction =
    let gc = { Config.default with Config.compaction } in
    let vm =
      Cgc_workloads.Specjbb.setup ~warehouses:8 ~gc ~heap_mb:64.0 ()
    in
    Vm.run_measured vm ~warmup_ms:1000.0 ~ms:(ms ());
    (Common.collect ~label vm, Vm.collector vm)
  in
  let off, _ = run "no compaction" false in
  let on_, coll = run "evacuation on" true in
  let cp = Cgc_core.Collector.compactor coll in
  let t =
    Table.create ~title:""
      ~header:
        [ "mode"; "avg pause"; "max pause"; "tx/s"; "evacuated objs";
          "fixups" ]
  in
  Table.add_row t
    [ "no compaction"; Table.fms off.Common.avg_pause;
      Table.fms off.Common.max_pause;
      Printf.sprintf "%.0f" off.Common.throughput; "--"; "--" ];
  Table.add_row t
    [ "evacuation on"; Table.fms on_.Common.avg_pause;
      Table.fms on_.Common.max_pause;
      Printf.sprintf "%.0f" on_.Common.throughput;
      string_of_int (Cgc_core.Compact.evacuated_objects cp);
      string_of_int (Cgc_core.Compact.fixups cp) ]
  ;
  Table.print t;
  Printf.printf
    "Evacuating 1/16 of the heap per cycle defragments continuously for a small,
     bounded addition to the pause (the companion ISMM 2002 paper's design).
";
  (off, on_)

let itanium () =
  Common.hdr
    "Section 6.1 weak-ordering run — the Itanium experiment, on relaxed memory";
  (* The paper repeated the SPECjbb comparison on a 4-way IA-64 server and
     found the same reductions.  We run the full collector with the store
     buffers actually reordering (Relaxed mode) instead of only charging
     fence costs.  Smaller heap: relaxed simulation is host-expensive. *)
  let run label gc =
    let cfg =
      Vm.config ~heap_mb:24.0 ~ncpus:4 ~gc ~wm_mode:Cgc_smp.Weakmem.Relaxed ()
    in
    let vm = Vm.create cfg in
    let nslots = Cgc_heap.Heap.nslots (Vm.heap vm) in
    let target = int_of_float (float_of_int nslots *. 0.6) / 8 in
    let profile =
      Cgc_workloads.Txmix.scale_residency Cgc_workloads.Specjbb.base_profile
        ~target_slots:target
    in
    for w = 1 to 8 do
      Vm.spawn_mutator vm
        ~name:(Printf.sprintf "warehouse-%d" w)
        (Cgc_workloads.Txmix.body profile)
    done;
    let msv = if Common.quick () then 1500.0 else 3000.0 in
    Vm.run_measured vm ~warmup_ms:1500.0 ~ms:msv;
    (* Quiesce the store buffers before the host-side verification: the
       committed view mid-run legitimately lags in-flight stores. *)
    Cgc_smp.Weakmem.fence_all (Vm.machine vm).Cgc_smp.Machine.wm;
    let corruptions =
      Cgc_core.Tracer.corruptions
        (Cgc_core.Collector.tracer (Vm.collector vm))
    in
    let bad = Cgc_core.Collector.check_reachable (Vm.collector vm) in
    (Common.collect ~label vm, corruptions, List.length bad)
  in
  let stw, _, _ = run "STW" Config.stw in
  let cgc, corr, bad = run "CGC" Config.default in
  let t =
    Table.create ~title:"(24 MB heap, store buffers reordering for real)"
      ~header:[ "collector"; "avg pause"; "max pause"; "tx/s" ]
  in
  List.iter
    (fun (m : Common.metrics) ->
      Table.add_row t
        [ m.Common.label; Table.fms m.Common.avg_pause;
          Table.fms m.Common.max_pause;
          Printf.sprintf "%.0f" m.Common.throughput ])
    [ stw; cgc ];
  Table.print t;
  Printf.printf
    "Tracer corruptions under reordering: %d; unreachable-graph violations: %d\n"
    corr bad;
  print_endline
    "(both must be 0 - the section 5 protocols hold on weakly-ordered memory).";
  print_endline
    "Paper: 'both the reduction in pause times and the reduction in the overall";
  print_endline "SPECjbb throughput score are similar' on the 4-way Itanium.";
  (stw, cgc)

let run_all () =
  ignore (fence_batching ());
  ignore (card_passes ());
  ignore (lazy_sweep ());
  ignore (stealing ());
  ignore (compaction ());
  ignore (itanium ())
