lib/experiments/common.mli: Cgc_core Cgc_runtime
