lib/experiments/fig2_pbob.ml: Cgc_core Cgc_util Common Float List Printf
