lib/experiments/packet_memory.ml: Cgc_core Cgc_util Common Printf
