lib/experiments/ablations.ml: Cgc_core Cgc_heap Cgc_runtime Cgc_smp Cgc_util Cgc_workloads Common Float List Printf
