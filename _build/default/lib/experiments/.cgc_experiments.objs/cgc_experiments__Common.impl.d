lib/experiments/common.ml: Array Cgc_core Cgc_heap Cgc_packets Cgc_runtime Cgc_sim Cgc_smp Cgc_util Cgc_workloads Printf String Sys
