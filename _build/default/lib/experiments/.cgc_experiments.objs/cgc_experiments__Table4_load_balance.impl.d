lib/experiments/table4_load_balance.ml: Cgc_core Cgc_util Common List Printf
