lib/experiments/fig1_specjbb.ml: Cgc_core Cgc_util Common List Printf
