lib/experiments/javac_exp.ml: Cgc_core Cgc_runtime Cgc_util Cgc_workloads Common Float List Printf
