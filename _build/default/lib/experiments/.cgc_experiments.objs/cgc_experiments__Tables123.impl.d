lib/experiments/tables123.ml: Cgc_core Cgc_util Common Float List Printf
