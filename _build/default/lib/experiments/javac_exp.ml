(* The javac experiment from section 6.1: a single-threaded compiler on a
   uniprocessor with one background collector thread, 25 MB heap at 70%
   occupancy.  Paper: CGC 41 ms max / 34 ms avg pause vs STW 167/138 ms;
   CGC loses 12% throughput. *)

module Table = Cgc_util.Table
module Vm = Cgc_runtime.Vm
module Config = Cgc_core.Config

let run () =
  Common.hdr "javac (section 6.1) — uniprocessor, 1 background thread, 25 MB heap";
  let measure label gc =
    let vm = Cgc_workloads.Javac.setup ~gc () in
    let ms = if Common.quick () then 2500.0 else 6000.0 in
    Vm.run_measured vm ~warmup_ms:1000.0 ~ms;
    Common.collect ~label vm
  in
  let stw = measure "STW" Config.stw in
  let cgc = measure "CGC" Config.default in
  let t =
    Table.create ~title:""
      ~header:[ "collector"; "avg pause"; "max pause"; "occupancy"; "tx/s" ]
  in
  List.iter
    (fun (m : Common.metrics) ->
      Table.add_row t
        [ m.Common.label;
          Table.fms m.Common.avg_pause;
          Table.fms m.Common.max_pause;
          Table.fpct m.Common.occupancy;
          Printf.sprintf "%.0f" m.Common.throughput ])
    [ stw; cgc ];
  Table.print t;
  Printf.printf
    "Pause reduction: avg %.0f%%, max %.0f%% (paper: 75%% / 75%%); throughput ratio %.0f%% (paper: 88%%).\n"
    (100.0 *. (1.0 -. (cgc.Common.avg_pause /. Float.max 0.001 stw.Common.avg_pause)))
    (100.0 *. (1.0 -. (cgc.Common.max_pause /. Float.max 0.001 stw.Common.max_pause)))
    (100.0 *. cgc.Common.throughput /. Float.max 0.001 stw.Common.throughput);
  (stw, cgc)
