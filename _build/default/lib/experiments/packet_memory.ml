(* Section 6.3: the memory cost of the work-packet mechanism.  Because
   packets impose a mostly breadth-first traversal they can hold more
   simultaneous entries than a depth-first mark stack would; the paper
   bounds the requirement with two watermarks — entries in use (lower
   bound) and whole packets in use (upper bound) — and finds it between
   0.11% and 0.25% of the heap (realistically ~0.15%). *)

module Table = Cgc_util.Table
module Config = Cgc_core.Config

let run () =
  Common.hdr "Section 6.3 — Work-packet memory requirements (SPECjbb, 8 warehouses)";
  let ms = if Common.quick () then 2000.0 else 5000.0 in
  let m = Common.specjbb ~label:"CGC" ~gc:Config.default ~ms () in
  let heap_bytes = m.Common.heap_slots * 8 in
  let entry_bytes = 8 in
  let lower = m.Common.pkt_entries_hw * entry_bytes in
  let upper =
    m.Common.pkt_in_use_hw * Config.default.Config.packet_capacity
    * entry_bytes
  in
  let t =
    Table.create ~title:""
      ~header:[ "watermark"; "value"; "bytes"; "% of heap" ]
  in
  Table.add_row t
    [ "entries in use (lower bound)";
      string_of_int m.Common.pkt_entries_hw;
      string_of_int lower;
      Printf.sprintf "%.3f%%" (100.0 *. float_of_int lower /. float_of_int heap_bytes) ];
  Table.add_row t
    [ "packets in use (upper bound)";
      string_of_int m.Common.pkt_in_use_hw;
      string_of_int upper;
      Printf.sprintf "%.3f%%" (100.0 *. float_of_int upper /. float_of_int heap_bytes) ];
  Table.print t;
  Printf.printf "Paper: bounded between 0.11%% and 0.25%% of the heap.\n";
  m
