(** Per-mutator collector state.

    Each mutator thread registered with the collector carries: a fixed
    root-slot array standing in for its stack (scanned conservatively,
    validated by the allocation bits, exactly as the paper's JVM scans
    stacks), its private allocation cache, and the per-cycle flags and
    counters the incremental collector needs. *)

type t = {
  tid : int;
  thread : Cgc_sim.Sched.thread;
  roots : int array;  (** stack slots; any int, conservatively filtered *)
  cache : Cgc_heap.Heap.cache;
  mutable stack_scanned : bool;  (** scanned during the current cycle? *)
  mutable alloc_slots : int;  (** cumulative slots allocated (monotonic) *)
  mutable incr_count : int;  (** tracing increments performed *)
  mutable trace_debt : int;
      (** tracing work assigned by the progress formula but not yet
          performed (packet shortage); carried into the next increment *)
}

val create : tid:int -> thread:Cgc_sim.Sched.thread -> stack_slots:int -> t

val root_get : t -> int -> int
val root_set : t -> int -> int -> unit
(** Plain stack-slot accesses — stacks are thread-private, so they bypass
    the weak-memory machinery. *)
