(** Card cleaning — concurrent passes and the stop-the-world pass.

    A cleaning pass follows the three-step snapshot protocol of
    section 5.3 so that no fence is ever needed in the write barrier:
    {ol
    {- scan the card table, registering dirty cards elsewhere and clearing
       their indicators;}
    {- force every mutator to execute a fence (so any ref-store whose
       card-dirtying store was already visible becomes visible too);}
    {- clean the registered cards: rescan the marked objects on each,
       pushing any unmarked children.}}

    The concurrent phase performs {!Config.card_passes} such passes
    (the paper's default is one; footnote 2 reports a second pass helps),
    each card cleaned at most once per pass, and cleaning is deferred as
    long as other tracing work exists.  The final stop-the-world phase
    always runs one more pass with the world stopped.

    A marked object whose allocation bit is not yet visible cannot be
    rescanned safely (its contents may not be visible either); its card is
    re-dirtied so a later pass — at the latest the stop-the-world one,
    which runs after every allocation cache is retired — picks it up. *)

type t

val create : Cgc_heap.Heap.t -> t

val reset_cycle : t -> unit

val start_pass : t -> force_fences:(unit -> unit) -> unit
(** Steps 1 and 2: register dirty cards and force mutator fences.
    [force_fences] is the collector's "stop each mutator individually"
    callback. *)

val queue_len : t -> int
(** Registered cards not yet cleaned. *)

val passes_started : t -> int

val clean_one : t -> Tracer.t -> Tracer.session -> stw:bool -> int option
(** Clean one registered card: [Some slots_rescanned], or [None] when the
    queue is empty. *)

val conc_cleaned : t -> int
(** Cards cleaned concurrently this cycle. *)

val stw_cleaned : t -> int
(** Cards cleaned during the stop-the-world phase this cycle. *)

val redirtied : t -> int
(** Cards re-dirtied because they held a marked-but-unpublished object. *)
