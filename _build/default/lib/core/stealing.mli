(** Work-stealing mark stacks — the load-balancing alternative the paper
    compares work packets against (section 4.4, after Endo et al. and
    Flood et al.).

    Each stop-the-world worker owns a private mark stack whose push/pop
    need no synchronisation, plus a public steal queue: when the private
    stack grows past a threshold the worker exposes a batch of entries
    (one CAS); starved workers steal a batch from the fullest victim
    (one CAS per attempt).  Termination detection needs global work and
    in-flight counters — the "principal synchronisation problem" the
    paper's packet counters avoid.

    Used only for the parallel stop-the-world mark of the baseline
    collector; the incremental collector uses work packets. *)

type t

val create : Cgc_heap.Heap.t -> nworkers:int -> t

val push_root : t -> worker:int -> int -> bool
(** Conservatively validate, mark and push a root onto the worker's
    private stack; true if pushed. *)

val push_obj : t -> worker:int -> int -> unit
(** Mark-and-push a known object address. *)

val mark_worker : t -> worker:int -> unit
(** Run the worker's mark loop to global termination: trace local work,
    expose surplus, steal when starved, exit when no work exists anywhere
    and no worker is mid-scan.  Must run inside a simulated thread. *)

val marked_slots : t -> int
(** Volume traced (for statistics parity with the packet tracer). *)

val steals : t -> int
val exposes : t -> int
