(** Incremental compaction (section 2.3, after Ben-Yitzhak et al.,
    ISMM 2002).

    Full compaction of a large heap is incompatible with short pauses, so
    the collector instead {e evacuates} one small area per collection
    cycle:

    {ol
    {- before the concurrent mark starts, an evacuation area (a fixed
       fraction of the heap, rotating each cycle) is chosen;}
    {- during marking — concurrent tracing, card-cleaning rescans and the
       final stop-the-world marking alike — every reference discovered
       that points {e into} the area is recorded in a remembered set;
       objects in the area referenced from thread stacks are {e pinned}
       (the stacks are scanned conservatively, so those slots cannot be
       rewritten);}
    {- after sweep, still inside the pause, the live unpinned objects of
       the area are copied out, a forwarding table is built, the
       remembered slots (and the precise global roots) are fixed up, and
       the vacated ranges are returned to the free list.}}

    Stale remembered entries are harmless: fix-up re-reads each recorded
    slot and rewrites it only if it still holds a pointer into the area. *)

type t

val create : Cgc_heap.Heap.t -> t

val choose_area : t -> cycle:int -> fraction:float -> unit
(** Activate compaction for this cycle: select the evacuation area (the
    heap is divided into [1/fraction] areas; [cycle] rotates through
    them) and clear the remembered set, forwarding and pin tables. *)

val deactivate : t -> unit

val active : t -> bool

val area : t -> int * int
(** [(lo, hi)] of the current evacuation area; [(0, 0)] when inactive. *)

val in_area : t -> int -> bool

val record_ref : t -> parent:int -> idx:int -> child:int -> unit
(** Remember that reference slot [idx] of [parent] held a pointer to
    [child] inside the area when it was scanned.  (Slots beyond the
    packable index range — absurdly wide objects — fall back to pinning
    the child instead.) *)

val pin : t -> int -> unit
(** Pin an area object referenced from a conservatively-scanned stack:
    it must not move. *)

val remset_size : t -> int
val pinned_count : t -> int

val evacuate : t -> globals:int array -> int
(** Run the evacuation (call after sweep, world stopped): copy live
    unpinned area objects out, fix up remembered slots and global roots,
    free the vacated ranges.  Returns the number of slots evacuated.
    Charges copy and fix-up costs.  Deactivates the compactor. *)

val evacuated_objects : t -> int
(** Cumulative count across cycles. *)

val evacuated_slots : t -> int
val fixups : t -> int
(** Cumulative remembered-slot rewrites. *)

val forward : t -> int -> int
(** [forward t addr] is the post-evacuation address of [addr] (identity
    when it did not move).  Exposed for tests. *)
