(** The parallel tracing engine over work packets.

    Every tracing participant — a mutator doing its allocation-linked
    increment, a low-priority background thread, or a stop-the-world
    worker — opens a {!session} holding an input and an output packet
    obtained from the shared pool (input acquired first, as the
    termination protocol of section 4.3 requires).  Objects are marked
    with a test-and-set on the mark bit when pushed, so each is traced
    once.

    Section 5.2 is implemented at input-packet acquisition: the entries'
    allocation bits are tested, unsafe entries (bit not visible yet) are
    parked in the Deferred sub-pool, a fence is executed, and only safe
    entries are traced.

    A session belongs to a simulated thread that can be preempted while
    holding packets.  When the world must stop, the collector
    {!confiscate_all} sessions: their packets return to the pool (so
    termination detection stays sound) and the sessions are poisoned so
    the owning thread abandons its trace loop at the next safe point. *)

type t

type session

val create : Config.t -> Cgc_heap.Heap.t -> Cgc_packets.Pool.t -> t

val set_compactor : t -> Compact.t -> unit
(** Attach the incremental compactor: every scan then records references
    into the evacuation area, and conservative root scanning pins area
    objects (section 2.3). *)

val pool : t -> Cgc_packets.Pool.t

val new_session : t -> session

val release : t -> session -> unit
(** Return both packets to the pool (output first, fenced if non-empty)
    and unregister the session.  Idempotent; no-op on a stolen session. *)

val stolen : session -> bool

val confiscate_all : t -> unit
(** Steal every live session's packets back into the pool. *)

val push_root : t -> session -> int -> bool
(** Conservatively validate a potential root (heap range, allocation bit,
    header sanity) and, if it is a valid unmarked object, mark and push
    it.  Returns whether it was pushed.  Charges the per-slot stack-scan
    cost. *)

val push_obj : t -> session -> int -> unit
(** Mark-and-push a known object address (no conservative filtering).
    Handles output replacement, input/output swapping, and the overflow
    fallback (mark + dirty the object's card) of section 4.3. *)

val scan_object : t -> session -> retrace:bool -> int -> int
(** Scan the object's reference slots, pushing unmarked children; returns
    the object's size in slots.  [retrace] marks a card-cleaning rescan
    (not counted as first-time mark volume). *)

val trace_until : t -> session -> budget:int -> int
(** Pop and scan objects until [budget] slots have been traced or no
    input work can be acquired.  Returns slots traced.  Flushes charge
    debt between objects (the preemption safe points). *)

val scan_roots : t -> session -> int array -> int
(** Conservative scan of a root array; returns the number of roots
    pushed. *)

val marked_slots : t -> int
(** Total volume (slots) of objects scanned for the first time this
    cycle — the observation for the L estimator. *)

val retraced_slots : t -> int
(** Volume rescanned by card cleaning this cycle (for the M estimator
    and the progress formula's T together with {!marked_slots}). *)

val overflow_events : t -> int
val corruptions : t -> int
(** Invalid headers / out-of-range references encountered while tracing —
    zero whenever the section 5 protocols are enabled. *)

val reset_cycle : t -> unit

val live_sessions : t -> int
(** Number of registered (unreleased) sessions — diagnostics. *)
