type t = {
  tid : int;
  thread : Cgc_sim.Sched.thread;
  roots : int array;
  cache : Cgc_heap.Heap.cache;
  mutable stack_scanned : bool;
  mutable alloc_slots : int;
  mutable incr_count : int;
  mutable trace_debt : int;
}

let create ~tid ~thread ~stack_slots =
  {
    tid;
    thread;
    roots = Array.make stack_slots 0;
    cache = Cgc_heap.Heap.new_cache ();
    stack_scanned = false;
    alloc_slots = 0;
    incr_count = 0;
    trace_debt = 0;
  }

let root_get t i = t.roots.(i)
let root_set t i v = t.roots.(i) <- v
