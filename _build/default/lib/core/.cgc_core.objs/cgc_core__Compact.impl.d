lib/core/compact.ml: Array Cgc_heap Cgc_smp Cgc_util Hashtbl List
