lib/core/collector.ml: Array Card_clean Cgc_heap Cgc_packets Cgc_sim Cgc_smp Cgc_util Compact Config Float Gstats Hashtbl List Mctx Metering Printf Stealing Sweep Sys Tracer
