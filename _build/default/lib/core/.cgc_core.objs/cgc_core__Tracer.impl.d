lib/core/tracer.ml: Array Cgc_heap Cgc_packets Cgc_smp Compact Config List Printf Sys
