lib/core/collector.mli: Card_clean Cgc_heap Cgc_packets Cgc_sim Cgc_smp Compact Config Gstats Mctx Tracer
