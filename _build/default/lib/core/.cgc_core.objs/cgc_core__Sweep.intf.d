lib/core/sweep.mli: Cgc_heap
