lib/core/metering.mli: Config
