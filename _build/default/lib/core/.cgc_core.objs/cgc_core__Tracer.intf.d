lib/core/tracer.mli: Cgc_heap Cgc_packets Compact Config
