lib/core/card_clean.ml: Cgc_heap Cgc_smp List Tracer
