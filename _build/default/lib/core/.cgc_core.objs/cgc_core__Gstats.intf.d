lib/core/gstats.mli: Cgc_smp Cgc_util
