lib/core/compact.mli: Cgc_heap
