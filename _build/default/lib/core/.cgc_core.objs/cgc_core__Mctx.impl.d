lib/core/mctx.ml: Array Cgc_heap Cgc_sim
