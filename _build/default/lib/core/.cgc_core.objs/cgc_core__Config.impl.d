lib/core/config.ml:
