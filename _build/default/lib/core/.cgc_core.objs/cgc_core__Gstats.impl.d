lib/core/gstats.ml: Cgc_smp Cgc_util
