lib/core/mctx.mli: Cgc_heap Cgc_sim
