lib/core/sweep.ml: Array Cgc_heap Cgc_smp Cgc_util List
