lib/core/stealing.mli: Cgc_heap
