lib/core/config.mli:
