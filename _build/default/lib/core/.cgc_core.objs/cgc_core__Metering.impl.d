lib/core/metering.ml: Cgc_util Config Float
