lib/core/stealing.ml: Array Cgc_heap Cgc_sim Cgc_smp
