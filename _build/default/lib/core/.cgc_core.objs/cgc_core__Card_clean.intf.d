lib/core/card_clean.mli: Cgc_heap Tracer
