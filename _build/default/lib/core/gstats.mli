(** Aggregate collector statistics — everything the paper's evaluation
    section measures.

    Pause components follow the paper's breakdown: the {e mark} component
    of a stop-the-world pause covers final card cleaning, stack rescanning
    and mark completion; the {e sweep} component is the parallel bitwise
    sweep.  The metering criteria of Table 2 (CC Rate, premature-GC Free
    Space, Cards Left) are recorded per cycle. *)

module Stats = Cgc_util.Stats

type t = {
  pause_ms : Stats.t;  (** full stop-the-world pauses *)
  mark_ms : Stats.t;  (** mark component of each pause *)
  sweep_ms : Stats.t;  (** sweep component of each pause *)
  stw_cards : Stats.t;  (** cards cleaned in the stop-the-world phase *)
  conc_cards : Stats.t;  (** cards cleaned concurrently *)
  cc_ratio : Stats.t;  (** stw cards / concurrent cards, per cycle *)
  occupancy_end : Stats.t;  (** heap occupancy fraction after each cycle *)
  premature_free : Stats.t;  (** free fraction when tracing finished early *)
  cards_left : Stats.t;  (** registered cards left when halted by alloc failure *)
  tracing_factor : Stats.t;  (** actual/assigned per mutator increment *)
  fairness : Stats.t;  (** per-cycle stddev of tracing factors *)
  cas_per_mb : Stats.t;  (** CAS ops per cycle, normalised by live MB *)
  traced_conc_slots : Stats.t;  (** slots traced concurrently per cycle *)
  traced_stw_slots : Stats.t;  (** slots traced inside the pause per cycle *)
  float_slots : Stats.t;  (** live slots at end of cycle *)
  compact_ms : Stats.t;  (** evacuation + fix-up component of each pause *)
  evac_slots : Stats.t;  (** slots evacuated per cycle *)
  mutable cycles : int;
  mutable premature_cycles : int;  (** concurrent phase finished all work *)
  mutable halted_cycles : int;  (** concurrent phase halted by alloc failure *)
  mutable overflow_events : int;
  (* Mutator-utilization accounting (Table 3) *)
  mutable preconc_slots : int;  (** slots allocated between cycles *)
  mutable preconc_time : int;  (** cycles of pre-concurrent wall time *)
  mutable conc_slots : int;  (** slots allocated during concurrent phases *)
  mutable conc_time : int;  (** cycles of concurrent-phase wall time *)
  mutable total_alloc_slots : int;
}

val create : unit -> t

val reset : t -> unit
(** Zero everything — used to discard warm-up cycles before measuring. *)

val utilization : t -> float
(** Concurrent-phase allocation rate over pre-concurrent allocation rate
    (the paper's mutator-utilization proxy); 0 if unmeasurable. *)

val alloc_rate_preconc : t -> cost:Cgc_smp.Cost.t -> float
(** KB per millisecond. *)

val alloc_rate_conc : t -> cost:Cgc_smp.Cost.t -> float
