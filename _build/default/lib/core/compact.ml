module Heap = Cgc_heap.Heap
module Arena = Cgc_heap.Arena
module Alloc_bits = Cgc_heap.Alloc_bits
module Freelist = Cgc_heap.Freelist
module Machine = Cgc_smp.Machine
module Cost = Cgc_smp.Cost
module Bitvec = Cgc_util.Bitvec

(* A remembered-set entry packs (parent, slot): slots are bounded by the
   object-size field (26 bits), far below this shift. *)
let slot_bits = 20
let slot_mask = (1 lsl slot_bits) - 1

type t = {
  heap : Heap.t;
  mach : Machine.t;
  mutable lo : int;
  mutable hi : int;
  mutable is_active : bool;
  mutable remset : int array;
  mutable rn : int;
  fwd : (int, int) Hashtbl.t;
  dests : (int, unit) Hashtbl.t;
  pins : (int, unit) Hashtbl.t;
  mutable evac_objs : int;
  mutable evac_slots : int;
  mutable nfixups : int;
}

let create heap =
  {
    heap;
    mach = Heap.machine heap;
    lo = 0;
    hi = 0;
    is_active = false;
    remset = Array.make 1024 0;
    rn = 0;
    fwd = Hashtbl.create 256;
    dests = Hashtbl.create 256;
    pins = Hashtbl.create 64;
    evac_objs = 0;
    evac_slots = 0;
    nfixups = 0;
  }

let choose_area t ~cycle ~fraction =
  let n = Heap.nslots t.heap in
  let areas = max 1 (int_of_float (1.0 /. fraction)) in
  let span = n / areas in
  let which = cycle mod areas in
  t.lo <- max 1 (which * span);
  t.hi <- min n (t.lo + span);
  t.is_active <- true;
  t.rn <- 0;
  Hashtbl.reset t.fwd;
  Hashtbl.reset t.dests;
  Hashtbl.reset t.pins

let deactivate t = t.is_active <- false

let active t = t.is_active

let area t = if t.is_active then (t.lo, t.hi) else (0, 0)

let in_area t addr = t.is_active && addr >= t.lo && addr < t.hi

let pin_addr t addr = Hashtbl.replace t.pins addr ()

let record_ref t ~parent ~idx ~child =
  if idx > slot_mask then pin_addr t child
  else begin
  if t.rn = Array.length t.remset then begin
    let bigger = Array.make (2 * t.rn) 0 in
    Array.blit t.remset 0 bigger 0 t.rn;
    t.remset <- bigger
  end;
  t.remset.(t.rn) <- (parent lsl slot_bits) lor idx;
  t.rn <- t.rn + 1
  end

let pin t addr = if in_area t addr then pin_addr t addr

let remset_size t = t.rn
let pinned_count t = Hashtbl.length t.pins

let forward t addr =
  match Hashtbl.find_opt t.fwd addr with Some a -> a | None -> addr

(* Allocate a destination, preferring space outside the area (in-area
   attempts are set aside and returned afterwards).  When the free list
   only has in-area space left, an in-area destination is used — the
   object is then merely relocated within the area, which is correct but
   contributes no compaction; the destination is remembered so the
   evacuation scan does not try to move the fresh copy again. *)
let alloc_outside t size =
  let fl = Heap.freelist t.heap in
  let stashed = ref [] in
  let rec go tries =
    if tries = 0 then None
    else
      match Freelist.alloc fl size with
      | None -> None
      | Some a when a + size > t.lo && a < t.hi ->
          stashed := (a, size) :: !stashed;
          go (tries - 1)
      | Some a -> Some a
  in
  let r = go 16 in
  List.iter (fun (addr, size) -> Freelist.add fl ~addr ~size) !stashed;
  match r with
  | Some a -> Some a
  | None -> Freelist.alloc fl size

let evacuate t ~globals =
  if not t.is_active then 0
  else begin
    let arena = Heap.arena t.heap in
    let abits = Heap.alloc_bits t.heap in
    let mark = Heap.mark_bits t.heap in
    let c = t.mach.Machine.cost in
    let moved_slots = ref 0 in
    (* 1. Copy live unpinned objects out, building the forwarding table.
       Sweep ran just before us, so live == marked, and the vacated
       extents can go straight back to the free list. *)
    let freed = ref [] in
    let a = ref (Bitvec.next_set mark t.lo) in
    while !a < t.hi do
      let addr = !a in
      let size = Arena.size_of_sc arena addr in
      if (not (Hashtbl.mem t.pins addr)) && not (Hashtbl.mem t.dests addr)
      then begin
        match alloc_outside t size with
        | None -> () (* no room: leave it in place, still live *)
        | Some dst ->
            Hashtbl.replace t.dests dst ();
            Machine.charge t.mach
              (c.Cost.alloc_obj + (size * c.Cost.alloc_slot));
            for i = 0 to size - 1 do
              Arena.write_slot arena (dst + i) (Arena.read_slot_sc arena (addr + i))
            done;
            Alloc_bits.set abits dst;
            Bitvec.set mark dst;
            Hashtbl.replace t.fwd addr dst;
            Alloc_bits.clear abits addr;
            Bitvec.clear mark addr;
            freed := (addr, size) :: !freed;
            t.evac_objs <- t.evac_objs + 1;
            t.evac_slots <- t.evac_slots + size;
            moved_slots := !moved_slots + size
      end;
      a := Bitvec.next_set mark (max (addr + size) (addr + 1))
    done;
    Machine.flush t.mach;
    (* 2. Fix up the remembered slots.  A recorded parent may itself have
       moved; and a slot is rewritten only if it still points into the
       area and the target actually moved. *)
    for i = 0 to t.rn - 1 do
      let e = t.remset.(i) in
      let parent = forward t (e lsr slot_bits) in
      let idx = e land slot_mask in
      Machine.charge t.mach c.Cost.trace_slot;
      let v = Arena.ref_get_sc arena parent idx in
      if v >= t.lo && v < t.hi then
        match Hashtbl.find_opt t.fwd v with
        | Some dst ->
            Arena.ref_set_raw arena parent idx dst;
            t.nfixups <- t.nfixups + 1
        | None -> ()
    done;
    (* 3. Global roots are precise: rewrite them directly. *)
    Array.iteri
      (fun i v ->
        if v >= t.lo && v < t.hi then
          match Hashtbl.find_opt t.fwd v with
          | Some dst -> globals.(i) <- dst
          | None -> ())
      globals;
    (* 4. Return the vacated extents to the free list. *)
    List.iter
      (fun (addr, size) -> Freelist.add (Heap.freelist t.heap) ~addr ~size)
      !freed;
    Machine.flush t.mach;
    t.is_active <- false;
    !moved_slots
  end

let evacuated_objects t = t.evac_objs
let evacuated_slots t = t.evac_slots
let fixups t = t.nfixups
