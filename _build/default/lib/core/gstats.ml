module Stats = Cgc_util.Stats
module Cost = Cgc_smp.Cost

type t = {
  pause_ms : Stats.t;
  mark_ms : Stats.t;
  sweep_ms : Stats.t;
  stw_cards : Stats.t;
  conc_cards : Stats.t;
  cc_ratio : Stats.t;
  occupancy_end : Stats.t;
  premature_free : Stats.t;
  cards_left : Stats.t;
  tracing_factor : Stats.t;
  fairness : Stats.t;
  cas_per_mb : Stats.t;
  traced_conc_slots : Stats.t;
  traced_stw_slots : Stats.t;
  float_slots : Stats.t;
  compact_ms : Stats.t;
  evac_slots : Stats.t;
  mutable cycles : int;
  mutable premature_cycles : int;
  mutable halted_cycles : int;
  mutable overflow_events : int;
  mutable preconc_slots : int;
  mutable preconc_time : int;
  mutable conc_slots : int;
  mutable conc_time : int;
  mutable total_alloc_slots : int;
}

let create () =
  {
    pause_ms = Stats.create ();
    mark_ms = Stats.create ();
    sweep_ms = Stats.create ();
    stw_cards = Stats.create ();
    conc_cards = Stats.create ();
    cc_ratio = Stats.create ();
    occupancy_end = Stats.create ();
    premature_free = Stats.create ();
    cards_left = Stats.create ();
    tracing_factor = Stats.create ();
    fairness = Stats.create ();
    cas_per_mb = Stats.create ();
    traced_conc_slots = Stats.create ();
    traced_stw_slots = Stats.create ();
    float_slots = Stats.create ();
    compact_ms = Stats.create ();
    evac_slots = Stats.create ();
    cycles = 0;
    premature_cycles = 0;
    halted_cycles = 0;
    overflow_events = 0;
    preconc_slots = 0;
    preconc_time = 0;
    conc_slots = 0;
    conc_time = 0;
    total_alloc_slots = 0;
  }

let reset t =
  Stats.clear t.pause_ms;
  Stats.clear t.mark_ms;
  Stats.clear t.sweep_ms;
  Stats.clear t.stw_cards;
  Stats.clear t.conc_cards;
  Stats.clear t.cc_ratio;
  Stats.clear t.occupancy_end;
  Stats.clear t.premature_free;
  Stats.clear t.cards_left;
  Stats.clear t.tracing_factor;
  Stats.clear t.fairness;
  Stats.clear t.cas_per_mb;
  Stats.clear t.traced_conc_slots;
  Stats.clear t.traced_stw_slots;
  Stats.clear t.float_slots;
  Stats.clear t.compact_ms;
  Stats.clear t.evac_slots;
  t.cycles <- 0;
  t.premature_cycles <- 0;
  t.halted_cycles <- 0;
  t.overflow_events <- 0;
  t.preconc_slots <- 0;
  t.preconc_time <- 0;
  t.conc_slots <- 0;
  t.conc_time <- 0;
  t.total_alloc_slots <- 0

let rate slots time cost =
  if time <= 0 then 0.0
  else
    let kb = float_of_int (slots * 8) /. 1024.0 in
    kb /. Cost.ms_of_cycles cost time

let alloc_rate_preconc t ~cost = rate t.preconc_slots t.preconc_time cost
let alloc_rate_conc t ~cost = rate t.conc_slots t.conc_time cost

let utilization t =
  let pre = t.preconc_slots and pt = t.preconc_time in
  let con = t.conc_slots and ct = t.conc_time in
  (* At tracing rate 1 there is (almost) no pre-concurrent phase, so the
     baseline rate cannot be measured from this run (the paper hits the
     same problem, footnote 6); report 0 and let callers substitute a
     baseline from another run. *)
  if pt <= 0 || ct <= 0 || pre <= 0 || pt * 10 < ct then 0.0
  else
    let pre_rate = float_of_int pre /. float_of_int pt in
    let conc_rate = float_of_int con /. float_of_int ct in
    conc_rate /. pre_rate
