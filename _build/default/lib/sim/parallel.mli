(** Fork-join helper for the parallel GC phases.

    The stop-the-world phases (final card cleaning, mark completion,
    bitwise sweep) are {e fully parallel} in the paper: the initiating
    thread plus [workers - 1] helper threads all run the phase body and
    meet at a barrier.  The helpers are spawned at [High] priority so they
    are schedulable while the world is stopped. *)

val run : Sched.t -> workers:int -> (int -> unit) -> unit
(** [run sched ~workers f] executes [f 0 .. f (workers-1)] with the
    calling simulated thread acting as worker [0] and [workers - 1]
    freshly spawned high-priority threads as the rest, returning when all
    have finished.  Must be called from inside a simulated thread. *)
