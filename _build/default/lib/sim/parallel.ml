let run sched ~workers f =
  if workers <= 0 then invalid_arg "Parallel.run: workers";
  let remaining = ref (workers - 1) in
  for i = 1 to workers - 1 do
    ignore
      (Sched.spawn sched ~name:(Printf.sprintf "gc-worker-%d" i) ~prio:High
         (fun () ->
           f i;
           decr remaining))
  done;
  f 0;
  while !remaining > 0 do
    Sched.yield ()
  done
