lib/sim/parallel.ml: Printf Sched
