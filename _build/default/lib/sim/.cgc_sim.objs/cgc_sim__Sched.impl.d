lib/sim/sched.ml: Array Cgc_smp Effect Printexc Printf Queue
