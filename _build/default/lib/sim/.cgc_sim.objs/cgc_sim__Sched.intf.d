lib/sim/sched.mli:
