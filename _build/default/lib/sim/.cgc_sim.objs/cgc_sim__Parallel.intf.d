lib/sim/parallel.mli: Sched
