module Mutator = Cgc_runtime.Mutator

let build_list m ~len ~node_slots =
  let head = ref 0 in
  for _ = 1 to len do
    let n = Mutator.alloc m ~nrefs:1 ~size:node_slots in
    if !head <> 0 then Mutator.set_ref m n 0 !head;
    head := n;
    (* Keep the partial list rooted across the next allocation (which may
       run a GC increment or stop the world). *)
    Mutator.root_set m (Mutator.n_roots m - 1) n
  done;
  Mutator.root_set m (Mutator.n_roots m - 1) 0;
  !head

let rec build_tree_rooted m ~depth ~fanout ~node_slots ~root_slot =
  if depth = 0 then Mutator.alloc m ~nrefs:0 ~size:node_slots
  else begin
    let n = Mutator.alloc m ~nrefs:fanout ~size:(max node_slots (fanout + 1)) in
    Mutator.root_set m root_slot n;
    for i = 0 to fanout - 1 do
      let child =
        build_tree_rooted m ~depth:(depth - 1) ~fanout ~node_slots
          ~root_slot:(root_slot - 1)
      in
      Mutator.set_ref m n i child;
      Mutator.root_set m root_slot n
    done;
    n
  end

let build_tree m ~depth ~fanout ~node_slots =
  if depth > 8 then invalid_arg "Objgraph.build_tree: depth too deep for root slots";
  let root_slot = Mutator.n_roots m - 1 in
  let n = build_tree_rooted m ~depth ~fanout ~node_slots ~root_slot in
  for i = root_slot - depth to root_slot do
    if i >= 0 then Mutator.root_set m i 0
  done;
  n

let list_length m head =
  let n = ref 0 in
  let cur = ref head in
  while !cur <> 0 do
    incr n;
    cur := Mutator.get_ref m !cur 0
  done;
  !n

let rec count_tree m node =
  if node = 0 then 0
  else begin
    let coll = Mutator.collector m in
    let nrefs =
      Cgc_heap.Arena.nrefs_of
        (Cgc_heap.Heap.arena (Cgc_core.Collector.heap coll))
        node
    in
    let total = ref 1 in
    for i = 0 to nrefs - 1 do
      total := !total + count_tree m (Mutator.get_ref m node i)
    done;
    !total
  end
