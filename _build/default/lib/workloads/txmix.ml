module Mutator = Cgc_runtime.Mutator
module Collector = Cgc_core.Collector
module Prng = Cgc_util.Prng

type profile = {
  live_lists : int;
  list_len : int;
  node_slots : int;
  leaf_fanout : int;
  leaf_slots : int;
  transient_objs : int;
  transient_slots : int;
  mutations : int;
  tx_work : int;
  think_mean : int;
  large_every : int;
  large_slots : int;
  junk_roots : bool;
}

let node_group_slots p = p.node_slots + (p.leaf_fanout * p.leaf_slots)

let resident_slots p =
  (p.live_lists * p.list_len * node_group_slots p) + p.live_lists + 1

let scale_residency p ~target_slots =
  let per_list = max 1 (p.live_lists * node_group_slots p) in
  let len = max 1 (target_slots / per_list) in
  { p with list_len = len }

(* Root-slot conventions inside a transaction:
   0: resident-set directory (private workers only)
   1: transient chain head
   2: transient large object
   3: junk (non-pointer) slot
   4: pinned old list head during a mutation
   5: pinned list tail during a mutation
   6: node under construction (build_node)
   7: partial list head during resident-set construction *)

(* A list node carries its [next] pointer in ref slot 0 and leaf objects
   (order lines) in the following slots. *)
let build_node p m ~next =
  let node =
    Mutator.alloc m ~nrefs:(1 + p.leaf_fanout)
      ~size:(max p.node_slots (2 + p.leaf_fanout))
  in
  if next <> 0 then Mutator.set_ref m node 0 next;
  Mutator.root_set m 6 node;
  for j = 0 to p.leaf_fanout - 1 do
    let leaf = Mutator.alloc m ~nrefs:0 ~size:p.leaf_slots in
    Mutator.set_ref m node (1 + j) leaf;
    Mutator.root_set m 6 node
  done;
  Mutator.root_set m 6 0;
  node

let build_resident p m =
  let dir = Mutator.alloc m ~nrefs:p.live_lists ~size:(p.live_lists + 1) in
  Mutator.root_set m 0 dir;
  for i = 0 to p.live_lists - 1 do
    let head = ref 0 in
    for _ = 1 to p.list_len do
      head := build_node p m ~next:!head;
      Mutator.root_set m 7 !head
    done;
    Mutator.set_ref m dir i !head;
    Mutator.root_set m 7 0;
    Mutator.root_set m 0 dir
  done;
  dir

let mutate_one p m ~dir =
  let rng = Mutator.rng m in
  let i = Prng.int rng p.live_lists in
  let oldh = Mutator.get_ref m dir i in
  (* Pin the nodes we read before any allocation can trigger a GC: once
     the directory stops referencing them they are only reachable from
     these roots. *)
  Mutator.root_set m 4 oldh;
  let tail = if oldh = 0 then 0 else Mutator.get_ref m oldh 0 in
  Mutator.root_set m 5 tail;
  let n = build_node p m ~next:tail in
  Mutator.set_ref m dir i n;
  Mutator.root_set m 4 0;
  Mutator.root_set m 5 0

let transaction p m ~dir =
  let rng = Mutator.rng m in
  (* Transient allocation: a chain dropped at transaction end. *)
  let prev = ref 0 in
  for _ = 1 to p.transient_objs do
    let o = Mutator.alloc m ~nrefs:1 ~size:p.transient_slots in
    if !prev <> 0 then Mutator.set_ref m o 0 !prev;
    prev := o;
    Mutator.root_set m 1 o
  done;
  for _ = 1 to p.mutations do
    mutate_one p m ~dir
  done;
  if p.large_every > 0 && Prng.int rng p.large_every = 0 then begin
    let l = Mutator.alloc m ~nrefs:0 ~size:p.large_slots in
    Mutator.root_set m 2 l
  end;
  if p.junk_roots then
    Mutator.root_set m 3 (Prng.int rng max_int);
  Mutator.work m p.tx_work;
  Mutator.root_set m 1 0;
  Mutator.root_set m 2 0;
  if p.think_mean > 0 then
    Mutator.think m
      (1 + int_of_float (Prng.exponential rng (float_of_int p.think_mean)));
  Mutator.tx_done m

let body p m =
  let dir = build_resident p m in
  while not (Mutator.stopped m) do
    transaction p m ~dir
  done

let shared_body p ~global_slot ~builder m =
  let coll = Mutator.collector m in
  if builder then begin
    let dir = build_resident p m in
    Collector.global_set coll global_slot dir
  end;
  (* Wait until the warehouse database is published. *)
  while Collector.global_get coll global_slot = 0 && not (Mutator.stopped m) do
    Mutator.think m 50_000
  done;
  while not (Mutator.stopped m) do
    let dir = Collector.global_get coll global_slot in
    Mutator.root_set m 0 dir;
    transaction p m ~dir
  done
