(** Helpers for building heap object graphs through the mutator API. *)

val build_list : Cgc_runtime.Mutator.t -> len:int -> node_slots:int -> int
(** A singly linked list of [len] nodes, each [node_slots] big with its
    [next] pointer in reference slot 0.  Returns the head address (0 when
    [len = 0]).  The list under construction is kept reachable through
    stack-root slot usage by the caller; during construction the partial
    list is rooted via the nodes' links from the most recent allocation,
    so the caller must hold the returned head in a root promptly. *)

val build_tree :
  Cgc_runtime.Mutator.t -> depth:int -> fanout:int -> node_slots:int -> int
(** A complete tree of the given depth (depth 0 = single leaf).  Uses
    stack-root slot [n_roots - 1] as a temporary during construction. *)

val list_length : Cgc_runtime.Mutator.t -> int -> int
(** Walk a list built by {!build_list}. *)

val count_tree : Cgc_runtime.Mutator.t -> int -> int
(** Number of nodes in a tree built by {!build_tree}. *)
