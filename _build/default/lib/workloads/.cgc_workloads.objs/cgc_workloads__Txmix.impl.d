lib/workloads/txmix.ml: Cgc_core Cgc_runtime Cgc_util
