lib/workloads/specjbb.mli: Cgc_core Cgc_runtime Txmix
