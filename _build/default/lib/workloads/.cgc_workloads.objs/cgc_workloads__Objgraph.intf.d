lib/workloads/objgraph.mli: Cgc_runtime
