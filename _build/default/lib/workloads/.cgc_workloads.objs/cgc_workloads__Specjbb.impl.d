lib/workloads/specjbb.ml: Cgc_heap Cgc_runtime Printf Txmix
