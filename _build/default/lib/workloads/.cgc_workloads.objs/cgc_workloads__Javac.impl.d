lib/workloads/javac.ml: Cgc_core Cgc_heap Cgc_runtime Objgraph
