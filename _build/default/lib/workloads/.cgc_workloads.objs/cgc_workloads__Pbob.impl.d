lib/workloads/pbob.ml: Cgc_core Cgc_heap Cgc_runtime Printf Txmix
