lib/workloads/pbob.mli: Cgc_core Cgc_runtime Txmix
