lib/workloads/txmix.mli: Cgc_runtime
