lib/workloads/objgraph.ml: Cgc_core Cgc_heap Cgc_runtime
