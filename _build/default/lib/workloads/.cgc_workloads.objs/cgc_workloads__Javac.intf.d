lib/workloads/javac.mli: Cgc_core Cgc_runtime
