lib/runtime/mutator.ml: Array Cgc_core Cgc_sim Cgc_util
