lib/runtime/vm.mli: Cgc_core Cgc_heap Cgc_sim Cgc_smp Mutator
