lib/runtime/mutator.mli: Cgc_core Cgc_sim Cgc_util
