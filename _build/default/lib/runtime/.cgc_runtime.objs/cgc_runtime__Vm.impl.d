lib/runtime/vm.ml: Cgc_core Cgc_heap Cgc_packets Cgc_sim Cgc_smp Cgc_util Mutator Printf
