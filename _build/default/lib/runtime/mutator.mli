(** The mutator-side API — what "application code" uses.

    A mutator owns a root array (its simulated stack, scanned
    conservatively by the collector), a private allocation cache, and a
    deterministic PRNG stream.  All reference stores go through the
    collector's card-marking write barrier. *)

type t

val make :
  vm_sched:Cgc_sim.Sched.t ->
  coll:Cgc_core.Collector.t ->
  mctx:Cgc_core.Mctx.t ->
  rng:Cgc_util.Prng.t ->
  on_tx:(unit -> unit) ->
  t
(** Used by {!Vm.spawn_mutator}; applications normally never call this. *)

val alloc : t -> nrefs:int -> size:int -> int
(** Allocate an object of [size] slots whose first [nrefs] field slots are
    references (initialised to null).  May perform incremental GC work or
    stop the world.  @raise Cgc_core.Collector.Out_of_memory. *)

val set_ref : t -> int -> int -> int -> unit
(** [set_ref m parent i child] stores through the write barrier. *)

val get_ref : t -> int -> int -> int

val root_set : t -> int -> int -> unit
(** Store any value (reference or not — the scan is conservative) into a
    stack slot. *)

val root_get : t -> int -> int

val n_roots : t -> int

val work : t -> int -> unit
(** Consume CPU cycles (application compute). *)

val think : t -> int -> unit
(** Sleep without using a CPU (user think time / IO wait) — this is what
    creates the processor idle time the background GC threads soak up. *)

val tx_done : t -> unit
(** Mark a completed transaction: bumps the throughput counter and spends
    any accumulated cycle debt. *)

val transactions : t -> int

val rng : t -> Cgc_util.Prng.t

val stopped : t -> bool
(** The simulation asked threads to wind down. *)

val now_cycles : t -> int
(** Current simulated time in cycles (for workload-side latency
    measurement). *)

val collector : t -> Cgc_core.Collector.t
val mctx : t -> Cgc_core.Mctx.t
