type t = {
  title : string;
  header : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~header = { title; header; rows = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg "Table.add_row: wrong arity";
  t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.header :: rows in
  let ncols = List.length t.header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let pad c s =
    let w = List.nth widths c in
    let n = w - String.length s in
    if n <= 0 then s else String.make n ' ' ^ s
  in
  let line row = String.concat "  " (List.mapi pad row) in
  let rule =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (line t.header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print t = print_string (render t); print_newline ()

let fms x = Printf.sprintf "%.1f" x
let fpct x = Printf.sprintf "%.1f%%" (100.0 *. x)
let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let f3 x = Printf.sprintf "%.3f" x
