(** Aligned plain-text table rendering for the experiment reports.

    Every table and figure of the paper is re-emitted by the benchmark
    harness as a text table; this module does the column alignment. *)

type t

val create : title:string -> header:string list -> t

val add_row : t -> string list -> unit

val render : t -> string
(** The table as a string, title first, columns padded, with a rule under
    the header. *)

val print : t -> unit
(** [render] followed by a newline on stdout. *)

val fms : float -> string
(** Format a float as milliseconds with one decimal, e.g. ["266.3"]. *)

val fpct : float -> string
(** Format a fraction as a percentage, e.g. [0.142] -> ["14.2%"]. *)

val f1 : float -> string
(** One decimal place. *)

val f2 : float -> string
(** Two decimal places. *)

val f3 : float -> string
(** Three decimal places. *)
