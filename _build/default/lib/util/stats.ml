type t = {
  mutable data : float array;
  mutable n : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable mn : float;
  mutable mx : float;
}

let create () =
  { data = Array.make 16 0.0; n = 0; sum = 0.0; sumsq = 0.0;
    mn = infinity; mx = neg_infinity }

let add t x =
  if t.n = Array.length t.data then begin
    let bigger = Array.make (2 * t.n) 0.0 in
    Array.blit t.data 0 bigger 0 t.n;
    t.data <- bigger
  end;
  t.data.(t.n) <- x;
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  t.sumsq <- t.sumsq +. (x *. x);
  if x < t.mn then t.mn <- x;
  if x > t.mx then t.mx <- x

let count t = t.n
let sum t = t.sum
let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

let stddev t =
  if t.n < 2 then 0.0
  else
    let m = mean t in
    let v = (t.sumsq /. float_of_int t.n) -. (m *. m) in
    if v <= 0.0 then 0.0 else sqrt v

let min t = t.mn
let max t = t.mx

let percentile t p =
  if t.n = 0 then 0.0
  else begin
    let sorted = Array.sub t.data 0 t.n in
    Array.sort compare sorted;
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) in
    let idx = Stdlib.max 0 (Stdlib.min (t.n - 1) (rank - 1)) in
    sorted.(idx)
  end

let samples t = Array.sub t.data 0 t.n

let merge a b =
  let t = create () in
  Array.iter (add t) (samples a);
  Array.iter (add t) (samples b);
  t

let clear t =
  t.n <- 0;
  t.sum <- 0.0;
  t.sumsq <- 0.0;
  t.mn <- infinity;
  t.mx <- neg_infinity
