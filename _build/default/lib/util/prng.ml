type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next t }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* [Int64.to_int] keeps the low 63 bits and can come out negative;
     clearing the sign bit gives a uniform non-negative int. *)
  let x = Int64.to_int (next t) land max_int in
  x mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t x =
  (* 53 high bits give a uniform double in [0,1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next t) 11) in
  Float.of_int bits /. 9007199254740992.0 *. x

let bool t = Int64.logand (next t) 1L = 1L

let chance t p = float t 1.0 < p

let exponential t mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. Float.log u

let shuffle t a =
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
