(** Deterministic pseudo-random number generator (SplitMix64).

    Every source of randomness in the simulator flows through a [Prng.t]
    seeded by the experiment configuration, so that any run is reproducible
    bit-for-bit.  SplitMix64 is used because it is trivially splittable:
    each simulated thread can own an independent stream derived from the
    root seed without coordination. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val split : t -> t
(** [split t] derives an independent generator, advancing [t]. *)

val next : t -> int64
(** [next t] returns the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool
(** A fair coin flip. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential distribution with the given
    mean; used for think times and object lifetimes. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle; used by the store-buffer drain to model
    weak-ordering write reordering. *)
