(** Exponential smoothing average.

    Section 3 of the paper estimates the live-trace volume [L], the
    dirty-card volume [M] and the background tracing rate [Best] by
    exponentially smoothing observations from previous collection cycles
    (or measurement windows).  This module is that estimator. *)

type t

val create : ?alpha:float -> init:float -> unit -> t
(** [create ~alpha ~init ()] makes an estimator whose first value is
    [init].  [alpha] (default 0.5) is the weight given to each new
    observation. *)

val observe : t -> float -> unit
(** Feed one observation. *)

val value : t -> float
(** Current smoothed estimate. *)

val samples : t -> int
(** Number of observations folded in so far (excluding [init]). *)
