(** Streaming descriptive statistics.

    Used throughout the experiment harness for pause times, tracing
    factors, allocation rates, etc.  Keeps all samples so that maxima and
    percentiles (needed for the paper's "Max Pause Time" rows) are exact. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int
val sum : t -> float
val mean : t -> float
(** 0 when empty. *)

val stddev : t -> float
(** Population standard deviation; 0 when fewer than two samples. *)

val min : t -> float
(** +inf when empty. *)

val max : t -> float
(** -inf when empty. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [0,100]; nearest-rank. 0 when empty. *)

val samples : t -> float array
(** A copy of the samples in insertion order. *)

val merge : t -> t -> t
(** Combined statistics over both sample sets. *)

val clear : t -> unit
