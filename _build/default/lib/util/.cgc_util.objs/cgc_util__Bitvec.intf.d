lib/util/bitvec.mli:
