lib/util/prng.mli:
