lib/util/ewma.mli:
