lib/util/stats.mli:
