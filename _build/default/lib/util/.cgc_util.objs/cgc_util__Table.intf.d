lib/util/table.mli:
