lib/util/ewma.ml:
