type t = { alpha : float; mutable v : float; mutable n : int }

let create ?(alpha = 0.5) ~init () =
  if alpha <= 0.0 || alpha > 1.0 then invalid_arg "Ewma.create: alpha in (0,1]";
  { alpha; v = init; n = 0 }

let observe t x =
  t.v <- (t.alpha *. x) +. ((1.0 -. t.alpha) *. t.v);
  t.n <- t.n + 1

let value t = t.v
let samples t = t.n
