# Tier-1 verification: everything `make verify` runs must stay green.
#
# The doc and formatting gates only run when the corresponding tool is
# installed (odoc / ocamlformat are not part of the minimal toolchain);
# when present they are part of the tier-1 bar.

.PHONY: all build test doc doc-strict fmt-check verify fuzz bench \
	bench-smoke bench-determinism serve-smoke cluster-smoke chaos-smoke \
	perf-smoke tails-smoke gen-smoke clean

# Number of random configurations `make fuzz` tries.
FUZZ_COUNT ?= 100

# Host domains the benchmark matrix fans its cells over.
JOBS ?= 1

# Every generated artefact (bench JSON, traces, smoke outputs) lands
# here, keeping the repo root clean; the directory is gitignored.
ART ?= _artifacts

# Floor for `make perf-smoke`: minimum host events/sec the fast bench
# matrix must sustain.  The default sits ~10x below what this container
# measures (~120k ev/s), so it only fires on large regressions — an
# accidentally quadratic hot path, a per-event allocation — and not on
# host noise.
PERF_MIN_EPS ?= 10000

# Ratio gate for `make perf-smoke`: minimum hostSpeedupVsPr8 (this
# build's whole-matrix events/sec over the committed PR 8 baseline's).
# 0.9 tolerates host noise while catching a real slowdown vs the
# baseline recorded in bench/baselines/.  On hosts that are not
# comparable to the baseline machine, lower it (CI does) or set
# CGC_BASELINE= to skip the comparison entirely.
PERF_MIN_RATIO ?= 0.9

all: build

build:
	dune build

test:
	dune runtest

# Build the API docs if odoc is available; no-op (with a note) otherwise.
doc:
	@if command -v odoc >/dev/null 2>&1; then \
	  dune build @doc; \
	else \
	  echo "odoc not installed — skipping dune build @doc"; \
	fi

# Like doc, but odoc warnings (unresolved references, bad markup) in
# the cluster layer are errors — the lint bar for the newest .mli
# surface, tightened layer by layer as older docs are cleaned up.
doc-strict:
	@if command -v odoc >/dev/null 2>&1; then \
	  dune build @doc 2>&1 | tee /tmp/odoc.log; \
	  if grep -i "warning" /tmp/odoc.log | grep -q "cluster"; then \
	    echo "doc-strict: odoc warnings in lib/cluster are errors"; \
	    exit 1; \
	  fi; \
	else \
	  echo "odoc not installed — skipping doc-strict"; \
	fi

# Check formatting if ocamlformat is available; no-op otherwise.
fmt-check:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed — skipping dune fmt --check"; \
	fi

verify: build test doc fmt-check

# Longer-running configuration fuzz (random collector configs + fault
# scenarios under the heap verifier).  On failure QCheck prints the
# full failing configuration including its seed, so the run can be
# replayed deterministically.
fuzz: build
	FUZZ_COUNT=$(FUZZ_COUNT) dune exec test/test_fuzz.exe

# Full benchmark matrix (workloads x thread counts x tracing rates,
# plus serve and sharded-cluster cells), every VM cell traced and
# profiled.  Writes BENCH_PR10.json (schema cgcsim-bench-v1) plus a
# Chrome trace of cell 0; fails if any cell dropped trace events to
# ring overflow.  JOBS=N runs the cells on N OCaml domains — simulated
# results are identical at every N, only the host* timing fields
# change.
bench: build
	mkdir -p $(ART)
	dune exec bench/main.exe -- matrix --jobs $(JOBS) \
	  --out $(ART)/BENCH_PR10.json --trace-out $(ART)/bench-cell0.trace.json

# Shrunk matrix for CI (<60 s): one SPECjbb cell, one pBOB cell, serve
# cells (cgc and gen) and one cluster cell, then the offline analyzer
# re-reads the emitted trace and fails on ring drops or a schema
# mismatch.
bench-smoke: build
	mkdir -p $(ART)
	CGC_BENCH_FAST=1 dune exec bench/main.exe -- matrix --jobs $(JOBS) \
	  --out $(ART)/BENCH_PR10.json --trace-out $(ART)/bench-cell0.trace.json
	dune exec bin/cgcsim.exe -- analyze \
	  --trace $(ART)/bench-cell0.trace.json --fail-on-drops

# Run the smoke matrix twice — serial and on 2 domains — and fail if
# the simulated results differ anywhere: the JSON bodies must match
# once the host* timing fields are dropped, and the cell-0 traces must
# be byte-identical.
bench-determinism: build
	mkdir -p $(ART)
	CGC_BENCH_FAST=1 dune exec bench/main.exe -- matrix \
	  --out $(ART)/bench-serial.json --trace-out $(ART)/bench-serial.trace.json
	CGC_BENCH_FAST=1 dune exec bench/main.exe -- matrix --jobs 2 \
	  --out $(ART)/bench-par.json --trace-out $(ART)/bench-par.trace.json
	grep -v '"host' $(ART)/bench-serial.json > $(ART)/bench-serial.filtered.json
	grep -v '"host' $(ART)/bench-par.json > $(ART)/bench-par.filtered.json
	diff -u $(ART)/bench-serial.filtered.json $(ART)/bench-par.filtered.json
	cmp $(ART)/bench-serial.trace.json $(ART)/bench-par.trace.json
	@echo "bench determinism OK: serial and --jobs 2 agree"

# Short open-loop server run under both collectors, with determinism
# checks: two same-seed serve runs must produce byte-identical reports
# and traces, and an overloaded run with an SLO must exit 6.
serve-smoke: build
	mkdir -p $(ART)
	dune exec bin/cgcsim.exe -- serve -c cgc --rate 6000 --ms 600 \
	  --heap-mb 16 --seed 1 --json $(ART)/serve-a.json \
	  --trace-out $(ART)/serve-a.trace.json
	dune exec bin/cgcsim.exe -- serve -c cgc --rate 6000 --ms 600 \
	  --heap-mb 16 --seed 1 --json $(ART)/serve-b.json \
	  --trace-out $(ART)/serve-b.trace.json
	cmp $(ART)/serve-a.json $(ART)/serve-b.json
	cmp $(ART)/serve-a.trace.json $(ART)/serve-b.trace.json
	dune exec bin/cgcsim.exe -- serve -c stw --rate 6000 --ms 600 \
	  --heap-mb 16 --seed 1 --verify > /dev/null
	dune exec bin/cgcsim.exe -- analyze \
	  --trace $(ART)/serve-a.trace.json --fail-on-drops > /dev/null
	@dune exec bin/cgcsim.exe -- serve -c stw --rate 20000 --ms 600 \
	  --heap-mb 16 --seed 1 --slo-ms 5 > /dev/null 2>&1; st=$$?; \
	  if [ $$st -ne 6 ]; then \
	    echo "expected SLO breach (exit 6) under overloaded STW, got $$st"; \
	    exit 1; \
	  fi
	@echo "serve smoke OK: deterministic reports, traces clean, SLO gate fires"

# Sharded-cluster smoke: a 4-shard run twice at different --jobs must
# produce byte-identical fleet reports and per-shard traces, one shard
# trace must analyze clean, and an overloaded fleet with an SLO must
# exit 6.
cluster-smoke: build
	mkdir -p $(ART)
	dune exec bin/cgcsim.exe -- cluster --shards 4 --policy lqd \
	  --rate 12000 --slo-ms 50 --heap-mb 16 --ms 600 --seed 1 --jobs 1 \
	  --json $(ART)/cluster-a.json --trace-out $(ART)/cluster-a
	dune exec bin/cgcsim.exe -- cluster --shards 4 --policy lqd \
	  --rate 12000 --slo-ms 50 --heap-mb 16 --ms 600 --seed 1 --jobs 4 \
	  --json $(ART)/cluster-b.json --trace-out $(ART)/cluster-b
	cmp $(ART)/cluster-a.json $(ART)/cluster-b.json
	for k in 0 1 2 3; do \
	  cmp $(ART)/cluster-a.shard$$k.json $(ART)/cluster-b.shard$$k.json \
	    || exit 1; \
	done
	dune exec bin/cgcsim.exe -- analyze \
	  --trace $(ART)/cluster-a.shard0.json --fail-on-drops > /dev/null
	@dune exec bin/cgcsim.exe -- cluster --shards 2 -c stw --rate 40000 \
	  --ms 600 --heap-mb 16 --seed 1 --slo-ms 5 --jobs 2 \
	  > /dev/null 2>&1; st=$$?; \
	  if [ $$st -ne 6 ]; then \
	    echo "expected fleet SLO breach (exit 6), got $$st"; \
	    exit 1; \
	  fi
	@echo "cluster smoke OK: fleet report and shard traces deterministic, SLO gate fires"

# Generational smoke: two same-seed gen-mode serve runs must produce
# byte-identical reports and traces (minor collections included), a
# gen-mode run must survive the heap + nursery invariant verifier, the
# trace must analyze clean, and a gen-mode fleet must produce
# byte-identical fleet reports and per-shard traces at --jobs 1 vs
# --jobs 4 — host parallelism must not perturb a single minor.
gen-smoke: build
	mkdir -p $(ART)
	dune exec bin/cgcsim.exe -- serve --gc gen --rate 6000 --ms 600 \
	  --heap-mb 16 --seed 1 --json $(ART)/gen-a.json \
	  --trace-out $(ART)/gen-a.trace.json
	dune exec bin/cgcsim.exe -- serve --gc gen --rate 6000 --ms 600 \
	  --heap-mb 16 --seed 1 --json $(ART)/gen-b.json \
	  --trace-out $(ART)/gen-b.trace.json
	cmp $(ART)/gen-a.json $(ART)/gen-b.json
	cmp $(ART)/gen-a.trace.json $(ART)/gen-b.trace.json
	dune exec bin/cgcsim.exe -- serve --gc gen --rate 6000 --ms 600 \
	  --heap-mb 16 --seed 1 --verify > /dev/null
	dune exec bin/cgcsim.exe -- analyze \
	  --trace $(ART)/gen-a.trace.json --fail-on-drops > /dev/null
	dune exec bin/cgcsim.exe -- cluster --gc gen --shards 2 --policy lqd \
	  --rate 6000 --slo-ms 50 --heap-mb 16 --ms 600 --seed 1 --jobs 1 \
	  --json $(ART)/gen-fleet-a.json --trace-out $(ART)/gen-fleet-a
	dune exec bin/cgcsim.exe -- cluster --gc gen --shards 2 --policy lqd \
	  --rate 6000 --slo-ms 50 --heap-mb 16 --ms 600 --seed 1 --jobs 4 \
	  --json $(ART)/gen-fleet-b.json --trace-out $(ART)/gen-fleet-b
	cmp $(ART)/gen-fleet-a.json $(ART)/gen-fleet-b.json
	for k in 0 1; do \
	  cmp $(ART)/gen-fleet-a.shard$$k.json $(ART)/gen-fleet-b.shard$$k.json \
	    || exit 1; \
	done
	@echo "gen smoke OK: minor collections deterministic across seeds and --jobs, verifier clean"

# Fleet chaos smoke: the same shard-crash campaign at --jobs 1 and
# --jobs 4 must produce byte-identical fleet reports and per-incarnation
# traces (the crash victim's trace included), a trace must analyze
# clean, and a fleet whose degradation ladder bottoms out must exit 7.
chaos-smoke: build
	mkdir -p $(ART)
	dune exec bin/cgcsim.exe -- cluster --shards 4 --policy lqd \
	  --rate 8000 --slo-ms 50 --heap-mb 16 --ms 600 --seed 1 --jobs 1 \
	  --chaos shard-crash --json $(ART)/chaos-a.json \
	  --trace-out $(ART)/chaos-a
	dune exec bin/cgcsim.exe -- cluster --shards 4 --policy lqd \
	  --rate 8000 --slo-ms 50 --heap-mb 16 --ms 600 --seed 1 --jobs 4 \
	  --chaos shard-crash --json $(ART)/chaos-b.json \
	  --trace-out $(ART)/chaos-b
	cmp $(ART)/chaos-a.json $(ART)/chaos-b.json
	for f in $(ART)/chaos-a.shard*.json; do \
	  cmp $$f $$(echo $$f | sed 's/chaos-a/chaos-b/') || exit 1; \
	done
	dune exec bin/cgcsim.exe -- analyze \
	  --trace $(ART)/chaos-a.shard0.json --fail-on-drops > /dev/null
	@dune exec bin/cgcsim.exe -- cluster --shards 1 --rate 4000 --ms 600 \
	  --heap-mb 16 --seed 1 --chaos shard-crash --give-up 10 \
	  > /dev/null 2>&1; st=$$?; \
	  if [ $$st -ne 7 ]; then \
	    echo "expected Fleet_unavailable (exit 7), got $$st"; \
	    exit 1; \
	  fi
	@echo "chaos smoke OK: chaos campaigns deterministic, exit-7 gate fires"

# Host-throughput gates: run the fast bench matrix and fail if
#   (a) the whole-matrix hostEventsPerSec (observability events emitted
#       per host second — the one deliberately non-deterministic family
#       of fields) falls below the absolute PERF_MIN_EPS floor, or
#   (b) hostSpeedupVsPr8 (this build vs the committed PR 8 baseline in
#       bench/baselines/) falls below PERF_MIN_RATIO.
# The fast matrix takes ~2 s, so a single sample sees +/-20% host
# noise; the gate therefore takes the best of up to three runs and
# fails only when all three miss.  The ratio gate is skipped — with a
# note — when the comparison was disabled via CGC_BASELINE= or the
# baseline file is absent.
perf-smoke: build
	@mkdir -p $(ART); \
	attempt=0; eps=; ratio=; \
	while [ $$attempt -lt 3 ]; do \
	  attempt=$$((attempt + 1)); \
	  CGC_BENCH_FAST=1 dune exec bench/main.exe -- matrix --jobs $(JOBS) \
	    --out $(ART)/BENCH_PR10.json \
	    --trace-out $(ART)/perf-cell0.trace.json > /dev/null; \
	  eps=$$(sed -n 's/.*"hostEventsPerSec": \([0-9.]*\).*/\1/p' \
	    $(ART)/BENCH_PR10.json | head -n 1); \
	  if [ -z "$$eps" ]; then \
	    echo "perf-smoke: hostEventsPerSec missing from BENCH_PR10.json"; \
	    exit 1; \
	  fi; \
	  ok=$$(awk -v e="$$eps" -v m="$(PERF_MIN_EPS)" \
	    'BEGIN { print (e + 0 >= m + 0) ? 1 : 0 }'); \
	  ratio=$$(sed -n 's/.*"hostSpeedupVsPr8": \([0-9.]*\).*/\1/p' \
	    $(ART)/BENCH_PR10.json | head -n 1); \
	  if [ -n "$$ratio" ]; then \
	    rok=$$(awk -v r="$$ratio" -v m="$(PERF_MIN_RATIO)" \
	      'BEGIN { print (r + 0 >= m + 0) ? 1 : 0 }'); \
	  else \
	    rok=1; \
	  fi; \
	  if [ "$$ok" -eq 1 ] && [ "$$rok" -eq 1 ]; then \
	    if [ -n "$$ratio" ]; then \
	      echo "perf smoke OK: $$eps host events/s (floor $(PERF_MIN_EPS)), $$ratio x vs PR 8 baseline (min $(PERF_MIN_RATIO)), attempt $$attempt"; \
	    else \
	      echo "perf smoke OK: $$eps host events/s (floor $(PERF_MIN_EPS)); no baseline — ratio gate skipped"; \
	    fi; \
	    exit 0; \
	  fi; \
	  echo "perf-smoke: attempt $$attempt below gate ($$eps ev/s, ratio $${ratio:-n/a}) — retrying"; \
	done; \
	echo "perf-smoke: all 3 attempts below the gates (last: $$eps ev/s vs floor $(PERF_MIN_EPS), ratio $${ratio:-n/a} vs min $(PERF_MIN_RATIO))"; \
	exit 1

# Tail-forensics smoke: the same chaos campaign at --jobs 1 and
# --jobs 4 must produce byte-identical fleet reports, timelines, and
# tail-forensics artefacts (`analyze --tails` text and JSON); the
# per-incarnation trace set must expand from its prefix and analyze
# clean; and both LBO paths (--report and --bench) must distil.
# Leaves $(ART)/tails.json and $(ART)/lbo.json for CI upload.
tails-smoke: build
	mkdir -p $(ART)
	dune exec bin/cgcsim.exe -- cluster --shards 3 --policy lqd \
	  --rate 6000 --slo-ms 50 --heap-mb 16 --ms 600 --seed 1 --jobs 1 \
	  --chaos shard-restart --json $(ART)/tails-a.json \
	  --trace-out $(ART)/tails-a --timeline-out $(ART)/tails-a.timeline.json
	dune exec bin/cgcsim.exe -- cluster --shards 3 --policy lqd \
	  --rate 6000 --slo-ms 50 --heap-mb 16 --ms 600 --seed 1 --jobs 4 \
	  --chaos shard-restart --json $(ART)/tails-b.json \
	  --trace-out $(ART)/tails-b --timeline-out $(ART)/tails-b.timeline.json
	cmp $(ART)/tails-a.json $(ART)/tails-b.json
	cmp $(ART)/tails-a.timeline.json $(ART)/tails-b.timeline.json
	dune exec bin/cgcsim.exe -- analyze --report $(ART)/tails-a.json \
	  --tails 16 --json $(ART)/tails.json
	dune exec bin/cgcsim.exe -- analyze --report $(ART)/tails-b.json \
	  --tails 16 --json $(ART)/tails-b.tails.json > /dev/null
	cmp $(ART)/tails.json $(ART)/tails-b.tails.json
	dune exec bin/cgcsim.exe -- analyze --report $(ART)/tails-a.json \
	  --lbo > /dev/null
	dune exec bin/cgcsim.exe -- analyze --trace $(ART)/tails-a \
	  --fail-on-drops > /dev/null
	CGC_BENCH_FAST=1 dune exec bench/main.exe -- matrix \
	  --out $(ART)/tails-bench.json \
	  --trace-out $(ART)/tails-bench.trace.json > /dev/null
	dune exec bin/cgcsim.exe -- analyze --bench $(ART)/tails-bench.json \
	  --lbo --json $(ART)/lbo.json
	@echo "tails smoke OK: forensics byte-identical at --jobs 1 vs 4, LBO distils"

clean:
	dune clean
	rm -rf $(ART)
