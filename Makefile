# Tier-1 verification: everything `make verify` runs must stay green.
#
# The doc and formatting gates only run when the corresponding tool is
# installed (odoc / ocamlformat are not part of the minimal toolchain);
# when present they are part of the tier-1 bar.

.PHONY: all build test doc doc-strict fmt-check verify fuzz bench \
	bench-smoke bench-determinism serve-smoke cluster-smoke clean

# Number of random configurations `make fuzz` tries.
FUZZ_COUNT ?= 100

# Host domains the benchmark matrix fans its cells over.
JOBS ?= 1

all: build

build:
	dune build

test:
	dune runtest

# Build the API docs if odoc is available; no-op (with a note) otherwise.
doc:
	@if command -v odoc >/dev/null 2>&1; then \
	  dune build @doc; \
	else \
	  echo "odoc not installed — skipping dune build @doc"; \
	fi

# Like doc, but odoc warnings (unresolved references, bad markup) in
# the cluster layer are errors — the lint bar for the newest .mli
# surface, tightened layer by layer as older docs are cleaned up.
doc-strict:
	@if command -v odoc >/dev/null 2>&1; then \
	  dune build @doc 2>&1 | tee /tmp/odoc.log; \
	  if grep -i "warning" /tmp/odoc.log | grep -q "cluster"; then \
	    echo "doc-strict: odoc warnings in lib/cluster are errors"; \
	    exit 1; \
	  fi; \
	else \
	  echo "odoc not installed — skipping doc-strict"; \
	fi

# Check formatting if ocamlformat is available; no-op otherwise.
fmt-check:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed — skipping dune fmt --check"; \
	fi

verify: build test doc fmt-check

# Longer-running configuration fuzz (random collector configs + fault
# scenarios under the heap verifier).  On failure QCheck prints the
# full failing configuration including its seed, so the run can be
# replayed deterministically.
fuzz: build
	FUZZ_COUNT=$(FUZZ_COUNT) dune exec test/test_fuzz.exe

# Full benchmark matrix (workloads x thread counts x tracing rates,
# plus serve and sharded-cluster cells), every VM cell traced and
# profiled.  Writes BENCH_PR6.json (schema cgcsim-bench-v1) plus a
# Chrome trace of cell 0; fails if any cell dropped trace events to
# ring overflow.  JOBS=N runs the cells on N OCaml domains — simulated
# results are identical at every N, only the host* timing fields
# change.
bench: build
	dune exec bench/main.exe -- matrix --jobs $(JOBS) \
	  --out BENCH_PR6.json --trace-out bench-cell0.trace.json

# Shrunk matrix for CI (<60 s): one SPECjbb cell, one pBOB cell, one
# serve cell and one cluster cell, then the offline analyzer re-reads
# the emitted trace and fails on ring drops or a schema mismatch.
bench-smoke: build
	CGC_BENCH_FAST=1 dune exec bench/main.exe -- matrix --jobs $(JOBS) \
	  --out BENCH_PR6.json --trace-out bench-cell0.trace.json
	dune exec bin/cgcsim.exe -- analyze \
	  --trace bench-cell0.trace.json --fail-on-drops

# Run the smoke matrix twice — serial and on 2 domains — and fail if
# the simulated results differ anywhere: the JSON bodies must match
# once the host* timing fields are dropped, and the cell-0 traces must
# be byte-identical.
bench-determinism: build
	CGC_BENCH_FAST=1 dune exec bench/main.exe -- matrix \
	  --out bench-serial.json --trace-out bench-serial.trace.json
	CGC_BENCH_FAST=1 dune exec bench/main.exe -- matrix --jobs 2 \
	  --out bench-par.json --trace-out bench-par.trace.json
	grep -v '"host' bench-serial.json > bench-serial.filtered.json
	grep -v '"host' bench-par.json > bench-par.filtered.json
	diff -u bench-serial.filtered.json bench-par.filtered.json
	cmp bench-serial.trace.json bench-par.trace.json
	@echo "bench determinism OK: serial and --jobs 2 agree"

# Short open-loop server run under both collectors, with determinism
# checks: two same-seed serve runs must produce byte-identical reports
# and traces, and an overloaded run with an SLO must exit 6.
serve-smoke: build
	dune exec bin/cgcsim.exe -- serve -c cgc --rate 6000 --ms 600 \
	  --heap-mb 16 --seed 1 --json serve-a.json --trace-out serve-a.trace.json
	dune exec bin/cgcsim.exe -- serve -c cgc --rate 6000 --ms 600 \
	  --heap-mb 16 --seed 1 --json serve-b.json --trace-out serve-b.trace.json
	cmp serve-a.json serve-b.json
	cmp serve-a.trace.json serve-b.trace.json
	dune exec bin/cgcsim.exe -- serve -c stw --rate 6000 --ms 600 \
	  --heap-mb 16 --seed 1 --verify > /dev/null
	dune exec bin/cgcsim.exe -- analyze \
	  --trace serve-a.trace.json --fail-on-drops > /dev/null
	@dune exec bin/cgcsim.exe -- serve -c stw --rate 20000 --ms 600 \
	  --heap-mb 16 --seed 1 --slo-ms 5 > /dev/null 2>&1; st=$$?; \
	  if [ $$st -ne 6 ]; then \
	    echo "expected SLO breach (exit 6) under overloaded STW, got $$st"; \
	    exit 1; \
	  fi
	@echo "serve smoke OK: deterministic reports, traces clean, SLO gate fires"

# Sharded-cluster smoke: a 4-shard run twice at different --jobs must
# produce byte-identical fleet reports and per-shard traces, one shard
# trace must analyze clean, and an overloaded fleet with an SLO must
# exit 6.
cluster-smoke: build
	dune exec bin/cgcsim.exe -- cluster --shards 4 --policy lqd \
	  --rate 12000 --slo-ms 50 --heap-mb 16 --ms 600 --seed 1 --jobs 1 \
	  --json cluster-a.json --trace-out cluster-a
	dune exec bin/cgcsim.exe -- cluster --shards 4 --policy lqd \
	  --rate 12000 --slo-ms 50 --heap-mb 16 --ms 600 --seed 1 --jobs 4 \
	  --json cluster-b.json --trace-out cluster-b
	cmp cluster-a.json cluster-b.json
	for k in 0 1 2 3; do \
	  cmp cluster-a.shard$$k.json cluster-b.shard$$k.json || exit 1; \
	done
	dune exec bin/cgcsim.exe -- analyze \
	  --trace cluster-a.shard0.json --fail-on-drops > /dev/null
	@dune exec bin/cgcsim.exe -- cluster --shards 2 -c stw --rate 40000 \
	  --ms 600 --heap-mb 16 --seed 1 --slo-ms 5 --jobs 2 \
	  > /dev/null 2>&1; st=$$?; \
	  if [ $$st -ne 6 ]; then \
	    echo "expected fleet SLO breach (exit 6), got $$st"; \
	    exit 1; \
	  fi
	@echo "cluster smoke OK: fleet report and shard traces deterministic, SLO gate fires"

clean:
	dune clean
