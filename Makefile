# Tier-1 verification: everything `make verify` runs must stay green.
#
# The doc and formatting gates only run when the corresponding tool is
# installed (odoc / ocamlformat are not part of the minimal toolchain);
# when present they are part of the tier-1 bar.

.PHONY: all build test doc fmt-check verify fuzz bench bench-smoke clean

# Number of random configurations `make fuzz` tries.
FUZZ_COUNT ?= 100

all: build

build:
	dune build

test:
	dune runtest

# Build the API docs if odoc is available; no-op (with a note) otherwise.
doc:
	@if command -v odoc >/dev/null 2>&1; then \
	  dune build @doc; \
	else \
	  echo "odoc not installed — skipping dune build @doc"; \
	fi

# Check formatting if ocamlformat is available; no-op otherwise.
fmt-check:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "ocamlformat not installed — skipping dune fmt --check"; \
	fi

verify: build test doc fmt-check

# Longer-running configuration fuzz (random collector configs + fault
# scenarios under the heap verifier).  On failure QCheck prints the
# full failing configuration including its seed, so the run can be
# replayed deterministically.
fuzz: build
	FUZZ_COUNT=$(FUZZ_COUNT) dune exec test/test_fuzz.exe

# Full benchmark matrix (workloads x thread counts x tracing rates),
# every cell traced and profiled.  Writes BENCH_PR3.json
# (schema cgcsim-bench-v1) plus a Chrome trace of cell 0; fails if any
# cell dropped trace events to ring overflow.
bench: build
	dune exec bench/main.exe -- matrix \
	  --out BENCH_PR3.json --trace-out bench-cell0.trace.json

# Shrunk matrix for CI (<60 s): one SPECjbb and one pBOB cell, then the
# offline analyzer re-reads the emitted trace and fails on ring drops or
# a schema mismatch.
bench-smoke: build
	CGC_BENCH_FAST=1 dune exec bench/main.exe -- matrix \
	  --out BENCH_PR3.json --trace-out bench-cell0.trace.json
	dune exec bin/cgcsim.exe -- analyze \
	  --trace bench-cell0.trace.json --fail-on-drops

clean:
	dune clean
