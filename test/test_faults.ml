(* Fault-injection matrix: every scenario of the deterministic injector
   runs a churn workload with the heap invariant verifier armed.  The
   collector must *degrade* (ladder rungs, halted cycles) but never
   *corrupt* (verifier green, reachability intact, no tracer
   corruption) and never reach out-of-memory while the live data fits.
   Also covers same-seed trace determinism under faults and the
   packet-starvation corner of the deferred-object machinery. *)

module Vm = Cgc_runtime.Vm
module Mutator = Cgc_runtime.Mutator
module Collector = Cgc_core.Collector
module Config = Cgc_core.Config
module Gstats = Cgc_core.Gstats
module Tracer = Cgc_core.Tracer
module Verify = Cgc_core.Verify
module Fault = Cgc_fault.Fault
module Machine = Cgc_smp.Machine
module Heap = Cgc_heap.Heap
module Arena = Cgc_heap.Arena
module Alloc_bits = Cgc_heap.Alloc_bits
module Pool = Cgc_packets.Pool
module Objgraph = Cgc_workloads.Objgraph
module Prng = Cgc_util.Prng

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

(* Same churn shape as the fuzzer: a resident list per root slot plus a
   steady stream of garbage, so cycles happen and the verifier has a
   non-trivial graph to walk. *)
let churn resident m =
  let rng = Mutator.rng m in
  for i = 0 to 3 do
    let head = Objgraph.build_list m ~len:resident ~node_slots:10 in
    Mutator.root_set m i head
  done;
  while not (Mutator.stopped m) do
    let li = Prng.int rng 4 in
    let old = Mutator.root_get m li in
    let tail = Mutator.get_ref m old 0 in
    let fresh = Mutator.alloc m ~nrefs:1 ~size:10 in
    Mutator.set_ref m fresh 0 tail;
    Mutator.root_set m li fresh;
    for _ = 1 to 4 do
      let o = Mutator.alloc m ~nrefs:1 ~size:(4 + Prng.int rng 8) in
      Mutator.root_set m 4 o
    done;
    Mutator.root_set m 4 0;
    Mutator.work m 4_000;
    Mutator.tx_done m
  done

(* Run a 2-mutator churn VM with the given injector armed and the
   verifier on.  Any invariant violation raises out of Vm.run and fails
   the test; the caller asserts on the returned vm/faults pair. *)
let run_faulted ?(heap_mb = 4.0) ?(ms = 400.0) ?(seed = 11) ?(trace = false)
    ~scenarios () =
  let faults = Fault.create ~scenarios ~seed () in
  let gc = { Config.default with Config.faults; verify = true } in
  let vm = Vm.create (Vm.config ~heap_mb ~ncpus:4 ~seed ~gc ~trace ()) in
  let resident =
    max 10 (int_of_float (heap_mb *. 1024.0 *. 1024.0 /. 8.0 /. 3.0) / (2 * 4 * 10))
  in
  for i = 1 to 2 do
    Vm.spawn_mutator vm ~name:(Printf.sprintf "w%d" i) (churn resident)
  done;
  Vm.run vm ~ms;
  (vm, faults)

let assert_sound vm =
  Cgc_smp.Weakmem.fence_all (Vm.machine vm).Machine.wm;
  let coll = Vm.collector vm in
  check cb "reachable heap intact" true (Collector.check_reachable coll = []);
  check ci "no tracer corruption" 0 (Tracer.corruptions (Collector.tracer coll))

(* Each scenario individually: it must actually fire, the verifier must
   stay green at every cycle boundary, and the heap must stay sound. *)
let test_scenario sc () =
  let vm, faults = run_faulted ~scenarios:[ sc ] () in
  let st = Vm.gc_stats vm in
  check cb "GC cycles ran (verifier exercised)" true (st.Gstats.cycles > 0);
  let fired = List.assoc sc (Fault.injections faults) in
  check cb
    (Printf.sprintf "%s fired at least once" (Fault.to_name sc))
    true (fired > 0);
  check ci "no out-of-memory" 0 st.Gstats.oom_raised;
  assert_sound vm

(* All scenarios at once under memory pressure: the collector must
   visibly degrade (ladder rungs climbed or cycles halted early) yet
   neither corrupt the heap nor run out of memory — the live data still
   fits, the injector only makes life hard. *)
let test_all_scenarios_degrade () =
  let vm, faults = run_faulted ~scenarios:Fault.all ~heap_mb:3.0 ~ms:600.0 () in
  let st = Vm.gc_stats vm in
  check cb "GC cycles ran" true (st.Gstats.cycles > 0);
  check cb "all six scenarios fired" true
    (List.for_all (fun (_, n) -> n > 0) (Fault.injections faults));
  let rungs =
    st.Gstats.degrade_force_finish + st.Gstats.degrade_full_stw
    + st.Gstats.degrade_compact
  in
  check cb "degradation observed (ladder or halted cycles)" true
    (rungs > 0 || st.Gstats.halted_cycles > 0);
  check ci "no out-of-memory" 0 st.Gstats.oom_raised;
  assert_sound vm

(* Determinism: the injector draws from its own split PRNG and keys its
   windows on simulated time, so equal seeds + equal scenario sets give
   byte-identical event traces. *)
let test_same_seed_identical_traces () =
  let trace_of () =
    let vm, faults =
      run_faulted ~scenarios:Fault.all ~ms:200.0 ~trace:true ()
    in
    (Vm.trace_json vm, Fault.total_injections faults)
  in
  let t1, n1 = trace_of () in
  let t2, n2 = trace_of () in
  check cb "some injections happened" true (n1 > 0);
  check ci "same injection count" n1 n2;
  check cb "byte-identical traces" true (String.equal t1 t2)

(* The packet-starvation corner of the section 5.2 deferral machinery:
   an unsafe (unpublished) object is parked in a Deferred packet while
   the pool behaves normally; then the injector opens a starvation
   window.  Tracing makes no progress during the window but loses no
   work: recycle_deferred still recovers the packet, and once the
   window closes the object is traced normally. *)
let test_starved_defer_recovers () =
  let mach = Machine.testing () in
  let heap = Heap.create mach ~nslots:65536 in
  let fake_now = ref 200_000 in
  (* window open iff now mod 1_100_000 < 165_000 *)
  let faults = Fault.create ~scenarios:[ Fault.Packet_starvation ] ~seed:7 () in
  Fault.attach faults ~now:(fun () -> !fake_now) ~obs:Cgc_obs.Obs.null;
  let pool = Pool.create mach ~n_packets:4 ~capacity:8 ~faults in
  let tracer = Tracer.create Config.default heap pool in
  let a =
    match Heap.alloc_large heap ~size:4 ~nrefs:1 ~mark_new:false with
    | Some a -> a
    | None -> Alcotest.fail "allocation failed"
  in
  let unpub = 30_000 in
  Arena.write_header (Heap.arena heap) unpub ~size:6 ~nrefs:0;
  Arena.ref_set_raw (Heap.arena heap) a 0 unpub;
  let drain () =
    let s = Tracer.new_session tracer in
    let rec go n =
      let k = Tracer.trace_until tracer s ~budget:max_int in
      if k > 0 then go (n + k) else n
    in
    let n = go 0 in
    Tracer.release tracer s;
    n
  in
  (* 1. window closed: normal trace defers the unsafe object *)
  let s = Tracer.new_session tracer in
  Tracer.push_obj tracer s a;
  Tracer.release tracer s;
  ignore (drain ());
  check ci "unsafe object parked in a deferred packet" 1
    (Pool.deferred_count pool);
  check cb "marked though not yet scanned" true (Heap.is_marked heap unpub);
  (* 2. publish the object, then open the starvation window *)
  Alloc_bits.set (Heap.alloc_bits heap) unpub;
  fake_now := 1_100_000;
  check cb "starvation window open" true (Fault.starve_packets faults);
  (* recycling deferred packets does not go through the starved
     get_input/get_output path, so no work is lost *)
  check ci "recycle recovers the deferred packet" 1
    (Pool.recycle_deferred pool);
  check ci "tracing starved: no progress during the window" 0 (drain ());
  check ci "packet still queued, not dropped" 0
    (Pool.deferred_count pool);
  (* 3. window closes: the parked work completes *)
  fake_now := 2_400_000;
  check cb "window closed again" true (not (Fault.starve_packets faults));
  let traced = drain () in
  check cb "deferred object finally scanned" true (traced > 0);
  check cb "pool terminated — nothing lost" true (Pool.terminated pool);
  check ci "no corruption" 0 (Tracer.corruptions tracer)

(* --------------------------- chaos plans ---------------------------- *)

module Cluster_fault = Cgc_fault.Cluster_fault

let qcheck_chaos_plan_well_formed =
  (* The fleet chaos plan is a pure function of its inputs, and the
     cluster layer leans on its geometry: victim in range, incarnations
     tiling the victim's uptime in order, live_at agreeing with the
     incarnation intervals, and recovery only for scenarios that
     actually recover. *)
  QCheck.Test.make ~name:"cluster chaos plan: deterministic, well-formed"
    ~count:200
    QCheck.(
      quad (int_range 0 3) (int_range 0 1000) (int_range 1 8)
        (int_range 100_000 20_000_000))
    (fun (sci, seed, shards, horizon) ->
      let scenario = List.nth Cluster_fault.all sci in
      let p = Cluster_fault.make ~scenario ~seed ~shards ~horizon in
      let p' = Cluster_fault.make ~scenario ~seed ~shards ~horizon in
      let v = Cluster_fault.victim p in
      let ok = ref (v >= 0 && v < shards) in
      let rec ordered = function
        | [] -> false
        | [ (a : Cluster_fault.incarnation) ] ->
            a.Cluster_fault.start < a.Cluster_fault.stop
        | a :: (b :: _ as rest) ->
            a.Cluster_fault.start < a.Cluster_fault.stop
            && a.Cluster_fault.stop <= b.Cluster_fault.start
            && ordered rest
      in
      for k = 0 to shards - 1 do
        let incs = Cluster_fault.incarnations p ~shard:k in
        if incs <> Cluster_fault.incarnations p' ~shard:k then ok := false;
        (match incs with
        | { Cluster_fault.index = 0; start = 0; _ } :: _ -> ()
        | _ -> ok := false);
        List.iteri
          (fun i (inc : Cluster_fault.incarnation) ->
            if inc.Cluster_fault.index <> i then ok := false)
          incs;
        if not (ordered incs) then ok := false;
        if k <> v then begin
          match incs with
          | [ { Cluster_fault.crashed = false; stop; _ } ]
            when stop >= horizon ->
              ()
          | _ -> ok := false
        end;
        (* live_at is exactly "inside some incarnation" at sampled
           points across the run *)
        for s = 0 to 20 do
          let t = s * (horizon / 21) in
          let inside =
            List.exists
              (fun (i : Cluster_fault.incarnation) ->
                t >= i.Cluster_fault.start
                && t < Stdlib.min i.Cluster_fault.stop horizon)
              incs
          in
          if Cluster_fault.live_at p ~shard:k t <> inside then ok := false
        done;
        match Cluster_fault.brownout p ~shard:k with
        | Some (b0, b1, f) ->
            if scenario <> Cluster_fault.Shard_brownout || k <> v then
              ok := false;
            if not (b0 < b1 && b1 < horizon && f > 1.0) then ok := false
        | None ->
            if scenario = Cluster_fault.Shard_brownout && k = v then
              ok := false
      done;
      (match Cluster_fault.first_onset p with
      | Some t -> if t < 0 || t >= horizon then ok := false
      | None -> ok := false);
      (match (scenario, Cluster_fault.recovered_at p) with
      | Cluster_fault.Shard_crash, Some _ ->
          (* a crash never recovers *)
          ok := false
      | Cluster_fault.Shard_crash, None -> ()
      | _, Some t ->
          if t <= 0 || t >= horizon then ok := false;
          (match Cluster_fault.first_onset p with
          | Some onset -> if onset >= t then ok := false
          | None -> ok := false)
      | _, None ->
          (* restart/brownout windows sit well inside the horizon *)
          ok := false);
      let inert = Cluster_fault.none ~shards ~horizon in
      if Cluster_fault.victim inert <> -1 then ok := false;
      if Cluster_fault.first_onset inert <> None then ok := false;
      for k = 0 to shards - 1 do
        if not (Cluster_fault.live_at inert ~shard:k (horizon / 2)) then
          ok := false
      done;
      !ok)

let () =
  let scen_cases =
    List.map
      (fun sc ->
        Alcotest.test_case
          (Printf.sprintf "%s under verifier" (Fault.to_name sc))
          `Slow (test_scenario sc))
      Fault.all
  in
  Alcotest.run "faults"
    [
      ("scenarios", scen_cases);
      ( "degradation",
        [
          Alcotest.test_case "all scenarios degrade without corruption" `Slow
            test_all_scenarios_degrade;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, identical traces" `Slow
            test_same_seed_identical_traces;
        ] );
      ( "starvation",
        [
          Alcotest.test_case "deferred packets survive starvation" `Quick
            test_starved_defer_recovers;
        ] );
      ( "chaos-plan",
        [ QCheck_alcotest.to_alcotest qcheck_chaos_plan_well_formed ] );
    ]
