(* Tests for the tail-forensics / LBO analyzer (Cgc_prof.Tails) and the
   fleet timeline: exact-span parsing of freshly generated
   cgcsim-server-v2 and cgcsim-cluster-v3 reports, graceful legacy
   (v1/v2) degradation, the LBO distillation arithmetic on a synthetic
   bench document, and byte-identical tails / LBO / timeline artefacts
   at every pool size. *)

module Json = Cgc_prof.Json
module Tails = Cgc_prof.Tails
module Vm = Cgc_runtime.Vm
module Server = Cgc_server.Server
module Server_report = Cgc_server.Report
module Balancer = Cgc_cluster.Balancer
module Cluster = Cgc_cluster.Cluster
module Cluster_report = Cgc_cluster.Report
module Timeline = Cgc_cluster.Timeline
module Dpool = Cgc_cluster.Dpool
module Cluster_fault = Cgc_fault.Cluster_fault

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cf = Alcotest.(float 1e-9)

let server_report_string () =
  let vm = Vm.create (Vm.config ~heap_mb:16.0 ~ncpus:4 ~seed:1 ()) in
  let scfg = Server.cfg ~rate_per_s:6000.0 ~slo_ms:50.0 () in
  let srv = Server.create scfg vm in
  Vm.run vm ~ms:400.0;
  Json.to_string ~pretty:true
    (Server_report.to_json scfg ~ran_ms:400.0 (Server.totals srv))

let cluster_cfg ?chaos () =
  Cluster.cfg ~shards:3 ~policy:Balancer.Least_queue ~rate_per_s:6000.0
    ~slo_ms:50.0 ~heap_mb:16.0 ~ms:300.0 ?chaos ()

let cluster_report_string ?chaos ?(domains = 1) () =
  let pool = Dpool.create ~domains in
  Fun.protect
    ~finally:(fun () -> Dpool.shutdown pool)
    (fun () ->
      Json.to_string ~pretty:true
        (Cluster_report.to_json (Cluster.run ~pool (cluster_cfg ?chaos ()))))

(* ------------------------- exact-span parsing ------------------------ *)

let tail_sums (t : Tails.tail) =
  t.Tails.fleet_queue + t.Tails.backoff + t.Tails.queue + t.Tails.gc_queue
  + t.Tails.service + t.Tails.gc_service

let test_server_v2_end_to_end () =
  let s = server_report_string () in
  match Tails.of_report s with
  | Error e -> Alcotest.failf "server v2 rejected: %s" e
  | Ok t ->
      check cb "exact spans" true t.Tails.exact;
      check Alcotest.string "source tag" "cgcsim-server-v2" t.Tails.source;
      check cb "requests counted" true (t.Tails.count > 0);
      check cb "tails retained" true (t.Tails.tails <> []);
      List.iter
        (fun (tl : Tails.tail) ->
          check ci
            (Printf.sprintf "rid %d parsed blame sums to e2e" tl.Tails.rid)
            tl.Tails.e2e_cycles (tail_sums tl))
        t.Tails.tails;
      check cb "text renders chains" true
        (let txt = Tails.text ~n:4 t in
         String.length txt > 0);
      (* the JSON artefact round-trips through the parser *)
      let j = Json.to_string ~pretty:true (Tails.to_json ~n:8 t) in
      (match Json.parse j with
      | Error e -> Alcotest.failf "tails JSON unparseable: %s" e
      | Ok p ->
          check cb "tails schema tag" true
            (Json.member "schema" p = Some (Json.Str "cgcsim-tails-v1")))

let test_cluster_v3_end_to_end () =
  let s = cluster_report_string ~chaos:Cluster_fault.Shard_restart () in
  match Tails.of_report s with
  | Error e -> Alcotest.failf "cluster v3 rejected: %s" e
  | Ok t ->
      check cb "exact spans" true t.Tails.exact;
      check Alcotest.string "source tag" "cgcsim-cluster-v3" t.Tails.source;
      check cb "requests counted" true (t.Tails.count > 0);
      check cb "tails retained" true (t.Tails.tails <> []);
      List.iter
        (fun (tl : Tails.tail) ->
          check ci "parsed blame sums to e2e" tl.Tails.e2e_cycles
            (tail_sums tl))
        (t.Tails.tails @ List.map snd t.Tails.exemplars)

(* --------------------------- legacy schemas -------------------------- *)

let legacy_server_v1 =
  {|{"schema": "cgcsim-server-v1",
     "counts": {"completed": 10},
     "latencyMs": {"e2e": {"mean": 2.0}, "queueing": {"mean": 0.5},
                   "service": {"mean": 1.5}, "gcInflation": {"mean": 0.25}}}|}

let legacy_cluster_v2 =
  {|{"schema": "cgcsim-cluster-v2",
     "perShard": [{"droppedEvents": 3}, {"droppedEvents": 0}],
     "fleet": {"counts": {"completed": 42},
               "latencyMs": {"e2e": {"mean": 4.0}, "queueing": {"mean": 1.0},
                             "service": {"mean": 3.0},
                             "gcInflation": {"mean": 0.5}}}}|}

let test_legacy_reports_degrade () =
  (match Tails.of_report legacy_server_v1 with
  | Error e -> Alcotest.failf "server v1 rejected: %s" e
  | Ok t ->
      check cb "summary only" false t.Tails.exact;
      check ci "count from counts block" 10 t.Tails.count;
      check cf "e2e mean from histogram" 2.0
        (List.assoc "e2e" t.Tails.mean_ms);
      check cb "no chains" true (t.Tails.tails = []);
      check cb "text notes the degradation" true
        (let txt = Tails.text t in
         String.length txt > 0));
  match Tails.of_report legacy_cluster_v2 with
  | Error e -> Alcotest.failf "cluster v2 rejected: %s" e
  | Ok t ->
      check cb "summary only" false t.Tails.exact;
      check ci "count from fleet block" 42 t.Tails.count;
      check ci "shard drops summed" 3 t.Tails.dropped

let test_rejects_foreign_schema () =
  (match Tails.of_report "{\"schema\": \"cgcsim-bench-v1\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a bench document as a report");
  (match Tails.of_report "{}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a schema-less document");
  match Tails.of_report "not json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted garbage"

(* ------------------------------- LBO -------------------------------- *)

let synthetic_bench =
  {|{"schema": "cgcsim-bench-v1", "cells": [
     {"workload": "serve",
      "server": {"ratePerS": 4000.0,
                 "latencyMs": {"e2e": {"mean": 2.0},
                               "gcInflation": {"mean": 0.5}}}},
     {"workload": "serve",
      "server": {"ratePerS": 8000.0,
                 "latencyMs": {"e2e": {"mean": 3.0},
                               "gcInflation": {"mean": 1.5}}}},
     {"workload": "specjbb", "warehouses": 4, "k0": 8.0,
      "throughput": 1000.0},
     {"workload": "specjbb", "warehouses": 4, "k0": 12.0,
      "throughput": 1250.0}]}|}

let test_lbo_distillation_arithmetic () =
  match Tails.lbo_of_bench synthetic_bench with
  | Error e -> Alcotest.failf "synthetic bench rejected: %s" e
  | Ok rows ->
      check ci "all four cells distilled" 4 (List.length rows);
      let row label = List.find (fun r -> r.Tails.label = label) rows in
      (* serve group: baseline = min(2.0 - 0.5, 3.0 - 1.5) = 1.5 *)
      let r1 = row "serve-4000rps" in
      check cf "serve baseline" 1.5 r1.Tails.baseline;
      check cf "serve-4000 distilled = 2.0/1.5 - 1"
        ((2.0 /. 1.5) -. 1.0)
        r1.Tails.distilled;
      let r2 = row "serve-8000rps" in
      check cf "serve-8000 distilled = 3.0/1.5 - 1" 1.0 r2.Tails.distilled;
      (* throughput group: baseline = best rate = 1250 *)
      let r3 = row "specjbb-4wh-k0=8" in
      check cf "throughput baseline" 1250.0 r3.Tails.baseline;
      check cf "slower cell distilled = 1250/1000 - 1" 0.25 r3.Tails.distilled;
      let r4 = row "specjbb-4wh-k0=12" in
      check cf "best cell distils to zero" 0.0 r4.Tails.distilled;
      (* renderings *)
      check cb "lbo text renders" true
        (String.length (Tails.lbo_text rows) > 0);
      match Json.member "schema" (Tails.lbo_json rows) with
      | Some (Json.Str "cgcsim-lbo-v1") -> ()
      | _ -> Alcotest.fail "lbo schema tag missing"

let test_lbo_of_single_report () =
  let s = server_report_string () in
  match Tails.lbo_of_report s with
  | Error e -> Alcotest.failf "lbo_of_report rejected: %s" e
  | Ok r ->
      check cb "baseline positive" true (r.Tails.baseline > 0.0);
      check cb "distilled non-negative" true (r.Tails.distilled >= 0.0);
      check cf "identity: value = baseline * (1 + distilled)" r.Tails.value
        (r.Tails.baseline *. (1.0 +. r.Tails.distilled))

(* ----------------------- determinism at any jobs --------------------- *)

let test_tails_byte_identical_across_pool_sizes () =
  let artefacts domains =
    let pool = Dpool.create ~domains in
    Fun.protect
      ~finally:(fun () -> Dpool.shutdown pool)
      (fun () ->
        let r =
          Cluster.run ~pool (cluster_cfg ~chaos:Cluster_fault.Shard_restart ())
        in
        let report = Json.to_string ~pretty:true (Cluster_report.to_json r) in
        let t =
          match Tails.of_report report with
          | Ok t -> t
          | Error e -> Alcotest.failf "report rejected: %s" e
        in
        ( Json.to_string ~pretty:true (Tails.to_json ~n:16 t),
          Tails.text ~n:16 t,
          Timeline.chrome_json r ))
  in
  let j1, t1, tl1 = artefacts 1 and j4, t4, tl4 = artefacts 4 in
  check Alcotest.string "tails JSON byte-identical at 1 vs 4 domains" j1 j4;
  check Alcotest.string "tails text byte-identical at 1 vs 4 domains" t1 t4;
  check cb "timeline byte-identical at 1 vs 4 domains" true (tl1 = tl4);
  (* the timeline is a plausible Chrome trace *)
  check cb "timeline has counter events" true
    (String.length tl1 > 0
    &&
    let has_counter = ref false in
    String.iteri
      (fun i c ->
        if c = 'C' && i > 0 && tl1.[i - 1] = '"' then has_counter := true)
      tl1;
    !has_counter)

let () =
  Alcotest.run "tails"
    [
      ( "parse",
        [
          Alcotest.test_case "server v2 end-to-end" `Quick
            test_server_v2_end_to_end;
          Alcotest.test_case "cluster v3 end-to-end" `Quick
            test_cluster_v3_end_to_end;
          Alcotest.test_case "legacy reports degrade" `Quick
            test_legacy_reports_degrade;
          Alcotest.test_case "rejects foreign schemas" `Quick
            test_rejects_foreign_schema;
        ] );
      ( "lbo",
        [
          Alcotest.test_case "distillation arithmetic" `Quick
            test_lbo_distillation_arithmetic;
          Alcotest.test_case "single report" `Quick test_lbo_of_single_report;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "byte-identical at any pool size" `Slow
            test_tails_byte_identical_across_pool_sizes;
        ] );
    ]
