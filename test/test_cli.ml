(* Tests for the CLI exit-code single source of truth (Cgc_cli): the
   codes are exactly 0-7 with unique names, and the README's exit-code
   table between the markers is the literal output of markdown_table —
   so the binary, `cgcsim exit-codes --markdown` and the docs can never
   drift apart. *)

module Exit_codes = Cgc_cli.Exit_codes

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

let test_codes_complete_and_unique () =
  let codes = Exit_codes.all in
  check ci "eight codes" 8 (List.length codes);
  List.iteri
    (fun i (c : Exit_codes.code) ->
      check ci "ascending, dense from zero" i c.Exit_codes.value)
    codes;
  let names = List.map (fun c -> c.Exit_codes.name) codes in
  check ci "names unique" (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter
    (fun (c : Exit_codes.code) ->
      check cb
        (Printf.sprintf "code %d has a meaning" c.Exit_codes.value)
        true
        (String.length c.Exit_codes.meaning > 0))
    codes

let test_constants_match_table () =
  let value name =
    (List.find (fun c -> c.Exit_codes.name = name) Exit_codes.all)
      .Exit_codes.value
  in
  check ci "ok" Exit_codes.ok (value "ok");
  check ci "usage" Exit_codes.usage (value "usage");
  check ci "oom" Exit_codes.oom (value "oom");
  check ci "invariant" Exit_codes.invariant (value "invariant");
  check ci "schema" Exit_codes.schema (value "schema");
  check ci "drops" Exit_codes.drops (value "drops");
  check ci "slo" Exit_codes.slo (value "slo");
  check ci "fleet" Exit_codes.fleet (value "fleet-unavailable")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_readme_table_in_sync () =
  (* The README block between the markers must be byte-identical to the
     generated table (regenerate with
     `cgcsim exit-codes --markdown`). *)
  (* Under `dune runtest` the README is a declared dep at ../README.md;
     under `dune exec` from the repo root it is in the cwd. *)
  let readme =
    match List.find_opt Sys.file_exists [ "../README.md"; "README.md" ] with
    | Some path -> read_file path
    | None -> Alcotest.fail "README.md not found"
  in
  let begin_marker = "<!-- exit-codes:begin -->\n" in
  let end_marker = "<!-- exit-codes:end -->" in
  let find needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i =
      if i + nl > hl then None
      else if String.sub hay i nl = needle then Some i
      else go (i + 1)
    in
    go 0
  in
  match (find begin_marker readme, find end_marker readme) with
  | Some b, Some e when b < e ->
      let start = b + String.length begin_marker in
      let block = String.sub readme start (e - start) in
      check Alcotest.string "README table matches Exit_codes.markdown_table"
        (Exit_codes.markdown_table ())
        block
  | _ -> Alcotest.fail "README.md is missing the exit-codes markers"

let test_markdown_rows () =
  let table = Exit_codes.markdown_table () in
  List.iter
    (fun (c : Exit_codes.code) ->
      let cell = Printf.sprintf "| %d | `%s` |" c.Exit_codes.value
          c.Exit_codes.name in
      let found =
        let nl = String.length cell and hl = String.length table in
        let rec go i =
          i + nl <= hl
          && (String.sub table i nl = cell || go (i + 1))
        in
        go 0
      in
      check cb (Printf.sprintf "table has a row for %s" c.Exit_codes.name)
        true found)
    Exit_codes.all

let () =
  Alcotest.run "cli"
    [
      ( "exit-codes",
        [
          Alcotest.test_case "complete and unique" `Quick
            test_codes_complete_and_unique;
          Alcotest.test_case "constants match table" `Quick
            test_constants_match_table;
          Alcotest.test_case "markdown rows" `Quick test_markdown_rows;
          Alcotest.test_case "README in sync" `Quick
            test_readme_table_in_sync;
        ] );
    ]
