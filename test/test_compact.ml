(* Tests for incremental compaction (section 2.3): area selection,
   remembered-set fix-up, pinning, area-internal references, global-root
   rewriting, and end-to-end soundness with compaction enabled. *)

module Machine = Cgc_smp.Machine
module Heap = Cgc_heap.Heap
module Arena = Cgc_heap.Arena
module Alloc_bits = Cgc_heap.Alloc_bits
module Bitvec = Cgc_util.Bitvec
module Compact = Cgc_core.Compact
module Config = Cgc_core.Config
module Collector = Cgc_core.Collector
module Vm = Cgc_runtime.Vm
module Mutator = Cgc_runtime.Mutator
module Stats = Cgc_util.Stats
module Gstats = Cgc_core.Gstats

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

let mk_heap () = Heap.create (Machine.testing ()) ~nslots:16384

(* Allocate a live (marked + published) object at wherever the free list
   puts it. *)
let obj heap ~nrefs ~size =
  match Heap.alloc_large heap ~size ~nrefs ~mark_new:true with
  | Some a -> a
  | None -> Alcotest.fail "alloc failed"

let test_area_rotation () =
  let heap = mk_heap () in
  let cp = Compact.create heap in
  Compact.choose_area cp ~cycle:0 ~fraction:0.25;
  let lo0, hi0 = Compact.area cp in
  Compact.choose_area cp ~cycle:1 ~fraction:0.25;
  let lo1, _ = Compact.area cp in
  check cb "areas rotate" true (lo1 <> lo0);
  check cb "area is a quarter" true (hi0 - lo0 <= (16384 / 4) + 64);
  Compact.choose_area cp ~cycle:4 ~fraction:0.25;
  let lo4, _ = Compact.area cp in
  check ci "wraps around" lo0 lo4

let test_basic_evacuation_and_fixup () =
  let heap = mk_heap () in
  let cp = Compact.create heap in
  (* area = first quarter: [1, 4096); objects allocated from the free
     list start at 1, so the first objects land inside it *)
  Compact.choose_area cp ~cycle:0 ~fraction:0.25;
  let inside = obj heap ~nrefs:0 ~size:32 in
  check cb "object is in the area" true (Compact.in_area cp inside);
  (* a parent outside the area points at it *)
  let outside =
    match Cgc_heap.Freelist.alloc (Heap.freelist heap) 8 with
    | Some _ -> () ; ()
    | None -> ()
  in
  ignore outside;
  (* place the parent beyond the area by consuming free space *)
  let rec parent_outside () =
    let p = obj heap ~nrefs:1 ~size:8 in
    if Compact.in_area cp p then parent_outside () else p
  in
  let parent = parent_outside () in
  Arena.ref_set_raw (Heap.arena heap) parent 0 inside;
  Compact.record_ref cp ~parent ~idx:0 ~child:inside;
  let moved = Compact.evacuate cp ~globals:[||] in
  (* the in-area parent-allocation attempts of this test get evacuated
     too, so at least the 32-slot object moved *)
  check cb "at least 32 slots moved" true (moved >= 32);
  let fwd = Compact.forward cp inside in
  check cb "object moved out of the area" true (fwd <> inside && fwd >= 4096);
  check ci "parent slot rewritten" fwd (Arena.ref_get_sc (Heap.arena heap) parent 0);
  check cb "copy is live" true (Heap.is_marked heap fwd);
  check cb "copy published" true (Alloc_bits.is_set_sc (Heap.alloc_bits heap) fwd);
  check cb "old location unmarked" false (Heap.is_marked heap inside);
  check ci "one fixup" 1 (Compact.fixups cp)

let test_pinned_objects_stay () =
  let heap = mk_heap () in
  let cp = Compact.create heap in
  Compact.choose_area cp ~cycle:0 ~fraction:0.25;
  let inside = obj heap ~nrefs:0 ~size:16 in
  Compact.pin cp inside;
  check ci "pinned" 1 (Compact.pinned_count cp);
  ignore (Compact.evacuate cp ~globals:[||]);
  check ci "pinned object did not move" inside (Compact.forward cp inside);
  check cb "still live" true (Heap.is_marked heap inside)

let test_area_internal_references () =
  let heap = mk_heap () in
  let cp = Compact.create heap in
  Compact.choose_area cp ~cycle:0 ~fraction:0.5;
  (* two objects in the area referencing each other *)
  let a = obj heap ~nrefs:1 ~size:8 in
  let b = obj heap ~nrefs:1 ~size:8 in
  check cb "both inside" true (Compact.in_area cp a && Compact.in_area cp b);
  Arena.ref_set_raw (Heap.arena heap) a 0 b;
  Arena.ref_set_raw (Heap.arena heap) b 0 a;
  Compact.record_ref cp ~parent:a ~idx:0 ~child:b;
  Compact.record_ref cp ~parent:b ~idx:0 ~child:a;
  ignore (Compact.evacuate cp ~globals:[||]);
  let a' = Compact.forward cp a and b' = Compact.forward cp b in
  check cb "both moved" true (a' <> a && b' <> b);
  check ci "a' points to b'" b' (Arena.ref_get_sc (Heap.arena heap) a' 0);
  check ci "b' points to a'" a' (Arena.ref_get_sc (Heap.arena heap) b' 0)

let test_global_roots_rewritten () =
  let heap = mk_heap () in
  let cp = Compact.create heap in
  Compact.choose_area cp ~cycle:0 ~fraction:0.25;
  let inside = obj heap ~nrefs:0 ~size:8 in
  let globals = [| 0; inside; 42 |] in
  ignore (Compact.evacuate cp ~globals);
  check ci "global root rewritten" (Compact.forward cp inside) globals.(1);
  check ci "null untouched" 0 globals.(0);
  check ci "junk untouched" 42 globals.(2)

let test_stale_remset_entry_harmless () =
  let heap = mk_heap () in
  let cp = Compact.create heap in
  Compact.choose_area cp ~cycle:0 ~fraction:0.25;
  let inside = obj heap ~nrefs:0 ~size:8 in
  let rec parent_outside () =
    let p = obj heap ~nrefs:1 ~size:8 in
    if Compact.in_area cp p then parent_outside () else p
  in
  let parent = parent_outside () in
  Arena.ref_set_raw (Heap.arena heap) parent 0 inside;
  Compact.record_ref cp ~parent ~idx:0 ~child:inside;
  (* the mutator overwrote the slot after it was recorded *)
  Arena.ref_set_raw (Heap.arena heap) parent 0 0;
  ignore (Compact.evacuate cp ~globals:[||]);
  check ci "overwritten slot left alone" 0
    (Arena.ref_get_sc (Heap.arena heap) parent 0)

let test_inactive_evacuate_is_noop () =
  let heap = mk_heap () in
  let cp = Compact.create heap in
  check ci "no-op when inactive" 0 (Compact.evacuate cp ~globals:[||])

let test_config_guards () =
  let bad = { Config.default with Config.compaction = true; lazy_sweep = true } in
  let vm_cfg = Vm.config ~heap_mb:4.0 ~gc:bad () in
  Alcotest.check_raises "compaction + lazy sweep rejected"
    (Invalid_argument "Collector.create: compaction requires in-pause sweep")
    (fun () -> ignore (Vm.create vm_cfg))

(* End-to-end: churn under compaction; structures stay intact and objects
   actually move. *)
let test_end_to_end_compaction () =
  let gc = { Config.default with Config.compaction = true } in
  let vm = Vm.create (Vm.config ~heap_mb:8.0 ~ncpus:4 ~gc ()) in
  for i = 1 to 4 do
    Vm.spawn_mutator vm
      ~name:(Printf.sprintf "w%d" i)
      (fun m ->
        let resident =
          Cgc_workloads.Objgraph.build_list m ~len:1500 ~node_slots:12
        in
        Mutator.root_set m 0 resident;
        let tx = ref 0 in
        while not (Mutator.stopped m) do
          incr tx;
          let o = Mutator.alloc m ~nrefs:1 ~size:8 in
          Mutator.root_set m 1 o;
          let old = Mutator.root_get m 0 in
          let tail = Mutator.get_ref m old 0 in
          Mutator.root_set m 2 tail;
          let fresh = Mutator.alloc m ~nrefs:1 ~size:12 in
          Mutator.set_ref m fresh 0 tail;
          Mutator.root_set m 0 fresh;
          Mutator.root_set m 1 0;
          Mutator.root_set m 2 0;
          Mutator.work m 8_000;
          if !tx mod 400 = 0 then begin
            let len =
              Cgc_workloads.Objgraph.list_length m (Mutator.root_get m 0)
            in
            if len <> 1500 then
              Alcotest.failf "resident list corrupted under compaction: %d" len
          end;
          Mutator.tx_done m
        done)
  done;
  Vm.run vm ~ms:1200.0;
  let coll = Vm.collector vm in
  let st = Vm.gc_stats vm in
  check cb "cycles happened" true (st.Gstats.cycles >= 3);
  check cb "objects were evacuated" true
    (Compact.evacuated_objects (Collector.compactor coll) > 0);
  check cb "fixups happened" true (Compact.fixups (Collector.compactor coll) > 0);
  check (Alcotest.list (Alcotest.pair ci ci)) "heap intact under compaction" []
    (Collector.check_reachable coll);
  check cb "compaction pause component recorded" true
    (Cgc_util.Histogram.count st.Gstats.compact_ms > 0)

let test_end_to_end_shared_globals () =
  (* pBOB-style shared warehouses live in the global roots, which the
     evacuation rewrites precisely. *)
  let gc = { Config.default with Config.compaction = true } in
  let vm =
    Cgc_workloads.Pbob.setup ~warehouses:2 ~gc ~terminals:4 ~heap_mb:8.0
      ~think_mean:100_000 ()
  in
  Vm.run vm ~ms:1000.0;
  let coll = Vm.collector vm in
  check (Alcotest.list (Alcotest.pair ci ci)) "shared heap intact" []
    (Collector.check_reachable coll);
  check cb "warehouse dir still published" true
    (Collector.global_get coll 0 <> 0)

let () =
  Alcotest.run "compact"
    [
      ( "unit",
        [
          Alcotest.test_case "area rotation" `Quick test_area_rotation;
          Alcotest.test_case "evacuate + fixup" `Quick
            test_basic_evacuation_and_fixup;
          Alcotest.test_case "pinned stay" `Quick test_pinned_objects_stay;
          Alcotest.test_case "area-internal refs" `Quick
            test_area_internal_references;
          Alcotest.test_case "global roots rewritten" `Quick
            test_global_roots_rewritten;
          Alcotest.test_case "stale remset harmless" `Quick
            test_stale_remset_entry_harmless;
          Alcotest.test_case "inactive no-op" `Quick
            test_inactive_evacuate_is_noop;
          Alcotest.test_case "config guards" `Quick test_config_guards;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "churn under compaction" `Slow
            test_end_to_end_compaction;
          Alcotest.test_case "shared globals" `Slow
            test_end_to_end_shared_globals;
        ] );
    ]
