(* Tests for bitwise sweep: region scanning, boundary merging, allocation
   bit clearing, live accounting, and the lazy-sweep variant, including a
   property test against a reference mark/sweep model. *)

module Machine = Cgc_smp.Machine
module Heap = Cgc_heap.Heap
module Arena = Cgc_heap.Arena
module Alloc_bits = Cgc_heap.Alloc_bits
module Freelist = Cgc_heap.Freelist
module Sweep = Cgc_core.Sweep

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

let mk_heap ?(nslots = 4096) () = Heap.create (Machine.testing ()) ~nslots

(* Lay out objects at chosen addresses; mark a subset; return the heap. *)
let build nslots objs marked =
  let h = mk_heap ~nslots () in
  List.iter
    (fun (addr, size) ->
      Arena.write_header (Heap.arena h) addr ~size ~nrefs:0;
      Alloc_bits.set (Heap.alloc_bits h) addr)
    objs;
  List.iter (fun addr -> ignore (Heap.mark_test_and_set h addr)) marked;
  h

let sweep_with ~workers h =
  let regs = Sweep.regions ~nslots:(Heap.nslots h) ~workers in
  let results = Array.map (fun (lo, hi) -> Sweep.sweep_region h ~lo ~hi) regs in
  Sweep.merge h results

let test_empty_heap_all_free () =
  let h = build 4096 [] [] in
  let live = sweep_with ~workers:1 h in
  check ci "no live" 0 live;
  check ci "everything free" 4095 (Freelist.free_slots (Heap.freelist h))

let test_single_live_object () =
  let h = build 4096 [ (100, 50) ] [ 100 ] in
  let live = sweep_with ~workers:1 h in
  check ci "live slots" 50 live;
  check ci "rest free" (4095 - 50) (Freelist.free_slots (Heap.freelist h));
  check cb "live object keeps alloc bit" true
    (Alloc_bits.is_set_sc (Heap.alloc_bits h) 100)

let test_dead_object_reclaimed () =
  let h = build 4096 [ (100, 50); (200, 30) ] [ 100 ] in
  let live = sweep_with ~workers:1 h in
  check ci "only marked lives" 50 live;
  check cb "dead object loses alloc bit" false
    (Alloc_bits.is_set_sc (Heap.alloc_bits h) 200);
  check ci "its memory is free" (4095 - 50)
    (Freelist.free_slots (Heap.freelist h))

let test_adjacent_live_objects () =
  let h = build 4096 [ (10, 20); (30, 20); (50, 20) ] [ 10; 30; 50 ] in
  let live = sweep_with ~workers:1 h in
  check ci "all live" 60 live;
  (* free: [1,10) and [70, 4096) *)
  check ci "free accounting" (9 + (4096 - 70))
    (Freelist.free_slots (Heap.freelist h))

let test_parallel_matches_serial () =
  let objs =
    List.init 50 (fun i -> ((i * 80) + 7, 10 + (i mod 30)))
  in
  let marked = List.filteri (fun i _ -> i mod 3 <> 0) (List.map fst objs) in
  let h1 = build 4096 objs marked in
  let live1 = sweep_with ~workers:1 h1 in
  let free1 = Freelist.free_slots (Heap.freelist h1) in
  let h4 = build 4096 objs marked in
  let live4 = sweep_with ~workers:4 h4 in
  let free4 = Freelist.free_slots (Heap.freelist h4) in
  check ci "live agrees" live1 live4;
  check ci "free agrees" free1 free4

let test_object_spanning_region_boundary () =
  (* 4 workers on 4096 slots: boundaries near 1024, 2048...  place a live
     object straddling 1024. *)
  let h = build 4096 [ (1000, 100); (2000, 10) ] [ 1000; 2000 ] in
  let live = sweep_with ~workers:4 h in
  check ci "live" 110 live;
  (* the straddling object's interior must not be freed *)
  Freelist.iter (Heap.freelist h) (fun ~addr ~size ->
      if addr < 1100 && addr + size > 1000 then
        Alcotest.failf "free chunk [%d,%d) overlaps live object" addr
          (addr + size))

(* --------------------------- region seams --------------------------- *)

(* 4 workers on 4096 slots split at 1025/2049/3073 (span 1024 from slot
   1).  The seam cases below are where the per-region first_mark /
   last_end bookkeeping and the merge's prev_end threading can go wrong. *)

let assert_no_overlap h ~lo ~hi =
  Freelist.iter (Heap.freelist h) (fun ~addr ~size ->
      if addr < hi && addr + size > lo then
        Alcotest.failf "free chunk [%d,%d) overlaps live object [%d,%d)" addr
          (addr + size) lo hi)

let test_live_ends_at_region_boundary () =
  (* Object [1005, 1025) ends exactly where region 0 ends: region 0's
     last_end equals its hi, and region 1's leading gap must start at
     exactly 1025 — an off-by-one in either direction loses or frees a
     slot at the seam. *)
  let h = build 4096 [ (1005, 20); (2000, 10) ] [ 1005; 2000 ] in
  let live = sweep_with ~workers:4 h in
  check ci "live" 30 live;
  check ci "free accounting" (4095 - 30) (Freelist.free_slots (Heap.freelist h));
  assert_no_overlap h ~lo:1005 ~hi:1025;
  assert_no_overlap h ~lo:2000 ~hi:2010

let test_empty_leading_region () =
  (* Regions 0-2 hold no marks at all; the merge must thread one free
     run from slot 1 through the empty regions up to the first live
     object in region 3. *)
  let h = build 4096 [ (3500, 25) ] [ 3500 ] in
  let live = sweep_with ~workers:4 h in
  check ci "live" 25 live;
  check ci "free accounting" (4095 - 25) (Freelist.free_slots (Heap.freelist h));
  assert_no_overlap h ~lo:3500 ~hi:3525

let test_single_region_heap () =
  (* One worker, one region covering the whole heap, with a live object
     ending exactly at the heap end — last_end = nslots must produce no
     trailing free chunk. *)
  let h = build 64 [ (10, 6); (50, 14) ] [ 10; 50 ] in
  let live = sweep_with ~workers:1 h in
  check ci "live" 20 live;
  check ci "free accounting" (63 - 20) (Freelist.free_slots (Heap.freelist h));
  assert_no_overlap h ~lo:50 ~hi:64

let test_lazy_ends_at_window_boundary () =
  (* Lazy window [1, 257): object [237, 257) ends exactly at the window
     edge, so the step must park the cursor at 257 without emitting a
     partial free run into the object. *)
  let objs = [ (237, 20); (300, 10); (4000, 30) ] in
  let marked = [ 237; 4000 ] in
  let h_eager = build 4096 objs marked in
  let live_eager = sweep_with ~workers:1 h_eager in
  let free_eager = Freelist.free_slots (Heap.freelist h_eager) in
  let h = build 4096 objs marked in
  let lz = Sweep.lazy_begin h in
  ignore (Sweep.lazy_step h lz ~max_slots:256);
  check ci "cursor parked exactly at the object end" 257 (Sweep.lazy_pos lz);
  Sweep.lazy_finish h lz;
  check ci "lazy live agrees" live_eager (Sweep.lazy_live lz);
  check ci "lazy free agrees" free_eager
    (Freelist.free_slots (Heap.freelist h));
  assert_no_overlap h ~lo:237 ~hi:257

let test_lazy_empty_leading_windows () =
  (* The first live object sits far past several all-empty windows; each
     empty step must emit exactly its window as free space. *)
  let objs = [ (3000, 40) ] in
  let h_eager = build 4096 objs [ 3000 ] in
  let live_eager = sweep_with ~workers:1 h_eager in
  let free_eager = Freelist.free_slots (Heap.freelist h_eager) in
  let h = build 4096 objs [ 3000 ] in
  let lz = Sweep.lazy_begin h in
  ignore (Sweep.lazy_step h lz ~max_slots:256);
  check ci "one empty window freed" 256
    (Freelist.free_slots (Heap.freelist h));
  Sweep.lazy_finish h lz;
  check ci "lazy live agrees" live_eager (Sweep.lazy_live lz);
  check ci "lazy free agrees" free_eager
    (Freelist.free_slots (Heap.freelist h))

let test_lazy_single_window () =
  (* A window at least as large as the heap: one step sweeps everything
     and finishes, including the object ending exactly at the heap end. *)
  let objs = [ (10, 6); (50, 14) ] in
  let h_eager = build 64 objs [ 10; 50 ] in
  let live_eager = sweep_with ~workers:1 h_eager in
  let free_eager = Freelist.free_slots (Heap.freelist h_eager) in
  let h = build 64 objs [ 10; 50 ] in
  let lz = Sweep.lazy_begin h in
  check cb "first step runs" true (Sweep.lazy_step h lz ~max_slots:8192);
  check ci "cursor reached the heap end" 64 (Sweep.lazy_pos lz);
  (* The object ending exactly at the heap end leaves the cursor parked
     at nslots with the finished flag still unset; the next (empty) step
     closes the sweep. *)
  Sweep.lazy_finish h lz;
  check cb "finished" true (Sweep.lazy_finished lz);
  check ci "lazy live agrees" live_eager (Sweep.lazy_live lz);
  check ci "lazy free agrees" free_eager
    (Freelist.free_slots (Heap.freelist h))

let test_allocatable_after_sweep () =
  let h = build 4096 [ (2000, 100) ] [ 2000 ] in
  ignore (sweep_with ~workers:2 h);
  (* allocate from the rebuilt free list; must not land inside live obj *)
  match Freelist.alloc (Heap.freelist h) 500 with
  | None -> Alcotest.fail "allocation after sweep failed"
  | Some a ->
      check cb "no overlap with live" true (a + 500 <= 2000 || a >= 2100)

(* ------------------------------ Lazy sweep ------------------------------ *)

let test_lazy_matches_eager () =
  let objs = List.init 30 (fun i -> ((i * 120) + 3, 15)) in
  let marked = List.filteri (fun i _ -> i mod 2 = 0) (List.map fst objs) in
  let h_eager = build 4096 objs marked in
  let live_eager = sweep_with ~workers:1 h_eager in
  let free_eager = Freelist.free_slots (Heap.freelist h_eager) in
  let h_lazy = build 4096 objs marked in
  let lz = Sweep.lazy_begin h_lazy in
  check ci "free list starts empty" 0 (Freelist.free_slots (Heap.freelist h_lazy));
  let steps = ref 0 in
  while not (Sweep.lazy_finished lz) do
    ignore (Sweep.lazy_step h_lazy lz ~max_slots:256);
    incr steps
  done;
  check cb "took multiple steps" true (!steps > 4);
  check ci "lazy live agrees" live_eager (Sweep.lazy_live lz);
  check ci "lazy free agrees" free_eager
    (Freelist.free_slots (Heap.freelist h_lazy));
  check cb "step after finish returns false" false
    (Sweep.lazy_step h_lazy lz ~max_slots:256)

let test_lazy_finish () =
  let h = build 4096 [ (500, 40) ] [ 500 ] in
  let lz = Sweep.lazy_begin h in
  Sweep.lazy_finish h lz;
  check cb "finished" true (Sweep.lazy_finished lz);
  check ci "live" 40 (Sweep.lazy_live lz)

let test_lazy_incremental_allocation () =
  (* Allocation can proceed from partial lazy-sweep results. *)
  let h = build 8192 [ (8000, 50) ] [ 8000 ] in
  let lz = Sweep.lazy_begin h in
  ignore (Sweep.lazy_step h lz ~max_slots:1024);
  check cb "some free space available early" true
    (Freelist.free_slots (Heap.freelist h) > 0);
  match Freelist.alloc (Heap.freelist h) 100 with
  | Some _ -> ()
  | None -> Alcotest.fail "could not allocate from partial sweep"

(* Property: sweep (eager, any worker count) frees exactly the unmarked
   space and preserves exactly the marked objects. *)
let sweep_model =
  QCheck.Test.make ~name:"sweep matches reference model" ~count:80
    QCheck.(
      pair (int_range 1 4)
        (list_of_size (Gen.int_range 0 40) (pair (int_range 0 200) (int_range 2 40))))
    (fun (workers, raw) ->
      let nslots = 8192 in
      (* convert raw pairs into non-overlapping objects *)
      let objs = ref [] in
      let cursor = ref 1 in
      List.iter
        (fun (gap, size) ->
          let addr = !cursor + gap in
          if addr + size < nslots then begin
            objs := (addr, size) :: !objs;
            cursor := addr + size
          end)
        raw;
      let objs = List.rev !objs in
      let marked =
        List.filteri (fun i _ -> i mod 2 = 0) (List.map fst objs)
      in
      let h = build nslots objs marked in
      let live = sweep_with ~workers h in
      let expected_live =
        List.fold_left
          (fun acc (a, s) -> if List.mem a marked then acc + s else acc)
          0 objs
      in
      let free = Freelist.free_slots (Heap.freelist h) in
      let dark = Freelist.dark_matter (Heap.freelist h) in
      live = expected_live && free + dark + live = nslots - 1)

let () =
  Alcotest.run "sweep"
    [
      ( "eager",
        [
          Alcotest.test_case "empty heap" `Quick test_empty_heap_all_free;
          Alcotest.test_case "single live" `Quick test_single_live_object;
          Alcotest.test_case "dead reclaimed" `Quick test_dead_object_reclaimed;
          Alcotest.test_case "adjacent live" `Quick test_adjacent_live_objects;
          Alcotest.test_case "parallel = serial" `Quick
            test_parallel_matches_serial;
          Alcotest.test_case "spans region boundary" `Quick
            test_object_spanning_region_boundary;
          Alcotest.test_case "live ends at region boundary" `Quick
            test_live_ends_at_region_boundary;
          Alcotest.test_case "empty leading region" `Quick
            test_empty_leading_region;
          Alcotest.test_case "single-region heap" `Quick
            test_single_region_heap;
          Alcotest.test_case "allocatable after sweep" `Quick
            test_allocatable_after_sweep;
          QCheck_alcotest.to_alcotest sweep_model;
        ] );
      ( "lazy",
        [
          Alcotest.test_case "matches eager" `Quick test_lazy_matches_eager;
          Alcotest.test_case "finish" `Quick test_lazy_finish;
          Alcotest.test_case "incremental allocation" `Quick
            test_lazy_incremental_allocation;
          Alcotest.test_case "live ends at window boundary" `Quick
            test_lazy_ends_at_window_boundary;
          Alcotest.test_case "empty leading windows" `Quick
            test_lazy_empty_leading_windows;
          Alcotest.test_case "single window" `Quick test_lazy_single_window;
        ] );
    ]
