(* Tests for the open-loop request/latency subsystem (cgc_server):
   arrival processes, scripted latency accounting, queue-bound shedding,
   the admission throttle, timeout abandonment, decomposition adding up
   to end-to-end, the causal-span blame conservation identity,
   Histogram.merge against a concatenated reference, the
   cgcsim-server-v2 schema round-trip, and same-seed determinism of the
   whole server report. *)

module Histogram = Cgc_util.Histogram
module Prng = Cgc_util.Prng
module Json = Cgc_prof.Json
module Vm = Cgc_runtime.Vm
module Config = Cgc_core.Config
module Obs = Cgc_obs.Obs
module Event = Cgc_obs.Event
module Arrival = Cgc_server.Arrival
module Latency = Cgc_server.Latency
module Server = Cgc_server.Server
module Span = Cgc_server.Span
module Report = Cgc_server.Report

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cf = Alcotest.(float 1e-9)
let cpm = 550_000 (* Cost.default.cycles_per_ms *)

(* ----------------------------- arrivals ----------------------------- *)

let test_arrival_constant () =
  let a =
    Arrival.create Arrival.Constant ~rate_per_s:1000.0 ~cycles_per_ms:cpm
      ~rng:(Prng.create 7)
  in
  (* 1000 req/s = one per ms = one per cpm cycles, exactly spaced. *)
  for i = 1 to 5 do
    check ci "constant spacing" (i * cpm) (Arrival.next a)
  done

let test_arrival_deterministic () =
  let seq seed =
    let a =
      Arrival.create Arrival.Poisson ~rate_per_s:5000.0 ~cycles_per_ms:cpm
        ~rng:(Prng.create seed)
    in
    List.init 200 (fun _ -> Arrival.next a)
  in
  check (Alcotest.list ci) "same seed, same arrivals" (seq 3) (seq 3);
  check cb "different seed differs" true (seq 3 <> seq 4);
  check cb "non-decreasing" true
    (let s = seq 3 in
     List.for_all2 (fun x y -> x <= y) s (List.tl s @ [ max_int ]))

let test_arrival_rates_average () =
  (* Over a long horizon every process realises the offered average rate
     (bursty's off-window rate is derived to preserve it). *)
  List.iter
    (fun kind ->
      let a =
        Arrival.create kind ~rate_per_s:4000.0 ~cycles_per_ms:cpm
          ~rng:(Prng.create 11)
      in
      let n = 40_000 in
      let last = ref 0 in
      for _ = 1 to n do
        last := Arrival.next a
      done;
      let secs = float_of_int !last /. float_of_int cpm /. 1000.0 in
      let rate = float_of_int n /. secs in
      check cb
        (Printf.sprintf "%s mean rate %.0f within 5%% of 4000"
           (Arrival.kind_name kind) rate)
        true
        (abs_float (rate -. 4000.0) < 200.0))
    [
      Arrival.Poisson;
      Arrival.Constant;
      Arrival.Bursty { on_ms = 10.0; off_ms = 40.0; factor = 3.0 };
    ]

let test_arrival_bursty_modulates () =
  (* factor 4 with equal windows: on-rate 4x the off-rate-derived
     remainder — the on windows must contain most arrivals. *)
  let a =
    Arrival.create
      (Arrival.Bursty { on_ms = 10.0; off_ms = 10.0; factor = 1.9 })
      ~rate_per_s:8000.0 ~cycles_per_ms:cpm ~rng:(Prng.create 5)
  in
  let on = ref 0 and off = ref 0 in
  for _ = 1 to 20_000 do
    let t = Arrival.next a in
    let ms = float_of_int t /. float_of_int cpm in
    if Float.rem ms 20.0 < 10.0 then incr on else incr off
  done;
  check cb "bursts dominate" true (!on > 3 * !off)

(* ------------------- scripted latency accounting ------------------- *)

(* Hand-computed latencies for a scripted arrival sequence, fed through
   the exact accounting code the server's workers use. *)
let test_scripted_latencies () =
  let l = Latency.create () in
  let cpm_f = float_of_int cpm in
  (* (arrival, start, finish, stopped-integral at arrival / start /
     finish) in cycles; cpm cycles = 1 ms. *)
  let script =
    [
      (* no queueing, 2 ms service, no pause overlap *)
      (0, 0, 2 * cpm, 0, 0, 0);
      (* 1 ms queueing, 3 ms service, 1 ms of it stopped *)
      (cpm, 2 * cpm, 5 * cpm, 0, 0, cpm);
      (* 10 ms queueing (a pause), 1 ms service, pause overlap 10 ms *)
      (5 * cpm, 15 * cpm, 16 * cpm, cpm, 11 * cpm, 11 * cpm);
    ]
  in
  List.iter
    (fun (arrival, start, finish, s_arr, s_start, s_fin) ->
      let s =
        Latency.decompose ~cycles_per_ms:cpm_f ~arrival ~start ~finish ~s_arr
          ~s_start ~s_fin
      in
      Latency.observe l ~slo_ms:5.0 s)
    script;
  check ci "handled" 3 (Latency.handled l);
  (* e2e: 2, 4, 11 ms; queueing: 0, 1, 10; service: 2, 3, 1; gc: 0, 1, 10 *)
  check cf "e2e mean" ((2.0 +. 4.0 +. 11.0) /. 3.0)
    (Histogram.mean (Latency.e2e l));
  check cf "e2e min" 2.0 (Histogram.min (Latency.e2e l));
  check cf "e2e max" 11.0 (Histogram.max (Latency.e2e l));
  check cf "queueing max" 10.0 (Histogram.max (Latency.queueing l));
  check cf "service max" 3.0 (Histogram.max (Latency.service l));
  check cf "gc mean" ((0.0 +. 1.0 +. 10.0) /. 3.0)
    (Histogram.mean (Latency.gc l));
  (* nearest-rank p50 over {2,4,11} is the 2nd sample; the bucketed
     answer is within one bucket width of 4. *)
  let p50 = Histogram.percentile (Latency.e2e l) 50.0 in
  check cb "p50 near 4 ms" true (p50 > 3.4 && p50 < 4.7);
  (* 11 ms > 5 ms SLO; the others are within. *)
  check ci "slo violations" 1 (Latency.slo_violations l);
  (* gc is clamped into [0, e2e] *)
  let s =
    Latency.decompose ~cycles_per_ms:cpm_f ~arrival:0 ~start:0 ~finish:cpm
      ~s_arr:0 ~s_start:0 ~s_fin:(100 * cpm)
  in
  check cf "gc clamped to e2e" 1.0 s.Latency.gc_ms;
  let s =
    Latency.decompose ~cycles_per_ms:cpm_f ~arrival:0 ~start:cpm
      ~finish:(2 * cpm) ~s_arr:cpm ~s_start:0 ~s_fin:0
  in
  check cf "gc clamped to zero" 0.0 s.Latency.gc_ms

let test_latency_merge_counters () =
  let a = Latency.create () and b = Latency.create () in
  let cpm_f = float_of_int cpm in
  let obs l ~slo arrival start finish =
    Latency.observe l ~slo_ms:slo
      (Latency.decompose ~cycles_per_ms:cpm_f ~arrival ~start ~finish ~s_arr:0
         ~s_start:0 ~s_fin:0)
  in
  obs a ~slo:1.0 0 0 cpm;
  obs a ~slo:1.0 0 0 (3 * cpm);
  obs b ~slo:1.0 0 cpm (2 * cpm);
  let m = Latency.merge a b in
  check ci "merged handled" 3 (Latency.handled m);
  check ci "merged violations" 2 (Latency.slo_violations m);
  check ci "merged e2e count" 3 (Histogram.count (Latency.e2e m));
  check cf "merged e2e max" 3.0 (Histogram.max (Latency.e2e m))

(* ----------------------- Histogram.merge property ----------------------- *)

let hist_of samples =
  let h = Histogram.create () in
  Array.iter (Histogram.add h) samples;
  h

let merge_vs_concat_test =
  QCheck.Test.make ~name:"Histogram.merge == histogram of concatenation"
    ~count:200
    QCheck.(
      let sample = list (float_range 0.0 2000.0) in
      pair sample sample)
    (fun (xs, ys) ->
      let a = hist_of (Array.of_list xs) and b = hist_of (Array.of_list ys) in
      let m = Histogram.merge a b in
      let r = hist_of (Array.of_list (xs @ ys)) in
      let buckets h =
        Array.to_list (Histogram.nonzero_buckets h)
        |> List.map (fun (lo, hi, n) -> (lo, hi, n))
      in
      Histogram.count m = Histogram.count r
      && buckets m = buckets r
      && Histogram.min m = Histogram.min r
      && Histogram.max m = Histogram.max r
      && abs_float (Histogram.sum m -. Histogram.sum r) < 1e-6)

(* --------------------------- end-to-end runs --------------------------- *)

let serve ?(rate = 6000.0) ?(queue_cap = 256) ?(workers = 4) ?(timeout_ms = 0.0)
    ?(slo_ms = 0.0) ?throttle ?(heap_mb = 16.0) ?(ms = 600.0) ?(seed = 1)
    ?(gc = Config.default) ?(trace = false) () =
  let vm = Vm.create (Vm.config ~heap_mb ~ncpus:4 ~seed ~gc ~trace ()) in
  let throttle_hi, throttle_lo =
    match throttle with Some (hi, lo) -> (hi, lo) | None -> (0, 0)
  in
  let scfg =
    Server.cfg ~rate_per_s:rate ~queue_cap ~workers ~timeout_ms ~slo_ms
      ~throttle_hi ~throttle_lo ()
  in
  let srv = Server.create scfg vm in
  Vm.run vm ~ms;
  (vm, srv, scfg)

let test_counts_conserved () =
  let _, srv, _ = serve () in
  let t = Server.totals srv in
  check cb "arrived > 0" true (t.Server.arrived > 0);
  check ci "arrived = admitted + shed"
    t.Server.arrived
    (t.Server.admitted + t.Server.shed_full + t.Server.shed_throttled);
  (* every admitted request either completed, timed out, or is still
     queued/in flight at the end *)
  check cb "completed+timedout <= admitted" true
    (t.Server.completed + t.Server.timed_out <= t.Server.admitted);
  check cb "no shedding at moderate load" true
    (t.Server.shed_full = 0 && t.Server.shed_throttled = 0)

let test_queue_bound_shedding () =
  (* A 4-deep queue at a rate far above what one worker can serve: the
     bound must hold and drop-newest shedding must engage. *)
  let _, srv, _ = serve ~rate:20000.0 ~queue_cap:4 ~workers:1 ~ms:300.0 () in
  let t = Server.totals srv in
  check cb "shed_full > 0" true (t.Server.shed_full > 0);
  check cb "max depth within bound" true (t.Server.max_depth <= 4);
  check ci "conservation under shedding"
    t.Server.arrived
    (t.Server.admitted + t.Server.shed_full + t.Server.shed_throttled)

let test_admission_throttle () =
  let _, srv, _ =
    serve ~rate:20000.0 ~queue_cap:64 ~workers:1 ~throttle:(8, 2) ~ms:300.0 ()
  in
  let t = Server.totals srv in
  check cb "throttle shed > 0" true (t.Server.shed_throttled > 0);
  (* the throttle arms at 8, well below the queue bound, so the queue
     never fills *)
  check ci "no queue-full drops behind the throttle" 0 t.Server.shed_full;
  check cb "depth stays near the throttle mark" true (t.Server.max_depth < 16)

let test_timeouts () =
  let _, srv, _ =
    serve ~rate:20000.0 ~queue_cap:256 ~workers:1 ~timeout_ms:1.0 ~ms:300.0 ()
  in
  let t = Server.totals srv in
  check cb "timeouts counted" true (t.Server.timed_out > 0)

let test_decomposition_sums () =
  let _, srv, _ = serve ~rate:8000.0 ~ms:800.0 () in
  let t = Server.totals srv in
  let lat = t.Server.lat in
  check cb "completed requests recorded" true (t.Server.completed > 100);
  check ci "queueing count = e2e count"
    (Histogram.count (Latency.e2e lat))
    (Histogram.count (Latency.queueing lat));
  check ci "service count = e2e count"
    (Histogram.count (Latency.e2e lat))
    (Histogram.count (Latency.service lat));
  (* per-sample e2e = queueing + service, so the sums agree too *)
  let sum h = Histogram.sum h in
  check
    (Alcotest.float 1e-6)
    "sum(e2e) = sum(queueing) + sum(service)"
    (sum (Latency.e2e lat))
    (sum (Latency.queueing lat) +. sum (Latency.service lat));
  (* gc inflation is bounded by end-to-end *)
  check cb "sum(gc) <= sum(e2e)" true
    (sum (Latency.gc lat) <= sum (Latency.e2e lat) +. 1e-9)

let test_events_match_counters () =
  let vm, srv, _ = serve ~rate:20000.0 ~queue_cap:4 ~workers:1 ~ms:300.0
      ~trace:true () in
  let t = Server.totals srv in
  let count code =
    List.length
      (List.filter
         (fun (e : Event.t) -> e.Event.code = code)
         (Obs.events (Vm.obs vm)))
  in
  check ci "req-arrive events = admitted" t.Server.admitted
    (count Event.Req_arrive);
  check ci "req-shed events = sheds"
    (t.Server.shed_full + t.Server.shed_throttled)
    (count Event.Req_shed);
  check ci "req-done events = completed" t.Server.completed
    (count Event.Req_done);
  (* a request picked up right at the end has its start span but no
     done span yet *)
  check ci "req-start spans = completed + in flight"
    (t.Server.completed + Server.in_flight srv)
    (count Event.Req_start)

let test_slo_attainment () =
  let mk ~completed ~viol ~shed ~timed =
    {
      Server.arrived = completed + shed + timed;
      admitted = completed + timed;
      shed_full = shed;
      shed_throttled = 0;
      timed_out = timed;
      completed;
      slo_violations = viol;
      max_depth = 0;
      lat = Latency.create ();
      spans = Span.empty_summary;
    }
  in
  check cf "all good" 1.0
    (Server.slo_attainment (mk ~completed:100 ~viol:0 ~shed:0 ~timed:0));
  check cf "violations count" 0.9
    (Server.slo_attainment (mk ~completed:100 ~viol:10 ~shed:0 ~timed:0));
  check cf "sheds and timeouts count" 0.5
    (Server.slo_attainment (mk ~completed:50 ~viol:0 ~shed:25 ~timed:25));
  check cf "empty run attains" 1.0
    (Server.slo_attainment (mk ~completed:0 ~viol:0 ~shed:0 ~timed:0))

let test_stw_tail_exceeds_cgc () =
  (* The tentpole claim at test scale: same seed, same offered load,
     STW's p99.9 end-to-end latency far above CGC's. *)
  let p999 gc =
    let _, srv, _ = serve ~rate:6000.0 ~heap_mb:16.0 ~ms:1000.0 ~gc () in
    Histogram.percentile (Latency.e2e (Server.totals srv).Server.lat) 99.9
  in
  let stw = p999 Config.stw and cgc = p999 Config.default in
  check cb
    (Printf.sprintf "stw p99.9 (%.2f) > 2x cgc p99.9 (%.2f)" stw cgc)
    true
    (stw > 2.0 *. cgc)

let test_reset_discards_warmup () =
  let vm = Vm.create (Vm.config ~heap_mb:16.0 ~ncpus:4 ~seed:1 ()) in
  let srv = Server.create (Server.cfg ~rate_per_s:6000.0 ()) vm in
  Vm.run_measured vm ~warmup_ms:300.0 ~ms:300.0;
  let t = Server.totals srv in
  (* ~300 ms at 6000/s: the warmup's ~1800 arrivals must be gone *)
  check cb "warmup arrivals discarded" true
    (t.Server.arrived > 1000 && t.Server.arrived < 2600)

(* -------------------------- report / schema -------------------------- *)

let report_of_run () =
  let _, srv, scfg = serve ~rate:6000.0 ~slo_ms:50.0 ~ms:400.0 () in
  Report.to_json scfg ~ran_ms:400.0 (Server.totals srv)

let test_schema_roundtrip () =
  let j = report_of_run () in
  let s = Json.to_string ~pretty:true j in
  (match Report.validate s with
  | Error e -> Alcotest.failf "validate rejected its own report: %s" e
  | Ok j' ->
      check Alcotest.string "re-serialises to the same bytes" s
        (Json.to_string ~pretty:true j'));
  (* compact form round-trips too *)
  let c = Json.to_string j in
  (match Json.parse c with
  | Error e -> Alcotest.failf "compact parse failed: %s" e
  | Ok j' -> check Alcotest.string "compact round-trip" c (Json.to_string j'));
  match Report.validate "{\"schema\":\"cgcsim-bench-v1\"}" with
  | Ok _ -> Alcotest.fail "accepted a foreign schema"
  | Error e -> check cb "names the mismatch" true (e <> "")

let test_report_fields () =
  let j = report_of_run () in
  check cb "schema tag" true
    (Json.member "schema" j = Some (Json.Str "cgcsim-server-v2"));
  List.iter
    (fun k -> check cb k true (Json.member k j <> None))
    [ "ratePerS"; "arrival"; "counts"; "latencyMs"; "sloAttainment";
      "completedPerS"; "blame"; "tails"; "exemplars" ];
  match Json.member "latencyMs" j with
  | Some lat ->
      List.iter
        (fun k -> check cb k true (Json.member k lat <> None))
        [ "e2e"; "queueing"; "service"; "gcInflation" ]
  | None -> Alcotest.fail "latencyMs missing"

let test_report_determinism () =
  let run () =
    let _, srv, scfg =
      serve ~rate:6000.0 ~slo_ms:50.0 ~ms:400.0 ~trace:true ()
    in
    Json.to_string ~pretty:true
      (Report.to_json scfg ~ran_ms:400.0 (Server.totals srv))
  in
  check Alcotest.string "same seed, byte-identical report" (run ()) (run ())

let test_json_parse_rejects () =
  List.iter
    (fun bad ->
      match Json.parse bad with
      | Ok _ -> Alcotest.failf "parsed %S" bad
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "{\"a\":1}x"; "\"unterminated" ]

(* --------------------------- causal spans --------------------------- *)

let test_blame_conservation () =
  (* The runtime asserts the identity per request; here the aggregate
     must hold too: summed blame components = summed e2e cycles, with
     one span per completed request. *)
  let _, srv, _ = serve ~rate:8000.0 ~ms:800.0 () in
  let t = Server.totals srv in
  let sp = t.Server.spans in
  check ci "one span per completed request" t.Server.completed sp.Span.count;
  check ci "aggregate blame sums to aggregate e2e" sp.Span.sum_e2e
    (Span.blame_total sp.Span.sum);
  List.iter
    (fun (s : Span.t) ->
      check ci
        (Printf.sprintf "rid %d blame sums to e2e" s.Span.route.Span.rid)
        (Span.e2e_cycles s)
        (Span.blame_total s.Span.blame))
    sp.Span.worst

let test_worst_spans_ordered () =
  let _, srv, _ = serve ~rate:8000.0 ~ms:800.0 () in
  let sp = (Server.totals srv).Server.spans in
  check cb "worst list bounded" true (List.length sp.Span.worst <= 32);
  let rec desc = function
    | a :: (b :: _ as rest) ->
        (Span.e2e_cycles a > Span.e2e_cycles b
        || Span.e2e_cycles a = Span.e2e_cycles b
           && a.Span.route.Span.rid < b.Span.route.Span.rid)
        && desc rest
    | _ -> true
  in
  check cb "worst-first, rid tie-break" true (desc sp.Span.worst)

let test_exemplar_reservoir_bounds () =
  let _, srv, _ = serve ~rate:8000.0 ~ms:800.0 () in
  let sp = (Server.totals srv).Server.spans in
  let per_decade = Array.make 8 0 in
  List.iter
    (fun (d, s) ->
      check cb "decade in range" true (d >= 0 && d < 6);
      per_decade.(d) <- per_decade.(d) + 1;
      check ci "exemplar satisfies the identity" (Span.e2e_cycles s)
        (Span.blame_total s.Span.blame))
    sp.Span.exemplars;
  Array.iter (fun n -> check cb "at most R per decade" true (n <= 4))
    per_decade

let test_span_merge_identity () =
  (* Merging two summaries keeps the identity and adds the counts. *)
  let run seed =
    let _, srv, _ = serve ~rate:6000.0 ~ms:400.0 ~seed () in
    (Server.totals srv).Server.spans
  in
  let a = run 1 and b = run 2 in
  let m = Span.merge a b in
  check ci "merged count adds" (a.Span.count + b.Span.count) m.Span.count;
  check ci "merged sums add" (a.Span.sum_e2e + b.Span.sum_e2e) m.Span.sum_e2e;
  check ci "merged blame conserves" m.Span.sum_e2e
    (Span.blame_total m.Span.sum);
  check cb "merged worst bounded" true (List.length m.Span.worst <= 32)

(* --------------------- delays and degradation ---------------------- *)

let test_scripted_delay_stream () =
  let a = Arrival.scripted ~delays:[| 3; 7 |] [| 5; 9 |] in
  check ci "first arrival" 5 (Arrival.next a);
  check ci "its delay" 3 (Arrival.last_delay a);
  check ci "second arrival" 9 (Arrival.next a);
  check ci "its delay" 7 (Arrival.last_delay a);
  check ci "exhausted" max_int (Arrival.next a);
  let plain = Arrival.scripted [| 5 |] in
  ignore (Arrival.next plain);
  check ci "no delays means zero" 0 (Arrival.last_delay plain);
  check cb "delay length mismatch rejected" true
    (match Arrival.scripted ~delays:[| 1 |] [| 5; 9 |] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check cb "negative delay rejected" true
    (match Arrival.scripted ~delays:[| -1 |] [| 5 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let scripted_run ?delays ?degrade ts =
  let vm = Vm.create (Vm.config ~heap_mb:16.0 ~ncpus:4 ~seed:1 ()) in
  let scfg = Server.cfg ~rate_per_s:1000.0 ~queue_cap:256 ~workers:4 () in
  let srv =
    Server.create ~arrivals:(Arrival.scripted ?delays ts) ?degrade scfg vm
  in
  Vm.run vm ~ms:200.0;
  Server.totals srv

let test_delays_backdate_into_latency () =
  (* A retry's backoff happened before the shard ever saw the request;
     the server backdates the arrival so the e2e histogram carries it. *)
  let ts = Array.init 50 (fun i -> (i + 1) * cpm / 2) in
  let base = scripted_run ts in
  let delayed = scripted_run ~delays:(Array.make 50 (2 * cpm)) ts in
  check ci "same arrivals consumed" base.Server.arrived
    delayed.Server.arrived;
  check ci "same completions" base.Server.completed delayed.Server.completed;
  let m (t : Server.totals) = Histogram.mean (Latency.e2e t.Server.lat) in
  let dm = m delayed -. m base in
  check cb "2 ms pre-delay lands in e2e latency" true
    (dm > 1.5 && dm < 2.5);
  let q (t : Server.totals) =
    Histogram.mean (Latency.queueing t.Server.lat)
  in
  check cb "pre-delay counts as queueing, not service" true
    (q delayed -. q base > 1.5)

let test_degrade_inflates_service () =
  let ts = Array.init 50 (fun i -> (i + 1) * cpm / 2) in
  let base = scripted_run ts in
  let slow = scripted_run ~degrade:(0, max_int, 2.0) ts in
  let sv (t : Server.totals) =
    Histogram.mean (Latency.service t.Server.lat)
  in
  check ci "nothing shed under brownout" base.Server.completed
    slow.Server.completed;
  check cb "service time roughly doubles" true
    (sv slow > 1.7 *. sv base && sv slow < 2.5 *. sv base)

let () =
  Alcotest.run "server"
    [
      ( "arrival",
        [
          Alcotest.test_case "constant spacing" `Quick test_arrival_constant;
          Alcotest.test_case "deterministic" `Quick test_arrival_deterministic;
          Alcotest.test_case "average rates" `Quick test_arrival_rates_average;
          Alcotest.test_case "bursty modulation" `Quick
            test_arrival_bursty_modulates;
        ] );
      ( "latency",
        [
          Alcotest.test_case "scripted hand-computed" `Quick
            test_scripted_latencies;
          Alcotest.test_case "merge counters" `Quick test_latency_merge_counters;
          QCheck_alcotest.to_alcotest merge_vs_concat_test;
        ] );
      ( "server",
        [
          Alcotest.test_case "counts conserved" `Quick test_counts_conserved;
          Alcotest.test_case "queue-bound shedding" `Quick
            test_queue_bound_shedding;
          Alcotest.test_case "admission throttle" `Quick test_admission_throttle;
          Alcotest.test_case "timeouts" `Quick test_timeouts;
          Alcotest.test_case "decomposition sums to e2e" `Quick
            test_decomposition_sums;
          Alcotest.test_case "events match counters" `Quick
            test_events_match_counters;
          Alcotest.test_case "slo attainment" `Quick test_slo_attainment;
          Alcotest.test_case "stw tail exceeds cgc" `Quick
            test_stw_tail_exceeds_cgc;
          Alcotest.test_case "reset discards warmup" `Quick
            test_reset_discards_warmup;
        ] );
      ( "spans",
        [
          Alcotest.test_case "blame conservation" `Quick
            test_blame_conservation;
          Alcotest.test_case "worst spans ordered" `Quick
            test_worst_spans_ordered;
          Alcotest.test_case "exemplar reservoir bounds" `Quick
            test_exemplar_reservoir_bounds;
          Alcotest.test_case "merge keeps the identity" `Quick
            test_span_merge_identity;
        ] );
      ( "chaos-support",
        [
          Alcotest.test_case "scripted delay stream" `Quick
            test_scripted_delay_stream;
          Alcotest.test_case "delays backdate into latency" `Quick
            test_delays_backdate_into_latency;
          Alcotest.test_case "degrade inflates service" `Quick
            test_degrade_inflates_service;
        ] );
      ( "report",
        [
          Alcotest.test_case "schema round-trip" `Quick test_schema_roundtrip;
          Alcotest.test_case "fields" `Quick test_report_fields;
          Alcotest.test_case "byte-identical" `Quick test_report_determinism;
          Alcotest.test_case "parse rejects malformed" `Quick
            test_json_parse_rejects;
        ] );
    ]
