(* Tests for the generational front end (lib/gen): nursery carving,
   the old->young remembered set, minor collections, pinning, QCheck
   models of the bump allocator and survivor evacuation, and
   three-mode end-to-end soundness at equal heap budgets. *)

module Machine = Cgc_smp.Machine
module Heap = Cgc_heap.Heap
module Arena = Cgc_heap.Arena
module Alloc_bits = Cgc_heap.Alloc_bits
module Card_table = Cgc_heap.Card_table
module Config = Cgc_core.Config
module Collector = Cgc_core.Collector
module Gstats = Cgc_core.Gstats
module Gen = Cgc_gen.Gen
module Vm = Cgc_runtime.Vm
module Mutator = Cgc_runtime.Mutator

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int

let gen_vm ?(heap_mb = 2.0) ?(ncpus = 2) ?(seed = 1) ?(verify = false) () =
  let gc = { Config.gen with Config.verify } in
  Vm.create (Vm.config ~heap_mb ~ncpus ~seed ~gc ())

let the_gen vm =
  match Vm.gen vm with
  | Some g -> g
  | None -> Alcotest.fail "gen mode VM has no generational front end"

(* ------------------------------------------------------------------ *)
(* Unit: carving and geometry                                          *)

let test_nursery_carved () =
  let vm = gen_vm () in
  let g = the_gen vm in
  let heap = Vm.heap vm in
  check cb "nursery is a top slice" true
    (Gen.n_lo g > 0 && Gen.n_hi g = Heap.nslots heap);
  check ci "old_limit is the nursery base" (Gen.n_lo g)
    (Collector.old_limit (Vm.collector vm));
  (* nursery_fraction of the heap, rounded down to a card boundary *)
  let slots = Gen.n_hi g - Gen.n_lo g in
  let want =
    int_of_float
      (float_of_int (Heap.nslots heap) *. Config.gen.Config.nursery_fraction)
  in
  check cb "close to the configured fraction" true
    (slots <= want && want - slots < 1024);
  check cb "nothing used yet" true (Gen.nursery_used g = 0.0)

let test_mode_guards () =
  let bad cfg =
    match Vm.create (Vm.config ~heap_mb:2.0 ~gc:cfg ()) with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check cb "gen + compaction rejected" true
    (bad { Config.gen with Config.compaction = true });
  check cb "gen + lazy sweep rejected" true
    (bad { Config.gen with Config.lazy_sweep = true });
  check cb "plain gen accepted" false (bad Config.gen)

(* ------------------------------------------------------------------ *)
(* Unit: the extended write barrier and the remembered set             *)

let test_barrier_dirties_old_to_young () =
  let vm = gen_vm () in
  let g = the_gen vm in
  let seen = ref [] in
  Vm.spawn_mutator vm ~name:"w" (fun m ->
      (* A large allocation bypasses the nursery: old space. *)
      let old_parent = Mutator.alloc m ~nrefs:2 ~size:200 in
      let young = Mutator.alloc m ~nrefs:0 ~size:4 in
      let old_peer = Mutator.alloc m ~nrefs:0 ~size:200 in
      Mutator.root_set m 0 old_parent;
      Mutator.root_set m 1 young;
      (* old -> old: no young card *)
      Mutator.set_ref m old_parent 1 old_peer;
      let clean_after_old_store =
        not (Card_table.is_dirty (Gen.young g) (Arena.card_of_addr old_parent))
      in
      (* old -> young: the parent's young card must dirty *)
      Mutator.set_ref m old_parent 0 young;
      let dirty_after_young_store =
        Card_table.is_dirty (Gen.young g) (Arena.card_of_addr old_parent)
      in
      seen :=
        [ ("parent is old", old_parent < Gen.n_lo g);
          ("young is in the nursery", young >= Gen.n_lo g);
          ("old->old store leaves the young card clean", clean_after_old_store);
          ("old->young store dirties the parent's card", dirty_after_young_store);
        ]);
  Vm.run vm ~ms:50.0;
  check cb "mutator ran" true (!seen <> []);
  List.iter (fun (what, ok) -> check cb what true ok) !seen

let test_minor_preserves_remembered_edge () =
  let vm = gen_vm ~verify:true () in
  let g = the_gen vm in
  let nursery = Gen.n_hi g - Gen.n_lo g in
  let arena = Heap.arena (Vm.heap vm) in
  let parent_ref = ref 0 in
  Vm.spawn_mutator vm ~name:"w" (fun m ->
      let parent = Mutator.alloc m ~nrefs:1 ~size:200 in
      Mutator.root_set m 0 parent;
      parent_ref := parent;
      let young = Mutator.alloc m ~nrefs:0 ~size:6 in
      Mutator.set_ref m parent 0 young;
      (* Exhaust the nursery with garbage; the minor must evacuate the
         remembered-set referent, not reclaim it. *)
      let st = Vm.gc_stats vm in
      let n = ref 0 in
      while st.Gstats.minors < 2 && !n < nursery do
        ignore (Mutator.alloc m ~nrefs:0 ~size:16);
        incr n;
        if !n mod 64 = 0 then Mutator.tx_done m
      done);
  Vm.run vm ~ms:4000.0;
  let st = Vm.gc_stats vm in
  check cb "minors ran" true (st.Gstats.minors >= 2);
  let child = Arena.ref_get_sc arena !parent_ref 0 in
  check cb "referent promoted to the old space" true
    (child > 0 && child < Gen.n_lo g);
  check cb "promoted copy has a valid header" true
    (Arena.header_valid_sc arena child);
  check ci "promoted copy keeps its size" 6 (Arena.size_of_sc arena child)

let test_pinned_survivor_stays_then_leaves () =
  let vm = gen_vm ~verify:true () in
  let g = the_gen vm in
  let nursery = Gen.n_hi g - Gen.n_lo g in
  let pinned_addr = ref 0 in
  let addr_after_minor = ref 0 in
  let pinned_count = ref (-1) in
  Vm.spawn_mutator vm ~name:"w" (fun m ->
      let obj = Mutator.alloc m ~nrefs:0 ~size:8 in
      Mutator.root_set m 0 obj;
      pinned_addr := obj;
      let st = Vm.gc_stats vm in
      let n = ref 0 in
      while st.Gstats.minors < 1 && !n < nursery do
        ignore (Mutator.alloc m ~nrefs:0 ~size:16);
        incr n;
        if !n mod 64 = 0 then Mutator.tx_done m
      done;
      (* Rooted at minor time: the object must not have moved. *)
      addr_after_minor := Mutator.root_get m 0;
      pinned_count := Gen.pinned_slots g;
      (* Drop the root; the next minor evacuates or reclaims it. *)
      Mutator.root_set m 0 0;
      let target = st.Gstats.minors + 1 in
      n := 0;
      while st.Gstats.minors < target && !n < nursery do
        ignore (Mutator.alloc m ~nrefs:0 ~size:16);
        incr n;
        if !n mod 64 = 0 then Mutator.tx_done m
      done);
  Vm.run vm ~ms:4000.0;
  check cb "object was rooted in the nursery" true (!pinned_addr >= Gen.n_lo g);
  check ci "rooted young object did not move" !pinned_addr !addr_after_minor;
  check cb "minor reported pinned slots" true (!pinned_count >= 8);
  (* After the unrooted minor, nothing keeps it pinned. *)
  check ci "no pins remain" 0 (Gen.pinned_slots g)

(* ------------------------------------------------------------------ *)
(* QCheck: bump-allocator model                                        *)

(* Small allocations from a gen-mode mutator are nursery bump
   allocations: every extent lies inside [n_lo, n_hi), extents are
   pairwise disjoint, and (single mutator, no minor in between)
   addresses are strictly increasing. *)
let bump_model =
  QCheck.Test.make ~name:"nursery bump allocation matches model" ~count:30
    QCheck.(list_of_size (Gen.int_range 5 60) (int_range 2 24))
    (fun sizes ->
      let vm = gen_vm ~heap_mb:4.0 () in
      let g = the_gen vm in
      let out = ref [] in
      Vm.spawn_mutator vm ~name:"w" (fun m ->
          out :=
            List.map (fun size -> (Mutator.alloc m ~nrefs:0 ~size, size)) sizes);
      Vm.run vm ~ms:100.0;
      let allocs = !out in
      let st = Vm.gc_stats vm in
      if st.Gstats.minors <> 0 then
        QCheck.Test.fail_report "minor ran under a tiny allocation load";
      List.iter
        (fun (a, s) ->
          if a < Gen.n_lo g || a + s > Gen.n_hi g then
            QCheck.Test.fail_reportf "extent [%d,%d) outside nursery [%d,%d)"
              a (a + s) (Gen.n_lo g) (Gen.n_hi g))
        allocs;
      let rec disjoint = function
        | (a, s) :: ((b, _) :: _ as rest) ->
            if a + s > b then
              QCheck.Test.fail_reportf "extents overlap: [%d,%d) then %d" a
                (a + s) b;
            disjoint rest
        | _ -> true
      in
      disjoint allocs)

(* Allocating more than the nursery holds must trigger minors — the
   refill hook's exhaustion path — and the heap must stay consistent
   (verifier on). *)
let exhaustion_model =
  QCheck.Test.make ~name:"nursery exhaustion triggers minors" ~count:10
    QCheck.(int_range 8 24)
    (fun size ->
      let vm = gen_vm ~heap_mb:2.0 ~verify:true () in
      let g = the_gen vm in
      let nursery = Gen.n_hi g - Gen.n_lo g in
      let n_allocs = (2 * nursery / size) + 8 in
      Vm.spawn_mutator vm ~name:"w" (fun m ->
          for i = 1 to n_allocs do
            ignore (Mutator.alloc m ~nrefs:0 ~size);
            if i mod 64 = 0 then Mutator.tx_done m
          done);
      Vm.run vm ~ms:4000.0;
      let st = Vm.gc_stats vm in
      if st.Gstats.minors + st.Gstats.minor_deferred < 1 then
        QCheck.Test.fail_reportf
          "allocated %d slots through a %d-slot nursery without a minor"
          (n_allocs * size) nursery;
      true)

(* ------------------------------------------------------------------ *)
(* QCheck: survivor evacuation preserves the object graph              *)

(* Walk a graph depth-first from a root, assigning discovery indices;
   the signature is one (nrefs, child discovery indices) row per node
   in discovery order.  Two isomorphic graphs produce equal
   signatures. *)
let signature ~nrefs_of ~child root =
  let index = Hashtbl.create 32 in
  let rows = ref [] in
  let rec walk v =
    if not (Hashtbl.mem index v) then begin
      Hashtbl.add index v (Hashtbl.length index);
      let n = nrefs_of v in
      let kids = List.init n (child v) in
      List.iter walk kids;
      rows := (n, List.map (Hashtbl.find index) kids) :: !rows
    end
  in
  walk root;
  List.rev !rows

let evacuation_model =
  QCheck.Test.make ~name:"evacuation preserves the object graph" ~count:20
    QCheck.(pair (int_range 2 18) (int_range 0 1_000_000))
    (fun (n, seed) ->
      (* A random connected graph: node i>0 hangs off a random earlier
         node (spanning tree), plus a few extra edges — back, forward
         and self edges all allowed, so evacuation sees cycles. *)
      let rng = Random.State.make [| seed; n |] in
      let adj = Array.make n [] in
      for i = 1 to n - 1 do
        let p = Random.State.int rng i in
        adj.(p) <- adj.(p) @ [ i ]
      done;
      for _ = 1 to n / 2 do
        let a = Random.State.int rng n and b = Random.State.int rng n in
        adj.(a) <- adj.(a) @ [ b ]
      done;
      let vm = gen_vm ~heap_mb:2.0 ~verify:true () in
      let g = the_gen vm in
      let nursery = Gen.n_hi g - Gen.n_lo g in
      let arena = Heap.arena (Vm.heap vm) in
      let before = ref [] in
      let root_addr = ref 0 in
      Vm.spawn_mutator vm ~name:"w" (fun m ->
          let addrs =
            Array.init n (fun i ->
                let nrefs = List.length adj.(i) in
                Mutator.alloc m ~nrefs ~size:(1 + nrefs + (i mod 3)))
          in
          Array.iteri
            (fun i kids ->
              List.iteri (fun slot j -> Mutator.set_ref m addrs.(i) slot addrs.(j)) kids)
            adj;
          Mutator.root_set m 0 addrs.(0);
          root_addr := addrs.(0);
          before :=
            signature
              ~nrefs_of:(fun v -> Arena.nrefs_of_sc arena v)
              ~child:(fun v i -> Arena.ref_get_sc arena v i)
              addrs.(0);
          (* Now drown the graph in garbage: at least two minors, so the
             graph is evacuated (and the pinned root rescanned). *)
          let st = Vm.gc_stats vm in
          let k = ref 0 in
          while st.Gstats.minors < 2 && !k < 2 * nursery do
            ignore (Mutator.alloc m ~nrefs:0 ~size:16);
            incr k;
            if !k mod 64 = 0 then Mutator.tx_done m
          done);
      Vm.run vm ~ms:4000.0;
      let st = Vm.gc_stats vm in
      if st.Gstats.minors < 2 then
        QCheck.Test.fail_report "garbage churn did not reach two minors";
      let after =
        signature
          ~nrefs_of:(fun v -> Arena.nrefs_of_sc arena v)
          ~child:(fun v i -> Arena.ref_get_sc arena v i)
          !root_addr
      in
      if !before <> after then
        QCheck.Test.fail_reportf
          "object graph changed across evacuation: %d rows before, %d after"
          (List.length !before) (List.length after);
      true)

(* ------------------------------------------------------------------ *)
(* End-to-end: the three collectors at equal heap budgets              *)

let churn ms vm =
  Vm.spawn_mutator vm ~name:"churn" (fun m ->
      let module Objgraph = Cgc_workloads.Objgraph in
      let head = ref (Objgraph.build_list m ~len:300 ~node_slots:8) in
      Mutator.root_set m 0 !head;
      while not (Mutator.stopped m) do
        for _ = 1 to 8 do
          ignore (Mutator.alloc m ~nrefs:0 ~size:8)
        done;
        let tail = Mutator.get_ref m !head 0 in
        let fresh = Mutator.alloc m ~nrefs:1 ~size:8 in
        Mutator.set_ref m fresh 0 tail;
        head := fresh;
        Mutator.root_set m 0 fresh;
        Mutator.work m 4_000;
        Mutator.tx_done m
      done);
  Vm.run vm ~ms

let test_three_modes_equal_budget () =
  let run gc =
    let vm =
      Vm.create
        (Vm.config ~heap_mb:2.0 ~ncpus:2 ~seed:7
           ~gc:{ gc with Config.verify = true } ())
    in
    churn 500.0 vm;
    vm
  in
  let stw = run Config.stw
  and cgc = run Config.default
  and gen = run Config.gen in
  List.iter
    (fun (name, vm) ->
      check cb (name ^ " made progress") true (Vm.total_transactions vm > 100);
      check (Alcotest.list (Alcotest.pair ci ci)) (name ^ " heap intact") []
        (Collector.check_reachable (Vm.collector vm)))
    [ ("stw", stw); ("cgc", cgc); ("gen", gen) ];
  let gst = Vm.gc_stats gen in
  check cb "gen ran minors" true (gst.Gstats.minors > 0);
  check cb "gen promoted survivors" true (gst.Gstats.promoted_slots > 0)

let test_gen_deterministic () =
  let once () =
    let vm = gen_vm ~heap_mb:2.0 ~seed:42 () in
    churn 400.0 vm;
    let st = Vm.gc_stats vm in
    ( Vm.total_transactions vm,
      st.Gstats.minors,
      st.Gstats.promoted_slots,
      Cgc_util.Histogram.sum st.Gstats.minor_pause_ms )
  in
  let t1, m1, p1, s1 = once () in
  let t2, m2, p2, s2 = once () in
  check ci "transactions equal" t1 t2;
  check ci "minors equal" m1 m2;
  check ci "promoted slots equal" p1 p2;
  check (Alcotest.float 0.0) "minor pause totals equal" s1 s2

let () =
  Alcotest.run "gen"
    [
      ( "unit",
        [
          Alcotest.test_case "nursery carved" `Quick test_nursery_carved;
          Alcotest.test_case "mode guards" `Quick test_mode_guards;
          Alcotest.test_case "barrier dirties old->young" `Quick
            test_barrier_dirties_old_to_young;
          Alcotest.test_case "minor preserves remembered edge" `Quick
            test_minor_preserves_remembered_edge;
          Alcotest.test_case "pinned survivor stays then leaves" `Quick
            test_pinned_survivor_stays_then_leaves;
        ] );
      ( "model",
        [
          QCheck_alcotest.to_alcotest bump_model;
          QCheck_alcotest.to_alcotest exhaustion_model;
          QCheck_alcotest.to_alcotest evacuation_model;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "three modes, equal budget" `Slow
            test_three_modes_equal_budget;
          Alcotest.test_case "gen runs deterministic" `Slow
            test_gen_deterministic;
        ] );
    ]
