(* Configuration fuzzing: random combinations of heap size, CPU count,
   collector mode and features (tracing rate, packets, lazy sweep,
   compaction, card passes, fence policy, memory model) each run a churn
   workload briefly; afterwards the reachable heap must be fully intact
   and the tracer must have observed no corruption.  This is the
   failure-injection net that catches interactions the targeted tests
   miss. *)

module Vm = Cgc_runtime.Vm
module Mutator = Cgc_runtime.Mutator
module Collector = Cgc_core.Collector
module Config = Cgc_core.Config
module Tracer = Cgc_core.Tracer
module Objgraph = Cgc_workloads.Objgraph
module Prng = Cgc_util.Prng
module Fault = Cgc_fault.Fault

(* Tunable from the command line via `make fuzz FUZZ_COUNT=...` (or the
   environment): how many random configurations to try. *)
let fuzz_count =
  match Sys.getenv_opt "FUZZ_COUNT" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 25)
  | None -> 25

let churn resident m =
  let rng = Mutator.rng m in
  for i = 0 to 3 do
    let head = Objgraph.build_list m ~len:resident ~node_slots:10 in
    Mutator.root_set m i head
  done;
  while not (Mutator.stopped m) do
    let li = Prng.int rng 4 in
    let old = Mutator.root_get m li in
    let tail = Mutator.get_ref m old 0 in
    Mutator.root_set m 5 tail;
    let fresh = Mutator.alloc m ~nrefs:1 ~size:10 in
    Mutator.set_ref m fresh 0 tail;
    Mutator.root_set m li fresh;
    Mutator.root_set m 5 0;
    for _ = 1 to 4 do
      let o = Mutator.alloc m ~nrefs:1 ~size:(4 + Prng.int rng 8) in
      Mutator.root_set m 4 o
    done;
    Mutator.root_set m 4 0;
    if Prng.chance rng 0.05 then
      Mutator.root_set m 6 (Prng.int rng max_int);
    Mutator.work m 4_000;
    if Prng.chance rng 0.1 then Mutator.think m (Prng.int rng 100_000);
    Mutator.tx_done m
  done

let gen =
  QCheck.Gen.(
    let* heap_mb = oneofl [ 2.0; 4.0; 8.0 ] in
    let* ncpus = int_range 1 6 in
    let* workers = int_range 1 6 in
    let* mode = oneofl [ Config.Cgc; Config.Stw ] in
    let* k0 = oneofl [ 1.0; 4.0; 8.0; 12.0 ] in
    let* n_packets = oneofl [ 8; 64; 1000 ] in
    let* capacity = oneofl [ 4; 64; 493 ] in
    let* n_background = int_range 0 3 in
    let* card_passes = int_range 1 2 in
    let* lazy_sweep = bool in
    let* compaction = bool in
    let* stealing = bool in
    let* relaxed = bool in
    let* naive = bool in
    (* a random subset of fault scenarios (bit i of the mask = scenario
       i armed); armed runs also turn the cycle-boundary verifier on *)
    let* fault_mask = int_range 0 63 in
    let* seed = int_range 1 1000 in
    return
      ( heap_mb,
        ncpus,
        workers,
        {
          Config.default with
          Config.mode;
          k0;
          n_packets;
          packet_capacity = capacity;
          n_background;
          card_passes;
          (* lazy sweep and compaction are mutually exclusive; stealing is
             only a baseline-mode load balancer and excludes compaction *)
          lazy_sweep = lazy_sweep && not compaction;
          compaction = compaction && not stealing;
          load_balance = (if stealing then Config.Stealing else Config.Packets);
        },
        relaxed,
        naive,
        fault_mask,
        seed ))

let scenarios_of_mask mask =
  List.filter (fun s -> mask land (1 lsl Fault.index s) <> 0) Fault.all

let print_cfg
    (heap_mb, ncpus, workers, (gc : Config.t), relaxed, naive, fault_mask, seed)
    =
  Printf.sprintf
    "heap=%.0fMB cpus=%d workers=%d mode=%s k0=%.0f pkts=%dx%d bg=%d passes=%d lazy=%b compact=%b steal=%b relaxed=%b naive=%b faults=[%s] seed=%d"
    heap_mb ncpus workers
    (Config.mode_name gc.Config.mode)
    gc.Config.k0 gc.Config.n_packets gc.Config.packet_capacity
    gc.Config.n_background gc.Config.card_passes gc.Config.lazy_sweep
    gc.Config.compaction
    (gc.Config.load_balance = Config.Stealing)
    relaxed naive
    (String.concat "," (List.map Fault.to_name (scenarios_of_mask fault_mask)))
    seed

let fuzz =
  QCheck.Test.make ~name:"random configurations keep the heap sound"
    ~count:fuzz_count
    (QCheck.make ~print:print_cfg gen)
    (fun (heap_mb, ncpus, workers, gc, relaxed, naive, fault_mask, seed) ->
      let scenarios = scenarios_of_mask fault_mask in
      let gc =
        if scenarios = [] then gc
        else
          {
            gc with
            Config.faults = Fault.create ~scenarios ~seed ();
            verify = true;
          }
      in
      let vm =
        Vm.create
          (Vm.config ~heap_mb ~ncpus ~seed ~gc
             ~wm_mode:(if relaxed then Cgc_smp.Weakmem.Relaxed else Cgc_smp.Weakmem.Sc)
             ~fence_policy:(if naive then Cgc_heap.Heap.Naive else Cgc_heap.Heap.Batched)
             ())
      in
      (* size the resident churn to roughly a third of the heap *)
      let resident =
        int_of_float (heap_mb *. 1024.0 *. 1024.0 /. 8.0 /. 3.0)
        / (workers * 4 * 10)
      in
      for i = 1 to workers do
        Vm.spawn_mutator vm
          ~name:(Printf.sprintf "w%d" i)
          (churn (max 10 resident))
      done;
      Vm.run vm ~ms:250.0;
      (* quiesce so the committed view is coherent for verification *)
      Cgc_smp.Weakmem.fence_all (Vm.machine vm).Cgc_smp.Machine.wm;
      let coll = Vm.collector vm in
      Collector.check_reachable coll = []
      && Tracer.corruptions (Collector.tracer coll) = 0)

let () =
  Alcotest.run "fuzz"
    [ ("fuzz", [ QCheck_alcotest.to_alcotest ~long:true fuzz ]) ]
