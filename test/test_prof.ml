(* Tests for the profiler: bounded time series, the online sampler,
   derived-metric analysis on synthetic event streams with hand-computed
   answers, Chrome-trace / CSV round-trips (parse then re-export,
   byte-identical), schema rejection, and the headline reproduction
   property: the trace-derived Table 4 load-balance statistics match
   what the collector accumulated into Gstats online. *)

module Event = Cgc_obs.Event
module Obs = Cgc_obs.Obs
module Export = Cgc_obs.Export
module Series = Cgc_prof.Series
module Sampler = Cgc_prof.Sampler
module Analysis = Cgc_prof.Analysis
module Json = Cgc_prof.Json
module Report = Cgc_prof.Report
module Vm = Cgc_runtime.Vm
module Config = Cgc_core.Config
module Stats = Cgc_util.Stats

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cf = Alcotest.(float 1e-9)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  nn = 0 || go 0

let replace_once ~sub ~by s =
  let n = String.length s and nn = String.length sub in
  let rec go i =
    if i + nn > n then s
    else if String.sub s i nn = sub then
      String.sub s 0 i ^ by ^ String.sub s (i + nn) (n - i - nn)
    else go (i + 1)
  in
  go 0

(* ----------------------------- Series ---------------------------- *)

let test_series_window_and_aggregates () =
  let s = Series.create ~capacity:4 ~name:"x" () in
  check ci "empty length" 0 (Series.length s);
  check cb "empty last" true (Series.last s = None);
  for i = 1 to 10 do
    Series.add s ~ts:(i * 100) (float_of_int i)
  done;
  check ci "retained" 4 (Series.length s);
  check ci "count is all points ever" 10 (Series.count s);
  check ci "dropped" 6 (Series.dropped s);
  check
    (Alcotest.list (Alcotest.pair ci cf))
    "window keeps the newest, oldest first"
    [ (700, 7.0); (800, 8.0); (900, 9.0); (1000, 10.0) ]
    (Series.to_list s);
  (* Aggregates cover the overwritten points too. *)
  check cf "min over all points" 1.0 (Series.min s);
  check cf "max over all points" 10.0 (Series.max s);
  check cf "mean over all points" 5.5 (Series.mean s);
  check cb "last" true (Series.last s = Some (1000, 10.0));
  Series.clear s;
  check ci "clear empties window" 0 (Series.length s);
  check ci "clear resets count" 0 (Series.count s);
  check cf "clear resets aggregates" 0.0 (Series.mean s)

(* ----------------------------- Sampler --------------------------- *)

let test_sampler_alignment_and_stride () =
  let p = Sampler.create ~interval:100 () in
  let n = ref 0 in
  Sampler.add_probe p ~name:"every-tick" (fun () ->
      incr n;
      float_of_int !n);
  Sampler.add_probe p ~name:"strided" ~every:2 (fun () -> 42.0);
  (* Ticks at 0, 130 and 450; the 50 and 460 ticks fall before the next
     deadline and must not sample. *)
  List.iter (fun now -> Sampler.tick p ~now) [ 0; 50; 130; 450; 460 ];
  check ci "three samples taken" 3 (Sampler.ticks p);
  let a =
    match Sampler.find p "every-tick" with Some s -> s | None -> assert false
  in
  check
    (Alcotest.list (Alcotest.pair ci cf))
    "timestamps aligned to interval boundaries"
    [ (0, 1.0); (100, 2.0); (400, 3.0) ]
    (Series.to_list a);
  let b =
    match Sampler.find p "strided" with Some s -> s | None -> assert false
  in
  check ci "strided probe sampled every 2nd tick" 2 (Series.length b);
  check
    (Alcotest.list ci)
    "strided timestamps" [ 0; 400 ]
    (List.map fst (Series.to_list b));
  check cb "unknown probe" true (Sampler.find p "nope" = None);
  check ci "registration order preserved" 2 (List.length (Sampler.series p));
  Sampler.clear p;
  check ci "clear resets ticks" 0 (Sampler.ticks p);
  (* After clear the deadline is back at 0, so sampling restarts. *)
  Sampler.tick p ~now:0;
  check ci "sampling restarts after clear" 1 (Sampler.ticks p)

(* ----------------------------- Analysis -------------------------- *)

(* Hand-checkable synthetic trace at 1 cycle/us (1000 cycles/ms):
   10 ms of wall time, two mutators, one 1 ms pause, 1.5 ms of tracing
   increments.  Every derived number below is computed by hand. *)

let ev ?(dur = -1) ?(tid = 0) ?(arg = 0) ts code =
  { Event.ts; dur; tid; code; arg }

let synthetic =
  [
    ev 0 Event.Cycle_start ~arg:1;
    ev 1000 Event.Mut_increment ~dur:500 ~tid:1 ~arg:100;
    ev 1500 Event.Incr_factor ~tid:1 ~arg:1_000_000;
    ev 3000 Event.Stw_pause ~dur:1000;
    ev 6000 Event.Mut_increment ~dur:1000 ~tid:2 ~arg:300;
    ev 7000 Event.Incr_factor ~tid:2 ~arg:2_000_000;
    ev 10_000 Event.Cycle_end ~arg:1;
  ]

let test_analysis_overview () =
  let a = Analysis.analyse ~cycles_per_us:1.0 synthetic in
  check cf "wall" 10.0 a.Analysis.wall_ms;
  check ci "events" 7 a.Analysis.n_events;
  check ci "mutators" 2 a.Analysis.n_mutators;
  check ci "cycles" 1 a.Analysis.n_cycles;
  let p = a.Analysis.pauses in
  check ci "one pause" 1 p.Analysis.pause_count;
  check cf "pause mean" 1.0 p.Analysis.pause_mean_ms;
  check cf "pause max" 1.0 p.Analysis.pause_max_ms;
  let incr_row =
    List.find
      (fun (r : Analysis.phase_row) -> r.Analysis.code = Event.Mut_increment)
      a.Analysis.phases
  in
  check ci "increment count attributed" 2 incr_row.Analysis.count;
  check cf "increment time attributed" 1.5 incr_row.Analysis.total_ms

let test_analysis_mmu_exact () =
  (* One 10 ms window: util = 1 - 1/10 - 1.5/(10*2) = 0.825.
     Five 2 ms windows: [0.875; 0.5; 1.0; 0.75; 1.0] -> min 0.5,
     avg 0.825. *)
  let a =
    Analysis.analyse ~mmu_windows_ms:[ 10.0; 2.0 ] ~cycles_per_us:1.0
      synthetic
  in
  match a.Analysis.mmu with
  | [ w10; w2 ] ->
      check cf "10ms window count" 1.0 (float_of_int w10.Analysis.n_windows);
      check cf "10ms mmu" 0.825 w10.Analysis.mmu;
      check cf "10ms avg" 0.825 w10.Analysis.avg_util;
      check ci "2ms window count" 5 w2.Analysis.n_windows;
      check cf "2ms mmu" 0.5 w2.Analysis.mmu;
      check cf "2ms avg" 0.825 w2.Analysis.avg_util
  | _ -> Alcotest.fail "expected two mmu points"

let test_utilization_timeline () =
  let tl = Analysis.utilization_timeline ~cycles_per_us:1.0 ~window_ms:2.0 synthetic in
  check
    (Alcotest.list (Alcotest.pair cf cf))
    "per-window utilization"
    [ (0.0, 0.875); (2.0, 0.5); (4.0, 1.0); (6.0, 0.75); (8.0, 1.0) ]
    tl

let test_trailing_partial_window () =
  (* 9 ms trace, 2 ms windows: the last window is only 1 ms long and
     holds a 0.5 ms pause -> utilization 0.5, not 0.75. *)
  let events =
    [
      ev 0 Event.Cycle_start ~arg:1;
      ev 8500 Event.Stw_pause ~dur:500;
    ]
  in
  let tl = Analysis.utilization_timeline ~cycles_per_us:1.0 ~window_ms:2.0 events in
  match List.rev tl with
  | (start, util) :: _ ->
      check cf "last window start" 8.0 start;
      check cf "normalised by actual length" 0.5 util
  | [] -> Alcotest.fail "empty timeline"

let test_balance_from_events () =
  let a = Analysis.analyse ~cycles_per_us:1.0 synthetic in
  let b = a.Analysis.balance in
  (* Factors 1.0 and 2.0 within one cycle: mean 1.5, per-cycle
     population stddev 0.5. *)
  check cf "factor mean" 1.5 b.Analysis.factor_mean;
  check ci "factor count" 2 b.Analysis.factor_count;
  check cf "fairness" 0.5 b.Analysis.fairness;
  check ci "fairness cycles" 1 b.Analysis.fairness_cycles;
  (* Busy times 0.5 and 1.0 ms: mean 0.75, population stddev 0.25. *)
  check cf "busy mean" 0.75 b.Analysis.busy_mean_ms;
  check cf "busy stddev" 0.25 b.Analysis.busy_stddev_ms;
  check cf "busy cv" (1.0 /. 3.0) b.Analysis.busy_cv;
  check cf "slots cv" 0.5 b.Analysis.slots_cv;
  match b.Analysis.tracers with
  | [ t1; t2 ] ->
      check ci "tid order" 1 t1.Analysis.tid;
      check ci "tid 1 slots" 100 t1.Analysis.slots;
      check ci "tid 2 slots" 300 t2.Analysis.slots
  | _ -> Alcotest.fail "expected two tracer rows"

let test_single_factor_cycle_no_fairness () =
  (* A cycle with a single factor sample contributes no fairness
     sample — same rule as the collector's online accumulation. *)
  let events =
    [
      ev 0 Event.Cycle_start ~arg:1;
      ev 100 Event.Incr_factor ~tid:1 ~arg:3_000_000;
      ev 200 Event.Cycle_end ~arg:1;
    ]
  in
  let b = (Analysis.analyse ~cycles_per_us:1.0 events).Analysis.balance in
  check cf "factor mean" 3.0 b.Analysis.factor_mean;
  check ci "no fairness sample" 0 b.Analysis.fairness_cycles

let test_report_rendering () =
  let a = Analysis.analyse ~cycles_per_us:1.0 synthetic in
  let clean = Report.summary a in
  check cb "no warning when nothing dropped" false (contains clean "WARNING");
  let lossy = Report.summary ~dropped:5 a in
  check cb "warning on drops" true (contains lossy "WARNING");
  check cb "warning names the count" true (contains lossy "5 events");
  let json = Json.to_string (Report.to_json ~label:"t" ~dropped:5 a) in
  check cb "json carries the schema tag" true
    (contains json Report.analysis_schema);
  check cb "json carries the drop count" true
    (contains json "\"dropped\":5")

(* --------------------------- Round-trips ------------------------- *)

let test_chrome_roundtrip_synthetic () =
  let json =
    Export.chrome_json ~emitted:9 ~dropped:2 ~cycles_per_us:550.0 synthetic
  in
  match Export.parse_chrome_json json with
  | Error msg -> Alcotest.fail msg
  | Ok (meta, events) ->
      check cf "cycles per us" 550.0 meta.Export.cycles_per_us;
      check ci "emitted" 9 meta.Export.emitted;
      check ci "dropped" 2 meta.Export.dropped;
      check cb "events survive exactly" true (events = synthetic);
      let again =
        Export.chrome_json ~emitted:meta.Export.emitted
          ~dropped:meta.Export.dropped ~cycles_per_us:meta.Export.cycles_per_us
          events
      in
      check cb "re-export is byte-identical" true (String.equal json again)

let traced_vm () =
  let gc = { Config.default with Config.n_background = 2 } in
  Cgc_workloads.Specjbb.run ~warehouses:4 ~gc ~heap_mb:24.0 ~ncpus:2 ~seed:5
    ~trace:true ~ms:600.0 ()

let test_chrome_roundtrip_real_trace () =
  let vm = traced_vm () in
  let json = Vm.trace_json vm in
  match Export.parse_chrome_json json with
  | Error msg -> Alcotest.fail msg
  | Ok (meta, events) ->
      let o = Vm.obs vm in
      check ci "no drops in this run" 0 (Obs.dropped o);
      check ci "all events recovered" (Obs.emitted o) (List.length events);
      check cb "events identical to the live sink" true
        (events = Obs.events o);
      let again =
        Export.chrome_json ~emitted:meta.Export.emitted
          ~dropped:meta.Export.dropped ~cycles_per_us:meta.Export.cycles_per_us
          events
      in
      check cb "re-export is byte-identical" true (String.equal json again)

let test_chrome_schema_rejection () =
  let good = Export.chrome_json ~cycles_per_us:550.0 synthetic in
  let bad =
    replace_once ~sub:Export.trace_schema ~by:"cgcsim-trace-v999" good
  in
  (match Export.parse_chrome_json bad with
  | Ok _ -> Alcotest.fail "parsed a trace with a foreign schema tag"
  | Error msg ->
      check cb "names the schema" true (contains msg "cgcsim-trace-v999"));
  match Export.parse_chrome_json "{\"not\":\"a trace\"}" with
  | Ok _ -> Alcotest.fail "parsed garbage"
  | Error _ -> ()

let test_csv_roundtrip () =
  let header = [ "a"; "b" ] in
  let rows =
    [ [ "plain"; "with,comma" ]; [ "with\"quote"; "multi\nline" ] ]
  in
  let out = Export.csv ~schema:"test-v1" ~header rows in
  match Export.parse_csv out with
  | Error msg -> Alcotest.fail msg
  | Ok (schema, h, rs) ->
      check cb "schema" true (schema = Some "test-v1");
      check (Alcotest.list Alcotest.string) "header" header h;
      check cb "rows survive quoting" true (rs = rows);
      let again = Export.csv ?schema ~header:h rs in
      check cb "re-export is byte-identical" true (String.equal out again)

let test_csv_untagged_has_no_schema () =
  let out = Export.csv ~header:[ "x" ] [ [ "1" ] ] in
  match Export.parse_csv out with
  | Ok (None, [ "x" ], [ [ "1" ] ]) -> ()
  | Ok _ -> Alcotest.fail "unexpected parse"
  | Error msg -> Alcotest.fail msg

(* ------------------- Table 4 reproduction ------------------------ *)

(* The acceptance property of the offline analyser: on a traced pBOB
   run (the Table 4 workload), the load-balance statistics derived from
   the event stream match what the collector accumulated into Gstats
   online, up to the 1e-6 fixed-point quantisation of the Incr_factor
   payload.  A plain run (no warmup) so the trace covers every sample
   Gstats saw. *)
let test_table4_reproduction () =
  let vm =
    Cgc_workloads.Pbob.setup ~warehouses:4 ~gc:Config.default ~terminals:10
      ~heap_mb:16.0 ~ncpus:4 ~seed:3 ~trace:true ~trace_ring:(1 lsl 15)
      ~think_mean:1_100_000 ~residency_at:(16, 0.5) ()
  in
  Vm.run vm ~ms:1000.0;
  let o = Vm.obs vm in
  check ci "trace is complete (no ring drops)" 0 (Obs.dropped o);
  let gs = Vm.gc_stats vm in
  let factors = gs.Cgc_core.Gstats.tracing_factor in
  check cb "run produced factor samples" true (Stats.count factors > 0);
  check cb "run produced fairness samples" true
    (Stats.count gs.Cgc_core.Gstats.fairness > 0);
  let a =
    Analysis.analyse ~cycles_per_us:(Vm.cycles_per_us vm) (Obs.events o)
  in
  let b = a.Analysis.balance in
  check ci "every factor sample present in the trace" (Stats.count factors)
    b.Analysis.factor_count;
  check ci "every fairness cycle present"
    (Stats.count gs.Cgc_core.Gstats.fairness)
    b.Analysis.fairness_cycles;
  check ci "completed cycles" gs.Cgc_core.Gstats.cycles a.Analysis.n_cycles;
  let tol = Alcotest.float 1e-5 in
  check tol "mean tracing factor matches Gstats" (Stats.mean factors)
    b.Analysis.factor_mean;
  check tol "fairness matches Gstats"
    (Stats.mean gs.Cgc_core.Gstats.fairness)
    b.Analysis.fairness

let () =
  Alcotest.run "prof"
    [
      ( "series",
        [
          Alcotest.test_case "window + lifetime aggregates" `Quick
            test_series_window_and_aggregates;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "alignment and probe stride" `Quick
            test_sampler_alignment_and_stride;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "overview numbers" `Quick test_analysis_overview;
          Alcotest.test_case "mmu, hand-computed" `Quick
            test_analysis_mmu_exact;
          Alcotest.test_case "utilization timeline" `Quick
            test_utilization_timeline;
          Alcotest.test_case "trailing partial window" `Quick
            test_trailing_partial_window;
          Alcotest.test_case "load balance from events" `Quick
            test_balance_from_events;
          Alcotest.test_case "single-sample cycle excluded from fairness"
            `Quick test_single_factor_cycle_no_fairness;
          Alcotest.test_case "report rendering" `Quick test_report_rendering;
        ] );
      ( "round-trip",
        [
          Alcotest.test_case "chrome json, synthetic" `Quick
            test_chrome_roundtrip_synthetic;
          Alcotest.test_case "chrome json, real trace" `Slow
            test_chrome_roundtrip_real_trace;
          Alcotest.test_case "foreign schema rejected" `Quick
            test_chrome_schema_rejection;
          Alcotest.test_case "csv" `Quick test_csv_roundtrip;
          Alcotest.test_case "csv without schema line" `Quick
            test_csv_untagged_has_no_schema;
        ] );
      ( "reproduction",
        [
          Alcotest.test_case "table 4 load balance matches Gstats" `Slow
            test_table4_reproduction;
        ] );
    ]
