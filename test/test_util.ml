(* Unit and property tests for the utility substrate: PRNG, exponential
   smoothing, streaming statistics, bit vectors and table rendering. *)

module Prng = Cgc_util.Prng
module Ewma = Cgc_util.Ewma
module Stats = Cgc_util.Stats
module Histogram = Cgc_util.Histogram
module Bitvec = Cgc_util.Bitvec
module Table = Cgc_util.Table

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cf = Alcotest.(float 1e-9)

(* ------------------------------ PRNG ------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.next a) (Prng.next b)
  done

let test_prng_seeds_differ () =
  let a = Prng.create 1 and b = Prng.create 2 in
  check cb "different seeds diverge" true (Prng.next a <> Prng.next b)

let test_prng_int_nonnegative () =
  (* Regression: Int64.to_int used to wrap to negative ints, producing
     negative indices roughly a quarter of the time. *)
  let r = Prng.create 7 in
  for _ = 1 to 100_000 do
    let x = Prng.int r 40 in
    if x < 0 || x >= 40 then Alcotest.failf "out of range: %d" x
  done

let test_prng_int_covers_range () =
  let r = Prng.create 3 in
  let seen = Array.make 10 false in
  for _ = 1 to 10_000 do
    seen.(Prng.int r 10) <- true
  done;
  Array.iteri (fun i s -> check cb (Printf.sprintf "bucket %d hit" i) true s) seen

let test_prng_int_in () =
  let r = Prng.create 5 in
  for _ = 1 to 10_000 do
    let x = Prng.int_in r 5 9 in
    if x < 5 || x > 9 then Alcotest.failf "int_in out of range: %d" x
  done

let test_prng_float_range () =
  let r = Prng.create 11 in
  for _ = 1 to 10_000 do
    let x = Prng.float r 2.5 in
    if x < 0.0 || x >= 2.5 then Alcotest.failf "float out of range: %f" x
  done

let test_prng_chance_extremes () =
  let r = Prng.create 13 in
  for _ = 1 to 100 do
    check cb "p=1 always true" true (Prng.chance r 1.0)
  done;
  for _ = 1 to 100 do
    check cb "p=0 always false" false (Prng.chance r 0.0)
  done

let test_prng_exponential_mean () =
  let r = Prng.create 17 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let x = Prng.exponential r 10.0 in
    check cb "exponential positive" true (x >= 0.0);
    sum := !sum +. x
  done;
  let mean = !sum /. float_of_int n in
  check cb "mean near 10" true (abs_float (mean -. 10.0) < 0.5)

let test_prng_split_independent () =
  let root = Prng.create 23 in
  let a = Prng.split root in
  let b = Prng.split root in
  check cb "split streams differ" true (Prng.next a <> Prng.next b)

let test_prng_shuffle_permutation () =
  let r = Prng.create 29 in
  let a = Array.init 100 (fun i -> i) in
  Prng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check cb "shuffle is a permutation" true (sorted = Array.init 100 (fun i -> i));
  check cb "shuffle moved something" true (a <> Array.init 100 (fun i -> i))

(* Same seed ⇒ the whole derived tree of streams replays identically —
   this is what makes every simulator run reproducible bit-for-bit. *)
let prng_same_seed_same_sequence_test =
  QCheck.Test.make ~name:"prng: same seed, same sequence (incl. splits)"
    ~count:100
    QCheck.(pair small_nat (int_bound 200))
    (fun (seed, n) ->
      let drive rng =
        let a = Prng.split rng and b = Prng.split rng in
        List.init n (fun i ->
            ( Prng.next rng,
              Prng.next a,
              Prng.int b (i + 1),
              Prng.exponential a 3.0 ))
      in
      drive (Prng.create seed) = drive (Prng.create seed))

(* Split-stream independence: however far one split stream is advanced,
   its siblings (and the root) produce exactly the outputs they would
   have produced anyway.  The server leans on this — arrival sampling
   must not perturb the mutators' think-time streams. *)
let prng_split_independent_test =
  QCheck.Test.make ~name:"prng: advancing one split never perturbs a sibling"
    ~count:100
    QCheck.(triple small_nat (int_bound 500) (int_bound 50))
    (fun (seed, burn, n) ->
      let outputs ~burn =
        let root = Prng.create seed in
        let a = Prng.split root in
        let b = Prng.split root in
        for _ = 1 to burn do
          ignore (Prng.next a)
        done;
        let sib = List.init n (fun _ -> Prng.next b) in
        let rt = List.init n (fun _ -> Prng.next root) in
        (sib, rt)
      in
      outputs ~burn = outputs ~burn:0)

(* ------------------------------ EWMA ------------------------------ *)

let test_ewma_init () =
  let e = Ewma.create ~init:5.0 () in
  check cf "initial value" 5.0 (Ewma.value e);
  check ci "no samples yet" 0 (Ewma.samples e)

let test_ewma_converges () =
  let e = Ewma.create ~alpha:0.5 ~init:0.0 () in
  for _ = 1 to 60 do
    Ewma.observe e 100.0
  done;
  check cb "converged to 100" true (abs_float (Ewma.value e -. 100.0) < 1e-6);
  check ci "sample count" 60 (Ewma.samples e)

let test_ewma_single_step () =
  let e = Ewma.create ~alpha:0.25 ~init:0.0 () in
  Ewma.observe e 8.0;
  check cf "0.25 * 8" 2.0 (Ewma.value e)

(* Closed form: after observations x1..xn starting from init v0,
   value = (1-a)^n v0 + a * sum (1-a)^(n-i) xi.  The estimate is also
   always bracketed by the extremes of {init} ∪ observations. *)
let ewma_closed_form_test =
  QCheck.Test.make ~name:"ewma: matches closed form and stays bracketed"
    ~count:200
    QCheck.(
      triple (float_range 0.1 1.0) (float_range ~-.50.0 50.0)
        (list_of_size Gen.(1 -- 40) (float_range ~-.100.0 100.0)))
    (fun (alpha, init, xs) ->
      let e = Ewma.create ~alpha ~init () in
      let expect =
        List.fold_left
          (fun acc x ->
            let v = acc +. (alpha *. (x -. acc)) in
            Ewma.observe e x;
            v)
          init xs
      in
      let lo = List.fold_left Float.min init xs
      and hi = List.fold_left Float.max init xs in
      abs_float (Ewma.value e -. expect) < 1e-9
      && Ewma.value e >= lo -. 1e-9
      && Ewma.value e <= hi +. 1e-9
      && Ewma.samples e = List.length xs)

let test_ewma_bad_alpha () =
  Alcotest.check_raises "alpha 0 rejected"
    (Invalid_argument "Ewma.create: alpha in (0,1]") (fun () ->
      ignore (Ewma.create ~alpha:0.0 ~init:0.0 ()))

(* ------------------------------ Stats ------------------------------ *)

let test_stats_empty () =
  let s = Stats.create () in
  check ci "count" 0 (Stats.count s);
  check cf "mean of empty" 0.0 (Stats.mean s);
  check cf "stddev of empty" 0.0 (Stats.stddev s)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  check cf "mean" 2.5 (Stats.mean s);
  check cf "min" 1.0 (Stats.min s);
  check cf "max" 4.0 (Stats.max s);
  check cf "sum" 10.0 (Stats.sum s);
  check cb "stddev" true (abs_float (Stats.stddev s -. 1.118033988) < 1e-6)

let test_stats_percentile () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  check cf "p50" 50.0 (Stats.percentile s 50.0);
  check cf "p100" 100.0 (Stats.percentile s 100.0);
  check cf "p1" 1.0 (Stats.percentile s 1.0)

let test_stats_percentile_nan () =
  (* Regression: [Array.sort compare] on floats leaves a NaN-poisoned
     ordering (polymorphic compare says NaN < NaN is false but so is
     NaN >= NaN), which could surface arbitrary samples as percentiles.
     With [Float.compare] NaN sorts first, so real samples keep their
     ranks at the top end. *)
  let s = Stats.create () in
  List.iter (Stats.add s) [ 5.0; 1.0; 3.0; Float.nan; 2.0; 4.0 ];
  check cf "p100 ignores NaN poisoning" 5.0 (Stats.percentile s 100.0);
  check cf "p99 lands on a real sample" 5.0 (Stats.percentile s 99.0);
  check cb "p1 is the NaN (sorts first)" true
    (Float.is_nan (Stats.percentile s 1.0))

let test_stats_nearest_rank () =
  check ci "p0 -> rank 1" 1 (Stats.nearest_rank ~n:10 0.0);
  check ci "p100 -> rank n" 10 (Stats.nearest_rank ~n:10 100.0);
  check ci "p50 over 10" 5 (Stats.nearest_rank ~n:10 50.0);
  check ci "p50 over 11" 6 (Stats.nearest_rank ~n:11 50.0);
  check ci "clamped above" 4 (Stats.nearest_rank ~n:4 250.0);
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Stats.nearest_rank: empty sample set") (fun () ->
      ignore (Stats.nearest_rank ~n:0 50.0))

let test_stats_growth () =
  (* exercise the internal array doubling *)
  let s = Stats.create () in
  for i = 1 to 10_000 do
    Stats.add s (float_of_int i)
  done;
  check ci "count" 10_000 (Stats.count s);
  check cf "mean" 5000.5 (Stats.mean s)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  List.iter (Stats.add a) [ 1.0; 2.0 ];
  List.iter (Stats.add b) [ 3.0; 4.0 ];
  let m = Stats.merge a b in
  check ci "merged count" 4 (Stats.count m);
  check cf "merged mean" 2.5 (Stats.mean m)

let test_stats_clear () =
  let s = Stats.create () in
  Stats.add s 7.0;
  Stats.clear s;
  check ci "count after clear" 0 (Stats.count s);
  Stats.add s 3.0;
  check cf "reusable after clear" 3.0 (Stats.mean s)

(* One rank rule, two data structures: Histogram.percentile must agree
   with Stats.percentile over the same samples to within one bucket
   width (the histogram's documented resolution), and exactly at the
   extremes where it delegates to the recorded min/max. *)
let hist_vs_stats_percentile_test =
  QCheck.Test.make ~name:"Histogram vs Stats percentile within one bucket"
    ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 200) (int_bound 999_999))
        (list_of_size Gen.(int_range 1 8) (int_bound 100)))
    (fun (samples, ps) ->
      (* Samples span [1e-3, 1e4), the histogram's exact coverage. *)
      let samples = List.map (fun i -> 1e-3 +. (float_of_int i /. 100.0)) samples in
      let ps = List.map float_of_int ps in
      let h = Histogram.create ~lo:1e-3 ~decades:7 ~per_decade:16 () in
      let s = Stats.create () in
      List.iter
        (fun v ->
          Histogram.add h v;
          Stats.add s v)
        samples;
      let width = 10.0 ** (1.0 /. 16.0) in
      List.for_all
        (fun p ->
          let exact = Stats.percentile s p in
          let approx = Histogram.percentile h p in
          (* Within one bucket width either way, and never outside the
             observed range. *)
          approx >= Stats.min s -. 1e-12
          && approx <= Stats.max s +. 1e-12
          && approx <= (exact *. width) +. 1e-12
          && approx >= (exact /. width) -. 1e-12)
        (0.0 :: 100.0 :: ps))

(* ------------------------------ Bitvec ------------------------------ *)

let test_bitvec_set_get () =
  let v = Bitvec.create 200 in
  check cb "initially clear" false (Bitvec.get v 0);
  Bitvec.set v 0;
  Bitvec.set v 61;
  Bitvec.set v 62;
  Bitvec.set v 199;
  check cb "bit 0" true (Bitvec.get v 0);
  check cb "bit 61 (word edge)" true (Bitvec.get v 61);
  check cb "bit 62 (next word)" true (Bitvec.get v 62);
  check cb "bit 199" true (Bitvec.get v 199);
  check cb "bit 100 clear" false (Bitvec.get v 100);
  Bitvec.clear v 61;
  check cb "cleared" false (Bitvec.get v 61)

let test_bitvec_test_and_set () =
  let v = Bitvec.create 10 in
  check cb "first wins" true (Bitvec.test_and_set v 3);
  check cb "second loses" false (Bitvec.test_and_set v 3);
  check cb "bit is set" true (Bitvec.get v 3)

let test_bitvec_ranges () =
  let v = Bitvec.create 500 in
  Bitvec.set_range v 50 200;
  check ci "count after set_range" 200 (Bitvec.count v);
  check cb "edge low" true (Bitvec.get v 50);
  check cb "edge high" true (Bitvec.get v 249);
  check cb "outside low" false (Bitvec.get v 49);
  check cb "outside high" false (Bitvec.get v 250);
  Bitvec.clear_range v 100 50;
  check ci "count after clear_range" 150 (Bitvec.count v);
  check cb "cleared interior" false (Bitvec.get v 120)

let test_bitvec_next_set () =
  let v = Bitvec.create 300 in
  Bitvec.set v 5;
  Bitvec.set v 130;
  check ci "next_set from 0" 5 (Bitvec.next_set v 0);
  check ci "next_set from 5" 5 (Bitvec.next_set v 5);
  check ci "next_set from 6" 130 (Bitvec.next_set v 6);
  check ci "next_set from 131 = len" 300 (Bitvec.next_set v 131)

let test_bitvec_next_clear () =
  let v = Bitvec.create 200 in
  Bitvec.set_range v 0 150;
  check ci "next_clear" 150 (Bitvec.next_clear v 0);
  check ci "next_clear from 150" 150 (Bitvec.next_clear v 150);
  Bitvec.set_range v 0 200;
  check ci "all set -> len" 200 (Bitvec.next_clear v 0)

let test_bitvec_prev_set () =
  let v = Bitvec.create 300 in
  Bitvec.set v 5;
  Bitvec.set v 130;
  check ci "prev_set from 299" 130 (Bitvec.prev_set v 299);
  check ci "prev_set from 130" 130 (Bitvec.prev_set v 130);
  check ci "prev_set from 129" 5 (Bitvec.prev_set v 129);
  check ci "prev_set from 4 = -1" (-1) (Bitvec.prev_set v 4)

let test_bitvec_count_range () =
  let v = Bitvec.create 400 in
  Bitvec.set v 10;
  Bitvec.set v 20;
  Bitvec.set v 390;
  check ci "count_range middle" 2 (Bitvec.count_range v 5 20);
  check ci "count_range all" 3 (Bitvec.count_range v 0 400)

let test_bitvec_fold_set_ranges () =
  let v = Bitvec.create 200 in
  Bitvec.set_range v 10 5;
  Bitvec.set v 61;
  Bitvec.set v 62;
  Bitvec.set v 199;
  let runs =
    List.rev
      (Bitvec.fold_set_ranges v ~lo:0 ~hi:200 ~init:[] ~f:(fun acc pos len ->
           (pos, len) :: acc))
  in
  check cb "maximal runs" true (runs = [ (10, 5); (61, 2); (199, 1) ]);
  (* A window boundary splits the run that straddles it. *)
  let clipped =
    List.rev
      (Bitvec.fold_set_ranges v ~lo:12 ~hi:62 ~init:[] ~f:(fun acc pos len ->
           (pos, len) :: acc))
  in
  check cb "window clips runs" true (clipped = [ (12, 3); (61, 1) ]);
  check cb "empty window" true
    (Bitvec.fold_set_ranges v ~lo:20 ~hi:20 ~init:[] ~f:(fun acc p l ->
         (p, l) :: acc)
    = [])

(* Property tests: the bit vector against a reference bool array. *)

let bitvec_model_test =
  QCheck.Test.make ~name:"bitvec matches bool-array model" ~count:200
    QCheck.(
      pair (int_bound 500)
        (list (pair (int_bound 2) (int_bound 499))))
    (fun (n, ops) ->
      let n = n + 1 in
      let v = Bitvec.create n in
      let model = Array.make n false in
      List.iter
        (fun (op, i) ->
          let i = i mod n in
          match op with
          | 0 ->
              Bitvec.set v i;
              model.(i) <- true
          | 1 ->
              Bitvec.clear v i;
              model.(i) <- false
          | _ ->
              let won = Bitvec.test_and_set v i in
              if won <> not model.(i) then failwith "test_and_set mismatch";
              model.(i) <- true)
        ops;
      Array.iteri
        (fun i b -> if Bitvec.get v i <> b then failwith "get mismatch")
        model;
      (* next_set agrees with the model *)
      let rec model_next i =
        if i >= n then n else if model.(i) then i else model_next (i + 1)
      in
      for i = 0 to n - 1 do
        if Bitvec.next_set v i <> model_next i then failwith "next_set mismatch"
      done;
      (* count and fold_set_ranges agree with the model: the fold must
         visit every set bit exactly once, in maximal runs. *)
      let model_count = Array.fold_left (fun a b -> if b then a + 1 else a) 0 model in
      if Bitvec.count v <> model_count then failwith "count mismatch";
      let covered = Array.make n false in
      Bitvec.fold_set_ranges v ~lo:0 ~hi:n ~init:() ~f:(fun () pos len ->
          if len <= 0 then failwith "empty run";
          if pos > 0 && model.(pos - 1) then failwith "run not maximal (left)";
          if pos + len < n && model.(pos + len) then
            failwith "run not maximal (right)";
          for i = pos to pos + len - 1 do
            if not model.(i) then failwith "run covers clear bit";
            if covered.(i) then failwith "bit visited twice";
            covered.(i) <- true
          done);
      Array.iteri
        (fun i b -> if b && not covered.(i) then failwith "set bit missed")
        model;
      true)

let bitvec_range_test =
  QCheck.Test.make ~name:"set_range/clear_range match model" ~count:200
    QCheck.(quad (int_bound 300) (int_bound 300) (int_bound 300) bool)
    (fun (n, pos, len, do_clear) ->
      let n = n + 10 in
      let pos = pos mod n in
      let len = min len (n - pos) in
      let v = Bitvec.create n in
      if do_clear then Bitvec.set_range v 0 n;
      (if do_clear then Bitvec.clear_range v pos len
       else Bitvec.set_range v pos len);
      let expected_in = not do_clear and expected_out = do_clear in
      let ok = ref true in
      for i = 0 to n - 1 do
        let inside = i >= pos && i < pos + len in
        let want = if inside then expected_in else expected_out in
        if Bitvec.get v i <> want then ok := false
      done;
      !ok)

(* ------------------------------ Table ------------------------------ *)

let test_table_render () =
  let t = Table.create ~title:"T" ~header:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333"; "4" ];
  let s = Table.render t in
  check cb "has title" true (String.length s > 0 && s.[0] = 'T');
  check cb "rows present" true
    (String.split_on_char '\n' s |> List.length >= 5)

let test_table_arity () =
  let t = Table.create ~title:"T" ~header:[ "a"; "b" ] in
  Alcotest.check_raises "wrong arity" (Invalid_argument "Table.add_row: wrong arity")
    (fun () -> Table.add_row t [ "1" ])

let test_table_formats () =
  check Alcotest.string "fms" "12.3" (Table.fms 12.34);
  check Alcotest.string "fpct" "14.2%" (Table.fpct 0.142);
  check Alcotest.string "f2" "0.04" (Table.f2 0.0449);
  check Alcotest.string "f3" "0.045" (Table.f3 0.0449)

(* ------------------------ Ringbuf / Minheap ------------------------ *)
(* The scheduler's runqueues and the sleep/store-buffer heaps are built
   on these two kernels; the properties below pin the PR 9 retention
   contract (a vacated slot always holds the dummy) alongside plain
   functional correctness against model implementations. *)

module Ringbuf = Cgc_util.Ringbuf

module Minheap_int = Cgc_util.Minheap.Make (struct
  type elt = int * string

  let key (k, _) = k
  let dummy = (max_int, "<dummy>")
end)

let test_ringbuf_fifo_wrap () =
  let r = Ringbuf.create ~capacity:2 (-1) in
  for i = 0 to 4 do
    Ringbuf.push_back r i
  done;
  check ci "front" 0 (Ringbuf.front r);
  check ci "back" 4 (Ringbuf.back r);
  check ci "pop0" 0 (Ringbuf.pop_front r);
  Ringbuf.push_back r 5;
  for i = 1 to 5 do
    check ci "fifo order" i (Ringbuf.pop_front r)
  done;
  check cb "empty" true (Ringbuf.is_empty r)

let test_ringbuf_empty_pop () =
  let r = Ringbuf.create ~capacity:2 (-1) in
  Alcotest.check_raises "pop" (Invalid_argument "Ringbuf.pop_front: empty")
    (fun () -> ignore (Ringbuf.pop_front r));
  Alcotest.check_raises "front" (Invalid_argument "Ringbuf.front: empty")
    (fun () -> ignore (Ringbuf.front r));
  Ringbuf.push_back r 1;
  ignore (Ringbuf.pop_front r);
  Alcotest.check_raises "pop after drain"
    (Invalid_argument "Ringbuf.pop_front: empty") (fun () ->
      ignore (Ringbuf.pop_front r))

let test_ringbuf_retention () =
  (* Regression for the vacated-slot leak: after pushing boxed elements
     through wrap and growth and draining, every physical slot must hold
     the dummy again. *)
  let dummy = ref (-1) in
  let r = Ringbuf.create ~capacity:2 dummy in
  for round = 0 to 9 do
    for i = 0 to 99 do
      Ringbuf.push_back r (ref ((100 * round) + i))
    done;
    for _ = 0 to 99 do
      ignore (Ringbuf.pop_front r)
    done;
    check cb "clean between rounds" true (Ringbuf.slots_clean r)
  done

let ringbuf_model_test =
  QCheck.Test.make
    ~name:"ringbuf: matches queue model; vacated slots hold the dummy"
    ~count:500
    QCheck.(list (pair bool (int_bound 1000)))
    (fun ops ->
      let r = Ringbuf.create ~capacity:2 (-1) in
      let q = Queue.create () in
      List.iter
        (fun (push, v) ->
          if push || Queue.is_empty q then begin
            Ringbuf.push_back r v;
            Queue.push v q
          end
          else begin
            let a = Ringbuf.pop_front r and b = Queue.pop q in
            if a <> b then
              QCheck.Test.fail_reportf "pop mismatch: %d <> %d" a b
          end;
          if Ringbuf.length r <> Queue.length q then
            QCheck.Test.fail_report "length mismatch";
          if not (Ringbuf.slots_clean r) then
            QCheck.Test.fail_report "vacated slot retained")
        ops;
      true)

let test_minheap_empty_pop () =
  let h = Minheap_int.create () in
  Alcotest.check_raises "pop" (Invalid_argument "Minheap.pop: empty")
    (fun () -> ignore (Minheap_int.pop h));
  Alcotest.check_raises "top" (Invalid_argument "Minheap.top: empty")
    (fun () -> ignore (Minheap_int.top h));
  check ci "min_key of empty" max_int (Minheap_int.min_key h)

let test_minheap_retention () =
  (* Regression for the vacated-slot leak in [pop] and for the growth
     path recopying live references into the doubled half. *)
  let h = Minheap_int.create ~capacity:2 () in
  for i = 0 to 999 do
    Minheap_int.push h (i * 7919 mod 1000, "payload")
  done;
  for _ = 0 to 999 do
    ignore (Minheap_int.pop h)
  done;
  check cb "empty" true (Minheap_int.is_empty h);
  check cb "all slots dummy" true (Minheap_int.slots_clean h)

let minheap_model_test =
  QCheck.Test.make
    ~name:"minheap: pops sorted; vacated slots hold the dummy" ~count:500
    QCheck.(list (pair bool (int_bound 10_000)))
    (fun ops ->
      let h = Minheap_int.create ~capacity:2 () in
      let model = ref [] in
      List.iter
        (fun (push, v) ->
          (if push || !model = [] then begin
             Minheap_int.push h (v, "x");
             model := List.merge compare [ v ] !model
           end
           else
             let k, _ = Minheap_int.pop h in
             match !model with
             | m :: rest when m = k -> model := rest
             | m :: _ ->
                 QCheck.Test.fail_reportf "popped %d, model min is %d" k m
             | [] -> assert false);
          let mk = match !model with [] -> max_int | m :: _ -> m in
          if Minheap_int.min_key h <> mk then
            QCheck.Test.fail_report "min_key mismatch";
          if Minheap_int.length h <> List.length !model then
            QCheck.Test.fail_report "length mismatch";
          if not (Minheap_int.slots_clean h) then
            QCheck.Test.fail_report "vacated slot retained")
        ops;
      true)

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_prng_seeds_differ;
          Alcotest.test_case "int nonnegative (regression)" `Quick
            test_prng_int_nonnegative;
          Alcotest.test_case "int covers range" `Quick test_prng_int_covers_range;
          Alcotest.test_case "int_in range" `Quick test_prng_int_in;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "chance extremes" `Quick test_prng_chance_extremes;
          Alcotest.test_case "exponential mean" `Quick test_prng_exponential_mean;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "shuffle permutation" `Quick
            test_prng_shuffle_permutation;
          QCheck_alcotest.to_alcotest prng_same_seed_same_sequence_test;
          QCheck_alcotest.to_alcotest prng_split_independent_test;
        ] );
      ( "ewma",
        [
          Alcotest.test_case "init" `Quick test_ewma_init;
          Alcotest.test_case "converges" `Quick test_ewma_converges;
          Alcotest.test_case "single step" `Quick test_ewma_single_step;
          Alcotest.test_case "bad alpha" `Quick test_ewma_bad_alpha;
          QCheck_alcotest.to_alcotest ewma_closed_form_test;
        ] );
      ( "stats",
        [
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "percentile NaN (regression)" `Quick
            test_stats_percentile_nan;
          Alcotest.test_case "nearest_rank rule" `Quick test_stats_nearest_rank;
          Alcotest.test_case "growth" `Quick test_stats_growth;
          Alcotest.test_case "merge" `Quick test_stats_merge;
          Alcotest.test_case "clear" `Quick test_stats_clear;
          QCheck_alcotest.to_alcotest hist_vs_stats_percentile_test;
        ] );
      ( "bitvec",
        [
          Alcotest.test_case "set/get" `Quick test_bitvec_set_get;
          Alcotest.test_case "test_and_set" `Quick test_bitvec_test_and_set;
          Alcotest.test_case "ranges" `Quick test_bitvec_ranges;
          Alcotest.test_case "next_set" `Quick test_bitvec_next_set;
          Alcotest.test_case "next_clear" `Quick test_bitvec_next_clear;
          Alcotest.test_case "prev_set" `Quick test_bitvec_prev_set;
          Alcotest.test_case "count_range" `Quick test_bitvec_count_range;
          Alcotest.test_case "fold_set_ranges" `Quick
            test_bitvec_fold_set_ranges;
          QCheck_alcotest.to_alcotest bitvec_model_test;
          QCheck_alcotest.to_alcotest bitvec_range_test;
        ] );
      ( "ringbuf",
        [
          Alcotest.test_case "fifo with wrap" `Quick test_ringbuf_fifo_wrap;
          Alcotest.test_case "empty pop raises" `Quick test_ringbuf_empty_pop;
          Alcotest.test_case "no slot retention (regression)" `Quick
            test_ringbuf_retention;
          QCheck_alcotest.to_alcotest ringbuf_model_test;
        ] );
      ( "minheap",
        [
          Alcotest.test_case "empty pop raises" `Quick test_minheap_empty_pop;
          Alcotest.test_case "no slot retention (regression)" `Quick
            test_minheap_retention;
          QCheck_alcotest.to_alcotest minheap_model_test;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity" `Quick test_table_arity;
          Alcotest.test_case "formats" `Quick test_table_formats;
        ] );
    ]
