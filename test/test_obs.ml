(* Tests for the observability subsystem: the log-scale histogram, the
   bounded event ring, the tracing sink, and the Chrome trace exporter —
   including the headline determinism property (two equal-seed traced VM
   runs produce byte-identical JSON). *)

module Histogram = Cgc_util.Histogram
module Prng = Cgc_util.Prng
module Ring = Cgc_obs.Ring
module Event = Cgc_obs.Event
module Obs = Cgc_obs.Obs
module Export = Cgc_obs.Export
module Vm = Cgc_runtime.Vm
module Config = Cgc_core.Config

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cf = Alcotest.(float 1e-9)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  nn = 0 || go 0

(* --------------------------- Histogram --------------------------- *)

(* Exact percentile by nearest-rank over a sorted copy — the reference
   the bucketed histogram must approximate. *)
let exact_percentile samples p =
  let a = Array.copy samples in
  Array.sort compare a;
  let n = Array.length a in
  if p >= 100.0 then a.(n - 1)
  else
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))

let test_hist_percentiles_vs_sort () =
  let rng = Prng.create 11 in
  let n = 5000 in
  (* log-uniform over ~4 decades, like pause times in ms *)
  let samples =
    Array.init n (fun _ -> 10.0 ** (Prng.float rng 4.0 -. 2.0))
  in
  let h = Histogram.create () in
  Array.iter (fun x -> Histogram.add h x) samples;
  List.iter
    (fun p ->
      let want = exact_percentile samples p in
      let got = Histogram.percentile h p in
      (* 16 buckets per decade bounds the relative error of any interior
         percentile by one bucket width: 10^(1/16) - 1 ~ 15.5%. *)
      let rel = abs_float (got -. want) /. want in
      check cb (Printf.sprintf "p%.0f within bucket width" p) true (rel < 0.16))
    [ 10.0; 50.0; 90.0; 99.0 ];
  check cf "p100 is the exact max" (exact_percentile samples 100.0)
    (Histogram.percentile h 100.0)

let test_hist_exact_moments () =
  let samples = [| 0.5; 1.0; 2.0; 4.0; 8.0 |] in
  let h = Histogram.create () in
  Array.iter (Histogram.add h) samples;
  check ci "count" 5 (Histogram.count h);
  check cf "sum" 15.5 (Histogram.sum h);
  check cf "mean" 3.1 (Histogram.mean h);
  check cf "min" 0.5 (Histogram.min h);
  check cf "max" 8.0 (Histogram.max h)

let test_hist_empty () =
  let h = Histogram.create () in
  check ci "count" 0 (Histogram.count h);
  check cf "mean of empty" 0.0 (Histogram.mean h);
  check cf "percentile of empty" 0.0 (Histogram.percentile h 50.0)

let test_hist_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  let all = Histogram.create () in
  let rng = Prng.create 3 in
  for _ = 1 to 500 do
    let x = Prng.float rng 100.0 +. 0.01 in
    Histogram.add (if Prng.bool rng then a else b) x;
    Histogram.add all x
  done;
  let m = Histogram.merge a b in
  check ci "merged count" (Histogram.count all) (Histogram.count m);
  check cf "merged sum" (Histogram.sum all) (Histogram.sum m);
  check cf "merged max" (Histogram.max all) (Histogram.max m);
  check cf "merged p90" (Histogram.percentile all 90.0)
    (Histogram.percentile m 90.0)

(* ----------------------------- Ring ------------------------------ *)

let ev ts = { Event.ts; dur = -1; tid = 0; code = Event.Packet_get; arg = 0 }

let test_ring_keeps_newest () =
  let r = Ring.create ~capacity:4 in
  for i = 1 to 10 do
    Ring.add r (ev i)
  done;
  check ci "dropped count" 6 (Ring.dropped r);
  check ci "stored" 4 (Ring.length r);
  let ts = List.map (fun e -> e.Event.ts) (Ring.to_list r) in
  check (Alcotest.list ci) "newest 4, oldest first" [ 7; 8; 9; 10 ] ts

let test_ring_no_overflow () =
  let r = Ring.create ~capacity:8 in
  for i = 1 to 8 do
    Ring.add r (ev i)
  done;
  check ci "no loss" 0 (Ring.dropped r);
  check ci "all stored" 8 (Ring.length r)

(* ------------------------------ Obs ------------------------------ *)

let test_null_sink_emits_nothing () =
  let t = Obs.null in
  check cb "disabled" false (Obs.enabled t);
  Obs.instant t Event.Stw_pause;
  Obs.span t ~start:0 Event.Conc_mark;
  check ci "emitted" 0 (Obs.emitted t);
  check ci "events" 0 (List.length (Obs.events t))

let test_armed_sink_orders_events () =
  let clock = ref 0 and tid = ref 0 in
  let t = Obs.create ~now:(fun () -> !clock) ~tid:(fun () -> !tid) () in
  check cb "enabled" true (Obs.enabled t);
  (* interleave two threads with out-of-order arrival per thread *)
  tid := 1;
  clock := 30;
  Obs.instant t Event.Packet_put;
  tid := 0;
  clock := 10;
  Obs.instant t Event.Packet_get;
  clock := 50;
  Obs.span t ~start:20 Event.Stw_pause;
  let evs = Obs.events t in
  check ci "all kept" 3 (List.length evs);
  let ts = List.map (fun e -> e.Event.ts) evs in
  check (Alcotest.list ci) "sorted by timestamp" [ 10; 20; 30 ] ts;
  check ci "emitted counter" 3 (Obs.emitted t);
  Obs.clear t;
  check ci "clear drops events" 0 (List.length (Obs.events t))

(* ---------------------------- Export ----------------------------- *)

let test_chrome_json_shape () =
  let clock = ref 0 in
  let t = Obs.create ~now:(fun () -> !clock) ~tid:(fun () -> 7) () in
  clock := 1100;
  Obs.span t ~start:550 ~arg:3 Event.Stw_pause;
  Obs.instant t ~arg:12 Event.Packet_steal;
  let json = Export.chrome_json ~cycles_per_us:550.0 (Obs.events t) in
  check cb "has trace array" true
    (String.length json > 0 && json.[0] = '{');
  let has s = contains json s in
  check cb "complete span" true (has {|"ph":"X"|});
  check cb "instant event" true (has {|"ph":"i"|});
  check cb "span name" true (has {|"name":"stw-pause"|});
  check cb "instant name" true (has {|"name":"packet-steal"|});
  check cb "tid" true (has {|"tid":7|});
  check cb "ts in us" true (has {|"ts":1.000|});
  check cb "dur in us" true (has {|"dur":1.000|})

let test_csv_quoting () =
  let out =
    Export.csv ~header:[ "a"; "b" ]
      [ [ "plain"; "with,comma" ]; [ "with\"quote"; "x" ] ]
  in
  check Alcotest.string "csv"
    "a,b\nplain,\"with,comma\"\n\"with\"\"quote\",x\n" out;
  let out =
    Export.csv ~schema:"test-v1" ~header:[ "a" ] [ [ "1" ] ]
  in
  check Alcotest.string "csv with schema line" "#schema=test-v1\na\n1\n" out

(* --------------------- End-to-end determinism -------------------- *)

let traced_run () =
  let gc = { Config.default with Config.n_background = 2 } in
  let vm =
    Cgc_workloads.Specjbb.run ~warehouses:4 ~gc ~heap_mb:24.0 ~ncpus:2 ~seed:5
      ~trace:true ~ms:600.0 ()
  in
  Vm.trace_json vm

let test_trace_deterministic () =
  let a = traced_run () and b = traced_run () in
  check cb "some events" true (String.length a > 1000);
  check cb "byte-identical across equal-seed runs" true (String.equal a b)

let test_trace_has_gc_phases () =
  let json = traced_run () in
  let has s = contains json s in
  check cb "stw-pause span" true (has {|"name":"stw-pause"|});
  check cb "concurrent-mark span" true (has {|"name":"concurrent-mark"|});
  check cb "sweep events" true (has {|"name":"sweep-chunk"|})

let test_untraced_run_emits_nothing () =
  let vm =
    Cgc_workloads.Specjbb.run ~warehouses:2 ~gc:Config.default ~heap_mb:16.0
      ~ncpus:2 ~seed:5 ~ms:300.0 ()
  in
  check ci "no events" 0 (Obs.emitted (Vm.obs vm))

(* ---------------- Ring blits and the merged event view ---------------- *)

let ring_blit_matches_iter_test =
  QCheck.Test.make ~name:"ring: blit_fields agrees with iter" ~count:300
    QCheck.(pair (int_range 1 20) (small_list small_nat))
    (fun (cap, tss) ->
      let r = Ring.create ~capacity:cap in
      List.iteri
        (fun i ts ->
          Ring.add_fields r ~ts ~dur:i ~tid:(i mod 3)
            ~code:(if i mod 2 = 0 then Event.Cycle_start else Event.Fence_flush)
            ~arg:(i * 7))
        tss;
      let n = Ring.length r in
      let ts = Array.make (n + 1) (-1)
      and dur = Array.make (n + 1) (-1)
      and tid = Array.make (n + 1) (-1)
      and arg = Array.make (n + 1) (-1) in
      let code = Array.make (n + 1) Event.Cycle_start in
      let stop = Ring.blit_fields r ~ts ~dur ~tid ~arg ~code ~pos:0 in
      if stop <> n then QCheck.Test.fail_reportf "end index %d, want %d" stop n;
      let i = ref 0 in
      Ring.iter r (fun e ->
          if
            e.Event.ts <> ts.(!i)
            || e.dur <> dur.(!i)
            || e.tid <> tid.(!i)
            || e.arg <> arg.(!i)
            || e.code <> code.(!i)
          then QCheck.Test.fail_reportf "field mismatch at %d" !i;
          incr i);
      !i = n)

let obs_events_array_order_test =
  (* The merged view must be the stable ts-sort of the per-thread streams
     concatenated in tid order, drops included — exactly what the
     list-based implementation produced.  The packed-key sort inside
     [events_array] is an implementation detail this pins down. *)
  QCheck.Test.make ~name:"obs: events_array is the stable per-tid merge"
    ~count:300
    QCheck.(small_list (pair (int_bound 3) (int_bound 50)))
    (fun evs ->
      let cap = 8 in
      let now = ref 0 and tid = ref 0 in
      let o = Obs.create ~ring_capacity:cap ~now:(fun () -> !now)
          ~tid:(fun () -> !tid) ()
      in
      List.iteri
        (fun i (t, ts) ->
          tid := t;
          now := ts;
          Obs.instant o ~arg:i Event.Cycle_start)
        evs;
      let expected =
        let tids = List.sort_uniq compare (List.map fst evs) in
        List.concat_map
          (fun t ->
            let stream =
              List.filteri (fun _ _ -> true) evs
              |> List.mapi (fun i (t', ts) -> (t', ts, i))
              |> List.filter (fun (t', _, _) -> t' = t)
            in
            let n = List.length stream in
            let drop = max 0 (n - cap) in
            List.filteri (fun i _ -> i >= drop) stream)
          tids
        |> List.stable_sort (fun (_, a, _) (_, b, _) -> compare a b)
        |> List.map (fun (t, ts, i) -> (ts, t, i))
      in
      let got =
        List.map
          (fun e -> (e.Event.ts, e.Event.tid, e.Event.arg))
          (Obs.events o)
      in
      if got <> expected then QCheck.Test.fail_report "merge order mismatch";
      true)

let () =
  Alcotest.run "obs"
    [
      ( "histogram",
        [
          Alcotest.test_case "percentiles vs sort" `Quick
            test_hist_percentiles_vs_sort;
          Alcotest.test_case "exact moments" `Quick test_hist_exact_moments;
          Alcotest.test_case "empty" `Quick test_hist_empty;
          Alcotest.test_case "merge" `Quick test_hist_merge;
        ] );
      ( "ring",
        [
          Alcotest.test_case "overflow keeps newest" `Quick
            test_ring_keeps_newest;
          Alcotest.test_case "no overflow below capacity" `Quick
            test_ring_no_overflow;
          QCheck_alcotest.to_alcotest ring_blit_matches_iter_test;
        ] );
      ( "sink",
        [
          Alcotest.test_case "null sink is inert" `Quick
            test_null_sink_emits_nothing;
          Alcotest.test_case "armed sink merges and orders" `Quick
            test_armed_sink_orders_events;
          QCheck_alcotest.to_alcotest obs_events_array_order_test;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome json shape" `Quick test_chrome_json_shape;
          Alcotest.test_case "csv quoting" `Quick test_csv_quoting;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "byte-identical traces" `Slow
            test_trace_deterministic;
          Alcotest.test_case "gc phases present" `Slow test_trace_has_gc_phases;
          Alcotest.test_case "zero-cost when off" `Slow
            test_untraced_run_emits_nothing;
        ] );
    ]
